// Command dita-net is the network-mode coordinator CLI: it connects to
// running dita-worker processes, dispatches a dataset across them, and
// runs a search/join workload — DITA as an actual multi-process
// distributed system (stdlib net/rpc over TCP).
//
// Usage:
//
//	# terminal 1..3
//	dita-worker -listen 127.0.0.1:7001
//	dita-worker -listen 127.0.0.1:7002
//	dita-worker -listen 127.0.0.1:7003
//
//	# terminal 4
//	dita-net -workers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	         -gen beijing:10000 -tau 0.005 -queries 100 -join
//
// With -spawn N the workers are started in-process on loopback instead,
// for a one-command demo.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dita"
	"dita/internal/dnet"
)

func main() {
	workersFlag := flag.String("workers", "", "comma-separated worker addresses")
	spawn := flag.Int("spawn", 0, "spawn N in-process loopback workers instead of connecting")
	genSpec := flag.String("gen", "beijing:5000", "dataset preset:count")
	load := flag.String("load", "", "load a CSV dataset instead of generating")
	tau := flag.Float64("tau", 0.005, "similarity threshold")
	queries := flag.Int("queries", 50, "number of search queries")
	doJoin := flag.Bool("join", false, "also run a self-join")
	measureName := flag.String("measure", "DTW", "similarity function")
	seed := flag.Int64("seed", 1, "generation seed")
	replicas := flag.Int("replicas", 2, "partition replication factor (clamped to worker count)")
	allowPartial := flag.Bool("allow-partial", false, "return partial results with a skip report when all replicas of a partition are down")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker health-check interval (0 disables)")
	flag.Parse()

	var addrs []string
	var local []*dnet.Worker
	switch {
	case *spawn > 0:
		for i := 0; i < *spawn; i++ {
			w := dnet.NewWorker()
			addr, err := w.Serve("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			local = append(local, w)
			addrs = append(addrs, addr)
		}
		fmt.Printf("spawned %d loopback workers: %s\n", *spawn, strings.Join(addrs, ", "))
	case *workersFlag != "":
		addrs = strings.Split(*workersFlag, ",")
	default:
		fmt.Fprintln(os.Stderr, "dita-net: need -workers addr,... or -spawn N")
		os.Exit(2)
	}
	defer func() {
		for _, w := range local {
			w.Close()
		}
	}()

	cfg := dnet.DefaultNetConfig()
	cfg.Measure.Name = *measureName
	cfg.Replicas = *replicas
	cfg.AllowPartial = *allowPartial
	cfg.Health.Interval = *heartbeat
	coord, err := dnet.Connect(addrs, cfg)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()

	var data *dita.Dataset
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		data, err = dita.ReadCSV(f, "trips")
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		parts := strings.SplitN(*genSpec, ":", 2)
		n := 5000
		if len(parts) == 2 {
			if v, err := strconv.Atoi(parts[1]); err == nil {
				n = v
			}
		}
		switch parts[0] {
		case "beijing":
			data = dita.Generate(dita.BeijingLike(n, *seed))
		case "chengdu":
			data = dita.Generate(dita.ChengduLike(n, *seed))
		case "osm":
			data = dita.Generate(dita.OSMLike(n, *seed))
		default:
			fatal(fmt.Errorf("unknown preset %q", parts[0]))
		}
	}

	start := time.Now()
	if err := coord.Dispatch("trips", data); err != nil {
		fatal(err)
	}
	fmt.Printf("dispatched %d trajectories across %d workers in %v\n",
		data.Len(), len(addrs), time.Since(start).Round(time.Millisecond))
	stats, err := coord.WorkerStats()
	if err != nil {
		fatal(err)
	}
	for i, s := range stats {
		fmt.Printf("  worker %d (%s): %d partitions, %d trajectories, %.1f KB index\n",
			i, addrs[i], s.Partitions, s.Trajs, float64(s.IndexBytes)/1e3)
	}

	qs := dita.Queries(data, *queries, *seed+1)
	start = time.Now()
	totalHits := 0
	skippedParts := 0
	for _, q := range qs {
		hits, rep, err := coord.SearchPartial("trips", q, *tau)
		if err != nil {
			fatal(err)
		}
		if rep.Partial() {
			skippedParts += len(rep.Skipped)
		}
		totalHits += len(hits)
	}
	elapsed := time.Since(start)
	if skippedParts > 0 {
		fmt.Printf("partial results: %d partition probes skipped (replicas unreachable)\n", skippedParts)
	}
	fmt.Printf("search: %d queries at τ=%g in %v (%.2f ms/query, %.1f results/query)\n",
		len(qs), *tau, elapsed.Round(time.Millisecond),
		float64(elapsed.Microseconds())/1000/float64(len(qs)),
		float64(totalHits)/float64(len(qs)))

	if *doJoin {
		if err := coord.Dispatch("trips2", data); err != nil {
			fatal(err)
		}
		start = time.Now()
		pairs, err := coord.Join("trips", "trips2", *tau)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("self-join at τ=%g: %d pairs in %v\n",
			*tau, len(pairs), time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dita-net: %v\n", err)
	os.Exit(1)
}
