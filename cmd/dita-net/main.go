// Command dita-net is the network-mode coordinator CLI: it connects to
// running dita-worker processes, dispatches a dataset across them, and
// runs a search/join workload — DITA as an actual multi-process
// distributed system (stdlib net/rpc over TCP).
//
// Usage:
//
//	# terminal 1..3
//	dita-worker -listen 127.0.0.1:7001
//	dita-worker -listen 127.0.0.1:7002
//	dita-worker -listen 127.0.0.1:7003
//
//	# terminal 4
//	dita-net -workers 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	         -gen beijing:10000 -tau 0.005 -queries 100 -join -knn 10
//
// With -spawn N the workers are started in-process on loopback instead,
// for a one-command demo.
//
// With -ingest N the coordinator streams N mutations (fresh upserts plus
// ~10% deletes) into the dispatched dataset before the query workload —
// against workers started with -snapshot-dir, every mutation is WAL-logged
// on all replicas before it is acked and survives a worker crash.
//
// Query lifecycle flags: -deadline bounds each query (expiry is reported,
// not fatal); -max-concurrent/-max-queue/-queue-timeout enable admission
// control on the coordinator; SIGINT cancels the in-flight query and
// stops the workload. -soak runs a cancelled-query churn workload for the
// given duration instead of the normal benchmark — pair it with workers
// started under -chaos to soak-test the failure paths.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dita"
	"dita/internal/core"
	"dita/internal/dnet"
	"dita/internal/geom"
	"dita/internal/obs"
	"dita/internal/serve"
	"dita/internal/traj"
)

func main() {
	workersFlag := flag.String("workers", "", "comma-separated worker addresses")
	spawn := flag.Int("spawn", 0, "spawn N in-process loopback workers instead of connecting")
	genSpec := flag.String("gen", "beijing:5000", "dataset preset:count")
	load := flag.String("load", "", "load a CSV dataset instead of generating")
	tau := flag.Float64("tau", 0.005, "similarity threshold")
	queries := flag.Int("queries", 50, "number of search queries")
	doJoin := flag.Bool("join", false, "also run a self-join")
	ingestN := flag.Int("ingest", 0, "stream N trajectory mutations (fresh upserts plus ~10% deletes) into the dispatched dataset before the query workload (0 disables)")
	ingestSkew := flag.Float64("ingest-skew", 0, "fraction of -ingest writes aimed at one hot partition's geometry (0..1), to provoke occupancy skew")
	rebalance := flag.Bool("rebalance", false, "after ingest, run the online STR re-partitioning planner until occupancy skew is within bound")
	rebalanceSkew := flag.Float64("rebalance-skew", 2, "max/mean occupancy ratio the -rebalance planner tolerates before splitting")
	autopilot := flag.Bool("autopilot", false, "run the rebalancing autopilot: a coordinator loop that watches per-partition read costs and occupancy skew and triggers cutovers/replica promotions automatically")
	autopilotInterval := flag.Duration("autopilot-interval", 200*time.Millisecond, "autopilot tick interval")
	querySkew := flag.Float64("query-skew", 0, "fraction of search queries aimed at one hot partition's geometry (0..1), to provoke a read hotspot")
	knnK := flag.Int("knn", 0, "also run the search queries as kNN at this k (0 disables)")
	measureName := flag.String("measure", "DTW", "similarity function")
	seed := flag.Int64("seed", 1, "generation seed")
	replicas := flag.Int("replicas", 2, "partition replication factor (clamped to worker count)")
	allowPartial := flag.Bool("allow-partial", false, "return partial results with a skip report when all replicas of a partition are down")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "worker health-check interval (0 disables)")
	deadline := flag.Duration("deadline", 0, "per-query deadline (0 = none); expiry cancels the query's remaining partition work")
	maxConcurrent := flag.Int("max-concurrent", 0, "admission control: max concurrent queries on this coordinator (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: queries allowed to wait for a slot beyond -max-concurrent")
	queueTimeout := flag.Duration("queue-timeout", time.Second, "admission control: max wait for a slot before ErrOverloaded")
	soak := flag.Duration("soak", 0, "run a cancelled-query churn workload for this long instead of the benchmark")
	metricsAddr := flag.String("metrics-addr", "", "address to serve /metrics, /metrics.json, /debug/vars, and /debug/pprof on (empty disables)")
	trace := flag.Bool("trace", false, "print the assembled cluster trace of the first search query (and the join)")
	retainPayloads := flag.Bool("retain-payloads", false, "keep raw partition payloads in coordinator memory even when durable snapshots cover them")
	digest := flag.Bool("digest", false, "print an order-independent FNV-1a digest of all search results (for comparing runs, e.g. fresh build vs cold start)")
	verifyPar := flag.Int("verify-parallelism", 0, "verification goroutines per RPC on -spawn'ed workers (0 = all cores, 1 = sequential)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context every query runs under, so an
	// interrupt aborts the in-flight query (within one verification step)
	// instead of waiting for it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var addrs []string
	var local []*dnet.Worker
	switch {
	case *spawn > 0:
		for i := 0; i < *spawn; i++ {
			w := dnet.NewWorker()
			w.VerifyParallelism = *verifyPar
			addr, err := w.Serve("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			local = append(local, w)
			addrs = append(addrs, addr)
		}
		fmt.Printf("spawned %d loopback workers: %s\n", *spawn, strings.Join(addrs, ", "))
	case *workersFlag != "":
		addrs = strings.Split(*workersFlag, ",")
	default:
		fmt.Fprintln(os.Stderr, "dita-net: need -workers addr,... or -spawn N")
		os.Exit(2)
	}
	defer func() {
		for _, w := range local {
			w.Close()
		}
	}()

	cfg := dnet.DefaultNetConfig()
	cfg.Measure.Name = *measureName
	cfg.Replicas = *replicas
	cfg.AllowPartial = *allowPartial
	cfg.Health.Interval = *heartbeat
	cfg.Admission.MaxConcurrent = *maxConcurrent
	cfg.Admission.MaxQueue = *maxQueue
	cfg.Admission.QueueTimeout = *queueTimeout
	cfg.RetainPayloads = *retainPayloads
	var reg *obs.Registry
	var health *obs.Health
	if *metricsAddr != "" {
		reg = obs.New()
		cfg.Obs = reg
		health = obs.NewHealth()
		ln, err := obs.Serve(*metricsAddr, reg, health)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	}
	if *autopilot {
		if reg == nil {
			// The autopilot's actions are observed through its counters;
			// a registry is required even without -metrics-addr.
			reg = obs.New()
			cfg.Obs = reg
		}
		cfg.Autopilot = dnet.AutopilotConfig{
			Interval: *autopilotInterval,
			Policy:   core.RebalancePolicy{SkewBound: *rebalanceSkew},
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		}
	}
	coord, err := dnet.Connect(addrs, cfg)
	if err != nil {
		fatal(err)
	}
	defer coord.Close()
	health.SetCheck("coordinator", coord.Ready)

	var data *dita.Dataset
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		data, err = dita.ReadCSV(f, "trips")
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		parts := strings.SplitN(*genSpec, ":", 2)
		n := 5000
		if len(parts) == 2 {
			if v, err := strconv.Atoi(parts[1]); err == nil {
				n = v
			}
		}
		switch parts[0] {
		case "beijing":
			data = dita.Generate(dita.BeijingLike(n, *seed))
		case "chengdu":
			data = dita.Generate(dita.ChengduLike(n, *seed))
		case "osm":
			data = dita.Generate(dita.OSMLike(n, *seed))
		default:
			fatal(fmt.Errorf("unknown preset %q", parts[0]))
		}
	}

	start := time.Now()
	drep, err := coord.DispatchStats("trips", data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dispatched %d trajectories across %d workers in %v\n",
		data.Len(), len(addrs), time.Since(start).Round(time.Millisecond))
	fmt.Printf("dispatch: %d partitions — %d shipped, %d reused from worker snapshots, %d payloads released\n",
		drep.Partitions, drep.Loads, drep.Reused, drep.PayloadsDropped)
	stats, err := coord.WorkerStats()
	if err != nil {
		fatal(err)
	}
	for i, s := range stats {
		fmt.Printf("  worker %d (%s): %d partitions, %d trajectories, %.1f KB index\n",
			i, addrs[i], s.Partitions, s.Trajs, float64(s.IndexBytes)/1e3)
	}

	if *ingestN > 0 {
		runIngest(ctx, coord, data, *ingestN, *seed, *ingestSkew)
	}

	if *rebalance {
		skewBefore, err := coord.OccupancySkew("trips")
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		steps, converged, err := coord.Rebalance("trips", core.RebalancePolicy{SkewBound: *rebalanceSkew})
		if err != nil {
			fatal(err)
		}
		if !converged {
			fmt.Println("rebalance: planner hit its step budget without converging")
		}
		skewAfter, err := coord.OccupancySkew("trips")
		if err != nil {
			fatal(err)
		}
		moved := 0
		for _, st := range steps {
			moved += st.Trajs
		}
		fmt.Printf("rebalance: occupancy skew %.2f -> %.2f in %d cutover(s), %d trajectories re-cut, %v total\n",
			skewBefore, skewAfter, len(steps), moved, time.Since(start).Round(time.Millisecond))
		for i, st := range steps {
			fmt.Printf("  cutover %d: retired %v -> created %v (%d trajs, %v)\n",
				i, st.Retired, st.Created, st.Trajs, st.Duration.Round(time.Millisecond))
		}
	}

	qs := dita.Queries(data, *queries, *seed+1)
	if *querySkew > 0 {
		skewQueries(qs, data, *querySkew, *seed+2)
	}

	// Warm up BEFORE the measured (and digested) workload: the warmup
	// feeds the read-cost signal until the autopilot takes its first
	// automatic action, so the digest below reflects the post-cutover,
	// post-promotion layout — the differential the soak harness compares
	// against an autopilot-disabled run.
	if *autopilot {
		runAutopilotWarmup(ctx, coord, reg, qs, *tau)
	}

	if *soak > 0 {
		runSoak(ctx, coord, qs, *tau, *soak, *seed)
		return
	}

	start = time.Now()
	totalHits := 0
	skippedParts := 0
	expired := 0
	ran := 0
	var resultDigest uint64
	for i, q := range qs {
		qctx, cancel := queryContext(ctx, *deadline)
		var qstats *dnet.QueryStats
		if *trace && i == 0 {
			qstats = &dnet.QueryStats{Trace: obs.NewTrace("search")}
		}
		hits, rep, err := coord.SearchTraced(qctx, "trips", q, *tau, qstats)
		cancel()
		if qstats != nil && err == nil {
			qstats.Trace.Write(os.Stdout)
			fmt.Printf("  query funnel: %s\n", qstats.Funnel)
		}
		switch {
		case err == nil:
		case ctx.Err() != nil:
			fmt.Println("dita-net: interrupted, stopping workload")
			return
		case errors.Is(err, context.DeadlineExceeded):
			expired++
			continue
		case errors.Is(err, dnet.ErrOverloaded):
			fatal(fmt.Errorf("%w (a serial workload should never queue; lower -queries or raise -max-concurrent)", err))
		default:
			fatal(err)
		}
		ran++
		if rep.Partial() {
			skippedParts += len(rep.Skipped)
		}
		totalHits += len(hits)
		if *digest {
			resultDigest ^= hitsDigest(i, hits)
		}
	}
	elapsed := time.Since(start)
	if skippedParts > 0 {
		fmt.Printf("partial results: %d partition probes skipped (replicas unreachable)\n", skippedParts)
	}
	if expired > 0 {
		fmt.Printf("deadlines: %d/%d queries exceeded -deadline=%v\n", expired, len(qs), *deadline)
	}
	if ran > 0 {
		fmt.Printf("search: %d queries at τ=%g in %v (%.2f ms/query, %.1f results/query)\n",
			ran, *tau, elapsed.Round(time.Millisecond),
			float64(elapsed.Microseconds())/1000/float64(ran),
			float64(totalHits)/float64(ran))
	}
	if *digest {
		fmt.Printf("search digest: %016x (%d queries, %d hits)\n", resultDigest, ran, totalHits)
	}

	if *knnK > 0 {
		start = time.Now()
		totalHits, skippedParts, expired, ran = 0, 0, 0, 0
		for i, q := range qs {
			qctx, cancel := queryContext(ctx, *deadline)
			var qstats *dnet.QueryStats
			if *trace && i == 0 {
				qstats = &dnet.QueryStats{Trace: obs.NewTrace("knn")}
			}
			hits, rep, err := coord.SearchKNNTraced(qctx, "trips", q, *knnK, qstats)
			cancel()
			if qstats != nil && err == nil {
				qstats.Trace.Write(os.Stdout)
				fmt.Printf("  knn funnel: %s\n", qstats.Funnel)
			}
			switch {
			case err == nil:
			case ctx.Err() != nil:
				fmt.Println("dita-net: interrupted, stopping workload")
				return
			case errors.Is(err, context.DeadlineExceeded):
				expired++
				continue
			case errors.Is(err, dnet.ErrOverloaded):
				fatal(fmt.Errorf("%w (a serial workload should never queue; lower -queries or raise -max-concurrent)", err))
			default:
				fatal(err)
			}
			ran++
			if rep.Partial() {
				skippedParts += len(rep.Skipped)
			}
			totalHits += len(hits)
		}
		elapsed := time.Since(start)
		if skippedParts > 0 {
			fmt.Printf("knn: partial results — %d partition probes skipped\n", skippedParts)
		}
		if expired > 0 {
			fmt.Printf("knn deadlines: %d/%d queries exceeded -deadline=%v\n", expired, len(qs), *deadline)
		}
		if ran > 0 {
			fmt.Printf("knn: %d queries at k=%d in %v (%.2f ms/query, %.1f results/query)\n",
				ran, *knnK, elapsed.Round(time.Millisecond),
				float64(elapsed.Microseconds())/1000/float64(ran),
				float64(totalHits)/float64(ran))
		}
	}

	if *doJoin {
		if err := coord.Dispatch("trips2", data); err != nil {
			fatal(err)
		}
		start = time.Now()
		jctx, cancel := queryContext(ctx, *deadline)
		var qstats *dnet.QueryStats
		if *trace {
			qstats = &dnet.QueryStats{Trace: obs.NewTrace("join")}
		}
		pairs, rep, err := coord.JoinTraced(jctx, "trips", "trips2", *tau, qstats)
		cancel()
		if qstats != nil && err == nil {
			qstats.Trace.Write(os.Stdout)
			fmt.Printf("  join funnel: %s\n", qstats.Funnel)
		}
		switch {
		case err == nil:
		case ctx.Err() != nil:
			fmt.Println("dita-net: interrupted, stopping workload")
			return
		case errors.Is(err, context.DeadlineExceeded):
			fmt.Printf("join: deadline %v exceeded\n", *deadline)
			return
		default:
			fatal(err)
		}
		if rep.Partial() {
			fmt.Printf("join: partial — %d partition probes skipped\n", len(rep.Skipped))
		}
		fmt.Printf("self-join at τ=%g: %d pairs in %v\n",
			*tau, len(pairs), time.Since(start).Round(time.Millisecond))
	}
}

// hitsDigest folds one query's results into an order-independent FNV-1a
// word: per-hit hashes over (query index, id, distance bits) are XORed, so
// the digest is insensitive to merge order but sensitive to any missing,
// extra, or numerically different answer. Two runs over the same dataset
// and queries — e.g. a fresh build and a cold start from snapshots — must
// print identical digests.
func hitsDigest(qIdx int, hits []dnet.SearchHit) uint64 {
	var acc uint64
	var buf [24]byte
	for _, h := range hits {
		binary.LittleEndian.PutUint64(buf[0:], uint64(qIdx))
		binary.LittleEndian.PutUint64(buf[8:], uint64(h.ID))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(h.Distance))
		f := fnv.New64a()
		f.Write(buf[:])
		acc ^= f.Sum64()
	}
	return acc
}

// skewQueries aims the given fraction of the query workload at the hot
// member's geometry — the same geometry -ingest-skew concentrates — with
// a per-query jitter so the queries stay distinct. A skewed read
// workload drives one partition's verify cost up, the signal the
// autopilot's cost-aware planner and replica promotion act on. The
// rewrite is deterministic in the seed, so two runs (autopilot on and
// off) see byte-identical query sets.
func skewQueries(qs []*traj.T, data *dita.Dataset, frac float64, seed int64) {
	if data.Len() == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))
	hot := data.Trajs[0].Points
	for i := range qs {
		if rng.Float64() >= frac {
			continue
		}
		jit := make([]geom.Point, len(hot))
		off := float64(i) * 1e-7
		for pi, p := range hot {
			jit[pi] = geom.Point{X: p.X + off, Y: p.Y + off}
		}
		qs[i] = &traj.T{ID: qs[i].ID, Points: jit}
	}
}

// runAutopilotWarmup keeps replaying the query workload until the
// autopilot takes its first automatic action (cutover or replica
// promotion) or a timeout passes — the cost EWMAs need a minimum number
// of observations per partition before the planner trusts them, and the
// benchmark workload alone can finish before the first tick. Prints the
// `autopilot: ...` summary line the soak harness parses.
func runAutopilotWarmup(ctx context.Context, coord *dnet.Coordinator, reg *obs.Registry, qs []*traj.T, tau float64) {
	actions := func() int64 {
		return reg.Counter("coord_autopilot_cutovers_total").Value() +
			reg.Counter("coord_autopilot_promotions_total").Value()
	}
	deadline := time.Now().Add(30 * time.Second)
	rounds := 0
	for actions() == 0 && time.Now().Before(deadline) && ctx.Err() == nil {
		for _, q := range qs {
			if _, _, err := coord.SearchPartialContext(ctx, "trips", q, tau); err != nil {
				break
			}
		}
		rounds++
	}
	fmt.Printf("autopilot: %d automatic cutover(s), %d promotion(s) after %d warmup round(s)\n",
		reg.Counter("coord_autopilot_cutovers_total").Value(),
		reg.Counter("coord_autopilot_promotions_total").Value(),
		rounds)
	if stats, err := coord.WorkerStats(); err == nil {
		parts := make([]string, len(stats))
		for i, s := range stats {
			parts[i] = fmt.Sprintf("%d", s.SearchCalls)
		}
		fmt.Printf("autopilot: per-worker search calls: %s\n", strings.Join(parts, " "))
	}
}

// queryContext derives the per-query context: the signal-cancelled parent
// plus the optional -deadline.
func queryContext(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(parent)
	}
	return context.WithTimeout(parent, d)
}

// runIngest streams n mutations into the dispatched dataset: fresh
// trajectories (ids above the dataset's range, geometry recycled from its
// members) with ~10% deletes of earlier ingested ids mixed in. Every
// write is replicated to all owners and WAL-logged before it is acked;
// backpressure (ErrOverloaded) is handled the way a well-behaved producer
// does — jittered exponential backoff (serve.Backoff) — and counted.
// A skew fraction aims that share of the upserts at one member's
// geometry (with a per-write jitter so the copies stay separable by STR
// cuts), concentrating them in a single partition.
func runIngest(ctx context.Context, coord *dnet.Coordinator, data *dita.Dataset, n int, seed int64, skew float64) {
	if data.Len() == 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed + 7))
	const idBase = 1 << 28
	start := time.Now()
	var upserts, deletes, retries int
	var live []int
	backoff := serve.Backoff{Seed: seed + 11}
	write := func(fn func() error) bool {
		r, err := serve.RetryOverloaded(ctx, backoff, fn)
		retries += r
		if err == nil {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		fatal(err)
		return false
	}
	for i := 0; i < n && ctx.Err() == nil; i++ {
		if len(live) > 4 && rng.Intn(10) == 0 {
			j := rng.Intn(len(live))
			id := live[j]
			if !write(func() error {
				_, err := coord.DeleteContext(ctx, "trips", id)
				return err
			}) {
				return
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			deletes++
			continue
		}
		pts := data.Trajs[i%data.Len()].Points
		if skew > 0 && rng.Float64() < skew {
			hot := data.Trajs[0].Points
			jit := make([]geom.Point, len(hot))
			off := float64(i) * 1e-7
			for pi, p := range hot {
				jit[pi] = geom.Point{X: p.X + off, Y: p.Y + off}
			}
			pts = jit
		}
		t := &traj.T{ID: idBase + i, Points: pts}
		if !write(func() error {
			return coord.IngestContext(ctx, "trips", t)
		}) {
			return
		}
		upserts++
		live = append(live, t.ID)
	}
	elapsed := time.Since(start)
	ops := upserts + deletes
	if ops > 0 {
		fmt.Printf("ingest: %d upserts + %d deletes in %v (%.0f acked ops/s, %d backpressure retries)\n",
			upserts, deletes, elapsed.Round(time.Millisecond),
			float64(ops)/elapsed.Seconds(), retries)
	}
	if stats, err := coord.WorkerStats(); err == nil {
		var calls int64
		var delta int64
		for _, s := range stats {
			calls += s.IngestCalls
			delta += int64(s.DeltaBytes)
		}
		fmt.Printf("ingest: %d worker ingest RPCs, %.1f KB un-merged delta across the fleet\n",
			calls, float64(delta)/1e3)
	}
}

// runSoak hammers the cluster with queries whose lifecycles are cut short
// on purpose — tight deadlines and client-side cancellation — for dur,
// counting how each one ended. Nothing here may crash or leak: run it
// against workers started with -chaos to soak the combined failure paths.
func runSoak(ctx context.Context, coord *dnet.Coordinator, qs []*traj.T, tau float64, dur time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var completed, cancelled, expired, overloaded, failed, partial int
	n := 0
	fmt.Printf("soak: cancelled-query workload for %v\n", dur)
	end := time.Now().Add(dur)
	for time.Now().Before(end) && ctx.Err() == nil {
		q := qs[n%len(qs)]
		n++
		qctx := ctx
		cancel := context.CancelFunc(func() {})
		switch n % 3 {
		case 0:
			// Tight deadline: often expires mid-fan-out.
			qctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(20))*time.Millisecond)
		case 1:
			// Client-side cancel racing the query.
			qctx, cancel = context.WithCancel(ctx)
			go func(c context.CancelFunc, d time.Duration) {
				time.Sleep(d)
				c()
			}(cancel, time.Duration(rng.Intn(10))*time.Millisecond)
		}
		_, rep, err := coord.SearchPartialContext(qctx, "trips", q, tau)
		cancel()
		switch {
		case err == nil:
			completed++
			if rep.Partial() {
				partial++
			}
		case errors.Is(err, context.DeadlineExceeded):
			expired++
		case errors.Is(err, context.Canceled):
			cancelled++
		case errors.Is(err, dnet.ErrOverloaded):
			overloaded++
		default:
			failed++
			fmt.Fprintf(os.Stderr, "soak: query %d: %v\n", n, err)
		}
	}
	fmt.Printf("soak: %d queries — %d completed (%d partial), %d expired, %d cancelled, %d overloaded, %d failed\n",
		n, completed, partial, expired, cancelled, overloaded, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dita-net: %v\n", err)
	os.Exit(1)
}
