// Command dita-serve is the long-lived HTTP serving layer over DITA:
// a JSON API for search/kNN/join/ingest/delete with result caching
// (invalidated by ingest watermarks), request coalescing, and
// cost-based load shedding, plus the obs metrics/health mux.
//
// Server mode (default) fronts either an in-process engine (-dev) or
// a network-mode cluster (-spawn N loopback workers, or -workers
// addr,... for an existing one):
//
//	dita-serve -listen 127.0.0.1:8090 -spawn 2 -gen beijing:2000
//	curl -s localhost:8090/v1/search -d '{"query":[[116.3,39.9],[116.4,40.0]],"tau":0.4}'
//
// Drive mode (-drive URL) is the load generator and SLO checker the
// soak harness uses: it offers a fixed mixed query/write load, samples
// cache hits against bypass queries (stale detection), and writes a
// JSON report with qps/cache-hit/shed/latency percentiles. Exit code
// 1 means the SLO was breached, a stale hit was found, or requests
// failed in untyped ways (the overload contract is typed 429/503,
// never a timeout pile-up).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dita/internal/core"
	"dita/internal/dnet"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/obs"
	"dita/internal/serve"
	"dita/internal/traj"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8090", "address to serve HTTP on")
		dev     = flag.Bool("dev", false, "single-process dev mode: in-process core.Engine instead of a cluster")
		spawn   = flag.Int("spawn", 0, "spawn N loopback workers in-process")
		workers = flag.String("workers", "", "comma-separated worker addresses of an existing cluster")
		genSpec = flag.String("gen", "beijing:2000", "dataset preset:size to generate and dispatch")
		seed    = flag.Int64("seed", 42, "generator seed")
		dataset = flag.String("dataset", "trips", "dataset name")
		measure = flag.String("measure", "DTW", "similarity measure (DTW, Frechet, EDR, LCSS, ERP)")

		cacheEntries = flag.Int("cache-entries", 4096, "result cache entry cap (< 0 disables)")
		cacheBytes   = flag.Int("cache-bytes", 64<<20, "result cache byte cap")
		budgetUS     = flag.Int64("cost-budget-us", 0, "concurrent predicted-cost budget in µs (0 disables shedding)")
		maxQueue     = flag.Int("max-queue", 64, "admission queue length beyond the budget")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "max admission queue wait")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request timeout")

		drive    = flag.String("drive", "", "drive mode: base URL of a dita-serve to load-test")
		duration = flag.Duration("duration", 10*time.Second, "drive: how long to offer load")
		rate     = flag.Int("rate", 200, "drive: offered load in requests/second")
		mix      = flag.String("mix", "search=55,knn=25,join=2,ingest=13,delete=5", "drive: op mix in percent")
		pool     = flag.Int("queries", 8, "drive: distinct query pool size (small = high repeat rate)")
		tau      = flag.Float64("tau", 0.4, "drive: search/join threshold")
		k        = flag.Int("k", 8, "drive: kNN k")
		verify   = flag.Float64("verify", 0.5, "drive: fraction of cache hits re-checked against a bypass query")
		sloP99   = flag.Float64("slo-p99-ms", 0, "drive: fail when served p99 exceeds this (0 disables)")
		minShed  = flag.Int("expect-shed", -1, "drive: require at least this many typed sheds (-1 disables; use in overload phases)")
		report   = flag.String("report", "", "drive: write the JSON report here (default stdout only)")
	)
	flag.Parse()

	if *drive != "" {
		os.Exit(runDrive(driveConfig{
			base: strings.TrimRight(*drive, "/"), duration: *duration, rate: *rate,
			mix: *mix, pool: *pool, tau: *tau, k: *k, verify: *verify,
			sloP99: *sloP99, minShed: *minShed, report: *report,
			genSpec: *genSpec, seed: *seed, dataset: *dataset,
		}))
	}
	os.Exit(runServer(serverConfig{
		listen: *listen, dev: *dev, spawn: *spawn, workers: *workers,
		genSpec: *genSpec, seed: *seed, dataset: *dataset, measure: *measure,
		cacheEntries: *cacheEntries, cacheBytes: *cacheBytes,
		budgetUS: *budgetUS, maxQueue: *maxQueue, queueTimeout: *queueTimeout,
		reqTimeout: *reqTimeout,
	}))
}

// --- server mode ---

type serverConfig struct {
	listen, workers, genSpec, dataset, measure string
	dev                                        bool
	spawn                                      int
	seed                                       int64
	cacheEntries, cacheBytes, maxQueue         int
	budgetUS                                   int64
	queueTimeout, reqTimeout                   time.Duration
}

func generate(spec string, seed int64) (*traj.Dataset, error) {
	parts := strings.SplitN(spec, ":", 2)
	n := 2000
	if len(parts) == 2 {
		if v, err := strconv.Atoi(parts[1]); err == nil {
			n = v
		}
	}
	switch parts[0] {
	case "beijing":
		return gen.Generate(gen.BeijingLike(n, seed)), nil
	case "chengdu":
		return gen.Generate(gen.ChengduLike(n, seed)), nil
	case "osm":
		return gen.Generate(gen.OSMLike(n, seed)), nil
	}
	return nil, fmt.Errorf("unknown preset %q", parts[0])
}

func runServer(cfg serverConfig) int {
	data, err := generate(cfg.genSpec, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dita-serve: %v\n", err)
		return 2
	}
	data.Name = cfg.dataset

	var backend serve.Backend
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	switch {
	case cfg.dev:
		if err := devMeasureSupported(cfg.measure); err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve: %v\n", err)
			return 2
		}
		e, err := core.NewEngine(data, core.DefaultOptions())
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve: build engine: %v\n", err)
			return 1
		}
		if _, err := e.EnableIngest(core.IngestConfig{}); err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve: enable ingest: %v\n", err)
			return 1
		}
		backend = &serve.EngineBackend{E: e, Dataset: cfg.dataset}
		fmt.Printf("dita-serve: dev mode, %d trajectories in-process\n", data.Len())
	default:
		var addrs []string
		if cfg.spawn > 0 {
			for i := 0; i < cfg.spawn; i++ {
				w := dnet.NewWorker()
				addr, err := w.Serve("127.0.0.1:0")
				if err != nil {
					fmt.Fprintf(os.Stderr, "dita-serve: spawn worker: %v\n", err)
					return 1
				}
				closers = append(closers, func() { w.Close() })
				addrs = append(addrs, addr)
			}
			fmt.Printf("dita-serve: spawned %d loopback workers\n", cfg.spawn)
		} else if cfg.workers != "" {
			addrs = strings.Split(cfg.workers, ",")
		} else {
			fmt.Fprintln(os.Stderr, "dita-serve: need -dev, -spawn N, or -workers addr,...")
			return 2
		}
		ncfg := dnet.DefaultNetConfig()
		ncfg.Measure.Name = cfg.measure
		c, err := dnet.Connect(addrs, ncfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve: %v\n", err)
			return 1
		}
		closers = append(closers, func() { c.Close() })
		start := time.Now()
		if err := c.Dispatch(cfg.dataset, data); err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve: dispatch: %v\n", err)
			return 1
		}
		fmt.Printf("dita-serve: dispatched %d trajectories across %d workers in %v\n",
			data.Len(), len(addrs), time.Since(start).Round(time.Millisecond))
		backend = &serve.CoordBackend{C: c, Dataset: cfg.dataset}
	}

	reg := obs.New()
	srv, err := serve.New(serve.Config{
		Backend: backend, Dataset: cfg.dataset, Measure: cfg.measure,
		CacheEntries: cfg.cacheEntries, CacheBytes: cfg.cacheBytes,
		CostBudgetUS: cfg.budgetUS, MaxQueue: cfg.maxQueue,
		QueueTimeout: cfg.queueTimeout, RequestTimeout: cfg.reqTimeout,
		Obs: reg,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dita-serve: %v\n", err)
		return 1
	}
	hs := &http.Server{Addr: cfg.listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("dita-serve: listening on http://%s (endpoints: /v1/{search,knn,join,ingest,delete}, /metrics, /healthz, /readyz)\n", cfg.listen)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dita-serve: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Printf("dita-serve: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve: shutdown: %v\n", err)
			return 1
		}
		st := srv.CacheStats()
		fmt.Printf("dita-serve: shut down (cache: %d hits, %d misses, %d stale-invalidated, %d evicted)\n",
			st.Hits, st.Misses, st.Stale, st.Evicted)
		return 0
	}
}

func devMeasureSupported(name string) error {
	switch strings.ToUpper(name) {
	case "DTW":
		return nil
	}
	return fmt.Errorf("dev mode supports -measure DTW (got %q); use cluster mode for others", name)
}

// --- drive mode ---

type driveConfig struct {
	base, mix, report, genSpec, dataset string
	duration                            time.Duration
	rate, pool, k, minShed              int
	tau, verify, sloP99                 float64
	seed                                int64
}

// driveReport is the SLO/cache/shed summary the soak harness consumes.
type driveReport struct {
	DurationS   float64 `json:"duration_s"`
	Offered     int64   `json:"offered"`
	Completed   int64   `json:"completed"`
	QPS         float64 `json:"qps"`
	CacheHits   int64   `json:"cache_hits"`
	CacheHitPct float64 `json:"cache_hit_pct"`
	Coalesced   int64   `json:"coalesced"`
	Shed        int64   `json:"shed"`
	ShedPct     float64 `json:"shed_pct"`
	Backlog503  int64   `json:"backlog_503"`
	Untyped     int64   `json:"untyped_failures"`
	HitsChecked int64   `json:"hits_checked"`
	StaleHits   int64   `json:"stale_hits"`
	P50MS       float64 `json:"p50_served_ms"`
	P99MS       float64 `json:"p99_served_ms"`
	SLOP99MS    float64 `json:"slo_p99_ms,omitempty"`
	SLOOK       bool    `json:"slo_ok"`
}

type opKind int

const (
	opSearch opKind = iota
	opKNN
	opJoin
	opIngest
	opDelete
)

func parseMix(spec string) ([100]opKind, error) {
	var table [100]opKind
	names := map[string]opKind{"search": opSearch, "knn": opKNN, "join": opJoin, "ingest": opIngest, "delete": opDelete}
	i, total := 0, 0
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return table, fmt.Errorf("bad mix element %q", part)
		}
		kind, ok := names[kv[0]]
		if !ok {
			return table, fmt.Errorf("unknown op %q", kv[0])
		}
		pct, err := strconv.Atoi(kv[1])
		if err != nil || pct < 0 {
			return table, fmt.Errorf("bad percentage %q", kv[1])
		}
		total += pct
		for n := 0; n < pct && i < 100; n++ {
			table[i] = kind
			i++
		}
	}
	if total != 100 {
		return table, fmt.Errorf("mix percentages sum to %d, want 100", total)
	}
	return table, nil
}

func runDrive(cfg driveConfig) int {
	table, err := parseMix(cfg.mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dita-serve -drive: %v\n", err)
		return 2
	}
	data, err := generate(cfg.genSpec, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dita-serve -drive: %v\n", err)
		return 2
	}
	queries := gen.Queries(data, cfg.pool, cfg.seed+1)
	extra := gen.Generate(gen.BeijingLike(256, cfg.seed+2))

	client := &http.Client{Timeout: 5 * time.Second}
	var (
		mu       sync.Mutex
		rep      driveReport
		latencies []float64
		rng      = rand.New(rand.NewSource(cfg.seed + 3))
		rngMu    sync.Mutex
	)
	record := func(f func(*driveReport)) {
		mu.Lock()
		f(&rep)
		mu.Unlock()
	}

	postOnce := func(path string, body any) (int, string, queryResponse, error) {
		raw, _ := json.Marshal(body)
		resp, err := client.Post(cfg.base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			return 0, "", queryResponse{}, err
		}
		defer resp.Body.Close()
		var qr queryResponse
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		_ = json.Unmarshal(b, &qr)
		return resp.StatusCode, resp.Header.Get("X-Dita-Cache"), qr, nil
	}

	doOp := func(kind opKind, i int) {
		rngMu.Lock()
		qi := rng.Intn(len(queries))
		sample := rng.Float64() < cfg.verify
		rngMu.Unlock()
		q := queries[qi]
		var path string
		var body any
		switch kind {
		case opSearch:
			path, body = "/v1/search", searchBody{Query: rawPts(q.Points), Tau: cfg.tau}
		case opKNN:
			path, body = "/v1/knn", knnBody{Query: rawPts(q.Points), K: cfg.k}
		case opJoin:
			path, body = "/v1/join", joinBody{Tau: cfg.tau / 2}
		case opIngest:
			tr := extra.Trajs[i%len(extra.Trajs)]
			path, body = "/v1/ingest", ingestBody{ID: tr.ID + 500000, Points: rawPts(tr.Points)}
		case opDelete:
			tr := extra.Trajs[i%len(extra.Trajs)]
			path, body = "/v1/delete", deleteBody{ID: tr.ID + 500000}
		}
		start := time.Now()
		status, state, qr, err := postOnce(path, body)
		elapsed := time.Since(start)
		if err != nil {
			record(func(r *driveReport) { r.Untyped++ })
			return
		}
		switch status {
		case http.StatusOK:
			record(func(r *driveReport) {
				r.Completed++
				if state == "hit" {
					r.CacheHits++
				}
				if state == "coalesced" {
					r.Coalesced++
				}
			})
			mu.Lock()
			latencies = append(latencies, float64(elapsed.Microseconds())/1000)
			mu.Unlock()
		case http.StatusTooManyRequests:
			record(func(r *driveReport) { r.Shed++ })
		case http.StatusServiceUnavailable:
			record(func(r *driveReport) { r.Backlog503++ })
		default:
			record(func(r *driveReport) { r.Untyped++ })
		}
		// Stale detection: re-check sampled hit AND coalesced responses
		// against a bypass query (a coalesced answer fills the cache, so
		// the re-query exercises the same epoch snapshot the waiter was
		// served from). A write can land between the pair, so a mismatch
		// is retried; only a persistent mismatch counts as stale.
		if status == http.StatusOK && (state == "hit" || state == "coalesced") && (kind == opSearch || kind == opKNN) && sample {
			record(func(r *driveReport) { r.HitsChecked++ })
			stale := true
			for attempt := 0; attempt < 3 && stale; attempt++ {
				cs, cstate, cached, err1 := postOnce(path, body)
				bs, _, live, err2 := postOnce(path+"?cache=bypass", body)
				if err1 != nil || err2 != nil || cs != http.StatusOK || bs != http.StatusOK {
					stale = false // overload/transport noise, not staleness evidence
					break
				}
				if cstate != "hit" || hitsFingerprint(cached.Hits) == hitsFingerprint(live.Hits) {
					stale = false
				}
			}
			if stale {
				record(func(r *driveReport) { r.StaleHits++ })
			}
			_ = qr
		}
	}

	fmt.Printf("dita-serve -drive: offering %d req/s for %v against %s (mix %s)\n",
		cfg.rate, cfg.duration, cfg.base, cfg.mix)
	interval := time.Second / time.Duration(cfg.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	deadline := time.After(cfg.duration)
	var wg sync.WaitGroup
	start := time.Now()
	i := 0
loop:
	for {
		select {
		case <-ticker.C:
			rep.Offered++
			i++
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rngMu.Lock()
				kind := table[rng.Intn(100)]
				rngMu.Unlock()
				doOp(kind, i)
			}(i)
		case <-deadline:
			break loop
		}
	}
	ticker.Stop()
	wg.Wait()
	elapsed := time.Since(start)

	mu.Lock()
	rep.DurationS = elapsed.Seconds()
	rep.QPS = float64(rep.Completed) / elapsed.Seconds()
	if rep.Completed > 0 {
		rep.CacheHitPct = 100 * float64(rep.CacheHits) / float64(rep.Completed)
	}
	if rep.Offered > 0 {
		rep.ShedPct = 100 * float64(rep.Shed+rep.Backlog503) / float64(rep.Offered)
	}
	sort.Float64s(latencies)
	rep.P50MS = percentile(latencies, 0.50)
	rep.P99MS = percentile(latencies, 0.99)
	rep.SLOP99MS = cfg.sloP99
	rep.SLOOK = cfg.sloP99 <= 0 || rep.P99MS <= cfg.sloP99
	out, _ := json.MarshalIndent(rep, "", "  ")
	mu.Unlock()

	fmt.Println(string(out))
	if cfg.report != "" {
		if err := os.WriteFile(cfg.report, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dita-serve -drive: write report: %v\n", err)
			return 1
		}
	}

	fail := false
	if rep.StaleHits > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d stale cache hits\n", rep.StaleHits)
		fail = true
	}
	if rep.Untyped > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d untyped failures (overload must be typed 429/503, not timeouts)\n", rep.Untyped)
		fail = true
	}
	if !rep.SLOOK {
		fmt.Fprintf(os.Stderr, "FAIL: p99 %.1fms breaches SLO %.1fms\n", rep.P99MS, cfg.sloP99)
		fail = true
	}
	if cfg.minShed >= 0 && rep.Shed+rep.Backlog503 < int64(cfg.minShed) {
		fmt.Fprintf(os.Stderr, "FAIL: expected >= %d typed sheds, saw %d\n", cfg.minShed, rep.Shed+rep.Backlog503)
		fail = true
	}
	if fail {
		return 1
	}
	return 0
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func hitsFingerprint(hits []serveHit) string {
	s := make([]string, len(hits))
	for i, h := range hits {
		s[i] = fmt.Sprintf("%d:%.9g", h.ID, h.Distance)
	}
	sort.Strings(s)
	return strings.Join(s, ",")
}

// Wire types mirroring internal/serve's JSON API (kept local so the
// driver exercises the real HTTP contract, not shared structs).
type serveHit struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

type queryResponse struct {
	Hits  []serveHit `json:"hits"`
	Count int        `json:"count"`
	Cache string     `json:"cache"`
}

type searchBody struct {
	Query [][2]float64 `json:"query"`
	Tau   float64      `json:"tau"`
}

type knnBody struct {
	Query [][2]float64 `json:"query"`
	K     int          `json:"k"`
}

type joinBody struct {
	Right string  `json:"right,omitempty"`
	Tau   float64 `json:"tau"`
}

type ingestBody struct {
	ID     int          `json:"id"`
	Points [][2]float64 `json:"points"`
}

type deleteBody struct {
	ID int `json:"id"`
}

func rawPts(ps []geom.Point) [][2]float64 {
	out := make([][2]float64, len(ps))
	for i, p := range ps {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}
