// Command dita-worker runs one network-mode DITA worker: a TCP server that
// holds partitions (trajectories + trie indexes) in memory and serves
// Load/Search/Join RPCs from a coordinator and join shipments from peer
// workers.
//
// Usage:
//
//	dita-worker -listen 127.0.0.1:7001
//
// On SIGINT the worker first cancels in-flight queries (Search/Ship/Join
// work aborts at its next cancellation check), then drains like SIGTERM:
// stop accepting work, finish in-flight RPCs (up to -drain), exit. A
// second signal forces an immediate close.
//
// Pair with cmd/dita-net (the coordinator CLI) or the dnet API.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dita/internal/dnet"
	"dita/internal/obs"
	"dita/internal/snap"
	"dita/internal/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
	drain := flag.Duration("drain", 5*time.Second, "max time to wait for in-flight RPCs on shutdown")
	chaos := flag.String("chaos", "", "fault-injection spec for soak testing, e.g. seed=7,drop=0.05,err=0.01,delay=2ms,sever=500 (testing only)")
	snapDir := flag.String("snapshot-dir", "", "directory for durable partition snapshots; on startup the worker cold-starts from it (empty disables persistence)")
	snapChaos := flag.String("snap-chaos", "", "snapshot-write fault-injection spec, e.g. seed=7,crash=0.1,fail=0.02,torn=0.2,flip=0.1 (testing only; requires -snapshot-dir)")
	walChaos := flag.String("wal-chaos", "", "WAL-append fault-injection spec, same grammar as -snap-chaos (testing only; requires -snapshot-dir)")
	mergeBytes := flag.Int("merge-bytes", 0, "per-partition delta size that triggers a merge (fold overlay, seal snapshot, truncate WAL); 0 uses the default")
	maxDeltaBytes := flag.Int("max-delta-bytes", 0, "per-partition backpressure bound: ingest batches are refused past this delta size; 0 uses the default")
	metricsAddr := flag.String("metrics-addr", "", "address to serve /metrics, /metrics.json, /debug/vars, and /debug/pprof on (empty disables)")
	verifyPar := flag.Int("verify-parallelism", 0, "verification goroutines per Search/Join RPC (0 = all cores, 1 = sequential)")
	flag.Parse()

	w := dnet.NewWorker()
	w.VerifyParallelism = *verifyPar
	if *metricsAddr != "" {
		reg := obs.New()
		w.Instrument(reg)
		h := obs.NewHealth()
		h.SetCheck("worker", w.Ready)
		ln, err := obs.Serve(*metricsAddr, reg, h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-worker: metrics: %v\n", err)
			os.Exit(2)
		}
		defer ln.Close()
		fmt.Printf("dita-worker metrics on http://%s/metrics\n", ln.Addr())
	}
	if *chaos != "" {
		plan, err := dnet.ParseFaultPlan(*chaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-worker: %v\n", err)
			os.Exit(2)
		}
		w.FaultInjection = &plan
		fmt.Printf("dita-worker: fault injection active: %+v\n", plan)
	}
	if *snapChaos != "" && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "dita-worker: -snap-chaos requires -snapshot-dir")
		os.Exit(2)
	}
	if *walChaos != "" && *snapDir == "" {
		fmt.Fprintln(os.Stderr, "dita-worker: -wal-chaos requires -snapshot-dir")
		os.Exit(2)
	}
	w.MergeBytes = *mergeBytes
	w.MaxDeltaBytes = *maxDeltaBytes
	if *snapDir != "" {
		st, err := snap.NewStore(*snapDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-worker: snapshot dir: %v\n", err)
			os.Exit(2)
		}
		if *snapChaos != "" {
			plan, err := snap.ParseFaultPlan(*snapChaos)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dita-worker: %v\n", err)
				os.Exit(2)
			}
			st.Faults = plan
			fmt.Printf("dita-worker: snapshot fault injection active: %s\n", *snapChaos)
		}
		w.SnapStore = st
		// The WAL shares the snapshot directory: a partition's durable
		// state is the pair (sealed snapshot, log suffix past its
		// watermark), and they recover together.
		ws, err := wal.NewStore(*snapDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-worker: wal dir: %v\n", err)
			os.Exit(2)
		}
		if *walChaos != "" {
			plan, err := snap.ParseFaultPlan(*walChaos)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dita-worker: %v\n", err)
				os.Exit(2)
			}
			ws.Faults = plan
			fmt.Printf("dita-worker: wal fault injection active: %s\n", *walChaos)
		}
		w.WALStore = ws
		rep, err := w.LoadSnapshots()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dita-worker: cold start: %v\n", err)
			os.Exit(1)
		}
		walRecords, walTruncated := 0, int64(0)
		for _, l := range rep.Loaded {
			fmt.Printf("dita-worker: restored %s/%d: %d trajectories, %d bytes, fingerprint %016x, %d WAL records replayed\n",
				l.Dataset, l.Partition, l.Trajs, l.Bytes, l.Fingerprint, l.WALRecords)
			walRecords += l.WALRecords
			walTruncated += l.WALTruncatedBytes
		}
		for _, s := range rep.Skipped {
			fmt.Fprintf(os.Stderr, "dita-worker: skipped %s [%s]: %s\n", s.Path, s.Class, s.Err)
		}
		fmt.Printf("dita-worker: cold start from %s: %d partitions restored, %d files skipped, %d WAL records replayed, %d torn WAL bytes truncated\n",
			*snapDir, len(rep.Loaded), len(rep.Skipped), walRecords, walTruncated)
	}
	addr, err := w.Serve(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dita-worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dita-worker listening on %s\n", addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if s == os.Interrupt {
		// Interrupt means "stop what you're doing": abort queries in
		// progress before the drain so the drain isn't spent waiting on
		// work nobody wants anymore.
		fmt.Println("dita-worker: interrupt, cancelling in-flight queries")
		w.CancelInflight()
	}
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "dita-worker: second %v, closing immediately\n", s)
		w.Close()
		os.Exit(1)
	}()
	fmt.Printf("dita-worker: %v, draining (max %v)\n", s, *drain)
	if err := w.Shutdown(*drain); err != nil {
		fmt.Fprintf(os.Stderr, "dita-worker: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("dita-worker: shut down")
}
