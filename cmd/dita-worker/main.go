// Command dita-worker runs one network-mode DITA worker: a TCP server that
// holds partitions (trajectories + trie indexes) in memory and serves
// Load/Search/Join RPCs from a coordinator and join shipments from peer
// workers.
//
// Usage:
//
//	dita-worker -listen 127.0.0.1:7001
//
// Pair with cmd/dita-net (the coordinator CLI) or the dnet API.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"dita/internal/dnet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "address to listen on (port 0 picks a free port)")
	flag.Parse()

	w := dnet.NewWorker()
	addr, err := w.Serve(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dita-worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dita-worker listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	w.Close()
	fmt.Println("dita-worker: shut down")
}
