// Command ditabench regenerates the paper's tables and figures (Section 7,
// Appendices B–C) on the synthetic stand-in datasets.
//
// Usage:
//
//	ditabench -list                         # enumerate experiment ids
//	ditabench -exp fig7a                    # one experiment, aligned text
//	ditabench -exp fig7a,fig9a -tsv         # several, tab-separated
//	ditabench -exp all -scale 0.2           # full suite at reduced scale
//
// Scale, worker count and query count are adjustable; EXPERIMENTS.md
// records the reference run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dita/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	expFlag := flag.String("exp", "", "comma-separated experiment ids, or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	workers := flag.Int("workers", 8, "simulated worker (core) count")
	queries := flag.Int("queries", 100, "search workload size")
	seed := flag.Int64("seed", 42, "generation seed")
	tsv := flag.Bool("tsv", false, "emit tab-separated values instead of aligned text")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-8s %s\n", id, exp.Title(id))
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "ditabench: -exp required (or -list); e.g. -exp fig7a or -exp all")
		os.Exit(2)
	}
	cfg := exp.DefaultConfig()
	cfg.Scale = *scale
	cfg.Workers = *workers
	cfg.Queries = *queries
	cfg.Seed = *seed

	var ids []string
	if *expFlag == "all" {
		ids = exp.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		tbl, err := exp.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ditabench: %s: %v\n", id, err)
			failed++
			continue
		}
		if *tsv {
			fmt.Printf("# %s: %s\n%s\n", id, exp.Title(id), tbl.TSV())
		} else {
			fmt.Printf("%s(completed in %v)\n\n", tbl.String(), time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
