// Command ditabench regenerates the paper's tables and figures (Section 7,
// Appendices B–C) on the synthetic stand-in datasets.
//
// Usage:
//
//	ditabench -list                         # enumerate experiment ids
//	ditabench -exp fig7a                    # one experiment, aligned text
//	ditabench -exp fig7a,fig9a -tsv         # several, tab-separated
//	ditabench -exp all -scale 0.2           # full suite at reduced scale
//	ditabench -bench beijing -bench-json .  # machine-readable BENCH_beijing.json
//
// Scale, worker count and query count are adjustable; EXPERIMENTS.md
// records the reference run and the BENCH_<name>.json schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dita/internal/exp"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	expFlag := flag.String("exp", "", "comma-separated experiment ids, or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale multiplier")
	workers := flag.Int("workers", 8, "simulated worker (core) count")
	queries := flag.Int("queries", 100, "search workload size")
	seed := flag.Int64("seed", 42, "generation seed")
	tsv := flag.Bool("tsv", false, "emit tab-separated values instead of aligned text")
	bench := flag.String("bench", "beijing", "comma-separated dataset presets for -bench-json")
	benchJSON := flag.String("bench-json", "", "run latency+funnel benchmarks and write BENCH_<preset>.json into this directory")
	verifyPar := flag.Int("verify-parallelism", 0, "verification goroutines per partition (0 = all cores, 1 = sequential)")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-8s %s\n", id, exp.Title(id))
		}
		return
	}
	cfg := exp.DefaultConfig()
	cfg.Scale = *scale
	cfg.Workers = *workers
	cfg.Queries = *queries
	cfg.Seed = *seed
	cfg.VerifyParallelism = *verifyPar

	if *benchJSON != "" {
		for _, kind := range strings.Split(*bench, ",") {
			kind = strings.TrimSpace(kind)
			path := filepath.Join(*benchJSON, "BENCH_"+kind+".json")
			before := knnMeanMS(path)
			start := time.Now()
			rep, err := exp.Bench(kind, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ditabench: %v\n", err)
				os.Exit(1)
			}
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "ditabench: %v\n", err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ditabench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d trajectories, %d workloads, %v)\n",
				path, rep.Trajectories, len(rep.Workloads), time.Since(start).Round(time.Millisecond))
			if after := knnMeanMS(path); after > 0 {
				if before > 0 {
					fmt.Printf("knn mean: %.3f ms -> %.3f ms (%.2fx)\n", before, after, before/after)
				} else {
					fmt.Printf("knn mean: %.3f ms (no previous run to compare)\n", after)
				}
			}
			fmt.Printf("delta scan: %.3f ms -> %.3f ms (%+.2f%%)\n",
				rep.DeltaScanBaseMS, rep.DeltaScanDeltaMS, rep.DeltaScanOverheadPct)
			fmt.Printf("rebalance: occupancy skew %.2f -> %.2f in %d cutover(s), %.1f ms\n",
				rep.OccupancySkewBefore, rep.OccupancySkew, rep.RebalanceCutovers, rep.RebalanceMS)
			fmt.Printf("serve: %.0f qps, %.1f%% cache hits, p99 %.3f ms, %.1f%% shed under overload\n",
				rep.ServeQPS, rep.CacheHitPct, rep.P99ServedMS, rep.ShedPct)
		}
		return
	}
	if *expFlag == "" {
		fmt.Fprintln(os.Stderr, "ditabench: -exp required (or -list, -bench-json); e.g. -exp fig7a or -exp all")
		os.Exit(2)
	}

	var ids []string
	if *expFlag == "all" {
		ids = exp.IDs()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	failed := 0
	for _, id := range ids {
		start := time.Now()
		tbl, err := exp.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ditabench: %s: %v\n", id, err)
			failed++
			continue
		}
		if *tsv {
			fmt.Printf("# %s: %s\n%s\n", id, exp.Title(id), tbl.TSV())
		} else {
			fmt.Printf("%s(completed in %v)\n\n", tbl.String(), time.Since(start).Round(time.Millisecond))
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// knnMeanMS reads a previously written BENCH_<preset>.json and returns its
// knn workload's mean latency in milliseconds, or 0 when the file is
// missing or has no knn workload. Used to print a before/after comparison
// across bench-json runs.
func knnMeanMS(path string) float64 {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var rep exp.BenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return 0
	}
	for _, w := range rep.Workloads {
		if w.Workload == "knn" {
			return w.Latency.MeanMS
		}
	}
	return 0
}
