// Command dita is an interactive SQL shell (and one-shot query runner) for
// the DITA trajectory analytics engine.
//
// Usage:
//
//	dita                                      # empty catalog, REPL
//	dita -gen beijing:5000 -table trips      # preloaded synthetic table
//	dita -load trips.csv -table trips        # preloaded CSV table
//	dita -c "SELECT * FROM trips WHERE DTW(trips, TRAJECTORY((1 1),(2 2))) <= 0.5"
//
// The dialect (Section 3 of the paper):
//
//	CREATE TABLE name
//	LOAD 'file.csv' INTO name
//	CREATE INDEX idx ON name USE TRIE
//	SELECT * FROM T WHERE DTW(T, TRAJECTORY((x y), ...)) <= τ
//	SELECT * FROM T TRA-JOIN Q ON DTW(T, Q) <= τ
//	SELECT * FROM T ORDER BY DTW(T, TRAJECTORY(...)) LIMIT k
//	SHOW TABLES / SHOW INDEXES
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dita"
)

func main() {
	genSpec := flag.String("gen", "", "preload a synthetic table: preset:count (e.g. beijing:5000)")
	load := flag.String("load", "", "preload a CSV file")
	table := flag.String("table", "trips", "name for the preloaded table")
	command := flag.String("c", "", "execute one statement and exit")
	workers := flag.Int("workers", 4, "simulated worker count")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	opts := dita.DefaultOptions()
	db := dita.NewDB(dita.NewCluster(*workers), opts)

	if *genSpec != "" {
		d, err := generate(*genSpec, *seed)
		if err != nil {
			fatal(err)
		}
		db.Register(*table, d)
		fmt.Fprintf(os.Stderr, "registered %q: %d trajectories\n", *table, d.Len())
	}
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fatal(err)
		}
		d, err := dita.ReadCSV(f, *table)
		f.Close()
		if err != nil {
			fatal(err)
		}
		db.Register(*table, d)
		fmt.Fprintf(os.Stderr, "loaded %q: %d trajectories\n", *table, d.Len())
	}

	if *command != "" {
		if err := run(db, *command); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Println("DITA SQL shell — \\q to quit, \\h for help")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for {
		fmt.Print("dita> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "\\q" || line == "exit" || line == "quit":
			return
		case line == "\\h" || line == "help":
			usage()
			continue
		}
		if err := run(db, line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

func generate(spec string, seed int64) (*dita.Dataset, error) {
	parts := strings.SplitN(spec, ":", 2)
	n := 1000
	if len(parts) == 2 {
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad -gen count %q", parts[1])
		}
		n = v
	}
	switch parts[0] {
	case "beijing":
		return dita.Generate(dita.BeijingLike(n, seed)), nil
	case "chengdu":
		return dita.Generate(dita.ChengduLike(n, seed)), nil
	case "osm":
		return dita.Generate(dita.OSMLike(n, seed)), nil
	}
	return nil, fmt.Errorf("unknown preset %q", parts[0])
}

func run(db *dita.DB, sql string) error {
	res, err := db.Exec(sql)
	if err != nil {
		return err
	}
	switch {
	case res.Analyze != nil:
		fmt.Println(res.Analyze)
	case res.Message != "":
		fmt.Println(res.Message)
	case res.Tables != nil:
		for _, row := range res.Tables {
			fmt.Println(row)
		}
	case res.Pairs != nil:
		for i, p := range res.Pairs {
			if i >= 20 {
				fmt.Printf("... (%d more pairs)\n", len(res.Pairs)-20)
				break
			}
			fmt.Printf("(%d, %d)  dist=%.6f\n", p.T.ID, p.Q.ID, p.Distance)
		}
		fmt.Printf("%d pairs", len(res.Pairs))
		if res.Plan != "" {
			fmt.Printf("  [%s]", res.Plan)
		}
		fmt.Println()
	case res.Trajs == nil && res.Count > 0:
		// COUNT(*) projection.
		fmt.Printf("count: %d", res.Count)
		if res.Plan != "" {
			fmt.Printf("  [%s]", res.Plan)
		}
		fmt.Println()
	default:
		for i, r := range res.Trajs {
			if i >= 20 {
				fmt.Printf("... (%d more rows)\n", len(res.Trajs)-20)
				break
			}
			fmt.Printf("traj %-8d len=%-4d dist=%.6f\n", r.Traj.ID, r.Traj.Len(), r.Distance)
		}
		fmt.Printf("%d rows", len(res.Trajs))
		if res.Plan != "" {
			fmt.Printf("  [%s]", res.Plan)
		}
		fmt.Println()
	}
	return nil
}

func usage() {
	fmt.Println(`statements:
  CREATE TABLE name
  LOAD 'file.csv' INTO name
  CREATE INDEX idx ON name USE TRIE
  SELECT * FROM T WHERE DTW(T, TRAJECTORY((x y), (x y), ...)) <= 0.005
  SELECT * FROM T TRA-JOIN Q ON DTW(T, Q) <= 0.005
  SELECT * FROM T TRA-KNN-JOIN Q USING DTW LIMIT 3
  SELECT * FROM T ORDER BY DTW(T, TRAJECTORY(...)) LIMIT 5
  SELECT COUNT(*) FROM T WHERE DTW(T, TRAJECTORY(...)) <= 0.005
  INSERT INTO T VALUES (id, TRAJECTORY((x y), ...))
  DROP TABLE T | DROP INDEX ON T
  EXPLAIN SELECT ...
  SHOW TABLES | SHOW INDEXES
measures: DTW, FRECHET, EDR, LCSS, ERP, HAUSDORFF`)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dita: %v\n", err)
	os.Exit(1)
}
