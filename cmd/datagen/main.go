// Command datagen emits synthetic trajectory datasets in the repository's
// CSV interchange format (one trajectory per line: id,x1,y1,x2,y2,...).
//
// Usage:
//
//	datagen -preset beijing -n 10000 -seed 1 -o beijing.csv
//	datagen -preset chengdu -n 5000            # stdout
//
// The presets mimic the statistics of the paper's datasets (Table 2); see
// internal/gen.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dita"
)

func main() {
	preset := flag.String("preset", "beijing", "dataset preset: beijing, chengdu, osm")
	n := flag.Int("n", 1000, "number of trajectories")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print dataset statistics to stderr")
	flag.Parse()

	var cfg dita.GenConfig
	switch *preset {
	case "beijing":
		cfg = dita.BeijingLike(*n, *seed)
	case "chengdu":
		cfg = dita.ChengduLike(*n, *seed)
	case "osm":
		cfg = dita.OSMLike(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q (beijing, chengdu, osm)\n", *preset)
		os.Exit(2)
	}
	d := dita.Generate(cfg)

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := dita.WriteCSV(w, d); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		s := d.Stats()
		fmt.Fprintf(os.Stderr, "%s: %d trajectories, avgLen %.1f, len [%d,%d], %.2f MB\n",
			s.Name, s.Cardinality, s.AvgLen, s.MinLen, s.MaxLen, float64(s.SizeBytes)/1e6)
	}
}
