package dita_test

// Compile-checked godoc examples for the public API.

import (
	"fmt"

	"dita"
)

// ExampleNewEngine indexes a small dataset and runs a similarity search.
func ExampleNewEngine() {
	data := dita.Generate(dita.BeijingLike(1000, 1))
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	engine, err := dita.NewEngine(data, opts)
	if err != nil {
		panic(err)
	}
	q := data.Trajs[0]
	results := engine.Search(q, 0.002, nil)
	found := false
	for _, r := range results {
		if r.Traj.ID == q.ID {
			found = true
		}
	}
	fmt.Println("query found itself:", found)
	// Output: query found itself: true
}

// ExampleEngine_SearchKNN finds the nearest neighbors of a trajectory.
func ExampleEngine_SearchKNN() {
	data := dita.Generate(dita.BeijingLike(500, 2))
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(2)
	engine, _ := dita.NewEngine(data, opts)
	q := data.Trajs[7] // note: dataset order is shuffled; use the actual ID
	knn := engine.SearchKNN(q, 3)
	fmt.Println("neighbors:", len(knn), "nearest is itself:", knn[0].Traj.ID == q.ID)
	// Output: neighbors: 3 nearest is itself: true
}

// ExampleDB_Exec runs the SQL front end: DDL, index creation, and a
// parameterized similarity search.
func ExampleDB_Exec() {
	data := dita.Generate(dita.ChengduLike(800, 3))
	db := dita.NewDB(dita.NewCluster(4), dita.DefaultOptions())
	db.Register("trips", data)

	if _, err := db.Exec("CREATE INDEX TrieIndex ON trips USE TRIE"); err != nil {
		panic(err)
	}
	res, err := db.Exec("SELECT COUNT(*) FROM trips")
	if err != nil {
		panic(err)
	}
	fmt.Println("rows:", res.Count)

	plan, _ := db.Exec("EXPLAIN SELECT * FROM trips WHERE DTW(trips, ?) <= 0.005")
	fmt.Println("plan:", plan.Plan)
	// Output:
	// rows: 800
	// plan: TrieIndexSearch(trips, τ=0.005, DTW)
}

// ExampleMeasureByName resolves measures dynamically.
func ExampleMeasureByName() {
	m, _ := dita.MeasureByName("frechet", 0, 0)
	a := []dita.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	b := []dita.Point{{X: 0, Y: 1}, {X: 1, Y: 1}}
	fmt.Printf("%s = %.0f\n", m.Name(), m.Distance(a, b))
	// Output: FRECHET = 1
}

// ExampleSimplify shrinks raw traces with a bounded error.
func ExampleSimplify() {
	data := dita.Generate(dita.BeijingLike(100, 4))
	before := data.Stats().TotalPoints
	after := dita.Simplify(data, 0.0002).Stats().TotalPoints
	fmt.Println("simplification reduced points:", after < before)
	// Output: simplification reduced points: true
}
