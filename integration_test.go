package dita_test

// End-to-end integration tests across the public API: ingestion →
// preprocessing → indexing → querying through every front end, plus
// consistency between the engine, SQL, and DataFrame paths.

import (
	"bytes"
	"sync"
	"testing"

	"dita"
)

// TestPipelineCSVRoundTrip drives the full ingestion pipeline: generate →
// CSV → read back → simplify → index → query, asserting result
// consistency at each stage.
func TestPipelineCSVRoundTrip(t *testing.T) {
	orig := dita.Generate(dita.BeijingLike(400, 50))
	var buf bytes.Buffer
	if err := dita.WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := dita.ReadCSV(&buf, "loaded")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatalf("CSV round trip lost data: %d vs %d", loaded.Len(), orig.Len())
	}
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	e1, err := dita.NewEngine(orig, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := dita.NewEngine(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := dita.Queries(orig, 5, 51)
	for _, query := range q {
		r1 := e1.Search(query, 0.005, nil)
		r2 := e2.Search(query, 0.005, nil)
		if len(r1) != len(r2) {
			t.Fatalf("results diverge after CSV round trip: %d vs %d", len(r1), len(r2))
		}
	}

	// Simplification: results on simplified data stay close (every point
	// moves at most eps, so DTW changes by at most eps per aligned pair) —
	// here we only assert the pipeline runs and the dataset stays valid.
	simp := dita.Simplify(orig, 0.0001)
	if err := simp.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := dita.NewEngine(simp, opts); err != nil {
		t.Fatal(err)
	}
}

// TestFrontEndConsistency asserts the three query paths (engine API, SQL,
// DataFrame) return identical result sets, for search, join, and kNN.
func TestFrontEndConsistency(t *testing.T) {
	data := dita.Generate(dita.ChengduLike(500, 52))
	cl := dita.NewCluster(4)
	opts := dita.DefaultOptions()
	opts.Cluster = cl
	db := dita.NewDB(cl, opts)
	db.Register("t", data)
	if _, err := db.Exec("CREATE INDEX i ON t USE TRIE"); err != nil {
		t.Fatal(err)
	}
	df, err := db.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dita.NewEngine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := dita.Queries(data, 1, 53)[0]

	api := eng.Search(q, 0.004, nil)
	sql, err := db.Exec("SELECT * FROM t WHERE DTW(t, ?) <= 0.004", q)
	if err != nil {
		t.Fatal(err)
	}
	dfr, err := df.SimilaritySearch(q, "DTW", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if len(api) != len(sql.Trajs) || len(api) != len(dfr) {
		t.Fatalf("front ends disagree: api=%d sql=%d df=%d", len(api), len(sql.Trajs), len(dfr))
	}
	for i := range api {
		if api[i].Traj.ID != sql.Trajs[i].Traj.ID || api[i].Traj.ID != dfr[i].Traj.ID {
			t.Fatalf("result %d differs across front ends", i)
		}
	}

	// kNN consistency.
	knnAPI := eng.SearchKNN(q, 4)
	knnSQL, err := db.Exec("SELECT * FROM t ORDER BY DTW(t, ?) LIMIT 4", q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range knnAPI {
		if knnAPI[i].Traj.ID != knnSQL.Trajs[i].Traj.ID {
			t.Fatalf("kNN result %d differs", i)
		}
	}
}

// TestConcurrentQueries hammers one DB from several goroutines; results
// must stay correct and the race detector must stay quiet.
func TestConcurrentQueries(t *testing.T) {
	data := dita.Generate(dita.BeijingLike(300, 54))
	db := dita.NewDB(dita.NewCluster(4), dita.DefaultOptions())
	db.Register("t", data)
	if _, err := db.Exec("CREATE INDEX i ON t USE TRIE"); err != nil {
		t.Fatal(err)
	}
	qs := dita.Queries(data, 8, 55)
	want := make([]int, len(qs))
	for i, q := range qs {
		res, err := db.Exec("SELECT * FROM t WHERE DTW(t, ?) <= 0.004", q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = len(res.Trajs)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range qs {
				res, err := db.Exec("SELECT * FROM t WHERE DTW(t, ?) <= 0.004", q)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Trajs) != want[i] {
					errs <- errMismatch(i, len(res.Trajs), want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ i, got, want int }

func errMismatch(i, got, want int) error { return mismatchError{i, got, want} }
func (e mismatchError) Error() string {
	return "concurrent query result drift"
}

// TestKNNJoinPublicAPI exercises the kNN join through the facade.
func TestKNNJoinPublicAPI(t *testing.T) {
	data := dita.Generate(dita.BeijingLike(120, 56))
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(2)
	e1, err := dita.NewEngine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := dita.NewEngine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	nn, err := e1.KNNJoin(e2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != data.Len() {
		t.Fatalf("KNNJoin covered %d of %d", len(nn), data.Len())
	}
	for id, res := range nn {
		if len(res) != 1 || res[0].Traj.ID != id {
			t.Fatalf("1-NN of %d in identical dataset should be itself, got %v", id, res)
		}
	}
}

// TestMiningPublicAPI runs clustering and frequent-route mining through
// the facade on route-shared data.
func TestMiningPublicAPI(t *testing.T) {
	data := dita.Generate(dita.BeijingLike(400, 60))
	opts := dita.DefaultOptions()
	opts.Cluster = dita.NewCluster(4)
	eng, err := dita.NewEngine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	clusters := dita.ClusterTrajectories(eng, dita.MiningOptions{Tau: 0.003, MinSupport: 3})
	if len(clusters) == 0 {
		t.Fatal("no clusters found on route-shared data")
	}
	covered := 0
	for _, c := range clusters {
		covered += c.Support()
	}
	if covered < data.Len()/10 {
		t.Errorf("clusters cover only %d of %d trajectories", covered, data.Len())
	}
	routes := dita.FrequentRoutes(eng, dita.MiningOptions{Tau: 0.003, MinSupport: 3})
	if len(routes) == 0 {
		t.Fatal("no frequent routes on route-shared data")
	}
	if routes[0].Support < routes[len(routes)-1].Support {
		t.Error("routes not sorted by support")
	}
	out := dita.Outliers(eng, 0.001, 1)
	if len(out) == 0 || len(out) == data.Len() {
		t.Errorf("outliers = %d of %d; expected a strict subset", len(out), data.Len())
	}
}
