package core

import (
	"context"
	"math"
	"testing"

	"dita/internal/cluster"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

// Degenerate geometry: all-identical points, duplicated trajectories,
// zero-length segments. The engine must index and answer exactly.
func TestDegenerateGeometry(t *testing.T) {
	same := geom.Point{X: 1, Y: 1}
	d := traj.NewDataset("degenerate", []*traj.T{
		{ID: 0, Points: []geom.Point{same, same, same}},             // stationary
		{ID: 1, Points: []geom.Point{same, same}},                   // stationary short
		{ID: 2, Points: []geom.Point{same, same, same}},             // duplicate of 0
		{ID: 3, Points: []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1.1}}}, // nearly stationary
		{ID: 4, Points: []geom.Point{{X: 9, Y: 9}, {X: 9, Y: 9}}},   // far away
	})
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	got := e.Search(q, 0.5, nil)
	want := bruteSearch(d, measure.DTW{}, q, 0.5)
	if len(got) != len(want) {
		t.Fatalf("degenerate search: %d results, want %d", len(got), len(want))
	}
	// Self-join on degenerate data.
	e2, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	pairs := e.Join(e2, 0.5, DefaultJoinOptions(), nil)
	wantPairs := 0
	for _, a := range d.Trajs {
		for _, b := range d.Trajs {
			if (measure.DTW{}).Distance(a.Points, b.Points) <= 0.5 {
				wantPairs++
			}
		}
	}
	if len(pairs) != wantPairs {
		t.Fatalf("degenerate join: %d pairs, want %d", len(pairs), wantPairs)
	}
}

// NG=1 (single partition) must behave like a centralized index.
func TestSinglePartition(t *testing.T) {
	d := smallDataset(200, 40)
	opts := smallOpts(2)
	opts.NG = 1
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.Partitions()); got != 1 {
		t.Fatalf("NG=1 produced %d partitions", got)
	}
	q := gen.Queries(d, 1, 41)[0]
	want := bruteSearch(d, measure.DTW{}, q, 0.03)
	if got := e.Search(q, 0.03, nil); len(got) != len(want) {
		t.Fatalf("single-partition search: %d vs %d", len(got), len(want))
	}
}

// A huge tau returns everything exactly once.
func TestHugeTau(t *testing.T) {
	d := smallDataset(150, 42)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	got := e.Search(q, math.Inf(1), nil)
	if len(got) != d.Len() {
		t.Fatalf("tau=+Inf returned %d of %d", len(got), d.Len())
	}
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r.Traj.ID] {
			t.Fatal("duplicate under huge tau")
		}
		seen[r.Traj.ID] = true
	}
}

// Negative tau returns nothing: distances are non-negative, so even the
// exact self match (distance 0) fails 0 <= -1.
func TestNegativeTau(t *testing.T) {
	d := smallDataset(50, 43)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Search(d.Trajs[0], -1, nil); len(got) != 0 {
		t.Fatalf("negative tau returned %d results", len(got))
	}
}

// Extreme join options must not break correctness.
func TestJoinOptionExtremes(t *testing.T) {
	d := smallDataset(80, 44)
	want := bruteJoin(d, d, measure.DTW{}, 0.02)
	for _, opts := range []JoinOptions{
		{SampleRate: 1.0, Lambda: 1e9, DivisionQuantile: 0.5, Seed: 1},    // network-cost dominated
		{SampleRate: 0.01, Lambda: 1e-9, DivisionQuantile: 0.99, Seed: 2}, // compute dominated, tiny sample
		{SampleRate: -5, Lambda: -1, DivisionQuantile: 7, Seed: 3},        // nonsense -> defaults
	} {
		e1, err := NewEngine(d, smallOpts(4))
		if err != nil {
			t.Fatal(err)
		}
		e2, err := NewEngine(d, smallOpts(4))
		if err != nil {
			t.Fatal(err)
		}
		pairs := e1.Join(e2, 0.02, opts, nil)
		checkJoin(t, pairs, want, "extreme options")
	}
}

// Many more workers than partitions: everything still lands somewhere
// valid.
func TestMoreWorkersThanPartitions(t *testing.T) {
	d := smallDataset(60, 45)
	opts := DefaultOptions()
	opts.NG = 1
	opts.Cluster = cluster.New(cluster.DefaultConfig(16))
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	want := bruteSearch(d, measure.DTW{}, q, 0.05)
	if got := e.Search(q, 0.05, nil); len(got) != len(want) {
		t.Fatalf("search with 16 workers 1 partition: %d vs %d", len(got), len(want))
	}
}

// SearchBatch with nil/empty entries skips them without panicking.
func TestSearchBatchNilEntries(t *testing.T) {
	d := smallDataset(60, 46)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	qs := []*traj.T{d.Trajs[0], nil, {}, d.Trajs[1]}
	out := e.SearchBatch(qs, 0.03)
	if len(out) != 4 {
		t.Fatalf("batch returned %d slots", len(out))
	}
	if out[1] != nil || out[2] != nil {
		t.Error("nil/empty queries should yield nil results")
	}
	if len(out[0]) == 0 {
		t.Error("valid query lost its results")
	}
}

// Engines over an empty dataset behave sanely.
func TestEmptyDataset(t *testing.T) {
	d := traj.NewDataset("empty", nil)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	q := &traj.T{ID: 1, Points: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	if got := e.Search(q, 10, nil); len(got) != 0 {
		t.Errorf("empty dataset returned %d results", len(got))
	}
	if got := e.SearchKNN(q, 3); got != nil {
		t.Errorf("empty dataset kNN = %v", got)
	}
	e2, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if pairs := e.Join(e2, 10, DefaultJoinOptions(), nil); len(pairs) != 0 {
		t.Errorf("empty join = %d pairs", len(pairs))
	}
}

// TestSearchBatchPoisonedPartition: one partition's verification panics;
// SearchBatchContext must report the skip per affected query, keep the
// survivors' hits, and be exact again after the fault clears.
func TestSearchBatchPoisonedPartition(t *testing.T) {
	d := smallDataset(300, 51)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	target := 1
	// Query each partition with one of its own members so the poisoned
	// partition is guaranteed relevant to at least one query.
	var qs []*traj.T
	for _, p := range e.Partitions() {
		qs = append(qs, p.Trajs[0])
	}
	tau := 0.05
	undo := poisonPartition(e, target)
	out, reports, err := e.SearchBatchContext(context.Background(), qs, tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(qs) || len(reports) != len(qs) {
		t.Fatalf("batch shape: %d results, %d reports for %d queries", len(out), len(reports), len(qs))
	}
	sawSkip := false
	for qi, rep := range reports {
		for _, s := range rep.Skipped {
			sawSkip = true
			if s.Partition != target {
				t.Errorf("q%d: skipped partition %d, want %d", qi, s.Partition, target)
			}
		}
	}
	if !sawSkip {
		t.Fatal("no query reported the poisoned partition skipped")
	}
	// The poisoned partition's own query must still see survivors' hits
	// and, critically, never a hit from the dead partition.
	undo()
	want, reports2, err := e.SearchBatchContext(context.Background(), qs, tau)
	if err != nil {
		t.Fatal(err)
	}
	for qi, rep := range reports2 {
		if rep.Partial() {
			t.Fatalf("q%d: still partial after fault cleared: %+v", qi, rep.Skipped)
		}
		// Every hit from the faulted run must be in the exact answer.
		exact := map[int]bool{}
		for _, r := range want[qi] {
			exact[r.Traj.ID] = true
		}
		for _, r := range out[qi] {
			if !exact[r.Traj.ID] {
				t.Errorf("q%d: faulted run invented hit %d", qi, r.Traj.ID)
			}
		}
		if len(out[qi]) == 0 && len(want[qi]) > 1 {
			t.Errorf("q%d: faulted run lost all %d hits", qi, len(want[qi]))
		}
	}
}
