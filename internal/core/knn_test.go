package core

import (
	"context"
	"math"
	"sort"
	"testing"

	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

func bruteKNN(d *traj.Dataset, m measure.Measure, q *traj.T, k int) []int {
	type dr struct {
		id int
		d  float64
	}
	ds := make([]dr, 0, d.Len())
	for _, t := range d.Trajs {
		ds = append(ds, dr{t.ID, m.Distance(t.Points, q.Points)})
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].id < ds[b].id
	})
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].id
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	d := smallDataset(250, 20)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.Queries(d, 6, 21) {
		for _, k := range []int{1, 5, 20} {
			want := bruteKNN(d, measure.DTW{}, q, k)
			got := e.SearchKNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].Traj.ID != want[i] {
					t.Fatalf("k=%d: result %d = traj %d, want %d", k, i, got[i].Traj.ID, want[i])
				}
			}
			// Distances ascending.
			for i := 1; i < len(got); i++ {
				if got[i].Distance < got[i-1].Distance {
					t.Fatalf("k=%d: results not sorted by distance", k)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	d := smallDataset(30, 22)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	if got := e.SearchKNN(q, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := e.SearchKNN(nil, 3); got != nil {
		t.Error("nil query should return nil")
	}
	// k larger than the dataset returns everything.
	if got := e.SearchKNN(q, 1000); len(got) != d.Len() {
		t.Errorf("k>n returned %d, want %d", len(got), d.Len())
	}
	// 1-NN of a dataset member is itself.
	if got := e.SearchKNN(q, 1); len(got) != 1 || got[0].Traj.ID != q.ID {
		t.Errorf("1-NN of member = %v", got)
	}
}

func TestKNNJoinMatchesBruteForce(t *testing.T) {
	a := smallDataset(80, 30)
	b := smallDataset(60, 31)
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	opts := smallOpts(4)
	ea, err := NewEngine(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEngine(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	got, err := ea.KNNJoin(eb, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != a.Len() {
		t.Fatalf("KNNJoin covered %d of %d left trajectories", len(got), a.Len())
	}
	for _, tr := range a.Trajs {
		want := bruteKNN(b, measure.DTW{}, tr, k)
		res := got[tr.ID]
		if len(res) != len(want) {
			t.Fatalf("traj %d: got %d neighbors, want %d", tr.ID, len(res), len(want))
		}
		for i := range want {
			if res[i].Traj.ID != want[i] {
				t.Fatalf("traj %d neighbor %d = %d, want %d", tr.ID, i, res[i].Traj.ID, want[i])
			}
		}
	}
}

func TestKNNJoinDegenerate(t *testing.T) {
	d := smallDataset(20, 32)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := e.KNNJoin(e, 0); err != nil || got != nil {
		t.Errorf("k=0 should return nil, got %v (err %v)", got, err)
	}
	// k exceeding the right side clamps.
	got, err := e.KNNJoin(e, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for id, res := range got {
		if len(res) != d.Len() {
			t.Fatalf("traj %d: %d neighbors, want %d", id, len(res), d.Len())
		}
	}
}

// TestKNNAllMeasuresMatchesBruteForce sweeps the best-first engine against
// brute force under every supported measure, including k == n and k > n.
func TestKNNAllMeasuresMatchesBruteForce(t *testing.T) {
	d := smallDataset(200, 40)
	for _, m := range []measure.Measure{
		measure.DTW{}, measure.Frechet{}, measure.ERP{},
		measure.EDR{Eps: 0.01}, measure.LCSS{Eps: 0.01, Delta: 8},
	} {
		opts := smallOpts(4)
		opts.Measure = m
		e, err := NewEngine(d, opts)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for qi, q := range gen.Queries(d, 4, 41) {
			for _, k := range []int{1, 7, 50, d.Len(), d.Len() + 17} {
				want := bruteKNN(d, m, q, k)
				got := e.SearchKNN(q, k)
				if len(got) != len(want) {
					t.Fatalf("%s q%d k=%d: got %d results, want %d",
						m.Name(), qi, k, len(got), len(want))
				}
				for i := range want {
					if got[i].Traj.ID != want[i] {
						t.Fatalf("%s q%d k=%d: result %d = traj %d, want %d",
							m.Name(), qi, k, i, got[i].Traj.ID, want[i])
					}
				}
				for i := 1; i < len(got); i++ {
					if got[i].Distance < got[i-1].Distance {
						t.Fatalf("%s q%d k=%d: results not sorted", m.Name(), qi, k)
					}
				}
			}
		}
	}
}

// TestKNNTiesAtKth cuts k through groups of byte-identical trajectories:
// every member of a tie group has the same distance, so the ID ordering
// must decide — exactly as brute force does.
func TestKNNTiesAtKth(t *testing.T) {
	base := smallDataset(15, 42)
	var trajs []*traj.T
	id := 0
	for _, tr := range base.Trajs {
		for c := 0; c < 4; c++ {
			pts := append([]geom.Point(nil), tr.Points...)
			trajs = append(trajs, &traj.T{ID: id, Points: pts})
			id++
		}
	}
	d := traj.NewDataset("ties", trajs)
	e, err := NewEngine(d, smallOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	q := trajs[8] // a member: its whole tie group sits at distance 0
	for _, k := range []int{1, 2, 3, 5, 6, 10, 59} {
		want := bruteKNN(d, measure.DTW{}, q, k)
		got := e.SearchKNN(q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Traj.ID != want[i] {
				t.Fatalf("k=%d: result %d = traj %d, want %d (tie broken wrong)",
					k, i, got[i].Traj.ID, want[i])
			}
		}
	}
}

// radiusMeasure is DTW clipped to a reachability radius: anything farther
// than r is at distance +Inf. Standard measures never return Inf on
// non-empty inputs, so this is how the unreachable-neighbor path (and the
// old code's silent probe>60 truncation) is exercised.
type radiusMeasure struct {
	measure.DTW
	r float64
}

func (m radiusMeasure) Name() string { return "RADIUS" }

func (m radiusMeasure) Distance(t, q []geom.Point) float64 {
	d := m.DTW.Distance(t, q)
	if d > m.r {
		return math.Inf(1)
	}
	return d
}

func (m radiusMeasure) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	d, ok := m.DTW.DistanceThreshold(t, q, tau)
	if !ok {
		return d, false // DTW > tau, so the clipped distance is too
	}
	if d > m.r {
		return math.Inf(1), false
	}
	return d, ok
}

// TestKNNUnreachableNeighbors: when fewer than k trajectories are at
// finite distance, the result must still have k entries — the unreachable
// tail at +Inf in ID order, exactly like brute force — instead of being
// silently truncated (the old doubling path's probe>60 cap).
func TestKNNUnreachableNeighbors(t *testing.T) {
	d := smallDataset(80, 43)
	q := gen.Queries(d, 1, 44)[0]
	// Pick r so only a handful of trajectories are reachable.
	dtw := make([]float64, 0, d.Len())
	for _, tr := range d.Trajs {
		dtw = append(dtw, measure.DTW{}.Distance(tr.Points, q.Points))
	}
	sort.Float64s(dtw)
	reach := 5
	r := (dtw[reach-1] + dtw[reach]) / 2
	m := radiusMeasure{r: r}
	opts := smallOpts(4)
	opts.Measure = m
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{3, reach, reach + 1, 20, d.Len()} {
		want := bruteKNN(d, m, q, k)
		got := e.SearchKNN(q, k)
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d results, want %d (silent truncation?)",
				k, len(got), len(want))
		}
		infs := 0
		for i := range want {
			if got[i].Traj.ID != want[i] {
				t.Fatalf("k=%d: result %d = traj %d, want %d", k, i, got[i].Traj.ID, want[i])
			}
			if math.IsInf(got[i].Distance, 1) {
				infs++
			}
		}
		if wantInfs := k - reach; wantInfs > 0 && infs != wantInfs {
			t.Fatalf("k=%d: %d Inf-distance results, want %d", k, infs, wantInfs)
		}
	}
}

// TestSearchKNNContextCancel: a cancelled context aborts the query.
func TestSearchKNNContextCancel(t *testing.T) {
	d := smallDataset(100, 45)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.SearchKNNContext(ctx, d.Trajs[0], 3, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestKNNJoinValidation: mismatched clusters or measures are errors, not
// silently mis-scheduled work.
func TestKNNJoinValidation(t *testing.T) {
	a := smallDataset(30, 46)
	b := smallDataset(30, 47)
	ea, err := NewEngine(a, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	// Different cluster.
	eb, err := NewEngine(b, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.KNNJoin(eb, 2); err == nil {
		t.Error("KNNJoin across clusters should fail")
	}
	// Same cluster, different measure.
	opts := smallOpts(2)
	opts.Cluster = ea.Cluster()
	opts.Measure = measure.Frechet{}
	ec, err := NewEngine(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ea.KNNJoin(ec, 2); err == nil {
		t.Error("KNNJoin across measures should fail")
	}
	// Cancelled context aborts between probes.
	opts2 := smallOpts(2)
	opts2.Cluster = ea.Cluster()
	ed, err := NewEngine(b, opts2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ea.KNNJoinContext(ctx, ed, 2, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
