package core

import (
	"sort"
	"testing"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

func bruteKNN(d *traj.Dataset, m measure.Measure, q *traj.T, k int) []int {
	type dr struct {
		id int
		d  float64
	}
	ds := make([]dr, 0, d.Len())
	for _, t := range d.Trajs {
		ds = append(ds, dr{t.ID, m.Distance(t.Points, q.Points)})
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].d != ds[b].d {
			return ds[a].d < ds[b].d
		}
		return ds[a].id < ds[b].id
	})
	if k > len(ds) {
		k = len(ds)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ds[i].id
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	d := smallDataset(250, 20)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.Queries(d, 6, 21) {
		for _, k := range []int{1, 5, 20} {
			want := bruteKNN(d, measure.DTW{}, q, k)
			got := e.SearchKNN(q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: got %d results, want %d", k, len(got), len(want))
			}
			for i := range want {
				if got[i].Traj.ID != want[i] {
					t.Fatalf("k=%d: result %d = traj %d, want %d", k, i, got[i].Traj.ID, want[i])
				}
			}
			// Distances ascending.
			for i := 1; i < len(got); i++ {
				if got[i].Distance < got[i-1].Distance {
					t.Fatalf("k=%d: results not sorted by distance", k)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	d := smallDataset(30, 22)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	if got := e.SearchKNN(q, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := e.SearchKNN(nil, 3); got != nil {
		t.Error("nil query should return nil")
	}
	// k larger than the dataset returns everything.
	if got := e.SearchKNN(q, 1000); len(got) != d.Len() {
		t.Errorf("k>n returned %d, want %d", len(got), d.Len())
	}
	// 1-NN of a dataset member is itself.
	if got := e.SearchKNN(q, 1); len(got) != 1 || got[0].Traj.ID != q.ID {
		t.Errorf("1-NN of member = %v", got)
	}
}

func TestKNNJoinMatchesBruteForce(t *testing.T) {
	a := smallDataset(80, 30)
	b := smallDataset(60, 31)
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	opts := smallOpts(4)
	ea, err := NewEngine(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEngine(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	got := ea.KNNJoin(eb, k)
	if len(got) != a.Len() {
		t.Fatalf("KNNJoin covered %d of %d left trajectories", len(got), a.Len())
	}
	for _, tr := range a.Trajs {
		want := bruteKNN(b, measure.DTW{}, tr, k)
		res := got[tr.ID]
		if len(res) != len(want) {
			t.Fatalf("traj %d: got %d neighbors, want %d", tr.ID, len(res), len(want))
		}
		for i := range want {
			if res[i].Traj.ID != want[i] {
				t.Fatalf("traj %d neighbor %d = %d, want %d", tr.ID, i, res[i].Traj.ID, want[i])
			}
		}
	}
}

func TestKNNJoinDegenerate(t *testing.T) {
	d := smallDataset(20, 32)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.KNNJoin(e, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	// k exceeding the right side clamps.
	got := e.KNNJoin(e, 1000)
	for id, res := range got {
		if len(res) != d.Len() {
			t.Fatalf("traj %d: %d neighbors, want %d", id, len(res), d.Len())
		}
	}
}
