package core

import (
	"context"
	"math"
	"sort"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/traj"
	"dita/internal/trie"
)

// PartitionLowerBound returns a lower bound on the distance from query q
// to any trajectory in a partition described by its first/last-point MBRs
// (the quantitative form of the global pruning of Section 5.2, generalized
// per measure exactly like TrajRelevant):
//
//   - Endpoint-anchored, sum-accumulating (DTW):
//     MinDist(q1, MBRf) + MinDist(qn, MBRl).
//   - Endpoint-anchored, max-accumulating (Fréchet):
//     max(MinDist(q1, MBRf), MinDist(qn, MBRl)).
//   - Edit measures: the number of endpoint MBRs farther than ε from every
//     query point (each costs at least one edit).
//   - ERP: like DTW but each term may be satisfied by the gap point, and
//     any query point may align with the partition's endpoints.
//
// TrajRelevant(m, q, mbrF, mbrL, tau) ≡ PartitionLowerBound(...) <= tau,
// so threshold pruning and best-first kNN ordering can never disagree.
// Exported for the network-mode coordinator's visit ordering.
func PartitionLowerBound(m measure.Measure, q []geom.Point, mbrF, mbrL geom.MBR) float64 {
	if m.AlignsEndpoints() {
		df := mbrF.MinDist(q[0])
		dl := mbrL.MinDist(q[len(q)-1])
		if m.Accumulation() == measure.AccumMax {
			return math.Max(df, dl)
		}
		return df + dl
	}
	gap, hasGap := m.GapPoint()
	df := minDistTrajMBR(q, mbrF)
	dl := minDistTrajMBR(q, mbrL)
	if hasGap {
		if d := mbrF.MinDist(gap); d < df {
			df = d
		}
		if d := mbrL.MinDist(gap); d < dl {
			dl = d
		}
	}
	if m.Accumulation() == measure.AccumEdit {
		cost := 0.0
		if df > m.Epsilon() {
			cost++
		}
		if dl > m.Epsilon() {
			cost++
		}
		return cost
	}
	return df + dl
}

// knnEntry is one heap slot of a KNNAcc.
type knnEntry struct {
	t *traj.T
	d float64
}

// worse orders heap entries by (distance, ID) descending-priority: a is
// worse than b when it sorts after b in the final ascending result order.
func worse(a, b knnEntry) bool {
	if a.d != b.d {
		return a.d > b.d
	}
	return a.t.ID > b.t.ID
}

// KNNAcc accumulates the best k (distance, trajectory) pairs seen so far —
// the global top-k state of the incremental best-first kNN. It is a
// k-bounded max-heap ordered by (distance, trajectory ID), so the root is
// always the current k-th best and Tau() is the live pruning threshold.
// It also tracks which trajectories have been resolved (verified exactly,
// or ruled out at a threshold no looser than the final one) so no
// candidate is ever verified twice. Not safe for concurrent use.
type KNNAcc struct {
	k        int
	heap     []knnEntry
	resolved map[*traj.T]struct{}
}

// NewKNNAcc returns an empty accumulator for k results. k must be >= 1.
func NewKNNAcc(k int) *KNNAcc {
	return &KNNAcc{k: k, heap: make([]knnEntry, 0, k), resolved: make(map[*traj.T]struct{})}
}

// Full reports whether k results have been accumulated.
func (a *KNNAcc) Full() bool { return len(a.heap) >= a.k }

// Len returns the number of accumulated results (at most k).
func (a *KNNAcc) Len() int { return len(a.heap) }

// Tau returns the live pruning threshold: the k-th best distance once the
// heap is full, +Inf before. Distances are accepted at <= Tau (with ID
// tie-breaking), so candidates with a lower bound strictly above Tau can
// never enter the result.
func (a *KNNAcc) Tau() float64 {
	if !a.Full() {
		return math.Inf(1)
	}
	return a.heap[0].d
}

// Resolved reports whether t has already been resolved.
func (a *KNNAcc) Resolved(t *traj.T) bool {
	_, ok := a.resolved[t]
	return ok
}

// Resolve marks t resolved: it was verified exactly or ruled out at the
// current threshold. Since Tau only shrinks, a candidate pruned at the
// threshold of its resolution stays pruned forever.
func (a *KNNAcc) Resolve(t *traj.T) { a.resolved[t] = struct{}{} }

// Add resolves t and offers its exact distance in one step.
func (a *KNNAcc) Add(t *traj.T, d float64) {
	a.Resolve(t)
	a.Offer(t, d)
}

// Offer inserts (t, d) when it beats the current k-th best under the
// (distance, ID) order, evicting the worst entry if the heap is full.
// d must be the exact distance. Reports whether the entry was kept.
func (a *KNNAcc) Offer(t *traj.T, d float64) bool {
	e := knnEntry{t: t, d: d}
	if len(a.heap) < a.k {
		a.heap = append(a.heap, e)
		a.siftUp(len(a.heap) - 1)
		return true
	}
	if !worse(a.heap[0], e) {
		return false
	}
	a.heap[0] = e
	a.siftDown(0)
	return true
}

func (a *KNNAcc) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(a.heap[i], a.heap[p]) {
			return
		}
		a.heap[i], a.heap[p] = a.heap[p], a.heap[i]
		i = p
	}
}

func (a *KNNAcc) siftDown(i int) {
	n := len(a.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && worse(a.heap[l], a.heap[big]) {
			big = l
		}
		if r < n && worse(a.heap[r], a.heap[big]) {
			big = r
		}
		if big == i {
			return
		}
		a.heap[i], a.heap[big] = a.heap[big], a.heap[i]
		i = big
	}
}

// Results returns the accumulated neighbors in ascending (distance, ID)
// order — the kNN answer.
func (a *KNNAcc) Results() []SearchResult {
	out := make([]SearchResult, 0, len(a.heap))
	for _, e := range a.heap {
		out = append(out, SearchResult{Traj: e.t, Distance: e.d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Traj.ID < out[j].Traj.ID
	})
	return out
}

// knnScanCtxEvery is the candidate stride between context checks in the
// scan loop (the verification step itself is the abort granularity).
const knnScanCtxEvery = 32

// KNNScanPartition runs the best-first candidate scan of one partition:
// a bound-aware trie descent at the current threshold, candidates sorted
// by their trie lower bound, then verification in bound order with the
// threshold re-read from acc before every candidate (early abandoning
// against the live k-th best) and an exact cut as soon as the next bound
// exceeds it. Already-resolved trajectories are skipped, and every
// processed candidate is marked resolved.
//
// capTau caps the threshold (the network mode passes the coordinator's
// round τ; the local engine passes +Inf). While acc is not yet full and
// capTau is +Inf the effective threshold is +Inf: candidates are then
// verified with the exact Distance kernel, never DistanceThreshold
// (threshold kernels must not see an infinite τ — the banded edit DP
// sizes its band from it).
//
// This exact function backs both the local engine and the network-mode
// worker, which is what makes dnet kNN results identical to local ones.
// It is sequential by design: τ mutates between candidates.
//
// masked, when non-nil, hides base members superseded or deleted by a
// partition's ingest overlay (the overlay's own live members are scanned
// by KNNScanLive).
func KNNScanPartition(ctx context.Context, m measure.Measure, q []geom.Point,
	idx *trie.Trie, trajs []*traj.T, meta []VerifyMeta, masked func(id int) bool,
	cellD float64, acc *KNNAcc, capTau float64) (obs.Funnel, error) {

	f := obs.Funnel{Considered: int64(len(trajs))}
	entryTau := math.Min(capTau, acc.Tau())
	cands, err := idx.SearchBoundsContext(ctx, q, m, entryTau, nil)
	if masked != nil && len(cands) > 0 {
		kept := cands[:0]
		for _, c := range cands {
			if !masked(trajs[c.Idx].ID) {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	f.TrieCands = int64(len(cands))
	if err != nil || len(cands) == 0 {
		// An empty candidate list still narrows monotonically.
		return f, err
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].LB != cands[j].LB {
			return cands[i].LB < cands[j].LB
		}
		return cands[i].Idx < cands[j].Idx
	})
	var v *Verifier
	vTau := math.Inf(-1)
	// The exact-Distance path bypasses the Verifier, so its counts are
	// tracked by hand and merged with the verifier's below.
	var exactVerified, matched int64
	for ci, c := range cands {
		if ci%knnScanCtxEvery == 0 {
			if err := ctx.Err(); err != nil {
				return knnScanFunnel(f, v, exactVerified, matched), err
			}
		}
		tau := math.Min(capTau, acc.Tau())
		if acc.Full() && c.LB > tau {
			break // candidates are bound-sorted: the rest are pruned too
		}
		t := trajs[c.Idx]
		if acc.Resolved(t) {
			continue
		}
		if math.IsInf(tau, 1) {
			d := m.Distance(t.Points, q)
			exactVerified++
			acc.Add(t, d)
			matched++
			continue
		}
		if v == nil {
			v = NewVerifier(m, q, tau, cellD)
			vTau = tau
		} else if tau != vTau {
			v.SetTau(tau)
			vTau = tau
		}
		d, ok := v.Verify(t, meta[c.Idx])
		acc.Resolve(t)
		if ok {
			// Within τ means within the current k-th best (or losing only
			// the ID tie at exactly that distance); the heap sorts it out.
			acc.Offer(t, d)
			matched++
		}
	}
	return knnScanFunnel(f, v, exactVerified, matched), nil
}

// KNNScanLive brute-forces an ingest overlay's live list into the
// accumulator: no trie exists over a delta, so every unmasked member
// goes straight to the verification cascade with the threshold re-read
// from acc before each candidate, exactly like KNNScanPartition's
// post-trie loop. masked, when non-nil, hides superseded frozen members.
// Shared by the local engine and the network-mode worker.
func KNNScanLive(ctx context.Context, m measure.Measure, q []geom.Point,
	live []*traj.T, meta []VerifyMeta, masked func(id int) bool,
	cellD float64, acc *KNNAcc, capTau float64) (obs.Funnel, error) {

	f := obs.Funnel{Considered: int64(len(live)), TrieCands: int64(len(live))}
	var v *Verifier
	vTau := math.Inf(-1)
	var exactVerified, matched int64
	for ci, t := range live {
		if ci%knnScanCtxEvery == 0 {
			if err := ctx.Err(); err != nil {
				return knnScanFunnel(f, v, exactVerified, matched), err
			}
		}
		if masked != nil && masked(t.ID) {
			continue
		}
		if acc.Resolved(t) {
			continue
		}
		tau := math.Min(capTau, acc.Tau())
		if math.IsInf(tau, 1) {
			d := m.Distance(t.Points, q)
			exactVerified++
			acc.Add(t, d)
			matched++
			continue
		}
		if v == nil {
			v = NewVerifier(m, q, tau, cellD)
			vTau = tau
		} else if tau != vTau {
			v.SetTau(tau)
			vTau = tau
		}
		d, ok := v.Verify(t, meta[ci])
		acc.Resolve(t)
		if ok {
			acc.Offer(t, d)
			matched++
		}
	}
	return knnScanFunnel(f, v, exactVerified, matched), nil
}

// knnScanFunnel assembles the scan's pruning funnel from the verifier's
// cascade counters plus the exact-Distance path's manual counts. Unvisited
// bound-sorted tail candidates (cut by the τ bound) count as surviving the
// length/coverage stages they never reached, which keeps the funnel
// monotone.
func knnScanFunnel(f obs.Funnel, v *Verifier, exactVerified, matched int64) obs.Funnel {
	var lenPruned, covPruned, verified int64
	if v != nil {
		lenPruned = v.LengthPruned.Load()
		covPruned = v.CoveragePruned.Load()
		verified = v.Verified.Load()
	}
	f.AfterLength = f.TrieCands - lenPruned
	f.AfterCoverage = f.AfterLength - covPruned
	f.Verified = verified + exactVerified
	f.Matched = matched
	return f
}
