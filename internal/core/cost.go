package core

import (
	"math"
	"sort"
	"sync"
	"time"
)

// costAlpha is the EWMA smoothing factor for per-partition read-cost
// accounting: each new per-query observation contributes 20%, so the
// signal follows a workload shift within a few dozen queries without
// letting one outlier query trigger a cutover.
const costAlpha = 0.2

// costMinQueries is the minimum number of per-query observations a
// partition needs before its cost EWMA is trusted by the planner — a
// partition probed once is not a hotspot, it is noise.
const costMinQueries = 8

// PartitionCost is one partition's smoothed per-query read cost, the
// planner-facing view of the obs funnel: how many candidates survive to
// verification there and how long the partition's share of a query takes.
type PartitionCost struct {
	Pid int
	// Verified is the EWMA of verified-candidate counts per query.
	Verified float64
	// VerifyUS is the EWMA of per-query verify wall time in microseconds
	// (zero on untimed engines, where only Verified carries signal).
	VerifyUS float64
	// Queries is the number of observations folded into the EWMAs.
	Queries int64
}

// cost is the planner's scalar for this partition: wall time when the
// path was timed, verified-candidate count otherwise. The two are never
// mixed across partitions of one tracker — either every observation on
// an engine is timed or none is.
func (pc PartitionCost) cost() float64 {
	if pc.VerifyUS > 0 {
		return pc.VerifyUS
	}
	return pc.Verified
}

// CostTracker accumulates per-partition read-cost EWMAs from the query
// paths. Safe for concurrent use; the zero value is not usable, create
// with NewCostTracker. A nil tracker is a valid disabled tracker: Observe
// and Drop no-op, Snapshot returns nil.
type CostTracker struct {
	mu      sync.Mutex
	entries map[int]*PartitionCost
}

// NewCostTracker creates an empty tracker.
func NewCostTracker() *CostTracker {
	return &CostTracker{entries: map[int]*PartitionCost{}}
}

// Observe folds one query's per-partition verify cost into the EWMAs.
func (ct *CostTracker) Observe(pid int, verified int64, elapsed time.Duration) {
	if ct == nil {
		return
	}
	us := float64(elapsed.Microseconds())
	ct.mu.Lock()
	defer ct.mu.Unlock()
	e := ct.entries[pid]
	if e == nil {
		ct.entries[pid] = &PartitionCost{Pid: pid, Verified: float64(verified), VerifyUS: us, Queries: 1}
		return
	}
	e.Verified += costAlpha * (float64(verified) - e.Verified)
	e.VerifyUS += costAlpha * (us - e.VerifyUS)
	e.Queries++
}

// Drop forgets the given partitions — called when a cutover retires them
// so their ids (never reused) cannot shadow the fresh pieces' signal.
func (ct *CostTracker) Drop(pids ...int) {
	if ct == nil {
		return
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for _, pid := range pids {
		delete(ct.entries, pid)
	}
}

// Snapshot returns the tracked costs sorted by partition id.
func (ct *CostTracker) Snapshot() []PartitionCost {
	if ct == nil {
		return nil
	}
	ct.mu.Lock()
	out := make([]PartitionCost, 0, len(ct.entries))
	for _, e := range ct.entries {
		out = append(out, *e)
	}
	ct.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Pid < out[j].Pid })
	return out
}

// CostHot picks the cost-hot partition among the live pids, the online
// form of the paper's 98th-percentile cost division: the candidate must
// carry the maximum smoothed cost, sit at or above the policy's
// percentile of the per-partition cost distribution (live partitions the
// tracker has never seen count as zero-cost), and exceed CostBound times
// the mean cost. Returns the pid and the split fan-out, or (-1, 0) when
// cost-driven splitting is disabled or nothing qualifies. Exported for
// the dnet planner, which shares the policy and tracker types.
func CostHot(ct *CostTracker, live []int, pol RebalancePolicy) (pid, k int) {
	if ct == nil || pol.CostBound <= 0 || len(live) < 2 {
		return -1, 0
	}
	tracked := map[int]PartitionCost{}
	for _, pc := range ct.Snapshot() {
		tracked[pc.Pid] = pc
	}
	costs := make([]float64, 0, len(live))
	hot, hotCost, sum := -1, 0.0, 0.0
	var hotQueries int64
	for _, p := range live {
		c := tracked[p].cost()
		costs = append(costs, c)
		sum += c
		if c > hotCost {
			hot, hotCost, hotQueries = p, c, tracked[p].Queries
		}
	}
	if hot < 0 || hotQueries < costMinQueries {
		return -1, 0
	}
	mean := sum / float64(len(live))
	if mean <= 0 || hotCost <= pol.CostBound*mean || hotCost < percentile(costs, pol.CostPercentile) {
		return -1, 0
	}
	k = int(math.Round(hotCost / mean))
	if k < 2 {
		k = 2
	}
	if k > pol.MaxPieces {
		k = pol.MaxPieces
	}
	return hot, k
}

// PartitionCosts returns the engine's per-partition read-cost EWMAs,
// sorted by partition id. Costs accumulate only on timed query paths
// (tracing or a metrics registry enabled), preserving the clock-free
// hot path of untimed engines.
func (e *Engine) PartitionCosts() []PartitionCost { return e.cost.Snapshot() }

// percentile is the nearest-rank p-th percentile of vals (p in 0..100).
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
