package core

import (
	"testing"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/obs"
)

// Funnel correctness against brute force: each stage of the search
// funnel must match counts computed outside the cascade — partition
// populations from the engine's own layout, matches from exhaustive
// distance evaluation.
func TestSearchFunnelMatchesBruteForce(t *testing.T) {
	d := smallDataset(250, 7)
	m := measure.DTW{}
	opts := smallOpts(4)
	opts.Measure = m
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range gen.Queries(d, 8, 9) {
		tau := 0.05
		want := bruteSearch(d, m, q, tau)
		stats := SearchStats{Trace: obs.NewTrace("search")}
		got := e.Search(q, tau, &stats)
		f := stats.Funnel
		if !f.Monotone() {
			t.Fatalf("q%d: funnel not monotone: %+v", qi, f)
		}
		if len(got) != len(want) || f.Matched != int64(len(want)) {
			t.Fatalf("q%d: matched=%d results=%d, brute force wants %d", qi, f.Matched, len(got), len(want))
		}
		// Stage 0: every partition of the engine is counted.
		if f.Partitions != int64(len(e.parts)) {
			t.Errorf("q%d: Partitions=%d, engine has %d", qi, f.Partitions, len(e.parts))
		}
		// Stage 1: relevant set from the global index, re-derived directly.
		rel := e.relevantPartitions(q.Points, tau)
		if f.Relevant != int64(len(rel)) {
			t.Errorf("q%d: Relevant=%d, global index says %d", qi, f.Relevant, len(rel))
		}
		// Stage 2: considered = population of the relevant partitions.
		pop := 0
		for _, pid := range rel {
			pop += len(e.parts[pid].Trajs)
		}
		if f.Considered != int64(pop) {
			t.Errorf("q%d: Considered=%d, relevant partitions hold %d", qi, f.Considered, pop)
		}
		// The lower-bound filters must never prune a true match, so every
		// brute-force match survives to (and through) verification.
		if f.Verified < int64(len(want)) {
			t.Errorf("q%d: Verified=%d < %d true matches", qi, f.Verified, len(want))
		}
		// Legacy counters mirror the funnel.
		if stats.Candidates != int(f.TrieCands) || stats.Verified != int(f.Verified) || stats.Results != int(f.Matched) {
			t.Errorf("q%d: legacy stats diverge from funnel: %+v vs %+v", qi, stats, f)
		}
		// The trace's span funnels partition the stages exactly once, so
		// their sum is the whole-query funnel.
		if tf := stats.Trace.Funnel(); tf != f {
			t.Errorf("q%d: trace funnel %+v != stats funnel %+v", qi, tf, f)
		}
	}
}

// With a threshold so large nothing can be pruned, every stage must count
// the entire dataset: any funnel stage below N means a filter wrongly
// dropped a true match.
func TestSearchFunnelSaturates(t *testing.T) {
	d := smallDataset(120, 11)
	opts := smallOpts(3)
	opts.Measure = measure.DTW{}
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[5]
	var stats SearchStats
	got := e.Search(q, 1e6, &stats)
	n := int64(d.Len())
	f := stats.Funnel
	if int64(len(got)) != n {
		t.Fatalf("saturating search returned %d of %d", len(got), n)
	}
	if f.Relevant != f.Partitions {
		t.Errorf("Relevant=%d != Partitions=%d at saturating τ", f.Relevant, f.Partitions)
	}
	for name, v := range map[string]int64{
		"Considered": f.Considered, "TrieCands": f.TrieCands,
		"AfterLength": f.AfterLength, "AfterCoverage": f.AfterCoverage,
		"Verified": f.Verified, "Matched": f.Matched,
	} {
		if v != n {
			t.Errorf("%s=%d, want %d (no filter may prune at saturating τ): %+v", name, v, n, f)
		}
	}
}

// Join funnel against brute force: exact matched count, exact stage-0/1
// counts from the bigraph, and trace/funnel agreement.
func TestJoinFunnelMatchesBruteForce(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(90, 21))
	bcfg := gen.BeijingLike(70, 22)
	bcfg.Name = "B2"
	b := gen.Generate(bcfg)
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	m := measure.DTW{}
	ea, eb := buildPair(t, a, b, m, 4)
	tau := 0.05
	stats := JoinStats{Trace: obs.NewTrace("join")}
	pairs := ea.Join(eb, tau, DefaultJoinOptions(), &stats)
	want := bruteJoin(a, b, m, tau)
	checkJoin(t, pairs, want, "funnel join")
	f := stats.Funnel
	if !f.Monotone() {
		t.Fatalf("join funnel not monotone: %+v", f)
	}
	if f.Matched != int64(len(want)) {
		t.Errorf("Matched=%d, brute force wants %d", f.Matched, len(want))
	}
	if f.Partitions != int64(len(ea.parts)*len(eb.parts)) {
		t.Errorf("Partitions=%d, bigraph has %d×%d pairs", f.Partitions, len(ea.parts), len(eb.parts))
	}
	if f.Relevant != int64(stats.Edges) {
		t.Errorf("Relevant=%d != Edges=%d", f.Relevant, stats.Edges)
	}
	if f.Verified < int64(len(want)) {
		t.Errorf("Verified=%d < %d true matches", f.Verified, len(want))
	}
	if int(f.TrieCands) != stats.CandPairs {
		t.Errorf("TrieCands=%d != CandPairs=%d", f.TrieCands, stats.CandPairs)
	}
	if tf := stats.Trace.Funnel(); tf != f {
		t.Errorf("trace funnel %+v != stats funnel %+v", tf, f)
	}
}
