package core

import (
	"fmt"
	"sort"
	"time"

	"dita/internal/cluster"
	"dita/internal/measure"
	"dita/internal/pivot"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/trie"
)

// MeasureParams inverts measure.ByName: it extracts the (name, eps, delta)
// triple that reconstructs m. This is what snapshots persist instead of the
// interface value.
func MeasureParams(m measure.Measure) (name string, eps float64, delta int) {
	name, eps = m.Name(), m.Epsilon()
	if l, ok := m.(measure.LCSS); ok {
		delta = l.Delta
	}
	return name, eps, delta
}

// SnapshotOptions returns the snap.BuildOptions equivalent of the engine's
// build configuration — everything a cold start needs to reproduce this
// engine's behavior exactly.
func (e *Engine) SnapshotOptions() snap.BuildOptions {
	name, eps, delta := MeasureParams(e.opts.Measure)
	return snap.BuildOptions{
		Measure:  name,
		Eps:      eps,
		Delta:    delta,
		K:        e.opts.Trie.K,
		NLAlign:  e.opts.Trie.NLAlign,
		NLPivot:  e.opts.Trie.NLPivot,
		MinNode:  e.opts.Trie.MinNode,
		Strategy: int(e.opts.Trie.Strategy),
		CellD:    e.cellD,
	}
}

// ExportSnapshot wraps one built partition as a snapshot. The snapshot
// shares the partition's trajectory slice and trie; callers must not
// mutate either. Only the sealed base is exported — overlay state (see
// ingest.go) lives in the partition's WAL, which the snapshot's
// watermark delimits.
func (e *Engine) ExportSnapshot(dataset string, p *Partition) *snap.Snapshot {
	return &snap.Snapshot{
		Dataset:   dataset,
		Partition: p.ID,
		Opts:      e.SnapshotOptions(),
		Trajs:     p.Trajs,
		Index:     p.Index,
		Watermark: p.watermark,
	}
}

// NewEngineFromSnapshots cold-starts an engine from decoded partition
// snapshots instead of partitioning and indexing a dataset: the tries come
// from the snapshots; only the cheap derived state (endpoint MBRs, the
// global R-trees, verification metadata) is recomputed. The snapshot set
// must be complete — partition ids 0..n-1 of one dataset with identical
// build options — because the global index is only correct over all
// partitions.
//
// opts supplies the runtime environment (Cluster, Obs, VerifyParallelism);
// the indexing configuration (measure, trie shape, cell size) is taken
// from the snapshots so the cold-started engine answers queries exactly
// like the engine that wrote them. BuildTime records the cold-start time.
func NewEngineFromSnapshots(snaps []*snap.Snapshot, opts Options) (*Engine, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("core: no snapshots")
	}
	sorted := append([]*snap.Snapshot(nil), snaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Partition < sorted[j].Partition })
	ref := sorted[0]
	for i, s := range sorted {
		if s.Dataset != ref.Dataset {
			return nil, fmt.Errorf("core: snapshots span datasets %q and %q", ref.Dataset, s.Dataset)
		}
		if s.Opts != ref.Opts {
			return nil, fmt.Errorf("core: partition %d built with different options", s.Partition)
		}
		if s.Partition != i {
			return nil, fmt.Errorf("core: snapshot set incomplete: missing partition %d", i)
		}
		if s.Index == nil {
			return nil, fmt.Errorf("core: partition %d snapshot has no index", s.Partition)
		}
	}

	m, err := measure.ByName(ref.Opts.Measure, ref.Opts.Eps, ref.Opts.Delta)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot measure: %w", err)
	}
	opts.Measure = m
	opts.Trie = trie.Config{
		K:        ref.Opts.K,
		NLAlign:  ref.Opts.NLAlign,
		NLPivot:  ref.Opts.NLPivot,
		MinNode:  ref.Opts.MinNode,
		Strategy: pivot.Strategy(ref.Opts.Strategy),
	}
	opts.CellD = ref.Opts.CellD
	if opts.Cluster == nil {
		opts.Cluster = cluster.New(cluster.DefaultConfig(4))
	}

	start := time.Now()
	var all []*traj.T
	for _, s := range sorted {
		all = append(all, s.Trajs...)
	}
	e := &Engine{
		opts:    opts,
		cl:      opts.Cluster,
		dataset: traj.NewDataset(ref.Dataset, all),
		cellD:   ref.Opts.CellD,
		met:     newEngineMetrics(opts.Obs),
		cost:    NewCostTracker(),
		serial:  engineSerial.Add(1),
	}
	W := e.cl.Workers()
	for _, s := range sorted {
		e.addPartition(s.Trajs, W)
		p := e.parts[len(e.parts)-1]
		p.Index = s.Index
		p.watermark = s.Watermark
	}
	e.buildGlobalIndex()

	// Verification metadata is derived state (it is not serialized, by
	// design: core may not be imported by snap); recompute it in parallel
	// like a fresh build does.
	tasks := make([]cluster.Task, 0, len(e.parts))
	for _, p := range e.parts {
		p := p
		tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
			p.meta = make([]trajMeta, len(p.Trajs))
			for i, t := range p.Trajs {
				p.meta[i] = newTrajMeta(t, e.cellD)
			}
		}})
	}
	e.cl.Run(tasks)
	e.BuildTime = time.Since(start)
	return e, nil
}
