package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/pivot"
)

// qtraj is a testing/quick generator for random trajectories: 2–20 points
// in a 10×10 box, so distances stay in a well-conditioned range instead of
// quick's default full-float64 spread.
type qtraj []geom.Point

func (qtraj) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 2 + r.Intn(19)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * 10, Y: r.Float64() * 10}
	}
	return reflect.ValueOf(qtraj(pts))
}

// qcfg keeps the property runs cheap but broad.
var qcfg = &quick.Config{MaxCount: 300}

const lbSlack = 1e-9 // float tolerance for lower-bound comparisons

// Lemma 4.3: PAMD is a lower bound on DTW for any pivot selection
// strategy and pivot count.
func TestQuickPAMDLowerBoundsDTW(t *testing.T) {
	prop := func(a, b qtraj, kRaw uint8) bool {
		d := measure.DTW{}.Distance(a, b)
		for _, s := range []pivot.Strategy{pivot.Neighbor, pivot.Inflection, pivot.FirstLast} {
			k := int(kRaw)%len(a) + 1
			if PAMDK(a, b, k, s) > d+lbSlack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

// Lemma 5.1: OPAMD never prunes a true match — whenever DTW(T,Q) <= τ,
// the ordered bound stays at or below the true distance.
func TestQuickOPAMDSoundAtTau(t *testing.T) {
	prop := func(a, b qtraj, kRaw uint8, tauRaw uint8) bool {
		d := measure.DTW{}.Distance(a, b)
		tau := float64(tauRaw) / 16 // 0 .. ~16, brackets typical DTW sums here
		k := int(kRaw)%len(a) + 1
		for _, s := range []pivot.Strategy{pivot.Neighbor, pivot.Inflection, pivot.FirstLast} {
			lb := OPAMD(a, b, pivot.Points(a, k, s), tau)
			if d <= tau && lb > d+lbSlack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

// Lemma 5.6: the cell-compression bound (computed exactly, with an
// infinite abandon budget) never exceeds the true DTW, in either
// direction, at any cell side length.
func TestQuickCellLowerBoundsDTW(t *testing.T) {
	prop := func(a, b qtraj, dRaw uint8) bool {
		cellD := 0.05 + float64(dRaw)/64 // 0.05 .. ~4
		d := measure.DTW{}.Distance(a, b)
		ca, cb := CompressCells(a, cellD), CompressCells(b, cellD)
		inf := math.Inf(1)
		return CellLowerBoundSum(ca, cb, inf) <= d+lbSlack &&
			CellLowerBoundSum(cb, ca, inf) <= d+lbSlack
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}

// DTWThreshold must agree with the exact DP whenever it does not abandon:
// ok iff the true distance is within τ, and an ok result carries the exact
// value (double-direction join included, Section 5.3.3).
func TestQuickDTWThresholdAgreesWithDTW(t *testing.T) {
	prop := func(a, b qtraj, tauRaw uint8) bool {
		m := measure.DTW{}
		d := m.Distance(a, b)
		tau := float64(tauRaw) / 16
		got, ok := m.DistanceThreshold(a, b, tau)
		if ok {
			return math.Abs(got-d) <= lbSlack && got <= tau+lbSlack
		}
		// An abandon must be justified: the true distance exceeds τ, and
		// the reported value (a lower bound proof) exceeds τ too.
		return d > tau-lbSlack && got > tau-lbSlack
	}
	if err := quick.Check(prop, qcfg); err != nil {
		t.Error(err)
	}
}
