package core

import (
	"testing"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

// Ablation benchmarks for the verification cascade (Section 5.3.3): raw
// threshold DTW on every candidate vs the full coverage→cell→DTW pipeline.

func benchCandidates(b *testing.B) (*traj.Dataset, *traj.T, []trajMeta) {
	b.Helper()
	d := gen.Generate(gen.BeijingLike(2000, 3))
	q := gen.Queries(d, 1, 4)[0]
	meta := make([]trajMeta, d.Len())
	for i, t := range d.Trajs {
		meta[i] = newTrajMeta(t, 0.01)
	}
	return d, q, meta
}

func BenchmarkVerifyRawDTW(b *testing.B) {
	d, q, _ := benchCandidates(b)
	m := measure.DTW{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := d.Trajs[i%d.Len()]
		m.DistanceThreshold(t.Points, q.Points, 0.003)
	}
}

func BenchmarkVerifyFullCascade(b *testing.B) {
	d, q, meta := benchCandidates(b)
	v := NewVerifier(measure.DTW{}, q.Points, 0.003, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % d.Len()
		v.Verify(d.Trajs[j], meta[j])
	}
}

func BenchmarkPAMDFilter(b *testing.B) {
	d, q, _ := benchCandidates(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := d.Trajs[i%d.Len()]
		PAMDK(t.Points, q.Points, 4, 0)
	}
}

func BenchmarkTrieFilterPerQuery(b *testing.B) {
	d := gen.Generate(gen.BeijingLike(5000, 5))
	e, err := NewEngine(d, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	qs := gen.Queries(d, 64, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		for _, p := range e.parts {
			p.Index.Search(q.Points, e.opts.Measure, 0.003, nil)
		}
	}
}
