package core

import (
	"time"

	"dita/internal/obs"
)

// engineMetrics holds the engine's registry handles, resolved once at
// build time. A nil *engineMetrics disables all recording (and, more
// importantly, the clock reads that feed the latency histograms).
type engineMetrics struct {
	reg           *obs.Registry
	searches      *obs.Counter
	joins         *obs.Counter
	knns          *obs.Counter
	searchLatency *obs.Histogram
	joinLatency   *obs.Histogram
	knnLatency    *obs.Histogram
	searchFunnel  *obs.FunnelCounters
	joinFunnel    *obs.FunnelCounters
	knnFunnel     *obs.FunnelCounters
	skips         *obs.Counter
	inserts       *obs.Counter
	deletes       *obs.Counter
	merges        *obs.Counter
	deltaBytes    *obs.Gauge
	replayRecords *obs.Counter
	replayLatency *obs.Histogram
	rebalances    *obs.Counter
	rebalanceMS   *obs.Histogram
	occupancySkew *obs.FloatGauge
}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	if r == nil {
		return nil
	}
	return &engineMetrics{
		reg:           r,
		searches:      r.Counter("engine_searches_total"),
		joins:         r.Counter("engine_joins_total"),
		knns:          r.Counter("engine_knn_total"),
		searchLatency: r.Histogram("engine_search_latency_us"),
		joinLatency:   r.Histogram("engine_join_latency_us"),
		knnLatency:    r.Histogram("engine_knn_latency_us"),
		searchFunnel:  obs.NewFunnelCounters(r, "engine_search_"),
		joinFunnel:    obs.NewFunnelCounters(r, "engine_join_"),
		knnFunnel:     obs.NewFunnelCounters(r, "engine_knn_"),
		skips:         r.Counter("engine_partition_skips_total"),
		inserts:       r.Counter("engine_inserts_total"),
		deletes:       r.Counter("engine_deletes_total"),
		merges:        r.Counter("engine_merges_total"),
		deltaBytes:    r.Gauge("engine_delta_bytes"),
		replayRecords: r.Counter("engine_wal_replayed_records_total"),
		replayLatency: r.Histogram("engine_wal_replay_us"),
		rebalances:    r.Counter("engine_rebalance_total"),
		rebalanceMS:   r.Histogram("engine_rebalance_ms"),
		occupancySkew: r.FloatGauge("engine_occupancy_skew"),
	}
}

// rebalanceObserve records one completed split/merge cutover and the
// post-cutover occupancy skew.
func (m *engineMetrics) rebalanceObserve(d time.Duration, skew float64) {
	if m == nil {
		return
	}
	m.rebalances.Inc()
	m.rebalanceMS.Observe(d.Milliseconds())
	m.occupancySkew.Set(skew)
}

// setDeltaBytes publishes the engine's total unmerged overlay size.
func (m *engineMetrics) setDeltaBytes(n int64) {
	if m != nil {
		m.deltaBytes.Set(n)
	}
}

// replayObserve records one WAL recovery pass.
func (m *engineMetrics) replayObserve(sum *ReplaySummary) {
	if m == nil {
		return
	}
	m.replayRecords.Add(int64(sum.Records))
	m.replayLatency.Observe(sum.Duration.Microseconds())
}

// knnInc counts one kNN query.
func (m *engineMetrics) knnInc() {
	if m != nil {
		m.knns.Inc()
	}
}

// recordSkip counts a skipped partition, overall and by error class. The
// per-class counter goes through the registry map — skips are rare, the
// lookup cost is irrelevant.
func (m *engineMetrics) recordSkip(class string) {
	if m == nil {
		return
	}
	m.skips.Inc()
	if class != "" {
		m.reg.Counter("engine_partition_skips_" + class + "_total").Inc()
	}
}

// Funnel converts the verifier's cascade counters into the verification
// stages of a pruning funnel. considered is the candidate population the
// trie filtered (partition size for search, |shipped|·|dst| pairs for a
// join edge); trieCands is the trie's output feeding this verifier.
func (v *Verifier) Funnel(considered, trieCands int) obs.Funnel {
	afterLen := int64(trieCands) - v.LengthPruned.Load()
	return obs.Funnel{
		Considered:    int64(considered),
		TrieCands:     int64(trieCands),
		AfterLength:   afterLen,
		AfterCoverage: afterLen - v.CoveragePruned.Load(),
		Verified:      v.Verified.Load(),
		Matched:       v.Accepted.Load(),
	}
}
