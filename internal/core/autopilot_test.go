package core

import (
	"sync"
	"testing"
	"time"

	"dita/internal/gen"
	"dita/internal/obs"
	"dita/internal/traj"
)

func TestCostTrackerEWMAAndDrop(t *testing.T) {
	ct := NewCostTracker()
	ct.Observe(3, 100, 100*time.Microsecond)
	s := ct.Snapshot()
	if len(s) != 1 || s[0].Pid != 3 || s[0].Verified != 100 || s[0].VerifyUS != 100 || s[0].Queries != 1 {
		t.Fatalf("first observation should seed directly, got %+v", s)
	}
	ct.Observe(3, 200, 200*time.Microsecond)
	s = ct.Snapshot()
	// EWMA: 100 + 0.2*(200-100) = 120.
	if s[0].Verified != 120 || s[0].VerifyUS != 120 || s[0].Queries != 2 {
		t.Fatalf("EWMA fold wrong: %+v", s[0])
	}
	ct.Observe(7, 1, time.Microsecond)
	if s = ct.Snapshot(); len(s) != 2 || s[0].Pid != 3 || s[1].Pid != 7 {
		t.Fatalf("snapshot not sorted by pid: %+v", s)
	}
	ct.Drop(3)
	if s = ct.Snapshot(); len(s) != 1 || s[0].Pid != 7 {
		t.Fatalf("drop did not forget pid 3: %+v", s)
	}
	// A nil tracker is a valid disabled tracker.
	var nilCT *CostTracker
	nilCT.Observe(1, 1, time.Microsecond)
	nilCT.Drop(1)
	if nilCT.Snapshot() != nil {
		t.Fatal("nil tracker snapshot should be nil")
	}
}

// seedCosts gives every pid in cold a light cost history and hot a heavy
// one, all past the planner's minimum-observation bar.
func seedCosts(ct *CostTracker, hot int, cold []int, heavy, light time.Duration) {
	for i := 0; i < 4*costMinQueries; i++ {
		ct.Observe(hot, 1000, heavy)
		for _, p := range cold {
			ct.Observe(p, 10, light)
		}
	}
}

func TestCostHotGates(t *testing.T) {
	pol := RebalancePolicy{CostBound: 2}.Sanitized()
	live := []int{0, 1, 2, 3}

	// Disabled: nil tracker, zero bound, or fewer than two live pids.
	ct := NewCostTracker()
	seedCosts(ct, 0, live[1:], 10*time.Millisecond, 10*time.Microsecond)
	if pid, _ := CostHot(nil, live, pol); pid != -1 {
		t.Fatalf("nil tracker: pid %d, want -1", pid)
	}
	if pid, _ := CostHot(ct, live, RebalancePolicy{}.Sanitized()); pid != -1 {
		t.Fatalf("zero CostBound: pid %d, want -1", pid)
	}
	if pid, _ := CostHot(ct, []int{0}, pol); pid != -1 {
		t.Fatalf("single live pid: pid %d, want -1", pid)
	}

	// The seeded hotspot qualifies, with fan-out capped by MaxPieces.
	pid, k := CostHot(ct, live, pol)
	if pid != 0 {
		t.Fatalf("hot pid %d, want 0", pid)
	}
	if k < 2 || k > pol.MaxPieces {
		t.Fatalf("fan-out %d outside [2, %d]", k, pol.MaxPieces)
	}

	// Below the minimum observation count the signal is not trusted.
	fresh := NewCostTracker()
	fresh.Observe(0, 1000, 10*time.Millisecond)
	for _, p := range live[1:] {
		fresh.Observe(p, 10, 10*time.Microsecond)
	}
	if pid, _ := CostHot(fresh, live, pol); pid != -1 {
		t.Fatalf("one observation qualified as hot: pid %d, want -1", pid)
	}

	// A flat cost distribution never crosses CostBound x mean.
	flat := NewCostTracker()
	for i := 0; i < 2*costMinQueries; i++ {
		for _, p := range live {
			flat.Observe(p, 100, time.Millisecond)
		}
	}
	if pid, _ := CostHot(flat, live, pol); pid != -1 {
		t.Fatalf("flat costs qualified as hot: pid %d, want -1", pid)
	}

	// Live pids the tracker never saw count as zero cost, so one hot
	// partition among untracked siblings still qualifies.
	sparse := NewCostTracker()
	for i := 0; i < 2*costMinQueries; i++ {
		sparse.Observe(2, 500, 5*time.Millisecond)
	}
	if pid, _ := CostHot(sparse, live, pol); pid != 2 {
		t.Fatalf("sparse tracker: pid %d, want 2", pid)
	}
}

// TestAutopilotCostSplit drives the cost-aware planner end to end: a
// byte-balanced engine whose read cost concentrates on one partition
// splits exactly that partition, forgets its cost history at cutover,
// and keeps answering queries exactly like brute force.
func TestAutopilotCostSplit(t *testing.T) {
	d := smallDataset(300, 42)
	opts := smallOpts(4)
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}

	// Pick a live multi-member partition as the read hotspot and give the
	// tracker the history a skewed query workload would have written.
	hot := -1
	var cold []int
	for _, p := range e.parts {
		if p.retired || len(p.visibleTrajs()) < 2 {
			continue
		}
		if hot < 0 {
			hot = p.ID
		} else {
			cold = append(cold, p.ID)
		}
	}
	if hot < 0 || len(cold) == 0 {
		t.Fatal("dataset produced no splittable partitions")
	}
	seedCosts(e.cost, hot, cold, 20*time.Millisecond, 20*time.Microsecond)

	// A generous SkewBound keeps the byte path quiet (a freshly cut STR
	// layout can sit slightly above the default bound) and the near-zero
	// MergeFraction keeps cold merges quiet, so any action below is the
	// cost path's.
	pol := RebalancePolicy{SkewBound: 4, CostBound: 2, MergeFraction: 0.001}
	if _, _, skew := e.OccupancySkew(); skew > pol.SkewBound {
		t.Fatalf("base layout skew %.2f, cannot isolate the cost path", skew)
	}
	st, err := e.RebalanceOnce(pol)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("cost-hot partition did not trigger a split")
	}
	if len(st.Retired) != 1 || st.Retired[0] != hot {
		t.Fatalf("split retired %v, want [%d]", st.Retired, hot)
	}
	if len(st.Created) < 2 {
		t.Fatalf("split created %v, want >= 2 pieces", st.Created)
	}
	for _, pc := range e.PartitionCosts() {
		if pc.Pid == hot {
			t.Fatalf("retired pid %d still tracked after cutover", hot)
		}
	}
	checkVisible(t, e, want, gen.Queries(d, 3, 43), "cost-split")

	// The fresh pieces have no cost history, so a second pass is a no-op
	// — the built-in churn guard after a cost split.
	st, err = e.RebalanceOnce(pol)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("second pass acted (%v -> %v) with no fresh cost signal", st.Retired, st.Created)
	}
}

// TestSearchFeedsCostTracker: timed engines (a metrics registry) feed
// the tracker from the search path; untimed engines stay clock-free and
// record nothing.
func TestSearchFeedsCostTracker(t *testing.T) {
	d := smallDataset(200, 7)
	queries := gen.Queries(d, 5, 8)

	timedOpts := smallOpts(2)
	timedOpts.Obs = obs.New()
	te, err := NewEngine(d, timedOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		te.Search(q, 0.05, nil)
	}
	costs := te.PartitionCosts()
	if len(costs) == 0 {
		t.Fatal("timed engine recorded no partition costs")
	}
	for _, pc := range costs {
		if pc.Queries < 1 || pc.VerifyUS < 0 {
			t.Fatalf("bad cost entry %+v", pc)
		}
	}

	ue, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ue.Search(q, 0.05, nil)
	}
	if costs := ue.PartitionCosts(); len(costs) != 0 {
		t.Fatalf("untimed engine recorded %d partition costs, want 0", len(costs))
	}
}

// TestRebalanceConvergenceBudget pins the Converged return: a planner
// with work left when the step budget runs out reports false; a balanced
// layout reports true.
func TestRebalanceConvergenceBudget(t *testing.T) {
	d := smallDataset(200, 11)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	// Pile a hotspot onto one partition so the planner has work.
	center := d.Trajs[0].First()
	for _, tr := range skewPool(150, 20000, center, 12) {
		if err := e.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, skew := e.OccupancySkew(); skew <= 2 {
		t.Skip("hotspot did not skew the layout")
	}

	old := rebalanceMaxSteps
	rebalanceMaxSteps = 0
	steps, converged, err := e.Rebalance(RebalancePolicy{})
	rebalanceMaxSteps = old
	if err != nil {
		t.Fatal(err)
	}
	if converged {
		t.Fatal("zero-step budget reported convergence over a skewed layout")
	}
	if len(steps) != 0 {
		t.Fatalf("zero-step budget took %d steps", len(steps))
	}

	// With the real budget the same layout converges.
	steps, converged, err = e.Rebalance(RebalancePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !converged {
		t.Fatalf("default budget did not converge after %d steps", len(steps))
	}
	if len(steps) == 0 {
		t.Fatal("planner took no action above the bound")
	}
}

// TestRebalanceSingleSnapshotRace is the regression test for the planner
// race: RebalanceOnce used to compute its split fan-out from a second
// OccupancySkew() taken after planRebalance released the lock, pairing a
// stale hot pid with a fan-out for a different layout when writers moved
// occupancy in between. Race writers against repeated planner steps
// (meaningful under -race) and hold the differential oracle at the end.
func TestRebalanceSingleSnapshotRace(t *testing.T) {
	d := smallDataset(200, 21)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	var wantMu sync.Mutex
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}

	center := d.Trajs[0].First()
	pool := skewPool(240, 30000, center, 22)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(pool); i += 3 {
				if err := e.Insert(pool[i]); err != nil {
					t.Error(err)
					return
				}
				wantMu.Lock()
				want[pool[i].ID] = pool[i]
				wantMu.Unlock()
			}
		}(w)
	}
	stop := make(chan struct{})
	plannerDone := make(chan struct{})
	go func() {
		defer close(plannerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.RebalanceOnce(RebalancePolicy{}); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-plannerDone
	if t.Failed() {
		t.FailNow()
	}

	// Settle the layout, then hold the oracle.
	if _, _, err := e.Rebalance(RebalancePolicy{}); err != nil {
		t.Fatal(err)
	}
	checkVisible(t, e, want, gen.Queries(d, 3, 23), "snapshot-race")
}
