package core

import (
	"fmt"
	"testing"

	"dita/internal/cluster"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

func bruteJoin(a, b *traj.Dataset, m measure.Measure, tau float64) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, t := range a.Trajs {
		for _, q := range b.Trajs {
			if m.Distance(t.Points, q.Points) <= tau {
				out[[2]int{t.ID, q.ID}] = true
			}
		}
	}
	return out
}

func checkJoin(t *testing.T, pairs []Pair, want map[[2]int]bool, label string) {
	t.Helper()
	got := map[[2]int]bool{}
	for _, p := range pairs {
		key := [2]int{p.T.ID, p.Q.ID}
		if got[key] {
			t.Fatalf("%s: duplicate pair %v", label, key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
	}
	for key := range want {
		if !got[key] {
			t.Fatalf("%s: missing pair %v", label, key)
		}
	}
}

// buildPair builds two engines on a shared cluster for joining.
func buildPair(t *testing.T, a, b *traj.Dataset, m measure.Measure, workers int) (*Engine, *Engine) {
	t.Helper()
	cl := cluster.New(cluster.DefaultConfig(workers))
	opts := DefaultOptions()
	opts.NG = 3
	opts.Trie.MinNode = 4
	opts.Measure = m
	opts.Cluster = cl
	ea, err := NewEngine(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := NewEngine(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ea, eb
}

// The distributed join must produce exactly the brute-force pair set.
func TestJoinMatchesBruteForce(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(120, 1))
	bcfg := gen.BeijingLike(100, 2)
	bcfg.Name = "B2"
	b := gen.Generate(bcfg)
	// Offset b's ids to keep pairs unambiguous.
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	for _, m := range []measure.Measure{measure.DTW{}, measure.Frechet{}} {
		var tau float64
		if m.Accumulation() == measure.AccumMax {
			tau = 0.01
		} else {
			tau = 0.05
		}
		ea, eb := buildPair(t, a, b, m, 4)
		var stats JoinStats
		pairs := ea.Join(eb, tau, DefaultJoinOptions(), &stats)
		want := bruteJoin(a, b, m, tau)
		checkJoin(t, pairs, want, m.Name())
		if stats.Results != len(pairs) {
			t.Errorf("stats.Results = %d, want %d", stats.Results, len(pairs))
		}
		if len(want) > 0 && stats.Edges == 0 {
			t.Error("join produced results with zero edges?")
		}
	}
}

// Self-join: every trajectory pairs with itself.
func TestSelfJoin(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(100, 3))
	ea, eb := buildPair(t, d, d, measure.DTW{}, 4)
	pairs := ea.Join(eb, 0.02, DefaultJoinOptions(), nil)
	self := map[int]bool{}
	for _, p := range pairs {
		if p.T.ID == p.Q.ID {
			self[p.T.ID] = true
		}
	}
	if len(self) != d.Len() {
		t.Errorf("self-join found %d self pairs, want %d", len(self), d.Len())
	}
	want := bruteJoin(d, d, measure.DTW{}, 0.02)
	checkJoin(t, pairs, want, "self-join")
}

// Edit-measure joins must be exact too (no partition-level pruning path).
func TestJoinEditMeasures(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(60, 4))
	b := gen.Generate(gen.BeijingLike(50, 5))
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	for _, m := range []measure.Measure{
		measure.EDR{Eps: 0.002}, measure.LCSS{Eps: 0.002, Delta: 5}, measure.ERP{},
	} {
		var tau float64
		if m.Accumulation() == measure.AccumEdit {
			tau = 8
		} else {
			tau = 0.1
		}
		ea, eb := buildPair(t, a, b, m, 2)
		pairs := ea.Join(eb, tau, DefaultJoinOptions(), nil)
		want := bruteJoin(a, b, m, tau)
		checkJoin(t, pairs, want, m.Name())
	}
}

// The ablation switches must not change results, only costs.
func TestJoinAblationsExact(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(80, 6))
	b := gen.Generate(gen.BeijingLike(80, 7))
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	want := bruteJoin(a, b, measure.DTW{}, 0.04)
	for _, mode := range []struct {
		name string
		opts JoinOptions
	}{
		{"default", DefaultJoinOptions()},
		{"no-orientation", JoinOptions{SampleRate: 0.1, DisableOrientation: true, DivisionQuantile: 0.98, Seed: 2}},
		{"no-division", JoinOptions{SampleRate: 0.1, DisableDivision: true, DivisionQuantile: 0.98, Seed: 3}},
		{"no-both", JoinOptions{SampleRate: 0.1, DisableOrientation: true, DisableDivision: true, Seed: 4}},
	} {
		ea, eb := buildPair(t, a, b, measure.DTW{}, 4)
		pairs := ea.Join(eb, 0.04, mode.opts, nil)
		checkJoin(t, pairs, want, mode.name)
	}
}

// Joins on one worker (centralized) and many workers agree.
func TestJoinWorkerCounts(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(70, 8))
	b := gen.Generate(gen.BeijingLike(70, 9))
	for _, tr := range b.Trajs {
		tr.ID += 10000
	}
	want := bruteJoin(a, b, measure.DTW{}, 0.03)
	for _, w := range []int{1, 2, 8} {
		ea, eb := buildPair(t, a, b, measure.DTW{}, w)
		pairs := ea.Join(eb, 0.03, DefaultJoinOptions(), nil)
		checkJoin(t, pairs, want, fmt.Sprintf("workers=%d", w))
	}
}

// Join stats must reflect the shuffle.
func TestJoinStats(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(150, 10))
	ea, eb := buildPair(t, a, a, measure.DTW{}, 4)
	var stats JoinStats
	pairs := ea.Join(eb, 0.02, DefaultJoinOptions(), &stats)
	if stats.Results != len(pairs) || stats.Results < a.Len() {
		t.Errorf("results: stats=%d pairs=%d", stats.Results, len(pairs))
	}
	if stats.Edges == 0 {
		t.Error("no edges on a self-join")
	}
	if stats.TrajsSent == 0 || stats.BytesSent == 0 {
		t.Errorf("shuffle not accounted: %+v", stats)
	}
	if stats.CandPairs < stats.Results {
		t.Errorf("candidates %d < results %d", stats.CandPairs, stats.Results)
	}
	if stats.LoadRatio < 1 {
		t.Errorf("load ratio %v < 1", stats.LoadRatio)
	}
}

// An empty intersection produces no pairs and no spurious shuffle results.
func TestJoinDisjointDatasets(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(50, 11))
	ccfg := gen.ChengduLike(50, 12) // different city: far away extent
	c := gen.Generate(ccfg)
	for _, tr := range c.Trajs {
		tr.ID += 10000
	}
	ea, ec := buildPair(t, a, c, measure.DTW{}, 2)
	var stats JoinStats
	pairs := ea.Join(ec, 0.05, DefaultJoinOptions(), &stats)
	if len(pairs) != 0 {
		t.Errorf("disjoint join returned %d pairs", len(pairs))
	}
	if stats.Edges != 0 {
		t.Errorf("disjoint join built %d edges", stats.Edges)
	}
}

// Division-based balancing should reduce the load ratio on skewed
// workloads (Figure 16's claim), at least not increase it dramatically.
func TestDivisionBalancesSkew(t *testing.T) {
	// Skewed: all trajectories share nearly identical endpoints, so one
	// partition pair dominates.
	cfg := gen.BeijingLike(400, 13)
	cfg.Hotspots = 1
	cfg.HotspotStd = 0.001
	d := gen.Generate(cfg)

	run := func(disable bool) (float64, int) {
		ea, eb := buildPair(t, d, d, measure.DTW{}, 8)
		opts := DefaultJoinOptions()
		opts.DisableDivision = disable
		var stats JoinStats
		ea.Join(eb, 0.002, opts, &stats)
		return stats.LoadRatio, stats.Divisions
	}
	balancedRatio, divisions := run(false)
	naiveRatio, _ := run(true)
	t.Logf("load ratio: balanced=%.2f naive=%.2f divisions=%d", balancedRatio, naiveRatio, divisions)
	if divisions == 0 {
		t.Log("no divisions triggered on this workload (acceptable: quantile threshold not exceeded)")
	}
	if balancedRatio > naiveRatio*1.5+1 {
		t.Errorf("division balancing made skew worse: %v vs %v", balancedRatio, naiveRatio)
	}
}
