package core

import (
	"errors"
	"math/rand"
	"os"
	"sort"
	"testing"

	"dita/internal/gen"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/wal"
)

// mutPool returns fresh trajectories whose ids cannot collide with a
// BeijingLike base dataset (gen ids are small and dense).
func mutPool(n int, seed int64) []*traj.T {
	d := gen.Generate(gen.BeijingLike(n, seed))
	for i, t := range d.Trajs {
		t.ID = 10000 + i
	}
	return d.Trajs
}

// visibleDataset materializes the model's visible set as a dataset, in
// ascending id order, for the brute-force oracles.
func visibleDataset(want map[int]*traj.T) *traj.Dataset {
	ids := make([]int, 0, len(want))
	for id := range want {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	trajs := make([]*traj.T, len(ids))
	for i, id := range ids {
		trajs[i] = want[id]
	}
	return traj.NewDataset("visible", trajs)
}

// checkVisible compares the engine's search and kNN answers against
// brute force over the model's visible set — the strongest oracle the
// repo has (a rebuilt engine is itself tested against brute force).
func checkVisible(t *testing.T, e *Engine, want map[int]*traj.T, queries []*traj.T, label string) {
	t.Helper()
	vis := visibleDataset(want)
	m := e.Measure()
	for _, q := range queries {
		bs := bruteSearch(vis, m, q, 0.05)
		got := e.Search(q, 0.05, nil)
		ids := map[int]bool{}
		for _, r := range got {
			if ids[r.Traj.ID] {
				t.Fatalf("%s: q=%d: duplicate search result %d", label, q.ID, r.Traj.ID)
			}
			ids[r.Traj.ID] = true
		}
		if len(ids) != len(bs) {
			t.Fatalf("%s: q=%d: search got %d results, brute force %d", label, q.ID, len(ids), len(bs))
		}
		for id := range bs {
			if !ids[id] {
				t.Fatalf("%s: q=%d: search missing %d", label, q.ID, id)
			}
		}
		k := 7
		if k > vis.Len() {
			k = vis.Len()
		}
		wantK := bruteKNN(vis, m, q, k)
		gotK := idsOf(e.SearchKNN(q, k))
		if len(gotK) != len(wantK) {
			t.Fatalf("%s: q=%d: knn got %d results, want %d", label, q.ID, len(gotK), len(wantK))
		}
		for i := range wantK {
			if gotK[i] != wantK[i] {
				t.Fatalf("%s: q=%d: knn[%d] = %d, want %d (got %v want %v)",
					label, q.ID, i, gotK[i], wantK[i], gotK, wantK)
			}
		}
	}
}

// TestIngestDifferential is the tentpole's core contract: an engine
// mutated by an interleaved stream of inserts, upserts, deletes, and
// merges answers every query exactly like a brute-force scan of the
// currently visible set — and, at the end, exactly like an engine
// rebuilt from scratch over that set.
func TestIngestDifferential(t *testing.T) {
	d := smallDataset(300, 31)
	opts := smallOpts(4)
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	if !e.IngestEnabled() {
		t.Fatal("ingest not enabled")
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	pool := mutPool(220, 32)
	queries := gen.Queries(d, 6, 34)
	rng := rand.New(rand.NewSource(33))

	randomVisible := func() int {
		ids := make([]int, 0, len(want))
		for id := range want {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		return ids[rng.Intn(len(ids))]
	}

	next := 0
	for round := 0; round < 4; round++ {
		for i := 0; i < 30; i++ {
			tr := pool[next]
			next++
			if err := e.Insert(tr); err != nil {
				t.Fatal(err)
			}
			want[tr.ID] = tr
		}
		for i := 0; i < 8; i++ {
			id := randomVisible()
			up := &traj.T{ID: id, Points: pool[next].Points}
			next++
			if err := e.Insert(up); err != nil {
				t.Fatal(err)
			}
			want[id] = up
		}
		for i := 0; i < 8; i++ {
			id := randomVisible()
			ok, err := e.Delete(id)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("delete of visible id %d reported absent", id)
			}
			delete(want, id)
		}
		checkVisible(t, e, want, queries, "round")
		if round%2 == 1 {
			if err := e.MergeAll(); err != nil {
				t.Fatal(err)
			}
			for _, p := range e.parts {
				if p.frozen != nil || len(p.tomb) != 0 || len(p.delta.Live) != 0 {
					t.Fatalf("partition %d still has overlay after MergeAll", p.ID)
				}
			}
			checkVisible(t, e, want, queries, "post-merge")
		}
	}

	// Deleting an unknown id is a silent no-op that appends nothing.
	seq := e.LastSeq()
	if ok, err := e.Delete(999999); err != nil || ok {
		t.Fatalf("delete of unknown id: ok=%v err=%v", ok, err)
	}
	if e.LastSeq() != seq {
		t.Fatal("no-op delete advanced the sequence")
	}

	// Final differential: a fresh engine over exactly the visible set
	// must agree answer-for-answer, distances included.
	vis := visibleDataset(want)
	oracle, err := NewEngine(vis, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if !sameResults(oracle.Search(q, 0.05, nil), e.Search(q, 0.05, nil)) {
			t.Fatalf("final search differs from rebuilt engine for query %d", q.ID)
		}
		// kNN distances may differ by an ulp between the two engines: a
		// candidate is resolved by the exact kernel or the threshold
		// kernel depending on the live τ when it is reached, and the two
		// DPs are mathematically — not bitwise — equal. IDs and order
		// must still agree exactly.
		wk, gk := oracle.SearchKNN(q, 7), e.SearchKNN(q, 7)
		if len(wk) != len(gk) {
			t.Fatalf("final knn count differs for query %d: %d vs %d", q.ID, len(wk), len(gk))
		}
		for i := range wk {
			rel := wk[i].Distance - gk[i].Distance
			if rel < 0 {
				rel = -rel
			}
			if wk[i].Traj.ID != gk[i].Traj.ID || rel > 1e-12*(1+wk[i].Distance) {
				t.Fatalf("final knn[%d] differs for query %d: oracle=(%d,%g) live=(%d,%g)",
					i, q.ID, wk[i].Traj.ID, wk[i].Distance, gk[i].Traj.ID, gk[i].Distance)
			}
		}
	}

	// Join: the mutated engine joined against a static side must produce
	// the brute-force pair set over (visible, static).
	bcfg := gen.BeijingLike(80, 35)
	bcfg.Name = "B"
	b := gen.Generate(bcfg)
	for _, tr := range b.Trajs {
		tr.ID += 50000
	}
	eb, err := NewEngine(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	pairs := e.Join(eb, 0.05, DefaultJoinOptions(), nil)
	checkJoin(t, pairs, bruteJoin(vis, b, e.Measure(), 0.05), "ingest-join")

	// kNN join from the mutated side: one probe per visible trajectory.
	kj, err := e.KNNJoin(eb, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(kj) != len(want) {
		t.Fatalf("knn join answered %d probes, visible set has %d", len(kj), len(want))
	}
	for id, res := range kj {
		wk := bruteKNN(b, e.Measure(), want[id], 3)
		gk := idsOf(res)
		for i := range wk {
			if gk[i] != wk[i] {
				t.Fatalf("knn join probe %d: got %v want %v", id, gk, wk)
			}
		}
	}
}

// TestIngestMergeWindow exercises the frozen-overlay state
// deterministically: while a merge's off-lock fold is in flight, queries
// must see (base − masks) ∪ frozen ∪ delta, and mutations landing in the
// window (upserts over frozen members, deletes of base and frozen
// members, fresh inserts) must all be visible immediately and survive the
// merge's install.
func TestIngestMergeWindow(t *testing.T) {
	d := smallDataset(200, 41)
	opts := smallOpts(4)
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	pool := mutPool(80, 42)
	queries := gen.Queries(d, 4, 43)

	// Stage mutations so partition pid has a rich overlay to rotate.
	for i := 0; i < 30; i++ {
		if err := e.Insert(pool[i]); err != nil {
			t.Fatal(err)
		}
		want[pool[i].ID] = pool[i]
	}
	pid := e.ing.loc[pool[0].ID].pid
	p := e.parts[pid]
	frozenID := pool[0].ID // will be in the frozen delta after rotation
	var baseID int         // a base member of pid, untouched so far
	for _, tr := range p.Trajs {
		if _, inWant := want[tr.ID]; inWant && tr.ID < 10000 {
			baseID = tr.ID
			break
		}
	}

	hookRan := false
	mergeFoldHook = func(he *Engine, hpid int) {
		if hpid != pid {
			return
		}
		hookRan = true
		if p.frozen == nil {
			t.Error("hook ran without a frozen delta")
			return
		}
		// Queries during the window.
		checkVisible(t, e, want, queries, "window-pre")
		// Upsert over a frozen member: the frozen copy must be masked.
		up := &traj.T{ID: frozenID, Points: pool[60].Points}
		if err := e.Insert(up); err != nil {
			t.Error(err)
			return
		}
		want[frozenID] = up
		// Delete a base member of the merging partition.
		if ok, err := e.Delete(baseID); err != nil || !ok {
			t.Errorf("window delete of %d: ok=%v err=%v", baseID, ok, err)
			return
		}
		delete(want, baseID)
		// Fresh insert racing the merge.
		if err := e.Insert(pool[61]); err != nil {
			t.Error(err)
			return
		}
		want[pool[61].ID] = pool[61]
		checkVisible(t, e, want, queries, "window-post")
	}
	defer func() { mergeFoldHook = nil }()

	did, err := e.MergePartition(pid)
	mergeFoldHook = nil // one shot: MergeAll below must not re-run it
	if err != nil {
		t.Fatal(err)
	}
	if !did || !hookRan {
		t.Fatalf("merge did=%v hookRan=%v", did, hookRan)
	}
	if p.frozen != nil || p.frozenTomb != nil {
		t.Fatal("frozen overlay not cleared after merge")
	}
	checkVisible(t, e, want, queries, "after-merge")
	// The window's mutations are post-rotation overlay; fold them too.
	if err := e.MergeAll(); err != nil {
		t.Fatal(err)
	}
	checkVisible(t, e, want, queries, "after-merge-all")
}

// sealAll persists every partition's current base so a cold start has a
// complete snapshot set.
func sealAll(t *testing.T, e *Engine, st *snap.Store) {
	t.Helper()
	for _, p := range e.Partitions() {
		if _, err := st.Save(e.ExportSnapshot(e.dataset.Name, p)); err != nil {
			t.Fatal(err)
		}
	}
}

// coldStart reassembles an engine from the directory's snapshots and
// replays the WAL suffixes.
func coldStart(t *testing.T, snapStore *snap.Store, walStore *wal.Store, opts Options) (*Engine, *ReplaySummary) {
	t.Helper()
	ents, err := snapStore.Scan()
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*snap.Snapshot
	for _, en := range ents {
		s, err := snap.LoadFile(en.Path)
		if err != nil {
			t.Fatalf("load %s: %v", en.Path, err)
		}
		snaps = append(snaps, s)
	}
	e, err := NewEngineFromSnapshots(snaps, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore, Replay: true})
	if err != nil {
		t.Fatal(err)
	}
	return e, sum
}

// TestIngestWALRecovery is the crash-recovery contract: after a hard stop
// (no shutdown, no final merge), the newest sealed snapshots plus each
// partition's WAL suffix past its watermark reconstruct exactly the acked
// state — and the replayed record count is exactly the acked mutations
// not yet folded into a snapshot.
func TestIngestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := smallDataset(250, 51)
	opts := smallOpts(4)
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	sum, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != 0 || sum.TruncatedBytes != 0 {
		t.Fatalf("fresh enable replayed something: %+v", sum)
	}

	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	pool := mutPool(120, 52)
	queries := gen.Queries(d, 5, 53)
	rng := rand.New(rand.NewSource(54))

	mutate := func(n int) int {
		acked := 0
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				tr := pool[0]
				pool = pool[1:]
				if err := e.Insert(tr); err != nil {
					t.Fatal(err)
				}
				want[tr.ID] = tr
			default:
				ids := make([]int, 0, len(want))
				for id := range want {
					ids = append(ids, id)
				}
				sort.Ints(ids)
				id := ids[rng.Intn(len(ids))]
				if ok, err := e.Delete(id); err != nil || !ok {
					t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
				}
				delete(want, id)
			}
			acked++
		}
		return acked
	}

	// Phase 1: mutations, then fold everything into sealed snapshots
	// (every partition's WAL truncates through its watermark).
	mutate(60)
	if err := e.MergeAll(); err != nil {
		t.Fatal(err)
	}
	// Phase 2: the suffix a crash would lose without the WAL.
	suffix := mutate(40)
	liveSeq := e.LastSeq()
	checkVisible(t, e, want, queries, "live")

	// Hard stop: no CloseIngest, no merge — exactly what a SIGKILL
	// leaves on disk (appends are fsync'd per mutation).
	cold, csum := coldStart(t, snapStore, walStore, smallOpts(4))
	if csum.Records != suffix {
		t.Fatalf("replayed %d records, want the %d-mutation suffix", csum.Records, suffix)
	}
	if csum.MaxSeq != liveSeq || cold.LastSeq() != liveSeq {
		t.Fatalf("sequence drift: replay max %d, cold last %d, live last %d",
			csum.MaxSeq, cold.LastSeq(), liveSeq)
	}
	if csum.DupsMasked != 0 {
		t.Fatalf("clean recovery masked %d duplicates", csum.DupsMasked)
	}
	checkVisible(t, cold, want, queries, "recovered")
	// Distances too: the recovered engine must answer byte-identically
	// to the live engine it replaced.
	for _, q := range queries {
		if !sameResults(e.Search(q, 0.05, nil), cold.Search(q, 0.05, nil)) {
			t.Fatalf("recovered search differs for query %d", q.ID)
		}
	}

	// The recovered engine keeps ingesting: sequences continue past the
	// replayed ones, and a second recovery sees the new writes.
	tr := pool[0]
	if err := cold.Insert(tr); err != nil {
		t.Fatal(err)
	}
	want[tr.ID] = tr
	if cold.LastSeq() <= liveSeq {
		t.Fatal("post-recovery sequence did not advance")
	}
	if err := cold.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	cold2, _ := coldStart(t, snapStore, walStore, smallOpts(4))
	checkVisible(t, cold2, want, queries, "recovered-twice")
}

// TestIngestSeqResumesPastWatermark: after a merge truncates every log
// through its snapshot watermark, a cold start finds empty WALs — the
// sequence counter must be seeded from the watermarks, not just the
// logs' last records, or fresh mutations would reuse burned numbers and
// the NEXT restart's watermark skip would silently drop them (acked
// writes lost).
func TestIngestSeqResumesPastWatermark(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := smallDataset(200, 91)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	// One delete per partition, so after MergeAll every partition's
	// snapshot watermark is positive and every log is truncated empty.
	for _, p := range e.Partitions() {
		id := p.Trajs[0].ID
		if ok, err := e.Delete(id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
		delete(want, id)
	}
	if err := e.MergeAll(); err != nil {
		t.Fatal(err)
	}
	liveSeq := e.LastSeq()
	if liveSeq == 0 {
		t.Fatal("no sequence numbers assigned")
	}
	if err := e.CloseIngest(); err != nil {
		t.Fatal(err)
	}

	// Cold start over (merged snapshots, empty logs): nothing to replay,
	// but the counter must resume past every snapshot's watermark.
	cold, sum := coldStart(t, snapStore, walStore, smallOpts(4))
	if sum.Records != 0 {
		t.Fatalf("replayed %d records from truncated logs", sum.Records)
	}
	if cold.LastSeq() < liveSeq {
		t.Fatalf("sequence counter restarted at %d, below the snapshot watermarks (max %d)",
			cold.LastSeq(), liveSeq)
	}

	// The write that the bug would lose: its seq must exceed the target
	// partition's watermark, so the next replay applies it.
	tr := mutPool(1, 92)[0]
	if err := cold.Insert(tr); err != nil {
		t.Fatal(err)
	}
	want[tr.ID] = tr
	if cold.LastSeq() <= liveSeq {
		t.Fatal("post-recovery insert did not advance past the watermarks")
	}
	if err := cold.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	cold2, sum2 := coldStart(t, snapStore, walStore, smallOpts(4))
	if sum2.Records != 1 {
		t.Fatalf("second recovery replayed %d records, want the 1 post-merge insert", sum2.Records)
	}
	checkVisible(t, cold2, want, gen.Queries(d, 4, 93), "recovered-past-watermark")
}

// TestIngestTornTail: a torn final record (partial write at the moment of
// a crash) is truncated on recovery — the log's valid prefix replays, the
// torn mutation is lost (it was never acked durable), and nothing else is
// disturbed.
func TestIngestTornTail(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := smallDataset(150, 61)
	opts := smallOpts(2)
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore}); err != nil {
		t.Fatal(err)
	}
	pool := mutPool(20, 62)
	for _, tr := range pool {
		if err := e.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the last record of the last-written partition's log: chop a
	// few bytes off the file, as a crash mid-write would.
	lastID := pool[len(pool)-1].ID
	victim := e.ing.loc[lastID].pid
	if err := e.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	path := walStore.Path(d.Name, victim)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	cold, sum := coldStart(t, snapStore, walStore, smallOpts(2))
	if sum.TruncatedBytes <= 0 {
		t.Fatalf("torn tail not truncated: %+v", sum)
	}
	if sum.Records != len(pool)-1 {
		t.Fatalf("replayed %d records, want %d (all but the torn one)", sum.Records, len(pool)-1)
	}
	if _, ok := cold.ing.loc[lastID]; ok {
		t.Fatal("torn mutation resurrected")
	}
	for _, tr := range pool[:len(pool)-1] {
		le, ok := cold.ing.loc[tr.ID]
		if !ok || le.t.ID != tr.ID {
			t.Fatalf("durable insert %d lost", tr.ID)
		}
	}
	// The truncation repaired the file in place: a second open is clean.
	if fi2, err := os.Stat(path); err != nil || fi2.Size() >= fi.Size()-3 {
		t.Fatalf("log not repaired in place: %v size=%d", err, fi2.Size())
	}
	if err := cold.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	_, sum2 := coldStart(t, snapStore, walStore, smallOpts(2))
	if sum2.TruncatedBytes != 0 {
		t.Fatalf("second recovery still truncating: %+v", sum2)
	}
}

// TestIngestAppendFaults: an injected append failure (clean I/O error or
// mid-write crash) must leave the engine byte-for-byte unchanged — the
// mutation was never acked, so it must not be visible, and the sequence
// must not advance. After the fault clears, the same mutation succeeds.
func TestIngestAppendFaults(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := &snap.FaultPlan{Seed: 7, FailRate: 1}
	walStore.Faults = plan

	d := smallDataset(100, 71)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore}); err != nil {
		t.Fatal(err)
	}
	pool := mutPool(3, 72)
	tr := pool[0]

	var inj *snap.InjectedFault
	if err := e.Insert(tr); !errors.As(err, &inj) || inj.Kind != "fail" {
		t.Fatalf("want injected fail, got %v", err)
	}
	if e.LastSeq() != 0 || e.DeltaBytes() != 0 {
		t.Fatalf("failed append mutated state: seq=%d delta=%d", e.LastSeq(), e.DeltaBytes())
	}
	if _, ok := e.ing.loc[tr.ID]; ok {
		t.Fatal("unacked insert visible")
	}

	plan.FailRate, plan.CrashRate = 0, 1
	if err := e.Insert(tr); !errors.As(err, &inj) || inj.Kind != "crash" {
		t.Fatalf("want injected crash, got %v", err)
	}
	if e.LastSeq() != 0 || e.DeltaBytes() != 0 {
		t.Fatalf("crashed append mutated state: seq=%d delta=%d", e.LastSeq(), e.DeltaBytes())
	}

	// Fault cleared: the retry succeeds, overwriting the torn bytes the
	// injected crash left at the append offset.
	plan.CrashRate = 0
	if err := e.Insert(tr); err != nil {
		t.Fatal(err)
	}
	if e.LastSeq() != 1 {
		t.Fatalf("seq = %d after first durable append", e.LastSeq())
	}
	if err := e.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	walStore.Faults = nil
	cold, sum := coldStart(t, snapStore, walStore, smallOpts(2))
	if sum.Records != 1 {
		t.Fatalf("replayed %d records, want 1", sum.Records)
	}
	if _, ok := cold.ing.loc[tr.ID]; !ok {
		t.Fatal("durable insert lost after faults")
	}
}

// TestIngestBackpressure: MaxDeltaBytes bounds a partition's unmerged
// backlog with a typed error, and a merge drains it.
func TestIngestBackpressure(t *testing.T) {
	d := smallDataset(100, 81)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{MaxDeltaBytes: 1}); err != nil {
		t.Fatal(err)
	}
	pool := mutPool(2, 82)
	if err := e.Insert(pool[0]); err != nil {
		t.Fatal(err)
	}
	// Upsert the same id: sticky routing targets the same partition,
	// whose backlog is now at the bound.
	up := &traj.T{ID: pool[0].ID, Points: pool[1].Points}
	if err := e.Insert(up); !errors.Is(err, ErrDeltaBacklog) {
		t.Fatalf("want ErrDeltaBacklog, got %v", err)
	}
	if err := e.MergeAll(); err != nil {
		t.Fatal(err)
	}
	if e.DeltaBytes() != 0 {
		t.Fatalf("backlog after MergeAll: %d", e.DeltaBytes())
	}
	if err := e.Insert(up); err != nil {
		t.Fatalf("insert after drain: %v", err)
	}
}

// TestIngestAutoMerge: with AutoMerge on and a tiny threshold, inserts
// trigger synchronous merges that seal snapshots and truncate logs.
func TestIngestAutoMerge(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := smallDataset(120, 91)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore, MergeBytes: 1, AutoMerge: true}); err != nil {
		t.Fatal(err)
	}
	pool := mutPool(10, 92)
	for _, tr := range pool {
		if err := e.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	if e.DeltaBytes() != 0 {
		t.Fatalf("auto-merge left %d overlay bytes", e.DeltaBytes())
	}
	merged := false
	for _, p := range e.parts {
		if p.watermark > 0 {
			merged = true
		}
	}
	if !merged {
		t.Fatal("no partition carries a watermark after auto-merges")
	}
	// Every log was truncated through its watermark; a cold start
	// replays nothing and still sees every insert.
	if err := e.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	cold, sum := coldStart(t, snapStore, walStore, smallOpts(2))
	if sum.Records != 0 {
		t.Fatalf("replayed %d records after full auto-merge, want 0", sum.Records)
	}
	for _, tr := range pool {
		if _, ok := cold.ing.loc[tr.ID]; !ok {
			t.Fatalf("insert %d lost across auto-merge cold start", tr.ID)
		}
	}
}

// TestIngestDisabled: mutation entry points demand EnableIngest, and
// enabling twice is rejected.
func TestIngestDisabled(t *testing.T) {
	d := smallDataset(50, 95)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert(mutPool(1, 96)[0]); err == nil {
		t.Fatal("insert accepted without ingest")
	}
	if _, err := e.Delete(1); err == nil {
		t.Fatal("delete accepted without ingest")
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err == nil {
		t.Fatal("double enable accepted")
	}
}
