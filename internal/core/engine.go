package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dita/internal/cluster"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/rtree"
	"dita/internal/str"
	"dita/internal/traj"
	"dita/internal/trie"
	"dita/internal/wal"
)

// Options configures an Engine.
type Options struct {
	// NG is the global grid factor: trajectories are STR-grouped by first
	// point into NG buckets and each bucket by last point into NG
	// sub-buckets, giving up to NG² partitions (Section 4.2.1; Table 3
	// uses 32–256, scaled down here).
	NG int
	// Trie configures each partition's local index.
	Trie trie.Config
	// Measure is the similarity function; DTW when nil.
	Measure measure.Measure
	// CellD is the cell side length for the compression filter; <= 0
	// derives it from the data extent (1% of the larger dimension).
	CellD float64
	// Cluster is the execution substrate; a fresh 4-worker cluster is
	// created when nil.
	Cluster *cluster.Cluster
	// RandomPartition disables the first/last STR partitioning and
	// scatters trajectories round-robin — the "Random" ablation of
	// Appendix B (Figure 13). The index structures are still built.
	RandomPartition bool
	// Obs, when non-nil, receives engine metrics: query counters, latency
	// histograms, and the cumulative pruning funnel per query path. Nil
	// disables all recording including the per-query clock reads.
	Obs *obs.Registry
	// VerifyParallelism bounds the worker pool that verifies a partition's
	// candidate list concurrently: 0 (the default) uses every core
	// (runtime.GOMAXPROCS), 1 forces the sequential path, and any other
	// value caps the fan-out. Results and pruning funnels are identical
	// at every setting; only wall-clock changes.
	VerifyParallelism int
}

// DefaultOptions returns laptop-scale defaults: NG=8 (64 partitions),
// default trie config, DTW.
func DefaultOptions() Options {
	return Options{NG: 8, Trie: trie.DefaultConfig(), Measure: measure.DTW{}}
}

// Partition is one data partition: its trajectories, local trie index, and
// the first/last-point MBRs the global index stores.
type Partition struct {
	ID     int
	Worker int
	Trajs  []*traj.T
	Index  *trie.Trie
	MBRf   geom.MBR // MBR of members' first points
	MBRl   geom.MBR // MBR of members' last points
	meta   []trajMeta
	bytes  int

	// retired marks a partition whose contents were moved to newer
	// partitions by a split/merge (see rebalance.go). Retired partitions
	// stay in the slice — partition ids are stable (they key WAL and
	// snapshot filenames, location maps, and the dnet replica lists) —
	// but hold no data and are skipped by every query and routing path.
	retired bool

	// Streaming-ingest overlay (all nil/zero until EnableIngest; see
	// ingest.go): delta holds live inserts since the last merge, frozen
	// the rotated delta an in-flight merge is folding, tomb the ids whose
	// base/frozen copies are masked by deletes or upserts, frozenTomb the
	// pre-rotation masks the fold consumes (they mask base only),
	// baseIdx an id → Trajs index for partition-local upsert detection,
	// watermark the highest WAL sequence folded into Trajs, and wlog the
	// partition's write-ahead log.
	delta      *Delta
	frozen     *Delta
	tomb       map[int]bool
	frozenTomb map[int]bool
	baseIdx    map[int]int
	watermark  uint64
	wlog       *wal.Log

	// imu serializes this partition's WAL appends with their in-memory
	// application, so the fsync can run outside Engine.mu (queries and
	// other partitions' mutations proceed during the disk wait) while the
	// log's record order still equals the apply order. Lock order: imu
	// before Engine.mu, never the reverse.
	imu sync.Mutex
}

// Bytes returns the approximate wire size of the partition's trajectory
// data.
func (p *Partition) Bytes() int { return p.bytes }

// Retired reports whether the partition was emptied by a split/merge.
func (p *Partition) Retired() bool { return p.retired }

// Engine is a built DITA index over one dataset, ready to serve searches
// and act as a join side.
type Engine struct {
	opts    Options
	cl      *cluster.Cluster
	dataset *traj.Dataset
	parts   []*Partition
	rtF     *rtree.Tree // global index over partition MBRf
	rtL     *rtree.Tree // global index over partition MBRl
	cellD   float64
	met     *engineMetrics // nil when Options.Obs is nil
	cost    *CostTracker   // per-partition read-cost EWMAs (timed paths only)

	// mu serializes mutations (Insert/Delete/merge rotation) against
	// queries: every public query path holds the read side for its whole
	// run, so overlay state and partition MBRs are stable per query.
	// serial orders lock acquisition when a join spans two engines.
	mu     sync.RWMutex
	serial uint64
	ing    *ingestState // nil until EnableIngest

	// BuildTime is the wall-clock index construction time (Table 5).
	BuildTime time.Duration
}

// engineSerial hands out lock-ordering serials; see rlockPair.
var engineSerial atomic.Uint64

// rlockPair read-locks both engines of a two-engine operation in serial
// order (one lock when they are the same engine), returning the unlock.
// Consistent ordering prevents the classic AB/BA deadlock with a writer
// wedged between two readers.
func rlockPair(a, b *Engine) func() {
	if a == b {
		a.mu.RLock()
		return a.mu.RUnlock
	}
	if a.serial > b.serial {
		a, b = b, a
	}
	a.mu.RLock()
	b.mu.RLock()
	return func() {
		b.mu.RUnlock()
		a.mu.RUnlock()
	}
}

// visibleCount is the number of currently visible trajectories: the
// dataset size until ingest is enabled, the live location map after.
// Callers hold mu.
func (e *Engine) visibleCount() int {
	if e.ing == nil {
		return e.dataset.Len()
	}
	return len(e.ing.loc)
}

// NewEngine partitions and indexes the dataset (Algorithm 1). It is the
// CREATE INDEX ... USE TRIE operation.
func NewEngine(d *traj.Dataset, opts Options) (*Engine, error) {
	if d == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if opts.NG < 1 {
		opts.NG = 1
	}
	if opts.Measure == nil {
		opts.Measure = measure.DTW{}
	}
	if opts.Cluster == nil {
		opts.Cluster = cluster.New(cluster.DefaultConfig(4))
	}
	e := &Engine{opts: opts, cl: opts.Cluster, dataset: d, met: newEngineMetrics(opts.Obs),
		cost: NewCostTracker(), serial: engineSerial.Add(1)}
	start := time.Now()
	e.cellD = opts.CellD
	if e.cellD <= 0 {
		e.cellD = defaultCellD(d)
	}
	e.partition()
	e.buildGlobalIndex()
	e.buildLocalIndexes()
	e.BuildTime = time.Since(start)
	return e, nil
}

// defaultCellD picks a cell side length from the data extent: 1% of the
// larger dimension keeps cell lists short while preserving pruning power
// at the paper's τ scales.
func defaultCellD(d *traj.Dataset) float64 {
	ext := d.Stats().Extent
	if ext.IsEmpty() {
		return 0.01
	}
	w := ext.Max.X - ext.Min.X
	if h := ext.Max.Y - ext.Min.Y; h > w {
		w = h
	}
	if w <= 0 {
		return 0.01
	}
	return w / 100
}

// partition implements Section 4.2.1: STR by first point into NG buckets,
// then STR by last point into NG sub-buckets per bucket.
func (e *Engine) partition() {
	trajs := e.dataset.Trajs
	W := e.cl.Workers()
	if e.opts.RandomPartition {
		n := e.opts.NG * e.opts.NG
		if n > len(trajs) {
			n = len(trajs)
		}
		if n < 1 {
			n = 1
		}
		groups := make([][]*traj.T, n)
		for i, t := range trajs {
			groups[i%n] = append(groups[i%n], t)
		}
		for _, g := range groups {
			if len(g) == 0 {
				continue
			}
			e.addPartition(g, W)
		}
		return
	}
	firsts := make([]geom.Point, len(trajs))
	for i, t := range trajs {
		firsts[i] = t.First()
	}
	for _, bucket := range str.Tile(firsts, e.opts.NG) {
		lasts := make([]geom.Point, len(bucket))
		for j, i := range bucket {
			lasts[j] = trajs[i].Last()
		}
		for _, sub := range str.Tile(lasts, e.opts.NG) {
			group := make([]*traj.T, len(sub))
			for j, k := range sub {
				group[j] = trajs[bucket[k]]
			}
			e.addPartition(group, W)
		}
	}
}

func (e *Engine) addPartition(group []*traj.T, workers int) {
	p := &Partition{ID: len(e.parts), Trajs: group}
	p.Worker = p.ID % workers
	p.MBRf, p.MBRl = geom.EmptyMBR(), geom.EmptyMBR()
	for _, t := range group {
		p.MBRf = p.MBRf.Extend(t.First())
		p.MBRl = p.MBRl.Extend(t.Last())
		p.bytes += t.Bytes()
	}
	e.parts = append(e.parts, p)
}

// buildGlobalIndex builds the two R-trees over partition MBRs
// (Section 4.2.2). The global index is small (Table 5: ≤ 65 MB even at
// NG=128) and conceptually replicated to every worker; it lives on the
// driver here.
func (e *Engine) buildGlobalIndex() {
	ef := make([]rtree.Entry, 0, len(e.parts))
	el := make([]rtree.Entry, 0, len(e.parts))
	for _, p := range e.parts {
		if p.retired {
			continue
		}
		ef = append(ef, rtree.Entry{MBR: p.MBRf, ID: p.ID})
		el = append(el, rtree.Entry{MBR: p.MBRl, ID: p.ID})
	}
	e.rtF = rtree.New(ef)
	e.rtL = rtree.New(el)
}

// buildLocalIndexes builds each partition's trie and verification metadata
// in parallel on the owning workers.
func (e *Engine) buildLocalIndexes() {
	tasks := make([]cluster.Task, 0, len(e.parts))
	for _, p := range e.parts {
		p := p
		tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
			p.Index = trie.Build(p.Trajs, e.opts.Trie)
			p.meta = make([]trajMeta, len(p.Trajs))
			for i, t := range p.Trajs {
				p.meta[i] = newTrajMeta(t, e.cellD)
			}
		}})
	}
	e.cl.Run(tasks)
}

// Partitions returns the engine's partitions (read-only use).
func (e *Engine) Partitions() []*Partition { return e.parts }

// Cluster returns the execution substrate.
func (e *Engine) Cluster() *cluster.Cluster { return e.cl }

// Measure returns the engine's similarity function.
func (e *Engine) Measure() measure.Measure { return e.opts.Measure }

// Dataset returns the indexed dataset.
func (e *Engine) Dataset() *traj.Dataset { return e.dataset }

// CellD returns the cell side length used for verification metadata.
func (e *Engine) CellD() float64 { return e.cellD }

// VerifyParallelism returns the engine's resolved verification fan-out
// (Options.VerifyParallelism with 0 mapped to runtime.GOMAXPROCS).
func (e *Engine) VerifyParallelism() int { return ResolveParallelism(e.opts.VerifyParallelism) }

// IndexSizeBytes returns (globalBytes, localBytes) — Table 5's "Global
// Size" and "Local Size".
func (e *Engine) IndexSizeBytes() (global, local int) {
	global = e.rtF.SizeBytes() + e.rtL.SizeBytes()
	for _, p := range e.parts {
		if p.Index != nil {
			local += p.Index.SizeBytes()
		}
	}
	return global, local
}

// relevantPartitions implements the global pruning of Section 5.2,
// generalized to all supported measures:
//
//   - Endpoint-anchored, sum-accumulating (DTW): partitions with
//     MinDist(q1, MBRf) + MinDist(qn, MBRl) <= τ.
//   - Endpoint-anchored, max-accumulating (Fréchet): MinDist(q1, MBRf) <= τ
//     and MinDist(qn, MBRl) <= τ.
//   - Edit measures: a partition is pruned only when being far from both
//     endpoint MBRs costs more edits than τ allows.
//   - ERP: like DTW but each term may be satisfied by the gap point, and
//     any query point may align with the partition's endpoints.
func (e *Engine) relevantPartitions(q []geom.Point, tau float64) []int {
	m := e.opts.Measure
	if len(q) == 0 {
		return nil
	}
	var out []int
	if m.AlignsEndpoints() {
		q1, qn := q[0], q[len(q)-1]
		cf := e.rtF.WithinDist(q1, tau, nil)
		inCf := make(map[int]float64, len(cf))
		for _, en := range cf {
			inCf[en.ID] = en.MBR.MinDist(q1)
		}
		cl := e.rtL.WithinDist(qn, tau, nil)
		for _, en := range cl {
			df, ok := inCf[en.ID]
			if !ok {
				continue
			}
			dl := en.MBR.MinDist(qn)
			if m.Accumulation() == measure.AccumMax {
				// Both within τ independently (already guaranteed).
				out = append(out, en.ID)
			} else if df+dl <= tau {
				out = append(out, en.ID)
			}
		}
		return out
	}
	// Non-anchored measures: endpoints of the data trajectories may match
	// any query point (or the gap point, or be edited away).
	gap, hasGap := m.GapPoint()
	eps := m.Epsilon()
	for _, p := range e.parts {
		if p.retired {
			// An empty MBR's MinDist is +Inf, which the edit-measure
			// branch would still count as a finite 2-edit cost — skip
			// explicitly.
			continue
		}
		df := minDistTrajMBR(q, p.MBRf)
		dl := minDistTrajMBR(q, p.MBRl)
		if hasGap {
			if d := p.MBRf.MinDist(gap); d < df {
				df = d
			}
			if d := p.MBRl.MinDist(gap); d < dl {
				dl = d
			}
		}
		switch m.Accumulation() {
		case measure.AccumEdit:
			cost := 0.0
			if df > eps {
				cost++
			}
			if dl > eps {
				cost++
			}
			if cost <= tau {
				out = append(out, p.ID)
			}
		default: // AccumSum (ERP)
			if df+dl <= tau {
				out = append(out, p.ID)
			}
		}
	}
	return out
}

func minDistTrajMBR(q []geom.Point, m geom.MBR) float64 {
	best := m.MinDist(q[0])
	for _, p := range q[1:] {
		if d := m.MinDist(p); d < best {
			best = d
			if best == 0 {
				break
			}
		}
	}
	return best
}
