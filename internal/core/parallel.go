package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dita/internal/traj"
)

// ResolveParallelism maps the VerifyParallelism knob to a worker count:
// zero or negative means "use every core" (runtime.GOMAXPROCS).
func ResolveParallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// minParallelCands is the candidate-list size below which VerifyAll stays
// sequential: spawning goroutines for a handful of threshold-distance
// calls costs more than the calls themselves.
const minParallelCands = 8

// parallelFor runs body(0..n-1) on up to par goroutines, claiming indices
// from a shared atomic counter. The context is checked before each item,
// matching the sequential loops' one-verification-step abort granularity.
// A panic in any body is captured, the remaining items are abandoned, and
// the first panic value is re-raised verbatim on the calling goroutine —
// so callers' existing recover() handlers see exactly what a sequential
// loop would have shown them.
func parallelFor(ctx context.Context, n, par int, body func(i int)) error {
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			body(i)
		}
		return nil
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		panicked bool
		panicVal any
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if !panicked {
						panicked, panicVal = true, r
					}
					mu.Unlock()
					stop.Store(true)
				}
			}()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return firstErr
}

// VerifyHit is one accepted candidate from VerifyAll: Index is the
// candidate's position in the trajs/meta slices and Distance the exact
// distance the cascade computed.
type VerifyHit struct {
	Index    int
	Distance float64
}

// VerifyAll runs the verification cascade over a candidate list, fanning
// out across up to parallelism goroutines (0 = GOMAXPROCS). Results are
// written into per-candidate slots and compacted in cands order, so the
// returned hits are byte-identical to a sequential loop's regardless of
// scheduling; the Verifier's atomic stage counters make the funnel equally
// order-independent. Short lists run sequentially. On context cancellation
// or a re-raised worker panic no hits are returned.
func (v *Verifier) VerifyAll(ctx context.Context, trajs []*traj.T, meta []VerifyMeta, cands []int, parallelism int) ([]VerifyHit, error) {
	par := ResolveParallelism(parallelism)
	if par <= 1 || len(cands) < minParallelCands {
		var out []VerifyHit
		for _, i := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if d, ok := v.Verify(trajs[i], meta[i]); ok {
				out = append(out, VerifyHit{Index: i, Distance: d})
			}
		}
		return out, nil
	}
	dists := make([]float64, len(cands))
	ok := make([]bool, len(cands))
	err := parallelFor(ctx, len(cands), par, func(k int) {
		i := cands[k]
		if d, hit := v.Verify(trajs[i], meta[i]); hit {
			dists[k], ok[k] = d, true
		}
	})
	if err != nil {
		return nil, err
	}
	var out []VerifyHit
	for k, hit := range ok {
		if hit {
			out = append(out, VerifyHit{Index: cands[k], Distance: dists[k]})
		}
	}
	return out, nil
}

// JoinPair is one (shipped trajectory, local candidate) verification unit
// of a join edge: Shipped indexes the edge's verifier list, Local the
// destination partition's trajectory slice.
type JoinPair struct {
	Shipped, Local int
}

// JoinHit is one accepted join pair with its exact distance.
type JoinHit struct {
	Pair     JoinPair
	Distance float64
}

// VerifyJoinPairs verifies a join edge's flattened candidate pairs with
// the same slot-compaction discipline as VerifyAll: hits come back in
// pairs order whatever the goroutine schedule, and each shipped
// trajectory's verifier accumulates its stage counters atomically.
func VerifyJoinPairs(ctx context.Context, pairs []JoinPair, vs []*Verifier, trajs []*traj.T, meta []VerifyMeta, parallelism int) ([]JoinHit, error) {
	par := ResolveParallelism(parallelism)
	if par <= 1 || len(pairs) < minParallelCands {
		var out []JoinHit
		for _, pr := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if d, ok := vs[pr.Shipped].Verify(trajs[pr.Local], meta[pr.Local]); ok {
				out = append(out, JoinHit{Pair: pr, Distance: d})
			}
		}
		return out, nil
	}
	dists := make([]float64, len(pairs))
	ok := make([]bool, len(pairs))
	err := parallelFor(ctx, len(pairs), par, func(k int) {
		pr := pairs[k]
		if d, hit := vs[pr.Shipped].Verify(trajs[pr.Local], meta[pr.Local]); hit {
			dists[k], ok[k] = d, true
		}
	})
	if err != nil {
		return nil, err
	}
	var out []JoinHit
	for k, hit := range ok {
		if hit {
			out = append(out, JoinHit{Pair: pairs[k], Distance: dists[k]})
		}
	}
	return out, nil
}
