package core

import (
	"reflect"
	"testing"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/snap"
)

// TestColdStartMatchesFreshBuild is the core cold-start contract: an engine
// reassembled from snapshots answers searches, kNN, and joins identically
// to the engine that exported them.
func TestColdStartMatchesFreshBuild(t *testing.T) {
	d := smallDataset(400, 21)
	opts := smallOpts(4)
	opts.Measure = measure.LCSS{Eps: 0.002, Delta: 5}
	fresh, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Export through the full byte format — this is what disk round-trips.
	var snaps []*snap.Snapshot
	for _, p := range fresh.Partitions() {
		s, err := snap.Decode(snap.Encode(fresh.ExportSnapshot("trips", p)))
		if err != nil {
			t.Fatalf("partition %d: %v", p.ID, err)
		}
		snaps = append(snaps, s)
	}

	cold, err := NewEngineFromSnapshots(snaps, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if cold.BuildTime <= 0 {
		t.Error("cold start BuildTime not recorded")
	}
	if cold.Measure().Name() != "LCSS" || cold.CellD() != fresh.CellD() {
		t.Fatalf("cold engine config drifted: measure=%s cellD=%v (want LCSS, %v)",
			cold.Measure().Name(), cold.CellD(), fresh.CellD())
	}
	if l, ok := cold.Measure().(measure.LCSS); !ok || l.Delta != 5 || l.Eps != 0.002 {
		t.Fatalf("LCSS parameters lost: %+v", cold.Measure())
	}

	queries := gen.Queries(d, 10, 22)
	for _, q := range queries {
		want := fresh.Search(q, 5, nil)
		got := cold.Search(q, 5, nil)
		if !sameResults(want, got) {
			t.Fatalf("search differs for query %d: fresh %d results, cold %d", q.ID, len(want), len(got))
		}
		wantK := fresh.SearchKNN(q, 5)
		gotK := cold.SearchKNN(q, 5)
		if !reflect.DeepEqual(idsOf(wantK), idsOf(gotK)) {
			t.Fatalf("kNN differs for query %d: fresh %v, cold %v", q.ID, idsOf(wantK), idsOf(gotK))
		}
	}
}

func idsOf(rs []SearchResult) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = r.Traj.ID
	}
	return out
}

func sameResults(a, b []SearchResult) bool {
	if len(a) != len(b) {
		return false
	}
	am := map[int]float64{}
	for _, r := range a {
		am[r.Traj.ID] = r.Distance
	}
	for _, r := range b {
		if d, ok := am[r.Traj.ID]; !ok || d != r.Distance {
			return false
		}
	}
	return true
}

func TestColdStartValidation(t *testing.T) {
	d := smallDataset(150, 23)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	var snaps []*snap.Snapshot
	for _, p := range e.Partitions() {
		snaps = append(snaps, e.ExportSnapshot("trips", p))
	}

	if _, err := NewEngineFromSnapshots(nil, smallOpts(2)); err == nil {
		t.Error("empty snapshot set accepted")
	}
	if _, err := NewEngineFromSnapshots(snaps[1:], smallOpts(2)); err == nil {
		t.Error("incomplete snapshot set accepted")
	}
	mixed := append([]*snap.Snapshot(nil), snaps...)
	clone := *mixed[1]
	clone.Opts.CellD *= 2
	mixed[1] = &clone
	if _, err := NewEngineFromSnapshots(mixed, smallOpts(2)); err == nil {
		t.Error("mixed build options accepted")
	}
	other := *snaps[0]
	other.Dataset = "other"
	if _, err := NewEngineFromSnapshots(append([]*snap.Snapshot{&other}, snaps[1:]...), smallOpts(2)); err == nil {
		t.Error("mixed datasets accepted")
	}
}

func TestMeasureParamsRoundTrip(t *testing.T) {
	for _, m := range []measure.Measure{
		measure.DTW{},
		measure.Frechet{},
		measure.EDR{Eps: 0.01},
		measure.LCSS{Eps: 0.02, Delta: 7},
		measure.ERP{},
		measure.Hausdorff{},
	} {
		name, eps, delta := MeasureParams(m)
		got, err := measure.ByName(name, eps, delta)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("measure %s did not round-trip: got %+v", m.Name(), got)
		}
	}
}
