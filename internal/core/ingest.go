package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"dita/internal/geom"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/trie"
	"dita/internal/wal"
)

// This file implements streaming ingest: a built engine becomes mutable
// by layering a per-partition overlay (delta + tombstones) over the
// sealed base, with every mutation appended to a partition-local
// write-ahead log before it touches memory. A partition's durable state
// is always the pair (newest sealed snapshot, WAL suffix past the
// snapshot's watermark); a crash at any point recovers by replaying that
// suffix onto the snapshot.
//
// WAL records are partition-local operations — "upsert this trajectory
// into this partition", "delete this id from this partition" — never
// global ones. That makes replay of one partition independent of every
// other partition's log and of merge timing: each log is a
// self-contained suffix over its own base, so per-partition snapshots
// may fold (and truncate their logs) on independent schedules without
// ever losing a cross-partition ordering dependency. The engine's
// routing decisions (which partition an insert lands in) are recorded by
// *where* the record was appended, not re-derived at replay.

// ErrDeltaBacklog is returned by Insert when the target partition's
// unmerged overlay (delta plus any in-flight frozen delta) has reached
// IngestConfig.MaxDeltaBytes. The network-mode worker maps it to its
// overload signal so backpressure propagates through the admit layer.
var ErrDeltaBacklog = errors.New("core: ingest: partition delta backlog at bound")

// Delta is the mutable overlay of one partition: trajectories inserted
// since the partition's base was last merged, with verification metadata
// precomputed exactly like base members so the filter cascade treats
// overlay members identically. Exported for the network-mode worker,
// which manages its own partition storage but shares the engine's
// overlay semantics. Not safe for concurrent use; callers serialize
// access (the engine's mutation lock, the worker's partition lock).
type Delta struct {
	Live  []*traj.T
	Meta  []VerifyMeta
	Bytes int
}

// Insert appends a trajectory to the overlay.
func (d *Delta) Insert(t *traj.T, cellD float64) {
	d.Live = append(d.Live, t)
	d.Meta = append(d.Meta, NewVerifyMeta(t, cellD))
	d.Bytes += t.Bytes()
}

// Remove deletes the overlay's entry for id, reporting whether one
// existed. IDs are unique within an overlay (an upsert removes the old
// entry before adding the new one).
func (d *Delta) Remove(id int) bool {
	for i, t := range d.Live {
		if t.ID == id {
			d.Bytes -= t.Bytes()
			d.Live = append(d.Live[:i], d.Live[i+1:]...)
			d.Meta = append(d.Meta[:i], d.Meta[i+1:]...)
			return true
		}
	}
	return false
}

// Has reports whether the overlay holds an entry for id.
func (d *Delta) Has(id int) bool {
	for _, t := range d.Live {
		if t.ID == id {
			return true
		}
	}
	return false
}

// IngestConfig wires mutation support into a built engine.
type IngestConfig struct {
	// WAL, when non-nil, makes mutations durable: every Insert/Delete
	// appends a checksummed record to the partition's log (fsync'd)
	// before touching the in-memory overlay. Nil keeps deltas
	// memory-only — useful for tests and benchmarks, crash-unsafe.
	WAL *wal.Store
	// Snap, when non-nil, lets merges seal the rebuilt partition as a
	// snapshot; only after a successful seal is the partition's WAL
	// truncated through the snapshot's watermark (a WAL may shrink only
	// once its records are durable elsewhere). With WAL set but Snap
	// nil, logs are kept intact across merges and grow without bound.
	Snap *snap.Store
	// MergeBytes is the delta size (bytes of live trajectories) above
	// which a partition is merge-eligible; <= 0 defaults to 1 MiB.
	MergeBytes int
	// MaxDeltaBytes, when > 0, bounds a partition's unmerged backlog
	// (delta + frozen): Insert fails with ErrDeltaBacklog at the bound.
	MaxDeltaBytes int
	// AutoMerge runs MergePartition synchronously inside Insert whenever
	// the threshold is crossed. The network-mode worker leaves this off
	// and schedules merges on a background goroutine instead.
	AutoMerge bool
	// Replay, on an engine cold-started from snapshots, re-applies each
	// partition's WAL suffix past the snapshot's watermark. Leave false
	// on a freshly built engine: a fresh base is a new epoch, so any
	// surviving logs are reset instead — a WAL must never outlive the
	// base it extends.
	Replay bool
}

// ReplaySummary reports what EnableIngest recovered from the logs.
type ReplaySummary struct {
	// Records counts WAL records re-applied past the watermarks.
	Records int
	// TruncatedBytes counts invalid (torn or corrupted) tail bytes
	// dropped across all logs.
	TruncatedBytes int64
	// Duration is the wall-clock replay time (opening, scanning and
	// re-applying all logs).
	Duration time.Duration
	// MaxSeq is the highest sequence number re-applied (0 when none).
	MaxSeq uint64
	// DupsMasked counts trajectories that appeared visible in two
	// partitions' durable states at once — possible only under silent
	// media corruption that severed a cross-partition move — and were
	// deterministically masked down to one copy.
	DupsMasked int
}

// mergeFoldHook, when non-nil, runs during MergePartition's off-lock fold
// window, after rotation and before the rebuilt base is installed. It
// exists so tests can deterministically exercise the frozen-overlay state
// (queries and further mutations racing a merge). Never set outside
// tests.
var mergeFoldHook func(e *Engine, pid int)

// locEntry locates a trajectory's current visible version.
type locEntry struct {
	pid int
	t   *traj.T
}

// ingestState is the engine-wide mutable-ingest bookkeeping, nil until
// EnableIngest. Guarded by Engine.mu.
type ingestState struct {
	cfg IngestConfig
	loc map[int]locEntry // trajectory id -> current version
	// seq is the last assigned WAL sequence number. A failed append burns
	// its number (a retry gets a fresh, higher one), so per-log sequences
	// may gap but never regress or reorder.
	seq uint64
}

// IngestEnabled reports whether the engine accepts mutations.
func (e *Engine) IngestEnabled() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ing != nil
}

// DeltaBytes returns the total unmerged overlay size across partitions.
func (e *Engine) DeltaBytes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	total := 0
	for _, p := range e.parts {
		total += p.overlayBytes()
	}
	return total
}

// LastSeq returns the last assigned WAL sequence number.
func (e *Engine) LastSeq() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ing == nil {
		return 0
	}
	return e.ing.seq
}

// EnableIngest makes a built engine mutable: it indexes current members
// for upsert/delete routing, opens the per-partition write-ahead logs
// (replaying any surviving suffix past each snapshot's watermark when
// cfg.Replay is set), and wires the merge policy. It returns what the
// logs recovered; on a fresh engine without WAL the summary is all
// zeros.
func (e *Engine) EnableIngest(cfg IngestConfig) (*ReplaySummary, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ing != nil {
		return nil, fmt.Errorf("core: ingest already enabled")
	}
	if cfg.MergeBytes <= 0 {
		cfg.MergeBytes = 1 << 20
	}
	st := &ingestState{cfg: cfg, loc: make(map[int]locEntry, e.dataset.Len())}
	sum := &ReplaySummary{}
	for _, p := range e.parts {
		p.baseIdx = make(map[int]int, len(p.Trajs))
		for i, t := range p.Trajs {
			p.baseIdx[t.ID] = i
		}
		if p.tomb == nil {
			p.tomb = make(map[int]bool)
		}
		if p.delta == nil {
			p.delta = &Delta{}
		}
		// A durable cross-partition move severed by media corruption can
		// leave the same id visible in two bases; keep the first
		// (lowest-pid) copy and mask the rest deterministically.
		for _, t := range p.Trajs {
			if _, dup := st.loc[t.ID]; dup {
				p.tomb[t.ID] = true
				sum.DupsMasked++
				continue
			}
			st.loc[t.ID] = locEntry{pid: p.ID, t: t}
		}
	}
	if cfg.WAL != nil {
		start := time.Now()
		if err := e.openLogs(st, cfg, sum); err != nil {
			for _, p := range e.parts {
				if p.wlog != nil {
					p.wlog.Close()
					p.wlog = nil
				}
			}
			return nil, err
		}
		sum.Duration = time.Since(start)
	}
	e.ing = st
	if e.met != nil {
		e.met.replayObserve(sum)
		e.met.setDeltaBytes(e.overlayBytesLocked())
	}
	return sum, nil
}

// openLogs opens every partition's log and, when replaying, re-applies
// the records past each snapshot's watermark. Replay is partition-local
// (records are partition-local operations), so partitions recover
// independently in id order.
func (e *Engine) openLogs(st *ingestState, cfg IngestConfig, sum *ReplaySummary) error {
	name := e.dataset.Name
	// Logs for partitions this engine does not have belong to a previous
	// epoch (a different partitioning of the same dataset): delete them.
	if ents, err := cfg.WAL.Scan(); err == nil {
		for _, en := range ents {
			if en.Dataset == name && en.Partition >= len(e.parts) {
				_ = cfg.WAL.Remove(en.Dataset, en.Partition)
			}
		}
	}
	for _, p := range e.parts {
		if !cfg.Replay {
			if err := cfg.WAL.Remove(name, p.ID); err != nil {
				return fmt.Errorf("core: ingest: reset partition %d wal: %w", p.ID, err)
			}
		}
		l, rep, err := cfg.WAL.Open(name, p.ID)
		if err != nil {
			return fmt.Errorf("core: ingest: partition %d wal: %w", p.ID, err)
		}
		p.wlog = l
		sum.TruncatedBytes += rep.TruncatedBytes
		if n := l.LastSeq(); n > st.seq {
			st.seq = n
		}
		// A merge truncates the log through its snapshot's watermark, so
		// after a clean merge the log is empty and LastSeq alone would
		// restart the counter below numbers already burned. Fresh seqs must
		// exceed every watermark, or the next replay's watermark skip would
		// silently drop acked writes.
		if p.watermark > st.seq {
			st.seq = p.watermark
		}
		if !cfg.Replay {
			continue
		}
		for _, r := range rep.Records {
			if r.Seq <= p.watermark {
				continue // already folded into the snapshot base
			}
			switch r.Op {
			case wal.OpInsert:
				e.applyInsertLocal(st, p, &traj.T{ID: r.ID, Points: r.Points})
			case wal.OpDelete:
				e.applyDeleteLocal(st, p, r.ID)
			}
			sum.Records++
			if r.Seq > sum.MaxSeq {
				sum.MaxSeq = r.Seq
			}
		}
	}
	if sum.Records > 0 {
		e.buildGlobalIndex()
	}
	return nil
}

// Insert adds (or, for an existing id, replaces) a trajectory. The
// record is durably appended to the owning partition's WAL before the
// in-memory overlay changes; an append error leaves the visible state
// exactly as it was (see unreserveSeq for the sequence number). An
// upsert stays in the partition that already holds the id
// — the partition's endpoint MBRs are extended to keep global pruning
// sound — so the id's whole history lives in one log. New ids are routed
// to the partition whose endpoint MBRs are nearest the trajectory's
// endpoints.
func (e *Engine) Insert(t *traj.T) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("core: insert: %w", err)
	}
	st, p, err := e.lockMutationTarget("insert", func(st *ingestState) *Partition {
		if le, ok := st.loc[t.ID]; ok {
			return e.parts[le.pid]
		}
		return e.routePartition(t)
	})
	if err != nil {
		return err
	}
	// Holding p.imu and e.mu.
	if st.cfg.MaxDeltaBytes > 0 && p.overlayBytes() >= st.cfg.MaxDeltaBytes {
		e.mu.Unlock()
		p.imu.Unlock()
		return fmt.Errorf("core: insert: partition %d: %w", p.ID, ErrDeltaBacklog)
	}
	seq := st.seq + 1
	st.seq = seq
	wlog := p.wlog
	e.mu.Unlock()
	// The fsync runs off the engine lock: queries and mutations on other
	// partitions proceed during the disk wait; p.imu keeps this
	// partition's append order equal to its seq order.
	if wlog != nil {
		if err := wlog.Append(wal.Record{Seq: seq, Op: wal.OpInsert, ID: t.ID, Points: t.Points}); err != nil {
			e.unreserveSeq(st, seq)
			p.imu.Unlock()
			return fmt.Errorf("core: insert: wal: %w", err)
		}
	}
	e.mu.Lock()
	e.applyInsertLocal(st, p, t)
	if nf, nl := p.MBRf.Extend(t.First()), p.MBRl.Extend(t.Last()); nf != p.MBRf || nl != p.MBRl {
		p.MBRf, p.MBRl = nf, nl
		e.buildGlobalIndex()
	}
	if e.met != nil {
		e.met.inserts.Inc()
		e.met.setDeltaBytes(e.overlayBytesLocked())
	}
	mergeNow := st.cfg.AutoMerge && p.frozen == nil && p.delta.Bytes >= st.cfg.MergeBytes
	pid := p.ID
	e.mu.Unlock()
	p.imu.Unlock()
	if mergeNow {
		if _, err := e.MergePartition(pid); err != nil {
			return fmt.Errorf("core: insert: merge partition %d: %w", pid, err)
		}
	}
	return nil
}

// Delete removes a trajectory by id, reporting whether it existed. Like
// Insert, the WAL record is durable before memory changes; deleting an
// unknown id is a no-op and appends nothing.
func (e *Engine) Delete(id int) (bool, error) {
	var missing bool
	st, p, err := e.lockMutationTarget("delete", func(st *ingestState) *Partition {
		le, ok := st.loc[id]
		if !ok {
			missing = true
			return nil
		}
		return e.parts[le.pid]
	})
	if err != nil {
		return false, err
	}
	if missing {
		return false, nil
	}
	seq := st.seq + 1
	st.seq = seq
	wlog := p.wlog
	e.mu.Unlock()
	if wlog != nil {
		if err := wlog.Append(wal.Record{Seq: seq, Op: wal.OpDelete, ID: id}); err != nil {
			e.unreserveSeq(st, seq)
			p.imu.Unlock()
			return false, fmt.Errorf("core: delete: wal: %w", err)
		}
	}
	e.mu.Lock()
	e.applyDeleteLocal(st, p, id)
	if e.met != nil {
		e.met.deletes.Inc()
		e.met.setDeltaBytes(e.overlayBytesLocked())
	}
	e.mu.Unlock()
	p.imu.Unlock()
	return true, nil
}

// unreserveSeq returns a reserved sequence number after a failed append.
// When nothing was reserved past it the counter rolls back (a sequential
// caller observes no state change at all); otherwise the number is
// burned — gaps in a log are fine, regressions and reorders are not.
// Caller still holds the partition's imu, so the number cannot race its
// own partition's next append.
func (e *Engine) unreserveSeq(st *ingestState, seq uint64) {
	e.mu.Lock()
	if st.seq == seq {
		st.seq = seq - 1
	}
	e.mu.Unlock()
}

// lockMutationTarget resolves the partition a mutation lands in and takes
// the ingest locks in order (the partition's imu, then e.mu): route under
// the read lock, lock the partition, then re-check the route under the
// write lock — a concurrent mutation may have moved the id while we
// waited on imu, and appending to the wrong partition's log would fork
// the id's history across logs. route returns nil to abort (id unknown
// to Delete); the locks are then released and (nil, nil, nil) returned.
// On success the caller holds p.imu and e.mu and must release both.
func (e *Engine) lockMutationTarget(op string, route func(*ingestState) *Partition) (*ingestState, *Partition, error) {
	for {
		e.mu.RLock()
		st := e.ing
		if st == nil {
			e.mu.RUnlock()
			return nil, nil, fmt.Errorf("core: %s: ingest not enabled", op)
		}
		p := route(st)
		e.mu.RUnlock()
		if p == nil {
			return nil, nil, nil
		}
		p.imu.Lock()
		e.mu.Lock()
		if again := route(st); again == p {
			return st, p, nil
		}
		e.mu.Unlock()
		p.imu.Unlock()
	}
}

// routePartition picks the partition for a brand-new trajectory: the one
// whose endpoint MBRs are jointly nearest the trajectory's endpoints
// (ties to the lower id). This is the ingest-time analogue of the STR
// placement the base partitioning computed in bulk.
func (e *Engine) routePartition(t *traj.T) *Partition {
	var best *Partition
	bestD := math.Inf(1)
	for _, p := range e.parts {
		if p.retired {
			continue
		}
		if best == nil {
			best = p
		}
		d := p.MBRf.MinDist(t.First()) + p.MBRl.MinDist(t.Last())
		if d < bestD {
			best, bestD = p, d
		}
	}
	return best
}

// applyInsertLocal applies an upsert to one partition's overlay: the
// partition's old visible copy of the id (delta, frozen or base) is
// removed or masked, the new version joins the delta, and the location
// map is updated. Used both by live Insert and by WAL replay — the two
// must stay byte-for-byte identical for recovery to be exact.
func (e *Engine) applyInsertLocal(st *ingestState, p *Partition, t *traj.T) {
	if !p.delta.Remove(t.ID) {
		if p.frozen != nil && p.frozen.Has(t.ID) && !p.tomb[t.ID] {
			p.tomb[t.ID] = true
		} else if _, inBase := p.baseIdx[t.ID]; inBase && !p.tomb[t.ID] && !p.frozenTomb[t.ID] {
			p.tomb[t.ID] = true
		}
	}
	p.delta.Insert(t, e.cellD)
	st.loc[t.ID] = locEntry{pid: p.ID, t: t}
}

// applyDeleteLocal applies a delete to one partition's overlay. The
// location map entry is cleared only when it points at this partition:
// during replay another partition may already hold a newer version.
func (e *Engine) applyDeleteLocal(st *ingestState, p *Partition, id int) bool {
	switch {
	case p.delta.Remove(id):
	case p.frozen != nil && p.frozen.Has(id) && !p.tomb[id]:
		p.tomb[id] = true
	default:
		_, inBase := p.baseIdx[id]
		if !inBase || p.tomb[id] || p.frozenTomb[id] {
			return false
		}
		p.tomb[id] = true
	}
	if le, ok := st.loc[id]; ok && le.pid == p.ID {
		delete(st.loc, id)
	}
	return true
}

// overlayBytes is the partition's unmerged backlog: live delta plus any
// frozen delta still being folded.
func (p *Partition) overlayBytes() int {
	n := 0
	if p.delta != nil {
		n += p.delta.Bytes
	}
	if p.frozen != nil {
		n += p.frozen.Bytes
	}
	return n
}

func (e *Engine) overlayBytesLocked() int64 {
	total := int64(0)
	for _, p := range e.parts {
		total += int64(p.overlayBytes())
	}
	return total
}

// maskedBase reports whether the base member with this id is hidden by
// the overlay (deleted, or superseded by a newer delta/frozen version).
func (p *Partition) maskedBase(id int) bool {
	return p.tomb[id] || p.frozenTomb[id]
}

// hasOverlay reports whether the partition has any overlay state a query
// must consult. False is the common fast path: a never-mutated partition
// pays nothing.
func (p *Partition) hasOverlay() bool {
	if p.delta != nil && len(p.delta.Live) > 0 {
		return true
	}
	if p.frozen != nil && len(p.frozen.Live) > 0 {
		return true
	}
	return len(p.tomb) > 0 || len(p.frozenTomb) > 0
}

// visibleTrajs returns the partition's currently visible members: base
// minus masks, plus the frozen and delta overlays. The base slice is
// returned as-is when there is no overlay (the common case) — callers
// must not mutate the result.
func (p *Partition) visibleTrajs() []*traj.T {
	if !p.hasOverlay() {
		return p.Trajs
	}
	out := make([]*traj.T, 0, len(p.Trajs)+len(p.delta.Live))
	for _, t := range p.Trajs {
		if !p.maskedBase(t.ID) {
			out = append(out, t)
		}
	}
	if p.frozen != nil {
		for _, t := range p.frozen.Live {
			if !p.tomb[t.ID] {
				out = append(out, t)
			}
		}
	}
	out = append(out, p.delta.Live...)
	return out
}

// MergePartition folds a partition's overlay into a fresh sealed base:
// the delta is rotated into a frozen snapshot of itself, the base trie
// is rebuilt over (base − pre-rotation masks) ∪ frozen off-lock while
// queries and mutations proceed against the overlay, and the result is
// installed with exact (shrunk) endpoint MBRs. When the engine has a
// snapshot store the new base is sealed (temp → fsync → rename) with the
// rotation watermark in its meta, and only after a successful seal is
// the partition's WAL truncated through that watermark. It returns false
// when there was nothing to do or a merge is already in flight.
//
// Crash safety: every step before the seal leaves the old (snapshot,
// WAL) pair authoritative; a crash between seal and truncation replays a
// suffix the new snapshot already contains, which the watermark skip
// makes idempotent.
func (e *Engine) MergePartition(pid int) (bool, error) {
	e.mu.RLock()
	st := e.ing
	if st == nil {
		e.mu.RUnlock()
		return false, fmt.Errorf("core: merge: ingest not enabled")
	}
	if pid < 0 || pid >= len(e.parts) {
		e.mu.RUnlock()
		return false, fmt.Errorf("core: merge: no partition %d", pid)
	}
	p := e.parts[pid]
	e.mu.RUnlock()
	// Rotation holds the partition's ingest lock (imu before e.mu, the
	// mutation order) so no append is in flight: every record in the log
	// is applied, and every applied record is in the log.
	p.imu.Lock()
	e.mu.Lock()
	if p.frozen != nil {
		e.mu.Unlock()
		p.imu.Unlock()
		return false, nil // merge already in flight
	}
	if len(p.delta.Live) == 0 && len(p.tomb) == 0 {
		e.mu.Unlock()
		p.imu.Unlock()
		return false, nil
	}
	// Rotation: the live delta freezes, mutations start a new delta, and
	// the current masks become the fold set. A watermark taken from the
	// partition's log (quiesced by imu) marks exactly what the fold will
	// contain.
	p.frozen, p.delta = p.delta, &Delta{}
	p.frozenTomb, p.tomb = p.tomb, make(map[int]bool)
	watermark := p.watermark
	if p.wlog != nil {
		if n := p.wlog.LastSeq(); n > watermark {
			watermark = n
		}
	} else if st.seq > watermark {
		watermark = st.seq
	}
	base, frozen, fold := p.Trajs, p.frozen, p.frozenTomb
	e.mu.Unlock()
	p.imu.Unlock()

	if mergeFoldHook != nil {
		mergeFoldHook(e, pid)
	}

	// Off-lock fold and rebuild. base is immutable; frozen.Live and fold
	// are never mutated after rotation (post-rotation deletes/upserts
	// only touch p.tomb and the new delta).
	merged := make([]*traj.T, 0, len(base)+len(frozen.Live))
	for _, t := range base {
		if !fold[t.ID] {
			merged = append(merged, t)
		}
	}
	merged = append(merged, frozen.Live...)
	idx := trie.Build(merged, e.opts.Trie)
	meta := make([]trajMeta, len(merged))
	for i, t := range merged {
		meta[i] = newTrajMeta(t, e.cellD)
	}

	e.mu.Lock()
	p.Trajs, p.Index, p.meta = merged, idx, meta
	p.baseIdx = make(map[int]int, len(merged))
	p.bytes = 0
	for i, t := range merged {
		p.baseIdx[t.ID] = i
		p.bytes += t.Bytes()
	}
	p.frozen, p.frozenTomb = nil, nil
	p.watermark = watermark
	// Exact MBR recompute (deletes may shrink them), re-extended by the
	// post-rotation delta, then the global R-trees pick up the change.
	p.MBRf, p.MBRl = geom.EmptyMBR(), geom.EmptyMBR()
	for _, t := range merged {
		p.MBRf = p.MBRf.Extend(t.First())
		p.MBRl = p.MBRl.Extend(t.Last())
	}
	for _, t := range p.delta.Live {
		p.MBRf = p.MBRf.Extend(t.First())
		p.MBRl = p.MBRl.Extend(t.Last())
	}
	e.buildGlobalIndex()
	var seal *snap.Snapshot
	if st.cfg.Snap != nil {
		seal = e.ExportSnapshot(e.dataset.Name, p)
		seal.Watermark = watermark
	}
	if e.met != nil {
		e.met.merges.Inc()
		e.met.setDeltaBytes(e.overlayBytesLocked())
	}
	wlog := p.wlog
	e.mu.Unlock()

	if seal != nil {
		if _, err := st.cfg.Snap.Save(seal); err != nil {
			// The merge itself stands; the old snapshot plus the intact
			// WAL still reconstruct this state, so the log must not be
			// truncated.
			return true, fmt.Errorf("core: merge: seal partition %d: %w", pid, err)
		}
		if wlog != nil {
			if err := wlog.TruncateThrough(watermark); err != nil {
				return true, fmt.Errorf("core: merge: truncate partition %d wal: %w", pid, err)
			}
		}
	}
	return true, nil
}

// MergeAll merges every partition with outstanding overlay state,
// stopping at the first error.
func (e *Engine) MergeAll() error {
	for pid, p := range e.parts {
		if p.retired {
			continue
		}
		if _, err := e.MergePartition(pid); err != nil {
			return err
		}
	}
	return nil
}

// CloseIngest closes the partition logs (fsync'd appends mean there is
// nothing to flush). The engine remains queryable; further mutations
// fail at the append.
func (e *Engine) CloseIngest() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	for _, p := range e.parts {
		if p.wlog != nil {
			if err := p.wlog.Close(); err != nil && first == nil {
				first = err
			}
			p.wlog = nil
		}
	}
	return first
}
