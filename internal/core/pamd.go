// Package core implements the DITA engine: first/last-point STR
// partitioning, the two-level (global R-tree + local trie) index, the
// filter–verification search pipeline (Algorithm 2), and the cost-based
// distributed similarity join (Algorithm 3) with greedy bi-graph
// orientation and division-based load balancing.
package core

import (
	"math"

	"dita/internal/geom"
	"dita/internal/pivot"
)

// PAMD computes the pivot accumulated minimum distance of Definition 4.2:
//
//	PAMD(T,Q) = dist(t1,q1) + dist(tm,qn) + Σ_{p∈T_P} min_j dist(p,qj)
//
// given the pivot points tp of T. By Lemma 4.3, PAMD(T,Q) <= DTW(T,Q), so
// PAMD > τ proves T and Q dissimilar at O(nK) cost instead of O(mn).
func PAMD(t, q, tp []geom.Point) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	sum := t[0].Dist(q[0]) + t[m-1].Dist(q[n-1])
	for _, p := range tp {
		sum += minDistToPoints(p, q)
	}
	return sum
}

// PAMDK computes PAMD selecting k pivots with the given strategy.
func PAMDK(t, q []geom.Point, k int, s pivot.Strategy) float64 {
	return PAMD(t, q, pivot.Points(t, k, s))
}

// OPAMD computes the ordered pivot accumulated minimum distance of
// Lemma 5.1: like PAMD, but each pivot may only align against the query
// suffix remaining after discarding the prefix of points farther than the
// budget from every earlier pivot (the DTW ordering constraint). OPAMD is
// a tighter lower bound than PAMD; tau is the query threshold used for the
// suffix advancement.
func OPAMD(t, q, tp []geom.Point, tau float64) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	sum := t[0].Dist(q[0]) + t[m-1].Dist(q[n-1])
	suf := 0
	for _, p := range tp {
		rem := tau - sum
		if rem < 0 {
			rem = 0
		}
		best := math.Inf(1)
		advancing := true
		for i := suf; i < n; i++ {
			d := p.Dist(q[i])
			if advancing && d > rem {
				if i == suf {
					suf = i + 1
				}
				continue
			}
			advancing = false
			if d < best {
				best = d
			}
		}
		if math.IsInf(best, 1) {
			// Every remaining query point is beyond the budget: the bound
			// already exceeds tau.
			return math.Inf(1)
		}
		sum += best
	}
	return sum
}

func minDistToPoints(p geom.Point, q []geom.Point) float64 {
	best := math.Inf(1)
	for _, qj := range q {
		if d := p.SqDist(qj); d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}
