package core

import (
	"math"
	"sync/atomic"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

// Cell is one cell of the compressed trajectory representation
// (Section 5.3.3, cell-based compression): a square of side Size (stored
// on the CellList) centered at Center, covering Count of the trajectory's
// points.
type Cell struct {
	Center geom.Point
	Count  int
}

// CellList is a trajectory's cell compression with its side length D.
type CellList struct {
	D     float64
	Cells []Cell
}

// CompressCells builds the cell list for a trajectory: the first point
// opens a cell centered on itself; each subsequent point increments the
// first existing cell whose square contains it, or opens a new cell
// centered on itself.
func CompressCells(pts []geom.Point, d float64) CellList {
	cl := CellList{D: d}
	if d <= 0 {
		return cl
	}
	half := d / 2
	for _, p := range pts {
		placed := false
		for i := range cl.Cells {
			c := cl.Cells[i].Center
			if math.Abs(p.X-c.X) <= half && math.Abs(p.Y-c.Y) <= half {
				cl.Cells[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			cl.Cells = append(cl.Cells, Cell{Center: p, Count: 1})
		}
	}
	return cl
}

// square returns the cell's square as an MBR.
func (c Cell) square(d float64) geom.MBR {
	half := d / 2
	return geom.MBR{
		Min: geom.Point{X: c.Center.X - half, Y: c.Center.Y - half},
		Max: geom.Point{X: c.Center.X + half, Y: c.Center.Y + half},
	}
}

// CellLowerBoundSum computes Lemma 5.6's lower bound on DTW:
//
//	Cell(T,Q) = Σ_{cT} (min_{cQ} dist(cT,cQ)) · |cT|
//
// where dist between cells is the minimum distance between their squares.
// Both lists must use the same D for the geometry to be meaningful, but
// the bound is sound for any D since squares only widen point sets.
// The accumulation abandons once the partial sum exceeds tau (a partial
// sum of non-negative terms is itself a lower bound); pass +Inf for the
// exact bound.
func CellLowerBoundSum(t, q CellList, tau float64) float64 {
	if len(t.Cells) == 0 || len(q.Cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, ct := range t.Cells {
		sq := ct.square(t.D)
		best := math.Inf(1)
		for _, cq := range q.Cells {
			if d := sq.MinDistMBR(cq.square(q.D)); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		sum += best * float64(ct.Count)
		if sum > tau {
			return sum
		}
	}
	return sum
}

// CellLowerBoundMax computes the Fréchet form of the cell bound:
// Fréchet(T,Q) >= max_{cT} min_{cQ} dist(cT,cQ).
func CellLowerBoundMax(t, q CellList) float64 {
	if len(t.Cells) == 0 || len(q.Cells) == 0 {
		return 0
	}
	worst := 0.0
	for _, ct := range t.Cells {
		sq := ct.square(t.D)
		best := math.Inf(1)
		for _, cq := range q.Cells {
			if d := sq.MinDistMBR(cq.square(q.D)); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// cellFilterWorthwhile is the cost gate for the cell filter: the bound
// costs O(cT·cQ) square-to-square distances, the exact verification
// O(m·n) point distances with early abandoning; the filter pays off only
// when the DP is several times larger.
func cellFilterWorthwhile(cT, cQ, m, n int) bool {
	return 8*cT*cQ < m*n
}

// trajMeta caches the per-trajectory verification inputs, computed once at
// index-build time ("computing MBRs and cells is pre-processed during
// creating the index", Section 5.3.3).
type trajMeta struct {
	mbr   geom.MBR
	cells CellList
}

func newTrajMeta(t *traj.T, cellD float64) trajMeta {
	return trajMeta{mbr: t.MBR(), cells: CompressCells(t.Points, cellD)}
}

// VerifyMeta is the exported form of the per-trajectory verification
// metadata, for callers (like the network-mode worker) that manage their
// own partition storage.
type VerifyMeta = trajMeta

// NewVerifyMeta computes a trajectory's verification metadata with the
// given cell side length.
func NewVerifyMeta(t *traj.T, cellD float64) VerifyMeta { return newTrajMeta(t, cellD) }

// Verifier runs the paper's verification cascade for one query: MBR
// coverage filtering (Lemma 5.4) → cell-based lower bound (Lemma 5.6) →
// threshold distance with double-direction early abandoning. It caches
// the query-side MBR, expanded MBR and cells.
//
// The cached query-side state is read-only after construction and the
// stats counters are atomic, so one Verifier may be shared by the worker
// pool that verifies a candidate list concurrently (VerifyAll). The
// atomic counters make the struct non-copyable; always use it by pointer.
type Verifier struct {
	m     measure.Measure
	tau   float64
	q     []geom.Point
	qMBR  geom.MBR
	qEMBR geom.MBR
	qCell CellList
	// Stats
	CoveragePruned atomic.Int64
	CellPruned     atomic.Int64
	LengthPruned   atomic.Int64
	Verified       atomic.Int64
	Accepted       atomic.Int64
}

// NewVerifier prepares a verifier for query q at threshold tau. cellD is
// the cell side length used for the candidate metadata (the query's cells
// are computed with the same D).
func NewVerifier(m measure.Measure, q []geom.Point, tau, cellD float64) *Verifier {
	v := &Verifier{m: m, tau: tau, q: q, qMBR: geom.MBROf(q)}
	v.qEMBR = v.qMBR.Expand(tau)
	if m.SupportsCellFilter() && cellD > 0 {
		v.qCell = CompressCells(q, cellD)
	}
	return v
}

// NewVerifierFromMeta is NewVerifier with the query's MBR and cells
// already computed (the join reuses the shipping side's index-time
// metadata instead of recompressing every shipped trajectory per edge).
func NewVerifierFromMeta(m measure.Measure, q []geom.Point, tau float64, meta trajMeta) *Verifier {
	v := &Verifier{m: m, tau: tau, q: q, qMBR: meta.mbr}
	v.qEMBR = v.qMBR.Expand(tau)
	if m.SupportsCellFilter() {
		v.qCell = meta.cells
	}
	return v
}

// SetTau re-targets the verifier to a tighter threshold, recomputing the
// cached expanded query MBR. The best-first kNN scan shrinks τ as better
// neighbors land, and rebuilding a Verifier per candidate would recompress
// the query's cells every time. NOT safe to call while VerifyAll workers
// are running — the kNN scan verifies sequentially precisely because τ
// mutates between candidates. tau must be finite.
func (v *Verifier) SetTau(tau float64) {
	v.tau = tau
	v.qEMBR = v.qMBR.Expand(tau)
}

// Verify decides whether candidate t (with its cached metadata) is within
// tau of the query, returning the distance when accepted.
func (v *Verifier) Verify(t *traj.T, meta trajMeta) (float64, bool) {
	// Length filter (edit measures: Appendix A).
	if lb := v.m.LengthLowerBound(len(t.Points), len(v.q)); lb > v.tau {
		v.LengthPruned.Add(1)
		return lb, false
	}
	// MBR coverage filtering, Lemma 5.4: if similar, EMBR_{T,τ} covers
	// MBR_Q and EMBR_{Q,τ} covers MBR_T. O(1) per candidate.
	if v.m.SupportsCoverageFilter() {
		if !v.qEMBR.Covers(meta.mbr) || !meta.mbr.Expand(v.tau).Covers(v.qMBR) {
			v.CoveragePruned.Add(1)
			return math.Inf(1), false
		}
	}
	// Cell-based compression, Lemma 5.6, both directions. The filter is
	// only worthwhile when the exact DP is large relative to the cell
	// lists (the paper's trajectories run to 3000 points; for short pairs
	// the early-abandoning DP is cheaper than the bound itself).
	if v.m.SupportsCellFilter() && len(v.qCell.Cells) > 0 && len(meta.cells.Cells) > 0 &&
		cellFilterWorthwhile(len(meta.cells.Cells), len(v.qCell.Cells), len(t.Points), len(v.q)) {
		var lb float64
		if v.m.Accumulation() == measure.AccumMax {
			lb = math.Max(CellLowerBoundMax(meta.cells, v.qCell), CellLowerBoundMax(v.qCell, meta.cells))
		} else {
			lb = CellLowerBoundSum(meta.cells, v.qCell, v.tau)
			if lb <= v.tau {
				lb = math.Max(lb, CellLowerBoundSum(v.qCell, meta.cells, v.tau))
			}
		}
		if lb > v.tau {
			v.CellPruned.Add(1)
			return lb, false
		}
	}
	// Exact threshold verification (double-direction for DTW).
	v.Verified.Add(1)
	d, ok := v.m.DistanceThreshold(t.Points, v.q, v.tau)
	if ok {
		v.Accepted.Add(1)
	}
	return d, ok
}
