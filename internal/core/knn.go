package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"dita/internal/geom"
	"dita/internal/obs"
	"dita/internal/traj"
)

// SearchKNN returns the k trajectories nearest to q under the engine's
// measure, ordered by ascending distance (ties broken by trajectory ID).
//
// kNN search is the paper's stated future work ("we plan to support
// KNN-based search and join in DITA"); the implementation is an
// incremental best-first top-k engine in the style REPOSE uses for
// distributed top-k trajectory search: partitions are visited in
// ascending global-index lower bound order, a global k-max-heap's k-th
// distance is the live threshold τ fed to the trie descent and the
// verification cascade, and the search terminates exactly when the next
// partition's lower bound exceeds τ. No candidate is ever verified twice,
// and the result is exact even when fewer than k trajectories are
// reachable (finite-distance neighbors simply run out and every partition
// is scanned once — there is no probe cap to trip).
func (e *Engine) SearchKNN(q *traj.T, k int) []SearchResult {
	return e.SearchKNNStats(q, k, nil)
}

// SearchKNNStats is SearchKNN with observability: the whole-query pruning
// funnel lands in stats.Funnel, per-visit spans on stats.Trace when set.
// A panic in a partition scan propagates (legacy crash semantics);
// lifecycle-aware callers use SearchKNNContext.
func (e *Engine) SearchKNNStats(q *traj.T, k int, stats *SearchStats) []SearchResult {
	res, err := e.SearchKNNContext(context.Background(), q, k, stats)
	if err != nil {
		panic(err) // unreachable with a background context and no partition fault
	}
	return res
}

// SearchKNNContext is SearchKNN with query-lifecycle control: the context
// is checked inside the trie descent, between verification steps, and
// between partition visits. A panic in a partition scan surfaces as an
// error. kNN has no partial-result variant — unlike a threshold search, a
// top-k answer missing one partition's contribution is not a subset of
// the true answer but potentially wrong everywhere, so any failed
// partition fails the query.
func (e *Engine) SearchKNNContext(ctx context.Context, q *traj.T, k int, stats *SearchStats) ([]SearchResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if q == nil || len(q.Points) == 0 || k <= 0 || e.visibleCount() == 0 {
		return nil, ctx.Err()
	}
	if n := e.visibleCount(); k > n {
		k = n
	}
	e.met.knnInc()
	var tr *obs.Trace
	if stats != nil {
		tr = stats.Trace
	}
	timed := tr != nil || e.met != nil
	var qStart time.Time
	if timed {
		qStart = time.Now()
	}
	funnel := obs.Funnel{Partitions: int64(len(e.parts))}
	defer func() {
		if stats != nil {
			stats.Funnel = funnel
			stats.RelevantPartitions = int(funnel.Relevant)
			stats.Candidates = int(funnel.TrieCands)
			stats.Verified = int(funnel.Verified)
		}
		if e.met != nil {
			e.met.knnLatency.Observe(time.Since(qStart).Microseconds())
			e.met.knnFunnel.Record(funnel)
		}
	}()
	res, err := e.knnBestFirst(ctx, q, k, nil, &funnel, tr)
	if stats != nil {
		stats.Results = len(res)
	}
	return res, err
}

// knnOrder returns the engine's partitions sorted by ascending
// (PartitionLowerBound, ID) — the best-first visit order.
func (e *Engine) knnOrder(q []geom.Point) []knnVisit {
	m := e.opts.Measure
	order := make([]knnVisit, 0, len(e.parts))
	for i, p := range e.parts {
		if p.retired {
			continue
		}
		order = append(order, knnVisit{pid: i, lb: PartitionLowerBound(m, q, p.MBRf, p.MBRl)})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].lb != order[b].lb {
			return order[a].lb < order[b].lb
		}
		return order[a].pid < order[b].pid
	})
	return order
}

type knnVisit struct {
	pid int
	lb  float64
}

// knnBestFirst runs the incremental best-first top-k engine: seed τ from
// a sample (or the caller's primed warm-start trajectories), then visit
// partitions in ascending lower-bound order, each visit tightening τ
// through the shared accumulator, until the next partition's bound
// exceeds τ. Visits run inline on the driver — the scan is inherently
// sequential (τ mutates between candidates) — but query shipping is still
// charged to the simulated cluster. funnel accumulates the whole query's
// pruning stages; funnel.Relevant counts partitions actually visited.
func (e *Engine) knnBestFirst(ctx context.Context, q *traj.T, k int, prime []*traj.T, funnel *obs.Funnel, tr *obs.Trace) ([]SearchResult, error) {
	acc := NewKNNAcc(k)
	planDone := tr.StartSpan("knn-plan", -1)
	order := e.knnOrder(q.Points)
	planDone(nil)
	if err := e.knnSeed(ctx, q, k, prime, acc, funnel, tr); err != nil {
		return nil, err
	}
	const driver = 0
	for _, po := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Termination bound: once k answers exist, a partition whose lower
		// bound strictly exceeds the k-th distance cannot improve the
		// result (at lb == τ it still may, through an ID tie), and the
		// order is ascending, so neither can any later one.
		if acc.Full() && po.lb > acc.Tau() {
			break
		}
		funnel.Relevant++
		p := e.parts[po.pid]
		e.cl.Transfer(driver, p.Worker, q.Bytes())
		var vStart time.Time
		if tr != nil {
			vStart = time.Now()
		}
		f, err := e.knnVisit(ctx, p, q.Points, acc)
		if tr != nil {
			ff := f
			span := obs.Span{Name: "knn-visit", Partition: p.ID,
				Start: vStart.Sub(tr.Begin), Duration: time.Since(vStart), Funnel: &ff}
			if err != nil {
				span.Err, span.Class = err.Error(), obs.Classify(err)
			}
			tr.Add(span)
		}
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("core: knn: partition %d: %w", p.ID, err)
		}
		funnel.Merge(f)
	}
	return acc.Results(), nil
}

// knnVisit scans one partition with panic isolation (a poisoned partition
// surfaces as this visit's error, not a process crash). A partition with
// an ingest overlay is scanned in three layers sharing the accumulator:
// the trie-backed base (masked members hidden), then the frozen and live
// deltas brute-forced — the bound-tightening τ carries across layers.
func (e *Engine) knnVisit(ctx context.Context, p *Partition, q []geom.Point, acc *KNNAcc) (f obs.Funnel, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	var masked func(int) bool
	if p.hasOverlay() {
		masked = p.maskedBase
	}
	f, err = KNNScanPartition(ctx, e.opts.Measure, q, p.Index, p.Trajs, p.meta, masked, e.cellD, acc, math.Inf(1))
	if err != nil || !p.hasOverlay() {
		return f, err
	}
	if p.frozen != nil && len(p.frozen.Live) > 0 {
		ff, err := KNNScanLive(ctx, e.opts.Measure, q, p.frozen.Live, p.frozen.Meta,
			func(id int) bool { return p.tomb[id] }, e.cellD, acc, math.Inf(1))
		f.Merge(ff)
		if err != nil {
			return f, err
		}
	}
	if p.delta != nil && len(p.delta.Live) > 0 {
		df, err := KNNScanLive(ctx, e.opts.Measure, q, p.delta.Live, p.delta.Meta,
			nil, e.cellD, acc, math.Inf(1))
		f.Merge(df)
		if err != nil {
			return f, err
		}
	}
	return f, nil
}

// knnSeed primes the accumulator so partition visits start with a finite
// τ: either from the caller's warm-start trajectories (kNN join passes a
// partition neighbor's resolved answer set) or from a deterministic
// stride sample of the dataset. The first k seeds are verified with the
// exact kernel, the rest early-abandon against the live τ; every primed
// distance is exact, so τ is sound from the first partition visit on. The
// seeds' verification work is merged into the funnel as a flat stage.
func (e *Engine) knnSeed(ctx context.Context, q *traj.T, k int, prime []*traj.T, acc *KNNAcc, funnel *obs.Funnel, tr *obs.Trace) error {
	seedDone := tr.StartSpan("knn-seed", -1)
	seeds := prime
	if len(seeds) == 0 {
		n := e.dataset.Len()
		want := 2 * k
		if want < 32 {
			want = 32
		}
		step := n / want
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			seeds = append(seeds, e.dataset.Trajs[i])
		}
	}
	m := e.opts.Measure
	var considered, verified, matched int64
	for si, t := range seeds {
		if si%knnScanCtxEvery == 0 {
			if err := ctx.Err(); err != nil {
				seedDone(err)
				return err
			}
		}
		if t == nil || len(t.Points) == 0 || acc.Resolved(t) {
			continue
		}
		// With ingest enabled the dataset slice is stale: seed only
		// trajectories that are still the current visible version (a
		// deleted or superseded seed must never enter the answer heap).
		// Skipping seeds is always safe — they only prime τ.
		if e.ing != nil {
			if le, ok := e.ing.loc[t.ID]; !ok || le.t != t {
				continue
			}
		}
		considered++
		tau := acc.Tau()
		if math.IsInf(tau, 1) {
			// Threshold kernels must never see τ=+Inf (the banded edit DP
			// sizes its band from τ); the heap isn't full yet, so pay for
			// the exact kernel.
			verified++
			acc.Add(t, m.Distance(t.Points, q.Points))
			matched++
			continue
		}
		verified++
		d, ok := m.DistanceThreshold(t.Points, q.Points, tau)
		acc.Resolve(t)
		if ok {
			acc.Offer(t, d)
			matched++
		}
	}
	funnel.Merge(obs.Funnel{Considered: considered, TrieCands: considered,
		AfterLength: considered, AfterCoverage: considered, Verified: verified, Matched: matched})
	seedDone(nil)
	return nil
}
