package core

import (
	"math"
	"sort"

	"dita/internal/traj"
)

// SearchKNN returns the k trajectories nearest to q under the engine's
// measure, ordered by ascending distance (ties broken by trajectory ID).
//
// kNN search is the paper's stated future work ("we plan to support
// KNN-based search and join in DITA"); this implementation reuses the
// threshold machinery: it probes with a geometrically growing threshold
// until at least k answers are found, then trims. The initial radius is
// seeded by the distance to a small sample, so well-clustered queries
// converge in one or two probes.
func (e *Engine) SearchKNN(q *traj.T, k int) []SearchResult {
	return e.SearchKNNStats(q, k, nil)
}

// SearchKNNStats is SearchKNN with observability: the funnels of every
// threshold probe accumulate into stats.Funnel (a kNN query's total work
// is the sum of its probes), probe spans land on stats.Trace when set,
// and RelevantPartitions reports the final probe's partition count.
func (e *Engine) SearchKNNStats(q *traj.T, k int, stats *SearchStats) []SearchResult {
	if q == nil || len(q.Points) == 0 || k <= 0 || e.dataset.Len() == 0 {
		return nil
	}
	if k > e.dataset.Len() {
		k = e.dataset.Len()
	}
	e.met.knnInc()
	tau := e.seedRadius(q, k)
	for probe := 0; ; probe++ {
		var ps *SearchStats
		if stats != nil {
			ps = &SearchStats{Trace: stats.Trace}
		}
		res := e.Search(q, tau, ps)
		if stats != nil {
			stats.Funnel.Merge(ps.Funnel)
			stats.RelevantPartitions = ps.RelevantPartitions
			stats.Candidates += ps.Candidates
			stats.Verified += ps.Verified
		}
		if len(res) >= k || probe > 60 {
			sort.Slice(res, func(a, b int) bool {
				if res[a].Distance != res[b].Distance {
					return res[a].Distance < res[b].Distance
				}
				return res[a].Traj.ID < res[b].Traj.ID
			})
			if len(res) > k {
				res = res[:k]
			}
			if stats != nil {
				stats.Results = len(res)
			}
			return res
		}
		tau *= 2
	}
}

// seedRadius estimates a starting threshold: the k-th smallest distance
// from q to a deterministic sample of the dataset, which upper-bounds the
// true kNN radius when the sample is large enough and otherwise just
// shortens the doubling search.
func (e *Engine) seedRadius(q *traj.T, k int) float64 {
	const sample = 24
	n := e.dataset.Len()
	step := n / sample
	if step < 1 {
		step = 1
	}
	var ds []float64
	for i := 0; i < n; i += step {
		d := e.opts.Measure.Distance(e.dataset.Trajs[i].Points, q.Points)
		if !math.IsInf(d, 1) {
			ds = append(ds, d)
		}
	}
	if len(ds) == 0 {
		return 1
	}
	sort.Float64s(ds)
	idx := k - 1
	if idx >= len(ds) {
		idx = len(ds) - 1
	}
	r := ds[idx]
	if r <= 0 {
		r = 1e-9
	}
	return r
}
