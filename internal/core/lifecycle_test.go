package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"dita/internal/geom"
	"dita/internal/measure"
)

// panicMeasure is DTW that blows up when verifying a chosen set of data
// trajectories (matched by the identity of their point slices) — the
// "poisoned partition" fault: bad data or a measure bug that explodes
// only for some inputs.
type panicMeasure struct {
	measure.DTW
	poisoned map[*geom.Point]bool
}

func (m panicMeasure) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	if len(t) > 0 && m.poisoned[&t[0]] {
		panic("injected verification fault")
	}
	return m.DTW.DistanceThreshold(t, q, tau)
}

// poisonPartition swaps the engine's measure for one that panics while
// verifying any trajectory of partition pidx, returning an undo func.
func poisonPartition(e *Engine, pidx int) func() {
	old := e.opts.Measure
	poisoned := map[*geom.Point]bool{}
	for _, tr := range e.Partitions()[pidx].Trajs {
		if len(tr.Points) > 0 {
			poisoned[&tr.Points[0]] = true
		}
	}
	e.opts.Measure = panicMeasure{poisoned: poisoned}
	return func() { e.opts.Measure = old }
}

// A panic inside one partition's verification must not crash the query:
// SearchPartialContext reports the partition skipped and returns the
// survivors' hits; after the fault clears, a retry is exact.
func TestSearchPanicYieldsPartialThenExactRetry(t *testing.T) {
	d := smallDataset(300, 50)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	// Query with a trajectory from the poisoned partition so its
	// self-match is guaranteed to reach the exploding verification.
	target := 0
	q := e.Partitions()[target].Trajs[0]
	tau := 0.05
	undo := poisonPartition(e, target)

	hits, rep, err := e.SearchPartialContext(context.Background(), q, tau, nil)
	if err != nil {
		t.Fatalf("partial search errored: %v", err)
	}
	if !rep.Partial() {
		t.Fatal("poisoned partition not reported as skipped")
	}
	for _, s := range rep.Skipped {
		if !strings.Contains(s.Err, "injected verification fault") {
			t.Errorf("skip not attributed to the panic: %q", s.Err)
		}
	}
	for _, h := range hits {
		if h.Traj.ID == q.ID {
			t.Error("hit from the poisoned partition leaked into results")
		}
	}
	// The strict variant turns the same fault into an error, not a panic.
	if _, err := e.SearchContext(context.Background(), q, tau, nil); err == nil {
		t.Fatal("SearchContext returned nil error for a poisoned partition")
	}

	undo()
	got, rep, err := e.SearchPartialContext(context.Background(), q, tau, nil)
	if err != nil || rep.Partial() {
		t.Fatalf("retry after fault cleared: err=%v partial=%v", err, rep.Partial())
	}
	want := bruteSearch(d, measure.DTW{}, q, tau)
	if len(got) != len(want) {
		t.Fatalf("retry: %d hits, want %d", len(got), len(want))
	}
	for _, h := range got {
		if !want[h.Traj.ID] {
			t.Fatalf("retry: spurious hit %d", h.Traj.ID)
		}
	}
}

// An already-cancelled context aborts Search before any work, and never
// masquerades as a partial result.
func TestSearchContextPreCancelled(t *testing.T) {
	d := smallDataset(100, 51)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hits, rep, err := e.SearchPartialContext(ctx, d.Trajs[0], 0.05, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if hits != nil || rep.Partial() {
		t.Fatal("cancelled query produced results or a skip report")
	}
}

// A cancelled join aborts promptly — well under a second — even though
// the full join over the dataset takes much longer.
func TestJoinContextCancelPrompt(t *testing.T) {
	d := smallDataset(2000, 52)
	e1, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = e1.JoinContext(ctx, e2, 0.05, DefaultJoinOptions(), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled join took %v, want < 1s", elapsed)
	}
}

// A deadline bounds Search the same way cancellation does.
func TestSearchContextDeadline(t *testing.T) {
	d := smallDataset(2000, 53)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done() // let it expire so the abort point is deterministic
	start := time.Now()
	_, err = e.SearchContext(ctx, d.Trajs[0], 0.1, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired search took %v", elapsed)
	}
}

// Join panic isolation: poisoning one side's verification yields a
// partial join with a skip report, not a crash, and the strict variants
// turn it into an error/panic respectively.
func TestJoinPanicYieldsPartial(t *testing.T) {
	d := smallDataset(200, 54)
	e1, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	// Poison a destination partition: stage-2 local joins verifying
	// against its trajectories explode mid-shuffle. (Edges oriented the
	// other way verify on e1 and still succeed — the skip report is what
	// records the hole.)
	undo := poisonPartition(e2, 0)
	_, rep, err := e1.JoinPartialContext(context.Background(), e2, 0.05, DefaultJoinOptions(), nil)
	if err != nil {
		t.Fatalf("partial join errored: %v", err)
	}
	if !rep.Partial() {
		t.Fatal("poisoned destination partition not reported")
	}
	found := false
	for _, s := range rep.Skipped {
		if strings.Contains(s.Err, "injected verification fault") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skip report not attributed to the panic: %+v", rep.Skipped)
	}
	if _, err := e1.JoinContext(context.Background(), e2, 0.05, DefaultJoinOptions(), nil); err == nil {
		t.Fatal("JoinContext returned nil error for a poisoned partition")
	}

	// Retry after the fault clears is exact.
	undo()
	pairs, rep, err := e1.JoinPartialContext(context.Background(), e2, 0.05, DefaultJoinOptions(), nil)
	if err != nil || rep.Partial() {
		t.Fatalf("retry after fault cleared: err=%v partial=%v", err, rep.Partial())
	}
	checkJoin(t, pairs, bruteJoin(d, d, measure.DTW{}, 0.05), "retry after fault")
}
