package core

import (
	"math/rand"
	"testing"

	"dita/internal/cluster"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
	"dita/internal/trie"
)

func smallDataset(n int, seed int64) *traj.Dataset {
	return gen.Generate(gen.BeijingLike(n, seed))
}

func smallOpts(workers int) Options {
	o := DefaultOptions()
	o.NG = 3
	o.Trie.MinNode = 4
	o.Cluster = cluster.New(cluster.DefaultConfig(workers))
	return o
}

func bruteSearch(d *traj.Dataset, m measure.Measure, q *traj.T, tau float64) map[int]bool {
	out := map[int]bool{}
	for _, t := range d.Trajs {
		if m.Distance(t.Points, q.Points) <= tau {
			out[t.ID] = true
		}
	}
	return out
}

func TestEngineBuild(t *testing.T) {
	d := smallDataset(500, 1)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range e.Partitions() {
		total += len(p.Trajs)
		if p.Index == nil {
			t.Fatal("partition missing local index")
		}
		if len(p.meta) != len(p.Trajs) {
			t.Fatal("metadata misaligned")
		}
		// Partition MBRs must cover member endpoints.
		for _, tr := range p.Trajs {
			if !p.MBRf.Contains(tr.First()) || !p.MBRl.Contains(tr.Last()) {
				t.Fatal("partition MBR does not cover member endpoints")
			}
		}
	}
	if total != d.Len() {
		t.Fatalf("partitions hold %d trajs, dataset has %d", total, d.Len())
	}
	if e.BuildTime <= 0 {
		t.Error("BuildTime not recorded")
	}
	g, l := e.IndexSizeBytes()
	if g <= 0 || l <= 0 {
		t.Errorf("index sizes: global=%d local=%d", g, l)
	}
	if _, err := NewEngine(nil, smallOpts(2)); err == nil {
		t.Error("nil dataset accepted")
	}
}

// Distributed search must return exactly the brute-force answer for all
// measures.
func TestSearchMatchesBruteForce(t *testing.T) {
	d := smallDataset(400, 2)
	measures := []measure.Measure{
		measure.DTW{},
		measure.Frechet{},
		measure.EDR{Eps: 0.002},
		measure.LCSS{Eps: 0.002, Delta: 5},
		measure.ERP{},
		measure.Hausdorff{},
	}
	for _, m := range measures {
		opts := smallOpts(4)
		opts.Measure = m
		e, err := NewEngine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		queries := gen.Queries(d, 12, 3)
		for _, q := range queries {
			var tau float64
			switch m.Accumulation() {
			case measure.AccumEdit:
				tau = 5
			case measure.AccumMax:
				tau = 0.01
			default:
				tau = 0.05
			}
			want := bruteSearch(d, m, q, tau)
			var stats SearchStats
			got := e.Search(q, tau, &stats)
			gotIDs := map[int]bool{}
			for _, r := range got {
				if gotIDs[r.Traj.ID] {
					t.Fatalf("%s: duplicate result %d", m.Name(), r.Traj.ID)
				}
				gotIDs[r.Traj.ID] = true
			}
			if len(gotIDs) != len(want) {
				t.Fatalf("%s: got %d results, want %d (q=%d tau=%v)", m.Name(), len(gotIDs), len(want), q.ID, tau)
			}
			for id := range want {
				if !gotIDs[id] {
					t.Fatalf("%s: missing result %d", m.Name(), id)
				}
			}
			if stats.Results != len(got) {
				t.Errorf("stats.Results = %d, want %d", stats.Results, len(got))
			}
		}
	}
}

// SearchBatch must agree with Search.
func TestSearchBatchMatchesSearch(t *testing.T) {
	d := smallDataset(300, 4)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(d, 20, 5)
	tau := 0.03
	batch := e.SearchBatch(qs, tau)
	for i, q := range qs {
		single := e.Search(q, tau, nil)
		if len(batch[i]) != len(single) {
			t.Fatalf("query %d: batch %d results, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j].Traj.ID != single[j].Traj.ID {
				t.Fatalf("query %d result %d differs", i, j)
			}
		}
	}
}

// The search must prune partitions: on spread data with a small τ, most
// partitions are irrelevant.
func TestGlobalPruning(t *testing.T) {
	d := smallDataset(1000, 6)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	nparts := len(e.Partitions())
	if nparts < 4 {
		t.Skipf("too few partitions (%d) to check pruning", nparts)
	}
	pruned := false
	for _, q := range gen.Queries(d, 10, 7) {
		var stats SearchStats
		e.Search(q, 0.002, &stats)
		if stats.RelevantPartitions < nparts {
			pruned = true
		}
	}
	if !pruned {
		t.Error("global index never pruned a partition at τ=0.002")
	}
}

// Search with RandomPartition must still be exact (the ablation changes
// performance, not correctness).
func TestRandomPartitionExact(t *testing.T) {
	d := smallDataset(300, 8)
	opts := smallOpts(4)
	opts.RandomPartition = true
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.Queries(d, 8, 9) {
		want := bruteSearch(d, measure.DTW{}, q, 0.03)
		got := e.Search(q, 0.03, nil)
		if len(got) != len(want) {
			t.Fatalf("random partitioning broke correctness: %d vs %d", len(got), len(want))
		}
	}
}

func TestSearchDegenerate(t *testing.T) {
	d := smallDataset(50, 10)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Search(nil, 1, nil); got != nil {
		t.Error("nil query should return nil")
	}
	if got := e.Search(&traj.T{}, 1, nil); got != nil {
		t.Error("empty query should return nil")
	}
	// Zero threshold: only exact duplicates (the query itself).
	q := d.Trajs[0]
	got := e.Search(q, 0, nil)
	found := false
	for _, r := range got {
		if r.Traj.ID == q.ID {
			found = true
		}
	}
	if !found {
		t.Error("query trajectory not found at τ=0")
	}
}

// Engine must work on a single-worker "centralized" cluster (Appendix C).
func TestCentralizedMode(t *testing.T) {
	d := smallDataset(200, 11)
	e, err := NewEngine(d, smallOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 12)[0]
	want := bruteSearch(d, measure.DTW{}, q, 0.05)
	if got := e.Search(q, 0.05, nil); len(got) != len(want) {
		t.Fatalf("centralized search: %d vs %d", len(got), len(want))
	}
}

// Workers must actually share the search workload.
func TestWorkDistribution(t *testing.T) {
	d := smallDataset(2000, 13)
	opts := smallOpts(4)
	opts.NG = 4
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.SearchBatch(gen.Queries(d, 50, 14), 0.05)
	m := e.Cluster().Metrics()
	busyWorkers := 0
	for _, b := range m.WorkerBusy {
		if b > 0 {
			busyWorkers++
		}
	}
	if busyWorkers < 2 {
		t.Errorf("only %d workers did any work", busyWorkers)
	}
}

func TestTrieConfigRespected(t *testing.T) {
	d := smallDataset(300, 15)
	opts := smallOpts(2)
	opts.Trie = trie.Config{K: 2, NLAlign: 4, NLPivot: 2, MinNode: 2}
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0))
	q := d.Trajs[rng.Intn(d.Len())]
	want := bruteSearch(d, measure.DTW{}, q, 0.04)
	if got := e.Search(q, 0.04, nil); len(got) != len(want) {
		t.Fatalf("custom trie config broke search: %d vs %d", len(got), len(want))
	}
}
