package core

import (
	"math"
	"math/rand"
	"testing"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/pivot"
)

var (
	figT1 = []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 3, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}}
	figT3 = []geom.Point{{X: 1, Y: 1}, {X: 4, Y: 1}, {X: 4, Y: 3}, {X: 4, Y: 5}, {X: 4, Y: 6}, {X: 5, Y: 6}}
	figT5 = []geom.Point{{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 7}, {X: 3, Y: 3}, {X: 7, Y: 5}}
)

// TestPaperExample44 reproduces Example 4.4: with K=2 neighbor pivots,
// PAMD(T1, T3) = 0 + 1 + 1.41 + 1 = 3.41 > τ = 3, proving T1 and T3
// dissimilar.
func TestPaperExample44(t *testing.T) {
	got := PAMDK(figT1, figT3, 2, pivot.Neighbor)
	want := 0 + 1 + math.Sqrt2 + 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("PAMD(T1,T3) = %v, want %v (paper: 3.41)", got, want)
	}
	if got <= 3 {
		t.Error("PAMD must exceed τ=3 to prune the pair as in the paper")
	}
}

func randTrajPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geom.Point{X: x, Y: y}
	}
	return pts
}

// PAMD and OPAMD must lower-bound DTW, and OPAMD must dominate PAMD.
func TestPAMDLowerBoundsDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := randTrajPts(rng, 3+rng.Intn(12))
		b := randTrajPts(rng, 2+rng.Intn(12))
		k := 1 + rng.Intn(4)
		s := pivot.Strategy(rng.Intn(3))
		tp := pivot.Points(a, k, s)
		dtw := measure.DTW{}.Distance(a, b)
		pamd := PAMD(a, b, tp)
		if pamd > dtw+1e-9 {
			t.Fatalf("PAMD %v > DTW %v", pamd, dtw)
		}
		// OPAMD with tau > dtw must also lower-bound DTW (tau == dtw
		// exactly is an fp-boundary where the strict suffix comparison may
		// fire on rounding noise, so give it slack).
		opamd := OPAMD(a, b, tp, dtw*1.001+1e-9)
		if opamd > dtw+1e-9 {
			t.Fatalf("OPAMD %v > DTW %v", opamd, dtw)
		}
		if opamd+1e-9 < pamd {
			t.Fatalf("OPAMD %v < PAMD %v: suffix restriction must not loosen the bound", opamd, pamd)
		}
	}
}

// OPAMD's pruning decision must be sound: OPAMD(...) > tau implies
// DTW > tau.
func TestOPAMDPruningSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a := randTrajPts(rng, 3+rng.Intn(10))
		b := randTrajPts(rng, 2+rng.Intn(10))
		tp := pivot.Points(a, 2, pivot.Neighbor)
		tau := rng.Float64() * 15
		if OPAMD(a, b, tp, tau) > tau {
			if dtw := (measure.DTW{}).Distance(a, b); dtw <= tau {
				t.Fatalf("OPAMD pruned a true answer: dtw=%v tau=%v", dtw, tau)
			}
		}
	}
}

func TestPAMDEdgeCases(t *testing.T) {
	if got := PAMD(nil, figT1, nil); !math.IsInf(got, 1) {
		t.Errorf("PAMD(empty, ...) = %v", got)
	}
	if got := OPAMD(figT1, nil, nil, 1); !math.IsInf(got, 1) {
		t.Errorf("OPAMD(..., empty) = %v", got)
	}
	// No pivots: PAMD degenerates to endpoint distances.
	got := PAMD(figT1, figT3, nil)
	want := figT1[0].Dist(figT3[0]) + figT1[5].Dist(figT3[5])
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pivot-free PAMD = %v, want %v", got, want)
	}
}
