package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"dita/internal/gen"
)

// parLevels are the fan-outs the differential tests sweep; 1 is the
// sequential reference path.
var parLevels = []int{1, 2, 8}

// TestParallelSearchDifferential: every fan-out must return byte-identical
// results and pruning funnels to the sequential path, query by query.
func TestParallelSearchDifferential(t *testing.T) {
	d := smallDataset(400, 21)
	qs := gen.Queries(d, 10, 22)
	const tau = 0.05

	type outcome struct {
		res    []SearchResult
		funnel string
	}
	baseline := make([]outcome, len(qs))
	for li, par := range parLevels {
		opts := smallOpts(4)
		opts.VerifyParallelism = par
		e, err := NewEngine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			var st SearchStats
			res := e.Search(q, tau, &st)
			got := outcome{res: res, funnel: fmt.Sprintf("%+v", st.Funnel)}
			if li == 0 {
				baseline[qi] = got
				continue
			}
			if !reflect.DeepEqual(got.res, baseline[qi].res) {
				t.Errorf("par=%d q%d: results diverge from sequential", par, qi)
			}
			if got.funnel != baseline[qi].funnel {
				t.Errorf("par=%d q%d: funnel diverges:\n seq: %s\n par: %s",
					par, qi, baseline[qi].funnel, got.funnel)
			}
		}
	}
}

// TestParallelKNNDifferential: the best-first kNN's partition scans run
// above the verification pool setting; answers and funnels must be
// byte-identical across fan-outs (the scan itself is sequential — the
// live τ mutates between candidates — so fan-out must change nothing).
func TestParallelKNNDifferential(t *testing.T) {
	d := smallDataset(400, 23)
	qs := gen.Queries(d, 6, 24)
	const k = 7

	type outcome struct {
		res    []SearchResult
		funnel string
	}
	baseline := make([]outcome, len(qs))
	for li, par := range parLevels {
		opts := smallOpts(4)
		opts.VerifyParallelism = par
		e, err := NewEngine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			var st SearchStats
			res := e.SearchKNNStats(q, k, &st)
			got := outcome{res: res, funnel: fmt.Sprintf("%+v", st.Funnel)}
			if li == 0 {
				baseline[qi] = got
				continue
			}
			if !reflect.DeepEqual(got.res, baseline[qi].res) {
				t.Errorf("par=%d q%d: kNN results diverge from sequential", par, qi)
			}
			if got.funnel != baseline[qi].funnel {
				t.Errorf("par=%d q%d: kNN funnel diverges:\n seq: %s\n par: %s",
					par, qi, baseline[qi].funnel, got.funnel)
			}
		}
	}
}

// TestParallelJoinDifferential: the self-join's edge verification fans out
// over the flattened pair lists; pairs (order included) and the join
// funnel must match the sequential path.
func TestParallelJoinDifferential(t *testing.T) {
	d := smallDataset(150, 25)
	const tau = 0.05

	var basePairs []Pair
	var baseFunnel string
	for li, par := range parLevels {
		opts := smallOpts(4)
		opts.VerifyParallelism = par
		e1, err := NewEngine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := NewEngine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		var js JoinStats
		pairs := e1.Join(e2, tau, DefaultJoinOptions(), &js)
		funnel := fmt.Sprintf("%+v", js.Funnel)
		if li == 0 {
			basePairs, baseFunnel = pairs, funnel
			continue
		}
		if !reflect.DeepEqual(pairs, basePairs) {
			t.Errorf("par=%d: join pairs diverge from sequential (%d vs %d)",
				par, len(pairs), len(basePairs))
		}
		if funnel != baseFunnel {
			t.Errorf("par=%d: join funnel diverges:\n seq: %s\n par: %s",
				par, baseFunnel, funnel)
		}
	}
}

// TestVerifyAllMatchesSequential exercises the pool helper directly
// against a hand-rolled sequential loop over one partition's candidates.
func TestVerifyAllMatchesSequential(t *testing.T) {
	d := smallDataset(300, 27)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(d, 4, 28)
	const tau = 0.08
	for _, p := range e.Partitions() {
		if len(p.Trajs) == 0 {
			continue
		}
		cands := make([]int, len(p.Trajs))
		for i := range cands {
			cands[i] = i
		}
		for qi, q := range qs {
			vSeq := NewVerifier(e.Measure(), q.Points, tau, e.CellD())
			var want []VerifyHit
			for _, i := range cands {
				if dist, ok := vSeq.Verify(p.Trajs[i], p.meta[i]); ok {
					want = append(want, VerifyHit{Index: i, Distance: dist})
				}
			}
			for _, par := range parLevels {
				vPar := NewVerifier(e.Measure(), q.Points, tau, e.CellD())
				got, err := vPar.VerifyAll(context.Background(), p.Trajs, p.meta, cands, par)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("p%d q%d par=%d: hits diverge", p.ID, qi, par)
				}
				seqF := fmt.Sprintf("%+v", vSeq.Funnel(len(p.Trajs), len(cands)))
				parF := fmt.Sprintf("%+v", vPar.Funnel(len(p.Trajs), len(cands)))
				if seqF != parF {
					t.Errorf("p%d q%d par=%d: funnel diverges:\n seq: %s\n par: %s",
						p.ID, qi, par, seqF, parF)
				}
			}
		}
	}
}

// TestParallelForPanic: a panic in any worker must surface on the calling
// goroutine with the original panic value, exactly like a sequential loop.
func TestParallelForPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || s != "poisoned candidate" {
			t.Fatalf("panic value mangled: %v", r)
		}
	}()
	_ = parallelFor(context.Background(), 64, 4, func(i int) {
		if i == 17 {
			panic("poisoned candidate")
		}
	})
}

// TestParallelForCancel: a cancelled context stops the fan-out and is
// reported as the loop error.
func TestParallelForCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := parallelFor(ctx, 64, 4, func(i int) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
