package core

import (
	"sort"
	"sync"

	"dita/internal/cluster"
	"dita/internal/traj"
)

// KNNJoin computes the k-nearest-neighbor join: for every trajectory T in
// the receiver's dataset, the k trajectories of other's dataset nearest to
// T under the engines' measure. This is the paper's stated future work
// ("we plan to support KNN-based search and join in DITA"), built on the
// same primitives as the threshold join: a per-trajectory radius is seeded
// from the threshold search and grown geometrically until k answers exist.
//
// The result maps each left trajectory ID to its neighbors in ascending
// distance order.
func (e *Engine) KNNJoin(other *Engine, k int) map[int][]SearchResult {
	if k <= 0 || e.dataset.Len() == 0 || other.dataset.Len() == 0 {
		return nil
	}
	if k > other.dataset.Len() {
		k = other.dataset.Len()
	}
	out := make(map[int][]SearchResult, e.dataset.Len())
	var mu sync.Mutex
	// Each left partition's worker resolves its own trajectories' kNN by
	// probing the right engine's index, so the work parallelizes the same
	// way the threshold join does.
	tasks := make([]cluster.Task, 0, len(e.parts))
	for _, p := range e.parts {
		p := p
		tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
			local := make(map[int][]SearchResult, len(p.Trajs))
			for _, t := range p.Trajs {
				local[t.ID] = other.knnLocal(t, k)
			}
			mu.Lock()
			for id, res := range local {
				out[id] = res
			}
			mu.Unlock()
		}})
	}
	e.cl.Run(tasks)
	return out
}

// knnLocal finds t's k nearest trajectories without going through the
// cluster scheduler (the caller is already inside a worker task): global
// pruning plus local trie filtering at a growing radius.
func (e *Engine) knnLocal(q *traj.T, k int) []SearchResult {
	tau := e.seedRadius(q, k)
	for probe := 0; ; probe++ {
		var res []SearchResult
		for _, pid := range e.relevantPartitions(q.Points, tau) {
			r, _ := e.localSearch(e.parts[pid], q.Points, tau)
			res = append(res, r...)
		}
		if len(res) >= k || probe > 60 {
			sort.Slice(res, func(a, b int) bool {
				if res[a].Distance != res[b].Distance {
					return res[a].Distance < res[b].Distance
				}
				return res[a].Traj.ID < res[b].Traj.ID
			})
			if len(res) > k {
				res = res[:k]
			}
			return res
		}
		tau *= 2
	}
}
