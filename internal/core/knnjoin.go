package core

import (
	"context"
	"fmt"

	"dita/internal/cluster"
	"dita/internal/obs"
	"dita/internal/traj"
)

// KNNJoin computes the k-nearest-neighbor join: for every trajectory T in
// the receiver's dataset, the k trajectories of other's dataset nearest
// to T under the engines' (shared) measure. This is the paper's stated
// future work ("we plan to support KNN-based search and join in DITA"),
// built on the incremental best-first kNN engine: each probe orders the
// right engine's partitions by lower bound and stops when the bound
// exceeds its live k-th distance. The result maps each left trajectory ID
// to its neighbors in ascending (distance, ID) order.
func (e *Engine) KNNJoin(other *Engine, k int) (map[int][]SearchResult, error) {
	return e.KNNJoinContext(context.Background(), other, k, nil)
}

// KNNJoinContext is KNNJoin with query-lifecycle control (the context is
// checked between per-trajectory probes and inside each probe's scan) and
// observability (stats, when non-nil, accumulates every probe's pruning
// funnel). Both engines must share a cluster — the join schedules left
// partitions' probes on their owning workers, which is meaningless across
// clusters — and a measure.
//
// Probes within one left partition run sequentially and warm-start from
// their predecessor: trajectories of one STR partition start and end near
// each other, so the previous trajectory's k answers are verified first
// and usually pin τ near its final value before any right partition is
// visited.
func (e *Engine) KNNJoinContext(ctx context.Context, other *Engine, k int, stats *JoinStats) (map[int][]SearchResult, error) {
	if e.cl != other.cl {
		return nil, fmt.Errorf("core: knn join: engines do not share a cluster")
	}
	if e.opts.Measure.Name() != other.opts.Measure.Name() ||
		e.opts.Measure.Epsilon() != other.opts.Measure.Epsilon() {
		return nil, fmt.Errorf("core: knn join: measure mismatch: %s(ε=%g) vs %s(ε=%g)",
			e.opts.Measure.Name(), e.opts.Measure.Epsilon(),
			other.opts.Measure.Name(), other.opts.Measure.Epsilon())
	}
	unlock := rlockPair(e, other)
	defer unlock()
	if k <= 0 || e.visibleCount() == 0 || other.visibleCount() == 0 {
		return nil, ctx.Err()
	}
	if n := other.visibleCount(); k > n {
		k = n
	}
	out := make(map[int][]SearchResult, e.visibleCount())
	var total obs.Funnel
	results := int64(0)
	errs := make([]error, len(e.parts))
	funnels := make([]obs.Funnel, len(e.parts))
	locals := make([]map[int][]SearchResult, len(e.parts))
	// Each left partition's worker resolves its own trajectories' kNN by
	// probing the right engine's index, so the work parallelizes the same
	// way the threshold join does.
	tasks := make([]cluster.Task, 0, len(e.parts))
	for i, p := range e.parts {
		i, p := i, p
		tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("left partition %d: panic: %v", p.ID, r)
				}
			}()
			// With an ingest overlay the probe set is the partition's
			// visible members (masked base hidden, frozen+delta included);
			// without one visibleTrajs returns p.Trajs unchanged.
			probes := p.visibleTrajs()
			local := make(map[int][]SearchResult, len(probes))
			var prime []*traj.T
			for _, t := range probes {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				f := obs.Funnel{Partitions: int64(len(other.parts))}
				res, err := other.knnBestFirst(ctx, t, k, prime, &f, nil)
				if err != nil {
					errs[i] = err
					return
				}
				funnels[i].Merge(f)
				local[t.ID] = res
				// Warm-start the next probe from this answer set.
				prime = make([]*traj.T, 0, len(res))
				for _, r := range res {
					prime = append(prime, r.Traj)
				}
			}
			locals[i] = local
		}})
	}
	if err := e.cl.RunContext(ctx, tasks); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			return nil, fmt.Errorf("core: knn join: %w", err)
		}
		total.Merge(funnels[i])
		for id, res := range locals[i] {
			out[id] = res
			results += int64(len(res))
		}
	}
	if stats != nil {
		stats.Funnel = total
		stats.Results = int(results)
	}
	return out, nil
}
