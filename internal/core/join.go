package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dita/internal/cluster"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/traj"
)

// Pair is one join answer: a similar (T, Q) pair and its distance.
type Pair struct {
	T, Q     *traj.T
	Distance float64
}

// JoinOptions tunes the distributed join (Section 6).
type JoinOptions struct {
	// SampleRate is the fraction of each partition sampled to estimate
	// the bi-graph edge weights (trans, comp).
	SampleRate float64
	// Lambda converts transmitted bytes into candidate-pair-equivalents:
	// TC = λ·NC + CC with λ = 1/(Δ·B) (Section 6.2). <= 0 uses a default
	// calibrated for Gigabit bandwidth and microsecond verifications.
	Lambda float64
	// DisableOrientation keeps every edge at its locally cheaper initial
	// direction without the greedy TC-reduction loop (ablation).
	DisableOrientation bool
	// DisableDivision turns off the division-based load balancing of
	// Section 6.3 (ablation: the "Naive" series of Figure 16).
	DisableDivision bool
	// DivisionQuantile is the cost quantile above which partitions are
	// divided; the paper uses 0.98.
	DivisionQuantile float64
	// Seed drives weight-estimation sampling.
	Seed int64
}

// DefaultJoinOptions mirrors the paper's settings.
func DefaultJoinOptions() JoinOptions {
	return JoinOptions{SampleRate: 0.05, DivisionQuantile: 0.98, Seed: 1}
}

// JoinStats reports the join's cost-model and execution counters.
type JoinStats struct {
	// Edges is the number of partition pairs that may contain results.
	Edges int
	// Oriented counts edges flipped by the greedy orientation.
	Oriented int
	// Divisions counts partition replicas created by load balancing.
	Divisions int
	// TrajsSent and BytesSent count shuffled trajectories.
	TrajsSent int
	BytesSent int
	// CandPairs counts candidate pairs produced by local tries.
	CandPairs int
	// Results is the answer count.
	Results int
	// LoadRatio is the cluster's max/min worker-time ratio after the join.
	LoadRatio float64
	// Funnel is the join's pruning funnel: Partitions counts possible
	// partition pairs, Relevant the bi-graph edges surviving partition-
	// level pruning, Considered the candidate pairs the shipped
	// trajectories were probed against (|shipped|·|dst| per edge), and the
	// remaining stages the verification cascade over candidate pairs.
	Funnel obs.Funnel
	// Trace, when non-nil, receives spans for bigraph construction,
	// orientation, balancing, selection, per-edge local joins, and merge.
	Trace *obs.Trace
}

// edge is one bi-graph edge between partition Ti (left, index into
// e.parts) and Qj (right, index into other.parts), with its two weight
// pairs (Section 6.2).
type edge struct {
	ti, qj int
	// transTQ/compTQ: weights if oriented Ti -> Qj (Ti's trajectories are
	// sent to and joined on Qj's worker). transQT/compQT: the reverse.
	transTQ, compTQ float64
	transQT, compQT float64
	// dirTQ is the chosen orientation: true means Ti -> Qj.
	dirTQ bool
	// execWorker is the worker executing this edge's local join after
	// division-based balancing (the receiving side's worker, or a replica
	// worker).
	execWorker int
}

// Join computes the distributed similarity join T ⋈_τ Q between two built
// engines sharing a cluster (Algorithm 3). Both sides must use the same
// measure. stats may be nil. A panic in an edge task propagates (legacy
// crash semantics); lifecycle-aware callers use JoinContext.
func (e *Engine) Join(other *Engine, tau float64, opts JoinOptions, stats *JoinStats) []Pair {
	out, rep, err := e.JoinPartialContext(context.Background(), other, tau, opts, stats)
	if err != nil {
		panic(err) // unreachable with a background context
	}
	if rep.Partial() {
		panic(rep.err("join"))
	}
	return out
}

// JoinContext is Join with query-lifecycle control: the context is checked
// while building and orienting the bi-graph, during trajectory selection,
// and between local-join verification steps; a panic on any edge task is
// isolated and surfaces as an error instead of crashing the process.
func (e *Engine) JoinContext(ctx context.Context, other *Engine, tau float64, opts JoinOptions, stats *JoinStats) ([]Pair, error) {
	out, rep, err := e.JoinPartialContext(ctx, other, tau, opts, stats)
	if err != nil {
		return nil, err
	}
	if rep.Partial() {
		return nil, rep.err("join")
	}
	return out, nil
}

// JoinPartialContext is JoinContext plus partial-result semantics: an
// edge whose selection or local-join task panics is dropped and its
// destination partition recorded in the SkipReport, while pairs from the
// surviving edges are still returned. Cancellation is never partial: a
// done context returns ctx.Err().
func (e *Engine) JoinPartialContext(ctx context.Context, other *Engine, tau float64, opts JoinOptions, stats *JoinStats) ([]Pair, *SkipReport, error) {
	report := &SkipReport{}
	unlock := rlockPair(e, other)
	defer unlock()
	if opts.SampleRate <= 0 || opts.SampleRate > 1 {
		opts.SampleRate = 0.05
	}
	if opts.DivisionQuantile <= 0 || opts.DivisionQuantile > 1 {
		opts.DivisionQuantile = 0.98
	}
	if opts.Lambda <= 0 {
		// λ = 1/(Δ·B): Δ ≈ 2 µs per candidate verification, B = 125 MB/s
		// => one candidate pair "costs" the same as 250 bytes on the wire.
		opts.Lambda = 1.0 / 250.0
	}
	var tr *obs.Trace
	if stats != nil {
		tr = stats.Trace
	}
	var qStart time.Time
	if tr != nil || e.met != nil {
		qStart = time.Now()
	}
	planDone := tr.StartSpan("bigraph", -1)
	edges, err := e.buildBigraph(ctx, other, tau, opts)
	planDone(err)
	if err != nil {
		return nil, report, err
	}
	funnel := obs.Funnel{
		Partitions: int64(len(e.parts)) * int64(len(other.parts)),
		Relevant:   int64(len(edges)),
	}
	if tr != nil {
		tr.Add(obs.Span{Name: "global-prune", Partition: -1,
			Funnel: &obs.Funnel{Partitions: funnel.Partitions, Relevant: funnel.Relevant}})
	}
	defer func() {
		if stats != nil {
			stats.Funnel = funnel
			stats.CandPairs = int(funnel.TrieCands)
		}
		if e.met != nil {
			e.met.joins.Inc()
			e.met.joinLatency.Observe(time.Since(qStart).Microseconds())
			e.met.joinFunnel.Record(funnel)
		}
	}()
	if stats != nil {
		stats.Edges = len(edges)
	}
	if len(edges) == 0 {
		return nil, report, nil
	}
	orientDone := tr.StartSpan("orient", -1)
	flips, err := orient(ctx, edges, e, other, opts)
	orientDone(err)
	if err != nil {
		return nil, report, err
	}
	divisions := balance(edges, e, other, opts)
	if stats != nil {
		stats.Oriented = flips
		stats.Divisions = divisions
	}
	pairs, err := e.executeJoin(ctx, other, tau, edges, stats, tr, &funnel, report)
	if err != nil {
		return nil, report, err
	}
	if stats != nil {
		stats.Results = len(pairs)
		stats.LoadRatio = e.cl.LoadRatio()
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].T.ID != pairs[b].T.ID {
			return pairs[a].T.ID < pairs[b].T.ID
		}
		return pairs[a].Q.ID < pairs[b].Q.ID
	})
	return pairs, report, nil
}

// buildBigraph finds candidate partition pairs and estimates edge weights
// by sampling (Section 6.2). Cancellation is checked per candidate pair
// (weight estimation runs trie searches, the expensive part).
func (e *Engine) buildBigraph(ctx context.Context, other *Engine, tau float64, opts JoinOptions) ([]*edge, error) {
	m := e.opts.Measure
	anchored := m.AlignsEndpoints()
	rng := rand.New(rand.NewSource(opts.Seed))
	var edges []*edge
	for ti, pt := range e.parts {
		if pt.retired {
			continue
		}
		for qj, pq := range other.parts {
			if pq.retired {
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if anchored {
				// Partition-level pruning: the cheapest possible pair
				// between the partitions must be within τ.
				df := pt.MBRf.MinDistMBR(pq.MBRf)
				dl := pt.MBRl.MinDistMBR(pq.MBRl)
				prune := false
				switch m.Accumulation() {
				case measure.AccumMax:
					prune = df > tau || dl > tau
				default:
					prune = df+dl > tau
				}
				if prune {
					continue
				}
			}
			ed := &edge{ti: ti, qj: qj}
			e.estimateEdge(other, ed, tau, opts, rng)
			edges = append(edges, ed)
		}
	}
	return edges, nil
}

// estimateEdge samples both partitions to estimate trans and comp for both
// orientations, scaled up by the inverse sample rate.
func (e *Engine) estimateEdge(other *Engine, ed *edge, tau float64, opts JoinOptions, rng *rand.Rand) {
	pt := e.parts[ed.ti]
	pq := other.parts[ed.qj]
	ed.transTQ, ed.compTQ = estimateDirection(pt, pq, other, tau, opts.SampleRate, rng)
	ed.transQT, ed.compQT = estimateDirection(pq, pt, e, tau, opts.SampleRate, rng)
}

// estimateDirection estimates sending src's trajectories to dst: trans is
// the expected bytes shipped (trajectories of src with candidates in dst),
// comp the expected candidate pairs produced by dst's trie.
func estimateDirection(src, dst *Partition, dstEngine *Engine, tau float64, rate float64, rng *rand.Rand) (trans, comp float64) {
	n := len(src.Trajs)
	k := int(float64(n)*rate + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	scale := float64(n) / float64(k)
	for s := 0; s < k; s++ {
		t := src.Trajs[rng.Intn(n)]
		if !dstEngine.trajRelevantToPartition(t, dst, tau) {
			continue
		}
		trans += float64(t.Bytes()) * scale
		cands := dst.Index.Search(t.Points, dstEngine.opts.Measure, tau, nil)
		comp += float64(len(cands)) * scale
	}
	return trans, comp
}

// trajRelevantToPartition is the per-trajectory global-index check used
// both for weight estimation and for the shuffle itself ("we only send
// the trajectory T ∈ Ti that has candidates in Qj").
func (e *Engine) trajRelevantToPartition(t *traj.T, p *Partition, tau float64) bool {
	return TrajRelevant(e.opts.Measure, t.Points, p.MBRf, p.MBRl, tau)
}

// TrajRelevant reports whether a trajectory may have answers in a
// partition described by its first/last-point MBRs (Section 5.2's global
// pruning, generalized per measure). It is defined as the partition's
// lower bound being within τ, so threshold pruning and the best-first kNN
// visit order share one bound. Exported for the network-mode worker.
func TrajRelevant(m measure.Measure, q []geom.Point, mbrF, mbrL geom.MBR, tau float64) bool {
	return PartitionLowerBound(m, q, mbrF, mbrL) <= tau
}

// orient chooses edge directions to minimize the maximum per-partition
// total cost TC = λ·NC + CC (Section 6.2). The problem is NP-hard (graph
// orientation); the greedy algorithm initializes each edge to its locally
// cheaper direction and then repeatedly flips the best edge at the
// current argmax partition. Returns the number of flips. Cancellation is
// checked once per greedy iteration (each iteration scans all edges at
// the argmax node — O(edges²) total in the worst case).
func orient(ctx context.Context, edges []*edge, e, other *Engine, opts JoinOptions) (int, error) {
	λ := opts.Lambda
	// Node cost arrays: T partitions then Q partitions.
	nT := len(e.parts)
	tc := make([]float64, nT+len(other.parts))
	nodeT := func(ed *edge) int { return ed.ti }
	nodeQ := func(ed *edge) int { return nT + ed.qj }
	// Cost contribution of an edge given its direction (Section 6.2):
	// orientation Ti->Qj charges the network cost to Ti (sender) and the
	// computation cost to Qj (receiver runs the local join).
	apply := func(ed *edge, sign float64) {
		if ed.dirTQ {
			tc[nodeT(ed)] += sign * λ * ed.transTQ
			tc[nodeQ(ed)] += sign * ed.compTQ
		} else {
			tc[nodeQ(ed)] += sign * λ * ed.transQT
			tc[nodeT(ed)] += sign * ed.compQT
		}
	}
	for _, ed := range edges {
		ed.dirTQ = λ*ed.transTQ+ed.compTQ <= λ*ed.transQT+ed.compQT
		apply(ed, +1)
	}
	if opts.DisableOrientation {
		return 0, nil
	}
	byNode := make(map[int][]*edge)
	for _, ed := range edges {
		byNode[nodeT(ed)] = append(byNode[nodeT(ed)], ed)
		byNode[nodeQ(ed)] = append(byNode[nodeQ(ed)], ed)
	}
	maxTC := func() (int, float64) {
		bi, bv := -1, -1.0
		for i, v := range tc {
			if v > bv {
				bi, bv = i, v
			}
		}
		return bi, bv
	}
	flips := 0
	for iter := 0; iter < 4*len(edges)+16; iter++ {
		if err := ctx.Err(); err != nil {
			return flips, err
		}
		node, worst := maxTC()
		var bestEdge *edge
		bestNew := worst
		for _, ed := range byNode[node] {
			apply(ed, -1)
			ed.dirTQ = !ed.dirTQ
			apply(ed, +1)
			if _, nv := maxTC(); nv < bestNew {
				bestNew = nv
				bestEdge = ed
			}
			apply(ed, -1)
			ed.dirTQ = !ed.dirTQ
			apply(ed, +1)
		}
		if bestEdge == nil {
			break
		}
		apply(bestEdge, -1)
		bestEdge.dirTQ = !bestEdge.dirTQ
		apply(bestEdge, +1)
		flips++
	}
	return flips, nil
}

// balance implements the division-based load balancing of Section 6.3:
// partitions whose total cost exceeds the DivisionQuantile cost get their
// edges spread over ⌈TC/TC_q⌉ replica workers. Here "dividing" a
// partition means assigning subsets of its incident local-join work to
// distinct workers (the replica receives a copy of the partition's index
// and data, accounted as network transfer at execution time). Returns
// the number of replicas created.
func balance(edges []*edge, e, other *Engine, opts JoinOptions) int {
	// Default execution worker: the receiving partition's worker.
	for _, ed := range edges {
		if ed.dirTQ {
			ed.execWorker = other.parts[ed.qj].Worker
		} else {
			ed.execWorker = e.parts[ed.ti].Worker
		}
	}
	if opts.DisableDivision {
		return 0
	}
	λ := opts.Lambda
	// Receiving-side cost per partition node (the execution workload).
	nT := len(e.parts)
	type nodeEdges struct {
		cost  float64
		edges []*edge
	}
	nodes := make(map[int]*nodeEdges)
	add := func(id int, ed *edge, c float64) {
		ne := nodes[id]
		if ne == nil {
			ne = &nodeEdges{}
			nodes[id] = ne
		}
		ne.cost += c
		ne.edges = append(ne.edges, ed)
	}
	for _, ed := range edges {
		if ed.dirTQ {
			add(nT+ed.qj, ed, λ*ed.transTQ+ed.compTQ)
		} else {
			add(ed.ti, ed, λ*ed.transQT+ed.compQT)
		}
	}
	// The quantile ranges over ALL partitions of both sides (the paper
	// sorts P1..PN with N = |T partitions| + |Q partitions|), zero-cost
	// ones included — otherwise a single dominating node would be its own
	// percentile and never divide.
	costs := make([]float64, nT+len(other.parts))
	total := 0.0
	for id, ne := range nodes {
		if id < len(costs) {
			costs[id] = ne.cost
		}
		total += ne.cost
	}
	sort.Float64s(costs)
	qIdx := int(opts.DivisionQuantile * float64(len(costs)-1))
	tcq := costs[qIdx]
	if tcq <= 0 {
		// Load so skewed that the quantile partition is idle: fall back to
		// the average load per partition as the division unit.
		tcq = total / float64(len(costs))
	}
	if tcq <= 0 {
		return 0
	}
	W := e.cl.Workers()
	replicas := 0
	// Deterministic iteration order over nodes.
	ids := make([]int, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ne := nodes[id]
		if ne.cost <= tcq {
			continue
		}
		copies := int(math.Ceil(ne.cost / tcq))
		if copies > W {
			copies = W
		}
		if copies <= 1 {
			continue
		}
		// Spread the node's edges over `copies` workers round-robin,
		// starting at the home worker.
		home := ne.edges[0].execWorker
		for i, ed := range ne.edges {
			ed.execWorker = (home + i%copies) % W
		}
		replicas += copies - 1
	}
	return replicas
}

// executeJoin ships trajectories along the oriented edges and runs the
// local joins (Algorithm 3 lines 4–9) in two stages: (1) on each sending
// worker, select the trajectories that have candidates in the destination
// partition via the global-index check; (2) shuffle them to the executing
// worker and probe the destination's trie there. An edge whose task
// panics is recorded in report (attributed to its destination partition)
// and the other edges proceed.
func (e *Engine) executeJoin(ctx context.Context, other *Engine, tau float64, edges []*edge, stats *JoinStats, tr *obs.Trace, funnel *obs.Funnel, report *SkipReport) ([]Pair, error) {
	var mu sync.Mutex
	var pairs []Pair
	trajsSent, bytesSent := 0, 0
	timed := tr != nil || e.met != nil
	tasks := make([]cluster.Task, 0, len(edges))
	type edgeState struct {
		ed      *edge
		shipped []*traj.T    // selected source trajectories (base + overlay)
		smeta   []VerifyMeta // their verification metadata
		funnel  obs.Funnel
		elapsed time.Duration
		err     error
	}
	states := make([]*edgeState, len(edges))
	for i, ed := range edges {
		states[i] = &edgeState{ed: ed}
	}
	selectDone := tr.StartSpan("select", -1)
	for _, st := range states {
		st := st
		src, dst, dstEngine, _ := e.edgeSides(other, st.ed)
		tasks = append(tasks, cluster.Task{Worker: src.Worker, Fn: func() {
			defer func() {
				if r := recover(); r != nil {
					st.err = fmt.Errorf("panic: %v", r)
				}
			}()
			overlay := src.hasOverlay()
			pick := func(t *traj.T, m VerifyMeta) {
				if dstEngine.trajRelevantToPartition(t, dst, tau) {
					st.shipped = append(st.shipped, t)
					st.smeta = append(st.smeta, m)
				}
			}
			for i, t := range src.Trajs {
				if st.err = ctx.Err(); st.err != nil {
					return
				}
				if overlay && src.maskedBase(t.ID) {
					continue
				}
				pick(t, src.meta[i])
			}
			if !overlay {
				return
			}
			if src.frozen != nil {
				for i, t := range src.frozen.Live {
					if !src.tomb[t.ID] {
						pick(t, src.frozen.Meta[i])
					}
				}
			}
			if src.delta != nil {
				for i, t := range src.delta.Live {
					pick(t, src.delta.Meta[i])
				}
			}
		}})
	}
	if err := e.cl.RunContext(ctx, tasks); err != nil {
		selectDone(err)
		return nil, err
	}
	selectDone(nil)

	// Stage 2: shuffle + local join. If the executor is a replica worker
	// (division balancing), the receiving partition's index+data transfer
	// is accounted too.
	tasks = tasks[:0]
	replicated := map[[2]int]bool{}
	for _, st := range states {
		st := st
		if st.err != nil || len(st.shipped) == 0 {
			continue
		}
		src, dst, dstEngine, flip := e.edgeSides(other, st.ed)
		bytes := 0
		for _, t := range st.shipped {
			bytes += t.Bytes()
		}
		e.cl.Transfer(src.Worker, st.ed.execWorker, bytes)
		trajsSent += len(st.shipped)
		bytesSent += bytes
		if st.ed.execWorker != dst.Worker {
			key := [2]int{boolToInt(flip)*1_000_000 + dst.ID, st.ed.execWorker}
			if !replicated[key] {
				replicated[key] = true
				e.cl.Transfer(dst.Worker, st.ed.execWorker, dst.Bytes()+dst.Index.SizeBytes())
			}
		}
		tasks = append(tasks, cluster.Task{Worker: st.ed.execWorker, Fn: func() {
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			defer func() {
				if r := recover(); r != nil {
					st.err = fmt.Errorf("panic: %v", r)
				}
				if timed {
					st.elapsed = time.Since(t0)
				}
			}()
			local, f, err := localJoin(ctx, dstEngine, dst, st.shipped, st.smeta, tau, flip)
			st.funnel = f
			if err != nil {
				st.err = err
				return
			}
			mu.Lock()
			pairs = append(pairs, local...)
			mu.Unlock()
		}})
	}
	if err := e.cl.RunContext(ctx, tasks); err != nil {
		return nil, err
	}
	// Fold edge failures into the skip report, one entry per destination
	// partition (several edges may target the same partition).
	seen := map[int]bool{}
	for _, st := range states {
		_, dst, _, _ := e.edgeSides(other, st.ed)
		if st.err == nil {
			funnel.Merge(st.funnel)
			if tr != nil {
				f := st.funnel
				tr.Add(obs.Span{Name: "local-join", Partition: dst.ID,
					Duration: st.elapsed, Funnel: &f})
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		class := obs.Classify(st.err)
		if tr != nil {
			tr.Add(obs.Span{Name: "local-join", Partition: dst.ID,
				Duration: st.elapsed, Err: st.err.Error(), Class: class})
		}
		if !seen[dst.ID] {
			seen[dst.ID] = true
			report.Skipped = append(report.Skipped, SkippedPartition{
				Partition: dst.ID, Err: st.err.Error(), Elapsed: st.elapsed, Class: class})
			e.met.recordSkip(class)
		}
	}
	if stats != nil {
		stats.TrajsSent = trajsSent
		stats.BytesSent = bytesSent
	}
	return pairs, nil
}

// edgeSides resolves an edge's (source partition, destination partition,
// destination engine, flip) given its orientation. flip reports that the
// shipped trajectories are Q-side (so result pairs are (dstTraj, shipped)).
func (e *Engine) edgeSides(other *Engine, ed *edge) (src, dst *Partition, dstEngine *Engine, flip bool) {
	if ed.dirTQ {
		return e.parts[ed.ti], other.parts[ed.qj], other, false
	}
	return other.parts[ed.qj], e.parts[ed.ti], e, true
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// localJoin probes dst's trie with each shipped trajectory (whose
// precomputed metadata feeds the verifier) and verifies candidates.
// flip=false: shipped are T-side, dst holds Q-side. When dst carries an
// ingest overlay, trie candidates masked by tombstones are dropped and
// the overlay's live members are paired with every shipped trajectory
// brute-force — the verification cascade prunes them like any candidate.
// Cancellation is checked inside each trie probe and before every
// verification step. The returned funnel covers the edge: Considered is
// |shipped|·|visible dst| pairs, TrieCands the candidate pairs probed,
// and the later stages the verification cascade over those pairs.
func localJoin(ctx context.Context, dstEngine *Engine, dst *Partition, shipped []*traj.T, smeta []VerifyMeta, tau float64, flip bool) ([]Pair, obs.Funnel, error) {
	m := dstEngine.opts.Measure
	// The destination view: base followed by the overlay's visible live
	// members (indices past len(dst.Trajs) address the overlay).
	dstTrajs, dstMeta := dst.Trajs, dst.meta
	var overlayIdx []int
	overlay := dst.hasOverlay()
	if overlay {
		dstTrajs = append([]*traj.T{}, dst.Trajs...)
		dstMeta = append([]VerifyMeta{}, dst.meta...)
		if dst.frozen != nil {
			for i, t := range dst.frozen.Live {
				if !dst.tomb[t.ID] {
					overlayIdx = append(overlayIdx, len(dstTrajs))
					dstTrajs = append(dstTrajs, t)
					dstMeta = append(dstMeta, dst.frozen.Meta[i])
				}
			}
		}
		if dst.delta != nil {
			for i, t := range dst.delta.Live {
				overlayIdx = append(overlayIdx, len(dstTrajs))
				dstTrajs = append(dstTrajs, t)
				dstMeta = append(dstMeta, dst.delta.Meta[i])
			}
		}
	}
	f := obs.Funnel{Considered: int64(len(shipped)) * int64(len(dstTrajs))}
	// Phase 1: sequential trie probes flatten the edge into candidate
	// pairs, with one verifier per shipped trajectory (the filter stage is
	// cheap; the DP-heavy cascade below is where the fan-out pays).
	var (
		pairs []JoinPair
		vs    []*Verifier
		ts    []*traj.T
		nCand []int
	)
	for si, t := range shipped {
		idxs, err := dst.Index.SearchContext(ctx, t.Points, m, tau, nil)
		if err != nil {
			return nil, f, err
		}
		if overlay {
			kept := idxs[:0]
			for _, i := range idxs {
				if !dst.maskedBase(dst.Trajs[i].ID) {
					kept = append(kept, i)
				}
			}
			idxs = append(kept, overlayIdx...)
		}
		if len(idxs) == 0 {
			continue
		}
		vi := len(vs)
		vs = append(vs, NewVerifierFromMeta(m, t.Points, tau, smeta[si]))
		ts = append(ts, t)
		nCand = append(nCand, len(idxs))
		for _, i := range idxs {
			pairs = append(pairs, JoinPair{Shipped: vi, Local: i})
		}
	}
	// Phase 2: the verification cascade over the flat pair list, fanned
	// out across the verification pool. Hits come back in pairs order, so
	// the output matches the old nested sequential loops byte for byte;
	// the funnel merge is a sum per stage, so it is order-independent too.
	hits, err := VerifyJoinPairs(ctx, pairs, vs, dstTrajs, dstMeta, dstEngine.opts.VerifyParallelism)
	for vi, v := range vs {
		vf := v.Funnel(0, nCand[vi])
		vf.Considered = 0
		f.Merge(vf)
	}
	if err != nil {
		return nil, f, err
	}
	var out []Pair
	for _, h := range hits {
		t, d := ts[h.Pair.Shipped], h.Pair.Local
		if flip {
			out = append(out, Pair{T: dst.Trajs[d], Q: t, Distance: h.Distance})
		} else {
			out = append(out, Pair{T: t, Q: dst.Trajs[d], Distance: h.Distance})
		}
	}
	return out, f, nil
}
