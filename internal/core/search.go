package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dita/internal/cluster"
	"dita/internal/geom"
	"dita/internal/obs"
	"dita/internal/traj"
)

// SearchResult is one answer of a similarity search.
type SearchResult struct {
	Traj     *traj.T
	Distance float64
}

// SearchStats reports the per-query filter/verification funnel.
type SearchStats struct {
	// RelevantPartitions survived global pruning.
	RelevantPartitions int
	// Candidates survived the local trie filter across all partitions.
	Candidates int
	// Verified counts exact distance computations (post cheap filters).
	Verified int
	// Results is the answer count.
	Results int
	// Funnel is the full pruning funnel, one stage per filter of the
	// cascade (global index → trie → length → coverage → cell → exact).
	Funnel obs.Funnel
	// Trace, when non-nil, receives per-stage spans (global-prune, per-
	// partition trie descent and verification, merge). Setting it enables
	// per-partition timing; leave nil on hot paths that only need counts.
	Trace *obs.Trace
}

// SkippedPartition identifies one partition a partial query could not
// complete, with the error (typically a recovered panic) that stopped it.
// Elapsed is how long the partition's task ran before failing (zero when
// the query ran untimed, i.e. no trace and no metrics registry), and
// Class is the coarse obs error class of Err.
type SkippedPartition struct {
	Partition int
	Err       string
	Elapsed   time.Duration
	Class     string
}

// SkipReport lists exactly the partitions a query skipped because their
// tasks failed (panicked). Empty means the result is complete.
type SkipReport struct {
	Skipped []SkippedPartition
}

// Partial reports whether anything was skipped.
func (r *SkipReport) Partial() bool { return r != nil && len(r.Skipped) > 0 }

func (r *SkipReport) err(op string) error {
	s := r.Skipped[0]
	return fmt.Errorf("core: %s: %d partition(s) failed (first: partition %d: %s)",
		op, len(r.Skipped), s.Partition, s.Err)
}

// Search runs the distributed trajectory similarity search of Algorithm 2:
// global pruning on the driver, a stage of local filter+verify tasks on
// the workers owning the relevant partitions, then result collection at
// the driver. stats may be nil. A panic in a partition task propagates
// (legacy crash semantics); lifecycle-aware callers use SearchContext.
func (e *Engine) Search(q *traj.T, tau float64, stats *SearchStats) []SearchResult {
	out, rep, err := e.SearchPartialContext(context.Background(), q, tau, stats)
	if err != nil {
		panic(err) // unreachable with a background context
	}
	if rep.Partial() {
		panic(rep.err("search"))
	}
	return out
}

// SearchContext is Search with query-lifecycle control: the context is
// checked during global pruning, trie descent, and between verification
// steps, so a cancelled or expired context aborts the query within one
// verification step; a panic in any partition task is isolated and
// surfaces as an error instead of crashing the process.
func (e *Engine) SearchContext(ctx context.Context, q *traj.T, tau float64, stats *SearchStats) ([]SearchResult, error) {
	out, rep, err := e.SearchPartialContext(ctx, q, tau, stats)
	if err != nil {
		return nil, err
	}
	if rep.Partial() {
		return nil, rep.err("search")
	}
	return out, nil
}

// SearchPartialContext is SearchContext plus partial-result semantics: a
// partition whose task panics is recorded in the returned SkipReport and
// the hits from the surviving partitions are still returned — the
// in-process analogue of the network mode's AllowPartial machinery.
// Cancellation is never partial: a done context returns ctx.Err().
func (e *Engine) SearchPartialContext(ctx context.Context, q *traj.T, tau float64, stats *SearchStats) ([]SearchResult, *SkipReport, error) {
	report := &SkipReport{}
	if q == nil || len(q.Points) == 0 {
		return nil, report, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	// Queries hold the read side of the mutation lock for their whole
	// run: overlay state, partition MBRs and the global R-trees are
	// stable per query, and merges wait for in-flight queries.
	e.mu.RLock()
	defer e.mu.RUnlock()
	// timed gates every clock read on this path: queries run clock-free
	// unless a trace is attached or the engine has a metrics registry.
	var tr *obs.Trace
	if stats != nil {
		tr = stats.Trace
	}
	timed := tr != nil || e.met != nil
	var qStart time.Time
	if timed {
		qStart = time.Now()
	}
	var gStart time.Time
	if tr != nil {
		gStart = time.Now()
	}
	rel := e.relevantPartitions(q.Points, tau)
	funnel := obs.Funnel{Partitions: int64(len(e.parts)), Relevant: int64(len(rel))}
	if tr != nil {
		tr.Add(obs.Span{Name: "global-prune", Partition: -1,
			Start: gStart.Sub(tr.Begin), Duration: time.Since(gStart),
			Funnel: &obs.Funnel{Partitions: funnel.Partitions, Relevant: funnel.Relevant}})
	}
	if stats != nil {
		stats.RelevantPartitions = len(rel)
	}
	defer func() {
		if stats != nil {
			stats.Funnel = funnel
			stats.Candidates = int(funnel.TrieCands)
			stats.Verified = int(funnel.Verified)
			stats.Results = int(funnel.Matched)
		}
		if e.met != nil {
			e.met.searches.Inc()
			e.met.searchLatency.Observe(time.Since(qStart).Microseconds())
			e.met.searchFunnel.Record(funnel)
		}
	}()
	if len(rel) == 0 {
		return nil, report, nil
	}
	results := make([][]SearchResult, len(rel))
	funnels := make([]obs.Funnel, len(rel))
	elapsed := make([]time.Duration, len(rel))
	errs := make([]error, len(rel))
	tasks := make([]cluster.Task, 0, len(rel))
	const driver = 0
	for i, pid := range rel {
		i, p := i, e.parts[pid]
		// The driver ships the query to the partition's worker.
		e.cl.Transfer(driver, p.Worker, q.Bytes())
		tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
			var t0 time.Time
			if timed {
				t0 = time.Now()
			}
			// Panic isolation: a poisoned partition (bad data, a bug in a
			// measure) must not take down the whole query, let alone the
			// process. The recovered panic becomes this partition's error.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("panic: %v", r)
				}
				if timed {
					elapsed[i] = time.Since(t0)
				}
			}()
			results[i], funnels[i], errs[i] = e.localSearchContext(ctx, p, q.Points, tau, tr)
		}})
	}
	if err := e.cl.RunContext(ctx, tasks); err != nil {
		return nil, report, err
	}
	mergeDone := tr.StartSpan("merge", -1)
	var out []SearchResult
	for i, r := range results {
		if errs[i] != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				mergeDone(ctxErr)
				return nil, report, ctxErr
			}
			class := obs.Classify(errs[i])
			report.Skipped = append(report.Skipped, SkippedPartition{
				Partition: rel[i], Err: errs[i].Error(), Elapsed: elapsed[i], Class: class})
			e.met.recordSkip(class)
			continue
		}
		funnel.Merge(funnels[i])
		if timed {
			e.cost.Observe(rel[i], funnels[i].Verified, elapsed[i])
		}
		out = append(out, r...)
		if len(r) > 0 {
			// Results ship back to the driver.
			bytes := 0
			for _, sr := range r {
				bytes += sr.Traj.Bytes()
			}
			e.cl.Transfer(e.parts[rel[i]].Worker, driver, bytes)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	mergeDone(nil)
	return out, report, nil
}

// SearchBatch runs many queries in one cluster stage, modelling the
// paper's workload of 1,000 random queries: each query's local tasks are
// scattered to the owning workers and execute in parallel. A panic in a
// partition task propagates (legacy crash semantics); lifecycle-aware
// callers use SearchBatchContext.
func (e *Engine) SearchBatch(qs []*traj.T, tau float64) [][]SearchResult {
	out, reports, err := e.SearchBatchContext(context.Background(), qs, tau)
	if err != nil {
		panic(err) // unreachable with a background context
	}
	for _, r := range reports {
		if r.Partial() {
			panic(r.err("search batch"))
		}
	}
	return out
}

// SearchBatchContext is SearchBatch with query-lifecycle control and
// per-query observability: every (query, partition) task runs under a
// recover, a failed partition lands in that query's SkipReport (the
// in-process analogue of AllowPartial) instead of crashing the process,
// and each non-empty query counts into the engine's search metrics with
// its own pruning funnel. Cancellation is never partial: a done context
// returns ctx.Err(). The returned reports slice is indexed like qs.
func (e *Engine) SearchBatchContext(ctx context.Context, qs []*traj.T, tau float64) ([][]SearchResult, []*SkipReport, error) {
	out := make([][]SearchResult, len(qs))
	reports := make([]*SkipReport, len(qs))
	for i := range reports {
		reports[i] = &SkipReport{}
	}
	if err := ctx.Err(); err != nil {
		return nil, reports, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	timed := e.met != nil
	var qStart time.Time
	if timed {
		qStart = time.Now()
	}
	// One result slot per (query, partition) task; merged after the stage
	// so the batch needs no locking in the hot path.
	type slot struct {
		qi, pid int
		res     []SearchResult
		funnel  obs.Funnel
		elapsed time.Duration
		err     error
	}
	var slots []*slot
	funnels := make([]obs.Funnel, len(qs))
	valid := make([]bool, len(qs))
	tasks := make([]cluster.Task, 0, len(qs))
	const driver = 0
	for qi, q := range qs {
		if q == nil || len(q.Points) == 0 {
			continue
		}
		valid[qi] = true
		q := q
		rel := e.relevantPartitions(q.Points, tau)
		funnels[qi] = obs.Funnel{Partitions: int64(len(e.parts)), Relevant: int64(len(rel))}
		for _, pid := range rel {
			p := e.parts[pid]
			e.cl.Transfer(driver, p.Worker, q.Bytes())
			st := &slot{qi: qi, pid: pid}
			slots = append(slots, st)
			tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
				var t0 time.Time
				if timed {
					t0 = time.Now()
				}
				defer func() {
					if r := recover(); r != nil {
						st.err = fmt.Errorf("panic: %v", r)
					}
					if timed {
						st.elapsed = time.Since(t0)
					}
				}()
				st.res, st.funnel, st.err = e.localSearchContext(ctx, p, q.Points, tau, nil)
			}})
		}
	}
	if err := e.cl.RunContext(ctx, tasks); err != nil {
		return nil, reports, err
	}
	for _, st := range slots {
		if st.err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, reports, ctxErr
			}
			class := obs.Classify(st.err)
			reports[st.qi].Skipped = append(reports[st.qi].Skipped, SkippedPartition{
				Partition: st.pid, Err: st.err.Error(), Elapsed: st.elapsed, Class: class})
			e.met.recordSkip(class)
			continue
		}
		funnels[st.qi].Merge(st.funnel)
		if timed {
			e.cost.Observe(st.pid, st.funnel.Verified, st.elapsed)
		}
		out[st.qi] = append(out[st.qi], st.res...)
	}
	for _, r := range out {
		sort.Slice(r, func(a, b int) bool { return r[a].Traj.ID < r[b].Traj.ID })
	}
	if e.met != nil {
		// Per-query counters and funnels; the stage's wall time lands as a
		// single latency observation (the queries ran interleaved in one
		// stage, so per-query latencies are not individually attributable).
		e.met.searchLatency.Observe(time.Since(qStart).Microseconds())
		for qi, ok := range valid {
			if !ok {
				continue
			}
			e.met.searches.Inc()
			e.met.searchFunnel.Record(funnels[qi])
		}
	}
	return out, reports, nil
}

// localSearchContext runs one partition's trie filter and verification
// cascade with cancellation checked inside the
// trie descent and before every verification step ("one verification
// step" — a single threshold-distance computation — is the abort
// granularity). When the partition carries an ingest overlay, base
// candidates masked by tombstones are dropped before verification and
// the overlay's live members (which bypass the trie) enter the same
// cascade as extra candidates, so a delta member and a base member are
// filtered and verified identically. When tr is non-nil, a trie-descend
// span and a verify span are recorded for this partition, each carrying
// its funnel stages.
func (e *Engine) localSearchContext(ctx context.Context, p *Partition, q []geom.Point, tau float64, tr *obs.Trace) ([]SearchResult, obs.Funnel, error) {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	cands, err := p.Index.SearchContext(ctx, q, e.opts.Measure, tau, nil)
	overlay := p.hasOverlay()
	if overlay && len(cands) > 0 {
		kept := cands[:0]
		for _, ci := range cands {
			if !p.maskedBase(p.Trajs[ci].ID) {
				kept = append(kept, ci)
			}
		}
		cands = kept
	}
	considered := len(p.Trajs)
	var fLive, dLive []*traj.T
	var fMeta, dMeta []VerifyMeta
	if overlay {
		if p.frozen != nil {
			for i, t := range p.frozen.Live {
				if !p.tomb[t.ID] {
					fLive = append(fLive, t)
					fMeta = append(fMeta, p.frozen.Meta[i])
				}
			}
		}
		if p.delta != nil {
			dLive, dMeta = p.delta.Live, p.delta.Meta
		}
		considered += len(fLive) + len(dLive)
	}
	nCands := len(cands) + len(fLive) + len(dLive)
	if tr != nil {
		span := obs.Span{Name: "trie-descend", Partition: p.ID,
			Start: t0.Sub(tr.Begin), Duration: time.Since(t0),
			Funnel: &obs.Funnel{Considered: int64(considered), TrieCands: int64(nCands)}}
		if err != nil {
			span.Err, span.Class = err.Error(), obs.Classify(err)
		}
		tr.Add(span)
	}
	f := obs.Funnel{Considered: int64(considered), TrieCands: int64(nCands)}
	if err != nil || nCands == 0 {
		return nil, f, err
	}
	if tr != nil {
		t0 = time.Now()
	}
	v := NewVerifier(e.opts.Measure, q, tau, e.cellD)
	hits, err := v.VerifyAll(ctx, p.Trajs, p.meta, cands, e.opts.VerifyParallelism)
	if err != nil {
		return nil, v.Funnel(considered, nCands), err
	}
	var out []SearchResult
	for _, h := range hits {
		out = append(out, SearchResult{Traj: p.Trajs[h.Index], Distance: h.Distance})
	}
	for _, seg := range [2]struct {
		live []*traj.T
		meta []VerifyMeta
	}{{fLive, fMeta}, {dLive, dMeta}} {
		if len(seg.live) == 0 {
			continue
		}
		all := make([]int, len(seg.live))
		for i := range all {
			all[i] = i
		}
		hs, err := v.VerifyAll(ctx, seg.live, seg.meta, all, e.opts.VerifyParallelism)
		if err != nil {
			return nil, v.Funnel(considered, nCands), err
		}
		for _, h := range hs {
			out = append(out, SearchResult{Traj: seg.live[h.Index], Distance: h.Distance})
		}
	}
	f = v.Funnel(considered, nCands)
	if tr != nil {
		vf := f
		vf.Considered, vf.TrieCands = 0, 0 // already on the trie span
		tr.Add(obs.Span{Name: "verify", Partition: p.ID,
			Start: t0.Sub(tr.Begin), Duration: time.Since(t0), Funnel: &vf})
	}
	return out, f, nil
}
