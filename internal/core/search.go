package core

import (
	"sort"
	"sync"

	"dita/internal/cluster"
	"dita/internal/geom"
	"dita/internal/traj"
)

// SearchResult is one answer of a similarity search.
type SearchResult struct {
	Traj     *traj.T
	Distance float64
}

// SearchStats reports the per-query filter/verification funnel.
type SearchStats struct {
	// RelevantPartitions survived global pruning.
	RelevantPartitions int
	// Candidates survived the local trie filter across all partitions.
	Candidates int
	// Verified counts exact distance computations (post cheap filters).
	Verified int
	// Results is the answer count.
	Results int
}

// Search runs the distributed trajectory similarity search of Algorithm 2:
// global pruning on the driver, a stage of local filter+verify tasks on
// the workers owning the relevant partitions, then result collection at
// the driver. stats may be nil.
func (e *Engine) Search(q *traj.T, tau float64, stats *SearchStats) []SearchResult {
	if q == nil || len(q.Points) == 0 {
		return nil
	}
	rel := e.relevantPartitions(q.Points, tau)
	if stats != nil {
		stats.RelevantPartitions = len(rel)
	}
	if len(rel) == 0 {
		return nil
	}
	results := make([][]SearchResult, len(rel))
	candCounts := make([]int, len(rel))
	verCounts := make([]int, len(rel))
	tasks := make([]cluster.Task, 0, len(rel))
	const driver = 0
	for i, pid := range rel {
		i, p := i, e.parts[pid]
		// The driver ships the query to the partition's worker.
		e.cl.Transfer(driver, p.Worker, q.Bytes())
		tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
			results[i], candCounts[i], verCounts[i] = e.localSearch(p, q.Points, tau)
		}})
	}
	e.cl.Run(tasks)
	var out []SearchResult
	for i, r := range results {
		out = append(out, r...)
		if len(r) > 0 {
			// Results ship back to the driver.
			bytes := 0
			for _, sr := range r {
				bytes += sr.Traj.Bytes()
			}
			e.cl.Transfer(e.parts[rel[i]].Worker, driver, bytes)
		}
	}
	if stats != nil {
		for i := range rel {
			stats.Candidates += candCounts[i]
			stats.Verified += verCounts[i]
		}
		stats.Results = len(out)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	return out
}

// SearchBatch runs many queries in one cluster stage, modelling the
// paper's workload of 1,000 random queries: each query's local tasks are
// scattered to the owning workers and execute in parallel.
func (e *Engine) SearchBatch(qs []*traj.T, tau float64) [][]SearchResult {
	out := make([][]SearchResult, len(qs))
	var mu sync.Mutex
	tasks := make([]cluster.Task, 0, len(qs))
	const driver = 0
	for qi, q := range qs {
		if q == nil || len(q.Points) == 0 {
			continue
		}
		qi, q := qi, q
		for _, pid := range e.relevantPartitions(q.Points, tau) {
			p := e.parts[pid]
			e.cl.Transfer(driver, p.Worker, q.Bytes())
			tasks = append(tasks, cluster.Task{Worker: p.Worker, Fn: func() {
				res, _, _ := e.localSearch(p, q.Points, tau)
				if len(res) == 0 {
					return
				}
				mu.Lock()
				out[qi] = append(out[qi], res...)
				mu.Unlock()
			}})
		}
	}
	e.cl.Run(tasks)
	for _, r := range out {
		sort.Slice(r, func(a, b int) bool { return r[a].Traj.ID < r[b].Traj.ID })
	}
	return out
}

// localSearch runs one partition's trie filter and verification cascade
// and returns (results, candidateCount, verifiedCount).
func (e *Engine) localSearch(p *Partition, q []geom.Point, tau float64) ([]SearchResult, int, int) {
	cands := p.Index.Search(q, e.opts.Measure, tau, nil)
	if len(cands) == 0 {
		return nil, 0, 0
	}
	v := NewVerifier(e.opts.Measure, q, tau, e.cellD)
	var out []SearchResult
	for _, i := range cands {
		if d, ok := v.Verify(p.Trajs[i], p.meta[i]); ok {
			out = append(out, SearchResult{Traj: p.Trajs[i], Distance: d})
		}
	}
	return out, len(cands), v.Verified
}
