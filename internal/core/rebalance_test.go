package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/wal"
)

// hottestLive returns the live partition with the largest occupancy
// (base plus overlay bytes), matching the planner's split choice.
func hottestLive(e *Engine) *Partition {
	var best *Partition
	bestOcc := -1
	for _, p := range e.parts {
		if p.retired {
			continue
		}
		if occ := p.bytes + p.overlayBytes(); occ > bestOcc {
			best, bestOcc = p, occ
		}
	}
	return best
}

// coldestLive returns the n live partitions with the smallest occupancy.
func coldestLive(e *Engine, n int) []int {
	type occ struct{ pid, bytes int }
	var live []occ
	for _, p := range e.parts {
		if !p.retired {
			live = append(live, occ{p.ID, p.bytes + p.overlayBytes()})
		}
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if live[j].bytes < live[i].bytes {
				live[i], live[j] = live[j], live[i]
			}
		}
	}
	if n > len(live) {
		n = len(live)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = live[i].pid
	}
	return out
}

// skewPool builds fresh trajectories clustered tightly around the given
// center, so sticky nearest-MBR routing piles them all onto one
// partition — the hot-spot ingest pattern re-partitioning exists for.
func skewPool(n int, idBase int, c geom.Point, seed int64) []*traj.T {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*traj.T, n)
	for i := range out {
		pts := make([]geom.Point, 5+rng.Intn(6))
		for j := range pts {
			pts[j] = geom.Point{X: c.X + rng.Float64()*0.002, Y: c.Y + rng.Float64()*0.002}
		}
		out[i] = &traj.T{ID: idBase + i, Points: pts}
	}
	return out
}

// sameKNNApprox asserts two kNN answers agree in ids and order, with the
// ulp-level distance tolerance the exact/threshold kernel split allows.
func sameKNNApprox(t *testing.T, label string, want, got []SearchResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: knn count %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		rel := want[i].Distance - got[i].Distance
		if rel < 0 {
			rel = -rel
		}
		if want[i].Traj.ID != got[i].Traj.ID || rel > 1e-12*(1+want[i].Distance) {
			t.Fatalf("%s: knn[%d] = (%d,%g), want (%d,%g)",
				label, i, got[i].Traj.ID, got[i].Distance, want[i].Traj.ID, want[i].Distance)
		}
	}
}

// TestRebalanceDifferential is the tentpole contract, once per measure:
// an engine mutated by interleaved inserts, upserts, deletes, splits,
// and merges answers every query exactly like brute force over the
// visible set — and, at the end, exactly like an engine rebuilt from
// scratch over that set, for Search, kNN, and Join.
func TestRebalanceDifferential(t *testing.T) {
	measures := []measure.Measure{
		measure.DTW{},
		measure.Frechet{},
		measure.EDR{Eps: 0.002},
		measure.LCSS{Eps: 0.002, Delta: 5},
		measure.ERP{},
	}
	for mi, m := range measures {
		m := m
		seed := int64(100 + 10*mi)
		t.Run(m.Name(), func(t *testing.T) {
			d := smallDataset(200, seed)
			opts := smallOpts(4)
			opts.Measure = m
			e, err := NewEngine(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.EnableIngest(IngestConfig{}); err != nil {
				t.Fatal(err)
			}
			want := map[int]*traj.T{}
			for _, tr := range d.Trajs {
				want[tr.ID] = tr
			}
			pool := mutPool(150, seed+1)
			queries := gen.Queries(d, 4, seed+2)
			rng := rand.New(rand.NewSource(seed + 3))
			next := 0

			randomVisible := func() int {
				ids := make([]int, 0, len(want))
				for id := range want {
					ids = append(ids, id)
				}
				for i := 1; i < len(ids); i++ {
					for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
						ids[j], ids[j-1] = ids[j-1], ids[j]
					}
				}
				return ids[rng.Intn(len(ids))]
			}

			for round := 0; round < 3; round++ {
				for i := 0; i < 15; i++ {
					tr := pool[next]
					next++
					if err := e.Insert(tr); err != nil {
						t.Fatal(err)
					}
					want[tr.ID] = tr
				}
				for i := 0; i < 5; i++ {
					id := randomVisible()
					up := &traj.T{ID: id, Points: pool[next].Points}
					next++
					if err := e.Insert(up); err != nil {
						t.Fatal(err)
					}
					want[id] = up
				}
				for i := 0; i < 5; i++ {
					id := randomVisible()
					if ok, err := e.Delete(id); err != nil || !ok {
						t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
					}
					delete(want, id)
				}
				switch round {
				case 0:
					// Split the hottest partition mid-overlay: the pieces are
					// cut from base − tombstones + delta, not from the stale
					// base alone.
					hot := hottestLive(e)
					st, err := e.SplitPartition(hot.ID, 3)
					if err != nil {
						t.Fatal(err)
					}
					if len(st.Retired) != 1 || st.Retired[0] != hot.ID || len(st.Created) == 0 {
						t.Fatalf("split stats: %+v", st)
					}
					if !hot.Retired() {
						t.Fatal("split partition not retired")
					}
					checkVisible(t, e, want, queries, "post-split")
				case 1:
					cold := coldestLive(e, 2)
					st, err := e.MergePartitions(cold)
					if err != nil {
						t.Fatal(err)
					}
					if len(st.Retired) != 2 || len(st.Created) != 1 {
						t.Fatalf("merge stats: %+v", st)
					}
					checkVisible(t, e, want, queries, "post-partition-merge")
				case 2:
					if err := e.MergeAll(); err != nil {
						t.Fatal(err)
					}
					checkVisible(t, e, want, queries, "post-merge-all")
				}
			}

			// Mutations after a cutover must land in the pieces and stay
			// deletable: upsert then delete a trajectory that moved.
			mv := randomVisible()
			up := &traj.T{ID: mv, Points: pool[next].Points}
			next++
			if err := e.Insert(up); err != nil {
				t.Fatal(err)
			}
			want[mv] = up
			if ok, err := e.Delete(mv); err != nil || !ok {
				t.Fatalf("delete moved %d: ok=%v err=%v", mv, ok, err)
			}
			delete(want, mv)
			checkVisible(t, e, want, queries, "post-cutover-mutations")

			// Final differential: rebuilt engine over the visible corpus.
			vis := visibleDataset(want)
			oracle, err := NewEngine(vis, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				if !sameResults(oracle.Search(q, 0.05, nil), e.Search(q, 0.05, nil)) {
					t.Fatalf("final search differs from rebuilt engine for query %d", q.ID)
				}
				sameKNNApprox(t, "final", oracle.SearchKNN(q, 7), e.SearchKNN(q, 7))
			}
			bcfg := gen.BeijingLike(60, seed+4)
			bcfg.Name = "B"
			b := gen.Generate(bcfg)
			for _, tr := range b.Trajs {
				tr.ID += 50000
			}
			eb, err := NewEngine(b, opts)
			if err != nil {
				t.Fatal(err)
			}
			pairs := e.Join(eb, 0.05, DefaultJoinOptions(), nil)
			checkJoin(t, pairs, bruteJoin(vis, b, m, 0.05), "rebalance-join")
		})
	}
}

// TestRebalanceQuick drives random interleavings of ingest, delete,
// split, and merge from a quick-generated seed; every sequence must
// leave the engine answering exactly like brute force over the visible
// set.
func TestRebalanceQuick(t *testing.T) {
	prop := func(seed int64) bool {
		d := smallDataset(80, 7)
		opts := smallOpts(3)
		e, err := NewEngine(d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.EnableIngest(IngestConfig{}); err != nil {
			t.Fatal(err)
		}
		want := map[int]*traj.T{}
		for _, tr := range d.Trajs {
			want[tr.ID] = tr
		}
		pool := mutPool(60, seed)
		rng := rand.New(rand.NewSource(seed))
		next := 0
		for op := 0; op < 30; op++ {
			switch r := rng.Intn(10); {
			case r < 5 && next < len(pool):
				tr := pool[next]
				next++
				if err := e.Insert(tr); err != nil {
					t.Fatal(err)
				}
				want[tr.ID] = tr
			case r < 7 && len(want) > 10:
				ids := make([]int, 0, len(want))
				for id := range want {
					ids = append(ids, id)
				}
				for i := 1; i < len(ids); i++ {
					for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
						ids[j], ids[j-1] = ids[j-1], ids[j]
					}
				}
				id := ids[rng.Intn(len(ids))]
				if ok, err := e.Delete(id); err != nil || !ok {
					t.Fatal(err)
				}
				delete(want, id)
			case r < 8:
				hot := hottestLive(e)
				if _, err := e.SplitPartition(hot.ID, 2+rng.Intn(3)); err != nil {
					t.Fatal(err)
				}
			case r < 9:
				cold := coldestLive(e, 2)
				if len(cold) == 2 {
					if _, err := e.MergePartitions(cold); err != nil {
						t.Fatal(err)
					}
				}
			default:
				if err := e.MergeAll(); err != nil {
					t.Fatal(err)
				}
			}
		}
		vis := visibleDataset(want)
		m := e.Measure()
		for _, q := range gen.Queries(d, 2, seed+1) {
			bs := bruteSearch(vis, m, q, 0.05)
			got := map[int]bool{}
			for _, r := range e.Search(q, 0.05, nil) {
				if got[r.Traj.ID] {
					return false // duplicate answer
				}
				got[r.Traj.ID] = true
			}
			if len(got) != len(bs) {
				return false
			}
			for id := range bs {
				if !got[id] {
					return false
				}
			}
			wk := bruteKNN(vis, m, q, 5)
			gk := idsOf(e.SearchKNN(q, 5))
			if len(wk) != len(gk) {
				return false
			}
			for i := range wk {
				if wk[i] != gk[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestRebalanceDurability: splits and merges interleaved with durable
// mutations survive a hard stop — the sealed snapshots (pieces plus
// tombstones) and the WAL suffixes reconstruct exactly the acked state,
// twice in a row.
func TestRebalanceDurability(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := smallDataset(250, 201)
	opts := smallOpts(4)
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	pool := mutPool(120, 202)
	queries := gen.Queries(d, 5, 203)

	mutate := func(n, off int) {
		for i := 0; i < n; i++ {
			tr := pool[off+i]
			if err := e.Insert(tr); err != nil {
				t.Fatal(err)
			}
			want[tr.ID] = tr
		}
	}
	mutate(40, 0)
	hot := hottestLive(e)
	if _, err := e.SplitPartition(hot.ID, 3); err != nil {
		t.Fatal(err)
	}
	mutate(30, 40)
	cold := coldestLive(e, 2)
	if _, err := e.MergePartitions(cold); err != nil {
		t.Fatal(err)
	}
	mutate(10, 70)
	// Delete one trajectory that a cutover moved, so the tombstone rides
	// the WAL of a piece, not of the original partition.
	victim := pool[0].ID
	if ok, err := e.Delete(victim); err != nil || !ok {
		t.Fatalf("delete %d: ok=%v err=%v", victim, ok, err)
	}
	delete(want, victim)
	checkVisible(t, e, want, queries, "live")

	// Hard stop (no CloseIngest, no merge).
	cold1, csum := coldStart(t, snapStore, walStore, smallOpts(4))
	if csum.DupsMasked != 0 {
		t.Fatalf("clean recovery masked %d duplicates", csum.DupsMasked)
	}
	checkVisible(t, cold1, want, queries, "recovered")
	for _, q := range queries {
		if !sameResults(e.Search(q, 0.05, nil), cold1.Search(q, 0.05, nil)) {
			t.Fatalf("recovered search differs for query %d", q.ID)
		}
	}

	// Keep going after recovery, then recover again.
	mutate2 := pool[100]
	if err := cold1.Insert(mutate2); err != nil {
		t.Fatal(err)
	}
	want[mutate2.ID] = mutate2
	if err := cold1.CloseIngest(); err != nil {
		t.Fatal(err)
	}
	cold2, _ := coldStart(t, snapStore, walStore, smallOpts(4))
	checkVisible(t, cold2, want, queries, "recovered-twice")
}

// TestRebalanceCrashWindows kills a split at each durability boundary
// and recovers from what is on disk. The invariant: recovery always
// sees either the old layout or the new one in full — same visible set,
// no lost writes, duplicates masked deterministically — never a mix.
func TestRebalanceCrashWindows(t *testing.T) {
	for _, stage := range []string{"wals-open", "pieces-sealed", "tombstoned"} {
		stage := stage
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			snapStore, err := snap.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			walStore, err := wal.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			d := smallDataset(150, 301)
			e, err := NewEngine(d, smallOpts(2))
			if err != nil {
				t.Fatal(err)
			}
			sealAll(t, e, snapStore)
			if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore}); err != nil {
				t.Fatal(err)
			}
			want := map[int]*traj.T{}
			for _, tr := range d.Trajs {
				want[tr.ID] = tr
			}
			pool := mutPool(20, 302)
			for _, tr := range pool {
				if err := e.Insert(tr); err != nil {
					t.Fatal(err)
				}
				want[tr.ID] = tr
			}
			for i := 0; i < 5; i++ {
				id := d.Trajs[i*7].ID
				if ok, err := e.Delete(id); err != nil || !ok {
					t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
				}
				delete(want, id)
			}
			queries := gen.Queries(d, 4, 303)
			checkVisible(t, e, want, queries, "pre-crash")

			hot := hottestLive(e)
			// On a pieces-sealed crash, recovery loads both the old full
			// snapshot and the pieces. Only the old *base* members appear
			// twice as snapshot members (and get masked); the old WAL's
			// insert suffix replays as upserts over the pieces' copies.
			baseDups := 0
			for _, tr := range hot.Trajs {
				if le, ok := e.ing.loc[tr.ID]; ok && le.t == tr {
					baseDups++
				}
			}
			rebalanceCrashHook = func(s string) bool { return s == stage }
			_, err = e.SplitPartition(hot.ID, 3)
			rebalanceCrashHook = nil
			if !errors.Is(err, errRebalanceCrashed) {
				t.Fatalf("want simulated crash, got %v", err)
			}

			cold, csum := coldStart(t, snapStore, walStore, smallOpts(2))
			wantDups := 0
			if stage == "pieces-sealed" {
				// Lowest pid wins: every piece copy of an old base member
				// is masked at load.
				wantDups = baseDups
			}
			if csum.DupsMasked != wantDups {
				t.Fatalf("recovery masked %d duplicates, want %d", csum.DupsMasked, wantDups)
			}
			if len(cold.ing.loc) != len(want) {
				t.Fatalf("recovered %d visible trajectories, want %d (mixed layout?)",
					len(cold.ing.loc), len(want))
			}
			checkVisible(t, cold, want, queries, "post-crash")

			// The recovered engine keeps working: ingest and re-split.
			extra := mutPool(1, 304)[0]
			extra.ID = 777777
			if err := cold.Insert(extra); err != nil {
				t.Fatal(err)
			}
			want[extra.ID] = extra
			if _, err := cold.SplitPartition(hottestLive(cold).ID, 2); err != nil {
				t.Fatal(err)
			}
			checkVisible(t, cold, want, queries, "post-crash-resplit")
		})
	}
}

// TestRebalanceSealFaults: an injected snapshot-write failure while
// sealing the pieces aborts the cutover with the old layout fully
// intact; a failure while sealing a tombstone rolls forward (the new
// layout stands, the affected partition keeps snapshot and WAL, and
// recovery still reconstructs the exact visible set).
func TestRebalanceSealFaults(t *testing.T) {
	dir := t.TempDir()
	snapStore, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	walStore, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := smallDataset(120, 401)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	sealAll(t, e, snapStore)
	if _, err := e.EnableIngest(IngestConfig{WAL: walStore, Snap: snapStore}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	for _, tr := range mutPool(10, 402) {
		if err := e.Insert(tr); err != nil {
			t.Fatal(err)
		}
		want[tr.ID] = tr
	}
	queries := gen.Queries(d, 4, 403)
	nParts := len(e.Partitions())

	// Piece-seal failure: clean abort.
	snapStore.Faults = &snap.FaultPlan{Seed: 9, FailRate: 1}
	hot := hottestLive(e)
	var inj *snap.InjectedFault
	if _, err := e.SplitPartition(hot.ID, 3); !errors.As(err, &inj) {
		t.Fatalf("want injected fault, got %v", err)
	}
	snapStore.Faults = nil
	if len(e.Partitions()) != nParts || hot.Retired() {
		t.Fatal("aborted split mutated the layout")
	}
	ents, err := walStore.Scan()
	if err != nil {
		t.Fatal(err)
	}
	for _, en := range ents {
		if en.Partition >= nParts {
			t.Fatalf("aborted split left piece WAL %d behind", en.Partition)
		}
	}
	checkVisible(t, e, want, queries, "post-abort")

	// Tombstone-seal failure: injected after the pieces seal, via the
	// stage hook. The cutover rolls forward and reports the error.
	rebalanceCrashHook = func(s string) bool {
		if s == "pieces-sealed" {
			snapStore.Faults = &snap.FaultPlan{Seed: 10, FailRate: 1}
		}
		return false
	}
	st, err := e.SplitPartition(hot.ID, 3)
	rebalanceCrashHook = nil
	snapStore.Faults = nil
	if !errors.As(err, &inj) {
		t.Fatalf("want injected tombstone fault, got %v", err)
	}
	if st == nil || !hot.Retired() || len(st.Created) == 0 {
		t.Fatalf("tombstone fault did not roll forward: stats=%+v", st)
	}
	// The failed partition keeps its WAL (snapshot + log still
	// reconstruct it; removing the log would orphan the full snapshot).
	ents, err = walStore.Scan()
	if err != nil {
		t.Fatal(err)
	}
	keptOld := false
	for _, en := range ents {
		if en.Partition == hot.ID {
			keptOld = true
		}
	}
	if !keptOld {
		t.Fatal("tombstone fault removed the old partition's WAL")
	}
	checkVisible(t, e, want, queries, "post-roll-forward")

	// Recovery over the mixed disk state (old full snapshot + old WAL +
	// pieces): duplicates masked, visible set exact.
	cold, _ := coldStart(t, snapStore, walStore, smallOpts(2))
	if len(cold.ing.loc) != len(want) {
		t.Fatalf("recovered %d visible trajectories, want %d", len(cold.ing.loc), len(want))
	}
	checkVisible(t, cold, want, queries, "post-roll-forward-recovery")
}

// TestRebalancePolicy: skewed ingest drives the occupancy ratio past
// the bound, the planner's split brings it at least 2× down, and the
// merge policy folds cold partitions back together. Metrics record it.
func TestRebalancePolicy(t *testing.T) {
	reg := obs.New()
	d := smallDataset(200, 501)
	opts := smallOpts(4)
	opts.Obs = reg
	e, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	queries := gen.Queries(d, 4, 502)

	// Hot-spot ingest: everything lands on one partition.
	hot := hottestLive(e)
	for _, tr := range skewPool(150, 20000, hot.MBRf.Center(), 503) {
		if err := e.Insert(tr); err != nil {
			t.Fatal(err)
		}
		want[tr.ID] = tr
	}
	_, _, skew0 := e.OccupancySkew()
	if skew0 <= 2 {
		t.Fatalf("skewed ingest produced skew %.2f, want > 2", skew0)
	}

	steps, converged, err := e.Rebalance(RebalancePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("planner took no action above the bound")
	}
	if !converged {
		t.Fatal("rebalance hit the step budget without converging")
	}
	_, _, skew1 := e.OccupancySkew()
	if skew1 > skew0/2 {
		t.Fatalf("rebalance reduced skew only %.2f -> %.2f, want >= 2x", skew0, skew1)
	}
	checkVisible(t, e, want, queries, "post-rebalance")

	snapReg := reg.Snapshot()
	if snapReg.Counters["engine_rebalance_total"] < int64(len(steps)) {
		t.Fatalf("engine_rebalance_total = %d, want >= %d",
			snapReg.Counters["engine_rebalance_total"], len(steps))
	}
	if g, ok := snapReg.FloatGauges["engine_occupancy_skew"]; !ok || g <= 0 {
		t.Fatalf("engine_occupancy_skew gauge = %v (present=%v)", g, ok)
	}

	// A balanced engine is a no-op.
	st, err := e.RebalanceOnce(RebalancePolicy{SkewBound: skew1 + 1, MergeFraction: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatalf("planner acted below the bound: %+v", st)
	}
}

// TestRebalanceMergePolicy: partitions emptied by deletes fall below
// the cold bar and the planner merges the two coldest neighbors.
func TestRebalanceMergePolicy(t *testing.T) {
	d := smallDataset(200, 601)
	e, err := NewEngine(d, smallOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	want := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		want[tr.ID] = tr
	}
	// Empty two partitions, then fold so their base bytes drop.
	cold := coldestLive(e, 2)
	for _, pid := range cold {
		for _, tr := range append([]*traj.T(nil), e.parts[pid].Trajs...) {
			if ok, err := e.Delete(tr.ID); err != nil || !ok {
				t.Fatalf("delete %d: ok=%v err=%v", tr.ID, ok, err)
			}
			delete(want, tr.ID)
		}
	}
	if err := e.MergeAll(); err != nil {
		t.Fatal(err)
	}
	st, err := e.RebalanceOnce(RebalancePolicy{SkewBound: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(st.Retired) != 2 || len(st.Created) != 1 {
		t.Fatalf("cold merge stats: %+v", st)
	}
	got := map[int]bool{st.Retired[0]: true, st.Retired[1]: true}
	if !got[cold[0]] || !got[cold[1]] {
		t.Fatalf("merged %v, want the emptied partitions %v", st.Retired, cold)
	}
	checkVisible(t, e, want, gen.Queries(d, 3, 602), "post-cold-merge")
}

// TestRebalanceValidation covers the argument and state checks.
func TestRebalanceValidation(t *testing.T) {
	d := smallDataset(100, 701)
	e, err := NewEngine(d, smallOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SplitPartition(0, 3); err == nil {
		t.Fatal("split accepted without ingest")
	}
	if _, err := e.EnableIngest(IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SplitPartition(0, 1); err == nil {
		t.Fatal("split accepted k=1")
	}
	if _, err := e.SplitPartition(-1, 2); err == nil {
		t.Fatal("split accepted negative pid")
	}
	if _, err := e.SplitPartition(len(e.parts), 2); err == nil {
		t.Fatal("split accepted out-of-range pid")
	}
	if _, err := e.MergePartitions([]int{0}); err == nil {
		t.Fatal("merge accepted a single pid")
	}
	if _, err := e.MergePartitions([]int{0, 0}); err == nil {
		t.Fatal("merge accepted duplicate pids")
	}
	st, err := e.SplitPartition(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SplitPartition(0, 2); err == nil {
		t.Fatal("split accepted a retired pid")
	}
	if _, err := e.MergePartitions([]int{0, st.Created[0]}); err == nil {
		t.Fatal("merge accepted a retired pid")
	}

	// A merge fold in flight makes the partition busy for rebalancing.
	pool := mutPool(5, 702)
	for _, tr := range pool {
		if err := e.Insert(tr); err != nil {
			t.Fatal(err)
		}
	}
	pid := e.ing.loc[pool[0].ID].pid
	var busyErr error
	mergeFoldHook = func(he *Engine, hpid int) {
		if hpid == pid {
			_, busyErr = he.SplitPartition(pid, 2)
		}
	}
	did, err := e.MergePartition(pid)
	mergeFoldHook = nil
	if err != nil || !did {
		t.Fatalf("merge: did=%v err=%v", did, err)
	}
	if !errors.Is(busyErr, ErrRebalanceBusy) {
		t.Fatalf("split during merge fold: %v, want ErrRebalanceBusy", busyErr)
	}
	// After the fold completes, the split goes through.
	if _, err := e.SplitPartition(pid, 2); err != nil {
		t.Fatalf("split after merge: %v", err)
	}
}
