package core

import (
	"math"
	"math/rand"
	"testing"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

// TestPaperExample57Cells reproduces Example 5.7: with D=2, T1 compresses
// to [t1,2; t3,1; t4,3], Q compresses to [q1,1; q2,4; q6,2; q7,1], and
// Cell(Q,T1) = 4 > τ = 3 prunes the pair.
func TestPaperExample57Cells(t *testing.T) {
	q := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 5}, {X: 1, Y: 4}, {X: 2, Y: 4}, {X: 2, Y: 5}, {X: 4, Y: 4}, {X: 5, Y: 6}, {X: 5, Y: 5}}
	tc := CompressCells(figT1, 2)
	wantT := []Cell{{Center: geom.Point{X: 1, Y: 1}, Count: 2}, {Center: geom.Point{X: 3, Y: 2}, Count: 1}, {Center: geom.Point{X: 4, Y: 4}, Count: 3}}
	if len(tc.Cells) != len(wantT) {
		t.Fatalf("T1 cells = %v, want %v", tc.Cells, wantT)
	}
	for i := range wantT {
		if tc.Cells[i] != wantT[i] {
			t.Errorf("T1 cell %d = %v, want %v", i, tc.Cells[i], wantT[i])
		}
	}
	qc := CompressCells(q, 2)
	wantQ := []Cell{{Center: geom.Point{X: 1, Y: 1}, Count: 1}, {Center: geom.Point{X: 1, Y: 5}, Count: 4}, {Center: geom.Point{X: 4, Y: 4}, Count: 2}, {Center: geom.Point{X: 5, Y: 6}, Count: 1}}
	if len(qc.Cells) != len(wantQ) {
		t.Fatalf("Q cells = %v, want %v", qc.Cells, wantQ)
	}
	for i := range wantQ {
		if qc.Cells[i] != wantQ[i] {
			t.Errorf("Q cell %d = %v, want %v", i, qc.Cells[i], wantQ[i])
		}
	}
	// Cell(Q,T1) = 0 + 1*4 + 0 + 0 = 4 > 3.
	if got := CellLowerBoundSum(qc, tc, math.Inf(1)); math.Abs(got-4) > 1e-9 {
		t.Errorf("Cell(Q,T1) = %v, want 4", got)
	}
}

// TestPaperExample55Coverage reproduces Example 5.5: EMBR_{T5,3} cannot
// cover MBR_Q, pruning (T5, Q) even though OPAMD passes.
func TestPaperExample55Coverage(t *testing.T) {
	q := []geom.Point{{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 7}, {X: 3, Y: 9}, {X: 3, Y: 11}, {X: 3, Y: 3}, {X: 7, Y: 5}}
	tau := 3.0
	mbrQ := geom.MBROf(q)
	embrT5 := geom.MBROf(figT5).Expand(tau)
	if embrT5.Covers(mbrQ) {
		t.Fatal("paper example: EMBR_{T5,3} must NOT cover MBR_Q")
	}
	// The verifier must prune this pair without an exact computation.
	v := NewVerifier(measure.DTW{}, q, tau, 2)
	tr := &traj.T{ID: 5, Points: figT5}
	if _, ok := v.Verify(tr, newTrajMeta(tr, 2)); ok {
		t.Error("verifier accepted the paper's pruned pair")
	}
	if v.CoveragePruned.Load() != 1 {
		t.Errorf("coverage filter should have fired, coverage=%d", v.CoveragePruned.Load())
	}
}

// Cell lower bounds must never exceed the true distances.
func TestCellBoundsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		a := randTrajPts(rng, 2+rng.Intn(15))
		b := randTrajPts(rng, 2+rng.Intn(15))
		d := 0.1 + rng.Float64()*3
		ca, cb := CompressCells(a, d), CompressCells(b, d)
		dtw := measure.DTW{}.Distance(a, b)
		fre := measure.Frechet{}.Distance(a, b)
		if lb := CellLowerBoundSum(ca, cb, math.Inf(1)); lb > dtw+1e-9 {
			t.Fatalf("sum cell bound %v > DTW %v (D=%v)", lb, dtw, d)
		}
		if lb := CellLowerBoundSum(cb, ca, math.Inf(1)); lb > dtw+1e-9 {
			t.Fatalf("reverse sum cell bound %v > DTW %v", lb, dtw)
		}
		if lb := CellLowerBoundMax(ca, cb); lb > fre+1e-9 {
			t.Fatalf("max cell bound %v > Frechet %v", lb, fre)
		}
	}
}

// Cell counts must preserve the number of points.
func TestCompressCellsCountsPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		pts := randTrajPts(rng, 1+rng.Intn(40))
		cl := CompressCells(pts, 0.5+rng.Float64())
		total := 0
		for _, c := range cl.Cells {
			total += c.Count
		}
		if total != len(pts) {
			t.Fatalf("cell counts %d != points %d", total, len(pts))
		}
		// Every point is inside the cell that counted it... at minimum,
		// inside SOME cell's square.
		for _, p := range pts {
			inside := false
			for _, c := range cl.Cells {
				if c.square(cl.D).Contains(p) {
					inside = true
					break
				}
			}
			if !inside {
				t.Fatalf("point %v outside all cells", p)
			}
		}
	}
	if cl := CompressCells(nil, 1); len(cl.Cells) != 0 {
		t.Error("empty trajectory should have no cells")
	}
	if cl := CompressCells([]geom.Point{{X: 1, Y: 1}}, 0); len(cl.Cells) != 0 {
		t.Error("non-positive D should disable compression")
	}
}

// The verification cascade must be exact: accept iff distance <= tau.
func TestVerifierExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	measures := []measure.Measure{
		measure.DTW{}, measure.Frechet{}, measure.EDR{Eps: 0.5},
		measure.LCSS{Eps: 0.5, Delta: 3}, measure.ERP{}, measure.Hausdorff{},
	}
	for _, m := range measures {
		for i := 0; i < 300; i++ {
			a := randTrajPts(rng, 2+rng.Intn(12))
			b := randTrajPts(rng, 2+rng.Intn(12))
			var tau float64
			if m.Accumulation() == measure.AccumEdit {
				tau = float64(rng.Intn(10))
			} else {
				tau = rng.Float64() * 10
			}
			exact := m.Distance(a, b)
			if math.Abs(exact-tau) < 1e-9 {
				continue
			}
			v := NewVerifier(m, b, tau, 1)
			tr := &traj.T{Points: a}
			_, ok := v.Verify(tr, newTrajMeta(tr, 1))
			if want := exact <= tau; ok != want {
				t.Fatalf("%s: verifier decision %v, want %v (exact=%v tau=%v)",
					m.Name(), ok, want, exact, tau)
			}
		}
	}
}

// The cheap filters must actually fire on well-separated data.
func TestVerifierFiltersFire(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Query in one corner, candidates far away.
	q := randTrajPts(rng, 10)
	v := NewVerifier(measure.DTW{}, q, 0.5, 1)
	for i := 0; i < 50; i++ {
		far := make([]geom.Point, 8)
		for j := range far {
			far[j] = geom.Point{X: 1000 + rng.Float64(), Y: 1000 + rng.Float64()}
		}
		tr := &traj.T{Points: far}
		if _, ok := v.Verify(tr, newTrajMeta(tr, 1)); ok {
			t.Fatal("far candidate accepted")
		}
	}
	if v.CoveragePruned.Load() == 0 {
		t.Error("coverage filter never fired on far candidates")
	}
	if v.Verified.Load() != 0 {
		t.Errorf("exact verification ran %d times; cheap filters should have pruned all", v.Verified.Load())
	}
}
