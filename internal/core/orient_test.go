package core

import (
	"context"
	"math/rand"
	"testing"

	"dita/internal/cluster"
	"dita/internal/gen"
)

// enginesForGraph builds two tiny engines so orient/balance have partition
// arrays to index; the synthetic edges below ignore the real data.
func enginesForGraph(t *testing.T, nPartsEach int) (*Engine, *Engine) {
	t.Helper()
	d := gen.Generate(gen.BeijingLike(nPartsEach*20, 99))
	opts := DefaultOptions()
	// NG chosen so STR yields at least nPartsEach partitions.
	opts.NG = nPartsEach
	opts.Cluster = cluster.New(cluster.DefaultConfig(4))
	e1, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e1, e2
}

// maxTC computes the objective orient minimizes, for verification.
func maxTC(edges []*edge, e, other *Engine, lambda float64) float64 {
	nT := len(e.parts)
	tc := make([]float64, nT+len(other.parts))
	for _, ed := range edges {
		if ed.dirTQ {
			tc[ed.ti] += lambda * ed.transTQ
			tc[nT+ed.qj] += ed.compTQ
		} else {
			tc[nT+ed.qj] += lambda * ed.transQT
			tc[ed.ti] += ed.compQT
		}
	}
	worst := 0.0
	for _, v := range tc {
		if v > worst {
			worst = v
		}
	}
	return worst
}

// The greedy orientation must never end worse than the all-initial
// orientation, and must strictly improve on a crafted skewed instance.
func TestOrientImproves(t *testing.T) {
	e1, e2 := enginesForGraph(t, 3)
	opts := DefaultJoinOptions()
	opts.Lambda = 1

	// Crafted instance: every edge's locally cheaper direction dumps all
	// computation on partition Q0, so the initial assignment is maximally
	// skewed; flipping some edges strictly reduces the max.
	var edges []*edge
	for ti := 0; ti < min(3, len(e1.parts)); ti++ {
		edges = append(edges, &edge{
			ti: ti, qj: 0,
			transTQ: 1, compTQ: 100, // -> Q0 heavy
			transQT: 2, compQT: 101, // slightly worse locally
		})
	}
	if len(edges) < 2 {
		t.Skip("not enough partitions for the crafted instance")
	}
	// Initial local choice (what DisableOrientation keeps).
	init := append([]*edge(nil), cloneEdges(edges)...)
	orient(context.Background(), init, e1, e2, JoinOptions{Lambda: 1, DisableOrientation: true})
	initCost := maxTC(init, e1, e2, 1)

	greedy := cloneEdges(edges)
	orient(context.Background(), greedy, e1, e2, JoinOptions{Lambda: 1})
	greedyCost := maxTC(greedy, e1, e2, 1)

	if greedyCost > initCost {
		t.Fatalf("greedy orientation worsened the objective: %v > %v", greedyCost, initCost)
	}
	if greedyCost >= initCost {
		t.Fatalf("greedy orientation failed to improve a maximally skewed instance: %v vs %v", greedyCost, initCost)
	}
}

func cloneEdges(es []*edge) []*edge {
	out := make([]*edge, len(es))
	for i, e := range es {
		c := *e
		out[i] = &c
	}
	return out
}

// Randomized: greedy never ends above the initial local assignment.
func TestOrientNeverWorsens(t *testing.T) {
	e1, e2 := enginesForGraph(t, 3)
	rng := rand.New(rand.NewSource(5))
	nT, nQ := len(e1.parts), len(e2.parts)
	for iter := 0; iter < 50; iter++ {
		var edges []*edge
		ne := 2 + rng.Intn(10)
		for k := 0; k < ne; k++ {
			edges = append(edges, &edge{
				ti:      rng.Intn(nT),
				qj:      rng.Intn(nQ),
				transTQ: rng.Float64() * 100, compTQ: rng.Float64() * 100,
				transQT: rng.Float64() * 100, compQT: rng.Float64() * 100,
			})
		}
		lambda := rng.Float64() + 0.1
		init := cloneEdges(edges)
		orient(context.Background(), init, e1, e2, JoinOptions{Lambda: lambda, DisableOrientation: true})
		greedy := cloneEdges(edges)
		orient(context.Background(), greedy, e1, e2, JoinOptions{Lambda: lambda})
		if maxTC(greedy, e1, e2, lambda) > maxTC(init, e1, e2, lambda)+1e-9 {
			t.Fatalf("greedy worsened objective on iteration %d", iter)
		}
	}
}

// Division balancing must spread a dominating node's edges over several
// workers and leave balanced instances untouched.
func TestBalanceSpreadsHeavyNode(t *testing.T) {
	e1, e2 := enginesForGraph(t, 3)
	// One destination partition receives every edge: its workload is far
	// above the 98th percentile of the (mostly tiny) others.
	var edges []*edge
	for k := 0; k < 12; k++ {
		ed := &edge{ti: k % len(e1.parts), qj: 0, transTQ: 10, compTQ: 1000, transQT: 1e9, compQT: 1e9}
		ed.dirTQ = true
		edges = append(edges, ed)
	}
	divisions := balance(edges, e1, e2, JoinOptions{Lambda: 1, DivisionQuantile: 0.5})
	if divisions == 0 {
		t.Fatal("division balancing never fired on a dominating node")
	}
	workers := map[int]bool{}
	for _, ed := range edges {
		workers[ed.execWorker] = true
	}
	if len(workers) < 2 {
		t.Fatalf("heavy node's edges stayed on %d worker(s)", len(workers))
	}

	// A perfectly balanced instance must not be divided.
	var flat []*edge
	for k := 0; k < min(len(e1.parts), len(e2.parts)); k++ {
		ed := &edge{ti: k, qj: k, transTQ: 1, compTQ: 1, transQT: 1, compQT: 1}
		ed.dirTQ = true
		flat = append(flat, ed)
	}
	if got := balance(flat, e1, e2, JoinOptions{Lambda: 1, DivisionQuantile: 0.98}); got != 0 {
		t.Errorf("balanced instance divided %d times", got)
	}
}

// DisableDivision keeps every edge on its home worker.
func TestBalanceDisabled(t *testing.T) {
	e1, e2 := enginesForGraph(t, 3)
	var edges []*edge
	for k := 0; k < 8; k++ {
		ed := &edge{ti: k % len(e1.parts), qj: 0, transTQ: 1, compTQ: 1000}
		ed.dirTQ = true
		edges = append(edges, ed)
	}
	if got := balance(edges, e1, e2, JoinOptions{Lambda: 1, DisableDivision: true, DivisionQuantile: 0.5}); got != 0 {
		t.Errorf("disabled division still created %d replicas", got)
	}
	home := e2.parts[0].Worker
	for _, ed := range edges {
		if ed.execWorker != home {
			t.Fatalf("edge moved off the home worker with division disabled")
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
