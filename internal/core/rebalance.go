package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"dita/internal/geom"
	"dita/internal/snap"
	"dita/internal/str"
	"dita/internal/traj"
	"dita/internal/trie"
)

// This file implements online STR re-partitioning: splitting a hot
// partition into several pieces and merging cold siblings into one,
// re-running the STR boundary cuts and per-trajectory pivot selection
// (the trie rebuild) over the group's *current visible* members — base
// minus tombstones plus delta — so sustained skewed ingest cannot pin
// occupancy onto a few dispatch-time partitions.
//
// Partition identity is retire-in-place: ids are stable (they key WAL
// and snapshot filenames, the location map, and dnet replica lists), so
// a split/merge never renumbers — the old partitions are emptied and
// flagged retired, and the pieces take fresh ids appended at the end.
//
// Durability ordering (the crash matrix; DESIGN.md §14). All steps run
// under the group's ingest locks and the engine write lock, so no write
// lands and no query runs mid-cutover:
//
//  1. Build the pieces in memory and open their fresh WALs.
//  2. Seal the pieces' snapshots, ascending pid. A crash here leaves
//     the old partitions' (snapshot, WAL) pairs authoritative; any
//     already-sealed piece duplicates old content and is masked
//     deterministically at the next EnableIngest (lowest pid wins), so
//     recovery sees exactly the old layout.
//  3. Seal an empty tombstone snapshot over each old partition (its
//     watermark = the cut sequence, so a leftover WAL suffix replays as
//     a no-op), then remove its WAL. A crash between tombstones leaves
//     some groups old, some new — but per partition group the layout is
//     one or the other, never a mix of visible copies.
//  4. Install the new layout in memory: retire the old partitions,
//     append the pieces, rewrite the location map, rebuild the global
//     R-trees. Only after this can a write route to a piece, so a
//     piece's WAL can never hold records while an old full snapshot is
//     still live.
//
// An error in step 2 aborts the cutover (pieces removed, old layout
// untouched). An error in step 3 rolls forward — the memory cutover
// installs anyway and the error is reported — because the first
// tombstone seal already made the new layout durable for part of the
// group; the affected partition keeps its full snapshot AND its WAL, so
// its content stays exactly recoverable.

// ErrRebalanceBusy is returned when a group member has a merge fold in
// flight; the caller should retry after the merge completes.
var ErrRebalanceBusy = errors.New("core: rebalance: merge in flight")

// rebalanceCrashHook, when non-nil, is consulted at the named durability
// boundaries of a cutover ("wals-open", "pieces-sealed", "tombstoned").
// Returning true simulates a crash at that instant: the cutover stops
// with the disk in exactly the state a power cut would leave, no memory
// install happens, and errRebalanceCrashed is returned. Test-only.
var rebalanceCrashHook func(stage string) bool

var errRebalanceCrashed = errors.New("core: rebalance: simulated crash")

// crashPoint closes the pieces' log handles (their files stay, as they
// would across a real crash) when the hook asks for a crash.
func crashPoint(stage string, pieces []*Partition) bool {
	if rebalanceCrashHook == nil || !rebalanceCrashHook(stage) {
		return false
	}
	for _, q := range pieces {
		if q.wlog != nil {
			q.wlog.Close()
			q.wlog = nil
		}
	}
	return true
}

// RebalanceStats reports one split/merge cutover.
type RebalanceStats struct {
	// Retired are the partition ids emptied by the cutover.
	Retired []int
	// Created are the fresh partition ids holding the re-cut pieces.
	Created []int
	// Trajs is the number of visible trajectories moved.
	Trajs int
	// Plan is the STR boundary plan the cut used (one tile per piece
	// requested; empty tiles are dropped from Created).
	Plan str.Plan
	// Duration is the wall-clock cutover time, sealing included.
	Duration time.Duration
}

// SplitPartition re-cuts one partition's visible members into up to k
// pieces with fresh STR boundaries and freshly selected pivots,
// retiring the original. Returns the new partition ids.
func (e *Engine) SplitPartition(pid, k int) (*RebalanceStats, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: split: k=%d, need >= 2", k)
	}
	return e.repartitionGroup([]int{pid}, k)
}

// MergePartitions folds several partitions' visible members into one
// fresh partition (re-built trie, re-selected pivots, exact MBRs),
// retiring the originals.
func (e *Engine) MergePartitions(pids []int) (*RebalanceStats, error) {
	if len(pids) < 2 {
		return nil, fmt.Errorf("core: merge partitions: need >= 2 pids, got %d", len(pids))
	}
	return e.repartitionGroup(pids, 1)
}

// repartitionGroup is the unified cutover: the visible members of pids
// are re-cut into up to k pieces (k=1 merges). See the file comment for
// the locking and durability ordering.
func (e *Engine) repartitionGroup(pids []int, k int) (*RebalanceStats, error) {
	start := time.Now()
	group, err := e.validateGroup(pids)
	if err != nil {
		return nil, err
	}
	// Ingest locks in ascending pid order (the same single-partition
	// order Insert/Delete/Merge use), then the engine write lock.
	for _, p := range group {
		p.imu.Lock()
	}
	e.mu.Lock()
	unlock := func() {
		e.mu.Unlock()
		for i := len(group) - 1; i >= 0; i-- {
			group[i].imu.Unlock()
		}
	}
	st := e.ing
	if st == nil {
		unlock()
		return nil, fmt.Errorf("core: rebalance: ingest not enabled")
	}
	for _, p := range group {
		if p.retired {
			unlock()
			return nil, fmt.Errorf("core: rebalance: partition %d already retired", p.ID)
		}
		if p.frozen != nil {
			unlock()
			return nil, ErrRebalanceBusy
		}
	}

	// The cut sequence: every record in the group's logs is <= st.seq
	// (imu held, so no append is in flight), and every piece starts its
	// life at this watermark — a leftover old-WAL suffix replayed over a
	// tombstone snapshot skips entirely.
	cutSeq := st.seq
	var visible []*traj.T
	for _, p := range group {
		visible = append(visible, p.visibleTrajs()...)
	}

	// Re-run the STR boundary cut over the current first points. The
	// plan is total, so trajectories ingested after the cut (routed by
	// nearest-MBR) and the pieces' exact MBRs stay consistent.
	firsts := make([]geom.Point, len(visible))
	for i, t := range visible {
		firsts[i] = t.First()
	}
	plan := str.Cut(firsts, k)
	groups := plan.Assign(firsts)

	stats := &RebalanceStats{Plan: plan, Trajs: len(visible)}
	var pieces []*Partition
	nextID := len(e.parts)
	W := e.cl.Workers()
	for _, g := range groups {
		if len(g) == 0 && len(pieces) > 0 {
			continue // drop empty tiles, but always create at least one piece
		}
		members := make([]*traj.T, len(g))
		for i, j := range g {
			members[i] = visible[j]
		}
		pieces = append(pieces, e.buildPiece(nextID, W, members, cutSeq))
		nextID++
	}
	if len(pieces) == 0 {
		pieces = append(pieces, e.buildPiece(nextID, W, nil, cutSeq))
	}

	// Fresh WALs for the pieces before anything becomes visible; a
	// failure here aborts with no state change.
	if st.cfg.WAL != nil {
		name := e.dataset.Name
		for _, p := range pieces {
			_ = st.cfg.WAL.Remove(name, p.ID)
			l, _, err := st.cfg.WAL.Open(name, p.ID)
			if err != nil {
				for _, q := range pieces {
					if q.wlog != nil {
						q.wlog.Close()
						_ = st.cfg.WAL.Remove(name, q.ID)
						q.wlog = nil
					}
				}
				unlock()
				return nil, fmt.Errorf("core: rebalance: piece %d wal: %w", p.ID, err)
			}
			p.wlog = l
		}
	}

	if crashPoint("wals-open", pieces) {
		unlock()
		return nil, errRebalanceCrashed
	}

	// Step 2: seal the pieces (ascending pid, so a crash leaves a
	// contiguous id space). Abort on failure — old layout intact.
	if st.cfg.Snap != nil {
		name := e.dataset.Name
		for i, p := range pieces {
			s := e.ExportSnapshot(name, p)
			s.Watermark = cutSeq
			if _, err := st.cfg.Snap.Save(s); err != nil {
				for _, q := range pieces[:i+1] {
					_ = st.cfg.Snap.Remove(name, q.ID)
				}
				for _, q := range pieces {
					if q.wlog != nil {
						q.wlog.Close()
						_ = st.cfg.WAL.Remove(name, q.ID)
						q.wlog = nil
					}
				}
				unlock()
				return nil, fmt.Errorf("core: rebalance: seal piece %d: %w", p.ID, err)
			}
		}
	}

	if crashPoint("pieces-sealed", pieces) {
		unlock()
		return nil, errRebalanceCrashed
	}

	// Step 3: tombstone the old partitions (empty snapshot at cutSeq),
	// then drop their WALs. Failures roll forward; see file comment.
	var sealErr error
	emptyIdx := trie.Build(nil, e.opts.Trie)
	for _, p := range group {
		if st.cfg.Snap != nil {
			tomb := &snap.Snapshot{
				Dataset:   e.dataset.Name,
				Partition: p.ID,
				Opts:      e.SnapshotOptions(),
				Index:     emptyIdx,
				Watermark: cutSeq,
			}
			if _, err := st.cfg.Snap.Save(tomb); err != nil {
				if sealErr == nil {
					sealErr = fmt.Errorf("core: rebalance: tombstone partition %d: %w", p.ID, err)
				}
				continue // keep this partition's WAL: full snapshot + log stay recoverable
			}
		}
		if p.wlog != nil {
			p.wlog.Close()
			p.wlog = nil
			if st.cfg.WAL != nil {
				_ = st.cfg.WAL.Remove(e.dataset.Name, p.ID)
			}
		}
	}

	if crashPoint("tombstoned", pieces) {
		unlock()
		return nil, errRebalanceCrashed
	}

	// Step 4: memory install — the single atomic commit point for
	// queries and writers.
	for _, p := range group {
		p.retired = true
		p.Trajs, p.Index, p.meta = nil, emptyIdx, nil
		p.baseIdx = nil
		p.delta, p.frozen = &Delta{}, nil
		p.tomb, p.frozenTomb = make(map[int]bool), nil
		p.bytes = 0
		p.watermark = cutSeq
		p.MBRf, p.MBRl = geom.EmptyMBR(), geom.EmptyMBR()
		stats.Retired = append(stats.Retired, p.ID)
	}
	for _, p := range pieces {
		e.parts = append(e.parts, p)
		for _, t := range p.Trajs {
			st.loc[t.ID] = locEntry{pid: p.ID, t: t}
		}
		stats.Created = append(stats.Created, p.ID)
	}
	e.buildGlobalIndex()
	stats.Duration = time.Since(start)
	if e.met != nil {
		_, _, skew := e.occupancySkewLocked()
		e.met.rebalanceObserve(stats.Duration, skew)
	}
	unlock()
	// Retired pids never serve reads again; forget their cost EWMAs so
	// the planner sees only the fresh pieces' signal.
	e.cost.Drop(stats.Retired...)
	return stats, sealErr
}

// validateGroup resolves and sanity-checks the group under the read
// lock (re-validated under the write lock by the caller).
func (e *Engine) validateGroup(pids []int) ([]*Partition, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.ing == nil {
		return nil, fmt.Errorf("core: rebalance: ingest not enabled")
	}
	sorted := append([]int(nil), pids...)
	sort.Ints(sorted)
	group := make([]*Partition, 0, len(sorted))
	for i, pid := range sorted {
		if pid < 0 || pid >= len(e.parts) {
			return nil, fmt.Errorf("core: rebalance: no partition %d", pid)
		}
		if i > 0 && pid == sorted[i-1] {
			return nil, fmt.Errorf("core: rebalance: duplicate partition %d", pid)
		}
		if e.parts[pid].retired {
			return nil, fmt.Errorf("core: rebalance: partition %d is retired", pid)
		}
		group = append(group, e.parts[pid])
	}
	return group, nil
}

// buildPiece constructs one fully-indexed piece: trie build re-runs
// pivot selection over the members' current geometry, metadata and
// MBRs are exact.
func (e *Engine) buildPiece(id, workers int, members []*traj.T, watermark uint64) *Partition {
	p := &Partition{ID: id, Worker: id % workers, Trajs: members}
	p.Index = trie.Build(members, e.opts.Trie)
	p.meta = make([]trajMeta, len(members))
	p.baseIdx = make(map[int]int, len(members))
	p.MBRf, p.MBRl = geom.EmptyMBR(), geom.EmptyMBR()
	for i, t := range members {
		p.meta[i] = newTrajMeta(t, e.cellD)
		p.baseIdx[t.ID] = i
		p.bytes += t.Bytes()
		p.MBRf = p.MBRf.Extend(t.First())
		p.MBRl = p.MBRl.Extend(t.Last())
	}
	p.delta = &Delta{}
	p.tomb = make(map[int]bool)
	p.watermark = watermark
	return p
}

// OccupancySkew returns the live partitions' occupancy distribution:
// max and mean bytes (base plus unmerged overlay) and their ratio. A
// skew of 1 is perfectly balanced; 0 means no live partitions.
func (e *Engine) OccupancySkew() (max, mean, skew float64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.occupancySkewLocked()
}

func (e *Engine) occupancySkewLocked() (max, mean, skew float64) {
	n := 0
	total := 0.0
	for _, p := range e.parts {
		if p.retired {
			continue
		}
		occ := float64(p.bytes + p.overlayBytes())
		total += occ
		if occ > max {
			max = occ
		}
		n++
	}
	if n == 0 || total == 0 {
		return max, 0, 0
	}
	mean = total / float64(n)
	return max, mean, max / mean
}

// RebalancePolicy tunes the planner; zero values take defaults.
type RebalancePolicy struct {
	// SkewBound is the max/mean occupancy ratio above which the planner
	// acts. Default 2.
	SkewBound float64
	// MaxPieces caps a split's fan-out. Default 8.
	MaxPieces int
	// MergeFraction: partitions below MergeFraction·mean occupancy are
	// cold-merge candidates. Default 0.25.
	MergeFraction float64
	// CostBound enables cost-driven splits: a partition whose smoothed
	// per-query verify cost exceeds CostBound times the mean cost (and
	// sits at or above the CostPercentile of the distribution) is split
	// even when byte occupancy is balanced — the paper's cost-division
	// idea applied online to the observed read load. 0 disables.
	CostBound float64
	// CostPercentile is the nearest-rank percentile of the per-partition
	// cost distribution a cost-hot candidate must reach. Default 98.
	CostPercentile float64
}

// Sanitized returns the policy with zero or out-of-range fields replaced
// by the documented defaults.
func (pol RebalancePolicy) Sanitized() RebalancePolicy {
	if pol.SkewBound <= 1 {
		pol.SkewBound = 2
	}
	if pol.MaxPieces < 2 {
		pol.MaxPieces = 8
	}
	if pol.MergeFraction <= 0 || pol.MergeFraction >= 1 {
		pol.MergeFraction = 0.25
	}
	if pol.CostPercentile <= 0 || pol.CostPercentile > 100 {
		pol.CostPercentile = 98
	}
	return pol
}

// RebalanceOnce runs one planner step: when occupancy skew exceeds the
// bound it splits the hottest partition into about max/mean pieces; when
// the byte layout is balanced but one partition's observed per-query
// verify cost exceeds the policy's cost bound, it splits that read
// hotspot instead; otherwise, when at least two cold partitions sit
// below MergeFraction·mean, it merges the coldest with its spatially
// nearest cold sibling. Returns nil when no action was needed.
func (e *Engine) RebalanceOnce(pol RebalancePolicy) (*RebalanceStats, error) {
	pol = pol.Sanitized()
	// hot and k come from ONE occupancy snapshot inside planRebalance: a
	// second OccupancySkew() here would read fresh max/mean after
	// concurrent ingest moved them, pairing a stale hot pid with a
	// fan-out computed for a different layout.
	hot, cold, k := e.planRebalance(pol)
	switch {
	case hot >= 0:
		return e.SplitPartition(hot, k)
	case len(cold) >= 2:
		return e.MergePartitions(cold)
	}
	return nil, nil
}

// rebalanceMaxSteps caps one Rebalance call's planner steps; a var so
// the convergence-reporting tests can shrink the budget.
var rebalanceMaxSteps = 32

// Rebalance runs planner steps until the skew is within bound and no
// cold merge remains, or no further progress is possible. Returns the
// steps taken and whether the planner converged: false means the step
// budget ran out with work still planned — the layout may be thrashing
// (e.g. a bound the data cannot satisfy) and callers should back off
// rather than immediately retry.
func (e *Engine) Rebalance(pol RebalancePolicy) ([]*RebalanceStats, bool, error) {
	var steps []*RebalanceStats
	for i := 0; i < rebalanceMaxSteps; i++ {
		st, err := e.RebalanceOnce(pol)
		if err != nil {
			return steps, false, err
		}
		if st == nil {
			return steps, true, nil
		}
		steps = append(steps, st)
	}
	return steps, false, nil
}

// planRebalance picks the next action under one occupancy snapshot: the
// hottest partition's id and split fan-out when byte skew exceeds the
// bound (split), else a cost-hot partition when the policy enables
// cost-driven splits, else a group of cold partitions to merge (the
// coldest plus its nearest cold sibling), else (-1, nil, 0).
func (e *Engine) planRebalance(pol RebalancePolicy) (hot int, cold []int, kSplit int) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	hot = -1
	if e.ing == nil {
		return hot, nil, 0
	}
	type occ struct {
		pid    int
		bytes  float64
		center geom.Point
	}
	var live []occ
	total := 0.0
	for _, p := range e.parts {
		if p.retired {
			continue
		}
		o := occ{pid: p.ID, bytes: float64(p.bytes + p.overlayBytes())}
		if !p.MBRf.IsEmpty() {
			o.center = p.MBRf.Center()
		}
		live = append(live, o)
		total += o.bytes
	}
	if len(live) < 2 || total == 0 {
		return hot, nil, 0
	}
	mean := total / float64(len(live))
	maxOcc, maxPid := 0.0, -1
	for _, o := range live {
		if o.bytes > maxOcc {
			maxOcc, maxPid = o.bytes, o.pid
		}
	}
	if maxOcc/mean > pol.SkewBound {
		k := int(math.Round(maxOcc / mean))
		if k < 2 {
			k = 2
		}
		if k > pol.MaxPieces {
			k = pol.MaxPieces
		}
		return maxPid, nil, k
	}
	// Byte occupancy is balanced; consult the observed read cost. A
	// single-member partition cannot be divided, so it never qualifies
	// (promotion, in dnet, is the remedy there).
	livePids := make([]int, len(live))
	for i, o := range live {
		livePids[i] = o.pid
	}
	if pid, k := CostHot(e.cost, livePids, pol); pid >= 0 && len(e.parts[pid].visibleTrajs()) > 1 {
		return pid, nil, k
	}
	// Cold merge: the coldest partition plus its spatially nearest
	// sibling below the cold bar. Merging raises the mean, which lowers
	// the skew ratio and frees partition slots for future splits.
	bar := pol.MergeFraction * mean
	var coldest *occ
	for i := range live {
		if live[i].bytes < bar && (coldest == nil || live[i].bytes < coldest.bytes) {
			coldest = &live[i]
		}
	}
	if coldest == nil {
		return hot, nil, 0
	}
	var buddy *occ
	bestD := math.Inf(1)
	for i := range live {
		o := &live[i]
		if o.pid == coldest.pid || o.bytes >= bar {
			continue
		}
		d := o.center.Dist(coldest.center)
		if d < bestD {
			buddy, bestD = o, d
		}
	}
	if buddy == nil {
		return hot, nil, 0
	}
	return -1, []int{coldest.pid, buddy.pid}, 0
}
