package dppool

import (
	"sync"
	"testing"
)

func TestClassOf(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 24, maxClassBits - minClassBits},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := classOf(c.n); got != c.want {
			t.Errorf("classOf(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetFloatsLength(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100, 1000} {
		f := GetFloats(n)
		if len(f.S) != n {
			t.Fatalf("GetFloats(%d) len = %d", n, len(f.S))
		}
		f.Release()
	}
}

// TestReuseAcrossWidths verifies a released buffer is found again by a
// different request in the same width class — the mixed-length sharing the
// class rounding exists for.
func TestReuseAcrossWidths(t *testing.T) {
	f := GetFloats(100) // class for cap 128
	ptr := &f.S[0]
	f.Release()
	g := GetFloats(70) // same class
	if &g.S[0] != ptr {
		// Not guaranteed by sync.Pool, but on a single goroutine with no
		// GC in between it holds; a miss is a skip, not a failure.
		t.Skip("pool did not return the same buffer (GC?)")
	}
	if len(g.S) != 70 {
		t.Fatalf("reused buffer has len %d, want 70", len(g.S))
	}
	g.Release()
}

func TestOversizeNotPooled(t *testing.T) {
	n := 1<<24 + 1
	f := GetFloats(n)
	if len(f.S) != n {
		t.Fatalf("oversize len = %d", len(f.S))
	}
	f.Release() // must not panic
	b := GetBools(n)
	if len(b.S) != n {
		t.Fatalf("oversize bools len = %d", len(b.S))
	}
	b.Release()
}

// TestConcurrent hammers the pools from many goroutines with mixed sizes;
// run under -race this is the data-race check for the pool itself.
func TestConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{3, 70, 128, 513, 2000}
			for i := 0; i < 500; i++ {
				n := sizes[(g+i)%len(sizes)]
				f := GetFloats(n)
				for j := range f.S {
					f.S[j] = float64(g)
				}
				for j := range f.S {
					if f.S[j] != float64(g) {
						t.Errorf("buffer shared between goroutines")
						break
					}
				}
				f.Release()
				b := GetBools(n)
				for j := range b.S {
					b.S[j] = true
				}
				b.Release()
			}
		}(g)
	}
	wg.Wait()
}
