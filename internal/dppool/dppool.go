// Package dppool provides pooled scratch buffers for the dynamic-program
// rows the distance kernels (internal/measure, internal/ndim) allocate on
// every call. Verification dominates query time once pruning is done
// (Section 5.3), and a verification-heavy query computes thousands of
// threshold distances; without pooling, every one of them allocates and
// discards its DP rows, so the hot path spends its time in the allocator
// and the GC instead of the kernel.
//
// Buffers are pooled by width class — capacity rounded up to the next
// power of two — so trajectories of mixed lengths share buffers instead of
// fragmenting the pool into one bucket per exact length. Get returns a
// handle whose slice is cut to the requested length; Release returns the
// handle (not a fresh box) to its class pool, so steady-state use performs
// zero allocations. All pools are safe for concurrent use (sync.Pool).
package dppool

import (
	"math/bits"
	"sync"
)

// minClassBits is the smallest pooled capacity (2^6 = 64 elements): below
// that, rounding classes up wastes little and keeps the class count small.
const minClassBits = 6

// maxClassBits caps pooled capacities at 2^24 elements (128 MB of float64
// per buffer); wider requests are allocated directly and dropped on
// Release rather than pinned in the pool forever.
const maxClassBits = 24

// classOf returns the pool index for a capacity request, or -1 when the
// request is too large to pool.
func classOf(n int) int {
	if n < 1 {
		n = 1
	}
	bits := bits.Len(uint(n - 1)) // ceil(log2 n)
	if bits < minClassBits {
		bits = minClassBits
	}
	if bits > maxClassBits {
		return -1
	}
	return bits - minClassBits
}

// Floats is a pooled float64 scratch buffer. The slice S has exactly the
// requested length and arbitrary contents — kernels initialize the cells
// they read, exactly as they would with a fresh make.
type Floats struct {
	S     []float64
	class int
}

var floatPools [maxClassBits - minClassBits + 1]sync.Pool

// GetFloats borrows a float64 buffer of length n.
func GetFloats(n int) *Floats {
	c := classOf(n)
	if c < 0 {
		return &Floats{S: make([]float64, n), class: -1}
	}
	if f, _ := floatPools[c].Get().(*Floats); f != nil {
		f.S = f.S[:cap(f.S)][:n]
		return f
	}
	return &Floats{S: make([]float64, n, 1<<(c+minClassBits)), class: c}
}

// Release returns the buffer to its class pool. The caller must not touch
// f or f.S afterwards.
func (f *Floats) Release() {
	if f.class >= 0 {
		floatPools[f.class].Put(f)
	}
}

// Bools is a pooled bool scratch buffer (the Fréchet reachability DP).
type Bools struct {
	S     []bool
	class int
}

var boolPools [maxClassBits - minClassBits + 1]sync.Pool

// GetBools borrows a bool buffer of length n. Contents are arbitrary.
func GetBools(n int) *Bools {
	c := classOf(n)
	if c < 0 {
		return &Bools{S: make([]bool, n), class: -1}
	}
	if b, _ := boolPools[c].Get().(*Bools); b != nil {
		b.S = b.S[:cap(b.S)][:n]
		return b
	}
	return &Bools{S: make([]bool, n, 1<<(c+minClassBits)), class: c}
}

// Release returns the buffer to its class pool.
func (b *Bools) Release() {
	if b.class >= 0 {
		boolPools[b.class].Put(b)
	}
}
