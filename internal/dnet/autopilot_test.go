package dnet

import (
	"math"
	"testing"
	"time"

	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/obs"
	"dita/internal/traj"
)

// skewedQueries aims n queries at the dataset's first member's geometry
// with a per-query jitter — the read-hotspot workload the autopilot's
// cost signal exists to detect. Every query lands on the partition
// holding that geometry, driving its verify cost far above its siblings.
func skewedQueries(d *traj.Dataset, n int) []*traj.T {
	hot := d.Trajs[0].Points
	out := make([]*traj.T, n)
	for i := range out {
		jit := make([]geom.Point, len(hot))
		off := float64(i) * 1e-7
		for pi, p := range hot {
			jit[pi] = geom.Point{X: p.X + off, Y: p.Y + off}
		}
		out[i] = &traj.T{ID: 900000 + i, Points: jit}
	}
	return out
}

// searchResults runs the workload and returns each query's hits sorted
// by id — the exact-comparison form for the autopilot-on/off contract.
func searchResults(t *testing.T, c *Coordinator, qs []*traj.T, tau float64) [][]SearchHit {
	t.Helper()
	out := make([][]SearchHit, len(qs))
	for i, q := range qs {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		for a := 1; a < len(hits); a++ {
			for b := a; b > 0 && hits[b].ID < hits[b-1].ID; b-- {
				hits[b], hits[b-1] = hits[b-1], hits[b]
			}
		}
		out[i] = hits
	}
	return out
}

// TestReadSpreadAcrossReplicas: with every partition on every worker,
// the rotated replica order must spread repeated reads across the whole
// fleet instead of pinning them to the stable-sort head — the built-in
// hotspot the rotation exists to remove.
func TestReadSpreadAcrossReplicas(t *testing.T) {
	cfg := testConfig()
	cfg.Replicas = 3
	_, _, c := chaosCluster(t, 3, cfg)
	d := gen.Generate(gen.BeijingLike(300, 501))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(d, 8, 502)
	for round := 0; round < 10; round++ {
		for _, q := range qs {
			if _, err := c.Search("trips", q, 0.01); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	minCalls, maxCalls := int64(math.MaxInt64), int64(0)
	for i, s := range stats {
		if s.SearchCalls == 0 {
			t.Fatalf("worker %d served no searches; reads are pinned", i)
		}
		if s.SearchCalls < minCalls {
			minCalls = s.SearchCalls
		}
		if s.SearchCalls > maxCalls {
			maxCalls = s.SearchCalls
		}
	}
	// Strict per-probe rotation over equally-healthy owners is near
	// uniform; 2x leaves room for partition-count remainders.
	if maxCalls > 2*minCalls {
		t.Fatalf("read spread too skewed: per-worker search calls range [%d, %d]", minCalls, maxCalls)
	}
}

// TestReadSpreadFailoverOrdering: rotation only permutes runs of EQUAL
// health — a suspect replica must still sort after every healthy one at
// any tick, preserving live-first failover ordering.
func TestReadSpreadFailoverOrdering(t *testing.T) {
	h := newHealthTracker(3, HealthPolicy{SuspectAfter: 1, DeadAfter: 5})

	// All healthy: every worker leads at some tick.
	leads := map[int]bool{}
	for tick := uint64(0); tick < 6; tick++ {
		ord := h.orderRotated([]int{0, 1, 2}, tick)
		leads[ord[0]] = true
	}
	if len(leads) != 3 {
		t.Fatalf("healthy rotation led with %v, want all of {0,1,2}", leads)
	}

	// Worker 0 suspect: never first, always last, healthy pair rotates.
	h.failure(0, false)
	pairLeads := map[int]bool{}
	for tick := uint64(0); tick < 6; tick++ {
		ord := h.orderRotated([]int{0, 1, 2}, tick)
		if ord[len(ord)-1] != 0 {
			t.Fatalf("tick %d: suspect worker 0 not last: %v", tick, ord)
		}
		pairLeads[ord[0]] = true
	}
	if !pairLeads[1] || !pairLeads[2] {
		t.Fatalf("healthy pair did not rotate: leads %v", pairLeads)
	}

	// Revived: back into the rotation.
	h.success(0)
	leads = map[int]bool{}
	for tick := uint64(0); tick < 6; tick++ {
		leads[h.orderRotated([]int{0, 1, 2}, tick)[0]] = true
	}
	if len(leads) != 3 {
		t.Fatalf("revived rotation led with %v, want all of {0,1,2}", leads)
	}
}

// TestAutopilotSkewedReadDifferential is the acceptance contract: a
// skewed read workload against a live 3-worker cluster with the
// autopilot enabled — and no operator Rebalance/PromoteReplica calls —
// must trigger at least one automatic cutover or replica promotion,
// spread reads across at least two workers, and keep query results
// byte-identical to an autopilot-disabled run over the same data.
func TestAutopilotSkewedReadDifferential(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(240, 511))
	qs := gen.Queries(d, 6, 512)
	hotQs := skewedQueries(d, 12)
	const tau = 0.01

	// Control: same dataset, no autopilot.
	ctrlCfg := testConfig()
	ctrlCfg.Replicas = 2
	_, _, ctrl := chaosCluster(t, 3, ctrlCfg)
	if err := ctrl.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	want := searchResults(t, ctrl, qs, tau)
	wantHot := searchResults(t, ctrl, hotQs, tau)

	cfg := testConfig()
	cfg.Replicas = 2
	reg := obs.New()
	cfg.Obs = reg
	cfg.Autopilot = AutopilotConfig{
		Interval: 15 * time.Millisecond,
		Cooldown: 30 * time.Millisecond,
		// A generous SkewBound and near-zero MergeFraction keep the byte
		// paths quiet so the action below is driven by the read-cost
		// signal the skewed workload writes, not by layout geometry.
		Policy: core.RebalancePolicy{SkewBound: 50, CostBound: 2, MergeFraction: 0.001},
		Logf:   t.Logf,
	}
	_, _, c := chaosCluster(t, 3, cfg)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}

	actions := func() int64 {
		return reg.Counter("coord_autopilot_cutovers_total").Value() +
			reg.Counter("coord_autopilot_promotions_total").Value()
	}
	deadline := time.Now().Add(20 * time.Second)
	for actions() == 0 && time.Now().Before(deadline) {
		for _, q := range hotQs {
			if _, err := c.Search("trips", q, tau); err != nil {
				t.Fatal(err)
			}
		}
	}
	if actions() == 0 {
		t.Fatalf("autopilot took no automatic action under a skewed read workload (ticks=%d)",
			reg.Counter("coord_autopilot_ticks_total").Value())
	}

	// Results must be byte-identical to the autopilot-disabled run.
	for label, pair := range map[string][2][][]SearchHit{
		"uniform": {want, searchResults(t, c, qs, tau)},
		"skewed":  {wantHot, searchResults(t, c, hotQs, tau)},
	} {
		for i := range pair[0] {
			w, g := pair[0][i], pair[1][i]
			if len(w) != len(g) {
				t.Fatalf("%s query %d: %d hits with autopilot, %d without", label, i, len(g), len(w))
			}
			for j := range w {
				if w[j].ID != g[j].ID ||
					math.Float64bits(w[j].Distance) != math.Float64bits(g[j].Distance) {
					t.Fatalf("%s query %d hit %d: (%d,%x) with autopilot, want (%d,%x)",
						label, i, j, g[j].ID, math.Float64bits(g[j].Distance),
						w[j].ID, math.Float64bits(w[j].Distance))
				}
			}
		}
	}

	// The skewed workload's reads must not pin to one worker.
	stats, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, s := range stats {
		if s.SearchCalls > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("reads hit only %d worker(s), want >= 2", busy)
	}

	// The autopilot's cost gauges are published for the live layout.
	found := false
	for name := range reg.Snapshot().FloatGauges {
		if len(name) > len("coord_partition_cost_us_p") &&
			name[:len("coord_partition_cost_us_p")] == "coord_partition_cost_us_p" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no coord_partition_cost_us_p<pid> gauges published")
	}
}
