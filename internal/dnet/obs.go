package dnet

import (
	"strconv"
	"time"

	"dita/internal/core"
	"dita/internal/obs"
)

// QueryStats collects one distributed query's observability: set Trace to
// a live *obs.Trace before the call to receive the coordinator-assembled
// whole-cluster span report; the remaining fields are filled on return.
// Pass nil (or leave Trace nil) to keep the query clock-free apart from
// whatever the coordinator's metrics registry requires.
type QueryStats struct {
	// Trace, when non-nil, receives spans for admission wait, global
	// pruning, every partition/edge RPC (worker address, attempts,
	// remote compute time, partition-local funnel), skips, and the merge.
	Trace *obs.Trace
	// Funnel is the whole-query pruning funnel: global stages measured by
	// the coordinator, local stages summed from the worker replies.
	Funnel obs.Funnel
	// Attempts is the total RPC attempts the query issued, including
	// managed-client retries and replica failovers. Relevant partitions
	// reached on the first try contribute one each.
	Attempts int
	// Failovers is how many replicas were tried beyond the first, summed
	// over partitions (search) or shipment endpoints (join).
	Failovers int
	// AdmissionWait is time spent queued before the query was admitted.
	AdmissionWait time.Duration
	// Elapsed is the whole query, admission included.
	Elapsed time.Duration
}

// coordMetrics is the coordinator's pre-resolved registry handles; nil
// disables recording and the per-query clock reads feeding it.
type coordMetrics struct {
	reg           *obs.Registry
	searches      *obs.Counter
	joins         *obs.Counter
	knns          *obs.Counter
	searchLatency *obs.Histogram
	joinLatency   *obs.Histogram
	knnLatency    *obs.Histogram
	admissionWait *obs.Histogram
	retries       *obs.Counter
	failovers     *obs.Counter
	skips         *obs.Counter
	searchFunnel  *obs.FunnelCounters
	joinFunnel    *obs.FunnelCounters
	knnFunnel     *obs.FunnelCounters
	// Snapshot economy: replica placements satisfied without shipping,
	// and raw payloads released because durable snapshots cover them.
	dispatchReused  *obs.Counter
	payloadsDropped *obs.Counter
	// Streaming ingest: acked upserts, acked deletes, and writes refused
	// by worker backpressure (ErrOverloaded surfaced to the caller).
	ingests        *obs.Counter
	deletes        *obs.Counter
	ingestRejected *obs.Counter
	// Online re-partitioning: completed split/merge cutovers, their
	// wall-clock cost, and the post-cutover occupancy skew.
	rebalances    *obs.Counter
	rebalanceMS   *obs.Histogram
	occupancySkew *obs.FloatGauge
	// Autopilot: planner passes that exhausted the step budget without
	// converging, autopilot ticks, and the automatic actions it took
	// (rebalance cutovers, replica promotions).
	rebalanceNoConverge *obs.Counter
	autopilotTicks      *obs.Counter
	autopilotCutovers   *obs.Counter
	autopilotPromotions *obs.Counter
}

func newCoordMetrics(r *obs.Registry) *coordMetrics {
	if r == nil {
		return nil
	}
	return &coordMetrics{
		reg:                 r,
		searches:            r.Counter("coord_searches_total"),
		joins:               r.Counter("coord_joins_total"),
		knns:                r.Counter("coord_knn_total"),
		searchLatency:       r.Histogram("coord_search_latency_us"),
		joinLatency:         r.Histogram("coord_join_latency_us"),
		knnLatency:          r.Histogram("coord_knn_latency_us"),
		admissionWait:       r.Histogram("coord_admission_wait_us"),
		retries:             r.Counter("coord_rpc_retries_total"),
		failovers:           r.Counter("coord_replica_failovers_total"),
		skips:               r.Counter("coord_partition_skips_total"),
		searchFunnel:        obs.NewFunnelCounters(r, "coord_search_"),
		joinFunnel:          obs.NewFunnelCounters(r, "coord_join_"),
		knnFunnel:           obs.NewFunnelCounters(r, "coord_knn_"),
		dispatchReused:      r.Counter("coord_dispatch_reused_total"),
		payloadsDropped:     r.Counter("coord_payloads_dropped_total"),
		ingests:             r.Counter("coord_ingests_total"),
		deletes:             r.Counter("coord_deletes_total"),
		ingestRejected:      r.Counter("coord_ingest_rejected_total"),
		rebalances:          r.Counter("coord_rebalance_total"),
		rebalanceMS:         r.Histogram("coord_rebalance_ms"),
		occupancySkew:       r.FloatGauge("coord_occupancy_skew"),
		rebalanceNoConverge: r.Counter("coord_rebalance_noconverge_total"),
		autopilotTicks:      r.Counter("coord_autopilot_ticks_total"),
		autopilotCutovers:   r.Counter("coord_autopilot_cutovers_total"),
		autopilotPromotions: r.Counter("coord_autopilot_promotions_total"),
	}
}

// rebalanceObserve records one completed cutover and the dataset's
// post-cutover occupancy skew.
func (m *coordMetrics) rebalanceObserve(d time.Duration, skew float64) {
	if m == nil {
		return
	}
	m.rebalances.Inc()
	m.rebalanceMS.Observe(d.Milliseconds())
	m.occupancySkew.Set(skew)
}

// publishPartitionCosts exports the per-partition read-cost EWMAs as
// coord_partition_cost_us_p<pid> and coord_partition_cost_verified_p<pid>
// float gauges (the registry has flat names, so the pid lands in the
// name like the per-class skip counters). Called from the autopilot tick,
// not the query hot path, so the name-mangled lookups stay off queries.
func (m *coordMetrics) publishPartitionCosts(costs []core.PartitionCost) {
	if m == nil {
		return
	}
	for _, pc := range costs {
		id := strconv.Itoa(pc.Pid)
		m.reg.FloatGauge("coord_partition_cost_us_p" + id).Set(pc.VerifyUS)
		m.reg.FloatGauge("coord_partition_cost_verified_p" + id).Set(pc.Verified)
	}
}

// recordSkip counts one skipped partition, overall and by error class.
// Skips are rare; the per-class registry lookup cost is irrelevant.
func (m *coordMetrics) recordSkip(class string) {
	if m == nil {
		return
	}
	m.skips.Inc()
	if class != "" {
		m.reg.Counter("coord_partition_skips_" + class + "_total").Inc()
	}
}

// recordRetries turns per-query attempt accounting into the retry and
// failover counters: tried is replicas contacted, attempts the total RPC
// attempts across them.
func (m *coordMetrics) recordRetries(attempts, tried int) {
	if m == nil {
		return
	}
	if extra := attempts - tried; extra > 0 {
		m.retries.Add(int64(extra))
	}
	if fo := tried - 1; fo > 0 {
		m.failovers.Add(int64(fo))
	}
}
