package dnet

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dita/internal/admit"
	"dita/internal/core"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/rtree"
	"dita/internal/snap"
	"dita/internal/str"
	"dita/internal/traj"
	"dita/internal/trie"
)

// Config parameterizes a network-mode deployment.
type Config struct {
	// NG is the global grid factor (NG×NG partitions per dataset).
	NG int
	// Trie is the local index configuration (Strategy travels as an int).
	Trie trie.Config
	// Measure names the similarity function.
	Measure MeasureSpec
	// CellD is the verification cell side length; <= 0 derives it from
	// the data extent like the in-process engine.
	CellD float64
	// Replicas is the partition replication factor: each partition is
	// shipped to this many distinct workers (default 2, clamped to the
	// worker count). Searches route to the preferred replica and fail
	// over to the others; when a worker is declared dead its partitions
	// are re-replicated onto survivors from payloads the coordinator
	// retains — the stand-in for Spark's lineage-based recovery.
	Replicas int
	// AllowPartial lets Search/Join return partial results plus an exact
	// report of unreachable partitions when every replica of a partition
	// is down, instead of failing the whole query.
	AllowPartial bool
	// RetainPayloads keeps the raw dispatch payloads in coordinator
	// memory even when enough workers confirmed durable snapshots of a
	// partition. By default the coordinator frees a partition's payload
	// once ≥ Replicas workers hold it durably — healing then pulls the
	// snapshot worker-to-worker (Worker.Replicate) instead of re-shipping
	// from the coordinator. Set this when workers run without snapshot
	// directories but you still want payload-based healing... it is also
	// the escape hatch if snapshot-based healing misbehaves.
	RetainPayloads bool
	// Retry bounds the managed RPC clients (deadline, backoff, attempts).
	Retry RetryPolicy
	// Health configures the failure detector and optional heartbeat loop.
	Health HealthPolicy
	// Admission bounds concurrent Search/Join queries; the zero value
	// (MaxConcurrent <= 0) admits everything. Saturation returns
	// ErrOverloaded instead of queueing work without bound.
	Admission admit.Policy
	// Obs, when non-nil, receives the coordinator's metrics: query
	// counts, latency and admission-wait histograms, retry/failover
	// counters, per-class skip counters, and whole-query pruning funnels
	// (coord_* names). Nil disables recording and the per-query clock
	// reads that feed it.
	Obs *obs.Registry
	// Autopilot, when Interval > 0, runs the rebalancing autopilot: a
	// background loop that watches per-partition read costs and occupancy
	// skew, triggers Rebalance cutovers and read-replica promotions
	// automatically, and backs off when the planner fails to converge.
	Autopilot AutopilotConfig
}

// ErrOverloaded is returned by Search/Join when the admission controller
// is saturated (all slots busy and the wait queue full or timed out).
var ErrOverloaded = admit.ErrOverloaded

// DefaultNetConfig mirrors core.DefaultOptions for the network mode.
func DefaultNetConfig() Config {
	return Config{NG: 4, Trie: trie.DefaultConfig(), Measure: MeasureSpec{Name: "DTW"}}
}

// SkippedPartition identifies one partition a partial query could not
// reach, with the last error seen trying and how much the query spent
// trying: total RPC attempts across every replica (managed-client retries
// included), wall-clock elapsed, and the coarse error class (obs.Classify)
// so operators can tell a timeout storm from a partition of dead workers.
type SkippedPartition struct {
	Dataset   string
	Partition int
	Err       string
	Attempts  int
	Elapsed   time.Duration
	Class     string
}

// PartialReport lists exactly the partitions a query skipped because
// every replica was unreachable. Empty means the result is complete.
type PartialReport struct {
	Skipped []SkippedPartition
}

// Partial reports whether anything was skipped.
func (r *PartialReport) Partial() bool { return r != nil && len(r.Skipped) > 0 }

func (r *PartialReport) err(op string) error {
	s := r.Skipped[0]
	return fmt.Errorf("dnet: %s: %d partition(s) unreachable (first: %s/%d: %s)",
		op, len(r.Skipped), s.Dataset, s.Partition, s.Err)
}

// Coordinator is the network-mode driver: it partitions datasets across
// the workers, keeps the global index (partition MBRs) locally, and fans
// queries out over managed RPC clients with retry, failover, and
// failure detection.
type Coordinator struct {
	cfg     Config
	m       measure.Measure
	clients []*managedClient
	// pings are dedicated per-worker probe connections. Health checks must
	// not share the data connection: a ping deadline tears its connection
	// down, and a large reply in transit can legitimately delay a ping
	// past 2s — severing every in-flight data call on a healthy worker.
	pings  []*managedClient
	addrs  []string
	health *healthTracker
	adm    *admit.Controller
	met    *coordMetrics // nil when Config.Obs is nil

	hbStop   chan struct{}
	hbOnce   sync.Once
	hbClosed sync.WaitGroup

	// readTick drives orderRotated's spreading of reads across
	// equally-healthy replicas; one bump per replica-ordered probe.
	readTick atomic.Uint64

	// Autopilot pacing, keyed by dataset name (stable across the
	// RecoverDataset pointer swap): last action time and consecutive
	// non-convergence count.
	apMu      sync.Mutex
	apLast    map[string]time.Time
	apBackoff map[string]int

	mu       sync.Mutex
	datasets map[string]*dispatchedDataset
}

// dispatchedDataset records where a dataset's partitions live plus the
// global index over their endpoint MBRs. The parts slice only ever
// GROWS, and only under a rebalance cutover (repartitionGroup) holding
// both the group's write locks and mu; partition ids are never reused —
// a split or merge retires the old pids in place (empty bounds, no
// replicas) and appends the pieces at fresh ids, so WAL and snapshot
// filenames, loc entries, and replica lists never alias across layouts.
// Ingest grows a partition's bounds in place (and replaces the R-trees)
// under mu, so query paths read the global index through boundsView,
// never directly.
type dispatchedDataset struct {
	name  string
	parts []dispatchedPartition
	rtF   *rtree.Tree
	rtL   *rtree.Tree

	// mu guards replicas and the partitions' mutable payload fields:
	// replicas[pid] lists the partition's owners (indexes into
	// Coordinator.addrs), preferred first. It also guards the ingest
	// state below and the partitions' mbrF/mbrL/trajs plus the R-trees.
	mu       sync.Mutex
	replicas [][]int

	// Ingest state: loc maps trajectory id → owning partition (routing
	// stickiness for upserts, lookup for deletes); nextSeq[pid] is the
	// last sequence number assigned to the partition (reserved before the
	// RPC, burned on failure); live[pid] is the partition's current
	// visible member count (dispatch size, corrected by acked inserts and
	// deletes) — the occupancy the rebalance planner reads and the term
	// the dataset's visible total sums; mutated records that any write
	// was acked — healing must then never fall back to the stale dispatch
	// payloads.
	loc     map[int]int
	nextSeq []uint64
	live    []int
	mutated bool

	// Epoch counters for cache invalidation (internal/serve).
	// writeMark[pid] counts ACKED writes to the partition — bumped in the
	// post-ack bookkeeping under mu, after the replica fan-out succeeded,
	// unlike nextSeq which advances at reservation time and may be burned
	// by a failed write. boundsEpoch bumps whenever a write grows a
	// partition's MBR (the same writes that call rebuildTreesLocked): a
	// cached answer's touched-partition set is computed from the bounds,
	// so growth can make a partition newly relevant and must invalidate
	// even answers that never touched it.
	writeMark   []uint64
	boundsEpoch uint64

	// pmu[pid] serializes writes to one partition end to end: held from
	// sequence reservation through the replica fan-out and the post-ack
	// bookkeeping. Without it two writes could reserve ordered numbers
	// yet reach the workers out of order, and the workers' monotone
	// dedupe floor would silently drop the lower-seq (acked!) write.
	// Rebalance cutovers hold every group member's pmu across the whole
	// export→load→install sequence, so a quiesced partition stays exactly
	// the exported image until the new layout is installed. The entries
	// are pointers because the slice grows at cutover: a blocked writer
	// re-reads the slice under mu but must keep the mutex it resolved.
	// Each pmu is taken before mu, never while holding it.
	pmu []*sync.Mutex

	// rebalMu serializes rebalance cutovers on this dataset (they lock
	// multiple pmu entries; two concurrent cutovers over overlapping
	// groups would deadlock).
	rebalMu sync.Mutex

	// cost holds the per-partition read-cost EWMAs the query paths feed
	// (verified candidates and partition-probe wall time per query) and
	// the cost-aware planner and autopilot read. Internally synchronized;
	// never nil after construction.
	cost *core.CostTracker
}

// partBounds is one partition's global-index entry as captured by
// boundsView. retired marks a partition replaced by a rebalance cutover:
// its bounds are empty, it owns no data, and every query path must skip
// it — an empty-MBR check alone is NOT enough, because edit-distance
// measures convert an infinite MinDist into a finite edit cost.
type partBounds struct {
	mbrF, mbrL geom.MBR
	trajs      int
	retired    bool
}

// ddView is a query's consistent picture of the dataset's global index.
// The R-tree pointers are safe to use off-lock: ingest replaces the
// trees, never mutates them.
type ddView struct {
	bounds   []partBounds
	rtF, rtL *rtree.Tree
	// visible is the dataset's live member count: dispatch-time totals
	// corrected by the acked inserts and deletes since.
	visible int
}

// boundsView snapshots the global index under the dataset lock.
func (dd *dispatchedDataset) boundsView() ddView {
	dd.mu.Lock()
	defer dd.mu.Unlock()
	v := ddView{bounds: make([]partBounds, len(dd.parts)), rtF: dd.rtF, rtL: dd.rtL}
	for i := range dd.parts {
		p := &dd.parts[i]
		v.bounds[i] = partBounds{mbrF: p.mbrF, mbrL: p.mbrL, trajs: p.trajs, retired: p.retired}
		v.visible += dd.live[i]
	}
	return v
}

type dispatchedPartition struct {
	mbrF, mbrL geom.MBR
	trajs      int
	// retired marks a partition replaced by a rebalance cutover. Its id is
	// never reused; it keeps its slot (empty MBRs, zero trajs, nil
	// replicas) so existing pids, WAL/snapshot names, and loc entries stay
	// unambiguous across layouts. Query, routing, and healing paths all
	// skip it.
	retired bool
	// fingerprint is the partition's content hash (snap.Fingerprint over
	// build options and trajectories) — how the coordinator recognizes a
	// worker already holding this exact partition.
	fingerprint uint64
	// payload is the retained load request, kept so a dead replica can
	// be rebuilt on a surviving worker without re-partitioning. It is
	// released (nil) once enough workers confirm durable snapshots;
	// healing then transfers snapshots worker-to-worker instead. Guarded
	// by the dataset's mu after dispatch.
	payload *LoadArgs
}

// DispatchReport accounts one dispatch: how many partitions the dataset
// has, how many replica loads actually crossed the wire, how many
// placements were satisfied by content the workers already held
// (cold-started from snapshots), and how many raw payloads the
// coordinator could release because durable snapshots cover them.
type DispatchReport struct {
	Partitions      int
	Loads           int
	Reused          int
	PayloadsDropped int
}

// Connect dials the workers and returns a coordinator. If
// cfg.Health.Interval > 0, a background heartbeat loop runs until Close.
func Connect(addrs []string, cfg Config) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dnet: no worker addresses")
	}
	if cfg.NG < 1 {
		cfg.NG = 1
	}
	if cfg.Measure.Name == "" {
		cfg.Measure.Name = "DTW"
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(addrs) {
		cfg.Replicas = len(addrs)
	}
	cfg.Retry = cfg.Retry.withDefaults()
	cfg.Health = cfg.Health.withDefaults()
	m, err := measure.ByName(cfg.Measure.Name, cfg.Measure.Eps, cfg.Measure.Delta)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:       cfg,
		m:         m,
		addrs:     addrs,
		health:    newHealthTracker(len(addrs), cfg.Health),
		adm:       admit.New(cfg.Admission),
		met:       newCoordMetrics(cfg.Obs),
		hbStop:    make(chan struct{}),
		apLast:    map[string]time.Time{},
		apBackoff: map[string]int{},
		datasets:  map[string]*dispatchedDataset{},
	}
	c.adm.Instrument(cfg.Obs, "coord_admit")
	for i, a := range addrs {
		policy := cfg.Retry
		policy.Seed = cfg.Retry.Seed + int64(i) // decorrelate jitter across workers
		mc := newManagedClient(a, policy)
		if _, err := mc.connect(); err != nil {
			mc.Close()
			c.Close()
			return nil, fmt.Errorf("dnet: dialing worker %s: %w", a, err)
		}
		c.clients = append(c.clients, mc)
		c.pings = append(c.pings, newManagedClient(a, policy)) // dials lazily
	}
	if cfg.Health.Interval > 0 {
		c.hbClosed.Add(1)
		go c.heartbeatLoop(cfg.Health.Interval)
	}
	if cfg.Autopilot.Interval > 0 {
		c.cfg.Autopilot = cfg.Autopilot.withDefaults(cfg)
		c.hbClosed.Add(1)
		go c.autopilotLoop(c.cfg.Autopilot.Interval)
	}
	return c, nil
}

// Close stops the heartbeat loop and disconnects from the workers (the
// workers keep running). It is idempotent.
func (c *Coordinator) Close() error {
	c.hbOnce.Do(func() { close(c.hbStop) })
	c.hbClosed.Wait()
	var first error
	for _, cls := range [][]*managedClient{c.clients, c.pings} {
		for _, cl := range cls {
			if cl == nil {
				continue
			}
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

func (c *Coordinator) heartbeatLoop(interval time.Duration) {
	defer c.hbClosed.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			c.CheckHealth()
		}
	}
}

// replicaOwners places partition pid on r distinct workers out of w:
// primary round-robin by pid, backups on the following workers.
func replicaOwners(pid, r, w int) []int {
	owners := make([]int, 0, r)
	for i := 0; i < r; i++ {
		owners = append(owners, (pid+i)%w)
	}
	return owners
}

// Dispatch partitions the dataset (first/last STR, Section 4.2.1), ships
// each partition to Replicas distinct workers, and has the workers index
// them. The name identifies the dataset in later Search/Join calls. On
// partial failure every partition already shipped is unloaded, so a
// retried Dispatch cannot double-index data.
func (c *Coordinator) Dispatch(name string, d *traj.Dataset) error {
	_, err := c.DispatchStats(name, d)
	return err
}

// workerInventories asks every worker what it holds, concurrently. A
// worker that fails the call simply reports nothing — dispatch then ships
// it everything, which is always safe.
func (c *Coordinator) workerInventories() []map[partKey]InventoryPart {
	inv := make([]map[partKey]InventoryPart, len(c.clients))
	var wg sync.WaitGroup
	for i := range c.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply InventoryReply
			if err := c.clients[i].CallOnce("Worker.Inventory", &InventoryArgs{}, &reply, c.cfg.Retry.CallTimeout); err != nil {
				return
			}
			inv[i] = make(map[partKey]InventoryPart, len(reply.Parts))
			for _, p := range reply.Parts {
				inv[i][partKey{p.Dataset, p.Partition}] = p
			}
		}(i)
	}
	wg.Wait()
	return inv
}

// DispatchStats is Dispatch plus the shipping report. Before loading, the
// coordinator asks each worker what it already holds (Worker.Inventory);
// replica placements whose (dataset, partition, fingerprint) match are
// reused without re-shipping or re-indexing — the cold-start fast path.
// After a fully successful dispatch, partitions durably snapshotted on at
// least Replicas workers have their raw payloads released (unless
// Config.RetainPayloads), shrinking coordinator memory; healing for those
// partitions transfers snapshots between workers.
func (c *Coordinator) DispatchStats(name string, d *traj.Dataset) (*DispatchReport, error) {
	if d == nil || d.Len() == 0 {
		return nil, fmt.Errorf("dnet: empty dataset %q", name)
	}
	cellD := c.cfg.CellD
	if cellD <= 0 {
		cellD = defaultCellD(d)
	}
	opts := snap.BuildOptions{
		Measure:  c.cfg.Measure.Name,
		Eps:      c.cfg.Measure.Eps,
		Delta:    c.cfg.Measure.Delta,
		K:        c.cfg.Trie.K,
		NLAlign:  c.cfg.Trie.NLAlign,
		NLPivot:  c.cfg.Trie.NLPivot,
		MinNode:  c.cfg.Trie.MinNode,
		Strategy: int(c.cfg.Trie.Strategy),
		CellD:    cellD,
	}
	dd := &dispatchedDataset{name: name, loc: map[int]int{}, cost: core.NewCostTracker()}
	trajs := d.Trajs
	firsts := make([]geom.Point, len(trajs))
	for i, t := range trajs {
		firsts[i] = t.First()
	}
	type loadCall struct {
		worker int
		args   *LoadArgs
	}
	var calls []loadCall
	rep := &DispatchReport{}
	// held[pid] counts owners that already hold the partition durably;
	// seqFloor[pid] is the highest ingest sequence any worker reports for
	// the partition — a restarted coordinator must assign numbers past it
	// or workers would dedupe fresh writes as retransmissions.
	var durable []int
	var seqFloor []uint64
	inv := c.workerInventories()
	for _, bucket := range str.Tile(firsts, c.cfg.NG) {
		if len(bucket) == 0 {
			continue
		}
		lasts := make([]geom.Point, len(bucket))
		for j, i := range bucket {
			lasts[j] = trajs[i].Last()
		}
		for _, sub := range str.Tile(lasts, c.cfg.NG) {
			// Zero-trajectory sub-buckets would pollute the global
			// R-trees with empty MBRs and cost a useless RPC; skip them.
			if len(sub) == 0 {
				continue
			}
			pid := len(dd.parts)
			args := &LoadArgs{
				Dataset:   name,
				Partition: pid,
				Measure:   c.cfg.Measure,
				K:         c.cfg.Trie.K,
				NLAlign:   c.cfg.Trie.NLAlign,
				NLPivot:   c.cfg.Trie.NLPivot,
				MinNode:   c.cfg.Trie.MinNode,
				Strategy:  int(c.cfg.Trie.Strategy),
				CellD:     cellD,
			}
			mbrF, mbrL := geom.EmptyMBR(), geom.EmptyMBR()
			members := make([]*traj.T, 0, len(sub))
			for _, k := range sub {
				t := trajs[bucket[k]]
				args.Trajs = append(args.Trajs, WireTrajectory{ID: t.ID, Points: t.Points})
				members = append(members, t)
				mbrF = mbrF.Extend(t.First())
				mbrL = mbrL.Extend(t.Last())
				dd.loc[t.ID] = pid
			}
			args.Fingerprint = snap.Fingerprint(opts, members)
			owners := replicaOwners(pid, c.cfg.Replicas, len(c.clients))
			dd.parts = append(dd.parts, dispatchedPartition{
				mbrF: mbrF, mbrL: mbrL,
				trajs: len(args.Trajs), fingerprint: args.Fingerprint, payload: args,
			})
			dd.replicas = append(dd.replicas, owners)
			durable = append(durable, 0)
			seqFloor = append(seqFloor, 0)
			// Every worker's inventory raises the sequence floor, owner or
			// not — a copy left behind by healing still pins numbers its
			// dedupe floor would swallow.
			for w := range inv {
				if held, ok := inv[w][partKey{name, pid}]; ok && held.LastSeq > seqFloor[pid] {
					seqFloor[pid] = held.LastSeq
				}
			}
			for _, w := range owners {
				if held, ok := inv[w][partKey{name, pid}]; ok && held.Fingerprint == args.Fingerprint {
					// The worker already holds exactly this content
					// (cold-started from a snapshot, or surviving from an
					// earlier dispatch): nothing to ship.
					rep.Reused++
					if held.Snapshotted {
						durable[pid]++
					}
					continue
				}
				calls = append(calls, loadCall{w, args})
			}
		}
	}
	rep.Partitions = len(dd.parts)
	rep.Loads = len(calls)
	// Load all replicas concurrently through the managed clients
	// (net/rpc multiplexes on one connection per worker).
	errs := make([]error, len(calls))
	replies := make([]LoadReply, len(calls))
	var wg sync.WaitGroup
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call loadCall) {
			defer wg.Done()
			errs[i] = c.clients[call.worker].Call("Worker.Load", call.args, &replies[i])
		}(i, call)
	}
	wg.Wait()
	var firstErr error
	for _, err := range errs {
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		// Roll back: unload every partition that did land, best-effort,
		// so a retried Dispatch starts from a clean slate. Reused
		// partitions are left in place — they predate this dispatch and
		// will be reused again by the retry.
		var uwg sync.WaitGroup
		for i, call := range calls {
			if errs[i] != nil {
				continue
			}
			uwg.Add(1)
			go func(call loadCall) {
				defer uwg.Done()
				var reply UnloadReply
				args := &UnloadArgs{Dataset: call.args.Dataset, Partition: call.args.Partition}
				c.clients[call.worker].CallOnce("Worker.Unload", args, &reply, c.cfg.Retry.CallTimeout)
			}(call)
		}
		uwg.Wait()
		return nil, firstErr
	}
	for i, call := range calls {
		if replies[i].Snapshotted {
			durable[call.args.Partition]++
		}
	}
	if !c.cfg.RetainPayloads {
		// Partitions durable on a full replica set no longer need their
		// raw payload in coordinator memory: healing can pull the
		// snapshot from a surviving replica (Worker.Replicate).
		for pid := range dd.parts {
			if durable[pid] >= c.cfg.Replicas {
				dd.parts[pid].payload = nil
				rep.PayloadsDropped++
			}
		}
	}
	dd.nextSeq = seqFloor
	dd.pmu = make([]*sync.Mutex, len(dd.parts))
	dd.live = make([]int, len(dd.parts))
	for pid := range dd.parts {
		dd.pmu[pid] = new(sync.Mutex)
		dd.live[pid] = dd.parts[pid].trajs
	}
	dd.writeMark = make([]uint64, len(dd.parts))
	rebuildTreesLocked(dd)
	c.mu.Lock()
	c.datasets[name] = dd
	c.mu.Unlock()
	if c.met != nil {
		c.met.dispatchReused.Add(int64(rep.Reused))
		c.met.payloadsDropped.Add(int64(rep.PayloadsDropped))
	}
	return rep, nil
}

func (c *Coordinator) dataset(name string) (*dispatchedDataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dd, ok := c.datasets[name]
	if !ok {
		return nil, fmt.Errorf("dnet: dataset %q not dispatched", name)
	}
	return dd, nil
}

// replicaOrder copies a partition's replica list (under the lock healing
// takes to rewrite it) and orders it live-first, rotating each run of
// equally-healthy replicas so repeated reads spread across them instead
// of pinning every probe for a partition to the same first live worker.
// Failover ordering is preserved: suspect replicas still come after
// every healthy one, dead ones last.
func (c *Coordinator) replicaOrder(dd *dispatchedDataset, pid int) []int {
	dd.mu.Lock()
	ws := append([]int(nil), dd.replicas[pid]...)
	dd.mu.Unlock()
	return c.health.orderRotated(ws, c.readTick.Add(1))
}

// relevantPartitions mirrors the engine's global pruning for the
// dispatched dataset: the R-trees narrow the candidates for anchored
// measures, the measure-aware check decides. It works on a boundsView
// snapshot so concurrent ingests (which grow bounds in place) can't
// tear a partition's MBR pair mid-read.
func (c *Coordinator) relevantPartitions(v ddView, q []geom.Point, tau float64) []int {
	var out []int
	if c.m.AlignsEndpoints() {
		inF := map[int]bool{}
		for _, e := range v.rtF.WithinDist(q[0], tau, nil) {
			inF[e.ID] = true
		}
		for _, e := range v.rtL.WithinDist(q[len(q)-1], tau, nil) {
			if !inF[e.ID] {
				continue
			}
			p := v.bounds[e.ID]
			// Retired partitions are absent from the rebuilt trees, but a
			// view captured mid-cutover may still pair older trees with
			// newer bounds; the explicit check keeps the path airtight.
			if p.retired {
				continue
			}
			if core.TrajRelevant(c.m, q, p.mbrF, p.mbrL, tau) {
				out = append(out, e.ID)
			}
		}
		sort.Ints(out)
		return out
	}
	for i, p := range v.bounds {
		// Skip retired explicitly: edit-distance measures turn the empty
		// MBR's +Inf MinDist into a finite edit cost, so TrajRelevant can
		// pass on a partition that owns nothing.
		if p.retired {
			continue
		}
		if core.TrajRelevant(c.m, q, p.mbrF, p.mbrL, tau) {
			out = append(out, i)
		}
	}
	return out
}

// Search fans the query out to the workers owning relevant partitions
// and merges the verified hits (ascending id). Per partition it routes
// to the preferred live replica and fails over to the others; with
// AllowPartial unreachable partitions are skipped (SearchPartial exposes
// the report), otherwise they fail the query.
func (c *Coordinator) Search(name string, q *traj.T, tau float64) ([]SearchHit, error) {
	hits, _, err := c.SearchPartialContext(context.Background(), name, q, tau)
	return hits, err
}

// SearchContext is Search under query-lifecycle control: the query passes
// admission control, a cancelled context aborts remaining replica
// attempts and drains the fan-out, and a context deadline travels to the
// workers in-band so remote work stops when the query's budget runs out.
func (c *Coordinator) SearchContext(ctx context.Context, name string, q *traj.T, tau float64) ([]SearchHit, error) {
	hits, _, err := c.SearchPartialContext(ctx, name, q, tau)
	return hits, err
}

// SearchPartial is Search plus the partial-result report: the returned
// report lists exactly the partitions whose every replica was
// unreachable. Without AllowPartial a non-empty report is an error.
func (c *Coordinator) SearchPartial(name string, q *traj.T, tau float64) ([]SearchHit, *PartialReport, error) {
	return c.SearchPartialContext(context.Background(), name, q, tau)
}

// remainingMillis converts a context deadline into the in-band budget
// stamped on worker calls; 0 means unbounded. An already-expired deadline
// still sends 1ms — the caller's next ctx check aborts before the call.
func remainingMillis(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	rem := time.Until(dl).Milliseconds()
	if rem < 1 {
		rem = 1
	}
	return rem
}

// cutoverReplans bounds how many times one query re-plans after losing
// the race with a concurrent rebalance cutover (its pinned view named a
// partition that retired before the probe landed). Each re-plan reads a
// strictly newer layout, so more than a few only happen under continuous
// cutover churn — then the query reports the skips like any other.
const cutoverReplans = 3

// allSkippedRetired reports whether every partition the query skipped is
// now retired — the signature of probes racing a cutover rather than of
// unreachable workers, and the trigger for a re-plan against the fresh
// layout (the moved trajectories are all serveable there).
func (c *Coordinator) allSkippedRetired(dd *dispatchedDataset, rep *PartialReport) bool {
	if !rep.Partial() {
		return false
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	for _, s := range rep.Skipped {
		if s.Partition < 0 || s.Partition >= len(dd.parts) || !dd.parts[s.Partition].retired {
			return false
		}
	}
	return true
}

// SearchPartialContext is SearchContext plus the partial-result report.
// Cancellation is never partial: a done context fails the query with
// ctx.Err() after the fan-out goroutines drain.
func (c *Coordinator) SearchPartialContext(ctx context.Context, name string, q *traj.T, tau float64) ([]SearchHit, *PartialReport, error) {
	return c.SearchTraced(ctx, name, q, tau, nil)
}

// SearchTraced is SearchPartialContext plus per-query observability: qs
// (may be nil) receives the whole-query pruning funnel, attempt/failover
// totals and timings, and — when qs.Trace is set — a coordinator-assembled
// trace with one span per partition RPC (worker address, attempts
// including retries and failovers, remote compute time, partition-local
// funnel), plus admission, global-prune, skip, and merge spans.
func (c *Coordinator) SearchTraced(ctx context.Context, name string, q *traj.T, tau float64, qs *QueryStats) ([]SearchHit, *PartialReport, error) {
	report := &PartialReport{}
	if q == nil || len(q.Points) == 0 {
		return nil, report, ctx.Err()
	}
	var tr *obs.Trace
	if qs != nil {
		tr = qs.Trace
	}
	timed := qs != nil || c.met != nil
	var qStart time.Time
	if timed {
		qStart = time.Now()
	}
	release, err := c.adm.Acquire(ctx)
	if timed {
		wait := time.Since(qStart)
		if qs != nil {
			qs.AdmissionWait = wait
		}
		if c.met != nil {
			c.met.admissionWait.Observe(wait.Microseconds())
		}
		if tr != nil {
			s := obs.Span{Name: "admit", Partition: -1, Start: qStart.Sub(tr.Begin), Duration: wait}
			if err != nil {
				s.Err, s.Class = err.Error(), obs.Classify(err)
			}
			tr.Add(s)
		}
	}
	if err != nil {
		return nil, report, err
	}
	defer release()
	dd, err := c.dataset(name)
	if err != nil {
		return nil, report, err
	}
	// A rebalance cutover can retire partitions between this query's view
	// pin and its partition probes: the probes then fail on every replica
	// ("not loaded" — the former owners unloaded the retired pid) even
	// though no worker is unhealthy and every moved trajectory is
	// serveable in the fresh layout. When ALL skipped partitions turn out
	// retired, the failure is staleness, not health: re-plan against the
	// current view, bounded in case cutovers keep landing mid-query. With
	// the autopilot triggering cutovers on its own schedule this race is
	// routine, not an operator-window corner case.
	var out []SearchHit
	var funnel obs.Funnel
	var totalAttempts, totalFailovers int
	for attempt := 0; ; attempt++ {
		out = nil
		report = &PartialReport{}
		var gStart time.Time
		if timed {
			gStart = time.Now()
		}
		rel := c.relevantPartitions(dd.boundsView(), q.Points, tau)
		funnel = obs.Funnel{Partitions: int64(len(dd.parts)), Relevant: int64(len(rel))}
		if tr != nil {
			gf := funnel
			tr.Add(obs.Span{Name: "global-prune", Partition: -1,
				Start: gStart.Sub(tr.Begin), Duration: time.Since(gStart), Funnel: &gf})
		}
		replies := make([]SearchReply, len(rel))
		skipped := make([]*SkippedPartition, len(rel))
		attempts := make([]int, len(rel))
		tried := make([]int, len(rel))
		var wg sync.WaitGroup
		for i, pid := range rel {
			wg.Add(1)
			go func(i, pid int) {
				defer wg.Done()
				// Unconditional: a clock read is noise next to the RPC it
				// brackets, and skip reports must carry timing even with
				// observability off.
				pStart := time.Now()
				args := &SearchArgs{Dataset: name, Partition: pid, Query: q.Points, Tau: tau}
				if tr != nil {
					args.TraceID, args.SpanID = tr.ID, obs.NewTraceID()
				}
				var lastErr error
				for _, w := range c.replicaOrder(dd, pid) {
					// A dead query must not burn failover attempts: the check
					// runs before every replica, so deadline expiry on one
					// worker cancels the remaining attempts instead of
					// retrying them.
					if err := ctx.Err(); err != nil {
						lastErr = err
						break
					}
					args.TimeoutMillis = remainingMillis(ctx)
					replies[i] = SearchReply{}
					tried[i]++
					n, err := c.clients[w].CallContextN(ctx, "Worker.Search", args, &replies[i])
					attempts[i] += n
					if err != nil {
						lastErr = err
						if ctx.Err() != nil {
							// Cancelled mid-call: not the worker's fault, so
							// no health verdict either way.
							break
						}
						if retryableError(err) {
							c.health.failure(w, false)
						} else {
							// An application error is proof of life: the
							// worker answered, it just can't serve this
							// partition. Don't deprioritize it.
							c.health.success(w)
						}
						continue
					}
					c.health.success(w)
					// Feed the autopilot's cost signal: this partition's share of
					// the query, as verified candidates and probe wall time.
					dd.cost.Observe(pid, replies[i].Funnel.Verified, time.Since(pStart))
					if tr != nil {
						f := replies[i].Funnel
						tr.Add(obs.Span{Name: "partition-search", Worker: c.addrs[w],
							Partition: pid, Attempts: attempts[i],
							Start: pStart.Sub(tr.Begin), Duration: time.Since(pStart),
							Remote: time.Duration(replies[i].ElapsedMicros) * time.Microsecond,
							Funnel: &f})
					}
					return
				}
				if lastErr == nil {
					// Healing can drain a replica list to empty (Replicas=1,
					// or every re-load still failing): nothing to even try.
					lastErr = fmt.Errorf("dnet: no replicas for partition %s/%d", name, pid)
				}
				elapsed := time.Since(pStart)
				skipped[i] = &SkippedPartition{Dataset: name, Partition: pid, Err: lastErr.Error(),
					Attempts: attempts[i], Elapsed: elapsed, Class: obs.Classify(lastErr)}
				if tr != nil {
					tr.Add(obs.Span{Name: "partition-search", Partition: pid,
						Attempts: attempts[i], Start: pStart.Sub(tr.Begin), Duration: elapsed,
						Err: lastErr.Error(), Class: obs.Classify(lastErr)})
				}
			}(i, pid)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, report, err
		}
		mergeDone := tr.StartSpan("merge", -1)
		for i := range rel {
			c.met.recordRetries(attempts[i], tried[i])
			totalAttempts += attempts[i]
			if tried[i] > 1 {
				totalFailovers += tried[i] - 1
			}
			if skipped[i] != nil {
				report.Skipped = append(report.Skipped, *skipped[i])
				c.met.recordSkip(skipped[i].Class)
				continue
			}
			funnel.Merge(replies[i].Funnel)
			out = append(out, replies[i].Hits...)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		mergeDone(nil)
		if report.Partial() && attempt < cutoverReplans && c.allSkippedRetired(dd, report) {
			continue
		}
		break
	}
	if timed {
		elapsed := time.Since(qStart)
		if qs != nil {
			qs.Funnel = funnel
			qs.Elapsed = elapsed
			qs.Attempts = totalAttempts
			qs.Failovers = totalFailovers
		}
		if c.met != nil {
			c.met.searches.Inc()
			c.met.searchLatency.Observe(elapsed.Microseconds())
			c.met.searchFunnel.Record(funnel)
		}
	}
	if report.Partial() && !c.cfg.AllowPartial {
		return nil, report, report.err(fmt.Sprintf("search %q", name))
	}
	return out, report, nil
}

// isPeerUnreachable detects the Ship-side signal for "the destination
// worker is down" so the coordinator fails over to another dst replica
// rather than another src replica. Only an rpc.ServerError that starts
// with the exact prefix Worker.Ship emits (peerUnreachablePrefix,
// worker.go) qualifies — never a substring match, which an unrelated
// application error mentioning the phrase could trip.
func isPeerUnreachable(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.HasPrefix(string(se), peerUnreachablePrefix)
}

// Join computes the distributed similarity join between two dispatched
// datasets. For every candidate partition pair (by endpoint-MBR tests),
// a live replica of the source partition selects and ships its relevant
// trajectories directly to a live replica of the destination partition,
// which runs the local join; pairs flow back through the chain. The
// cheaper direction is chosen per edge by partition size (a size-proxy
// of the paper's cost model; the full sampled model lives in the
// in-process engine). Replica failover applies on both ends of each
// shipment.
func (c *Coordinator) Join(left, right string, tau float64) ([]WirePair, error) {
	pairs, _, err := c.JoinPartialContext(context.Background(), left, right, tau)
	return pairs, err
}

// JoinContext is Join under query-lifecycle control: admission, prompt
// cancellation of the per-edge fan-out, and deadline propagation through
// both hops of each shipment (source selection and destination join).
func (c *Coordinator) JoinContext(ctx context.Context, left, right string, tau float64) ([]WirePair, error) {
	pairs, _, err := c.JoinPartialContext(ctx, left, right, tau)
	return pairs, err
}

// JoinPartial is Join plus the partial-result report: skipped entries
// name exactly the partitions whose every replica was unreachable for
// some shipment. Without AllowPartial a non-empty report is an error.
func (c *Coordinator) JoinPartial(left, right string, tau float64) ([]WirePair, *PartialReport, error) {
	return c.JoinPartialContext(context.Background(), left, right, tau)
}

// JoinPartialContext is JoinContext plus the partial-result report.
// Cancellation is never partial: a done context fails the join with
// ctx.Err() after the fan-out goroutines drain.
func (c *Coordinator) JoinPartialContext(ctx context.Context, left, right string, tau float64) ([]WirePair, *PartialReport, error) {
	return c.JoinTraced(ctx, left, right, tau, nil)
}

// JoinTraced is JoinPartialContext plus per-query observability, the join
// analogue of SearchTraced: one span per shipment edge (source worker,
// attempts across both replica loops, whole-shipment remote time,
// destination-local funnel), plus admission, global-prune, and merge
// spans. In the funnel, Partitions counts possible partition pairs and
// Relevant the bigraph edges that survived MBR pruning.
func (c *Coordinator) JoinTraced(ctx context.Context, left, right string, tau float64, qs *QueryStats) ([]WirePair, *PartialReport, error) {
	report := &PartialReport{}
	var tr *obs.Trace
	if qs != nil {
		tr = qs.Trace
	}
	timed := qs != nil || c.met != nil
	var qStart time.Time
	if timed {
		qStart = time.Now()
	}
	release, err := c.adm.Acquire(ctx)
	if timed {
		wait := time.Since(qStart)
		if qs != nil {
			qs.AdmissionWait = wait
		}
		if c.met != nil {
			c.met.admissionWait.Observe(wait.Microseconds())
		}
		if tr != nil {
			s := obs.Span{Name: "admit", Partition: -1, Start: qStart.Sub(tr.Begin), Duration: wait}
			if err != nil {
				s.Err, s.Class = err.Error(), obs.Classify(err)
			}
			tr.Add(s)
		}
	}
	if err != nil {
		return nil, report, err
	}
	defer release()
	lt, err := c.dataset(left)
	if err != nil {
		return nil, report, err
	}
	rt, err := c.dataset(right)
	if err != nil {
		return nil, report, err
	}
	var gStart time.Time
	if timed {
		gStart = time.Now()
	}
	type edge struct {
		src, dst         int // partition ids in their datasets
		srcName, dstName string
		flip             bool
		// Destination bounds, captured at plan time so concurrent ingests
		// growing them can't tear the relevance check on the workers.
		dstMBRf, dstMBRl geom.MBR
	}
	var edges []edge
	anchored := c.m.AlignsEndpoints()
	maxForm := c.m.Accumulation() == measure.AccumMax
	ltV, rtV := lt.boundsView(), rt.boundsView()
	for i, pt := range ltV.bounds {
		if pt.retired {
			continue
		}
		for j, pq := range rtV.bounds {
			if pq.retired {
				continue
			}
			if anchored {
				df := pt.mbrF.MinDistMBR(pq.mbrF)
				dl := pt.mbrL.MinDistMBR(pq.mbrL)
				if maxForm {
					if df > tau || dl > tau {
						continue
					}
				} else if df+dl > tau {
					continue
				}
			}
			// Orientation: ship the smaller side.
			if pt.trajs <= pq.trajs {
				edges = append(edges, edge{src: i, dst: j, srcName: left, dstName: right, flip: false,
					dstMBRf: pq.mbrF, dstMBRl: pq.mbrL})
			} else {
				edges = append(edges, edge{src: j, dst: i, srcName: right, dstName: left, flip: true,
					dstMBRf: pt.mbrF, dstMBRl: pt.mbrL})
			}
		}
	}
	if tr != nil {
		gf := obs.Funnel{Partitions: int64(len(lt.parts)) * int64(len(rt.parts)), Relevant: int64(len(edges))}
		tr.Add(obs.Span{Name: "global-prune", Partition: -1,
			Start: gStart.Sub(tr.Begin), Duration: time.Since(gStart), Funnel: &gf})
	}
	funnel := obs.Funnel{Partitions: int64(len(lt.parts)) * int64(len(rt.parts)), Relevant: int64(len(edges))}
	replies := make([]JoinReply, len(edges))
	skipped := make([]*SkippedPartition, len(edges))
	attempts := make([]int, len(edges))
	tried := make([]int, len(edges))
	var wg sync.WaitGroup
	for i, ed := range edges {
		wg.Add(1)
		go func(i int, ed edge) {
			defer wg.Done()
			// Unconditional, like the search fan-out: skip reports carry
			// timing even with observability off.
			eStart := time.Now()
			srcDD, dstDD := lt, rt
			if ed.flip {
				srcDD, dstDD = rt, lt
			}
			args := &ShipArgs{
				SrcDataset:   ed.srcName,
				SrcPartition: ed.src,
				DstDataset:   ed.dstName,
				DstPartition: ed.dst,
				DstMBRf:      ed.dstMBRf,
				DstMBRl:      ed.dstMBRl,
				Tau:          tau,
				Flip:         ed.flip,
			}
			if tr != nil {
				args.TraceID, args.SpanID = tr.ID, obs.NewTraceID()
			}
			var lastErr error
			srcReached := false
			for _, sw := range c.replicaOrder(srcDD, ed.src) {
				if err := ctx.Err(); err != nil {
					lastErr = err
					break
				}
				dstDown := false
				for _, dw := range c.replicaOrder(dstDD, ed.dst) {
					// Same rule as the search fan-out: a dead query stops
					// consuming replica attempts immediately.
					if err := ctx.Err(); err != nil {
						lastErr = err
						break
					}
					args.DstAddr = c.addrs[dw]
					args.TimeoutMillis = remainingMillis(ctx)
					replies[i] = JoinReply{}
					tried[i]++
					n, err := c.clients[sw].CallContextN(ctx, "Worker.Ship", args, &replies[i])
					attempts[i] += n
					if err == nil {
						c.health.success(sw)
						if tr != nil {
							f := replies[i].Funnel
							tr.Add(obs.Span{Name: "edge-join",
								Worker:    c.addrs[sw] + ">" + c.addrs[dw],
								Partition: ed.dst, Attempts: attempts[i],
								Start: eStart.Sub(tr.Begin), Duration: time.Since(eStart),
								Remote: time.Duration(replies[i].ElapsedMicros) * time.Microsecond,
								Funnel: &f})
						}
						return
					}
					lastErr = err
					if ctx.Err() != nil {
						break
					}
					if isPeerUnreachable(err) {
						// The src worker answered; the dst replica is
						// down. Try the next dst replica.
						srcReached = true
						c.health.failure(dw, false)
						dstDown = true
						continue
					}
					if retryableError(err) {
						// The src replica itself failed at the transport
						// level; move on to the next src replica.
						c.health.failure(sw, false)
					} else {
						// Application-level refusal: the src worker is
						// alive, it just can't serve this partition. Try
						// the next src replica without penalizing it.
						c.health.success(sw)
					}
					break
				}
				if dstDown && srcReached {
					// Every dst replica refused this reachable src;
					// other src replicas would see the same thing.
					break
				}
			}
			if lastErr == nil {
				// A replica list was drained to empty by healing, so the
				// loops had nothing to try. Attribute the side with no
				// replicas left.
				if len(c.replicaOrder(dstDD, ed.dst)) == 0 && len(c.replicaOrder(srcDD, ed.src)) > 0 {
					srcReached = true
					lastErr = fmt.Errorf("dnet: no replicas for partition %s/%d", ed.dstName, ed.dst)
				} else {
					lastErr = fmt.Errorf("dnet: no replicas for partition %s/%d", ed.srcName, ed.src)
				}
			}
			elapsed := time.Since(eStart)
			class := obs.Classify(lastErr)
			// Attribute the skip: if no src replica ever answered, the
			// src partition is down; otherwise the dst partition is.
			if srcReached {
				skipped[i] = &SkippedPartition{Dataset: ed.dstName, Partition: ed.dst, Err: lastErr.Error(),
					Attempts: attempts[i], Elapsed: elapsed, Class: class}
			} else {
				skipped[i] = &SkippedPartition{Dataset: ed.srcName, Partition: ed.src, Err: lastErr.Error(),
					Attempts: attempts[i], Elapsed: elapsed, Class: class}
			}
			if tr != nil {
				tr.Add(obs.Span{Name: "edge-join", Partition: ed.dst,
					Attempts: attempts[i], Start: eStart.Sub(tr.Begin), Duration: elapsed,
					Err: lastErr.Error(), Class: class})
			}
		}(i, ed)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, report, err
	}
	mergeDone := tr.StartSpan("merge", -1)
	var pairs []WirePair
	seen := map[SkippedPartition]bool{}
	for i := range edges {
		c.met.recordRetries(attempts[i], tried[i])
		if skipped[i] != nil {
			key := SkippedPartition{Dataset: skipped[i].Dataset, Partition: skipped[i].Partition}
			if !seen[key] {
				seen[key] = true
				report.Skipped = append(report.Skipped, *skipped[i])
				c.met.recordSkip(skipped[i].Class)
			}
			continue
		}
		funnel.Merge(replies[i].Funnel)
		pairs = append(pairs, replies[i].Pairs...)
	}
	sort.Slice(report.Skipped, func(a, b int) bool {
		if report.Skipped[a].Dataset != report.Skipped[b].Dataset {
			return report.Skipped[a].Dataset < report.Skipped[b].Dataset
		}
		return report.Skipped[a].Partition < report.Skipped[b].Partition
	})
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].TID != pairs[b].TID {
			return pairs[a].TID < pairs[b].TID
		}
		return pairs[a].QID < pairs[b].QID
	})
	mergeDone(nil)
	if timed {
		elapsed := time.Since(qStart)
		if qs != nil {
			qs.Funnel = funnel
			qs.Elapsed = elapsed
			for i := range edges {
				qs.Attempts += attempts[i]
				if tried[i] > 1 {
					qs.Failovers += tried[i] - 1
				}
			}
		}
		if c.met != nil {
			c.met.joins.Inc()
			c.met.joinLatency.Observe(elapsed.Microseconds())
			c.met.joinFunnel.Record(funnel)
		}
	}
	if report.Partial() && !c.cfg.AllowPartial {
		return nil, report, report.err(fmt.Sprintf("join %q⋈%q", left, right))
	}
	return pairs, report, nil
}

// CheckHealth probes every worker once (Worker.Ping over the dedicated
// ping connections, with the policy's ping deadline) and advances the
// failure detector. Workers crossing into Dead are dropped from every
// replica list; then every under-replicated partition — from this death
// or any earlier heal that failed — is re-replicated onto survivors from
// the retained payloads. It returns the post-check states, indexed like
// the worker address list. The heartbeat loop calls this on an interval;
// tests and operators can call it directly.
func (c *Coordinator) CheckHealth() []WorkerState {
	ok := make([]bool, len(c.pings))
	var wg sync.WaitGroup
	for i := range c.pings {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var reply PingReply
			err := c.pings[i].CallOnce("Worker.Ping", &PingArgs{}, &reply, c.cfg.Health.PingTimeout)
			ok[i] = err == nil
		}(i)
	}
	wg.Wait()
	var died []int
	for i, alive := range ok {
		if alive {
			c.health.success(i)
		} else if c.health.failure(i, true) {
			died = append(died, i)
		}
	}
	for _, w := range died {
		c.removeWorker(w)
	}
	// Healing runs on every check, not just on a death transition, so a
	// re-replication Load that failed last time is retried on the next
	// tick instead of staying under-replicated until another worker dies.
	c.rereplicate()
	return c.health.snapshot()
}

// WorkerStates returns the failure detector's current view.
func (c *Coordinator) WorkerStates() []WorkerState { return c.health.snapshot() }

// lockedDatasets snapshots the dispatched-dataset list.
func (c *Coordinator) lockedDatasets() []*dispatchedDataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	dds := make([]*dispatchedDataset, 0, len(c.datasets))
	for _, dd := range c.datasets {
		dds = append(dds, dd)
	}
	return dds
}

// removeWorker strips a dead worker from every partition's replica list.
// The partitions it leaves under-replicated are rebuilt by rereplicate.
func (c *Coordinator) removeWorker(dead int) {
	for _, dd := range c.lockedDatasets() {
		dd.mu.Lock()
		for pid, owners := range dd.replicas {
			kept := owners[:0]
			for _, w := range owners {
				if w != dead {
					kept = append(kept, w)
				}
			}
			dd.replicas[pid] = kept
		}
		dd.mu.Unlock()
	}
}

// rereplicate scans every dispatched partition and rebuilds missing
// replicas onto the least-loaded eligible live workers until each is back
// at the configured replication factor (or no eligible worker remains —
// then the next scan tries again). Partitions whose raw payload the
// coordinator still retains are re-dispatched from it (Worker.Load);
// partitions whose payload was released after durable snapshotting are
// healed worker-to-worker: the target pulls the snapshot image from a
// surviving replica (Worker.Replicate → Worker.Export) and verifies it
// end to end. Dataset healing is what substitutes for Spark recomputing
// lost RDD partitions from lineage.
func (c *Coordinator) rereplicate() {
	type healLoad struct {
		dd      *dispatchedDataset
		pid     int
		payload *LoadArgs // nil → snapshot-based healing via srcs
		fp      uint64
		srcs    []int // pre-heal owners, the candidate snapshot sources
		target  int
	}
	dds := c.lockedDatasets()
	// Current load per worker, to place re-replicas evenly.
	loads := make([]int, len(c.addrs))
	for _, dd := range dds {
		dd.mu.Lock()
		for _, owners := range dd.replicas {
			for _, w := range owners {
				loads[w]++
			}
		}
		dd.mu.Unlock()
	}
	states := c.health.snapshot()
	var plan []healLoad
	for _, dd := range dds {
		dd.mu.Lock()
		for pid := range dd.replicas {
			if dd.parts[pid].retired {
				// Retired partitions have no replicas and nothing to heal;
				// without this skip the planner would emit entries that can
				// never succeed (no payload, no sources) every scan.
				continue
			}
			owners := append([]int(nil), dd.replicas[pid]...)
			srcs := append([]int(nil), owners...)
			for len(owners) < c.cfg.Replicas {
				// Pick the least-loaded live worker not already a replica.
				target := -1
				for w := range c.addrs {
					if states[w] == Dead {
						continue
					}
					already := false
					for _, r := range owners {
						if r == w {
							already = true
							break
						}
					}
					if already {
						continue
					}
					if target < 0 || loads[w] < loads[target] {
						target = w
					}
				}
				if target < 0 {
					break
				}
				loads[target]++
				owners = append(owners, target)
				payload, fp := dd.parts[pid].payload, dd.parts[pid].fingerprint
				if dd.mutated {
					// Acked writes live only on the workers now: the retained
					// dispatch payload predates them, and the dispatch-time
					// fingerprint no longer names any replica's content once a
					// merge ran. Heal worker-to-worker, unpinned, so the
					// export carries the overlay.
					payload, fp = nil, 0
				}
				plan = append(plan, healLoad{
					dd: dd, pid: pid,
					payload: payload,
					fp:      fp,
					srcs:    srcs,
					target:  target,
				})
			}
		}
		dd.mu.Unlock()
	}
	// Ship the re-replicas outside the lock; register each on success.
	// Concurrent scans (heartbeat loop + a manual CheckHealth) may race to
	// heal the same partition, so registration re-checks under the lock.
	var wg sync.WaitGroup
	for _, h := range plan {
		wg.Add(1)
		go func(h healLoad) {
			defer wg.Done()
			healed := false
			if h.payload != nil {
				var reply LoadReply
				healed = c.clients[h.target].Call("Worker.Load", h.payload, &reply) == nil
			} else {
				// Payload released after durable snapshotting: the target
				// pulls the snapshot from a surviving replica. Sources are
				// tried live-first; a transfer the target classifies as
				// peer-unreachable or corrupt just moves to the next source.
				for _, src := range c.health.order(h.srcs) {
					if states[src] == Dead {
						continue
					}
					var reply ReplicateReply
					err := c.clients[h.target].Call("Worker.Replicate", &ReplicateArgs{
						Dataset: h.dd.name, Partition: h.pid,
						SrcAddr: c.addrs[src], Fingerprint: h.fp,
					}, &reply)
					if err == nil {
						healed = true
						break
					}
				}
			}
			if !healed {
				return // retried on the next CheckHealth
			}
			h.dd.mu.Lock()
			owners := h.dd.replicas[h.pid]
			for _, w := range owners {
				if w == h.target {
					// A concurrent heal already registered this worker;
					// our Load was an idempotent reload of its copy.
					h.dd.mu.Unlock()
					return
				}
			}
			if len(owners) < c.cfg.Replicas {
				h.dd.replicas[h.pid] = append(owners, h.target)
				h.dd.mu.Unlock()
				return
			}
			h.dd.mu.Unlock()
			// A concurrent heal already restored full replication through
			// other workers; drop the surplus copy.
			var ur UnloadReply
			c.clients[h.target].CallOnce("Worker.Unload",
				&UnloadArgs{Dataset: h.dd.name, Partition: h.pid}, &ur,
				c.cfg.Retry.CallTimeout)
		}(h)
	}
	wg.Wait()
}

// WorkerStats gathers each worker's inventory.
func (c *Coordinator) WorkerStats() ([]StatsReply, error) {
	out := make([]StatsReply, len(c.clients))
	for i, cl := range c.clients {
		if err := cl.Call("Worker.Stats", &StatsArgs{}, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func defaultCellD(d *traj.Dataset) float64 {
	ext := d.Stats().Extent
	if ext.IsEmpty() {
		return 0.01
	}
	w := ext.Max.X - ext.Min.X
	if h := ext.Max.Y - ext.Min.Y; h > w {
		w = h
	}
	if w <= 0 {
		return 0.01
	}
	return w / 100
}
