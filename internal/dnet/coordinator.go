package dnet

import (
	"fmt"

	"dita/internal/core"
	"net/rpc"
	"sort"
	"sync"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/rtree"
	"dita/internal/str"
	"dita/internal/traj"
	"dita/internal/trie"
)

// Config parameterizes a network-mode deployment.
type Config struct {
	// NG is the global grid factor (NG×NG partitions per dataset).
	NG int
	// Trie is the local index configuration (Strategy travels as an int).
	Trie trie.Config
	// Measure names the similarity function.
	Measure MeasureSpec
	// CellD is the verification cell side length; <= 0 derives it from
	// the data extent like the in-process engine.
	CellD float64
}

// DefaultNetConfig mirrors core.DefaultOptions for the network mode.
func DefaultNetConfig() Config {
	return Config{NG: 4, Trie: trie.DefaultConfig(), Measure: MeasureSpec{Name: "DTW"}}
}

// Coordinator is the network-mode driver: it partitions datasets across
// the workers, keeps the global index (partition MBRs) locally, and fans
// queries out over RPC.
type Coordinator struct {
	cfg     Config
	m       measure.Measure
	clients []*rpc.Client
	addrs   []string

	mu       sync.Mutex
	datasets map[string]*dispatchedDataset
}

// dispatchedDataset records where a dataset's partitions live plus the
// global index over their endpoint MBRs.
type dispatchedDataset struct {
	parts []dispatchedPartition
	rtF   *rtree.Tree
	rtL   *rtree.Tree
}

type dispatchedPartition struct {
	worker     int // index into Coordinator.addrs
	mbrF, mbrL geom.MBR
	trajs      int
}

// Connect dials the workers and returns a coordinator.
func Connect(addrs []string, cfg Config) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dnet: no worker addresses")
	}
	if cfg.NG < 1 {
		cfg.NG = 1
	}
	if cfg.Measure.Name == "" {
		cfg.Measure.Name = "DTW"
	}
	m, err := measure.ByName(cfg.Measure.Name, cfg.Measure.Eps, cfg.Measure.Delta)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, m: m, addrs: addrs, datasets: map[string]*dispatchedDataset{}}
	for _, a := range addrs {
		client, err := rpc.Dial("tcp", a)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dnet: dialing worker %s: %w", a, err)
		}
		c.clients = append(c.clients, client)
	}
	return c, nil
}

// Close disconnects from the workers (the workers keep running).
func (c *Coordinator) Close() error {
	var first error
	for _, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Dispatch partitions the dataset (first/last STR, Section 4.2.1), ships
// each partition to a worker round-robin, and has the workers index them.
// The name identifies the dataset in later Search/Join calls.
func (c *Coordinator) Dispatch(name string, d *traj.Dataset) error {
	if d == nil || d.Len() == 0 {
		return fmt.Errorf("dnet: empty dataset %q", name)
	}
	cellD := c.cfg.CellD
	if cellD <= 0 {
		cellD = defaultCellD(d)
	}
	dd := &dispatchedDataset{}
	trajs := d.Trajs
	firsts := make([]geom.Point, len(trajs))
	for i, t := range trajs {
		firsts[i] = t.First()
	}
	type loadCall struct {
		worker int
		args   *LoadArgs
	}
	var calls []loadCall
	for _, bucket := range str.Tile(firsts, c.cfg.NG) {
		lasts := make([]geom.Point, len(bucket))
		for j, i := range bucket {
			lasts[j] = trajs[i].Last()
		}
		for _, sub := range str.Tile(lasts, c.cfg.NG) {
			pid := len(dd.parts)
			worker := pid % len(c.clients)
			args := &LoadArgs{
				Dataset:   name,
				Partition: pid,
				Measure:   c.cfg.Measure,
				K:         c.cfg.Trie.K,
				NLAlign:   c.cfg.Trie.NLAlign,
				NLPivot:   c.cfg.Trie.NLPivot,
				MinNode:   c.cfg.Trie.MinNode,
				Strategy:  int(c.cfg.Trie.Strategy),
				CellD:     cellD,
			}
			mbrF, mbrL := geom.EmptyMBR(), geom.EmptyMBR()
			for _, k := range sub {
				t := trajs[bucket[k]]
				args.Trajs = append(args.Trajs, WireTrajectory{ID: t.ID, Points: t.Points})
				mbrF = mbrF.Extend(t.First())
				mbrL = mbrL.Extend(t.Last())
			}
			dd.parts = append(dd.parts, dispatchedPartition{
				worker: worker, mbrF: mbrF, mbrL: mbrL, trajs: len(args.Trajs),
			})
			calls = append(calls, loadCall{worker, args})
		}
	}
	// Load partitions concurrently (one in-flight call per worker keeps
	// ordering simple; net/rpc multiplexes on one connection anyway).
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call loadCall) {
			defer wg.Done()
			var reply LoadReply
			errs[i] = c.clients[call.worker].Call("Worker.Load", call.args, &reply)
		}(i, call)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	ef := make([]rtree.Entry, len(dd.parts))
	el := make([]rtree.Entry, len(dd.parts))
	for i, p := range dd.parts {
		ef[i] = rtree.Entry{MBR: p.mbrF, ID: i}
		el[i] = rtree.Entry{MBR: p.mbrL, ID: i}
	}
	dd.rtF = rtree.New(ef)
	dd.rtL = rtree.New(el)
	c.mu.Lock()
	c.datasets[name] = dd
	c.mu.Unlock()
	return nil
}

func (c *Coordinator) dataset(name string) (*dispatchedDataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dd, ok := c.datasets[name]
	if !ok {
		return nil, fmt.Errorf("dnet: dataset %q not dispatched", name)
	}
	return dd, nil
}

// relevantPartitions mirrors the engine's global pruning for the
// dispatched dataset: the R-trees narrow the candidates for anchored
// measures, the measure-aware check decides.
func (c *Coordinator) relevantPartitions(dd *dispatchedDataset, q []geom.Point, tau float64) []int {
	var out []int
	if c.m.AlignsEndpoints() {
		inF := map[int]bool{}
		for _, e := range dd.rtF.WithinDist(q[0], tau, nil) {
			inF[e.ID] = true
		}
		for _, e := range dd.rtL.WithinDist(q[len(q)-1], tau, nil) {
			if !inF[e.ID] {
				continue
			}
			p := dd.parts[e.ID]
			if core.TrajRelevant(c.m, q, p.mbrF, p.mbrL, tau) {
				out = append(out, e.ID)
			}
		}
		sort.Ints(out)
		return out
	}
	for i, p := range dd.parts {
		if core.TrajRelevant(c.m, q, p.mbrF, p.mbrL, tau) {
			out = append(out, i)
		}
	}
	return out
}

// Search fans the query out to the workers owning relevant partitions and
// merges the verified hits (ascending id).
func (c *Coordinator) Search(name string, q *traj.T, tau float64) ([]SearchHit, error) {
	if q == nil || len(q.Points) == 0 {
		return nil, nil
	}
	dd, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	rel := c.relevantPartitions(dd, q.Points, tau)
	replies := make([]SearchReply, len(rel))
	errs := make([]error, len(rel))
	var wg sync.WaitGroup
	for i, pid := range rel {
		wg.Add(1)
		go func(i, pid int) {
			defer wg.Done()
			args := &SearchArgs{Dataset: name, Partition: pid, Query: q.Points, Tau: tau}
			errs[i] = c.clients[dd.parts[pid].worker].Call("Worker.Search", args, &replies[i])
		}(i, pid)
	}
	wg.Wait()
	var out []SearchHit
	for i := range rel {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, replies[i].Hits...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}

// Join computes the distributed similarity join between two dispatched
// datasets. For every candidate partition pair (by endpoint-MBR tests),
// the left worker selects and ships its relevant trajectories directly to
// the right worker, which runs the local join; pairs flow back through
// the chain. The cheaper direction is chosen per edge by partition size
// (a size-proxy of the paper's cost model; the full sampled model lives in
// the in-process engine).
func (c *Coordinator) Join(left, right string, tau float64) ([]WirePair, error) {
	lt, err := c.dataset(left)
	if err != nil {
		return nil, err
	}
	rt, err := c.dataset(right)
	if err != nil {
		return nil, err
	}
	type edge struct {
		src, dst         int // partition ids in their datasets
		srcName, dstName string
		flip             bool
	}
	var edges []edge
	anchored := c.m.AlignsEndpoints()
	maxForm := c.m.Accumulation() == measure.AccumMax
	for i, pt := range lt.parts {
		for j, pq := range rt.parts {
			if anchored {
				df := pt.mbrF.MinDistMBR(pq.mbrF)
				dl := pt.mbrL.MinDistMBR(pq.mbrL)
				if maxForm {
					if df > tau || dl > tau {
						continue
					}
				} else if df+dl > tau {
					continue
				}
			}
			// Orientation: ship the smaller side.
			if pt.trajs <= pq.trajs {
				edges = append(edges, edge{src: i, dst: j, srcName: left, dstName: right, flip: false})
			} else {
				edges = append(edges, edge{src: j, dst: i, srcName: right, dstName: left, flip: true})
			}
		}
	}
	replies := make([]JoinReply, len(edges))
	errs := make([]error, len(edges))
	var wg sync.WaitGroup
	for i, ed := range edges {
		wg.Add(1)
		go func(i int, ed edge) {
			defer wg.Done()
			srcDD, dstDD := lt, rt
			if ed.flip {
				srcDD, dstDD = rt, lt
			}
			dst := dstDD.parts[ed.dst]
			args := &ShipArgs{
				SrcDataset:   ed.srcName,
				SrcPartition: ed.src,
				DstAddr:      c.addrs[dst.worker],
				DstDataset:   ed.dstName,
				DstPartition: ed.dst,
				DstMBRf:      dst.mbrF,
				DstMBRl:      dst.mbrL,
				Tau:          tau,
				Flip:         ed.flip,
			}
			errs[i] = c.clients[srcDD.parts[ed.src].worker].Call("Worker.Ship", args, &replies[i])
		}(i, ed)
	}
	wg.Wait()
	var pairs []WirePair
	for i := range edges {
		if errs[i] != nil {
			return nil, errs[i]
		}
		pairs = append(pairs, replies[i].Pairs...)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].TID != pairs[b].TID {
			return pairs[a].TID < pairs[b].TID
		}
		return pairs[a].QID < pairs[b].QID
	})
	return pairs, nil
}

// WorkerStats gathers each worker's inventory.
func (c *Coordinator) WorkerStats() ([]StatsReply, error) {
	out := make([]StatsReply, len(c.clients))
	for i, cl := range c.clients {
		if err := cl.Call("Worker.Stats", &StatsArgs{}, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func defaultCellD(d *traj.Dataset) float64 {
	ext := d.Stats().Extent
	if ext.IsEmpty() {
		return 0.01
	}
	w := ext.Max.X - ext.Min.X
	if h := ext.Max.Y - ext.Min.Y; h > w {
		w = h
	}
	if w <= 0 {
		return 0.01
	}
	return w / 100
}
