package dnet

import (
	"testing"

	"dita/internal/gen"
)

// benchCluster starts workers + coordinator for benchmarks.
func benchCluster(b *testing.B, n int) (*Coordinator, func()) {
	b.Helper()
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w := NewWorker()
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	cfg := DefaultNetConfig()
	cfg.Trie.MinNode = 2
	c, err := Connect(addrs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return c, func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	}
}

// BenchmarkNetDispatch measures dataset distribution + remote indexing.
func BenchmarkNetDispatch(b *testing.B) {
	d := gen.Generate(gen.BeijingLike(2000, 1))
	c, stop := benchCluster(b, 3)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Dispatch("bench", d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetSearch measures end-to-end network search latency (TCP +
// gob + remote trie probe + verification).
func BenchmarkNetSearch(b *testing.B) {
	d := gen.Generate(gen.BeijingLike(5000, 2))
	c, stop := benchCluster(b, 3)
	defer stop()
	if err := c.Dispatch("bench", d); err != nil {
		b.Fatal(err)
	}
	qs := gen.Queries(d, 64, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search("bench", qs[i%len(qs)], 0.003); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetJoin measures the worker-to-worker shuffle join.
func BenchmarkNetJoin(b *testing.B) {
	d := gen.Generate(gen.BeijingLike(600, 4))
	c, stop := benchCluster(b, 3)
	defer stop()
	if err := c.Dispatch("L", d); err != nil {
		b.Fatal(err)
	}
	if err := c.Dispatch("R", d); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Join("L", "R", 0.002); err != nil {
			b.Fatal(err)
		}
	}
}
