package dnet

import (
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FaultPlan configures deterministic, seeded fault injection on a
// worker's accepted connections — the chaos-testing transport. Each
// accepted connection gets its own PRNG derived from Seed and the accept
// index, so a fixed plan plus a fixed call pattern produces a
// reproducible fault schedule per connection.
//
// The same plan drives the dnet chaos tests and `dita-worker -chaos`
// manual soak testing.
type FaultPlan struct {
	// Seed makes the fault schedule deterministic.
	Seed int64
	// DropRate is the probability a freshly accepted connection is
	// closed immediately (connection refused, as seen by the peer).
	DropRate float64
	// ErrorRate is the per-Read/Write probability of an injected error;
	// the connection is also severed so both ends resynchronize on a
	// fresh one.
	ErrorRate float64
	// Delay is added latency per Read.
	Delay time.Duration
	// SeverAfter closes the connection after this many combined
	// Read/Write operations (0 = never).
	SeverAfter int
}

// active reports whether per-op fault hooks are needed at all.
func (p FaultPlan) active() bool {
	return p.ErrorRate > 0 || p.Delay > 0 || p.SeverAfter > 0
}

// ParseFaultPlan parses a comma-separated spec like
// "seed=7,drop=0.05,err=0.01,delay=2ms,sever=500". Unknown keys are an
// error; every key is optional.
func ParseFaultPlan(spec string) (FaultPlan, error) {
	plan := FaultPlan{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return plan, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return plan, fmt.Errorf("dnet: fault spec %q: want key=value", field)
		}
		var err error
		switch k {
		case "seed":
			plan.Seed, err = strconv.ParseInt(v, 10, 64)
		case "drop":
			plan.DropRate, err = strconv.ParseFloat(v, 64)
		case "err":
			plan.ErrorRate, err = strconv.ParseFloat(v, 64)
		case "delay":
			plan.Delay, err = time.ParseDuration(v)
		case "sever":
			plan.SeverAfter, err = strconv.Atoi(v)
		default:
			return plan, fmt.Errorf("dnet: fault spec: unknown key %q", k)
		}
		if err != nil {
			return plan, fmt.Errorf("dnet: fault spec %q: %w", field, err)
		}
	}
	return plan, nil
}

// injectedError is what a faulted Read/Write returns. It implements
// net.Error so the managed client classifies it as transport-level.
type injectedError struct{ op string }

func (e *injectedError) Error() string   { return "faultconn: injected " + e.op + " error" }
func (e *injectedError) Timeout() bool   { return false }
func (e *injectedError) Temporary() bool { return true }

// NewFaultListener wraps l so accepted connections misbehave per plan.
func NewFaultListener(l net.Listener, plan FaultPlan) net.Listener {
	return &faultListener{Listener: l, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

type faultListener struct {
	net.Listener
	plan FaultPlan

	mu    sync.Mutex
	rng   *rand.Rand
	nconn int64
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		n := l.nconn
		l.nconn++
		drop := l.plan.DropRate > 0 && l.rng.Float64() < l.plan.DropRate
		l.mu.Unlock()
		if drop {
			conn.Close()
			continue
		}
		if !l.plan.active() {
			return conn, nil
		}
		// Per-connection PRNG: deterministic given the accept index.
		seed := l.plan.Seed ^ (n+1)*0x9e3779b97f4a7c
		return &faultConn{Conn: conn, plan: l.plan, rng: rand.New(rand.NewSource(seed))}, nil
	}
}

type faultConn struct {
	net.Conn
	plan FaultPlan

	mu  sync.Mutex
	rng *rand.Rand
	ops int
}

// fault rolls the per-op dice; on a hit it severs the connection so both
// ends observe the failure and reconnect cleanly.
func (c *faultConn) fault(op string) error {
	c.mu.Lock()
	c.ops++
	sever := c.plan.SeverAfter > 0 && c.ops > c.plan.SeverAfter
	inject := !sever && c.plan.ErrorRate > 0 && c.rng.Float64() < c.plan.ErrorRate
	c.mu.Unlock()
	if sever {
		c.Conn.Close()
		return &injectedError{op: op + " (severed)"}
	}
	if inject {
		c.Conn.Close()
		return &injectedError{op: op}
	}
	return nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.plan.Delay > 0 {
		time.Sleep(c.plan.Delay)
	}
	if err := c.fault("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if err := c.fault("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}
