// Online STR re-partitioning for the network mode: the coordinator can
// split a hot partition or merge cold siblings while ingest and queries
// keep running, re-cutting the group's CURRENT visible members (base
// minus tombstones plus delta, exported from live replicas) with fresh
// STR boundaries. Partition ids are never reused — the cutover appends
// the pieces at fresh ids and retires the old ones in place — so WAL
// and snapshot filenames, sequence-number spaces, and serve-layer epoch
// indices never alias across layouts.
//
// Cutover ordering (repartitionGroup):
//
//  1. quiesce   — take every group member's write lock (pmu), in
//                 ascending pid order, WITHOUT holding dd.mu. Writes to
//                 the group now block; writes elsewhere proceed.
//  2. export    — pull each member's visible image from a live replica
//                 (Worker.Export, snap.Decode-verified). The all-replica
//                 write ack plus the held locks make any one replica's
//                 visible set authoritative.
//  3. cut       — str.Cut over the members' first points; assign.
//  4. load      — ship each piece to Replicas live workers at fresh
//                 pids. ANY failure unloads the loaded pieces and aborts
//                 with the old layout fully intact — a worker death
//                 mid-cutover can only ever produce old-or-new, never a
//                 mix.
//  5. install   — under dd.mu: append piece entries, retire the old
//                 pids (empty bounds, nil replicas, bumped write marks),
//                 rewrite loc, bump boundsEpoch, rebuild the R-trees.
//  6. release   — drop the write locks; unload the old pids from their
//                 former owners, best-effort (a failed unload leaves a
//                 stale copy that inventory-driven recovery skips).
//
// Queries that captured a boundsView before step 5 may still contact an
// old pid after its unload in step 6 and see "partition not loaded";
// that is the same transient the replica-failover/AllowPartial machinery
// already absorbs for worker deaths, and the next view routes cleanly.
//
// RecoverDataset closes the two restart gaps the serving design doc
// documented: a restarted coordinator rebuilds its routing table from
// worker Manifests (visible ids + TRUE current bounds), so acked
// overlays survive re-registration and ingested outliers outside the
// dispatch-time MBRs stay findable.
package dnet

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dita/internal/core"
	"dita/internal/geom"
	"dita/internal/snap"
	"dita/internal/str"
	"dita/internal/traj"
)

// Manifest implements the visible-contents RPC: the partition's live
// member ids (base minus tombstones plus delta, ascending) and the exact
// MBRs over their endpoints. Recovery rebuilds the coordinator's routing
// table and global index from these instead of re-dispatching.
func (s *workerService) Manifest(args *ManifestArgs, reply *ManifestReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("manifest", &err)
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	p.omu.RLock()
	mbrF, mbrL := geom.EmptyMBR(), geom.EmptyMBR()
	for _, t := range p.trajs {
		if p.tomb[t.ID] {
			continue
		}
		reply.IDs = append(reply.IDs, t.ID)
		mbrF = mbrF.Extend(t.First())
		mbrL = mbrL.Extend(t.Last())
	}
	for _, t := range p.delta {
		reply.IDs = append(reply.IDs, t.ID)
		mbrF = mbrF.Extend(t.First())
		mbrL = mbrL.Extend(t.Last())
	}
	reply.MBRf, reply.MBRl = mbrF, mbrL
	reply.Fingerprint, reply.Snapshotted, reply.LastSeq = p.fingerprint, p.snapped, p.lastSeq
	p.omu.RUnlock()
	sort.Ints(reply.IDs)
	return nil
}

// NetRebalanceStats accounts one distributed cutover.
type NetRebalanceStats struct {
	// Retired are the partition ids emptied by the cutover; Created the
	// fresh ids holding the re-cut pieces.
	Retired []int
	Created []int
	// Trajs is the number of visible trajectories moved.
	Trajs int
	// Plan is the STR boundary plan the cut used.
	Plan str.Plan
	// Skew is the dataset's occupancy skew after the cutover.
	Skew float64
	// Duration is the wall-clock cutover time, shipping included.
	Duration time.Duration
}

// SplitPartition re-cuts one partition's current visible members into up
// to k pieces with fresh STR boundaries, shipping each piece to Replicas
// workers and retiring the original, while ingest and queries keep
// running against the rest of the dataset.
func (c *Coordinator) SplitPartition(name string, pid, k int) (*NetRebalanceStats, error) {
	if k < 2 {
		return nil, fmt.Errorf("dnet: split: k=%d, need >= 2", k)
	}
	return c.repartitionGroup(name, []int{pid}, k)
}

// MergePartitions folds several partitions' current visible members into
// one fresh partition, retiring the originals.
func (c *Coordinator) MergePartitions(name string, pids []int) (*NetRebalanceStats, error) {
	if len(pids) < 2 {
		return nil, fmt.Errorf("dnet: merge partitions: need >= 2 pids, got %d", len(pids))
	}
	return c.repartitionGroup(name, pids, 1)
}

// repartitionGroup is the unified cutover (k=1 merges). See the file
// comment for the ordering and crash-behavior argument.
func (c *Coordinator) repartitionGroup(name string, pids []int, k int) (*NetRebalanceStats, error) {
	start := time.Now()
	dd, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	// One cutover at a time per dataset: cutovers take several pmu
	// entries, and two over overlapping groups would deadlock.
	dd.rebalMu.Lock()
	defer dd.rebalMu.Unlock()

	group := append([]int(nil), pids...)
	sort.Ints(group)
	dd.mu.Lock()
	inGroup := make(map[int]bool, len(group))
	pmus := make([]*sync.Mutex, len(group))
	for i, pid := range group {
		if pid < 0 || pid >= len(dd.parts) {
			dd.mu.Unlock()
			return nil, fmt.Errorf("dnet: rebalance %s: partition %d out of range", name, pid)
		}
		if dd.parts[pid].retired {
			dd.mu.Unlock()
			return nil, fmt.Errorf("dnet: rebalance %s: partition %d already retired", name, pid)
		}
		if inGroup[pid] {
			dd.mu.Unlock()
			return nil, fmt.Errorf("dnet: rebalance %s: duplicate partition %d", name, pid)
		}
		inGroup[pid] = true
		pmus[i] = dd.pmu[pid]
	}
	dd.mu.Unlock()

	// Quiesce the group. Ascending order matches the lock order every
	// writer uses (one pmu at a time, never while holding dd.mu), so
	// this cannot deadlock with in-flight ingest.
	for _, mu := range pmus {
		mu.Lock()
	}
	unlock := func() {
		for _, mu := range pmus {
			mu.Unlock()
		}
	}

	// Former owners, captured before the install rewrites the replica
	// lists; they serve the exports and receive the final unloads.
	oldOwners := make(map[int][]int, len(group))
	dd.mu.Lock()
	for _, pid := range group {
		oldOwners[pid] = append([]int(nil), dd.replicas[pid]...)
	}
	basePid := len(dd.parts)
	dd.mu.Unlock()

	// Export each member's visible image from a live replica. The held
	// write locks mean no new acked writes can land; the all-replica ack
	// rule means every replica already holds every acked write, so any
	// one replica's export is the partition's full visible state.
	var members []*traj.T
	var opts snap.BuildOptions
	for _, pid := range group {
		var sn *snap.Snapshot
		var lastErr error
		for _, w := range c.health.order(oldOwners[pid]) {
			var ex ExportReply
			if err := c.clients[w].Call("Worker.Export", &ExportArgs{Dataset: name, Partition: pid}, &ex); err != nil {
				lastErr = err
				continue
			}
			dec, err := snap.Decode(ex.Data)
			if err != nil || dec.Dataset != name || dec.Partition != pid {
				lastErr = fmt.Errorf("dnet: rebalance %s/%d: bad export from %s: %v", name, pid, c.addrs[w], err)
				continue
			}
			sn = dec
			break
		}
		if sn == nil {
			unlock()
			if lastErr == nil {
				lastErr = fmt.Errorf("no replicas")
			}
			return nil, fmt.Errorf("dnet: rebalance %s/%d: export failed: %w", name, pid, lastErr)
		}
		opts = sn.Opts
		members = append(members, sn.Trajs...)
	}

	// Cut fresh STR boundaries over the members' first points and group.
	firsts := make([]geom.Point, len(members))
	for i, t := range members {
		firsts[i] = t.First()
	}
	plan := str.Cut(firsts, k)
	groups := plan.Assign(firsts)
	type piece struct {
		args   *LoadArgs
		owners []int
		mbrF   geom.MBR
		mbrL   geom.MBR
		ids    []int
	}
	var pieces []piece
	for _, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		pc := piece{mbrF: geom.EmptyMBR(), mbrL: geom.EmptyMBR()}
		pc.args = &LoadArgs{
			Dataset:   name,
			Partition: basePid + len(pieces),
			Measure:   MeasureSpec{Name: opts.Measure, Eps: opts.Eps, Delta: opts.Delta},
			K:         opts.K,
			NLAlign:   opts.NLAlign,
			NLPivot:   opts.NLPivot,
			MinNode:   opts.MinNode,
			Strategy:  opts.Strategy,
			CellD:     opts.CellD,
		}
		mem := make([]*traj.T, 0, len(idxs))
		for _, i := range idxs {
			t := members[i]
			pc.args.Trajs = append(pc.args.Trajs, WireTrajectory{ID: t.ID, Points: t.Points})
			mem = append(mem, t)
			pc.mbrF = pc.mbrF.Extend(t.First())
			pc.mbrL = pc.mbrL.Extend(t.Last())
			pc.ids = append(pc.ids, t.ID)
		}
		pc.args.Fingerprint = snap.Fingerprint(opts, mem)
		pieces = append(pieces, pc)
	}
	if len(pieces) == 0 {
		// Every visible member was deleted; install one empty piece so
		// the dataset keeps at least one live partition to route to.
		pc := piece{mbrF: geom.EmptyMBR(), mbrL: geom.EmptyMBR()}
		pc.args = &LoadArgs{
			Dataset:   name,
			Partition: basePid,
			Measure:   MeasureSpec{Name: opts.Measure, Eps: opts.Eps, Delta: opts.Delta},
			K:         opts.K,
			NLAlign:   opts.NLAlign,
			NLPivot:   opts.NLPivot,
			MinNode:   opts.MinNode,
			Strategy:  opts.Strategy,
			CellD:     opts.CellD,
		}
		pc.args.Fingerprint = snap.Fingerprint(opts, nil)
		pieces = append(pieces, pc)
	}

	// Place each piece on the Replicas least-loaded live workers.
	states := c.health.snapshot()
	loads := make([]int, len(c.addrs))
	dd.mu.Lock()
	for _, owners := range dd.replicas {
		for _, w := range owners {
			loads[w]++
		}
	}
	dd.mu.Unlock()
	for pi := range pieces {
		for len(pieces[pi].owners) < c.cfg.Replicas {
			target := -1
			for w := range c.addrs {
				if states[w] == Dead {
					continue
				}
				already := false
				for _, o := range pieces[pi].owners {
					if o == w {
						already = true
						break
					}
				}
				if already {
					continue
				}
				if target < 0 || loads[w] < loads[target] {
					target = w
				}
			}
			if target < 0 {
				break
			}
			loads[target]++
			pieces[pi].owners = append(pieces[pi].owners, target)
		}
		if len(pieces[pi].owners) == 0 {
			unlock()
			return nil, fmt.Errorf("dnet: rebalance %s: no live workers to place piece %d", name, pieces[pi].args.Partition)
		}
	}

	// Ship the pieces. Any failure aborts with the old layout intact:
	// loaded pieces are unloaded, nothing was installed, the write locks
	// drop, and ingest/queries continue against the old partitions.
	type loadCall struct{ pi, w int }
	var calls []loadCall
	for pi := range pieces {
		for _, w := range pieces[pi].owners {
			calls = append(calls, loadCall{pi, w})
		}
	}
	errs := make([]error, len(calls))
	var wg sync.WaitGroup
	for ci, call := range calls {
		wg.Add(1)
		go func(ci int, call loadCall) {
			defer wg.Done()
			var reply LoadReply
			errs[ci] = c.clients[call.w].Call("Worker.Load", pieces[call.pi].args, &reply)
		}(ci, call)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			continue
		}
		var uwg sync.WaitGroup
		for ci, call := range calls {
			if errs[ci] != nil {
				continue
			}
			uwg.Add(1)
			go func(call loadCall) {
				defer uwg.Done()
				var ur UnloadReply
				c.clients[call.w].CallOnce("Worker.Unload",
					&UnloadArgs{Dataset: name, Partition: pieces[call.pi].args.Partition}, &ur,
					c.cfg.Retry.CallTimeout)
			}(call)
		}
		uwg.Wait()
		unlock()
		return nil, fmt.Errorf("dnet: rebalance %s: piece load failed, cutover aborted: %w", name, err)
	}

	// Install the new layout atomically under dd.mu.
	st := &NetRebalanceStats{Retired: group, Trajs: len(members), Plan: plan}
	dd.mu.Lock()
	for pi := range pieces {
		pc := &pieces[pi]
		pid := pc.args.Partition
		payload := pc.args
		if !c.cfg.RetainPayloads {
			payload = nil
		}
		dd.parts = append(dd.parts, dispatchedPartition{
			mbrF: pc.mbrF, mbrL: pc.mbrL,
			trajs: len(pc.ids), fingerprint: pc.args.Fingerprint, payload: payload,
		})
		dd.replicas = append(dd.replicas, pc.owners)
		dd.nextSeq = append(dd.nextSeq, 0)
		dd.live = append(dd.live, len(pc.ids))
		dd.writeMark = append(dd.writeMark, 0)
		dd.pmu = append(dd.pmu, new(sync.Mutex))
		st.Created = append(st.Created, pid)
	}
	for _, pid := range group {
		p := &dd.parts[pid]
		p.retired = true
		p.trajs = 0
		p.mbrF, p.mbrL = geom.EmptyMBR(), geom.EmptyMBR()
		p.fingerprint = 0
		p.payload = nil
		dd.replicas[pid] = nil
		dd.live[pid] = 0
		// Cached answers that touched the old pid are now stale.
		dd.writeMark[pid]++
	}
	// Routing: drop every id the retired group tracked, then point the
	// exported visible ids at their pieces. Ids the coordinator tracked
	// but the export lacked (a partially-applied delete that was never
	// acked) fall out of the table — the installed content is now the
	// authority. Ids the export carried that the table lacked (a
	// partially-applied insert) become tracked, like any surfaced
	// unacked-but-durable write.
	for id, pid := range dd.loc {
		if inGroup[pid] {
			delete(dd.loc, id)
		}
	}
	for pi := range pieces {
		pid := pieces[pi].args.Partition
		for _, id := range pieces[pi].ids {
			dd.loc[id] = pid
		}
	}
	dd.mutated = true
	dd.boundsEpoch++
	rebuildTreesLocked(dd)
	st.Skew = occupancySkewLocked(dd)
	dd.mu.Unlock()
	unlock()
	// Retired pids never serve reads again; forget their cost EWMAs so
	// the planner sees only the fresh pieces' signal.
	dd.cost.Drop(group...)

	// Retired pids leave their former owners; a failed unload leaves a
	// stale copy behind that inventory-driven recovery skips (its ids
	// fully overlap the live layout) and the next Load/Replicate at that
	// key resets.
	var uwg sync.WaitGroup
	for _, pid := range group {
		for _, w := range oldOwners[pid] {
			uwg.Add(1)
			go func(pid, w int) {
				defer uwg.Done()
				var ur UnloadReply
				c.clients[w].CallOnce("Worker.Unload",
					&UnloadArgs{Dataset: name, Partition: pid}, &ur, c.cfg.Retry.CallTimeout)
			}(pid, w)
		}
	}
	uwg.Wait()
	st.Duration = time.Since(start)
	c.met.rebalanceObserve(st.Duration, st.Skew)
	return st, nil
}

// occupancySkewLocked computes max/mean over the live partitions' visible
// member counts. Caller holds dd.mu.
func occupancySkewLocked(dd *dispatchedDataset) float64 {
	n, total, max := 0, 0.0, 0.0
	for pid := range dd.parts {
		if dd.parts[pid].retired {
			continue
		}
		occ := float64(dd.live[pid])
		total += occ
		if occ > max {
			max = occ
		}
		n++
	}
	if n == 0 || total == 0 {
		return 0
	}
	return max / (total / float64(n))
}

// OccupancySkew reports the dataset's max/mean visible-member occupancy
// over live partitions — the imbalance signal the rebalance planner acts
// on (0 when the dataset is empty).
func (c *Coordinator) OccupancySkew(name string) (float64, error) {
	dd, err := c.dataset(name)
	if err != nil {
		return 0, err
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	return occupancySkewLocked(dd), nil
}

// RebalanceOnce runs one planner step over the dataset's occupancy: when
// skew exceeds the policy bound it splits the hottest partition into
// about max/mean pieces; otherwise, when at least two partitions sit
// below MergeFraction·mean, it merges the coldest with its spatially
// nearest cold sibling. Returns nil when no action was needed. The
// policy is shared with the in-process engine (core.RebalancePolicy).
func (c *Coordinator) RebalanceOnce(name string, pol core.RebalancePolicy) (*NetRebalanceStats, error) {
	pol = pol.Sanitized()
	dd, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	hot, cold, kSplit := planNetRebalance(dd, pol)
	switch {
	case hot >= 0:
		return c.SplitPartition(name, hot, kSplit)
	case len(cold) >= 2:
		return c.MergePartitions(name, cold)
	}
	return nil, nil
}

// netRebalanceMaxSteps caps one Rebalance call's planner steps; a var so
// the convergence-reporting tests can shrink the budget.
var netRebalanceMaxSteps = 32

// Rebalance runs planner steps until the skew is within bound and no
// cold merge remains, or no further progress is possible. The second
// return reports convergence: false means the step budget ran out with
// work still planned — callers (the autopilot in particular) should back
// off instead of immediately retrying, and the condition is counted as
// coord_rebalance_noconverge_total.
func (c *Coordinator) Rebalance(name string, pol core.RebalancePolicy) ([]*NetRebalanceStats, bool, error) {
	var steps []*NetRebalanceStats
	for i := 0; i < netRebalanceMaxSteps; i++ {
		st, err := c.RebalanceOnce(name, pol)
		if err != nil {
			return steps, false, err
		}
		if st == nil {
			return steps, true, nil
		}
		steps = append(steps, st)
	}
	if c.met != nil {
		c.met.rebalanceNoConverge.Inc()
	}
	return steps, false, nil
}

// planNetRebalance mirrors the engine planner over coordinator state:
// occupancy is the per-partition visible member count (dd.live), spatial
// nearness the first-point MBR centers; when byte occupancy is balanced
// the observed per-partition read cost can nominate a split instead.
// Returns the hot pid and split fan-out, or a cold pair to merge, or
// (-1, nil, 0).
func planNetRebalance(dd *dispatchedDataset, pol core.RebalancePolicy) (hot int, cold []int, kSplit int) {
	dd.mu.Lock()
	defer dd.mu.Unlock()
	hot = -1
	type occ struct {
		pid    int
		n      float64
		center geom.Point
	}
	var live []occ
	total := 0.0
	for pid := range dd.parts {
		if dd.parts[pid].retired {
			continue
		}
		o := occ{pid: pid, n: float64(dd.live[pid])}
		if !dd.parts[pid].mbrF.IsEmpty() {
			o.center = dd.parts[pid].mbrF.Center()
		}
		live = append(live, o)
		total += o.n
	}
	if len(live) < 2 || total == 0 {
		return hot, nil, 0
	}
	mean := total / float64(len(live))
	maxOcc, maxPid := 0.0, -1
	for _, o := range live {
		if o.n > maxOcc {
			maxOcc, maxPid = o.n, o.pid
		}
	}
	if maxOcc/mean > pol.SkewBound && maxOcc > 1 {
		k := int(math.Round(maxOcc / mean))
		if k < 2 {
			k = 2
		}
		if k > pol.MaxPieces {
			k = pol.MaxPieces
		}
		return maxPid, nil, k
	}
	// Byte occupancy is balanced; a partition dominating the observed
	// read cost is still split-worthy. Single-member partitions cannot be
	// divided — the autopilot promotes replicas of those instead.
	livePids := make([]int, len(live))
	for i, o := range live {
		livePids[i] = o.pid
	}
	if pid, k := core.CostHot(dd.cost, livePids, pol); pid >= 0 && dd.live[pid] > 1 {
		return pid, nil, k
	}
	bar := pol.MergeFraction * mean
	var coldest *occ
	for i := range live {
		if live[i].n < bar && (coldest == nil || live[i].n < coldest.n) {
			coldest = &live[i]
		}
	}
	if coldest == nil {
		return hot, nil, 0
	}
	var buddy *occ
	bestD := math.Inf(1)
	for i := range live {
		o := &live[i]
		if o.pid == coldest.pid || o.n >= bar {
			continue
		}
		d := o.center.Dist(coldest.center)
		if d < bestD {
			buddy, bestD = o, d
		}
	}
	if buddy == nil {
		return hot, nil, 0
	}
	return -1, []int{coldest.pid, buddy.pid}, 0
}

// RecoverReport summarizes a RecoverDataset pass.
type RecoverReport struct {
	// Partitions counts the live partitions recovered; Trajs their summed
	// visible members.
	Partitions int
	Trajs      int
	// Recovered lists the kept partition ids; Dropped the partition ids
	// found on workers but discarded (losers of an interrupted cutover, or
	// stale leftovers a completed cutover failed to unload).
	Recovered []int
	Dropped   []int
	// DivergedHolders counts worker copies of kept partitions dropped for
	// being behind the freshest copy (healing re-clones them).
	DivergedHolders int
}

// RecoverDataset rebuilds the coordinator's state for a dataset entirely
// from what the workers hold, instead of re-running the original
// dispatch. Re-dispatch has two documented failure modes after streaming
// writes or a rebalance: it clobbers every acked overlay (the payloads
// predate the writes), and it prunes with dispatch-time MBRs that
// ingested outliers have outgrown. Recovery instead asks every worker
// for its inventory, pulls a Manifest of each partition's visible ids
// and TRUE current bounds from its freshest holder, and reconstructs the
// routing table, global index, sequence floors, and replica lists from
// those.
//
// A crash mid-cutover can leave workers holding overlapping layouts (the
// old group and some new pieces). Both crash windows are write-free —
// the coordinator died holding the group's write locks, so neither
// layout has writes the other lacks — which means any COMPLETE layout is
// correct. Recovery resolves overlap by coverage: keep partitions
// greedily in descending pid order (prefer the newer layout), skipping
// any whose ids intersect an already-kept partition; if the kept set
// does not cover every id seen, retry in ascending order (the old layout
// is complete when the new one is not). A double failure that leaves
// neither direction covering — possible only if workers holding old
// members died too — is refused with an error naming the gap, not
// papered over.
func (c *Coordinator) RecoverDataset(name string) (*RecoverReport, error) {
	inv := c.workerInventories()
	type holder struct {
		w       int
		lastSeq uint64
	}
	holders := map[int][]holder{}
	seqFloor := map[int]uint64{}
	for w := range inv {
		for k, p := range inv[w] {
			if k.dataset != name {
				continue
			}
			holders[k.id] = append(holders[k.id], holder{w, p.LastSeq})
			if p.LastSeq > seqFloor[k.id] {
				seqFloor[k.id] = p.LastSeq
			}
		}
	}
	if len(holders) == 0 {
		return nil, fmt.Errorf("dnet: recover %q: no worker holds any partition", name)
	}
	pids := make([]int, 0, len(holders))
	maxPid := 0
	for pid := range holders {
		pids = append(pids, pid)
		if pid > maxPid {
			maxPid = pid
		}
	}
	sort.Ints(pids)

	// Manifest each partition from its freshest holders: a copy behind
	// the max last-seq is missing acked writes and must not define the
	// partition's contents (nor remain a replica — healing re-clones it).
	manifests := map[int]*ManifestReply{}
	fresh := map[int][]int{}
	rep := &RecoverReport{}
	for _, pid := range pids {
		hs := holders[pid]
		max := seqFloor[pid]
		var man *ManifestReply
		for _, h := range hs {
			if h.lastSeq < max {
				rep.DivergedHolders++
				continue
			}
			fresh[pid] = append(fresh[pid], h.w)
			if man == nil {
				var reply ManifestReply
				if err := c.clients[h.w].Call("Worker.Manifest", &ManifestArgs{Dataset: name, Partition: pid}, &reply); err == nil {
					man = &reply
				}
			}
		}
		if man == nil {
			return nil, fmt.Errorf("dnet: recover %q: no fresh holder of partition %d answered", name, pid)
		}
		manifests[pid] = man
	}

	// Overlap resolution by coverage (see the method comment).
	universe := map[int]bool{}
	for _, man := range manifests {
		for _, id := range man.IDs {
			universe[id] = true
		}
	}
	tryKeep := func(order []int) ([]int, bool) {
		claimed := make(map[int]bool, len(universe))
		var kept []int
		for _, pid := range order {
			overlap := false
			for _, id := range manifests[pid].IDs {
				if claimed[id] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for _, id := range manifests[pid].IDs {
				claimed[id] = true
			}
			kept = append(kept, pid)
		}
		return kept, len(claimed) == len(universe)
	}
	desc := make([]int, len(pids))
	for i, pid := range pids {
		desc[len(pids)-1-i] = pid
	}
	kept, covered := tryKeep(desc)
	if !covered {
		kept, covered = tryKeep(pids)
	}
	if !covered {
		return nil, fmt.Errorf("dnet: recover %q: no combination of held partitions covers all %d trajectories; a partition holding the remainder is unreachable", name, len(universe))
	}
	sort.Ints(kept)
	keptSet := make(map[int]bool, len(kept))
	for _, pid := range kept {
		keptSet[pid] = true
	}

	// Drop the losers everywhere they are held, and the diverged copies
	// of kept partitions, so nothing stale can resurface. Best-effort:
	// a copy that survives a failed unload loses the next overlap
	// resolution the same way it lost this one.
	var uwg sync.WaitGroup
	for _, pid := range pids {
		freshSet := make(map[int]bool, len(fresh[pid]))
		for _, w := range fresh[pid] {
			freshSet[w] = true
		}
		for _, h := range holders[pid] {
			if keptSet[pid] && freshSet[h.w] {
				continue
			}
			uwg.Add(1)
			go func(pid, w int) {
				defer uwg.Done()
				var ur UnloadReply
				c.clients[w].CallOnce("Worker.Unload",
					&UnloadArgs{Dataset: name, Partition: pid}, &ur, c.cfg.Retry.CallTimeout)
			}(pid, h.w)
		}
		if !keptSet[pid] {
			rep.Dropped = append(rep.Dropped, pid)
		}
	}
	uwg.Wait()

	// Rebuild the dataset. Unheld pid slots below maxPid (retired by
	// completed cutovers whose unloads all landed) stay retired
	// placeholders, preserving the never-renumber invariant.
	dd := &dispatchedDataset{name: name, loc: map[int]int{}, cost: core.NewCostTracker()}
	dd.parts = make([]dispatchedPartition, maxPid+1)
	dd.replicas = make([][]int, maxPid+1)
	dd.nextSeq = make([]uint64, maxPid+1)
	dd.live = make([]int, maxPid+1)
	dd.writeMark = make([]uint64, maxPid+1)
	dd.pmu = make([]*sync.Mutex, maxPid+1)
	for pid := 0; pid <= maxPid; pid++ {
		dd.pmu[pid] = new(sync.Mutex)
		dd.parts[pid] = dispatchedPartition{mbrF: geom.EmptyMBR(), mbrL: geom.EmptyMBR(), retired: true}
	}
	for _, pid := range kept {
		man := manifests[pid]
		dd.parts[pid] = dispatchedPartition{
			mbrF: man.MBRf, mbrL: man.MBRl,
			trajs: len(man.IDs), fingerprint: man.Fingerprint,
		}
		dd.replicas[pid] = c.health.order(fresh[pid])
		dd.nextSeq[pid] = seqFloor[pid]
		dd.live[pid] = len(man.IDs)
		for _, id := range man.IDs {
			dd.loc[id] = pid
		}
		rep.Partitions++
		rep.Trajs += len(man.IDs)
	}
	rep.Recovered = kept
	// The manifests already fold every acked overlay, but the content no
	// longer matches any dispatch payload: healing must go worker-to-
	// worker, unpinned.
	dd.mutated = true
	rebuildTreesLocked(dd)
	c.mu.Lock()
	// Recovering over a live dataset (rather than after a restart) must
	// not rewind the epoch clock: recovery can surface unacked-but-
	// durable writes, so any answer cached against the old state is
	// suspect. Advancing past the old bounds epoch stales them all.
	if old, ok := c.datasets[name]; ok {
		old.mu.Lock()
		dd.boundsEpoch = old.boundsEpoch + 1
		old.mu.Unlock()
	}
	c.datasets[name] = dd
	c.mu.Unlock()
	return rep, nil
}
