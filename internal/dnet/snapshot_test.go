package dnet

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dita/internal/gen"
	"dita/internal/snap"
)

// snapCluster starts n workers, each persisting to dirs[i] (cold-starting
// from whatever the directory holds), plus a connected coordinator.
func snapCluster(t *testing.T, dirs []string, cfg Config, faults []*snap.FaultPlan) ([]*Worker, []string, []*SnapshotLoadReport, *Coordinator) {
	t.Helper()
	var workers []*Worker
	var addrs []string
	var reports []*SnapshotLoadReport
	for i, dir := range dirs {
		w := NewWorker()
		st, err := snap.NewStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if faults != nil {
			st.Faults = faults[i]
		}
		w.SnapStore = st
		rep, err := w.LoadSnapshots()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return workers, addrs, reports, c
}

func tempDirs(t *testing.T, n int) []string {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = filepath.Join(t.TempDir(), "snaps")
	}
	return dirs
}

// TestSnapshotColdStartZeroReship is the headline contract: restart the
// whole cluster over the same snapshot directories and the next dispatch
// ships zero partitions, drops every payload, and answers queries
// byte-identically to the fresh build.
func TestSnapshotColdStartZeroReship(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 201))
	dirs := tempDirs(t, 3)
	cfg := chaosConfig()

	workers, _, reports, c := snapCluster(t, dirs, cfg, nil)
	for i, r := range reports {
		if len(r.Loaded) != 0 || len(r.Skipped) != 0 {
			t.Fatalf("worker %d cold-started from an empty dir with %+v", i, r)
		}
	}
	rep, err := c.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused != 0 || rep.Loads != rep.Partitions*cfg.Replicas {
		t.Fatalf("fresh dispatch: %+v (want %d loads, 0 reused)", rep, rep.Partitions*cfg.Replicas)
	}
	// Every worker persists, so every partition is durable on a full
	// replica set and every payload must have been released.
	if rep.PayloadsDropped != rep.Partitions {
		t.Fatalf("dropped %d payloads, want %d", rep.PayloadsDropped, rep.Partitions)
	}
	qs := gen.Queries(d, 6, 202)
	tau := 0.01
	type answer struct {
		hits []SearchHit
	}
	var baseline []answer
	for _, q := range qs {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
		baseline = append(baseline, answer{hits})
	}

	// Whole-cluster restart: same directories, fresh processes.
	c.Close()
	for _, w := range workers {
		w.Close()
	}
	_, _, reports2, c2 := snapCluster(t, dirs, cfg, nil)
	for i, r := range reports2 {
		if len(r.Loaded) == 0 {
			t.Fatalf("worker %d restored nothing from its snapshot dir", i)
		}
		if len(r.Skipped) != 0 {
			t.Fatalf("worker %d skipped snapshots on clean restart: %+v", i, r.Skipped)
		}
	}
	rep2, err := c2.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Loads != 0 {
		t.Fatalf("cold-start dispatch shipped %d loads, want 0 (report %+v)", rep2.Loads, rep2)
	}
	if rep2.Reused != rep2.Partitions*cfg.Replicas {
		t.Fatalf("cold-start dispatch reused %d, want %d", rep2.Reused, rep2.Partitions*cfg.Replicas)
	}
	if rep2.PayloadsDropped != rep2.Partitions {
		t.Fatalf("cold-start dispatch dropped %d payloads, want %d", rep2.PayloadsDropped, rep2.Partitions)
	}
	for i, q := range qs {
		hits, err := c2.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(baseline[i].hits) {
			t.Fatalf("query %d: cold %d hits, fresh %d", i, len(hits), len(baseline[i].hits))
		}
		for j, h := range hits {
			if h != baseline[i].hits[j] {
				t.Fatalf("query %d hit %d: cold %+v, fresh %+v", i, j, h, baseline[i].hits[j])
			}
		}
	}
}

// TestSnapshotCorruptionFallback damages snapshots in every way the format
// must detect — bit flip, truncation, version bump — and requires the
// restart to classify and skip each one (counted on the obs counters),
// re-ship only what was lost, and still answer exactly.
func TestSnapshotCorruptionFallback(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(250, 203))
	dirs := tempDirs(t, 2)
	cfg := chaosConfig()
	workers, _, _, c := snapCluster(t, dirs, cfg, nil)
	if _, err := c.DispatchStats("trips", d); err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(d, 5, 204)
	tau := 0.01
	c.Close()
	for _, w := range workers {
		w.Close()
	}

	// Corrupt worker 0's store: rotate through the three damage classes.
	names, err := filepath.Glob(filepath.Join(dirs[0], "*.snap"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no snapshots to corrupt: %v", err)
	}
	wantSkips := 0
	for i, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // bit rot
			data[len(data)/2] ^= 0x10
		case 1: // torn write
			data = data[:len(data)*3/5]
		case 2: // future format version
			binary.LittleEndian.PutUint32(data[len(data)-16:], snap.Version+7)
		}
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
		wantSkips++
	}

	workers2, _, reports, c2 := snapCluster(t, dirs, cfg, nil)
	if len(reports[0].Skipped) != wantSkips {
		t.Fatalf("worker 0 skipped %d snapshots, want %d: %+v", len(reports[0].Skipped), wantSkips, reports[0].Skipped)
	}
	for i, s := range reports[0].Skipped {
		if s.Class != "corrupt" && s.Class != "version" {
			t.Fatalf("skip %d class %q (%s), want corrupt/version", i, s.Class, s.Err)
		}
		if !strings.HasSuffix(s.Path, ".snap") {
			t.Fatalf("skip %d names a non-snapshot path %q", i, s.Path)
		}
	}
	if got := workers2[0].snapLoadCorrupt.Load(); got != int64(wantSkips) {
		t.Fatalf("snap_load_corrupt = %d, want %d", got, wantSkips)
	}
	if len(reports[1].Skipped) != 0 {
		t.Fatalf("undamaged worker skipped snapshots: %+v", reports[1].Skipped)
	}
	rep, err := c2.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 lost everything; worker 1 kept everything it owned.
	if rep.Loads == 0 {
		t.Fatal("corrupted worker was not re-shipped anything")
	}
	if rep.Reused == 0 {
		t.Fatal("undamaged worker's snapshots were not reused")
	}
	if rep.Loads+rep.Reused != rep.Partitions*cfg.Replicas {
		t.Fatalf("loads %d + reused %d != placements %d", rep.Loads, rep.Reused, rep.Partitions*cfg.Replicas)
	}
	for _, q := range qs {
		hits, err := c2.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
}

// TestSnapshotWriteChaos turns on the storage fault plan — crashed,
// failed, and torn writes — during dispatch. Loads must succeed anyway
// (persistence failure degrades, never fails a load), queries stay exact,
// and a cold restart over the damaged directory classifies every torn
// file instead of crashing, then recovers by re-shipping.
func TestSnapshotWriteChaos(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(250, 205))
	dirs := tempDirs(t, 2)
	cfg := chaosConfig()
	faults := []*snap.FaultPlan{
		{Seed: 11, CrashRate: 0.25, FailRate: 0.1, TornRate: 0.25, FlipRate: 0.1},
		nil,
	}
	workers, _, _, c := snapCluster(t, dirs, cfg, faults)
	rep, err := c.DispatchStats("trips", d)
	if err != nil {
		t.Fatalf("dispatch must tolerate snapshot write faults: %v", err)
	}
	if rep.Loads != rep.Partitions*cfg.Replicas {
		t.Fatalf("fresh dispatch: %+v", rep)
	}
	qs := gen.Queries(d, 5, 206)
	tau := 0.01
	for _, q := range qs {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
	wrote := workers[0].snapWriteOK.Load()
	failed := workers[0].snapWriteErr.Load()
	if wrote+failed != int64(rep.Loads/2) {
		t.Fatalf("worker 0 accounted %d+%d writes, want %d", wrote, failed, rep.Loads/2)
	}
	if failed == 0 {
		t.Fatal("fault plan injected no write failures — rates too low for this seed")
	}
	c.Close()
	for _, w := range workers {
		w.Close()
	}

	// Cold restart over the damaged store: torn/flipped files are
	// classified, never decoded; crashed writes left only .tmp orphans
	// (cleaned by the scan); recovery is a re-ship.
	_, _, reports, c2 := snapCluster(t, dirs, cfg, nil)
	for _, s := range reports[0].Skipped {
		if s.Class != "corrupt" {
			t.Fatalf("damaged store produced class %q (%s), want corrupt", s.Class, s.Err)
		}
	}
	if orphans, _ := filepath.Glob(filepath.Join(dirs[0], "*.tmp")); len(orphans) != 0 {
		t.Fatalf("cold start left crashed-write orphans: %v", orphans)
	}
	rep2, err := c2.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Loads+rep2.Reused != rep2.Partitions*cfg.Replicas {
		t.Fatalf("loads %d + reused %d != placements %d", rep2.Loads, rep2.Reused, rep2.Partitions*cfg.Replicas)
	}
	for _, q := range qs {
		hits, err := c2.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
}

// TestSnapshotHealAfterPayloadDrop is the satellite-2 regression: with
// payloads released (the coordinator memory saving), killing a worker
// must still heal every partition back to full replication — the target
// pulls the snapshot from the surviving replica — and results must stay
// exact even after a second worker dies.
func TestSnapshotHealAfterPayloadDrop(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 207))
	dirs := tempDirs(t, 3)
	cfg := chaosConfig()
	workers, _, _, c := snapCluster(t, dirs, cfg, nil)
	rep, err := c.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PayloadsDropped != rep.Partitions {
		t.Fatalf("payloads retained: %+v", rep)
	}
	dd, err := c.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	dd.mu.Lock()
	for pid := range dd.parts {
		if dd.parts[pid].payload != nil {
			t.Fatalf("partition %d still holds its payload", pid)
		}
	}
	dd.mu.Unlock()

	workers[1].Close()
	c.CheckHealth()
	states := c.CheckHealth()
	if states[1] != Dead {
		t.Fatalf("worker 1 = %v, want dead", states[1])
	}
	dd.mu.Lock()
	for pid, owners := range dd.replicas {
		if len(owners) != cfg.Replicas {
			t.Fatalf("partition %d has %d replicas after snapshot heal, want %d", pid, len(owners), cfg.Replicas)
		}
		for _, w := range owners {
			if w == 1 {
				t.Fatalf("partition %d still lists dead worker 1", pid)
			}
		}
	}
	dd.mu.Unlock()
	// Snapshot healing replicated real content: losing another worker
	// must not lose answers.
	workers[2].Close()
	tau := 0.01
	for _, q := range gen.Queries(d, 5, 208) {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
}

// TestRetainPayloadsOptOut: the escape hatch keeps payloads in memory
// even when snapshots are durable everywhere.
func TestRetainPayloadsOptOut(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(120, 209))
	dirs := tempDirs(t, 2)
	cfg := chaosConfig()
	cfg.RetainPayloads = true
	_, _, _, c := snapCluster(t, dirs, cfg, nil)
	rep, err := c.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PayloadsDropped != 0 {
		t.Fatalf("RetainPayloads dropped %d payloads", rep.PayloadsDropped)
	}
	dd, _ := c.dataset("trips")
	dd.mu.Lock()
	defer dd.mu.Unlock()
	for pid := range dd.parts {
		if dd.parts[pid].payload == nil {
			t.Fatalf("partition %d payload released despite RetainPayloads", pid)
		}
	}
}

// TestWorkerSnapshotLifecycle exercises the worker-local persistence
// contract directly: Load persists and reports durability, an identical
// reload is recognized without a rebuild, and Unload removes the file so
// a cold start cannot resurrect rolled-back data.
func TestWorkerSnapshotLifecycle(t *testing.T) {
	dir := t.TempDir()
	w := NewWorker()
	st, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.SnapStore = st
	svc := &workerService{w: w}

	d := gen.Generate(gen.BeijingLike(40, 210))
	args := &LoadArgs{
		Dataset: "trips", Partition: 3,
		Measure: MeasureSpec{Name: "DTW"},
		K:       2, NLAlign: 3, NLPivot: 2, MinNode: 2, CellD: 0.01,
	}
	for _, tr := range d.Trajs {
		args.Trajs = append(args.Trajs, WireTrajectory{ID: tr.ID, Points: tr.Points})
	}
	var rep LoadReply
	if err := svc.Load(args, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Snapshotted || rep.SnapshotBytes <= 0 {
		t.Fatalf("load not persisted: %+v", rep)
	}
	if _, err := os.Stat(st.Path("trips", 3)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	if got := w.snapWriteOK.Load(); got != 1 {
		t.Fatalf("snap_write_ok = %d, want 1", got)
	}

	// Identical reload: recognized by fingerprint, index not rebuilt.
	w.mu.RLock()
	before := w.parts[partKey{"trips", 3}]
	w.mu.RUnlock()
	var rep2 LoadReply
	if err := svc.Load(args, &rep2); err != nil {
		t.Fatal(err)
	}
	w.mu.RLock()
	after := w.parts[partKey{"trips", 3}]
	w.mu.RUnlock()
	if before != after {
		t.Fatal("identical reload rebuilt the partition")
	}
	if !rep2.Snapshotted || rep2.SnapshotBytes != rep.SnapshotBytes {
		t.Fatalf("reload durability report: %+v, want %+v", rep2, rep)
	}

	// Changed content at the same key must rebuild.
	args.Trajs = args.Trajs[:len(args.Trajs)-1]
	var rep3 LoadReply
	if err := svc.Load(args, &rep3); err != nil {
		t.Fatal(err)
	}
	w.mu.RLock()
	changed := w.parts[partKey{"trips", 3}]
	w.mu.RUnlock()
	if changed == after {
		t.Fatal("changed content did not rebuild the partition")
	}

	var urep UnloadReply
	if err := svc.Unload(&UnloadArgs{Dataset: "trips", Partition: 3}, &urep); err != nil {
		t.Fatal(err)
	}
	if !urep.Unloaded {
		t.Fatal("unload found nothing")
	}
	if _, err := os.Stat(st.Path("trips", 3)); !os.IsNotExist(err) {
		t.Fatalf("unload left the snapshot file behind: %v", err)
	}
	rep4, err := w.LoadSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep4.Loaded) != 0 {
		t.Fatalf("cold start resurrected unloaded partitions: %+v", rep4.Loaded)
	}
}
