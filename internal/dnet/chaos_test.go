package dnet

import (
	"net/rpc"
	"strings"
	"testing"
	"time"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

// chaosCluster starts n workers and a coordinator and hands the worker
// handles back so tests can kill and restart nodes.
func chaosCluster(t *testing.T, n int, cfg Config) ([]*Worker, []string, *Coordinator) {
	t.Helper()
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w := NewWorker()
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return workers, addrs, c
}

// chaosConfig: replicas on, fast failure detection, fast retries.
func chaosConfig() Config {
	cfg := testConfig()
	cfg.Replicas = 2
	cfg.Health = HealthPolicy{
		SuspectAfter: 1,
		DeadAfter:    2,
		PingTimeout:  time.Second,
	}
	return cfg
}

func bruteSearch(d *traj.Dataset, q *traj.T, tau float64) map[int]bool {
	m := measure.DTW{}
	want := map[int]bool{}
	for _, tr := range d.Trajs {
		if m.Distance(tr.Points, q.Points) <= tau {
			want[tr.ID] = true
		}
	}
	return want
}

func assertExactHits(t *testing.T, hits []SearchHit, want map[int]bool) {
	t.Helper()
	if len(hits) != len(want) {
		t.Fatalf("got %d hits, want %d", len(hits), len(want))
	}
	for _, h := range hits {
		if !want[h.ID] {
			t.Fatalf("spurious hit %d", h.ID)
		}
	}
}

// Killing one of three workers mid-workload must not change search
// results: every partition has a second replica to fail over to. After
// the failure detector declares the worker dead, its partitions are
// re-replicated onto the survivors, at which point even a second worker
// loss is survivable.
func TestChaosSearchFailover(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 101))
	workers, _, c := chaosCluster(t, 3, chaosConfig())
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(d, 6, 102)
	tau := 0.01
	for i, q := range qs {
		if i == len(qs)/2 {
			// Crash a worker mid-workload.
			workers[1].Close()
		}
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
	// Drive the failure detector: DeadAfter=2 consecutive missed checks.
	c.CheckHealth()
	states := c.CheckHealth()
	if states[1] != Dead {
		t.Fatalf("worker 1 state = %v, want dead", states[1])
	}
	if states[0] != Healthy || states[2] != Healthy {
		t.Fatalf("surviving workers not healthy: %v", states)
	}
	// Healing must have restored 2 live replicas for every partition.
	dd, err := c.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	dd.mu.Lock()
	for pid, owners := range dd.replicas {
		if len(owners) != 2 {
			t.Fatalf("partition %d has %d replicas after heal, want 2", pid, len(owners))
		}
		for _, w := range owners {
			if w == 1 {
				t.Fatalf("partition %d still lists dead worker 1", pid)
			}
		}
	}
	dd.mu.Unlock()
	// With the dataset healed onto workers {0,2}, losing a second worker
	// still leaves one replica of everything.
	workers[2].Close()
	for _, q := range qs {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
}

// Killing a worker during the join shuffle must not change the result:
// shipments fail over to replica partitions on both the source and the
// destination side.
func TestChaosJoinFailover(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(120, 103))
	b := gen.Generate(gen.BeijingLike(100, 103)) // same seed: shared routes
	for _, tr := range b.Trajs {
		tr.ID += 100000
	}
	workers, _, c := chaosCluster(t, 3, chaosConfig())
	if err := c.Dispatch("T", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("Q", b); err != nil {
		t.Fatal(err)
	}
	tau := 0.01
	m := measure.DTW{}
	want := map[[2]int]bool{}
	for _, x := range a.Trajs {
		for _, y := range b.Trajs {
			if m.Distance(x.Points, y.Points) <= tau {
				want[[2]int{x.ID, y.ID}] = true
			}
		}
	}
	// Crash a worker between dispatch and the join shuffle.
	workers[0].Close()
	pairs, err := c.Join("T", "Q", tau)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]int]bool{}
	for _, p := range pairs {
		key := [2]int{p.TID, p.QID}
		if got[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing pair %v", k)
		}
	}
}

// A worker that crashes and restarts at the same address must be
// reconnected to transparently by the managed clients, revived by the
// failure detector, and used again for new dispatches.
func TestChaosWorkerRestart(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(200, 104))
	workers, addrs, c := chaosCluster(t, 2, chaosConfig())
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	qs := gen.Queries(d, 3, 105)
	tau := 0.01
	workers[1].Close()
	// Both partitions replicated on both workers: still exact.
	for _, q := range qs {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
	c.CheckHealth()
	if states := c.CheckHealth(); states[1] != Dead {
		t.Fatalf("worker 1 state = %v, want dead", states[1])
	}
	// Restart a fresh worker on the same address (data is gone, as after
	// a process restart).
	w := NewWorker()
	if _, err := w.Serve(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if states := c.CheckHealth(); states[1] != Healthy {
		t.Fatalf("restarted worker state = %v, want healthy", states[1])
	}
	// New dispatches use the revived worker again, through the
	// managed clients' automatic reconnect.
	d2 := gen.Generate(gen.BeijingLike(150, 106))
	if err := c.Dispatch("fresh", d2); err != nil {
		t.Fatal(err)
	}
	stats, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].Trajs == 0 {
		t.Fatal("restarted worker received no data on re-dispatch")
	}
	for _, q := range gen.Queries(d2, 3, 107) {
		hits, err := c.Search("fresh", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d2, q, tau))
	}
}

// With replication off and a worker dead, strict mode fails the query;
// AllowPartial returns the surviving partitions' results plus a report
// naming exactly the lost partitions.
func TestChaosAllowPartialReport(t *testing.T) {
	cfg := testConfig()
	cfg.Replicas = 1
	workers, _, c := chaosCluster(t, 2, cfg)
	dT := gen.Generate(gen.BeijingLike(60, 108))
	dQ := gen.Generate(gen.BeijingLike(50, 108))
	for _, tr := range dQ.Trajs {
		tr.ID += 100000
	}
	if err := c.Dispatch("T", dT); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("Q", dQ); err != nil {
		t.Fatal(err)
	}
	// τ large enough that every partition is relevant and every pair
	// matches, so expectations are exact arithmetic over partition sizes.
	tau := 100.0
	deadParts := func(name string) (pids map[int]bool, trajs int) {
		dd, err := c.dataset(name)
		if err != nil {
			t.Fatal(err)
		}
		pids = map[int]bool{}
		dd.mu.Lock()
		defer dd.mu.Unlock()
		for pid, owners := range dd.replicas {
			if owners[0] == 1 {
				pids[pid] = true
				trajs += dd.parts[pid].trajs
			}
		}
		return pids, trajs
	}
	deadT, deadTrajsT := deadParts("T")
	deadQ, deadTrajsQ := deadParts("Q")
	if len(deadT) == 0 || len(deadQ) == 0 {
		t.Fatal("test setup: worker 1 owns no partitions")
	}
	workers[1].Close()
	q := dT.Trajs[0]

	// Strict mode: all-or-nothing error naming the unreachable state.
	if _, err := c.Search("T", q, tau); err == nil {
		t.Fatal("strict search over lost partitions returned no error")
	} else if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("unexpected strict-mode error: %v", err)
	}
	if _, err := c.Join("T", "Q", tau); err == nil {
		t.Fatal("strict join over lost partitions returned no error")
	}

	// Partial mode: exact surviving results + exact skip report.
	c.cfg.AllowPartial = true
	hits, rep, err := c.SearchPartial("T", q, tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != dT.Len()-deadTrajsT {
		t.Fatalf("partial search returned %d hits, want %d (= %d total - %d lost)",
			len(hits), dT.Len()-deadTrajsT, dT.Len(), deadTrajsT)
	}
	if len(rep.Skipped) != len(deadT) {
		t.Fatalf("report lists %d skipped partitions, want %d", len(rep.Skipped), len(deadT))
	}
	for _, s := range rep.Skipped {
		if s.Dataset != "T" || !deadT[s.Partition] {
			t.Fatalf("report names live partition %s/%d", s.Dataset, s.Partition)
		}
		if s.Err == "" {
			t.Fatalf("skipped partition %d carries no error", s.Partition)
		}
	}

	pairs, jrep, err := c.JoinPartial("T", "Q", tau)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := (dT.Len() - deadTrajsT) * (dQ.Len() - deadTrajsQ)
	if len(pairs) != wantPairs {
		t.Fatalf("partial join returned %d pairs, want %d", len(pairs), wantPairs)
	}
	gotSkip := map[SkippedPartition]bool{}
	for _, s := range jrep.Skipped {
		gotSkip[SkippedPartition{Dataset: s.Dataset, Partition: s.Partition}] = true
	}
	wantSkip := map[SkippedPartition]bool{}
	for pid := range deadT {
		wantSkip[SkippedPartition{Dataset: "T", Partition: pid}] = true
	}
	for pid := range deadQ {
		wantSkip[SkippedPartition{Dataset: "Q", Partition: pid}] = true
	}
	if len(gotSkip) != len(wantSkip) {
		t.Fatalf("join report %v, want %v", gotSkip, wantSkip)
	}
	for k := range wantSkip {
		if !gotSkip[k] {
			t.Fatalf("join report missing lost partition %s/%d", k.Dataset, k.Partition)
		}
	}
}

// Losing every worker drains the replica lists to empty. Partial-mode
// queries over drained lists must report the partitions (not panic on a
// nil error), and once a worker comes back, the next health check — with
// no further death transition — must rebuild the dataset onto it from
// the retained payloads.
func TestChaosHealRetryAfterTotalLoss(t *testing.T) {
	cfg := chaosConfig()
	cfg.AllowPartial = true
	workers, addrs, c := chaosCluster(t, 2, cfg)
	dT := gen.Generate(gen.BeijingLike(60, 114))
	dQ := gen.Generate(gen.BeijingLike(50, 114))
	for _, tr := range dQ.Trajs {
		tr.ID += 100000
	}
	if err := c.Dispatch("T", dT); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("Q", dQ); err != nil {
		t.Fatal(err)
	}
	tau := 100.0 // every partition relevant, every pair within tau
	for _, w := range workers {
		w.Close()
	}
	c.CheckHealth()
	states := c.CheckHealth() // DeadAfter=2: both workers buried
	if states[0] != Dead || states[1] != Dead {
		t.Fatalf("worker states after total loss = %v, want all dead", states)
	}
	dd, err := c.dataset("T")
	if err != nil {
		t.Fatal(err)
	}
	nparts := len(dd.parts)
	dd.mu.Lock()
	for pid, owners := range dd.replicas {
		if len(owners) != 0 {
			t.Fatalf("partition %d still lists replicas %v after total loss", pid, owners)
		}
	}
	dd.mu.Unlock()

	// Empty replica lists: partial queries report, with a real error.
	q := dT.Trajs[0]
	hits, rep, err := c.SearchPartial("T", q, tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("search over a fully-lost dataset returned %d hits", len(hits))
	}
	if len(rep.Skipped) != nparts {
		t.Fatalf("report lists %d skipped partitions, want %d", len(rep.Skipped), nparts)
	}
	for _, s := range rep.Skipped {
		if !strings.Contains(s.Err, "no replicas") {
			t.Fatalf("skipped partition %d carries error %q, want a no-replicas error", s.Partition, s.Err)
		}
	}
	pairs, jrep, err := c.JoinPartial("T", "Q", tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 0 || !jrep.Partial() {
		t.Fatalf("join over a fully-lost dataset: %d pairs, partial=%v", len(pairs), jrep.Partial())
	}
	for _, s := range jrep.Skipped {
		if s.Err == "" {
			t.Fatalf("skipped partition %s/%d carries no error", s.Dataset, s.Partition)
		}
	}

	// One worker returns (empty, as after a process restart). The next
	// check revives it and heals both datasets onto it — no death
	// transition involved, so this exercises the periodic re-scan.
	w := NewWorker()
	if _, err := w.Serve(addrs[0]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if states := c.CheckHealth(); states[0] != Healthy {
		t.Fatalf("restarted worker state = %v, want healthy", states[0])
	}
	dd.mu.Lock()
	for pid, owners := range dd.replicas {
		if len(owners) != 1 || owners[0] != 0 {
			t.Fatalf("partition %d replicas after heal = %v, want [0]", pid, owners)
		}
	}
	dd.mu.Unlock()
	hits, rep, err = c.SearchPartial("T", q, tau)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial() {
		t.Fatalf("healed search still partial: %+v", rep.Skipped)
	}
	if len(hits) != dT.Len() {
		t.Fatalf("healed search returned %d hits, want %d", len(hits), dT.Len())
	}
	pairs, jrep, err = c.JoinPartial("T", "Q", tau)
	if err != nil {
		t.Fatal(err)
	}
	if jrep.Partial() {
		t.Fatalf("healed join still partial: %+v", jrep.Skipped)
	}
	if len(pairs) != dT.Len()*dQ.Len() {
		t.Fatalf("healed join returned %d pairs, want %d", len(pairs), dT.Len()*dQ.Len())
	}
}

// An application-level error (here: a replica that lost a partition)
// must route the query to the next replica without marking the answering
// worker suspect — only transport failures count against health.
func TestChaosAppErrorDoesNotPoisonHealth(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(80, 115))
	_, _, c := chaosCluster(t, 2, chaosConfig())
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	dd, err := c.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	dd.mu.Lock()
	preferred := dd.replicas[0][0]
	dd.mu.Unlock()
	// Drop partition 0 from its preferred replica behind the
	// coordinator's back; searches hit an rpc.ServerError there.
	var ur UnloadReply
	if err := c.clients[preferred].Call("Worker.Unload", &UnloadArgs{Dataset: "trips", Partition: 0}, &ur); err != nil {
		t.Fatal(err)
	}
	if !ur.Unloaded {
		t.Fatal("preferred replica did not hold partition 0")
	}
	tau := 100.0 // every partition (including 0) is relevant
	hits, err := c.Search("trips", d.Trajs[0], tau)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != d.Len() {
		t.Fatalf("failover search returned %d hits, want %d", len(hits), d.Len())
	}
	for i, s := range c.WorkerStates() {
		if s != Healthy {
			t.Fatalf("worker %d state = %v after an application error, want healthy", i, s)
		}
	}
}

// Peer-unreachable detection is structural: only an rpc.ServerError
// carrying the exact Ship prefix selects destination-side failover.
func TestIsPeerUnreachable(t *testing.T) {
	if !isPeerUnreachable(rpc.ServerError(peerUnreachablePrefix + "127.0.0.1:9: connection refused")) {
		t.Fatal("genuine ship error not detected")
	}
	if isPeerUnreachable(rpc.ServerError("dnet: dataset about peer unreachable things not loaded")) {
		t.Fatal("substring in an unrelated application error detected as peer-unreachable")
	}
	if isPeerUnreachable(errTest(peerUnreachablePrefix + "x")) {
		t.Fatal("non-ServerError detected as peer-unreachable")
	}
	if isPeerUnreachable(nil) {
		t.Fatal("nil error detected as peer-unreachable")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

// A dispatch that fails partway (one worker dead, no replicas possible)
// must unload everything it already shipped, so a later retry cannot
// double-index partitions on the surviving workers.
func TestChaosDispatchRollback(t *testing.T) {
	cfg := testConfig()
	cfg.Replicas = 1
	workers, addrs, c := chaosCluster(t, 2, cfg)
	workers[1].Close()
	d := gen.Generate(gen.BeijingLike(120, 109))
	if err := c.Dispatch("trips", d); err == nil {
		t.Fatal("dispatch with a dead worker and no replicas succeeded")
	}
	var stats StatsReply
	if err := c.clients[0].Call("Worker.Stats", &StatsArgs{}, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 0 {
		t.Fatalf("surviving worker still holds %d partitions after rollback", stats.Partitions)
	}
	// After the worker comes back, the retried dispatch lands exactly one
	// copy of the data.
	w := NewWorker()
	if _, err := w.Serve(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	all, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range all {
		total += s.Trajs
	}
	if total != d.Len() {
		t.Fatalf("workers hold %d trajectory copies after retry, want %d", total, d.Len())
	}
}

// Under seeded fault injection (random severed connections), the managed
// clients' retry + reconnect keeps search exact.
func TestChaosFaultInjectionSearch(t *testing.T) {
	plan := &FaultPlan{Seed: 7, ErrorRate: 0.003}
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker()
		w.FaultInjection = plan
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	cfg := chaosConfig()
	cfg.Retry.MaxAttempts = 12
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	d := gen.Generate(gen.BeijingLike(150, 110))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	tau := 0.01
	for _, q := range gen.Queries(d, 5, 111) {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		assertExactHits(t, hits, bruteSearch(d, q, tau))
	}
}

// Connections that are severed after a fixed op budget force periodic
// reconnects; dispatch, search, and the worker-to-worker join shuffle
// must all recover transparently.
func TestChaosFaultInjectionSever(t *testing.T) {
	plan := &FaultPlan{Seed: 11, SeverAfter: 400}
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker()
		w.FaultInjection = plan
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	cfg := chaosConfig()
	cfg.Retry.MaxAttempts = 12
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	d := gen.Generate(gen.BeijingLike(80, 112))
	if err := c.Dispatch("A", d); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("B", d); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Join("A", "B", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	self := 0
	for _, p := range pairs {
		if p.TID == p.QID {
			self++
		}
	}
	if self != d.Len() {
		t.Fatalf("self pairs %d, want %d", self, d.Len())
	}
}

// The heartbeat loop starts with the coordinator and stops with Close,
// without leaking goroutines or racing manual checks.
func TestChaosHeartbeatLoop(t *testing.T) {
	cfg := chaosConfig()
	cfg.Health.Interval = time.Millisecond
	workers, _, c := chaosCluster(t, 2, cfg)
	d := gen.Generate(gen.BeijingLike(60, 113))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	c.CheckHealth() // manual checks coexist with the loop
	_ = workers
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("seed=7,drop=0.05,err=0.01,delay=2ms,sever=500")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 7 || plan.DropRate != 0.05 || plan.ErrorRate != 0.01 ||
		plan.Delay != 2*time.Millisecond || plan.SeverAfter != 500 {
		t.Fatalf("parsed %+v", plan)
	}
	if _, err := ParseFaultPlan("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseFaultPlan("seed"); err == nil {
		t.Fatal("missing value accepted")
	}
	if plan, err := ParseFaultPlan(""); err != nil || plan.Seed != 1 {
		t.Fatalf("empty spec: %+v, %v", plan, err)
	}
}

// Worker.Close and Worker.Shutdown are idempotent and callable in any
// order; RPCs after shutdown fail cleanly.
func TestWorkerShutdownIdempotent(t *testing.T) {
	w := NewWorker()
	addr, err := w.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mc := newManagedClient(addr, RetryPolicy{MaxAttempts: 1, CallTimeout: time.Second})
	defer mc.Close()
	var pong PingReply
	if err := mc.Call("Worker.Ping", &PingArgs{}, &pong); err != nil {
		t.Fatal(err)
	}
	if err := w.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Shutdown(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := mc.Call("Worker.Ping", &PingArgs{}, &pong); err == nil {
		t.Fatal("ping succeeded after shutdown")
	}
}

// The retry classifier: application errors are final, transport errors
// are retryable.
func TestRetryClassification(t *testing.T) {
	w := NewWorker()
	addr, err := w.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	mc := newManagedClient(addr, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, CallTimeout: time.Second})
	defer mc.Close()
	// Application error (unknown partition): must come back verbatim,
	// not wrapped in "failed after N attempts".
	var reply SearchReply
	err = mc.Call("Worker.Search", &SearchArgs{Dataset: "none", Partition: 0}, &reply)
	if err == nil || strings.Contains(err.Error(), "attempts") {
		t.Fatalf("application error was retried: %v", err)
	}
	// Transport error (dead address): retried and reported as exhausted.
	dead := newManagedClient("127.0.0.1:1", RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, CallTimeout: time.Second})
	defer dead.Close()
	err = dead.Call("Worker.Ping", &PingArgs{}, &PingReply{})
	if err == nil || !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("transport error not retried: %v", err)
	}
}
