package dnet

import (
	"sync"
	"testing"
	"time"

	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/traj"
)

// checkNetDifferentialM is checkDifferential generalized over the
// measure: threshold search and kNN against the live cluster must agree
// exactly with brute force over the logical oracle under measure m.
func checkNetDifferentialM(t *testing.T, c *Coordinator, name string, oracle map[int]*traj.T, qs []*traj.T, tau float64, m measure.Measure) {
	t.Helper()
	od := oracleDataset(oracle)
	for qi, q := range qs {
		hits, err := c.Search(name, q, tau)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := map[int]bool{}
		for _, tr := range od.Trajs {
			if m.Distance(tr.Points, q.Points) <= tau {
				want[tr.ID] = true
			}
		}
		assertExactHits(t, hits, want)
		for _, k := range []int{1, 7, len(od.Trajs) + 3} {
			wantK := bruteKNNHits(od, m, q, k)
			got, err := c.SearchKNN(name, q, k)
			if err != nil {
				t.Fatalf("knn query %d k=%d: %v", qi, k, err)
			}
			if !sameHits(got, wantK) {
				t.Fatalf("knn query %d k=%d: got %d hits, want %d — cluster disagrees with brute force after rebalance",
					qi, k, len(got), len(wantK))
			}
		}
	}
}

// livePartIDs returns the dataset's non-retired partition ids (nil when
// the dataset is unknown); liveParts is the failing-test wrapper.
func livePartIDs(c *Coordinator, name string) []int {
	dd, err := c.dataset(name)
	if err != nil {
		return nil
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	var out []int
	for pid := range dd.parts {
		if !dd.parts[pid].retired {
			out = append(out, pid)
		}
	}
	return out
}

func liveParts(t *testing.T, c *Coordinator, name string) []int {
	t.Helper()
	out := livePartIDs(c, name)
	if len(out) == 0 {
		t.Fatalf("dataset %q has no live partitions", name)
	}
	return out
}

// TestNetRebalanceDifferentialAllMeasures is the differential rebalance
// contract on a live replicated TCP cluster, once per measure:
// interleave streamed inserts, upserts and deletes with an online split
// and an online merge, and after every phase the mutated-and-recut
// cluster must answer threshold search and kNN exactly as brute force
// over the logical oracle — the rebalance may move data, never change
// answers. Join is covered separately (TestNetRebalanceJoinDifferential)
// to keep the five-way matrix fast.
func TestNetRebalanceDifferentialAllMeasures(t *testing.T) {
	cases := []struct {
		name string
		spec MeasureSpec
		m    measure.Measure
		tau  float64
	}{
		{"dtw", MeasureSpec{Name: "DTW"}, measure.DTW{}, 0.01},
		{"frechet", MeasureSpec{Name: "FRECHET"}, measure.Frechet{}, 0.005},
		{"edr", MeasureSpec{Name: "EDR", Eps: 0.002}, measure.EDR{Eps: 0.002}, 6},
		{"lcss", MeasureSpec{Name: "LCSS", Eps: 0.002, Delta: 5}, measure.LCSS{Eps: 0.002, Delta: 5}, 0.7},
		{"erp", MeasureSpec{Name: "ERP"}, measure.ERP{}, 0.05},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d := gen.Generate(gen.BeijingLike(120, 401))
			extra := gen.Generate(gen.BeijingLike(90, 402))
			cfg := chaosConfig()
			cfg.Measure = tc.spec
			_, _, _, c := ingestCluster(t, 3, cfg, 1<<10, 0)
			if err := c.Dispatch("trips", d); err != nil {
				t.Fatal(err)
			}
			oracle := map[int]*traj.T{}
			for _, tr := range d.Trajs {
				oracle[tr.ID] = tr
			}
			qs := gen.Queries(d, 3, 403)

			// Phase 1: stream inserts, then split a live partition in place.
			for i := 0; i < 40; i++ {
				nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
				if err := c.Ingest("trips", nt); err != nil {
					t.Fatalf("insert %d: %v", nt.ID, err)
				}
				oracle[nt.ID] = nt
			}
			before := liveParts(t, c, "trips")
			st, err := c.SplitPartition("trips", before[0], 3)
			if err != nil {
				t.Fatalf("split: %v", err)
			}
			if len(st.Created) == 0 || st.Trajs == 0 {
				t.Fatalf("split moved nothing: %+v", st)
			}
			checkNetDifferentialM(t, c, "trips", oracle, qs, tc.tau, tc.m)

			// Phase 2: upserts and deletes across old and new partitions,
			// then merge two live partitions back together.
			for j := 0; j < 20; j++ {
				id := d.Trajs[j].ID
				nt := &traj.T{ID: id, Points: extra.Trajs[40+j].Points}
				if err := c.Ingest("trips", nt); err != nil {
					t.Fatalf("upsert %d: %v", id, err)
				}
				oracle[id] = nt
			}
			for j := 20; j < 35; j++ {
				id := d.Trajs[j].ID
				ok, err := c.Delete("trips", id)
				if err != nil || !ok {
					t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
				}
				delete(oracle, id)
			}
			live := liveParts(t, c, "trips")
			if len(live) < 2 {
				t.Fatalf("want >= 2 live partitions, have %v", live)
			}
			if _, err := c.MergePartitions("trips", live[:2]); err != nil {
				t.Fatalf("merge: %v", err)
			}
			checkNetDifferentialM(t, c, "trips", oracle, qs, tc.tau, tc.m)

			// Phase 3: writes AFTER the cutovers land in the re-cut layout.
			for i := 40; i < 70; i++ {
				nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i%90].Points}
				if err := c.Ingest("trips", nt); err != nil {
					t.Fatalf("post-cutover insert %d: %v", nt.ID, err)
				}
				oracle[nt.ID] = nt
			}
			checkNetDifferentialM(t, c, "trips", oracle, qs, tc.tau, tc.m)
		})
	}
}

// TestNetRebalanceConcurrentWrites races streamed writes against live
// cutovers: writers blocked on a partition mid-cutover must re-route to
// the piece that now owns their trajectory, every ack must stick, and
// the final state must match the oracle exactly. This is the
// interleaving the per-partition write locks and the locked-then-
// revalidate dance in lockPartitionWrite exist for; run under -race.
func TestNetRebalanceConcurrentWrites(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(100, 481))
	extra := gen.Generate(gen.BeijingLike(120, 482))
	_, _, _, c := ingestCluster(t, 3, chaosConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	var omu sync.Mutex
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				nt := &traj.T{ID: 500000 + g*1000 + i, Points: extra.Trajs[(g*40+i)%120].Points}
				if err := c.Ingest("trips", nt); err != nil {
					errc <- err
					return
				}
				omu.Lock()
				oracle[nt.ID] = nt
				omu.Unlock()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			live := livePartIDs(c, "trips")
			if len(live) == 0 {
				return
			}
			if _, err := c.SplitPartition("trips", live[round%len(live)], 2); err != nil {
				errc <- err
				return
			}
			live = livePartIDs(c, "trips")
			if len(live) >= 2 {
				if _, err := c.MergePartitions("trips", live[:2]); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	checkNetDifferentialM(t, c, "trips", oracle, gen.Queries(d, 3, 483), 0.01, measure.DTW{})
}

// TestNetRebalanceJoinDifferential: the join shuffle must read the
// re-cut layout, not the dispatch-time one — join a split-and-merged
// mutated dataset against a freshly dispatched probe set and compare
// with brute force over the oracle.
func TestNetRebalanceJoinDifferential(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(130, 411))
	extra := gen.Generate(gen.BeijingLike(80, 412))
	_, _, _, c := ingestCluster(t, 3, chaosConfig(), 1<<10, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	for i := 0; i < 30; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatal(err)
		}
		oracle[nt.ID] = nt
	}
	for j := 0; j < 15; j++ {
		id := d.Trajs[j].ID
		if ok, err := c.Delete("trips", id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
		delete(oracle, id)
	}
	live := liveParts(t, c, "trips")
	if _, err := c.SplitPartition("trips", live[len(live)-1], 2); err != nil {
		t.Fatal(err)
	}
	live = liveParts(t, c, "trips")
	if _, err := c.MergePartitions("trips", live[:2]); err != nil {
		t.Fatal(err)
	}

	probes := &traj.Dataset{Name: "probes"}
	for i, tr := range extra.Trajs[50:80] {
		probes.Trajs = append(probes.Trajs, &traj.T{ID: 600000 + i, Points: tr.Points})
	}
	if err := c.Dispatch("probes", probes); err != nil {
		t.Fatal(err)
	}
	tau := 0.01
	pairs, err := c.Join("trips", "probes", tau)
	if err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	want := map[[2]int]bool{}
	for _, x := range oracle {
		for _, y := range probes.Trajs {
			if m.Distance(x.Points, y.Points) <= tau {
				want[[2]int{x.ID, y.ID}] = true
			}
		}
	}
	got := map[[2]int]bool{}
	for _, p := range pairs {
		key := [2]int{p.TID, p.QID}
		if got[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("join after rebalance: got %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("join after rebalance: missing pair %v", k)
		}
	}
}

// TestNetRebalancePolicyReducesSkew drives the planner end to end: a
// hotspot ingest stream aimed at one partition (cloned dispatched
// geometry routes every write to the same place) must push occupancy
// skew past the bound, Rebalance must bring it back within a ≥2×
// reduction without changing a single answer, and the cutovers must be
// visible in the coordinator's metrics.
func TestNetRebalancePolicyReducesSkew(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(90, 421))
	cfg := chaosConfig()
	cfg.Obs = obs.New()
	_, _, _, c := ingestCluster(t, 3, cfg, 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	// Hotspot: every insert clones one dispatched trajectory's geometry
	// with a tiny per-clone jitter, so endpoint routing lands them all in
	// that trajectory's partition while their first points stay separable
	// by fresh STR cuts (identical keys cannot be split apart).
	hot := d.Trajs[0]
	for i := 0; i < 120; i++ {
		pts := make([]geom.Point, len(hot.Points))
		off := float64(i) * 1e-6
		for pi, p := range hot.Points {
			pts[pi] = geom.Point{X: p.X + off, Y: p.Y + off}
		}
		nt := &traj.T{ID: 500000 + i, Points: pts}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("hotspot insert %d: %v", nt.ID, err)
		}
		oracle[nt.ID] = nt
	}
	skewBefore, err := c.OccupancySkew("trips")
	if err != nil {
		t.Fatal(err)
	}
	pol := core.RebalancePolicy{SkewBound: 2, MaxPieces: 8, MergeFraction: 0.25}
	if skewBefore <= pol.SkewBound {
		t.Fatalf("hotspot did not skew the dataset: skew %.2f <= bound %.2f", skewBefore, pol.SkewBound)
	}
	steps, converged, err := c.Rebalance("trips", pol)
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if len(steps) == 0 {
		t.Fatal("planner took no action above the skew bound")
	}
	if !converged {
		t.Fatal("rebalance hit the step budget without converging")
	}
	skewAfter, err := c.OccupancySkew("trips")
	if err != nil {
		t.Fatal(err)
	}
	if skewAfter*2 > skewBefore {
		t.Fatalf("rebalance reduced skew %.2f -> %.2f, want >= 2x reduction", skewBefore, skewAfter)
	}
	if n := cfg.Obs.Counter("coord_rebalance_total").Value(); n < 1 {
		t.Fatalf("coord_rebalance_total = %d, want >= 1", n)
	}
	if g := cfg.Obs.FloatGauge("coord_occupancy_skew").Value(); g != skewAfter {
		t.Fatalf("coord_occupancy_skew gauge %.3f, want %.3f", g, skewAfter)
	}
	checkNetDifferentialM(t, c, "trips", oracle, gen.Queries(d, 3, 423), 0.01, measure.DTW{})

	// Idempotence: a second pass over the balanced dataset is a no-op.
	steps, converged, err = c.Rebalance("trips", pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("second rebalance took %d steps over a balanced dataset", len(steps))
	}
	if !converged {
		t.Fatal("no-op rebalance reported non-convergence")
	}
}

// TestNetRebalanceEmptyMerge: merging partitions whose members were all
// deleted must leave the dataset routable (one live empty piece), and
// later inserts must land and be findable.
func TestNetRebalanceEmptyMerge(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(40, 431))
	_, _, _, c := ingestCluster(t, 2, chaosConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	for _, tr := range d.Trajs {
		if ok, err := c.Delete("trips", tr.ID); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", tr.ID, ok, err)
		}
	}
	live := liveParts(t, c, "trips")
	if len(live) < 2 {
		t.Skipf("dataset dispatched as %d partition(s); empty-merge needs 2", len(live))
	}
	st, err := c.MergePartitions("trips", live)
	if err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	if st.Trajs != 0 || len(st.Created) != 1 {
		t.Fatalf("empty merge stats: %+v, want one empty piece", st)
	}
	oracle := map[int]*traj.T{}
	extra := gen.Generate(gen.BeijingLike(10, 432))
	for i, tr := range extra.Trajs {
		nt := &traj.T{ID: 700000 + i, Points: tr.Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("insert into empty layout: %v", err)
		}
		oracle[nt.ID] = nt
	}
	checkNetDifferentialM(t, c, "trips", oracle, gen.Queries(extra, 2, 433), 0.01, measure.DTW{})
}

// TestChaosCutoverAbortNeverAMix is the crash-window contract: a worker
// dying mid-cutover (here: before the piece loads, so they fail) must
// leave the OLD layout fully intact — never a mix. The split fails
// cleanly, the layout is unchanged, queries fail over to the surviving
// replica and stay exact, and the survivor holds no orphan piece.
func TestChaosCutoverAbortNeverAMix(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(100, 441))
	workers, _, _, c := ingestCluster(t, 2, chaosConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	npBefore, err := c.NumPartitions("trips")
	if err != nil {
		t.Fatal(err)
	}
	liveBefore := liveParts(t, c, "trips")

	// Kill worker 1 without giving the failure detector time to notice:
	// placement still selects it, and its piece loads fail mid-cutover.
	workers[1].Close()
	if _, err := c.SplitPartition("trips", liveBefore[0], 3); err == nil {
		t.Fatal("split with a dead placement target succeeded, want abort")
	}

	// Old layout intact: same partition count, same live set.
	npAfter, err := c.NumPartitions("trips")
	if err != nil {
		t.Fatal(err)
	}
	if npAfter != npBefore {
		t.Fatalf("aborted cutover changed partition count %d -> %d", npBefore, npAfter)
	}
	liveAfter := liveParts(t, c, "trips")
	if len(liveAfter) != len(liveBefore) {
		t.Fatalf("aborted cutover changed live set %v -> %v", liveBefore, liveAfter)
	}
	for i := range liveBefore {
		if liveAfter[i] != liveBefore[i] {
			t.Fatalf("aborted cutover changed live set %v -> %v", liveBefore, liveAfter)
		}
	}
	// The survivor holds only old-layout partitions — no orphan pieces.
	workers[0].mu.RLock()
	for k := range workers[0].parts {
		if k.dataset == "trips" && k.id >= npBefore {
			workers[0].mu.RUnlock()
			t.Fatalf("survivor holds orphan piece %d from the aborted cutover", k.id)
		}
	}
	workers[0].mu.RUnlock()
	// Queries fail over to the survivor and stay exact.
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	checkNetDifferentialM(t, c, "trips", oracle, gen.Queries(d, 2, 442), 0.01, measure.DTW{})
}

// TestChaosCoordinatorRestartAfterMergeKeepsOverlays is the first gap
// regression from the serving design doc: workers fold their overlays
// into new bases (merges), the coordinator restarts, and recovery —
// NOT re-dispatch — must rebuild routing from worker manifests so every
// acked write stays visible and every answer stays exact.
func TestChaosCoordinatorRestartAfterMergeKeepsOverlays(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(120, 451))
	extra := gen.Generate(gen.BeijingLike(80, 452))
	cfg := chaosConfig()
	// 1 KiB merge threshold: bases fold mid-stream, so the workers'
	// fingerprints diverge from every dispatch payload and a re-dispatch
	// could not reuse them — recovery must not depend on either.
	workers, addrs, _, c := ingestCluster(t, 3, cfg, 1<<10, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	for i := 0; i < 50; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("insert %d: %v", nt.ID, err)
		}
		oracle[nt.ID] = nt
	}
	for j := 0; j < 20; j++ {
		id := d.Trajs[j].ID
		if ok, err := c.Delete("trips", id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
		delete(oracle, id)
	}
	// Make sure the overlay fold actually happened somewhere.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var merges int64
		for _, w := range workers {
			merges += w.merges.Load()
		}
		if merges > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no worker merged its overlay; the regression needs folded bases")
		}
		time.Sleep(10 * time.Millisecond)
	}

	c.Close()
	c2, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	rep, err := c2.RecoverDataset("trips")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.Trajs != len(oracle) {
		t.Fatalf("recovery found %d visible trajectories, oracle has %d", rep.Trajs, len(oracle))
	}
	checkNetDifferentialM(t, c2, "trips", oracle, gen.Queries(d, 3, 453), 0.01, measure.DTW{})

	// Recovered datasets must keep taking writes with correct dedupe
	// floors: a fresh upsert must apply, not be dropped as a replay.
	victim := -1
	for id := range oracle {
		victim = id
		break
	}
	up := &traj.T{ID: victim, Points: extra.Trajs[60].Points}
	if err := c2.Ingest("trips", up); err != nil {
		t.Fatal(err)
	}
	oracle[victim] = up
	checkNetDifferentialM(t, c2, "trips", oracle, gen.Queries(d, 2, 454), 0.01, measure.DTW{})
}

// TestChaosRecoverFindsOutlierOutsideDispatchMBR is the second gap
// regression: an ingested trajectory far outside its partition's
// dispatch-time MBR must stay findable after a coordinator restart.
// Recovery manifests carry TRUE current bounds; a re-dispatch would
// restore the stale dispatch-time MBRs and global pruning would
// wrongly exclude the outlier's partition.
func TestChaosRecoverFindsOutlierOutsideDispatchMBR(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(80, 461))
	cfg := chaosConfig()
	_, addrs, _, c := ingestCluster(t, 3, cfg, 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	// The generator confines trajectories to a small lat/lon box; (50,50)
	// is far outside every dispatch-time MBR.
	outlier := &traj.T{ID: 900001, Points: []geom.Point{{X: 50, Y: 50}, {X: 50.001, Y: 50.001}, {X: 50.002, Y: 50.002}}}
	if err := c.Ingest("trips", outlier); err != nil {
		t.Fatal(err)
	}
	oracle[outlier.ID] = outlier

	c.Close()
	c2, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	if _, err := c2.RecoverDataset("trips"); err != nil {
		t.Fatalf("recover: %v", err)
	}
	// A tight threshold query at the outlier's location: global pruning
	// over stale dispatch MBRs would skip its partition and return
	// nothing; the true-bounds recovery must return exactly the outlier.
	probe := &traj.T{ID: -1, Points: outlier.Points}
	hits, err := c2.Search("trips", probe, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].ID != outlier.ID {
		t.Fatalf("outlier query got %v, want exactly id %d — stale dispatch MBRs pruned the ingested outlier", hits, outlier.ID)
	}
	checkNetDifferentialM(t, c2, "trips", oracle, gen.Queries(d, 2, 462), 0.01, measure.DTW{})
}

// TestChaosRecoverAfterCutoverAndRestart: a rebalance cutover followed
// by a coordinator restart must recover the NEW layout (higher pids win
// overlap resolution) with nothing lost.
func TestChaosRecoverAfterCutoverAndRestart(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(100, 471))
	extra := gen.Generate(gen.BeijingLike(40, 472))
	cfg := chaosConfig()
	_, addrs, _, c := ingestCluster(t, 3, cfg, 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	for i := 0; i < 30; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatal(err)
		}
		oracle[nt.ID] = nt
	}
	live := liveParts(t, c, "trips")
	st, err := c.SplitPartition("trips", live[0], 2)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c2, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	rep, err := c2.RecoverDataset("trips")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, pid := range rep.Recovered {
		for _, retired := range st.Retired {
			if pid == retired {
				t.Fatalf("recovery resurrected retired partition %d: %+v", pid, rep)
			}
		}
	}
	if rep.Trajs != len(oracle) {
		t.Fatalf("recovery found %d visible trajectories, oracle has %d", rep.Trajs, len(oracle))
	}
	checkNetDifferentialM(t, c2, "trips", oracle, gen.Queries(d, 3, 473), 0.01, measure.DTW{})
}
