// Streaming ingest for the network mode: the coordinator routes single-
// trajectory upserts and deletes to the owning partition by the global
// index, assigns each mutation a partition-scoped sequence number, and
// fans it out to every replica; a worker appends the record to the
// partition's write-ahead log (fsync) before touching memory, so a
// positive ack means the write survives any crash. Mutations accumulate
// in a per-partition delta overlay every query path folds in; when the
// overlay outgrows the merge threshold the worker rebuilds the base
// (trie and all), seals a snapshot carrying the new watermark, and only
// then truncates the log. A delta held at the backpressure bound rejects
// batches with an overloaded error instead of queueing without bound.
package dnet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/rpc"
	"strings"
	"sync"

	"dita/internal/core"
	"dita/internal/rtree"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/trie"
	"dita/internal/wal"
	"dita/internal/pivot"
)

// overloadedPrefix starts the application error Worker.Ingest returns
// when the partition's delta buffer is at the backpressure bound. It
// crosses the wire as the rpc.ServerError string; the coordinator's
// isOverloaded matches it with an exact prefix check (the
// peerUnreachablePrefix pattern) and surfaces ErrOverloaded so callers
// can back off and retry — keep the two in sync when rewording.
const overloadedPrefix = "dnet: ingest overloaded: "

const (
	// defaultMergeBytes is the delta size that triggers folding the
	// overlay into a fresh base when Worker.MergeBytes is unset.
	defaultMergeBytes = 1 << 20
	// defaultMaxDeltaBytes is the backpressure bound when
	// Worker.MaxDeltaBytes is unset: batches arriving at or past it are
	// rejected until a merge drains the buffer.
	defaultMaxDeltaBytes = 8 << 20
)

// partView is a query's consistent picture of one partition: the base
// slices (never mutated in place — a merge installs fresh ones) plus
// private copies of the overlay, taken under the overlay lock. The
// mutual exclusion during the copy makes the in-place overlay mutation
// on the ingest path safe for the rest of the query's life.
type partView struct {
	trajs     []*traj.T
	index     *trie.Trie
	meta      []core.VerifyMeta
	tomb      map[int]bool
	delta     []*traj.T
	deltaMeta []core.VerifyMeta
}

// overlay reports whether the view carries any un-merged mutations —
// when false, query paths run exactly the pre-ingest code.
func (v partView) overlay() bool { return len(v.delta) > 0 || len(v.tomb) > 0 }

// view captures the partition for one query.
func (p *workerPartition) view() partView {
	p.omu.RLock()
	defer p.omu.RUnlock()
	v := partView{trajs: p.trajs, index: p.index, meta: p.meta}
	if len(p.tomb) > 0 {
		v.tomb = make(map[int]bool, len(p.tomb))
		for id := range p.tomb {
			v.tomb[id] = true
		}
	}
	if len(p.delta) > 0 {
		v.delta = append([]*traj.T(nil), p.delta...)
		v.deltaMeta = append([]core.VerifyMeta(nil), p.deltaMeta...)
	}
	return v
}

// DeltaBytes returns the partition's current un-merged delta size.
func (p *workerPartition) DeltaBytes() int {
	p.omu.RLock()
	defer p.omu.RUnlock()
	return p.deltaBytes
}

// baseStats returns the base footprint under the overlay lock (a merge
// replaces both fields together).
func (p *workerPartition) baseStats() (trajs, indexBytes int) {
	p.omu.RLock()
	defer p.omu.RUnlock()
	return len(p.trajs), p.index.SizeBytes()
}

// identity returns the partition's content identity and durability
// flags, which merges rewrite under the overlay lock.
func (p *workerPartition) identity() (fp uint64, snapped bool, snapBytes int64, lastSeq uint64) {
	p.omu.RLock()
	defer p.omu.RUnlock()
	return p.fingerprint, p.snapped, p.snapBytes, p.lastSeq
}

// closeLog detaches and closes the partition's WAL. Serialized against
// appends by the overlay lock: a racing Ingest either appended before
// the close (the record is durable and applied) or fails its append
// afterwards (the batch is never acked) — exactly crash semantics.
func (p *workerPartition) closeLog() {
	p.omu.Lock()
	l := p.wlog
	p.wlog = nil
	p.omu.Unlock()
	if l != nil {
		l.Close()
	}
}

// ensureBaseIDsLocked lazily builds the base id set the tombstone
// decisions need. Built once per base epoch; a merge clears it.
func (p *workerPartition) ensureBaseIDsLocked() {
	if p.baseIDs != nil {
		return
	}
	p.baseIDs = make(map[int]bool, len(p.trajs))
	for _, t := range p.trajs {
		p.baseIDs[t.ID] = true
	}
}

// applyLocked folds one logged record into the overlay. Caller holds
// the overlay write lock (or owns the partition exclusively, as WAL
// replay before Serve does). An insert is an upsert by id: it replaces
// a live delta member in place, and tombstones the base member it
// supersedes. A delete removes the delta member (swap-remove) and
// tombstones the base member. Deletes do not grow deltaBytes — the
// buffer tracks payload held, not log volume.
func (p *workerPartition) applyLocked(r WireRecord) {
	switch r.Op {
	case wal.OpInsert:
		t := &traj.T{ID: r.ID, Points: r.Points}
		if i, ok := p.deltaIdx[r.ID]; ok {
			p.deltaBytes += t.Bytes() - p.delta[i].Bytes()
			p.delta[i] = t
			p.deltaMeta[i] = core.NewVerifyMeta(t, p.cellD)
			return
		}
		if p.deltaIdx == nil {
			p.deltaIdx = map[int]int{}
		}
		p.deltaIdx[r.ID] = len(p.delta)
		p.delta = append(p.delta, t)
		p.deltaMeta = append(p.deltaMeta, core.NewVerifyMeta(t, p.cellD))
		p.deltaBytes += t.Bytes()
		p.ensureBaseIDsLocked()
		if p.baseIDs[r.ID] {
			if p.tomb == nil {
				p.tomb = map[int]bool{}
			}
			p.tomb[r.ID] = true
		}
	case wal.OpDelete:
		if i, ok := p.deltaIdx[r.ID]; ok {
			p.deltaBytes -= p.delta[i].Bytes()
			last := len(p.delta) - 1
			moved := p.delta[last]
			p.delta[i] = moved
			p.deltaMeta[i] = p.deltaMeta[last]
			p.delta = p.delta[:last]
			p.deltaMeta = p.deltaMeta[:last]
			delete(p.deltaIdx, r.ID)
			if i != last {
				p.deltaIdx[moved.ID] = i
			}
		}
		p.ensureBaseIDsLocked()
		if p.baseIDs[r.ID] {
			if p.tomb == nil {
				p.tomb = map[int]bool{}
			}
			p.tomb[r.ID] = true
		}
	}
}

// Ingest implements the streamed-mutation RPC: WAL append (fsync)
// strictly before the in-memory apply, so an acked batch is durable at
// every instant afterwards. Records at or below the partition's dedupe
// floor are skipped — a retransmission of an acked batch is a cheap
// no-op, which is what makes rpc-layer retries safe. The floor is sound
// only because the coordinator serializes a partition's writes end to
// end (dispatchedDataset.pmu): first delivery is always in seq order, so
// anything at or below the floor is a retransmission, never a fresh
// write that lost a race. A delta at the backpressure bound rejects the
// whole batch with the overloaded error and kicks a background merge so
// a later retry finds room.
func (s *workerService) Ingest(args *IngestArgs, reply *IngestReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("ingest", &err)
	s.w.ingestCalls.Add(1)
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	bytes := 0
	for _, r := range args.Records {
		switch r.Op {
		case wal.OpInsert:
			if len(r.Points) == 0 {
				return fmt.Errorf("dnet: ingest %s/%d: insert %d has no points",
					args.Dataset, args.Partition, r.ID)
			}
		case wal.OpDelete:
		default:
			return fmt.Errorf("dnet: ingest %s/%d: unknown op %d",
				args.Dataset, args.Partition, r.Op)
		}
		bytes += 16*len(r.Points) + 16
	}
	s.w.bytesIn.Add(int64(bytes))

	mergeAt := s.w.MergeBytes
	if mergeAt <= 0 {
		mergeAt = defaultMergeBytes
	}
	maxDelta := s.w.MaxDeltaBytes
	if maxDelta <= 0 {
		maxDelta = defaultMaxDeltaBytes
	}

	p.omu.Lock()
	floor := p.lastSeq
	if p.watermark > floor {
		floor = p.watermark
	}
	fresh := make([]WireRecord, 0, len(args.Records))
	for _, r := range args.Records {
		if r.Seq <= floor {
			reply.Deduped++
			continue
		}
		floor = r.Seq
		fresh = append(fresh, r)
	}
	if reply.Deduped > 0 {
		s.w.ingestDeduped.Add(int64(reply.Deduped))
	}
	if len(fresh) == 0 {
		reply.LastSeq = p.lastSeq
		reply.DeltaBytes = p.deltaBytes
		p.omu.Unlock()
		return nil
	}
	if p.deltaBytes >= maxDelta {
		deltaBytes := p.deltaBytes
		p.omu.Unlock()
		s.w.ingestRejected.Add(1)
		// Kick a merge so the buffer drains; the caller's retry after
		// backoff then finds room. mergePartition serializes with itself.
		go s.w.mergePartition(args.Dataset, args.Partition, p)
		return fmt.Errorf("%spartition %s/%d delta %d bytes (max %d)",
			overloadedPrefix, args.Dataset, args.Partition, deltaBytes, maxDelta)
	}
	if p.wlog != nil {
		recs := make([]wal.Record, len(fresh))
		for i, r := range fresh {
			recs[i] = wal.Record{Seq: r.Seq, Op: r.Op, ID: r.ID, Points: r.Points}
		}
		if err := p.wlog.Append(recs...); err != nil {
			// Nothing is applied: the log restored its prior valid length
			// (or holds a torn tail the next Open truncates), memory never
			// saw the batch, and the caller gets no ack.
			p.omu.Unlock()
			return fmt.Errorf("dnet: ingest %s/%d: wal append: %w",
				args.Dataset, args.Partition, err)
		}
	}
	for _, r := range fresh {
		p.applyLocked(r)
		if r.Seq > p.lastSeq {
			p.lastSeq = r.Seq
		}
	}
	reply.Applied = len(fresh)
	reply.LastSeq = p.lastSeq
	reply.DeltaBytes = p.deltaBytes
	needMerge := p.deltaBytes >= mergeAt
	p.omu.Unlock()
	s.w.ingestRecords.Add(int64(len(fresh)))
	if needMerge {
		if s.w.mergePartition(args.Dataset, args.Partition, p) {
			reply.Merged = true
			reply.DeltaBytes = p.DeltaBytes()
		}
	}
	return nil
}

// mergePartition folds the partition's overlay into a fresh base:
// visible members (base minus tombstones, plus delta) get a rebuilt
// trie and verification metadata, installed as new slices so captured
// views stay consistent; then the new base is sealed as a snapshot
// carrying watermark = lastSeq, and only after a successful seal is the
// WAL truncated through that watermark. If the seal fails the log keeps
// its full suffix past the old on-disk watermark — replay still
// reconstructs exactly this state, the log is merely longer. Merges on
// one partition are serialized (mergeMu) so a slow seal can never
// overwrite a newer image and then truncate the log past it.
func (w *Worker) mergePartition(dataset string, pid int, p *workerPartition) bool {
	p.mergeMu.Lock()
	defer p.mergeMu.Unlock()
	p.omu.Lock()
	if len(p.delta) == 0 && len(p.tomb) == 0 {
		p.omu.Unlock()
		return false
	}
	visible := make([]*traj.T, 0, len(p.trajs)+len(p.delta))
	for _, t := range p.trajs {
		if !p.tomb[t.ID] {
			visible = append(visible, t)
		}
	}
	visible = append(visible, p.delta...)
	cfg := trie.Config{
		K:        p.opts.K,
		NLAlign:  p.opts.NLAlign,
		NLPivot:  p.opts.NLPivot,
		MinNode:  p.opts.MinNode,
		Strategy: pivot.Strategy(p.opts.Strategy),
	}
	idx := trie.Build(visible, cfg)
	meta := make([]core.VerifyMeta, len(visible))
	for i, t := range visible {
		meta[i] = core.NewVerifyMeta(t, p.cellD)
	}
	fp := snap.Fingerprint(p.opts, visible)
	opts := p.opts
	p.trajs, p.index, p.meta = visible, idx, meta
	p.fingerprint = fp
	p.delta, p.deltaMeta, p.deltaIdx = nil, nil, nil
	p.tomb, p.baseIDs = nil, nil
	p.deltaBytes = 0
	p.watermark = p.lastSeq
	watermark := p.watermark
	wlog := p.wlog
	p.snapped = false
	p.snapBytes = 0
	p.omu.Unlock()
	w.merges.Add(1)
	if w.SnapStore == nil {
		return true
	}
	// The partition may have been unloaded while we folded; sealing now
	// would resurrect a snapshot the coordinator rolled back. The check
	// alone is racy — Unload can run right after it — but Unload (and the
	// epoch resets in Load/Replicate) waits on this partition's mergeMu
	// before touching the durable pair, so a teardown that loses the race
	// deletes whatever this merge writes once it finishes.
	w.mu.RLock()
	installed := w.parts[partKey{dataset, pid}] == p
	w.mu.RUnlock()
	if !installed {
		return true
	}
	sn := &snap.Snapshot{
		Dataset: dataset, Partition: pid, Opts: opts,
		Trajs: visible, Index: idx, Watermark: watermark,
	}
	size, err := w.SnapStore.Save(sn)
	if err != nil {
		w.snapWriteErr.Add(1)
		return true
	}
	w.snapWriteOK.Add(1)
	p.omu.Lock()
	if p.fingerprint == fp {
		p.snapped = true
		p.snapBytes = size
	}
	p.omu.Unlock()
	if wlog != nil {
		// Records past the watermark (ingested during the seal) survive
		// the truncation; they are exactly the ones the new snapshot does
		// not cover.
		wlog.TruncateThrough(watermark)
	}
	return true
}

// --- coordinator side ---

// isOverloaded detects the worker-side backpressure signal. Only an
// rpc.ServerError that starts with the exact prefix Worker.Ingest emits
// qualifies — never a substring match.
func isOverloaded(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se) && strings.HasPrefix(string(se), overloadedPrefix)
}

// routeLocked picks the partition for a trajectory the dataset has not
// seen before: the one whose endpoint MBRs are nearest the trajectory's
// endpoints — the STR cell it would have landed in at dispatch
// (distance 0 when it falls inside both boxes). Caller holds dd.mu.
func routeLocked(dd *dispatchedDataset, t *traj.T) int {
	first, last := t.First(), t.Last()
	best, bestD := -1, math.Inf(1)
	for i := range dd.parts {
		if dd.parts[i].retired {
			continue
		}
		d := dd.parts[i].mbrF.MinDist(first) + dd.parts[i].mbrL.MinDist(last)
		if best < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Ingest streams one trajectory into a dispatched dataset: an upsert by
// id, routed to the partition that already holds the id (so updates
// never fork a trajectory across partitions) or, for a new id, to the
// partition whose bounds fit its endpoints. The write is acked only
// after every replica of the partition has logged and applied it; a
// replica at its backpressure bound fails the call with ErrOverloaded
// (errors.Is) — back off and retry. A failed call is never acked and a
// retry is assigned a fresh sequence number; re-applying an upsert is
// idempotent, so partial application on a subset of replicas converges
// on the retry.
func (c *Coordinator) Ingest(name string, t *traj.T) error {
	return c.IngestContext(context.Background(), name, t)
}

// IngestContext is Ingest under query-lifecycle control.
func (c *Coordinator) IngestContext(ctx context.Context, name string, t *traj.T) error {
	if t == nil || len(t.Points) == 0 {
		return fmt.Errorf("dnet: ingest: empty trajectory")
	}
	dd, err := c.dataset(name)
	if err != nil {
		return err
	}
	dd.mu.Lock()
	pid, known := dd.loc[t.ID]
	if !known {
		pid = routeLocked(dd, t)
	}
	dd.mu.Unlock()
	pid, pmu := dd.lockPartitionWrite(pid, t.ID, t)
	// Holding the partition's write lock and dd.mu: reserve the sequence
	// number. It is burned on failure — a retry gets a fresh, higher
	// number, so the workers' per-record dedupe floor only ever absorbs
	// retransmissions of the same already-acked call.
	dd.nextSeq[pid]++
	seq := dd.nextSeq[pid]
	dd.mu.Unlock()
	rec := WireRecord{Seq: seq, Op: wal.OpInsert, ID: t.ID, Points: t.Points}
	if err := c.ingestReplicas(ctx, dd, pid, rec); err != nil {
		pmu.Unlock()
		return err
	}
	dd.mu.Lock()
	if _, ok := dd.loc[t.ID]; !ok {
		dd.live[pid]++
	}
	dd.loc[t.ID] = pid
	dd.mutated = true
	dd.writeMark[pid]++
	pb := &dd.parts[pid]
	nf, nl := pb.mbrF.Extend(t.First()), pb.mbrL.Extend(t.Last())
	if nf != pb.mbrF || nl != pb.mbrL {
		// The partition's bounds grew: the global index must cover the new
		// member or searches would prune the partition it lives in.
		pb.mbrF, pb.mbrL = nf, nl
		dd.boundsEpoch++
		rebuildTreesLocked(dd)
	}
	dd.mu.Unlock()
	pmu.Unlock()
	if c.met != nil {
		c.met.ingests.Inc()
	}
	return nil
}

// lockPartitionWrite takes the per-partition write lock for a mutation
// headed to pid, re-checking under the dataset lock that the id still
// belongs there — a concurrent write may have created or moved it while
// we waited, and a write serialized on the wrong partition's lock would
// reintroduce the out-of-order arrival the lock exists to prevent. A
// rebalance cutover can also retire pid while we waited; a known id is
// then re-routed through loc (the cutover rewrote it to the live piece)
// and an unknown one re-routed over the live layout (t non-nil only for
// inserts — deletes of unknown ids bail out in the caller's re-check).
// The pmu pointer is resolved under dd.mu because the slice grows at
// cutover. Returns the partition actually locked and its mutex; the
// caller holds that mutex AND dd.mu, and must release both (the mutex
// via the returned pointer — re-indexing pmu off-lock would race the
// slice growth).
func (dd *dispatchedDataset) lockPartitionWrite(pid, id int, t *traj.T) (int, *sync.Mutex) {
	for {
		dd.mu.Lock()
		mu := dd.pmu[pid]
		dd.mu.Unlock()
		mu.Lock()
		dd.mu.Lock()
		cur, ok := dd.loc[id]
		if ok {
			if cur == pid {
				return pid, mu
			}
		} else if t == nil || !dd.parts[pid].retired {
			return pid, mu
		} else {
			cur = routeLocked(dd, t)
		}
		dd.mu.Unlock()
		mu.Unlock()
		pid = cur
	}
}

// Delete streams one deletion into a dispatched dataset. It returns
// false (no error) when the id is unknown — nothing to route to. Acked
// like Ingest: every replica logged and applied the tombstone.
func (c *Coordinator) Delete(name string, id int) (bool, error) {
	return c.DeleteContext(context.Background(), name, id)
}

// DeleteContext is Delete under query-lifecycle control.
func (c *Coordinator) DeleteContext(ctx context.Context, name string, id int) (bool, error) {
	dd, err := c.dataset(name)
	if err != nil {
		return false, err
	}
	dd.mu.Lock()
	pid, known := dd.loc[id]
	if !known {
		dd.mu.Unlock()
		return false, nil
	}
	dd.mu.Unlock()
	pid, pmu := dd.lockPartitionWrite(pid, id, nil)
	if _, still := dd.loc[id]; !still {
		// Deleted by a concurrent call while we waited for the lock.
		dd.mu.Unlock()
		pmu.Unlock()
		return false, nil
	}
	dd.nextSeq[pid]++
	seq := dd.nextSeq[pid]
	dd.mu.Unlock()
	rec := WireRecord{Seq: seq, Op: wal.OpDelete, ID: id}
	if err := c.ingestReplicas(ctx, dd, pid, rec); err != nil {
		pmu.Unlock()
		return false, err
	}
	dd.mu.Lock()
	delete(dd.loc, id)
	dd.live[pid]--
	dd.mutated = true
	dd.writeMark[pid]++
	dd.mu.Unlock()
	pmu.Unlock()
	if c.met != nil {
		c.met.deletes.Inc()
	}
	return true, nil
}

// rebuildTreesLocked rebuilds the dataset's global R-trees from the
// current partition bounds. Caller holds dd.mu; readers are unaffected
// because the trees are replaced, never mutated — a view captured
// earlier keeps its (older, smaller) trees, which at worst misses a
// member ingested after the view was taken, never one before.
func rebuildTreesLocked(dd *dispatchedDataset) {
	ef := make([]rtree.Entry, 0, len(dd.parts))
	el := make([]rtree.Entry, 0, len(dd.parts))
	for i := range dd.parts {
		p := &dd.parts[i]
		if p.retired {
			continue
		}
		ef = append(ef, rtree.Entry{MBR: p.mbrF, ID: i})
		el = append(el, rtree.Entry{MBR: p.mbrL, ID: i})
	}
	dd.rtF = rtree.New(ef)
	dd.rtL = rtree.New(el)
}

// ingestReplicas fans the records out to every current owner of the
// partition, concurrently, and acks only when all of them succeeded —
// replication before acknowledgment, so losing any single replica after
// an ack loses nothing. Unlike the query paths there is no failover:
// a write that any replica refused is not durable everywhere and must
// not be acked.
func (c *Coordinator) ingestReplicas(ctx context.Context, dd *dispatchedDataset, pid int, recs ...WireRecord) error {
	dd.mu.Lock()
	owners := append([]int(nil), dd.replicas[pid]...)
	dd.mu.Unlock()
	if len(owners) == 0 {
		return fmt.Errorf("dnet: ingest: no replicas for partition %s/%d", dd.name, pid)
	}
	args := &IngestArgs{Dataset: dd.name, Partition: pid, Records: recs}
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, w := range owners {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			var reply IngestReply
			_, err := c.clients[w].CallContextN(ctx, "Worker.Ingest", args, &reply)
			errs[i] = err
			if err == nil {
				c.health.success(w)
				return
			}
			if ctx.Err() != nil {
				return
			}
			if retryableError(err) {
				c.health.failure(w, false)
			} else {
				// An application error (overloaded, unknown partition) is
				// proof of life.
				c.health.success(w)
			}
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err == nil {
			continue
		}
		if isOverloaded(err) {
			if c.met != nil {
				c.met.ingestRejected.Inc()
			}
			return fmt.Errorf("dnet: ingest %s/%d: %w", dd.name, pid, ErrOverloaded)
		}
		return fmt.Errorf("dnet: ingest %s/%d: %w", dd.name, pid, err)
	}
	return nil
}
