package dnet

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"dita/internal/gen"
)

// startClusterPar is startCluster with every worker's verification pool
// set to the given fan-out.
func startClusterPar(t *testing.T, n, par int, cfg Config) (*Coordinator, func()) {
	t.Helper()
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w := NewWorker()
		w.VerifyParallelism = par
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	}
}

// TestNetParallelDifferential: the network mode must return identical
// search hits, join pairs, and whole-query pruning funnels whether the
// workers verify sequentially or on an 8-way pool.
func TestNetParallelDifferential(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 90))
	d2 := gen.Generate(gen.BeijingLike(120, 90))
	for _, tr := range d2.Trajs {
		tr.ID += 100000
	}
	qs := gen.Queries(d, 6, 91)
	const tau = 0.01

	type outcome struct {
		hits    [][]SearchHit
		funnels []string
		pairs   []WirePair
		joinF   string
	}
	run := func(par int) outcome {
		c, stop := startClusterPar(t, 3, par, testConfig())
		defer stop()
		if err := c.Dispatch("T", d); err != nil {
			t.Fatal(err)
		}
		if err := c.Dispatch("Q", d2); err != nil {
			t.Fatal(err)
		}
		var o outcome
		for _, q := range qs {
			var qst QueryStats
			hits, _, err := c.SearchTraced(context.Background(), "T", q, tau, &qst)
			if err != nil {
				t.Fatal(err)
			}
			o.hits = append(o.hits, hits)
			o.funnels = append(o.funnels, fmt.Sprintf("%+v", qst.Funnel))
		}
		var jst QueryStats
		pairs, _, err := c.JoinTraced(context.Background(), "T", "Q", tau, &jst)
		if err != nil {
			t.Fatal(err)
		}
		o.pairs = pairs
		o.joinF = fmt.Sprintf("%+v", jst.Funnel)
		return o
	}

	base := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		for qi := range qs {
			if !reflect.DeepEqual(got.hits[qi], base.hits[qi]) {
				t.Errorf("par=%d q%d: hits diverge from sequential", par, qi)
			}
			if got.funnels[qi] != base.funnels[qi] {
				t.Errorf("par=%d q%d: funnel diverges:\n seq: %s\n par: %s",
					par, qi, base.funnels[qi], got.funnels[qi])
			}
		}
		if !reflect.DeepEqual(got.pairs, base.pairs) {
			t.Errorf("par=%d: join pairs diverge (%d vs %d)", par, len(got.pairs), len(base.pairs))
		}
		if got.joinF != base.joinF {
			t.Errorf("par=%d: join funnel diverges:\n seq: %s\n par: %s", par, base.joinF, got.joinF)
		}
	}
}
