package dnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/rpc"
	"reflect"
	"sync"
	"time"
)

// RetryPolicy bounds the managed client's per-call behavior: every RPC
// gets a deadline, and transport-level failures (broken connection,
// refused dial, timeout) are retried with exponential backoff and full
// jitter up to MaxAttempts. Application errors returned by the remote
// method (rpc.ServerError) are never retried — they would fail again.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 20ms);
	// it doubles per attempt up to MaxDelay (default 1s), with jitter.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// CallTimeout is the per-attempt deadline (default 30s). On expiry the
	// connection is torn down so the pending call unblocks immediately.
	CallTimeout time.Duration
	// Seed makes the jitter sequence deterministic (default 1).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 20 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.CallTimeout <= 0 {
		p.CallTimeout = 30 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// errClientClosed reports a call against a managed client after Close.
var errClientClosed = errors.New("dnet: client closed")

// timeoutError is the per-call deadline error; it implements net.Error so
// the retry classifier treats it as a transport failure.
type timeoutError struct {
	method string
	addr   string
	d      time.Duration
}

func (e *timeoutError) Error() string {
	return fmt.Sprintf("dnet: %s to %s timed out after %v", e.method, e.addr, e.d)
}
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// retryableError classifies an RPC failure: application errors from the
// remote method come back as rpc.ServerError and are final; everything
// else (dial failure, severed connection, EOF, codec error on a broken
// stream, deadline) is a transport failure worth retrying on a fresh
// connection.
func retryableError(err error) bool {
	if err == nil || errors.Is(err, errClientClosed) {
		return false
	}
	var se rpc.ServerError
	return !errors.As(err, &se)
}

// managedClient wraps *rpc.Client with automatic reconnect, per-call
// deadlines, and bounded retry with exponential backoff + jitter. It is
// safe for concurrent use; concurrent calls multiplex over one
// connection like net/rpc itself.
type managedClient struct {
	addr   string
	policy RetryPolicy

	mu     sync.Mutex
	client *rpc.Client
	rng    *rand.Rand
	closed bool
}

func newManagedClient(addr string, policy RetryPolicy) *managedClient {
	policy = policy.withDefaults()
	return &managedClient{
		addr:   addr,
		policy: policy,
		rng:    rand.New(rand.NewSource(policy.Seed)),
	}
}

// connect returns the live connection, dialing if necessary.
func (mc *managedClient) connect() (*rpc.Client, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.closed {
		return nil, errClientClosed
	}
	if mc.client != nil {
		return mc.client, nil
	}
	conn, err := net.DialTimeout("tcp", mc.addr, mc.policy.CallTimeout)
	if err != nil {
		return nil, err
	}
	mc.client = rpc.NewClient(conn)
	return mc.client, nil
}

// discard drops cl from the cache (if it is still the cached client) and
// closes it, so the next call redials.
func (mc *managedClient) discard(cl *rpc.Client) {
	mc.mu.Lock()
	if mc.client == cl {
		mc.client = nil
	}
	mc.mu.Unlock()
	cl.Close()
}

// do runs one attempt with the per-attempt deadline.
func (mc *managedClient) do(cl *rpc.Client, method string, args, reply any, timeout time.Duration) error {
	return mc.doContext(context.Background(), cl, method, args, reply, timeout)
}

// doContext runs one attempt bounded by both the per-attempt deadline and
// the caller's context. A deadline expiry tears the connection down (the
// pending call errors out immediately, and waiting for it guarantees
// net/rpc is done touching reply before a retry reuses it). A context
// cancellation instead *abandons* the call: the shared connection stays up
// for other in-flight queries, the pending call completes into a reply
// nobody reads (rpc.Go's buffered done channel means no goroutine is
// parked on it), and server-side work is bounded by the wire-level
// deadline the coordinator stamped on the request.
func (mc *managedClient) doContext(ctx context.Context, cl *rpc.Client, method string, args, reply any, timeout time.Duration) error {
	if timeout <= 0 && ctx.Done() == nil {
		return cl.Call(method, args, reply)
	}
	call := cl.Go(method, args, reply, make(chan *rpc.Call, 1))
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case <-call.Done:
		return call.Error
	case <-tc:
		mc.discard(cl)
		<-call.Done
		return &timeoutError{method: method, addr: mc.addr, d: timeout}
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff returns the sleep before the given attempt (1-based retry
// index): exponential growth capped at MaxDelay, with full jitter in
// [d/2, d) so synchronized retries from fan-outs spread out.
func (mc *managedClient) backoff(attempt int) time.Duration {
	d := mc.policy.BaseDelay << (attempt - 1)
	if d > mc.policy.MaxDelay || d <= 0 {
		d = mc.policy.MaxDelay
	}
	mc.mu.Lock()
	j := time.Duration(mc.rng.Int63n(int64(d)/2 + 1))
	mc.mu.Unlock()
	return d/2 + j
}

// Call invokes method with retry per the policy. reply is zeroed between
// attempts so a partially-decoded response from a severed connection
// cannot leak into the retry's result.
func (mc *managedClient) Call(method string, args, reply any) error {
	return mc.CallContext(context.Background(), method, args, reply)
}

// CallContext is Call under query-lifecycle control: a cancelled or
// expired context is never retried (a dead query must not consume retry
// attempts or backoff sleeps), backoff sleeps abort on cancellation, and
// the per-attempt deadline shrinks to the context's remaining time so an
// attempt can't outlive the query it serves.
func (mc *managedClient) CallContext(ctx context.Context, method string, args, reply any) error {
	_, err := mc.CallContextN(ctx, method, args, reply)
	return err
}

// CallContextN is CallContext reporting how many attempts ran (at least 1
// once anything was tried, including dial failures), so callers can
// surface retry counts in traces and metrics.
func (mc *managedClient) CallContextN(ctx context.Context, method string, args, reply any) (attempts int, _ error) {
	var lastErr error
	for attempt := 0; attempt < mc.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepContext(ctx, mc.backoff(attempt)); err != nil {
				return attempts, err
			}
			zeroReply(reply)
		}
		if err := ctx.Err(); err != nil {
			return attempts, err
		}
		timeout := mc.policy.CallTimeout
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < timeout {
				timeout = rem
			}
			if timeout <= 0 {
				return attempts, context.DeadlineExceeded
			}
		}
		attempts++
		cl, err := mc.connect()
		if err != nil {
			if !retryableError(err) {
				return attempts, err
			}
			lastErr = err
			continue
		}
		err = mc.doContext(ctx, cl, method, args, reply, timeout)
		if err == nil {
			return attempts, nil
		}
		if ctx.Err() != nil {
			return attempts, err
		}
		if !retryableError(err) {
			return attempts, err
		}
		lastErr = err
		mc.discard(cl)
	}
	return attempts, fmt.Errorf("dnet: %s to %s failed after %d attempts: %w",
		method, mc.addr, mc.policy.MaxAttempts, lastErr)
}

// sleepContext sleeps for d unless the context ends first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CallOnce is a single attempt with an explicit deadline and no retry —
// the shape health probes want (the heartbeat loop is the retry).
func (mc *managedClient) CallOnce(method string, args, reply any, timeout time.Duration) error {
	cl, err := mc.connect()
	if err != nil {
		return err
	}
	err = mc.do(cl, method, args, reply, timeout)
	if err != nil && retryableError(err) {
		mc.discard(cl)
	}
	return err
}

// Close tears down the connection; subsequent calls fail fast.
func (mc *managedClient) Close() error {
	mc.mu.Lock()
	cl := mc.client
	mc.client = nil
	mc.closed = true
	mc.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}

// zeroReply resets *reply to its zero value.
func zeroReply(reply any) {
	v := reflect.ValueOf(reply)
	if v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
}
