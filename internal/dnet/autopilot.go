package dnet

import (
	"fmt"
	"time"

	"dita/internal/core"
)

// AutopilotConfig drives the coordinator's rebalancing autopilot: a
// background loop that watches the per-partition read-cost EWMAs the
// query paths accumulate, triggers Rebalance cutovers when occupancy or
// read cost skews, and promotes extra read replicas of cost-hot
// partitions that a split cannot help (single-member hotspots). The
// loop shares the heartbeat's stop channel, so Close terminates it.
type AutopilotConfig struct {
	// Interval between autopilot ticks; <= 0 disables the autopilot.
	Interval time.Duration
	// Cooldown is the minimum time between automatic actions on one
	// dataset — a cutover changes the layout, and the fresh pieces need
	// queries to re-accumulate cost signal before acting again makes
	// sense. Default 2x Interval. Non-convergence doubles the effective
	// cooldown per consecutive failure (capped), the logged back-off.
	Cooldown time.Duration
	// Policy is the rebalance policy the autopilot plans with. Zero
	// fields take the core defaults, except CostBound, which defaults to
	// 2 here: an autopilot without the cost signal would only ever see
	// byte skew, and byte skew alone is what the operator-driven
	// Rebalance path already covers.
	Policy core.RebalancePolicy
	// PromoteReplicas caps how many owners a read-hot partition may be
	// promoted to. Default Replicas+1 (one spare beyond the durability
	// target, so promotion survives rereplicate, which only tops up
	// partitions BELOW the configured factor and never trims surplus).
	PromoteReplicas int
	// Logf, when non-nil, receives one line per autopilot action or
	// back-off (log.Printf-compatible). Nil keeps the loop silent.
	Logf func(format string, args ...any)
}

// withDefaults fills the documented defaults; cfg supplies the
// replication factor (already clamped to the worker count by Connect).
func (a AutopilotConfig) withDefaults(cfg Config) AutopilotConfig {
	if a.Cooldown <= 0 {
		a.Cooldown = 2 * a.Interval
	}
	if a.Policy.CostBound <= 0 {
		a.Policy.CostBound = 2
	}
	a.Policy = a.Policy.Sanitized()
	if a.PromoteReplicas <= 0 {
		a.PromoteReplicas = cfg.Replicas + 1
	}
	return a
}

func (a AutopilotConfig) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (c *Coordinator) autopilotLoop(interval time.Duration) {
	defer c.hbClosed.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			c.autopilotTick()
		}
	}
}

// autopilotTick runs one pass over every dispatched dataset: publish the
// cost gauges, then — unless the dataset is inside its cooldown window —
// plan and execute automatic cutovers or a replica promotion.
func (c *Coordinator) autopilotTick() {
	ap := c.cfg.Autopilot
	for _, dd := range c.lockedDatasets() {
		if c.met != nil {
			c.met.autopilotTicks.Inc()
			c.met.publishPartitionCosts(dd.cost.Snapshot())
		}
		c.apMu.Lock()
		last, backoff := c.apLast[dd.name], c.apBackoff[dd.name]
		c.apMu.Unlock()
		if backoff > 6 {
			backoff = 6 // cap the exponential back-off at 64x cooldown
		}
		if !last.IsZero() && time.Since(last) < ap.Cooldown*time.Duration(int64(1)<<backoff) {
			continue
		}
		c.autopilotDataset(dd, ap)
	}
}

// autopilotDataset plans one dataset: run the cost-aware rebalance; on a
// non-converged pass, back off with a logged warning (the noconverge
// counter is bumped inside Rebalance); when the layout is already
// balanced, consider promoting a replica of a cost-hot partition a split
// cannot divide.
func (c *Coordinator) autopilotDataset(dd *dispatchedDataset, ap AutopilotConfig) {
	steps, converged, err := c.Rebalance(dd.name, ap.Policy)
	if err != nil {
		ap.logf("autopilot: %s: rebalance: %v", dd.name, err)
		return
	}
	acted := len(steps) > 0
	if acted {
		if c.met != nil {
			c.met.autopilotCutovers.Add(int64(len(steps)))
		}
		ap.logf("autopilot: %s: %d automatic cutover(s)", dd.name, len(steps))
	}
	if !converged {
		c.apMu.Lock()
		c.apBackoff[dd.name]++
		n := c.apBackoff[dd.name]
		c.apLast[dd.name] = time.Now()
		c.apMu.Unlock()
		ap.logf("autopilot: %s: planner hit the %d-step budget without converging; backing off (x%d)",
			dd.name, netRebalanceMaxSteps, n)
		return
	}
	c.apMu.Lock()
	c.apBackoff[dd.name] = 0
	c.apMu.Unlock()
	if !acted {
		if pid := c.promoteCandidate(dd, ap); pid >= 0 {
			w, err := c.PromoteReplica(dd.name, pid)
			if err != nil {
				ap.logf("autopilot: %s: promote partition %d: %v", dd.name, pid, err)
				return
			}
			acted = true
			if c.met != nil {
				c.met.autopilotPromotions.Inc()
			}
			ap.logf("autopilot: %s: promoted replica of read-hot partition %d onto worker %d",
				dd.name, pid, w)
		}
	}
	if acted {
		c.apMu.Lock()
		c.apLast[dd.name] = time.Now()
		c.apMu.Unlock()
	}
}

// promoteCandidate picks the partition worth an extra read replica: the
// cost-hot pid by the same gates the split planner uses. The split
// planner already handled divisible hotspots (this runs only when it
// took no action), so what qualifies here is a hotspot a split cannot
// spread — typically a single-member partition — that is still below
// the promotion cap. Returns -1 when nothing qualifies.
func (c *Coordinator) promoteCandidate(dd *dispatchedDataset, ap AutopilotConfig) int {
	dd.mu.Lock()
	live := make([]int, 0, len(dd.parts))
	for pid := range dd.parts {
		if !dd.parts[pid].retired {
			live = append(live, pid)
		}
	}
	dd.mu.Unlock()
	pid, _ := core.CostHot(dd.cost, live, ap.Policy)
	if pid < 0 {
		return -1
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	if dd.parts[pid].retired || len(dd.replicas[pid]) >= ap.PromoteReplicas {
		return -1
	}
	return pid
}

// PromoteReplica adds one replica of a live partition onto the
// least-loaded live non-owner and registers it for read routing — the
// manual form of the autopilot's read-hotspot remedy. The copy ships
// like a heal: from the retained dispatch payload (Worker.Load) while
// the dataset is unmutated, worker-to-worker (Worker.Replicate) from a
// surviving owner otherwise. The surplus owner persists: rereplicate
// only tops partitions up to the configured factor and never trims
// above it. Returns the worker index that received the copy.
func (c *Coordinator) PromoteReplica(name string, pid int) (int, error) {
	dd, err := c.dataset(name)
	if err != nil {
		return -1, err
	}
	states := c.health.snapshot()
	dd.mu.Lock()
	if pid < 0 || pid >= len(dd.parts) || dd.parts[pid].retired {
		dd.mu.Unlock()
		return -1, fmt.Errorf("dnet: promote %s/%d: no such live partition", name, pid)
	}
	owners := append([]int(nil), dd.replicas[pid]...)
	payload, fp := dd.parts[pid].payload, dd.parts[pid].fingerprint
	if dd.mutated {
		// Acked writes live only on the workers; the dispatch payload is
		// stale. Ship worker-to-worker, unpinned, like healing does.
		payload, fp = nil, 0
	}
	loads := make([]int, len(c.addrs))
	for _, ows := range dd.replicas {
		for _, w := range ows {
			loads[w]++
		}
	}
	dd.mu.Unlock()
	target := -1
	for w := range c.addrs {
		if states[w] == Dead {
			continue
		}
		already := false
		for _, r := range owners {
			if r == w {
				already = true
				break
			}
		}
		if already {
			continue
		}
		if target < 0 || loads[w] < loads[target] {
			target = w
		}
	}
	if target < 0 {
		return -1, fmt.Errorf("dnet: promote %s/%d: no live non-owner to hold the copy", name, pid)
	}
	shipped := false
	if payload != nil {
		var reply LoadReply
		shipped = c.clients[target].Call("Worker.Load", payload, &reply) == nil
	} else {
		for _, src := range c.health.order(owners) {
			if states[src] == Dead {
				continue
			}
			var reply ReplicateReply
			err := c.clients[target].Call("Worker.Replicate", &ReplicateArgs{
				Dataset: name, Partition: pid,
				SrcAddr: c.addrs[src], Fingerprint: fp,
			}, &reply)
			if err == nil {
				shipped = true
				break
			}
		}
	}
	if !shipped {
		return -1, fmt.Errorf("dnet: promote %s/%d: shipping to worker %d failed", name, pid, target)
	}
	dd.mu.Lock()
	if !dd.parts[pid].retired {
		for _, w := range dd.replicas[pid] {
			if w == target {
				// A concurrent heal registered this worker already; our
				// Load was an idempotent reload of its copy.
				dd.mu.Unlock()
				return target, nil
			}
		}
		dd.replicas[pid] = append(dd.replicas[pid], target)
		dd.mu.Unlock()
		return target, nil
	}
	dd.mu.Unlock()
	// A cutover retired the partition mid-promotion; the copy is
	// unroutable now, drop it.
	var ur UnloadReply
	c.clients[target].CallOnce("Worker.Unload",
		&UnloadArgs{Dataset: name, Partition: pid}, &ur, c.cfg.Retry.CallTimeout)
	return -1, fmt.Errorf("dnet: promote %s/%d: partition retired during promotion", name, pid)
}
