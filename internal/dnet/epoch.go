package dnet

import (
	"errors"

	"dita/internal/geom"
)

// EpochView is a point-in-time snapshot of a dataset's write epochs,
// the coordinator-side currency for result-cache invalidation
// (internal/serve). Parts[pid] counts acked writes to the partition;
// Bounds counts the writes that grew any partition's MBR. Both only
// ever advance, and only after the replica fan-out succeeded, so a
// cached answer computed at epochs E is provably current while the
// live epochs still equal E on every partition the answer's touched
// set covers AND Bounds is unchanged (growth can make a partition
// newly relevant to a query that previously pruned it).
type EpochView struct {
	Bounds uint64
	Parts  []uint64
}

// Epochs snapshots the dataset's write epochs under the dataset lock.
// Callers caching a query result must take the snapshot BEFORE running
// the query: a write landing between snapshot and execution then makes
// the cached entry look stale (safe), never fresh.
func (c *Coordinator) Epochs(name string) (EpochView, error) {
	dd, err := c.dataset(name)
	if err != nil {
		return EpochView{}, err
	}
	dd.mu.Lock()
	defer dd.mu.Unlock()
	return EpochView{
		Bounds: dd.boundsEpoch,
		Parts:  append([]uint64(nil), dd.writeMark...),
	}, nil
}

// RelevantPartitions reports which partitions the dataset's global
// pruning cannot exclude for a threshold search — the touched set a
// cached search answer depends on. Writes to any other partition
// cannot change the answer while Bounds is unchanged: a pruned
// partition's members all fail the endpoint lower bound, and growth
// (the one way a pruned partition gains a qualifying member) bumps
// the bounds epoch.
func (c *Coordinator) RelevantPartitions(name string, q []geom.Point, tau float64) ([]int, error) {
	if len(q) == 0 {
		return nil, errors.New("dnet: empty query trajectory")
	}
	dd, err := c.dataset(name)
	if err != nil {
		return nil, err
	}
	return c.relevantPartitions(dd.boundsView(), q, tau), nil
}

// NumPartitions reports the dataset's partition count, retired slots
// included. It only ever grows: a rebalance cutover appends the new
// pieces and retires the replaced pids in place, so any pid a caller
// captured stays a valid index (serve's freshness check treats an
// out-of-range pid as stale, which a grown parts slice never produces).
func (c *Coordinator) NumPartitions(name string) (int, error) {
	dd, err := c.dataset(name)
	if err != nil {
		return 0, err
	}
	return len(dd.parts), nil
}

// Ready reports whether the coordinator can serve queries: at least one
// dataset dispatched and at least one worker not declared Dead. It is
// the /readyz signal for serving front ends.
func (c *Coordinator) Ready() error {
	c.mu.Lock()
	n := len(c.datasets)
	c.mu.Unlock()
	if n == 0 {
		return errors.New("dnet: no datasets dispatched")
	}
	for _, s := range c.health.snapshot() {
		if s != Dead {
			return nil
		}
	}
	return errors.New("dnet: all workers dead")
}
