package dnet

import (
	"fmt"
	"testing"
	"time"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

// startCluster spins up n workers on loopback and a connected coordinator.
func startCluster(t *testing.T, n int, cfg Config) (*Coordinator, func()) {
	t.Helper()
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w := NewWorker()
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	}
}

func testConfig() Config {
	cfg := DefaultNetConfig()
	cfg.NG = 3
	cfg.Trie.MinNode = 2
	// Fast retries so failure-path tests don't sit in backoff sleeps.
	cfg.Retry = RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		CallTimeout: 10 * time.Second,
		Seed:        1,
	}
	return cfg
}

// Network-mode search must be exact: the same results brute force gives,
// over real TCP with gob serialization.
func TestNetSearchMatchesBruteForce(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(400, 80))
	c, stop := startCluster(t, 3, testConfig())
	defer stop()
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	for _, q := range gen.Queries(d, 8, 81) {
		tau := 0.01
		want := map[int]bool{}
		for _, tr := range d.Trajs {
			if m.Distance(tr.Points, q.Points) <= tau {
				want[tr.ID] = true
			}
		}
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(want) {
			t.Fatalf("got %d hits, want %d", len(hits), len(want))
		}
		for _, h := range hits {
			if !want[h.ID] {
				t.Fatalf("spurious hit %d", h.ID)
			}
		}
	}
}

// The worker-to-worker join shuffle must be exact too.
func TestNetJoinMatchesBruteForce(t *testing.T) {
	a := gen.Generate(gen.BeijingLike(120, 82))
	b := gen.Generate(gen.BeijingLike(100, 82)) // same seed: shared routes
	for _, tr := range b.Trajs {
		tr.ID += 100000
	}
	c, stop := startCluster(t, 3, testConfig())
	defer stop()
	if err := c.Dispatch("T", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("Q", b); err != nil {
		t.Fatal(err)
	}
	tau := 0.01
	pairs, err := c.Join("T", "Q", tau)
	if err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	want := map[[2]int]bool{}
	for _, x := range a.Trajs {
		for _, y := range b.Trajs {
			if m.Distance(x.Points, y.Points) <= tau {
				want[[2]int{x.ID, y.ID}] = true
			}
		}
	}
	got := map[[2]int]bool{}
	for _, p := range pairs {
		key := [2]int{p.TID, p.QID}
		if got[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing pair %v", k)
		}
	}
}

// Data must actually be spread across workers, and search work must reach
// more than one of them.
func TestNetDistribution(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(600, 83))
	c, stop := startCluster(t, 3, testConfig())
	defer stop()
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	stats, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	loaded := 0
	for _, s := range stats {
		total += s.Trajs
		if s.Trajs > 0 {
			loaded++
		}
		if s.Trajs > 0 && s.IndexBytes == 0 {
			t.Error("worker holds data but no index")
		}
	}
	// Every trajectory is held Replicas (default 2) times.
	if total != 2*d.Len() {
		t.Fatalf("workers hold %d trajectory copies, want %d (2 replicas)", total, 2*d.Len())
	}
	if loaded < 2 {
		t.Fatalf("only %d workers hold data", loaded)
	}
	for _, q := range gen.Queries(d, 30, 84) {
		if _, err := c.Search("trips", q, 0.02); err != nil {
			t.Fatal(err)
		}
	}
	stats, _ = c.WorkerStats()
	searched := 0
	for _, s := range stats {
		if s.SearchCalls > 0 {
			searched++
		}
	}
	if searched < 2 {
		t.Errorf("search load reached only %d workers", searched)
	}
}

// Fetch returns the full trajectories for hits.
func TestNetFetch(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(100, 85))
	c, stop := startCluster(t, 2, testConfig())
	defer stop()
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	hits, err := c.Search("trips", q, 0.001)
	if err != nil || len(hits) == 0 {
		t.Fatalf("search: %v, %d hits", err, len(hits))
	}
	// Locate the partition holding the query id and fetch it back.
	dd, err := c.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for pid := range dd.parts {
		var reply FetchReply
		err := c.clients[c.replicaOrder(dd, pid)[0]].Call("Worker.Fetch",
			&FetchArgs{Dataset: "trips", Partition: pid, IDs: []int{q.ID}}, &reply)
		if err != nil {
			t.Fatal(err)
		}
		for _, wt := range reply.Trajs {
			if wt.ID == q.ID {
				found = true
				if len(wt.Points) != q.Len() {
					t.Fatalf("fetched %d points, want %d", len(wt.Points), q.Len())
				}
			}
		}
	}
	if !found {
		t.Fatal("query trajectory not fetchable from any partition")
	}
}

// Error paths: unknown dataset, unknown partition, empty dispatch, bad
// measure, no workers.
func TestNetErrors(t *testing.T) {
	c, stop := startCluster(t, 2, testConfig())
	defer stop()
	if _, err := c.Search("nope", &traj.T{Points: nil}, 1); err != nil {
		t.Errorf("empty query should short-circuit, got %v", err)
	}
	d := gen.Generate(gen.BeijingLike(20, 86))
	if _, err := c.Search("nope", d.Trajs[0], 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := c.Join("nope", "nope", 1); err == nil {
		t.Error("join on unknown dataset accepted")
	}
	if err := c.Dispatch("empty", traj.NewDataset("e", nil)); err == nil {
		t.Error("empty dispatch accepted")
	}
	if _, err := Connect(nil, testConfig()); err == nil {
		t.Error("no addresses accepted")
	}
	bad := testConfig()
	bad.Measure.Name = "bogus"
	if _, err := Connect([]string{"127.0.0.1:1"}, bad); err == nil {
		t.Error("bogus measure accepted")
	}
}

// Fréchet over the network must be exact as well (measure resolution by
// name on the worker side).
func TestNetFrechet(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(200, 87))
	cfg := testConfig()
	cfg.Measure = MeasureSpec{Name: "FRECHET"}
	c, stop := startCluster(t, 2, cfg)
	defer stop()
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	m := measure.Frechet{}
	q := gen.Queries(d, 1, 88)[0]
	tau := 0.005
	want := 0
	for _, tr := range d.Trajs {
		if m.Distance(tr.Points, q.Points) <= tau {
			want++
		}
	}
	hits, err := c.Search("trips", q, tau)
	if err != nil || len(hits) != want {
		t.Fatalf("Fréchet search: %v, %d hits, want %d", err, len(hits), want)
	}
}

// Self-join over the network: every trajectory pairs with itself.
func TestNetSelfJoin(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(80, 89))
	c, stop := startCluster(t, 2, testConfig())
	defer stop()
	if err := c.Dispatch("A", d); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("B", d); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Join("A", "B", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	self := 0
	for _, p := range pairs {
		if p.TID == p.QID {
			self++
		}
	}
	if self != d.Len() {
		t.Fatalf("self pairs %d, want %d", self, d.Len())
	}
}

// A worker can be shared by many datasets and partitions without
// interference.
func TestNetMultiDataset(t *testing.T) {
	c, stop := startCluster(t, 2, testConfig())
	defer stop()
	for i := 0; i < 3; i++ {
		d := gen.Generate(gen.BeijingLike(60, int64(90+i)))
		if err := c.Dispatch(fmt.Sprintf("d%d", i), d); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := c.WorkerStats()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range stats {
		total += s.Trajs
	}
	if total != 360 { // 3 datasets × 60 trajectories × 2 replicas
		t.Fatalf("workers hold %d trajectory copies, want 360", total)
	}
}

// With replication disabled, a worker dying after dispatch must surface
// as a clean error (strict mode), not a hang or a silent partial result.
func TestNetWorkerFailure(t *testing.T) {
	w1 := NewWorker()
	a1, err := w1.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWorker()
	a2, err := w2.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	cfg := testConfig()
	cfg.Replicas = 1
	c, err := Connect([]string{a1, a2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d := gen.Generate(gen.BeijingLike(200, 95))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	// Kill the second worker.
	w2.Close()
	q := gen.Queries(d, 1, 96)[0]
	// A broad search must touch both workers' partitions; the dead one
	// must produce an error.
	if _, err := c.Search("trips", q, 100); err == nil {
		t.Fatal("search over a dead worker returned no error")
	}
	// Joins must fail cleanly too.
	if err := c.Dispatch("more", d); err == nil {
		t.Fatal("dispatch to a dead worker succeeded")
	}
}
