package dnet

import (
	"context"
	"strings"
	"testing"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/obs"
)

// A traced network search must yield a coordinator-assembled trace with
// one span per relevant partition (worker address, remote compute time,
// partition-local funnel), a monotone whole-query funnel whose Matched
// equals the brute-force answer, and trace-span funnels that sum to the
// whole-query funnel without double counting.
func TestTracedSearchAssemblesClusterTrace(t *testing.T) {
	reg := obs.New()
	cfg := testConfig()
	cfg.Obs = reg
	c, stop := startCluster(t, 3, cfg)
	defer stop()
	d := gen.Generate(gen.BeijingLike(300, 90))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	q := gen.Queries(d, 1, 91)[0]
	tau := 0.01
	want := 0
	for _, tr := range d.Trajs {
		if m.Distance(tr.Points, q.Points) <= tau {
			want++
		}
	}

	qs := &QueryStats{Trace: obs.NewTrace("search")}
	hits, report, err := c.SearchTraced(context.Background(), "trips", q, tau, qs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial() {
		t.Fatalf("unexpected partial report: %+v", report.Skipped)
	}
	if len(hits) != want {
		t.Fatalf("got %d hits, want %d", len(hits), want)
	}
	f := qs.Funnel
	if !f.Monotone() {
		t.Fatalf("funnel not monotone: %s", f)
	}
	if f.Matched != int64(want) {
		t.Fatalf("funnel Matched = %d, want brute-force %d", f.Matched, want)
	}
	if f.Relevant == 0 || f.Considered == 0 {
		t.Fatalf("empty funnel: %s", f)
	}
	if qs.Attempts < int(f.Relevant) {
		t.Fatalf("attempts %d < relevant partitions %d", qs.Attempts, f.Relevant)
	}
	if qs.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}

	// The trace must cover every relevant partition with a worker-scoped
	// span carrying remote time and the partition's funnel.
	spans := qs.Trace.Spans()
	names := map[string]int{}
	partSpans := map[int]obs.Span{}
	for _, s := range spans {
		names[s.Name]++
		if s.Name == "partition-search" {
			partSpans[s.Partition] = s
		}
	}
	for _, n := range []string{"admit", "global-prune", "merge"} {
		if names[n] != 1 {
			t.Fatalf("span %q count = %d, want 1 (spans: %v)", n, names[n], names)
		}
	}
	if len(partSpans) != int(f.Relevant) {
		t.Fatalf("%d partition spans, want %d", len(partSpans), f.Relevant)
	}
	for pid, s := range partSpans {
		if s.Worker == "" {
			t.Fatalf("partition %d span has no worker address", pid)
		}
		if s.Remote <= 0 {
			t.Fatalf("partition %d span has no remote time", pid)
		}
		if s.Attempts < 1 {
			t.Fatalf("partition %d span attempts = %d", pid, s.Attempts)
		}
		if s.Funnel == nil {
			t.Fatalf("partition %d span has no funnel", pid)
		}
	}
	// Funnel stages are partitioned across span kinds, so summing every
	// span's funnel reproduces the whole query's.
	if got := qs.Trace.Funnel(); got != f {
		t.Fatalf("trace funnel %s != query funnel %s", got, f)
	}

	// Coordinator metrics recorded the query.
	snap := reg.Snapshot()
	if snap.Counters["coord_searches_total"] != 1 {
		t.Fatalf("coord_searches_total = %d", snap.Counters["coord_searches_total"])
	}
	if snap.Counters["coord_search_funnel_matched_total"] != int64(want) {
		t.Fatalf("coord_search_funnel_matched_total = %d, want %d",
			snap.Counters["coord_search_funnel_matched_total"], want)
	}
	if snap.Histograms["coord_search_latency_us"].Count != 1 {
		t.Fatal("coord_search_latency_us not observed")
	}
}

// A traced join must produce edge spans with destination-local funnels
// and a whole-join funnel whose Matched equals the brute-force pair count.
func TestTracedJoinFunnelMatchesBruteForce(t *testing.T) {
	reg := obs.New()
	cfg := testConfig()
	cfg.Obs = reg
	c, stop := startCluster(t, 3, cfg)
	defer stop()
	a := gen.Generate(gen.BeijingLike(100, 92))
	b := gen.Generate(gen.BeijingLike(80, 92))
	for _, tr := range b.Trajs {
		tr.ID += 100000
	}
	if err := c.Dispatch("T", a); err != nil {
		t.Fatal(err)
	}
	if err := c.Dispatch("Q", b); err != nil {
		t.Fatal(err)
	}
	tau := 0.01
	m := measure.DTW{}
	want := 0
	for _, x := range a.Trajs {
		for _, y := range b.Trajs {
			if m.Distance(x.Points, y.Points) <= tau {
				want++
			}
		}
	}

	qs := &QueryStats{Trace: obs.NewTrace("join")}
	pairs, report, err := c.JoinTraced(context.Background(), "T", "Q", tau, qs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial() {
		t.Fatalf("unexpected partial report: %+v", report.Skipped)
	}
	if len(pairs) != want {
		t.Fatalf("got %d pairs, want %d", len(pairs), want)
	}
	f := qs.Funnel
	if !f.Monotone() {
		t.Fatalf("join funnel not monotone: %s", f)
	}
	if f.Matched != int64(want) {
		t.Fatalf("funnel Matched = %d, want %d", f.Matched, want)
	}
	edgeSpans, liveEdges := 0, 0
	for _, s := range qs.Trace.Spans() {
		if s.Name != "edge-join" {
			continue
		}
		edgeSpans++
		if s.Worker == "" || !strings.Contains(s.Worker, ">") {
			t.Fatalf("edge span worker %q should be src>dst", s.Worker)
		}
		if s.Funnel == nil {
			t.Fatalf("edge span missing funnel: %+v", s)
		}
		// Edges whose selection shipped nothing legitimately report an
		// empty funnel and sub-microsecond remote time.
		if s.Funnel.Considered > 0 && s.Remote > 0 {
			liveEdges++
		}
	}
	if edgeSpans != int(f.Relevant) {
		t.Fatalf("%d edge spans, want %d bigraph edges", edgeSpans, f.Relevant)
	}
	if liveEdges == 0 {
		t.Fatal("no edge span carried work (funnel + remote time)")
	}
	if got := qs.Trace.Funnel(); got != f {
		t.Fatalf("trace funnel %s != query funnel %s", got, f)
	}
	snap := reg.Snapshot()
	if snap.Counters["coord_joins_total"] != 1 {
		t.Fatalf("coord_joins_total = %d", snap.Counters["coord_joins_total"])
	}
}

// Under the chaos transport severing connections after a fixed op budget,
// a traced search must eventually record a span with Attempts > 1 (the
// injected retry), the retry counter must advance, and every answer must
// still match brute force.
func TestTracedSearchInjectedRetry(t *testing.T) {
	plan := &FaultPlan{Seed: 13, SeverAfter: 300}
	reg := obs.New()
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker()
		w.FaultInjection = plan
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	cfg := testConfig()
	cfg.Obs = reg
	cfg.Retry.MaxAttempts = 12
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	d := gen.Generate(gen.BeijingLike(120, 93))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	tau := 0.01
	sawRetry := false
	for round := 0; round < 60 && !sawRetry; round++ {
		for _, q := range gen.Queries(d, 4, int64(94+round)) {
			want := 0
			for _, tr := range d.Trajs {
				if m.Distance(tr.Points, q.Points) <= tau {
					want++
				}
			}
			qs := &QueryStats{Trace: obs.NewTrace("search")}
			hits, _, err := c.SearchTraced(context.Background(), "trips", q, tau, qs)
			if err != nil {
				t.Fatal(err)
			}
			if len(hits) != want {
				t.Fatalf("got %d hits, want %d", len(hits), want)
			}
			if !qs.Funnel.Monotone() {
				t.Fatalf("funnel not monotone under chaos: %s", qs.Funnel)
			}
			for _, s := range qs.Trace.Spans() {
				if s.Name == "partition-search" && s.Attempts > 1 && s.Err == "" {
					sawRetry = true
				}
			}
		}
	}
	if !sawRetry {
		t.Fatal("no traced search recorded a retried attempt under the sever plan")
	}
	if reg.Snapshot().Counters["coord_rpc_retries_total"] == 0 {
		t.Fatal("coord_rpc_retries_total did not advance")
	}
}

// Skip reports must say how hard the coordinator tried: attempts, elapsed
// time, and a coarse error class.
func TestSkippedPartitionCarriesAttemptsElapsedClass(t *testing.T) {
	reg := obs.New()
	cfg := testConfig()
	cfg.Obs = reg
	cfg.AllowPartial = true
	cfg.Retry.MaxAttempts = 2
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker()
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	d := gen.Generate(gen.BeijingLike(100, 95))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		w.Close() // kill every worker: all partitions must be skipped
	}
	q := gen.Queries(d, 1, 96)[0]
	qs := &QueryStats{Trace: obs.NewTrace("search")}
	hits, report, err := c.SearchTraced(context.Background(), "trips", q, 0.01, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 || !report.Partial() {
		t.Fatalf("expected fully-partial result, got %d hits, report %+v", len(hits), report)
	}
	for _, s := range report.Skipped {
		if s.Attempts < 1 {
			t.Fatalf("skip %+v has no attempts", s)
		}
		if s.Elapsed <= 0 {
			t.Fatalf("skip %+v has no elapsed time", s)
		}
		if s.Class != obs.ClassTransport {
			t.Fatalf("skip %+v class = %q, want transport", s, s.Class)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["coord_partition_skips_total"]; got != int64(len(report.Skipped)) {
		t.Fatalf("coord_partition_skips_total = %d, want %d", got, len(report.Skipped))
	}
	if snap.Counters["coord_partition_skips_transport_total"] == 0 {
		t.Fatal("per-class skip counter did not advance")
	}
	// Skip spans still land on the trace, with the error class attached.
	found := false
	for _, s := range qs.Trace.Spans() {
		if s.Name == "partition-search" && s.Err != "" && s.Class == obs.ClassTransport {
			found = true
		}
	}
	if !found {
		t.Fatal("no skip span recorded on the trace")
	}
}

// Worker.Instrument must expose the queries-inflight gauge (zero at rest)
// and the cumulative call counters.
func TestWorkerInstrument(t *testing.T) {
	reg := obs.New()
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w := NewWorker()
		w.Instrument(reg) // both workers share one registry in-process
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	d := gen.Generate(gen.BeijingLike(100, 97))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	for _, q := range gen.Queries(d, 3, 98) {
		if _, err := c.Search("trips", q, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	// Both workers registered the same gauge names; the registry keeps the
	// last registration, so assert through each worker's own accessor plus
	// the scrape of the last one.
	for i, w := range workers {
		if got := w.Inflight(); got != 0 {
			t.Fatalf("worker %d inflight = %d at rest", i, got)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["worker_queries_inflight"]; got != 0 {
		t.Fatalf("worker_queries_inflight = %d at rest", got)
	}
	if snap.Gauges["worker_partitions"] == 0 {
		t.Fatal("worker_partitions gauge empty after dispatch")
	}
}
