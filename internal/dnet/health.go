package dnet

import (
	"sort"
	"sync"
	"time"
)

// WorkerState is a worker's position in the coordinator's failure
// detector: Healthy workers serve traffic; Suspect workers have missed
// pings (or failed data-path calls) but keep their partitions and are
// still tried, just after healthy replicas; Dead workers have missed
// enough consecutive health checks that the coordinator re-replicates
// their partitions onto survivors. A Dead worker that answers a later
// ping is revived to Healthy (empty — its partitions have moved) and
// becomes eligible for future dispatches.
type WorkerState int

const (
	Healthy WorkerState = iota
	Suspect
	Dead
)

func (s WorkerState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// HealthPolicy configures failure detection.
type HealthPolicy struct {
	// Interval is the background heartbeat period; 0 disables the loop
	// (CheckHealth can still be called manually).
	Interval time.Duration
	// SuspectAfter is the consecutive-failure count that moves a worker
	// Healthy→Suspect (default 1).
	SuspectAfter int
	// DeadAfter is the consecutive health-check failure count that
	// declares a worker Dead and triggers partition re-replication
	// (default 3).
	DeadAfter int
	// PingTimeout is the per-ping deadline (default 2s).
	PingTimeout time.Duration
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.SuspectAfter < 1 {
		p.SuspectAfter = 1
	}
	if p.DeadAfter < p.SuspectAfter {
		p.DeadAfter = p.SuspectAfter + 2
	}
	if p.PingTimeout <= 0 {
		p.PingTimeout = 2 * time.Second
	}
	return p
}

// healthTracker holds the per-worker failure-detector state.
type healthTracker struct {
	policy HealthPolicy

	mu     sync.Mutex
	states []WorkerState
	fails  []int
}

func newHealthTracker(n int, policy HealthPolicy) *healthTracker {
	return &healthTracker{
		policy: policy,
		states: make([]WorkerState, n),
		fails:  make([]int, n),
	}
}

// success records a successful probe or call; it revives Dead workers.
func (h *healthTracker) success(i int) {
	h.mu.Lock()
	h.fails[i] = 0
	h.states[i] = Healthy
	h.mu.Unlock()
}

// failure records a failed probe or call. canKill distinguishes health
// checks (which may declare a worker Dead, returning true exactly on the
// Suspect→Dead transition so the caller heals once) from data-path
// failures (which stop at Suspect — only the detector buries workers, so
// healing has a single driver).
func (h *healthTracker) failure(i int, canKill bool) (nowDead bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails[i]++
	if h.states[i] == Dead {
		return false
	}
	if canKill && h.fails[i] >= h.policy.DeadAfter {
		h.states[i] = Dead
		return true
	}
	if h.fails[i] >= h.policy.SuspectAfter {
		h.states[i] = Suspect
	}
	return false
}

// state returns one worker's current state.
func (h *healthTracker) state(i int) WorkerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.states[i]
}

// snapshot copies all states.
func (h *healthTracker) snapshot() []WorkerState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]WorkerState(nil), h.states...)
}

// order sorts a replica list live-first (healthy, then suspect, then
// dead — dead replicas are still tried last: the detector may lag
// reality in both directions). The sort is stable so the dispatch-time
// preference order breaks ties.
func (h *healthTracker) order(replicas []int) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.orderLocked(replicas)
	return replicas
}

func (h *healthTracker) orderLocked(replicas []int) {
	sort.SliceStable(replicas, func(a, b int) bool {
		return h.states[replicas[a]] < h.states[replicas[b]]
	})
}

// orderRotated is order for the read paths: live-first like order, but
// each run of equal-health replicas is rotated by tick so equally-healthy
// copies share the read load. The plain stable order would send every
// read for a partition to the same first live worker — a built-in
// hotspot that makes replica promotion pointless. Healing and recovery
// keep the deterministic order.
func (h *healthTracker) orderRotated(replicas []int, tick uint64) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.orderLocked(replicas)
	for i := 0; i < len(replicas); {
		j := i + 1
		for j < len(replicas) && h.states[replicas[j]] == h.states[replicas[i]] {
			j++
		}
		if n := j - i; n > 1 {
			rotateLeft(replicas[i:j], int(tick%uint64(n)))
		}
		i = j
	}
	return replicas
}

// rotateLeft rotates s left by k (0 <= k < len(s)).
func rotateLeft(s []int, k int) {
	if k == 0 {
		return
	}
	tmp := append([]int(nil), s[:k]...)
	copy(s, s[k:])
	copy(s[len(s)-k:], tmp)
}
