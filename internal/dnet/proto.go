// Package dnet is DITA's real-network execution mode: the same
// partitioning, indexing and filter–verification pipeline as the simulated
// substrate (internal/cluster), but with workers running as TCP servers
// (stdlib net/rpc over gob) that hold their partitions' data and indexes
// in memory, a coordinator that routes queries with the global index, and
// a worker-to-worker shuffle for joins — the deployment shape of the
// paper's Spark system, without Spark.
//
// The simulated substrate remains the tool for the paper's scale-up
// experiments (virtual clocks model any core count); dnet demonstrates
// that the engine's decomposition really is distributable: data never
// leaves the owning worker except through the same movements the cost
// model accounts (queries in, results out, join shipments between
// workers).
//
//	workers: dita-worker -listen 127.0.0.1:7001 (one per node)
//	coordinator: connects, partitions, indexes, serves Search/Join
package dnet

import (
	"dita/internal/geom"
	"dita/internal/obs"
)

// WireTrajectory is the gob wire form of a trajectory.
type WireTrajectory struct {
	ID     int
	Points []geom.Point
}

// MeasureSpec names a similarity function plus the parameters the
// edit-based ones need; interfaces don't travel over gob, names do.
type MeasureSpec struct {
	Name  string
	Eps   float64
	Delta int
}

// LoadArgs ships one partition to a worker and asks it to index it.
type LoadArgs struct {
	// Dataset distinguishes the two sides of a join ("T", "Q", ...).
	Dataset string
	// Partition is the partition id within the dataset.
	Partition int
	Trajs     []WireTrajectory
	// Index configuration.
	Measure  MeasureSpec
	K        int
	NLAlign  int
	NLPivot  int
	MinNode  int
	Strategy int
	CellD    float64
	// Fingerprint is the snap.Fingerprint content hash over (build
	// options, trajectories). The coordinator stamps it so the worker can
	// recognize an identical partition it already holds (idempotent
	// reloads skip the trie rebuild) and so snapshots written from this
	// load carry the same identity the coordinator tracks. 0 = unknown.
	Fingerprint uint64
}

// LoadReply reports the built index's footprint and durability.
type LoadReply struct {
	Trajs      int
	IndexBytes int
	// Snapshotted reports that the partition was persisted durably to the
	// worker's snapshot directory (false when the worker runs without one
	// or the write failed — the load itself still succeeded).
	Snapshotted bool
	// SnapshotBytes is the on-disk snapshot size when Snapshotted.
	SnapshotBytes int64
}

// InventoryArgs asks a worker what partitions it holds in memory; the
// coordinator calls it at Dispatch to skip re-shipping partitions a
// cold-started worker already restored from snapshots.
type InventoryArgs struct{}

// InventoryPart identifies one held partition by content.
type InventoryPart struct {
	Dataset     string
	Partition   int
	Fingerprint uint64
	// Snapshotted reports whether a durable snapshot of exactly this
	// content exists on the worker's disk — what payload-release
	// decisions count.
	Snapshotted bool
	// LastSeq is the highest ingest sequence number applied to the
	// partition (snapshot watermark plus replayed WAL suffix). The
	// coordinator seeds its per-partition sequence counter past it so a
	// restarted coordinator never reissues a number a worker would dedupe.
	LastSeq uint64
}

// ManifestArgs asks a worker for the exact visible contents of one held
// partition — base members minus tombstones plus delta. Rebalance
// recovery uses it to rebuild the coordinator's routing table and true
// partition bounds from worker state, instead of re-running the original
// dispatch (which would clobber every acked overlay and prune with
// dispatch-time MBRs that ingested outliers have outgrown).
type ManifestArgs struct {
	Dataset   string
	Partition int
}

// ManifestReply describes one partition's visible state.
type ManifestReply struct {
	// IDs lists the visible trajectory ids, ascending.
	IDs []int
	// MBRf/MBRl bound the visible members' endpoints — the partition's
	// TRUE current bounds, overlay included.
	MBRf, MBRl geom.MBR
	// Fingerprint is the base content hash; Snapshotted whether a durable
	// snapshot of that base exists; LastSeq the highest applied sequence
	// number (the freshness order between diverged holders of one pid).
	Fingerprint uint64
	Snapshotted bool
	LastSeq     uint64
}

// WireRecord is one streamed mutation on the wire: an upsert (Op =
// wal.OpInsert, Points set) or a delete (Op = wal.OpDelete, Points empty)
// of one trajectory id. Seq is the partition-scoped sequence number the
// coordinator assigned; workers append records to their WAL under it and
// dedupe retransmissions by it.
type WireRecord struct {
	Seq    uint64
	Op     byte
	ID     int
	Points []geom.Point
}

// IngestArgs applies a batch of mutations to one partition. Records must
// be in ascending Seq order; the worker appends them to the partition's
// WAL (fsync) before touching in-memory state, so a positive reply means
// the batch survives a crash.
type IngestArgs struct {
	Dataset   string
	Partition int
	Records   []WireRecord
}

// IngestReply reports what the worker did with the batch.
type IngestReply struct {
	// Applied counts records logged and applied by this call.
	Applied int
	// Deduped counts records skipped because their Seq was at or below the
	// partition's durable floor — retransmissions of already-acked writes.
	Deduped int
	// LastSeq is the partition's highest applied sequence number.
	LastSeq uint64
	// DeltaBytes is the partition's delta-buffer size after the batch (and
	// after any merge it triggered).
	DeltaBytes int
	// Merged reports that the batch pushed the delta over the merge
	// threshold and the partition folded it into a fresh base.
	Merged bool
}

// InventoryReply lists a worker's in-memory partitions.
type InventoryReply struct {
	Parts []InventoryPart
}

// ExportArgs asks a worker for the encoded snapshot image of one held
// partition — the worker-to-worker healing transfer.
type ExportArgs struct {
	Dataset   string
	Partition int
}

// ExportReply carries the sealed snapshot image. The receiver runs the
// full snap.Decode verification, so corruption on the wire (or a torn
// source) is detected exactly like disk corruption.
type ExportReply struct {
	Data []byte
}

// ReplicateArgs asks a worker to fetch a partition's snapshot image from
// a peer (Worker.Export on SrcAddr), verify it, install it, and persist
// it locally. This is how healing works once the coordinator has dropped
// its retained raw payloads: the bytes flow worker-to-worker.
type ReplicateArgs struct {
	Dataset   string
	Partition int
	SrcAddr   string
	// Fingerprint, when non-zero, is the content the coordinator expects;
	// a mismatched transfer is refused.
	Fingerprint uint64
}

// ReplicateReply reports the installed partition's footprint.
type ReplicateReply struct {
	Trajs       int
	IndexBytes  int
	Snapshotted bool
}

// SearchArgs runs a threshold search against one loaded partition.
type SearchArgs struct {
	Dataset   string
	Partition int
	Query     []geom.Point
	Tau       float64
	// TimeoutMillis is the query's remaining deadline budget when the
	// coordinator issued the call; the worker bounds its trie descent and
	// verification loop by it. 0 means no deadline. (net/rpc has no
	// cancellation channel, so the deadline travels in-band.)
	TimeoutMillis int64
	// TraceID/SpanID tie this call to the coordinator's query trace so a
	// whole-cluster picture can be assembled from per-worker reports (and
	// worker-side logs can be correlated). Empty when tracing is off.
	TraceID, SpanID string
}

// SearchHit is one search answer (the data stays on the worker; the
// coordinator can Fetch full trajectories if the caller wants them).
type SearchHit struct {
	ID       int
	Distance float64
}

// SearchReply returns the verified hits plus filter statistics.
type SearchReply struct {
	Hits       []SearchHit
	Candidates int
	Verified   int
	// Funnel is the partition-local pruning funnel (Considered onward;
	// the coordinator owns the global Partitions/Relevant stages).
	Funnel obs.Funnel
	// ElapsedMicros is the worker-measured handler time, so the
	// coordinator's trace can split wire time from compute time.
	ElapsedMicros int64
}

// KNNArgs runs a best-first top-k scan against one loaded partition.
type KNNArgs struct {
	Dataset   string
	Partition int
	Query     []geom.Point
	// K is the global k; the worker returns its partition-local top-k so
	// the coordinator's merge can never miss a global answer.
	K int
	// Tau caps the scan's threshold: the coordinator's current global
	// k-th distance at round start (+Inf on the first round, before k
	// answers exist). Candidates provably beyond it are never verified.
	Tau float64
	// TimeoutMillis / TraceID / SpanID: as in SearchArgs.
	TimeoutMillis   int64
	TraceID, SpanID string
}

// KNNReply returns the partition-local top-k (exact distances, ascending
// (distance, ID)) plus the scan's pruning funnel.
type KNNReply struct {
	Hits []SearchHit
	// Funnel is the partition-local pruning funnel (Considered onward).
	Funnel obs.Funnel
	// ElapsedMicros is the worker-measured handler time.
	ElapsedMicros int64
}

// FetchArgs retrieves full trajectories by id from a partition.
type FetchArgs struct {
	Dataset   string
	Partition int
	IDs       []int
}

// FetchReply carries the requested trajectories.
type FetchReply struct {
	Trajs []WireTrajectory
}

// ShipArgs instructs a worker to select its partition's trajectories
// relevant to a destination partition (the per-trajectory global-index
// check) and push them to the destination worker, which runs the local
// join and returns the pairs. The caller (coordinator) receives the pairs
// through the chain.
type ShipArgs struct {
	// Source partition on the worker receiving this call.
	SrcDataset   string
	SrcPartition int
	// Destination partition and its owner's address.
	DstAddr      string
	DstDataset   string
	DstPartition int
	// MBRf/MBRl of the destination partition, for the relevance check.
	DstMBRf, DstMBRl geom.MBR
	Tau              float64
	// Flip: the shipped side is the Q side (pairs come back reversed).
	Flip bool
	// TimeoutMillis bounds the whole shipment (selection + peer join);
	// the remaining budget is forwarded to the destination's Join call.
	// 0 means no deadline.
	TimeoutMillis int64
	// TraceID/SpanID are forwarded to the destination's Join call so both
	// hops of the shipment correlate to the coordinator's query trace.
	TraceID, SpanID string
}

// JoinArgs is the worker-to-worker shipment: probe the destination
// partition's trie with each shipped trajectory and verify.
type JoinArgs struct {
	Dataset   string
	Partition int
	Trajs     []WireTrajectory
	Tau       float64
	Flip      bool
	// TimeoutMillis bounds the local join; 0 means no deadline.
	TimeoutMillis int64
	// TraceID/SpanID correlate the shipment to the coordinator's trace.
	TraceID, SpanID string
}

// WirePair is one join result.
type WirePair struct {
	TID, QID int
	Distance float64
}

// JoinReply returns the verified pairs and candidate counts.
type JoinReply struct {
	Pairs      []WirePair
	Candidates int
	// BytesReceived is the wire size of the shipment, for accounting.
	BytesReceived int
	// Funnel is the destination-local pruning funnel of the shipment
	// (Considered = shipped × destination trajectories, onward).
	Funnel obs.Funnel
	// ElapsedMicros is remote compute time: the Join handler's time, or —
	// when the reply passed through Ship — the whole shipment (selection
	// plus peer join), which subsumes it.
	ElapsedMicros int64
}

// PingArgs/PingReply are the heartbeat probe: the coordinator's failure
// detector calls Worker.Ping on an interval; a draining or dead worker
// fails the call.
type PingArgs struct{}

// PingReply reports liveness plus a cheap inventory summary.
type PingReply struct {
	Partitions int
}

// UnloadArgs drops one partition from a worker. The coordinator uses it
// to roll back partially-shipped dispatches so a retry doesn't
// double-index data.
type UnloadArgs struct {
	Dataset   string
	Partition int
}

// UnloadReply reports whether the partition was present.
type UnloadReply struct {
	Unloaded bool
}

// StatsArgs/StatsReply expose a worker's inventory.
type StatsArgs struct{}

// StatsReply summarizes what a worker holds.
type StatsReply struct {
	Partitions  int
	Trajs       int
	IndexBytes  int
	SearchCalls int64
	JoinCalls   int64
	BytesIn     int64
	// DeltaBytes is the summed size of the worker's un-merged ingest
	// deltas; IngestCalls counts Worker.Ingest RPCs served.
	DeltaBytes  int
	IngestCalls int64
}
