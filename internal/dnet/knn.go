package dnet

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dita/internal/core"
	"dita/internal/obs"
	"dita/internal/traj"
)

// knnMerger is the coordinator's global top-k state: a k-bounded max-heap
// of worker hits ordered by (distance, ID), mirroring core.KNNAcc. Worker
// partitions are disjoint, so every ID arrives at most once per query and
// no resolved-set is needed.
type knnMerger struct {
	k    int
	heap []SearchHit
}

func worseHit(a, b SearchHit) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.ID > b.ID
}

func newKNNMerger(k int) *knnMerger { return &knnMerger{k: k, heap: make([]SearchHit, 0, k)} }

func (g *knnMerger) full() bool { return len(g.heap) >= g.k }

// tau is the live global threshold: the k-th best distance once full,
// +Inf before.
func (g *knnMerger) tau() float64 {
	if !g.full() {
		return math.Inf(1)
	}
	return g.heap[0].Distance
}

func (g *knnMerger) offer(h SearchHit) {
	if len(g.heap) < g.k {
		g.heap = append(g.heap, h)
		i := len(g.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worseHit(g.heap[i], g.heap[p]) {
				return
			}
			g.heap[i], g.heap[p] = g.heap[p], g.heap[i]
			i = p
		}
		return
	}
	if !worseHit(g.heap[0], h) {
		return
	}
	g.heap[0] = h
	i, n := 0, len(g.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && worseHit(g.heap[l], g.heap[big]) {
			big = l
		}
		if r < n && worseHit(g.heap[r], g.heap[big]) {
			big = r
		}
		if big == i {
			return
		}
		g.heap[i], g.heap[big] = g.heap[big], g.heap[i]
		i = big
	}
}

// results returns the merged top-k in ascending (distance, ID) order.
func (g *knnMerger) results() []SearchHit {
	out := append([]SearchHit(nil), g.heap...)
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// SearchKNN returns the k trajectories of the dispatched dataset nearest
// to q, ordered by ascending (distance, ID) — the network mode of the
// engine's incremental best-first kNN. The coordinator visits partitions
// in ascending global-index lower bound order in rounds of one batch per
// round (at most one in-flight partition per worker), tightening the
// global k-th distance τ between rounds and stopping exactly when the
// next partition's bound exceeds it. Workers run the same per-partition
// scan as the local engine, so results are identical to core.SearchKNN
// over the same data.
func (c *Coordinator) SearchKNN(name string, q *traj.T, k int) ([]SearchHit, error) {
	hits, _, err := c.SearchKNNPartialContext(context.Background(), name, q, k)
	return hits, err
}

// SearchKNNContext is SearchKNN under query-lifecycle control (admission,
// cancellation between rounds and replica attempts, in-band deadlines).
func (c *Coordinator) SearchKNNContext(ctx context.Context, name string, q *traj.T, k int) ([]SearchHit, error) {
	hits, _, err := c.SearchKNNPartialContext(ctx, name, q, k)
	return hits, err
}

// SearchKNNPartial is SearchKNN plus the partial-result report. Unlike a
// threshold search, a top-k result missing a partition's contribution is
// best-effort, not a subset of the true answer: with AllowPartial the
// returned hits are the exact top-k of the partitions that answered, and
// the report names the ones that did not.
func (c *Coordinator) SearchKNNPartial(name string, q *traj.T, k int) ([]SearchHit, *PartialReport, error) {
	return c.SearchKNNPartialContext(context.Background(), name, q, k)
}

// SearchKNNPartialContext is SearchKNNContext plus the partial-result
// report. Cancellation is never partial: a done context fails the query.
func (c *Coordinator) SearchKNNPartialContext(ctx context.Context, name string, q *traj.T, k int) ([]SearchHit, *PartialReport, error) {
	return c.SearchKNNTraced(ctx, name, q, k, nil)
}

// SearchKNNTraced is SearchKNNPartialContext plus per-query observability:
// qs (may be nil) receives the whole-query pruning funnel and timings,
// and — when qs.Trace is set — a coordinator-assembled trace with a
// knn-plan span, one knn-round span per visit round, and one
// partition-knn span per partition RPC (worker address, attempts
// including retries and failovers, remote compute time, partition-local
// funnel).
func (c *Coordinator) SearchKNNTraced(ctx context.Context, name string, q *traj.T, k int, qs *QueryStats) ([]SearchHit, *PartialReport, error) {
	report := &PartialReport{}
	if q == nil || len(q.Points) == 0 || k <= 0 {
		return nil, report, ctx.Err()
	}
	var tr *obs.Trace
	if qs != nil {
		tr = qs.Trace
	}
	timed := qs != nil || c.met != nil
	var qStart time.Time
	if timed {
		qStart = time.Now()
	}
	release, err := c.adm.Acquire(ctx)
	if timed {
		wait := time.Since(qStart)
		if qs != nil {
			qs.AdmissionWait = wait
		}
		if c.met != nil {
			c.met.admissionWait.Observe(wait.Microseconds())
		}
		if tr != nil {
			s := obs.Span{Name: "admit", Partition: -1, Start: qStart.Sub(tr.Begin), Duration: wait}
			if err != nil {
				s.Err, s.Class = err.Error(), obs.Classify(err)
			}
			tr.Add(s)
		}
	}
	if err != nil {
		return nil, report, err
	}
	defer release()
	dd, err := c.dataset(name)
	if err != nil {
		return nil, report, err
	}
	// Round size: one partition per worker per round keeps every worker
	// busy without racing ahead of the tightening τ.
	roundSize := len(c.addrs)
	if roundSize < 1 {
		roundSize = 1
	}
	var merger *knnMerger
	var funnel obs.Funnel
	var totalAttempts, totalFailovers int
	// The whole plan re-runs when every skipped partition turns out
	// retired by a concurrent cutover — same staleness-vs-health
	// distinction as SearchTraced (see allSkippedRetired).
	for attempt := 0; ; attempt++ {
		report = &PartialReport{}
		// The view pins the global index for the whole query: bounds grown by
		// concurrent ingests (and the visible-count correction from acked
		// inserts and deletes) land in the next query's plan, not mid-plan.
		v := dd.boundsView()
		if v.visible <= 0 {
			return nil, report, nil
		}
		kq := k
		if kq > v.visible {
			kq = v.visible
		}
		// Visit order: ascending (global-index lower bound, partition id) —
		// the same bound TrajRelevant prunes with.
		planDone := tr.StartSpan("knn-plan", -1)
		type visit struct {
			pid int
			lb  float64
		}
		order := make([]visit, 0, len(v.bounds))
		for i, p := range v.bounds {
			// Retired partitions own nothing and may not even be loadable on
			// any worker; visiting one would burn a round (or fail the query)
			// for a guaranteed-empty contribution.
			if p.retired {
				continue
			}
			order = append(order, visit{pid: i, lb: core.PartitionLowerBound(c.m, q.Points, p.mbrF, p.mbrL)})
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].lb != order[b].lb {
				return order[a].lb < order[b].lb
			}
			return order[a].pid < order[b].pid
		})
		planDone(nil)

		merger = newKNNMerger(kq)
		funnel = obs.Funnel{Partitions: int64(len(dd.parts))}
		next := 0
		for next < len(order) {
			if err := ctx.Err(); err != nil {
				return nil, report, err
			}
			// Round-start τ: an upper bound on the final k-th distance (τ only
			// shrinks), so pruning against it inside the round stays sound
			// even as other partitions in the batch tighten it further.
			tau := merger.tau()
			batch := make([]visit, 0, roundSize)
			for next < len(order) && len(batch) < roundSize {
				// Termination bound: at lb == τ a partition may still improve
				// the result through an ID tie, so only a strictly greater
				// bound ends the search.
				if merger.full() && order[next].lb > tau {
					next = len(order)
					break
				}
				batch = append(batch, order[next])
				next++
			}
			if len(batch) == 0 {
				break
			}
			roundDone := tr.StartSpan("knn-round", -1)
			replies := make([]KNNReply, len(batch))
			skipped := make([]*SkippedPartition, len(batch))
			attempts := make([]int, len(batch))
			tried := make([]int, len(batch))
			var wg sync.WaitGroup
			for i, bv := range batch {
				wg.Add(1)
				go func(i, pid int) {
					defer wg.Done()
					pStart := time.Now()
					args := &KNNArgs{Dataset: name, Partition: pid, Query: q.Points, K: kq, Tau: tau}
					if tr != nil {
						args.TraceID, args.SpanID = tr.ID, obs.NewTraceID()
					}
					var lastErr error
					for _, w := range c.replicaOrder(dd, pid) {
						if err := ctx.Err(); err != nil {
							lastErr = err
							break
						}
						args.TimeoutMillis = remainingMillis(ctx)
						replies[i] = KNNReply{}
						tried[i]++
						n, err := c.clients[w].CallContextN(ctx, "Worker.KNN", args, &replies[i])
						attempts[i] += n
						if err != nil {
							lastErr = err
							if ctx.Err() != nil {
								break
							}
							if retryableError(err) {
								c.health.failure(w, false)
							} else {
								// Application errors are proof of life.
								c.health.success(w)
							}
							continue
						}
						c.health.success(w)
						// Same read-cost signal as threshold search: the kNN
						// rounds are partition probes too.
						dd.cost.Observe(pid, replies[i].Funnel.Verified, time.Since(pStart))
						if tr != nil {
							f := replies[i].Funnel
							tr.Add(obs.Span{Name: "partition-knn", Worker: c.addrs[w],
								Partition: pid, Attempts: attempts[i],
								Start: pStart.Sub(tr.Begin), Duration: time.Since(pStart),
								Remote: time.Duration(replies[i].ElapsedMicros) * time.Microsecond,
								Funnel: &f})
						}
						return
					}
					if lastErr == nil {
						lastErr = fmt.Errorf("dnet: no replicas for partition %s/%d", name, pid)
					}
					elapsed := time.Since(pStart)
					skipped[i] = &SkippedPartition{Dataset: name, Partition: pid, Err: lastErr.Error(),
						Attempts: attempts[i], Elapsed: elapsed, Class: obs.Classify(lastErr)}
					if tr != nil {
						tr.Add(obs.Span{Name: "partition-knn", Partition: pid,
							Attempts: attempts[i], Start: pStart.Sub(tr.Begin), Duration: elapsed,
							Err: lastErr.Error(), Class: obs.Classify(lastErr)})
					}
				}(i, bv.pid)
			}
			wg.Wait()
			if err := ctx.Err(); err != nil {
				roundDone(err)
				return nil, report, err
			}
			for i := range batch {
				c.met.recordRetries(attempts[i], tried[i])
				totalAttempts += attempts[i]
				if tried[i] > 1 {
					totalFailovers += tried[i] - 1
				}
				if skipped[i] != nil {
					report.Skipped = append(report.Skipped, *skipped[i])
					c.met.recordSkip(skipped[i].Class)
					continue
				}
				funnel.Relevant++
				funnel.Merge(replies[i].Funnel)
				for _, h := range replies[i].Hits {
					merger.offer(h)
				}
			}
			roundDone(nil)
		}
		if report.Partial() && attempt < cutoverReplans && c.allSkippedRetired(dd, report) {
			continue
		}
		break
	}
	out := merger.results()
	if timed {
		elapsed := time.Since(qStart)
		if qs != nil {
			qs.Funnel = funnel
			qs.Elapsed = elapsed
			qs.Attempts = totalAttempts
			qs.Failovers = totalFailovers
		}
		if c.met != nil {
			c.met.knns.Inc()
			c.met.knnLatency.Observe(elapsed.Microseconds())
			c.met.knnFunnel.Record(funnel)
		}
	}
	if report.Partial() && !c.cfg.AllowPartial {
		return nil, report, report.err(fmt.Sprintf("knn %q", name))
	}
	return out, report, nil
}
