package dnet

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/wal"
)

// durableWorker builds a worker persisting snapshots and WALs to dir and
// cold-starts it from whatever the directory holds.
func durableWorker(t *testing.T, dir string, mergeBytes, maxDelta int) (*Worker, *SnapshotLoadReport) {
	t.Helper()
	w := NewWorker()
	ss, err := snap.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := wal.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.SnapStore, w.WALStore = ss, ws
	w.MergeBytes, w.MaxDeltaBytes = mergeBytes, maxDelta
	rep, err := w.LoadSnapshots()
	if err != nil {
		t.Fatal(err)
	}
	return w, rep
}

// ingestCluster starts n durable workers (snapshot + WAL store each) and
// a coordinator. The returned slices stay live: a test that kills
// workers[i] can restart it with durableWorker over dirs[i] and
// Serve(addrs[i]), then store the replacement back into workers[i] so
// cleanup closes the right process.
func ingestCluster(t *testing.T, n int, cfg Config, mergeBytes, maxDelta int) ([]*Worker, []string, []string, *Coordinator) {
	t.Helper()
	workers := make([]*Worker, n)
	addrs := make([]string, n)
	dirs := make([]string, n)
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(t.TempDir(), "store")
		w, _ := durableWorker(t, dirs[i], mergeBytes, maxDelta)
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers[i], addrs[i] = w, addr
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return workers, addrs, dirs, c
}

// oracleDataset wraps the logical reference state (the mutations the
// cluster acked, applied to a plain map) as a dataset for the brute-force
// helpers.
func oracleDataset(oracle map[int]*traj.T) *traj.Dataset {
	d := &traj.Dataset{Name: "oracle"}
	for _, tr := range oracle {
		d.Trajs = append(d.Trajs, tr)
	}
	return d
}

// checkDifferential asserts the cluster answers threshold search and kNN
// exactly as brute force over the oracle does — the differential contract
// for a mutated dataset.
func checkDifferential(t *testing.T, c *Coordinator, name string, oracle map[int]*traj.T, qs []*traj.T, tau float64) {
	t.Helper()
	od := oracleDataset(oracle)
	m := measure.DTW{}
	for qi, q := range qs {
		hits, err := c.Search(name, q, tau)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		assertExactHits(t, hits, bruteSearch(od, q, tau))
		for _, k := range []int{1, 5, 17, len(od.Trajs) + 5} {
			want := bruteKNNHits(od, m, q, k)
			got, err := c.SearchKNN(name, q, k)
			if err != nil {
				t.Fatalf("knn query %d k=%d: %v", qi, k, err)
			}
			if !sameHits(got, want) {
				t.Fatalf("knn query %d k=%d: got %d hits, want %d — cluster disagrees with brute force over the mutated oracle",
					qi, k, len(got), len(want))
			}
		}
	}
}

// TestNetIngestDifferential streams inserts, upserts and deletes into a
// live replicated 3-worker cluster with a merge threshold small enough
// that bases are folded repeatedly mid-stream, and asserts after every
// phase that search, kNN and join all agree exactly with brute force over
// the logical oracle.
func TestNetIngestDifferential(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(260, 301))
	extra := gen.Generate(gen.BeijingLike(140, 302))
	workers, _, _, c := ingestCluster(t, 3, chaosConfig(), 1<<10, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	qs := gen.Queries(d, 4, 303)
	tau := 0.01

	// Phase 1: brand-new trajectories.
	for i := 0; i < 80; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("insert %d: %v", nt.ID, err)
		}
		oracle[nt.ID] = nt
	}
	checkDifferential(t, c, "trips", oracle, qs, tau)

	// Phase 2: upserts replace the geometry of dispatched members.
	for j := 0; j < 30; j++ {
		id := d.Trajs[j].ID
		nt := &traj.T{ID: id, Points: extra.Trajs[80+j].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("upsert %d: %v", id, err)
		}
		oracle[id] = nt
	}
	checkDifferential(t, c, "trips", oracle, qs, tau)

	// Phase 3: deletes of both dispatched and ingested members.
	for j := 30; j < 50; j++ {
		id := d.Trajs[j].ID
		ok, err := c.Delete("trips", id)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
		delete(oracle, id)
	}
	for i := 0; i < 20; i++ {
		id := 500000 + i
		ok, err := c.Delete("trips", id)
		if err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
		delete(oracle, id)
	}
	if ok, err := c.Delete("trips", 999999999); err != nil || ok {
		t.Fatalf("delete of unknown id: ok=%v err=%v, want false,nil", ok, err)
	}
	checkDifferential(t, c, "trips", oracle, qs, tau)

	// The join shuffle must fold the overlays too: join the mutated
	// dataset against a freshly dispatched static one.
	probes := &traj.Dataset{Name: "probes"}
	for i, tr := range extra.Trajs[110:140] {
		probes.Trajs = append(probes.Trajs, &traj.T{ID: 600000 + i, Points: tr.Points})
	}
	if err := c.Dispatch("probes", probes); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Join("trips", "probes", tau)
	if err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	want := map[[2]int]bool{}
	for _, x := range oracle {
		for _, y := range probes.Trajs {
			if m.Distance(x.Points, y.Points) <= tau {
				want[[2]int{x.ID, y.ID}] = true
			}
		}
	}
	got := map[[2]int]bool{}
	for _, p := range pairs {
		key := [2]int{p.TID, p.QID}
		if got[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		got[key] = true
	}
	if len(got) != len(want) {
		t.Fatalf("join: got %d pairs, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("join: missing pair %v", k)
		}
	}

	// The 1 KiB merge threshold must have forced base folds mid-stream,
	// or this test never exercised merge + seal + truncate at all.
	var merges int64
	for _, w := range workers {
		merges += w.merges.Load()
	}
	if merges == 0 {
		t.Fatal("no worker merged its overlay; MergeBytes threshold never fired")
	}
}

// TestChaosIngestKillRestartNoAckedLoss is the crash contract: kill a
// worker mid-stream, cold-restart it from its snapshots and WALs, and
// every acked write must be visible — unacked in-flight writes may or may
// not have landed on the surviving replica, but retrying them converges
// the cluster back to exact differential equality.
func TestChaosIngestKillRestartNoAckedLoss(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(200, 311))
	extra := gen.Generate(gen.BeijingLike(120, 312))
	// Huge merge threshold: every mutation stays in the WAL, so the
	// restart exercises replay rather than snapshot reload.
	workers, addrs, dirs, c := ingestCluster(t, 3, chaosConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}

	// Healthy phase: inserts, upserts and deletes, all of which must ack.
	for i := 0; i < 30; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("healthy insert %d: %v", nt.ID, err)
		}
		oracle[nt.ID] = nt
	}
	for j := 0; j < 10; j++ {
		id := d.Trajs[j].ID
		nt := &traj.T{ID: id, Points: extra.Trajs[30+j].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("healthy upsert %d: %v", id, err)
		}
		oracle[id] = nt
	}
	for j := 10; j < 20; j++ {
		id := d.Trajs[j].ID
		if ok, err := c.Delete("trips", id); err != nil || !ok {
			t.Fatalf("healthy delete %d: ok=%v err=%v", id, ok, err)
		}
		delete(oracle, id)
	}

	// Kill worker 1 and keep streaming new ids. A write routed to a
	// partition it owns is refused (replication to every replica is the
	// ack precondition; there is no write failover) — those ids are in
	// limbo: possibly applied on the surviving replica, never required.
	workers[1].Close()
	limbo := map[int]bool{}
	acked := 0
	for i := 30; i < 80; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			limbo[nt.ID] = true
			continue
		}
		oracle[nt.ID] = nt
		acked++
	}
	if len(limbo) == 0 {
		t.Fatal("no ingest failed with a replica down — the kill did not bite")
	}
	if acked == 0 {
		t.Fatal("every ingest failed; partitions not owned by worker 1 should keep acking")
	}

	// Cold restart from the same directories at the same address.
	w1, rep := durableWorker(t, dirs[1], 1<<30, 0)
	if _, err := w1.Serve(addrs[1]); err != nil {
		t.Fatal(err)
	}
	workers[1] = w1
	if len(rep.Skipped) != 0 {
		t.Fatalf("restart skipped state: %+v", rep.Skipped)
	}
	replayed := 0
	for _, l := range rep.Loaded {
		replayed += l.WALRecords
	}
	if replayed == 0 {
		t.Fatal("restart replayed no WAL records; the healthy-phase mutations must be in worker 1's logs")
	}

	// Zero acked-but-lost: whichever replica answers, every acked write is
	// present; anything extra must be a known in-flight (unacked) write.
	qs := gen.Queries(d, 6, 313)
	tau := 0.01
	od := oracleDataset(oracle)
	for qi, q := range qs {
		hits, err := c.Search("trips", q, tau)
		if err != nil {
			t.Fatalf("query %d after restart: %v", qi, err)
		}
		want := bruteSearch(od, q, tau)
		got := map[int]bool{}
		for _, h := range hits {
			got[h.ID] = true
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("query %d: acked write %d lost after crash + replay", qi, id)
			}
		}
		for id := range got {
			if !want[id] && !limbo[id] {
				t.Fatalf("query %d: hit %d is neither acked state nor an in-flight unacked write", qi, id)
			}
		}
	}

	// Retrying the unacked writes (fresh sequence numbers, idempotent
	// upserts) converges both replicas back to one state.
	for id := range limbo {
		nt := &traj.T{ID: id, Points: extra.Trajs[id-500000].Points}
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			if err = c.Ingest("trips", nt); err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("retrying unacked ingest %d: %v", id, err)
		}
		oracle[id] = nt
	}
	checkDifferential(t, c, "trips", oracle, qs, tau)
}

// visibleState folds a worker's partitions the way queries do (base minus
// tombstones, plus delta) into one id → trajectory map.
func visibleState(w *Worker) map[int]*traj.T {
	out := map[int]*traj.T{}
	w.mu.RLock()
	parts := make([]*workerPartition, 0, len(w.parts))
	for _, p := range w.parts {
		parts = append(parts, p)
	}
	w.mu.RUnlock()
	for _, p := range parts {
		pv := p.view()
		for _, tr := range pv.trajs {
			if !pv.tomb[tr.ID] {
				out[tr.ID] = tr
			}
		}
		for _, tr := range pv.delta {
			out[tr.ID] = tr
		}
	}
	return out
}

// TestIngestWALTornTailTruncated crashes "mid-append" by hand: garbage
// bytes after the last fsync'd record must be cut off on the next open,
// reported as truncated, and every acked record must replay.
func TestIngestWALTornTailTruncated(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(80, 321))
	extra := gen.Generate(gen.BeijingLike(40, 322))
	workers, _, dirs, c := ingestCluster(t, 1, testConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	for i := 0; i < 40; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("insert %d: %v", nt.ID, err)
		}
		oracle[nt.ID] = nt
	}
	workers[0].Close()

	// Tear the tail of the fattest log: garbage that can never checksum
	// as a complete record.
	logs, err := filepath.Glob(filepath.Join(dirs[0], "*.wal"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no wal files in %s (err=%v)", dirs[0], err)
	}
	victim, victimSize := "", int64(-1)
	for _, path := range logs {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > victimSize {
			victim, victimSize = path, fi.Size()
		}
	}
	garbage := make([]byte, 23)
	for i := range garbage {
		garbage[i] = 0xEE
	}
	f, err := os.OpenFile(victim, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, rep := durableWorker(t, dirs[0], 1<<30, 0)
	t.Cleanup(func() { w.Close() })
	if len(rep.Skipped) != 0 {
		t.Fatalf("torn tail must truncate, not skip: %+v", rep.Skipped)
	}
	var truncated int64
	replayed := 0
	for _, l := range rep.Loaded {
		truncated += l.WALTruncatedBytes
		replayed += l.WALRecords
	}
	if truncated != int64(len(garbage)) {
		t.Fatalf("truncated %d bytes, want the %d garbage bytes", truncated, len(garbage))
	}
	if replayed != 40 {
		t.Fatalf("replayed %d records, want all 40 acked inserts", replayed)
	}
	visible := visibleState(w)
	if len(visible) != len(oracle) {
		t.Fatalf("restart sees %d trajectories, oracle has %d", len(visible), len(oracle))
	}
	for id, tr := range oracle {
		got := visible[id]
		if got == nil {
			t.Fatalf("acked trajectory %d missing after torn-tail replay", id)
		}
		if len(got.Points) != len(tr.Points) {
			t.Fatalf("trajectory %d: %d points, want %d", id, len(got.Points), len(tr.Points))
		}
		for i := range tr.Points {
			if got.Points[i] != tr.Points[i] {
				t.Fatalf("trajectory %d: point %d differs after replay", id, i)
			}
		}
	}
}

// TestIngestWALCorruptHeaderDiscarded: external damage to a log's header
// (not crash semantics — the magic never tears) is classified "corrupt",
// the log is discarded and re-created, and the partition still serves its
// sealed snapshot.
func TestIngestWALCorruptHeaderDiscarded(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(60, 331))
	extra := gen.Generate(gen.BeijingLike(20, 332))
	workers, _, dirs, c := ingestCluster(t, 1, testConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("insert %d: %v", nt.ID, err)
		}
	}
	workers[0].Close()

	logs, err := filepath.Glob(filepath.Join(dirs[0], "*.wal"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("no wal files in %s (err=%v)", dirs[0], err)
	}
	f, err := os.OpenFile(logs[0], os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XXXXXXXX"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, rep := durableWorker(t, dirs[0], 1<<30, 0)
	t.Cleanup(func() { w.Close() })
	found := false
	for _, s := range rep.Skipped {
		if s.Path == logs[0] && s.Class == "corrupt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt WAL header not classified: %+v", rep.Skipped)
	}
	// The base snapshot is intact: every partition still loads.
	ds, pid, ok := wal.ParseFilename(filepath.Base(logs[0]))
	if !ok {
		t.Fatalf("unparseable wal filename %s", logs[0])
	}
	loaded := false
	for _, l := range rep.Loaded {
		if l.Dataset == ds && l.Partition == pid {
			loaded = true
			if l.WALRecords != 0 {
				t.Fatalf("partition %s/%d replayed %d records from a corrupt log", ds, pid, l.WALRecords)
			}
		}
	}
	if !loaded {
		t.Fatalf("partition %s/%d did not load from its snapshot", ds, pid)
	}
	// The discarded log was replaced by a fresh one (header only).
	fi, err := os.Stat(logs[0])
	if err != nil {
		t.Fatalf("corrupt log was not re-created: %v", err)
	}
	if fi.Size() >= 100 {
		t.Fatalf("re-created log still holds %d bytes", fi.Size())
	}
}

// TestIngestBackpressure drives a partition's delta past MaxDeltaBytes:
// the coordinator must surface ErrOverloaded (never silently drop), the
// refusal must kick a merge that drains the buffer, and retrying until
// acked must end in exact differential equality.
func TestIngestBackpressure(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(60, 341))
	extra := gen.Generate(gen.BeijingLike(80, 342))
	// Backpressure bound ~2 trajectories; merges fire only via the
	// rejection kick (the merge threshold is unreachable).
	workers, _, _, c := ingestCluster(t, 1, testConfig(), 1<<30, 700)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	oracle := map[int]*traj.T{}
	for _, tr := range d.Trajs {
		oracle[tr.ID] = tr
	}
	rejected := 0
	for i := 0; i < 80; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		err := c.Ingest("trips", nt)
		for attempt := 0; err != nil && attempt < 400; attempt++ {
			if !errors.Is(err, ErrOverloaded) {
				t.Fatalf("insert %d: %v, want ErrOverloaded", nt.ID, err)
			}
			rejected++
			time.Sleep(5 * time.Millisecond)
			err = c.Ingest("trips", nt)
		}
		if err != nil {
			t.Fatalf("insert %d never drained: %v", nt.ID, err)
		}
		oracle[nt.ID] = nt
	}
	if rejected == 0 {
		t.Fatal("no ingest was refused; the backpressure bound never engaged")
	}
	if got := workers[0].ingestRejected.Load(); got == 0 {
		t.Fatal("worker counted no rejections")
	}
	if got := workers[0].merges.Load(); got == 0 {
		t.Fatal("rejections kicked no merges; the buffer could never drain")
	}
	checkDifferential(t, c, "trips", oracle, gen.Queries(d, 4, 343), 0.01)
}

// TestUnloadRemovesWAL: rolling back a partition must delete its log too,
// or a later re-dispatch would replay mutations onto a base from a
// different epoch.
func TestUnloadRemovesWAL(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(60, 351))
	workers, _, _, c := ingestCluster(t, 1, testConfig(), 0, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	nt := &traj.T{ID: 500000, Points: d.Trajs[0].Points}
	if err := c.Ingest("trips", nt); err != nil {
		t.Fatal(err)
	}
	dd, err := c.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	dd.mu.Lock()
	pid := dd.loc[nt.ID]
	dd.mu.Unlock()
	wpath := workers[0].WALStore.Path("trips", pid)
	if _, err := os.Stat(wpath); err != nil {
		t.Fatalf("wal file missing before unload: %v", err)
	}
	spath := workers[0].SnapStore.Path("trips", pid)
	if _, err := os.Stat(spath); err != nil {
		t.Fatalf("snapshot missing before unload: %v", err)
	}
	s := &workerService{w: workers[0]}
	var reply UnloadReply
	if err := s.Unload(&UnloadArgs{Dataset: "trips", Partition: pid}, &reply); err != nil {
		t.Fatal(err)
	}
	if !reply.Unloaded {
		t.Fatal("partition was not held")
	}
	if _, err := os.Stat(wpath); !os.IsNotExist(err) {
		t.Fatalf("wal file survives unload: stat err = %v", err)
	}
	if _, err := os.Stat(spath); !os.IsNotExist(err) {
		t.Fatalf("snapshot survives unload: stat err = %v", err)
	}
}

// TestIngestSeqSurvivesCoordinatorRestart: a new coordinator over live
// workers must seed its sequence numbers above every applied one — a
// coordinator starting at zero would have its first mutations silently
// swallowed by the workers' dedupe floor.
func TestIngestSeqSurvivesCoordinatorRestart(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(120, 361))
	extra := gen.Generate(gen.BeijingLike(30, 362))
	cfg := chaosConfig()
	workers, addrs, _, c := ingestCluster(t, 3, cfg, 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		nt := &traj.T{ID: 500000 + i, Points: extra.Trajs[i].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("insert %d: %v", nt.ID, err)
		}
	}
	seqs := func() map[partKey]uint64 {
		out := map[partKey]uint64{}
		for _, w := range workers {
			w.mu.RLock()
			for k, p := range w.parts {
				if _, _, _, ls := p.identity(); ls > out[k] {
					out[k] = ls
				}
			}
			w.mu.RUnlock()
		}
		return out
	}
	before := seqs()
	var hot partKey
	for k, s := range before {
		if s > before[hot] {
			hot = k
		}
	}
	if before[hot] == 0 {
		t.Fatal("no sequence numbers assigned before the restart")
	}

	c.Close()
	c2, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c2.Close() })
	rep, err := c2.DispatchStats("trips", d)
	if err != nil {
		t.Fatal(err)
	}
	// No merges ran, so the workers' base fingerprints still match the
	// dispatch payloads: the re-dispatch must reuse every replica in
	// place, preserving the overlays and their sequence floors.
	if rep.Reused != rep.Partitions*cfg.Replicas {
		t.Fatalf("re-dispatch did not reuse held partitions: %+v", rep)
	}

	// Upsert a member of the hottest partition (highest applied seq):
	// with correct seeding it applies; with a zero-seeded coordinator it
	// would be deduped as a stale retransmission.
	dd2, err := c2.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	dd2.mu.Lock()
	victim := -1
	for id, pid := range dd2.loc {
		if pid == hot.id {
			victim = id
			break
		}
	}
	dd2.mu.Unlock()
	if victim < 0 {
		t.Fatalf("no dispatched id located in partition %d", hot.id)
	}
	up := &traj.T{ID: victim, Points: extra.Trajs[20].Points}
	if err := c2.Ingest("trips", up); err != nil {
		t.Fatal(err)
	}
	after := seqs()
	if after[hot] <= before[hot] {
		t.Fatalf("partition %v seq stuck at %d: the new coordinator reused burned sequence numbers and the upsert was deduped",
			hot, after[hot])
	}
}

// TestNetIngestConcurrentWritersSamePartition: concurrent writers aimed
// at one partition must never have an acked write swallowed. The
// coordinator reserves sequence numbers under one lock but fans the RPCs
// out afterwards; without per-partition serialization two writes can
// arrive at a worker inverted, and the worker's monotone dedupe floor
// then drops the lower-seq record while the coordinator acks it. Every
// writer clones the same dispatched geometry (fresh ids) so routing lands
// all writes in one partition, maximizing contention.
func TestNetIngestConcurrentWritersSamePartition(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(80, 371))
	workers, _, _, c := ingestCluster(t, 1, testConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	base := d.Trajs[0].Points
	const nWriters, perWriter = 8, 40
	var wg sync.WaitGroup
	errs := make([]error, nWriters)
	for g := 0; g < nWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				nt := &traj.T{ID: 700000 + g*perWriter + i, Points: base}
				if err := c.Ingest("trips", nt); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", g, err)
		}
	}
	// testConfig injects no failures, so nothing is ever retransmitted:
	// any dedupe here means a first-delivery record arrived below the
	// floor, i.e. out of order.
	if n := workers[0].ingestDeduped.Load(); n != 0 {
		t.Fatalf("%d fresh writes deduped: per-partition write order was not preserved", n)
	}
	visible := visibleState(workers[0])
	lost := 0
	for id := 700000; id < 700000+nWriters*perWriter; id++ {
		if visible[id] == nil {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked inserts not visible", lost, nWriters*perWriter)
	}
}

// TestUnloadDuringMergeRemovesDurablePair: Unload racing an in-flight
// background merge must still leave the disk clean. A merge that loses
// the race could reseal the snapshot and recreate the WAL after Unload's
// removals, resurrecting state the coordinator already rolled back.
func TestUnloadDuringMergeRemovesDurablePair(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(60, 381))
	workers, _, _, c := ingestCluster(t, 1, testConfig(), 1<<30, 0)
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	w := workers[0]
	s := &workerService{w: w}
	dd, err := c.dataset("trips")
	if err != nil {
		t.Fatal(err)
	}
	// Give every partition a delta so each merge has real work, then race
	// a direct merge against Unload, one partition per round.
	dd.mu.Lock()
	byPid := map[int]int{}
	for id, pid := range dd.loc {
		byPid[pid] = id
	}
	dd.mu.Unlock()
	for pid, id := range byPid {
		nt := &traj.T{ID: id, Points: d.Trajs[0].Points}
		if err := c.Ingest("trips", nt); err != nil {
			t.Fatalf("upsert into partition %d: %v", pid, err)
		}
		w.mu.RLock()
		p := w.parts[partKey{"trips", pid}]
		w.mu.RUnlock()
		var mg sync.WaitGroup
		mg.Add(1)
		go func() {
			defer mg.Done()
			w.mergePartition("trips", pid, p)
		}()
		var reply UnloadReply
		if err := s.Unload(&UnloadArgs{Dataset: "trips", Partition: pid}, &reply); err != nil {
			t.Fatalf("unload %d: %v", pid, err)
		}
		if !reply.Unloaded {
			t.Fatalf("partition %d was not held", pid)
		}
		mg.Wait()
		if _, err := os.Stat(w.SnapStore.Path("trips", pid)); !os.IsNotExist(err) {
			t.Fatalf("partition %d: snapshot resurrected after unload: stat err = %v", pid, err)
		}
		if _, err := os.Stat(w.WALStore.Path("trips", pid)); !os.IsNotExist(err) {
			t.Fatalf("partition %d: wal resurrected after unload: stat err = %v", pid, err)
		}
	}
}
