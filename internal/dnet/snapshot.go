package dnet

import (
	"fmt"
	"os"
	"sort"

	"dita/internal/core"
	"dita/internal/measure"
	"dita/internal/snap"
)

// loadBuildOptions maps a load request's index configuration to the
// snapshot build options — the content identity both sides fingerprint.
func loadBuildOptions(args *LoadArgs) snap.BuildOptions {
	return snap.BuildOptions{
		Measure:  args.Measure.Name,
		Eps:      args.Measure.Eps,
		Delta:    args.Measure.Delta,
		K:        args.K,
		NLAlign:  args.NLAlign,
		NLPivot:  args.NLPivot,
		MinNode:  args.MinNode,
		Strategy: args.Strategy,
		CellD:    args.CellD,
	}
}

// partitionFromSnapshot rebuilds the in-memory partition state from a
// verified snapshot: measure by name, verification metadata recomputed
// (it is derived state, deliberately not serialized).
func partitionFromSnapshot(s *snap.Snapshot) (*workerPartition, error) {
	m, err := measure.ByName(s.Opts.Measure, s.Opts.Eps, s.Opts.Delta)
	if err != nil {
		return nil, err
	}
	p := &workerPartition{
		trajs:       s.Trajs,
		index:       s.Index,
		m:           m,
		cellD:       s.Opts.CellD,
		opts:        s.Opts,
		fingerprint: s.Fingerprint,
	}
	p.meta = make([]core.VerifyMeta, len(s.Trajs))
	for i, t := range s.Trajs {
		p.meta[i] = core.NewVerifyMeta(t, s.Opts.CellD)
	}
	return p, nil
}

// snapshotOf wraps a held partition as a snapshot for Save or Export.
func snapshotOf(dataset string, pid int, p *workerPartition) *snap.Snapshot {
	return &snap.Snapshot{
		Dataset:   dataset,
		Partition: pid,
		Opts:      p.opts,
		Trajs:     p.trajs,
		Index:     p.index,
	}
}

// persistPartition saves the partition to the snapshot store, if one is
// configured. Persistence failure degrades: the partition still serves
// from memory, the write is counted, and the reply advertises
// Snapshotted=false so the coordinator keeps other durability.
func (w *Worker) persistPartition(dataset string, pid int, p *workerPartition) {
	if w.SnapStore == nil {
		return
	}
	size, err := w.SnapStore.Save(snapshotOf(dataset, pid, p))
	if err != nil {
		w.snapWriteErr.Add(1)
		return
	}
	w.snapWriteOK.Add(1)
	p.snapped = true
	p.snapBytes = size
}

func (w *Worker) installPartition(dataset string, pid int, p *workerPartition) {
	w.mu.Lock()
	w.parts[partKey{dataset, pid}] = p
	w.mu.Unlock()
}

// SnapshotLoaded describes one partition restored during cold start.
type SnapshotLoaded struct {
	Dataset     string
	Partition   int
	Trajs       int
	Bytes       int64
	Fingerprint uint64
}

// SnapshotSkipped describes one snapshot file the cold start refused,
// with its error class ("corrupt", "version", "io", "config") — the
// classified skip report the operator sees at startup.
type SnapshotSkipped struct {
	Path  string
	Class string
	Err   string
}

// SnapshotLoadReport summarizes a cold start from the snapshot directory.
type SnapshotLoadReport struct {
	Loaded  []SnapshotLoaded
	Skipped []SnapshotSkipped
}

// LoadSnapshots cold-starts the worker from its snapshot directory: every
// file is fully verified and installed; anything torn, bit-rotted,
// version-mismatched, or unreadable is skipped with a classified report
// entry — never a crash — and the coordinator re-ships those partitions
// on its next dispatch or heal. Call before Serve (it does not lock out
// RPCs during the scan).
func (w *Worker) LoadSnapshots() (*SnapshotLoadReport, error) {
	rep := &SnapshotLoadReport{}
	if w.SnapStore == nil {
		return rep, nil
	}
	entries, err := w.SnapStore.Scan()
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		s, err := snap.LoadFile(e.Path)
		if err != nil {
			class := snap.Classify(err)
			if class == "io" {
				w.snapLoadErr.Add(1)
			} else {
				w.snapLoadCorrupt.Add(1)
			}
			rep.Skipped = append(rep.Skipped, SnapshotSkipped{Path: e.Path, Class: class, Err: err.Error()})
			continue
		}
		p, err := partitionFromSnapshot(s)
		if err != nil {
			// The image verified but this build can't serve it (e.g. a
			// measure name this binary doesn't know).
			w.snapLoadErr.Add(1)
			rep.Skipped = append(rep.Skipped, SnapshotSkipped{Path: e.Path, Class: "config", Err: err.Error()})
			continue
		}
		p.snapped = true
		if fi, err := os.Stat(e.Path); err == nil {
			p.snapBytes = fi.Size()
		}
		w.installPartition(s.Dataset, s.Partition, p)
		w.snapLoadOK.Add(1)
		rep.Loaded = append(rep.Loaded, SnapshotLoaded{
			Dataset:     s.Dataset,
			Partition:   s.Partition,
			Trajs:       len(s.Trajs),
			Bytes:       p.snapBytes,
			Fingerprint: s.Fingerprint,
		})
	}
	return rep, nil
}

// Inventory implements the held-partition listing the coordinator uses to
// skip re-shipping content a worker already holds (cold-started from
// snapshots or surviving from an earlier dispatch).
func (s *workerService) Inventory(args *InventoryArgs, reply *InventoryReply) error {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	s.w.mu.RLock()
	for k, p := range s.w.parts {
		reply.Parts = append(reply.Parts, InventoryPart{
			Dataset: k.dataset, Partition: k.id,
			Fingerprint: p.fingerprint, Snapshotted: p.snapped,
		})
	}
	s.w.mu.RUnlock()
	sort.Slice(reply.Parts, func(a, b int) bool {
		if reply.Parts[a].Dataset != reply.Parts[b].Dataset {
			return reply.Parts[a].Dataset < reply.Parts[b].Dataset
		}
		return reply.Parts[a].Partition < reply.Parts[b].Partition
	})
	return nil
}

// Export implements the healing transfer source: the sealed snapshot
// image of one held partition, encoded from live memory (so it works even
// on workers running without a snapshot directory).
func (s *workerService) Export(args *ExportArgs, reply *ExportReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("export", &err)
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	reply.Data = snap.Encode(snapshotOf(args.Dataset, args.Partition, p))
	return nil
}

// Replicate implements snapshot-based healing: fetch the partition's
// image from a peer, verify it end to end (snap.Decode catches wire
// corruption exactly like disk corruption), install, and persist. A
// transport-level failure reaching the peer is reported with the
// peer-unreachable prefix so the coordinator can distinguish "source is
// down" from "this worker failed".
func (s *workerService) Replicate(args *ReplicateArgs, reply *ReplicateReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("replicate", &err)

	// Already holding the content? Nothing to transfer.
	s.w.mu.RLock()
	held, ok := s.w.parts[partKey{args.Dataset, args.Partition}]
	s.w.mu.RUnlock()
	if ok && args.Fingerprint != 0 && held.fingerprint == args.Fingerprint {
		reply.Trajs = len(held.trajs)
		reply.IndexBytes = held.index.SizeBytes()
		reply.Snapshotted = held.snapped
		return nil
	}

	mc := newManagedClient(args.SrcAddr, shipRetry)
	defer mc.Close()
	var ex ExportReply
	if err := mc.Call("Worker.Export", &ExportArgs{Dataset: args.Dataset, Partition: args.Partition}, &ex); err != nil {
		if retryableError(err) {
			return fmt.Errorf("%s%s: %v", peerUnreachablePrefix, args.SrcAddr, err)
		}
		return err
	}
	sn, err := snap.Decode(ex.Data)
	if err != nil {
		return fmt.Errorf("dnet: replicate %s/%d from %s: %w", args.Dataset, args.Partition, args.SrcAddr, err)
	}
	if sn.Dataset != args.Dataset || sn.Partition != args.Partition {
		return fmt.Errorf("dnet: replicate: peer sent %s/%d, want %s/%d",
			sn.Dataset, sn.Partition, args.Dataset, args.Partition)
	}
	if args.Fingerprint != 0 && sn.Fingerprint != args.Fingerprint {
		return fmt.Errorf("dnet: replicate %s/%d: content fingerprint %016x, want %016x",
			args.Dataset, args.Partition, sn.Fingerprint, args.Fingerprint)
	}
	p, err := partitionFromSnapshot(sn)
	if err != nil {
		return fmt.Errorf("dnet: replicate %s/%d: %w", args.Dataset, args.Partition, err)
	}
	s.w.persistPartition(args.Dataset, args.Partition, p)
	s.w.installPartition(args.Dataset, args.Partition, p)
	s.w.bytesIn.Add(int64(len(ex.Data)))
	reply.Trajs = len(p.trajs)
	reply.IndexBytes = p.index.SizeBytes()
	reply.Snapshotted = p.snapped
	return nil
}
