package dnet

import (
	"fmt"
	"os"
	"sort"
	"time"

	"dita/internal/core"
	"dita/internal/measure"
	"dita/internal/pivot"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/trie"
	"dita/internal/wal"
)

// loadBuildOptions maps a load request's index configuration to the
// snapshot build options — the content identity both sides fingerprint.
func loadBuildOptions(args *LoadArgs) snap.BuildOptions {
	return snap.BuildOptions{
		Measure:  args.Measure.Name,
		Eps:      args.Measure.Eps,
		Delta:    args.Measure.Delta,
		K:        args.K,
		NLAlign:  args.NLAlign,
		NLPivot:  args.NLPivot,
		MinNode:  args.MinNode,
		Strategy: args.Strategy,
		CellD:    args.CellD,
	}
}

// partitionFromSnapshot rebuilds the in-memory partition state from a
// verified snapshot: measure by name, verification metadata recomputed
// (it is derived state, deliberately not serialized).
func partitionFromSnapshot(s *snap.Snapshot) (*workerPartition, error) {
	m, err := measure.ByName(s.Opts.Measure, s.Opts.Eps, s.Opts.Delta)
	if err != nil {
		return nil, err
	}
	p := &workerPartition{
		trajs:       s.Trajs,
		index:       s.Index,
		m:           m,
		cellD:       s.Opts.CellD,
		opts:        s.Opts,
		fingerprint: s.Fingerprint,
	}
	p.meta = make([]core.VerifyMeta, len(s.Trajs))
	for i, t := range s.Trajs {
		p.meta[i] = core.NewVerifyMeta(t, s.Opts.CellD)
	}
	// The image's watermark is the ingest floor: every logged record at or
	// below it is already folded into Trajs.
	p.watermark, p.lastSeq = s.Watermark, s.Watermark
	return p, nil
}

// snapshotOf wraps a held partition as a snapshot for Save. Callers own
// the partition exclusively (it is not yet installed) — published
// partitions are sealed by mergePartition, which captures its own
// consistent image under the overlay lock.
func snapshotOf(dataset string, pid int, p *workerPartition) *snap.Snapshot {
	return &snap.Snapshot{
		Dataset:   dataset,
		Partition: pid,
		Opts:      p.opts,
		Trajs:     p.trajs,
		Index:     p.index,
		Watermark: p.watermark,
	}
}

// persistPartition saves the partition to the snapshot store, if one is
// configured. Persistence failure degrades: the partition still serves
// from memory, the write is counted, and the reply advertises
// Snapshotted=false so the coordinator keeps other durability.
func (w *Worker) persistPartition(dataset string, pid int, p *workerPartition) {
	if w.SnapStore == nil {
		return
	}
	size, err := w.SnapStore.Save(snapshotOf(dataset, pid, p))
	if err != nil {
		w.snapWriteErr.Add(1)
		return
	}
	w.snapWriteOK.Add(1)
	p.snapped = true
	p.snapBytes = size
}

func (w *Worker) installPartition(dataset string, pid int, p *workerPartition) {
	w.mu.Lock()
	w.parts[partKey{dataset, pid}] = p
	w.mu.Unlock()
}

// SnapshotLoaded describes one partition restored during cold start.
type SnapshotLoaded struct {
	Dataset     string
	Partition   int
	Trajs       int
	Bytes       int64
	Fingerprint uint64
	// WALRecords is how many logged mutations past the snapshot's
	// watermark were replayed onto it; WALTruncatedBytes is the torn tail
	// (a crashed append) the WAL open cut off. Both zero when the worker
	// runs without a WAL store.
	WALRecords        int
	WALTruncatedBytes int64
}

// SnapshotSkipped describes one snapshot file the cold start refused,
// with its error class ("corrupt", "version", "io", "config", "orphan")
// — the classified skip report the operator sees at startup. "orphan"
// names a WAL whose base snapshot is gone: its deltas are unreplayable,
// so the file is reported and deleted rather than silently discarded.
type SnapshotSkipped struct {
	Path  string
	Class string
	Err   string
}

// SnapshotLoadReport summarizes a cold start from the snapshot directory.
type SnapshotLoadReport struct {
	Loaded  []SnapshotLoaded
	Skipped []SnapshotSkipped
}

// LoadSnapshots cold-starts the worker from its snapshot directory: every
// file is fully verified and installed; anything torn, bit-rotted,
// version-mismatched, or unreadable is skipped with a classified report
// entry — never a crash — and the coordinator re-ships those partitions
// on its next dispatch or heal. Call before Serve (it does not lock out
// RPCs during the scan).
func (w *Worker) LoadSnapshots() (*SnapshotLoadReport, error) {
	rep := &SnapshotLoadReport{}
	if w.SnapStore == nil {
		// No snapshots means no WAL can be replayed either: every log in
		// the WAL store extends a base this worker no longer has.
		w.sweepOrphanWALs(rep)
		return rep, nil
	}
	entries, err := w.SnapStore.Scan()
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		s, err := snap.LoadFile(e.Path)
		if err != nil {
			class := snap.Classify(err)
			if class == "io" {
				w.snapLoadErr.Add(1)
			} else {
				w.snapLoadCorrupt.Add(1)
			}
			rep.Skipped = append(rep.Skipped, SnapshotSkipped{Path: e.Path, Class: class, Err: err.Error()})
			continue
		}
		p, err := partitionFromSnapshot(s)
		if err != nil {
			// The image verified but this build can't serve it (e.g. a
			// measure name this binary doesn't know).
			w.snapLoadErr.Add(1)
			rep.Skipped = append(rep.Skipped, SnapshotSkipped{Path: e.Path, Class: "config", Err: err.Error()})
			continue
		}
		p.snapped = true
		if fi, err := os.Stat(e.Path); err == nil {
			p.snapBytes = fi.Size()
		}
		loaded := SnapshotLoaded{
			Dataset:     s.Dataset,
			Partition:   s.Partition,
			Trajs:       len(s.Trajs),
			Bytes:       p.snapBytes,
			Fingerprint: s.Fingerprint,
		}
		w.replayWAL(p, &loaded, rep)
		w.installPartition(s.Dataset, s.Partition, p)
		w.snapLoadOK.Add(1)
		rep.Loaded = append(rep.Loaded, loaded)
	}
	w.sweepOrphanWALs(rep)
	return rep, nil
}

// replayWAL opens the partition's write-ahead log, replays the suffix
// past the snapshot's watermark onto the restored partition, and leaves
// the log open for the partition's future appends. The open itself
// truncates any torn tail from a crashed append — expected, counted,
// never an error. A mangled header leaves no trustworthy suffix: the
// file is discarded (classified in the skip report) and a fresh log
// opened; mutations it held past the watermark are restored from
// replica peers, not this disk. Runs before the partition is installed,
// so no lock is needed.
func (w *Worker) replayWAL(p *workerPartition, loaded *SnapshotLoaded, rep *SnapshotLoadReport) {
	if w.WALStore == nil {
		return
	}
	ds, pid := loaded.Dataset, loaded.Partition
	start := time.Now()
	l, wrep, err := w.WALStore.Open(ds, pid)
	if err != nil {
		rep.Skipped = append(rep.Skipped, SnapshotSkipped{
			Path: w.WALStore.Path(ds, pid), Class: wal.Classify(err), Err: err.Error(),
		})
		w.WALStore.Remove(ds, pid)
		if l2, _, err2 := w.WALStore.Open(ds, pid); err2 == nil {
			p.wlog = l2
		}
		return
	}
	p.wlog = l
	for _, r := range wrep.Records {
		if r.Seq <= p.watermark {
			// Already folded into the snapshot (a crash between seal and
			// truncate leaves the full log behind — replay just skips the
			// covered prefix).
			continue
		}
		p.applyLocked(WireRecord{Seq: r.Seq, Op: r.Op, ID: r.ID, Points: r.Points})
		if r.Seq > p.lastSeq {
			p.lastSeq = r.Seq
		}
		loaded.WALRecords++
	}
	loaded.WALTruncatedBytes = wrep.TruncatedBytes
	w.walReplayed.Add(int64(loaded.WALRecords))
	w.walTruncated.Add(wrep.TruncatedBytes)
	w.walReplayUS.Add(time.Since(start).Microseconds())
}

// sweepOrphanWALs deletes log files with no matching held partition: a
// WAL without its base snapshot cannot be replayed (the deltas extend a
// base that no longer exists), and keeping it would poison whatever
// lands at that (dataset, partition) next. The coordinator re-ships or
// re-replicates those partitions from its other copies. Each orphan is
// counted (snap_wal_orphaned_total) and lands in the cold-start report
// as a classified "orphan" skip — durably logged mutations are being
// dropped, and an operator staring at a post-crash recovery needs that
// fact in front of them, not silently swept away.
func (w *Worker) sweepOrphanWALs(rep *SnapshotLoadReport) {
	if w.WALStore == nil {
		return
	}
	entries, err := w.WALStore.Scan()
	if err != nil {
		return
	}
	for _, e := range entries {
		w.mu.RLock()
		_, held := w.parts[partKey{e.Dataset, e.Partition}]
		w.mu.RUnlock()
		if !held {
			w.walOrphaned.Add(1)
			if rep != nil {
				rep.Skipped = append(rep.Skipped, SnapshotSkipped{
					Path:  w.WALStore.Path(e.Dataset, e.Partition),
					Class: "orphan",
					Err: fmt.Sprintf("WAL for %s/%d has no base snapshot; unreplayable, deleted",
						e.Dataset, e.Partition),
				})
			}
			w.WALStore.Remove(e.Dataset, e.Partition)
		}
	}
}

// Inventory implements the held-partition listing the coordinator uses to
// skip re-shipping content a worker already holds (cold-started from
// snapshots or surviving from an earlier dispatch).
func (s *workerService) Inventory(args *InventoryArgs, reply *InventoryReply) error {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	s.w.mu.RLock()
	for k, p := range s.w.parts {
		fp, snapped, _, lastSeq := p.identity()
		reply.Parts = append(reply.Parts, InventoryPart{
			Dataset: k.dataset, Partition: k.id,
			Fingerprint: fp, Snapshotted: snapped, LastSeq: lastSeq,
		})
	}
	s.w.mu.RUnlock()
	sort.Slice(reply.Parts, func(a, b int) bool {
		if reply.Parts[a].Dataset != reply.Parts[b].Dataset {
			return reply.Parts[a].Dataset < reply.Parts[b].Dataset
		}
		return reply.Parts[a].Partition < reply.Parts[b].Partition
	})
	return nil
}

// Export implements the healing transfer source: the sealed snapshot
// image of one held partition, encoded from live memory (so it works even
// on workers running without a snapshot directory). A live ingest overlay
// is folded into the image — the transfer must carry every acked write,
// or healing onto a new replica would silently roll them back.
func (s *workerService) Export(args *ExportArgs, reply *ExportReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("export", &err)
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	reply.Data = exportImage(args.Dataset, args.Partition, p)
	return nil
}

// exportImage encodes the partition's visible state. Without an overlay
// this is the base verbatim; with one, the visible members (base minus
// tombstones, plus delta) get a freshly built trie, and the image's
// watermark advances to lastSeq so a receiver restoring it replays
// nothing the image already covers.
func exportImage(dataset string, pid int, p *workerPartition) []byte {
	p.omu.RLock()
	if len(p.delta) == 0 && len(p.tomb) == 0 {
		sn := &snap.Snapshot{
			Dataset: dataset, Partition: pid, Opts: p.opts,
			Trajs: p.trajs, Index: p.index, Watermark: p.lastSeq,
		}
		p.omu.RUnlock()
		return snap.Encode(sn)
	}
	visible := make([]*traj.T, 0, len(p.trajs)+len(p.delta))
	for _, t := range p.trajs {
		if !p.tomb[t.ID] {
			visible = append(visible, t)
		}
	}
	visible = append(visible, p.delta...)
	opts := p.opts
	watermark := p.lastSeq
	p.omu.RUnlock()
	// The trie build runs off-lock: visible is a private slice, and the
	// trajectories it points to are immutable.
	idx := trie.Build(visible, trie.Config{
		K:        opts.K,
		NLAlign:  opts.NLAlign,
		NLPivot:  opts.NLPivot,
		MinNode:  opts.MinNode,
		Strategy: pivot.Strategy(opts.Strategy),
	})
	return snap.Encode(&snap.Snapshot{
		Dataset: dataset, Partition: pid, Opts: opts,
		Trajs: visible, Index: idx, Watermark: watermark,
	})
}

// Replicate implements snapshot-based healing: fetch the partition's
// image from a peer, verify it end to end (snap.Decode catches wire
// corruption exactly like disk corruption), install, and persist. A
// transport-level failure reaching the peer is reported with the
// peer-unreachable prefix so the coordinator can distinguish "source is
// down" from "this worker failed".
func (s *workerService) Replicate(args *ReplicateArgs, reply *ReplicateReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("replicate", &err)

	// Already holding the content? Nothing to transfer.
	s.w.mu.RLock()
	held, ok := s.w.parts[partKey{args.Dataset, args.Partition}]
	s.w.mu.RUnlock()
	if ok && args.Fingerprint != 0 {
		if hfp, hsnapped, _, _ := held.identity(); hfp == args.Fingerprint {
			reply.Trajs, reply.IndexBytes = held.baseStats()
			reply.Snapshotted = hsnapped
			return nil
		}
	}

	mc := newManagedClient(args.SrcAddr, shipRetry)
	defer mc.Close()
	var ex ExportReply
	if err := mc.Call("Worker.Export", &ExportArgs{Dataset: args.Dataset, Partition: args.Partition}, &ex); err != nil {
		if retryableError(err) {
			return fmt.Errorf("%s%s: %v", peerUnreachablePrefix, args.SrcAddr, err)
		}
		return err
	}
	sn, err := snap.Decode(ex.Data)
	if err != nil {
		return fmt.Errorf("dnet: replicate %s/%d from %s: %w", args.Dataset, args.Partition, args.SrcAddr, err)
	}
	if sn.Dataset != args.Dataset || sn.Partition != args.Partition {
		return fmt.Errorf("dnet: replicate: peer sent %s/%d, want %s/%d",
			sn.Dataset, sn.Partition, args.Dataset, args.Partition)
	}
	if args.Fingerprint != 0 && sn.Fingerprint != args.Fingerprint {
		return fmt.Errorf("dnet: replicate %s/%d: content fingerprint %016x, want %016x",
			args.Dataset, args.Partition, sn.Fingerprint, args.Fingerprint)
	}
	p, err := partitionFromSnapshot(sn)
	if err != nil {
		return fmt.Errorf("dnet: replicate %s/%d: %w", args.Dataset, args.Partition, err)
	}
	// The transferred image starts a new WAL epoch: any log this worker
	// kept extends a base the install replaces wholesale. (The image's
	// watermark already covers every mutation folded into it.) The old
	// partition's mergeMu fences any in-flight merge so its seal and WAL
	// truncation cannot land on top of the new epoch's files.
	if ok {
		held.closeLog()
		held.mergeMu.Lock()
		defer held.mergeMu.Unlock()
	}
	if s.w.WALStore != nil {
		s.w.WALStore.Remove(args.Dataset, args.Partition)
		if l, _, err := s.w.WALStore.Open(args.Dataset, args.Partition); err == nil {
			p.wlog = l
		}
	}
	s.w.persistPartition(args.Dataset, args.Partition, p)
	s.w.installPartition(args.Dataset, args.Partition, p)
	s.w.bytesIn.Add(int64(len(ex.Data)))
	reply.Trajs = len(p.trajs)
	reply.IndexBytes = p.index.SizeBytes()
	reply.Snapshotted = p.snapped
	return nil
}
