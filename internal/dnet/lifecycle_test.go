package dnet

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dita/internal/gen"
	"dita/internal/measure"
)

// startClusterHooked is startCluster but returns the workers and installs
// hook on every worker *before* Serve (hooks must be in place before the
// accept goroutine starts; dynamic behavior belongs inside the hook,
// driven by atomics).
func startClusterHooked(t *testing.T, n int, cfg Config, hook func(*SearchArgs)) (*Coordinator, []*Worker, func()) {
	t.Helper()
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w := NewWorker()
		w.searchHook = hook
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	c, err := Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, workers, func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	}
}

// A partition whose verification panics mid-Search must degrade into an
// AllowPartial skip report — the coordinator and the workers survive, and
// once the fault clears a retry returns exact results. (Named Chaos so
// `make chaos` re-runs it.)
func TestChaosSearchPanicYieldsPartialThenExactRetry(t *testing.T) {
	var poison atomic.Bool
	poison.Store(true)
	hook := func(args *SearchArgs) {
		if poison.Load() {
			panic("injected search fault")
		}
	}
	cfg := testConfig()
	cfg.AllowPartial = true
	c, _, stop := startClusterHooked(t, 3, cfg, hook)
	defer stop()
	d := gen.Generate(gen.BeijingLike(300, 90))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 91)[0]
	tau := 0.01

	hits, rep, err := c.SearchPartial("trips", q, tau)
	if err != nil {
		t.Fatalf("partial search errored: %v", err)
	}
	if !rep.Partial() {
		t.Fatal("universal panic produced no skip report")
	}
	if len(hits) != 0 {
		t.Fatalf("%d hits from partitions that all panicked", len(hits))
	}
	attributed := false
	for _, s := range rep.Skipped {
		if strings.Contains(s.Err, "injected search fault") {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("skip report not attributed to the panic: %+v", rep.Skipped)
	}

	// Fault clears; the same cluster (nothing restarted, nobody crashed)
	// answers exactly.
	poison.Store(false)
	got, rep, err := c.SearchPartial("trips", q, tau)
	if err != nil || rep.Partial() {
		t.Fatalf("retry: err=%v partial=%v", err, rep.Partial())
	}
	m := measure.DTW{}
	want := map[int]bool{}
	for _, tr := range d.Trajs {
		if m.Distance(tr.Points, q.Points) <= tau {
			want[tr.ID] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("retry: %d hits, want %d", len(got), len(want))
	}
	for _, h := range got {
		if !want[h.ID] {
			t.Fatalf("retry: spurious hit %d", h.ID)
		}
	}
}

// Admission control on the coordinator: with MaxConcurrent=1 and
// MaxQueue=1, the third concurrent query is rejected immediately with
// ErrOverloaded while the first still runs and the second waits.
func TestAdmissionOverloadFailsFast(t *testing.T) {
	block := make(chan struct{})
	hook := func(args *SearchArgs) { <-block }
	cfg := testConfig()
	cfg.Admission.MaxConcurrent = 1
	cfg.Admission.MaxQueue = 1
	cfg.Admission.QueueTimeout = time.Minute
	c, _, stop := startClusterHooked(t, 2, cfg, hook)
	defer stop()
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	d := gen.Generate(gen.BeijingLike(150, 92))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 93)[0]

	// Query 1 holds the slot, blocked inside the worker RPC.
	q1done := make(chan error, 1)
	go func() {
		_, _, err := c.SearchPartial("trips", q, 0.01)
		q1done <- err
	}()
	waitCond(t, func() bool { return c.adm.InFlight() == 1 })

	// Query 2 occupies the queue.
	q2done := make(chan error, 1)
	go func() {
		_, _, err := c.SearchPartial("trips", q, 0.01)
		q2done <- err
	}()
	waitCond(t, func() bool { return c.adm.Waiting() == 1 })

	// Query 3: slots and queue full — typed fail-fast rejection.
	start := time.Now()
	_, _, err := c.SearchPartial("trips", q, 0.01)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third query: err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("overload rejection took %v", d)
	}

	// Unblock: both held queries must complete cleanly.
	release()
	if err := <-q1done; err != nil {
		t.Fatalf("query 1: %v", err)
	}
	if err := <-q2done; err != nil {
		t.Fatalf("query 2: %v", err)
	}
}

// A queued query gives up with ErrOverloaded once QueueTimeout passes.
func TestAdmissionQueueTimeout(t *testing.T) {
	block := make(chan struct{})
	hook := func(args *SearchArgs) { <-block }
	cfg := testConfig()
	cfg.Admission.MaxConcurrent = 1
	cfg.Admission.MaxQueue = 1
	cfg.Admission.QueueTimeout = 150 * time.Millisecond
	c, _, stop := startClusterHooked(t, 2, cfg, hook)
	defer stop()
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	d := gen.Generate(gen.BeijingLike(150, 94))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 95)[0]

	q1done := make(chan error, 1)
	go func() {
		_, _, err := c.SearchPartial("trips", q, 0.01)
		q1done <- err
	}()
	waitCond(t, func() bool { return c.adm.InFlight() == 1 })

	start := time.Now()
	_, _, err := c.SearchPartial("trips", q, 0.01)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued query: err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d < 100*time.Millisecond || d > 5*time.Second {
		t.Fatalf("queue wait was %v, want ~150ms", d)
	}

	release()
	if err := <-q1done; err != nil {
		t.Fatalf("query 1: %v", err)
	}
}

// Cancelled/expired queries must not leak goroutines: the fan-out workers
// drain and abandoned RPC calls complete into discarded replies. The
// goroutine count returns to its pre-churn level.
func TestSearchCancelNoGoroutineLeak(t *testing.T) {
	var slow atomic.Bool
	hook := func(args *SearchArgs) {
		if slow.Load() {
			time.Sleep(50 * time.Millisecond)
		}
	}
	c, _, stop := startClusterHooked(t, 3, testConfig(), hook)
	defer stop()
	d := gen.Generate(gen.BeijingLike(300, 96))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 97)[0]
	// Warm up connections and server goroutines before the baseline.
	if _, _, err := c.SearchPartial("trips", q, 0.01); err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	slow.Store(true)
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, _, err := c.SearchPartialContext(ctx, "trips", q, 0.01)
		cancel()
		if err == nil {
			t.Fatal("10ms deadline against 50ms-per-RPC workers succeeded")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("query %d: err = %v, want context.DeadlineExceeded", i, err)
		}
	}
	slow.Store(false)

	// Give abandoned calls and fan-out goroutines time to drain, then
	// require the count to settle back to (near) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// And the cluster still answers after the churn.
	if _, _, err := c.SearchPartial("trips", q, 0.01); err != nil {
		t.Fatalf("post-churn search: %v", err)
	}
}

// A context cancelled before the call never dials, never retries.
func TestCallContextPreCancelled(t *testing.T) {
	mc := newManagedClient(deadAddr(t), RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second})
	defer mc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := mc.CallContext(ctx, "Worker.Ping", &PingArgs{}, &PingReply{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-cancelled call took %v", d)
	}
}

// Cancellation during a backoff sleep aborts the sleep: a dead query must
// not sit out a 10s backoff before noticing.
func TestCallContextBackoffCancelled(t *testing.T) {
	mc := newManagedClient(deadAddr(t), RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Second,
		MaxDelay:    10 * time.Second,
		CallTimeout: time.Second,
	})
	defer mc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := mc.CallContext(ctx, "Worker.Ping", &PingArgs{}, &PingReply{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled call returned after %v (sat in backoff?)", elapsed)
	}
}

// An expired per-query deadline fails the call without consuming retries.
func TestCallContextExpiredDeadlineNoRetry(t *testing.T) {
	mc := newManagedClient(deadAddr(t), RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Second})
	defer mc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	start := time.Now()
	err := mc.CallContext(ctx, "Worker.Ping", &PingArgs{}, &PingReply{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("expired call took %v", d)
	}
}

// CancelInflight (the dita-worker SIGINT path) aborts a running query but
// leaves the worker serving subsequent ones. The hook blocks the query
// inside the handler — after its query context is derived — so the cancel
// deterministically lands on in-flight work.
func TestChaosCancelInflightKeepsWorkerAlive(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{}, 64)
	var blocking atomic.Bool
	blocking.Store(true)
	hook := func(args *SearchArgs) {
		if blocking.Load() {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-block
		}
	}
	cfg := testConfig()
	cfg.Replicas = 1
	c, workers, stop := startClusterHooked(t, 2, cfg, hook)
	defer stop()
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	d := gen.Generate(gen.BeijingLike(200, 98))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := gen.Queries(d, 1, 99)[0]

	done := make(chan error, 1)
	go func() {
		// A deadline makes the worker derive its handler context from the
		// cancellable base (TimeoutMillis > 0 travels in-band).
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_, _, err := c.SearchPartialContext(ctx, "trips", q, 0.01)
		done <- err
	}()
	// Wait for a handler that has already derived its query context to
	// reach the hook — that one is guaranteed to observe the cancel.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no Search RPC reached the hook in 5s")
	}
	// SIGINT sequence: cancel in-flight queries, then let the blocked
	// handlers resume — they observe their cancelled context and error.
	for _, w := range workers {
		w.CancelInflight()
	}
	blocking.Store(false)
	release()
	if err := <-done; err == nil {
		t.Fatal("query survived CancelInflight (Replicas=1, no failover possible)")
	}
	// The same workers answer new queries (no restart, fresh base ctx).
	if _, _, err := c.SearchPartial("trips", q, 0.01); err != nil {
		t.Fatalf("post-cancel search: %v", err)
	}
}

// waitCond polls until cond holds or 5s pass.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// deadAddr returns a loopback address with no listener.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
