package dnet

import (
	"context"
	"math"
	"sort"
	"testing"

	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/traj"
	"dita/internal/trie"
)

// bruteKNNHits is the reference answer: exact distances to every
// trajectory, sorted by (distance, ID), trimmed to k.
func bruteKNNHits(d *traj.Dataset, m measure.Measure, q *traj.T, k int) []SearchHit {
	hits := make([]SearchHit, 0, d.Len())
	for _, tr := range d.Trajs {
		hits = append(hits, SearchHit{ID: tr.ID, Distance: m.Distance(tr.Points, q.Points)})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Distance != hits[b].Distance {
			return hits[a].Distance < hits[b].Distance
		}
		return hits[a].ID < hits[b].ID
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// sameHits compares IDs exactly and distances to within a relative
// 1e-9: the threshold kernels (banded, early-abandoning) may differ from
// the exact DP in the last ulp.
func sameHits(a, b []SearchHit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
		da, db := a[i].Distance, b[i].Distance
		if da == db {
			continue
		}
		if math.Abs(da-db) > 1e-9*math.Max(math.Abs(da), math.Abs(db)) {
			return false
		}
	}
	return true
}

// TestNetKNNMatchesLocal: network-mode kNN over a live 3-worker TCP
// cluster must return exactly what the local engine's SearchKNN returns
// over the same data — which in turn must be the brute-force top-k.
// The traced variant must assemble knn-plan / knn-round / partition-knn
// spans with a monotone whole-query funnel.
func TestNetKNNMatchesLocal(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(400, 110))
	c, stop := startCluster(t, 3, testConfig())
	defer stop()
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.NG = 3
	opts.Trie = trie.DefaultConfig()
	opts.Trie.MinNode = 2
	e, err := core.NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	for qi, q := range gen.Queries(d, 5, 111) {
		for _, k := range []int{1, 3, 10, d.Len() + 5} {
			want := bruteKNNHits(d, m, q, k)
			local := e.SearchKNN(q, k)
			lhits := make([]SearchHit, len(local))
			for i, r := range local {
				lhits[i] = SearchHit{ID: r.Traj.ID, Distance: r.Distance}
			}
			if !sameHits(lhits, want) {
				t.Fatalf("query %d k=%d: local engine disagrees with brute force", qi, k)
			}
			got, err := c.SearchKNN("trips", q, k)
			if err != nil {
				t.Fatalf("query %d k=%d: %v", qi, k, err)
			}
			if !sameHits(got, want) {
				t.Fatalf("query %d k=%d: net kNN disagrees with brute force:\ngot  %v\nwant %v",
					qi, k, got, want)
			}
		}
	}

	// Traced run: per-round spans must be visible in the assembled trace.
	q := gen.Queries(d, 1, 112)[0]
	qs := &QueryStats{Trace: obs.NewTrace("knn")}
	hits, report, err := c.SearchKNNTraced(context.Background(), "trips", q, 7, qs)
	if err != nil {
		t.Fatal(err)
	}
	if report.Partial() {
		t.Fatalf("unexpected partial report: %+v", report.Skipped)
	}
	if !sameHits(hits, bruteKNNHits(d, m, q, 7)) {
		t.Fatal("traced kNN disagrees with brute force")
	}
	names := map[string]int{}
	partSpans := 0
	for _, s := range qs.Trace.Spans() {
		names[s.Name]++
		if s.Name == "partition-knn" {
			partSpans++
			if s.Worker == "" {
				t.Fatalf("partition-knn span for partition %d has no worker", s.Partition)
			}
			if s.Funnel == nil {
				t.Fatalf("partition-knn span for partition %d has no funnel", s.Partition)
			}
		}
	}
	if names["knn-plan"] != 1 {
		t.Fatalf("knn-plan spans = %d, want 1 (names: %v)", names["knn-plan"], names)
	}
	if names["knn-round"] < 1 {
		t.Fatalf("no knn-round spans (names: %v)", names)
	}
	if partSpans < 1 || int64(partSpans) != qs.Funnel.Relevant {
		t.Fatalf("partition-knn spans = %d, want funnel.Relevant = %d", partSpans, qs.Funnel.Relevant)
	}
	if !qs.Funnel.Monotone() {
		t.Fatalf("funnel not monotone: %s", qs.Funnel)
	}
	if qs.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
}

// TestNetKNNEdgeCases: degenerate inputs short-circuit cleanly.
func TestNetKNNEdgeCases(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(40, 113))
	c, stop := startCluster(t, 2, testConfig())
	defer stop()
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	q := d.Trajs[0]
	if hits, err := c.SearchKNN("trips", q, 0); err != nil || hits != nil {
		t.Fatalf("k=0: hits=%v err=%v, want nil/nil", hits, err)
	}
	if hits, err := c.SearchKNN("trips", nil, 3); err != nil || hits != nil {
		t.Fatalf("nil query: hits=%v err=%v, want nil/nil", hits, err)
	}
	if _, err := c.SearchKNN("nope", q, 3); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	// k beyond the dataset saturates at every trajectory, no Inf padding.
	hits, err := c.SearchKNN("trips", q, d.Len()+100)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != d.Len() {
		t.Fatalf("k>n returned %d hits, want %d", len(hits), d.Len())
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Distance < hits[i-1].Distance ||
			(hits[i].Distance == hits[i-1].Distance && hits[i].ID <= hits[i-1].ID) {
			t.Fatalf("hits not in ascending (distance, ID) order at %d", i)
		}
	}
	// A cancelled context fails the query rather than returning a partial
	// top-k.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SearchKNNContext(ctx, "trips", q, 3); err != context.Canceled {
		t.Fatalf("cancelled kNN err = %v, want context.Canceled", err)
	}
	if math.IsInf(hits[0].Distance, 1) {
		t.Fatal("nearest neighbor distance is +Inf on a dense dataset")
	}
}

// TestNetKNNChaos: killing one of three workers mid-workload must not
// change kNN results — every partition fails over to its second replica,
// and the merged top-k stays exactly the brute-force answer.
func TestNetKNNChaos(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 114))
	workers, _, c := chaosCluster(t, 3, chaosConfig())
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	m := measure.DTW{}
	qs := gen.Queries(d, 6, 115)
	const k = 9
	for i, q := range qs {
		if i == len(qs)/2 {
			// Crash a worker mid-workload.
			workers[1].Close()
		}
		hits, err := c.SearchKNN("trips", q, k)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want := bruteKNNHits(d, m, q, k)
		if !sameHits(hits, want) {
			t.Fatalf("query %d: kNN after worker kill disagrees with brute force:\ngot  %v\nwant %v",
				i, hits, want)
		}
	}
}
