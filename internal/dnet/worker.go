package dnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dita/internal/core"
	"dita/internal/measure"
	"dita/internal/obs"
	"dita/internal/pivot"
	"dita/internal/snap"
	"dita/internal/traj"
	"dita/internal/trie"
	"dita/internal/wal"
)

// shipRetry bounds the worker-to-worker shipment calls (peer may be
// mid-restart); kept short because the coordinator also fails over to
// other destination replicas.
var shipRetry = RetryPolicy{
	MaxAttempts: 2,
	BaseDelay:   10 * time.Millisecond,
	MaxDelay:    100 * time.Millisecond,
	CallTimeout: 30 * time.Second,
}

// Worker is one node of the network-mode cluster: an RPC server holding
// the partitions assigned to it (trajectories, trie index, verification
// metadata) in memory.
type Worker struct {
	mu    sync.RWMutex
	parts map[partKey]*workerPartition

	searchCalls atomic.Int64
	knnCalls    atomic.Int64
	joinCalls   atomic.Int64
	bytesIn     atomic.Int64

	// FaultInjection, when set before Serve, wraps the listener so
	// accepted connections drop/delay/error per the plan — the chaos
	// transport (tests and `dita-worker -chaos`). Never set it in
	// production.
	FaultInjection *FaultPlan

	// SnapStore, when set before Serve, persists every loaded partition
	// as a crash-safe snapshot and lets LoadSnapshots cold-start the
	// worker from disk. Its Faults field is the storage-side chaos plan
	// (`dita-worker -snap-chaos`).
	SnapStore *snap.Store

	// WALStore, when set before Serve, gives every partition a write-ahead
	// log: Worker.Ingest appends mutations durably before applying them,
	// and LoadSnapshots replays each log's suffix past its snapshot's
	// watermark on cold start. Pair it with SnapStore (same directory works)
	// — a WAL without a base snapshot cannot be replayed; cold start
	// reports it as a classified "orphan" skip, counts it
	// (snap_wal_orphaned_total), and deletes the file.
	// Its Faults field is the WAL-side chaos plan (`dita-worker -wal-chaos`).
	WALStore *wal.Store

	// MergeBytes is the per-partition delta size that triggers folding the
	// overlay into a fresh base (rebuild trie, seal snapshot, truncate WAL).
	// <= 0 uses defaultMergeBytes. Set before Serve.
	MergeBytes int

	// MaxDeltaBytes is the per-partition backpressure bound: an ingest
	// batch arriving while the delta holds at least this many bytes is
	// rejected with an overloaded error (the coordinator surfaces
	// ErrOverloaded) and a merge is kicked to drain the buffer. <= 0 uses
	// defaultMaxDeltaBytes. Set before Serve.
	MaxDeltaBytes int

	snapLoadOK      atomic.Int64
	snapLoadCorrupt atomic.Int64
	snapLoadErr     atomic.Int64
	snapWriteOK     atomic.Int64
	snapWriteErr    atomic.Int64

	ingestCalls    atomic.Int64
	ingestRecords  atomic.Int64
	ingestDeduped  atomic.Int64
	ingestRejected atomic.Int64
	merges         atomic.Int64
	walReplayed    atomic.Int64
	walTruncated   atomic.Int64
	walReplayUS    atomic.Int64
	walOrphaned    atomic.Int64

	// VerifyParallelism bounds the goroutine pool each Search/Join RPC
	// uses to verify its candidate list: 0 means every core, 1 forces the
	// sequential path. Set before Serve; results are identical at every
	// setting.
	VerifyParallelism int

	// searchHook, when set (tests only), runs at the start of every
	// Search RPC — panic injection and admission-blocking both hang off
	// it. It runs inside the handler's recover, so a panicking hook
	// exercises exactly the production containment path.
	searchHook func(*SearchArgs)

	lis  net.Listener
	srv  *rpc.Server
	done chan struct{}

	closeOnce sync.Once
	closeErr  error

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// Drain bookkeeping: draining rejects new RPCs; idle is closed when
	// the last in-flight RPC finishes after draining began.
	stateMu  sync.Mutex
	draining bool
	inflight int
	idle     chan struct{}

	// queryMu guards the base context query deadlines derive from;
	// CancelInflight swaps it to abort everything currently executing.
	queryMu     sync.Mutex
	queryBase   context.Context
	queryCancel context.CancelFunc
}

type partKey struct {
	dataset string
	id      int
}

type workerPartition struct {
	trajs []*traj.T
	index *trie.Trie
	meta  []core.VerifyMeta
	m     measure.Measure
	cellD float64
	// opts and fingerprint are the partition's content identity
	// (snap.BuildOptions plus the hash over it and the trajectories);
	// snapped/snapBytes record whether a durable snapshot of exactly this
	// content exists in the worker's store.
	opts        snap.BuildOptions
	fingerprint uint64
	snapped     bool
	snapBytes   int64

	// Ingest overlay, all guarded by omu. The base fields above are never
	// mutated in place: a merge installs fresh slices and a fresh trie, so
	// a view captured under omu.RLock stays consistent for the rest of its
	// query. delta holds inserted/updated members (deltaIdx maps id →
	// delta index); tomb masks base members that were deleted or
	// superseded; lastSeq is the durable dedupe floor; watermark is the
	// highest sequence folded into the base (what the sealed snapshot
	// records); wlog is the partition's open WAL, nil when the worker runs
	// without a WAL store.
	// mergeMu serializes merges on this partition end to end (fold, seal,
	// truncate) so a slow seal can never overwrite a newer image and then
	// truncate the log past it. Taken before omu, never while holding it.
	mergeMu sync.Mutex

	omu        sync.RWMutex
	delta      []*traj.T
	deltaMeta  []core.VerifyMeta
	deltaIdx   map[int]int
	tomb       map[int]bool
	baseIDs    map[int]bool
	deltaBytes int
	lastSeq    uint64
	watermark  uint64
	wlog       *wal.Log
}

// NewWorker creates an unstarted worker.
func NewWorker() *Worker {
	w := &Worker{
		parts: map[partKey]*workerPartition{},
		done:  make(chan struct{}),
		conns: map[net.Conn]struct{}{},
	}
	w.queryBase, w.queryCancel = context.WithCancel(context.Background())
	return w
}

// CancelInflight aborts every query currently executing on this worker:
// Search/Ship/Join work in progress observes cancellation at its next
// check (one trie step or one verification) and returns a context error
// over the wire. New queries are unaffected — the base context is swapped
// before the old one is cancelled — so a SIGINT-style "cancel what's
// running, then drain" sequence doesn't poison retries.
func (w *Worker) CancelInflight() {
	w.queryMu.Lock()
	cancel := w.queryCancel
	w.queryBase, w.queryCancel = context.WithCancel(context.Background())
	w.queryMu.Unlock()
	cancel()
}

// Serve starts listening on addr (host:port; port 0 picks a free port) and
// serves RPCs until Close. It returns the bound address.
func (w *Worker) Serve(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("dnet: %w", err)
	}
	bound := lis.Addr().String()
	if w.FaultInjection != nil {
		lis = NewFaultListener(lis, *w.FaultInjection)
	}
	w.lis = lis
	w.srv = rpc.NewServer()
	// The RPC service is a separate type so only the protocol methods are
	// exported to the wire.
	if err := w.srv.RegisterName("Worker", &workerService{w: w}); err != nil {
		lis.Close()
		return "", err
	}
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				select {
				case <-w.done:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				continue
			}
			w.connMu.Lock()
			w.conns[conn] = struct{}{}
			w.connMu.Unlock()
			go func(conn net.Conn) {
				w.srv.ServeConn(conn)
				w.connMu.Lock()
				delete(w.conns, conn)
				w.connMu.Unlock()
			}(conn)
		}
	}()
	return bound, nil
}

// errDraining is returned to RPCs that arrive while the worker drains.
var errDraining = errors.New("dnet: worker shutting down")

// beginRPC admits one RPC unless the worker is draining.
func (w *Worker) beginRPC() bool {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	if w.draining {
		return false
	}
	w.inflight++
	return true
}

// Inflight returns the number of RPCs currently executing — the source of
// the worker_queries_inflight gauge, and what a clean shutdown (and the
// soak harness) expects to see drain to zero.
func (w *Worker) Inflight() int {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	return w.inflight
}

// Ready reports whether the worker is accepting RPCs — nil while
// serving, an error once draining begins. The /readyz endpoint on
// -metrics-addr keys on it, so a draining worker drops out of load
// balancing before its RPCs start failing.
func (w *Worker) Ready() error {
	w.stateMu.Lock()
	defer w.stateMu.Unlock()
	if w.draining {
		return errDraining
	}
	return nil
}

// Instrument registers the worker's live state on a metrics registry:
// the queries-inflight gauge, partition inventory, and the cumulative
// call/byte counters, all read on scrape (no hot-path cost).
func (w *Worker) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("worker_queries_inflight", func() int64 { return int64(w.Inflight()) })
	r.GaugeFunc("worker_partitions", func() int64 {
		w.mu.RLock()
		defer w.mu.RUnlock()
		return int64(len(w.parts))
	})
	r.GaugeFunc("worker_search_calls_total", w.searchCalls.Load)
	r.GaugeFunc("worker_knn_calls_total", w.knnCalls.Load)
	r.GaugeFunc("worker_join_calls_total", w.joinCalls.Load)
	r.GaugeFunc("worker_bytes_in_total", w.bytesIn.Load)
	r.GaugeFunc("snap_load_ok", w.snapLoadOK.Load)
	r.GaugeFunc("snap_load_corrupt", w.snapLoadCorrupt.Load)
	r.GaugeFunc("snap_load_err", w.snapLoadErr.Load)
	r.GaugeFunc("snap_write_ok", w.snapWriteOK.Load)
	r.GaugeFunc("snap_write_err", w.snapWriteErr.Load)
	r.GaugeFunc("worker_ingest_calls_total", w.ingestCalls.Load)
	r.GaugeFunc("worker_ingest_records_total", w.ingestRecords.Load)
	r.GaugeFunc("worker_ingest_deduped_total", w.ingestDeduped.Load)
	r.GaugeFunc("worker_ingest_rejected_total", w.ingestRejected.Load)
	r.GaugeFunc("worker_merges_total", w.merges.Load)
	r.GaugeFunc("wal_replayed_records", w.walReplayed.Load)
	r.GaugeFunc("wal_truncated_bytes", w.walTruncated.Load)
	r.GaugeFunc("wal_replay_us", w.walReplayUS.Load)
	r.GaugeFunc("snap_wal_orphaned_total", w.walOrphaned.Load)
	r.GaugeFunc("worker_delta_bytes", func() int64 {
		w.mu.RLock()
		defer w.mu.RUnlock()
		var total int64
		for _, p := range w.parts {
			total += int64(p.DeltaBytes())
		}
		return total
	})
}

func (w *Worker) endRPC() {
	w.stateMu.Lock()
	w.inflight--
	if w.draining && w.inflight == 0 && w.idle != nil {
		close(w.idle)
		w.idle = nil
	}
	w.stateMu.Unlock()
}

// Shutdown drains the worker: it stops accepting connections and new
// RPCs, waits up to timeout for in-flight RPCs to finish, then closes
// everything. Safe to call more than once and after Close.
func (w *Worker) Shutdown(timeout time.Duration) error {
	w.stateMu.Lock()
	if !w.draining {
		w.draining = true
		if w.inflight > 0 {
			w.idle = make(chan struct{})
		}
	}
	idle := w.idle
	w.stateMu.Unlock()
	if w.lis != nil {
		w.lis.Close()
	}
	if idle != nil {
		select {
		case <-idle:
		case <-time.After(timeout):
		}
	}
	return w.Close()
}

// Close stops the listener and terminates every established connection,
// so in-flight and future RPCs against this worker fail fast (the
// behavior a crashed node exhibits). It is idempotent.
func (w *Worker) Close() error {
	w.closeOnce.Do(func() {
		close(w.done)
		if w.lis != nil {
			// Shutdown may already have closed the listener to stop
			// new connections; that's not an error.
			if err := w.lis.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				w.closeErr = err
			}
		}
		w.connMu.Lock()
		for conn := range w.conns {
			conn.Close()
		}
		w.conns = map[net.Conn]struct{}{}
		w.connMu.Unlock()
		// Close the WAL handles so an in-process "restart" (tests) can
		// reopen the files exclusively. An append racing this close fails
		// like any crashed write: the record was never acked, and the torn
		// tail (if any) is truncated on the next Open.
		w.mu.RLock()
		for _, p := range w.parts {
			p.closeLog()
		}
		w.mu.RUnlock()
	})
	return w.closeErr
}

// workerService carries the exported RPC surface.
type workerService struct {
	w *Worker
}

// rpcRecover converts a handler panic into an application error. It
// crosses the wire as an rpc.ServerError, which the coordinator already
// treats as proof of life (the worker answered; this partition's work
// exploded), so a poisoned partition flows into replica failover and the
// AllowPartial skip report instead of killing the worker process — net/rpc
// would otherwise let the panic unwind ServeConn's goroutine and crash us.
func rpcRecover(op string, errp *error) {
	if r := recover(); r != nil {
		*errp = fmt.Errorf("dnet: %s panic: %v", op, r)
	}
}

// queryCtx turns the in-band deadline budget stamped by the coordinator
// into a context bounding the handler's work. net/rpc has no cancellation
// signal, so a client that abandons a call cannot reach us — the deadline
// is what keeps server-side work from running unbounded after the query
// died. The context derives from the worker's cancellable base so
// CancelInflight reaches queries with no deadline too.
func (w *Worker) queryCtx(timeoutMillis int64) (context.Context, context.CancelFunc) {
	w.queryMu.Lock()
	base := w.queryBase
	w.queryMu.Unlock()
	if timeoutMillis <= 0 {
		return base, func() {}
	}
	return context.WithTimeout(base, time.Duration(timeoutMillis)*time.Millisecond)
}

// Ping implements the heartbeat probe. A draining worker fails it so
// coordinators route around the node before it disappears.
func (s *workerService) Ping(args *PingArgs, reply *PingReply) error {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	s.w.mu.RLock()
	reply.Partitions = len(s.w.parts)
	s.w.mu.RUnlock()
	return nil
}

// Load implements the LoadPartition RPC: store and index a partition.
// Reloading the same (dataset, partition) replaces it, which makes
// coordinator retries and re-replication idempotent.
func (s *workerService) Load(args *LoadArgs, reply *LoadReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("load", &err)
	m, err := measure.ByName(args.Measure.Name, args.Measure.Eps, args.Measure.Delta)
	if err != nil {
		return err
	}
	trajs := make([]*traj.T, len(args.Trajs))
	bytes := 0
	for i, wt := range args.Trajs {
		trajs[i] = &traj.T{ID: wt.ID, Points: wt.Points}
		bytes += trajs[i].Bytes()
	}
	opts := loadBuildOptions(args)
	fp := snap.Fingerprint(opts, trajs)
	s.w.bytesIn.Add(int64(bytes))
	// Identical content already held (a retry, or a cold start restored
	// it): skip the rebuild, answer from the existing partition.
	s.w.mu.RLock()
	held, ok := s.w.parts[partKey{args.Dataset, args.Partition}]
	s.w.mu.RUnlock()
	if ok {
		if hfp, hsnapped, hsnapBytes, _ := held.identity(); hfp == fp {
			reply.Trajs, reply.IndexBytes = held.baseStats()
			reply.Snapshotted = hsnapped
			reply.SnapshotBytes = hsnapBytes
			return nil
		}
	}
	cfg := trie.Config{
		K:        args.K,
		NLAlign:  args.NLAlign,
		NLPivot:  args.NLPivot,
		MinNode:  args.MinNode,
		Strategy: pivot.Strategy(args.Strategy),
	}
	p := &workerPartition{
		trajs:       trajs,
		index:       trie.Build(trajs, cfg),
		meta:        make([]core.VerifyMeta, len(trajs)),
		m:           m,
		cellD:       args.CellD,
		opts:        opts,
		fingerprint: fp,
	}
	for i, t := range trajs {
		p.meta[i] = core.NewVerifyMeta(t, args.CellD)
	}
	// A fresh load starts a new WAL epoch: any previous log extended a base
	// this payload replaces wholesale, so replaying it would resurrect
	// deltas from a dead epoch. (The fingerprint fast-path above keeps the
	// held partition — and with it the replayed overlay and open log.)
	// Waiting on the old partition's mergeMu fences any in-flight merge:
	// its seal and WAL truncation land before the epoch reset below, never
	// on top of the new epoch's files.
	if ok {
		held.closeLog()
		held.mergeMu.Lock()
		defer held.mergeMu.Unlock()
	}
	if s.w.WALStore != nil {
		s.w.WALStore.Remove(args.Dataset, args.Partition)
		if l, _, err := s.w.WALStore.Open(args.Dataset, args.Partition); err == nil {
			p.wlog = l
		}
	}
	s.w.persistPartition(args.Dataset, args.Partition, p)
	s.w.installPartition(args.Dataset, args.Partition, p)
	reply.Trajs = len(trajs)
	reply.IndexBytes = p.index.SizeBytes()
	reply.Snapshotted = p.snapped
	reply.SnapshotBytes = p.snapBytes
	return nil
}

// Unload implements the rollback RPC: drop one partition.
func (s *workerService) Unload(args *UnloadArgs, reply *UnloadReply) error {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	key := partKey{args.Dataset, args.Partition}
	s.w.mu.Lock()
	p, held := s.w.parts[key]
	reply.Unloaded = held
	delete(s.w.parts, key)
	s.w.mu.Unlock()
	if held {
		p.closeLog()
		// An in-flight merge may already have passed its installed check
		// (taken before sealing) and be about to rewrite the snapshot and
		// truncate the WAL — state that must not outlive this rollback.
		// mergePartition holds mergeMu end to end, so waiting on it here
		// guarantees the removals below run after any such merge finished
		// writing.
		p.mergeMu.Lock()
		defer p.mergeMu.Unlock()
	}
	// The durable pair must go with the partition: a surviving snapshot
	// would resurrect data the coordinator rolled back, and a surviving
	// WAL would replay deltas from a previous epoch onto whatever lands at
	// this (dataset, partition) next.
	if s.w.SnapStore != nil {
		s.w.SnapStore.Remove(args.Dataset, args.Partition)
	}
	if s.w.WALStore != nil {
		s.w.WALStore.Remove(args.Dataset, args.Partition)
	}
	return nil
}

func (s *workerService) partition(dataset string, id int) (*workerPartition, error) {
	s.w.mu.RLock()
	defer s.w.mu.RUnlock()
	p, ok := s.w.parts[partKey{dataset, id}]
	if !ok {
		return nil, fmt.Errorf("dnet: partition %s/%d not loaded on this worker", dataset, id)
	}
	return p, nil
}

// Search implements the per-partition threshold search RPC. Work is
// bounded by the query's in-band deadline (checked inside the trie
// descent and before every verification), and a panic anywhere in the
// pipeline is contained to this call.
func (s *workerService) Search(args *SearchArgs, reply *SearchReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("search", &err)
	s.w.searchCalls.Add(1)
	start := time.Now()
	defer func() { reply.ElapsedMicros = time.Since(start).Microseconds() }()
	// The query context is derived before the hook so a hook that stalls
	// (admission tests) models work happening inside an already-admitted
	// query — CancelInflight then reaches it like any other in-flight work.
	ctx, cancel := s.w.queryCtx(args.TimeoutMillis)
	defer cancel()
	if s.w.searchHook != nil {
		s.w.searchHook(args)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	pv := p.view()
	cands, err := pv.index.SearchContext(ctx, args.Query, p.m, args.Tau, nil)
	if err != nil {
		return err
	}
	trajs, meta := pv.trajs, pv.meta
	if pv.overlay() {
		// Trie candidates masked by the tombstones, delta members appended
		// unconditionally (they are few and unindexed until the next merge).
		kept := cands[:0]
		for _, i := range cands {
			if !pv.tomb[trajs[i].ID] {
				kept = append(kept, i)
			}
		}
		cands = kept
		combined := make([]*traj.T, 0, len(trajs)+len(pv.delta))
		combined = append(combined, trajs...)
		combined = append(combined, pv.delta...)
		cmeta := make([]core.VerifyMeta, 0, len(meta)+len(pv.deltaMeta))
		cmeta = append(cmeta, meta...)
		cmeta = append(cmeta, pv.deltaMeta...)
		for j := range pv.delta {
			cands = append(cands, len(trajs)+j)
		}
		trajs, meta = combined, cmeta
	}
	reply.Candidates = len(cands)
	v := core.NewVerifier(p.m, args.Query, args.Tau, p.cellD)
	hits, err := v.VerifyAll(ctx, trajs, meta, cands, s.w.VerifyParallelism)
	if err != nil {
		return err
	}
	for _, h := range hits {
		reply.Hits = append(reply.Hits, SearchHit{ID: trajs[h.Index].ID, Distance: h.Distance})
	}
	reply.Verified = int(v.Verified.Load())
	reply.Funnel = v.Funnel(len(trajs), len(cands))
	sort.Slice(reply.Hits, func(a, b int) bool { return reply.Hits[a].ID < reply.Hits[b].ID })
	return nil
}

// KNN implements the per-partition top-k RPC of the network mode's
// best-first kNN. It runs the exact scan the local engine runs
// (core.KNNScanPartition), seeded empty and capped by the coordinator's
// round threshold, and replies with the partition-local top-k: any
// trajectory omitted is beaten by k partition-mates (or provably beyond
// the round threshold) and can never be a global answer, so the
// coordinator's merge is exact.
func (s *workerService) KNN(args *KNNArgs, reply *KNNReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("knn", &err)
	s.w.knnCalls.Add(1)
	start := time.Now()
	defer func() { reply.ElapsedMicros = time.Since(start).Microseconds() }()
	ctx, cancel := s.w.queryCtx(args.TimeoutMillis)
	defer cancel()
	if err := ctx.Err(); err != nil {
		return err
	}
	if args.K <= 0 {
		return fmt.Errorf("dnet: knn: k must be positive, got %d", args.K)
	}
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	pv := p.view()
	var masked func(id int) bool
	if len(pv.tomb) > 0 {
		tomb := pv.tomb
		masked = func(id int) bool { return tomb[id] }
	}
	acc := core.NewKNNAcc(args.K)
	f, err := core.KNNScanPartition(ctx, p.m, args.Query, pv.index, pv.trajs, pv.meta, masked, p.cellD, acc, args.Tau)
	if err != nil {
		return err
	}
	if len(pv.delta) > 0 {
		// Delta members are unindexed until the next merge: the linear
		// best-first scan resolves them exactly against the same accumulator.
		lf, err := core.KNNScanLive(ctx, p.m, args.Query, pv.delta, pv.deltaMeta, nil, p.cellD, acc, args.Tau)
		if err != nil {
			return err
		}
		f.Merge(lf)
	}
	for _, r := range acc.Results() {
		reply.Hits = append(reply.Hits, SearchHit{ID: r.Traj.ID, Distance: r.Distance})
	}
	reply.Funnel = f
	return nil
}

// Fetch implements trajectory retrieval by id.
func (s *workerService) Fetch(args *FetchArgs, reply *FetchReply) error {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	want := make(map[int]bool, len(args.IDs))
	for _, id := range args.IDs {
		want[id] = true
	}
	pv := p.view()
	for _, t := range pv.trajs {
		if want[t.ID] && !pv.tomb[t.ID] {
			reply.Trajs = append(reply.Trajs, WireTrajectory{ID: t.ID, Points: t.Points})
		}
	}
	for _, t := range pv.delta {
		if want[t.ID] {
			reply.Trajs = append(reply.Trajs, WireTrajectory{ID: t.ID, Points: t.Points})
		}
	}
	return nil
}

// peerUnreachablePrefix starts the error Ship returns when the
// destination worker cannot be reached at the transport level. It
// crosses the wire as the rpc.ServerError string, and the coordinator's
// isPeerUnreachable matches it with an exact prefix check to pick
// dst-side failover — keep the two in sync when rewording.
const peerUnreachablePrefix = "dnet: peer unreachable: "

// Ship implements the coordinator-directed shuffle: select this worker's
// partition trajectories relevant to the destination partition, push them
// to the destination worker's Join RPC, and relay the pairs back. A
// transport-level failure reaching the peer is reported with the
// peer-unreachable prefix so the coordinator fails over to another
// destination replica instead of another source replica.
func (s *workerService) Ship(args *ShipArgs, reply *JoinReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("ship", &err)
	start := time.Now()
	// The whole-shipment time (selection + wire + peer join) replaces the
	// peer's handler time: it is what the coordinator's edge span should
	// count as remote work.
	defer func() { reply.ElapsedMicros = time.Since(start).Microseconds() }()
	p, err := s.partition(args.SrcDataset, args.SrcPartition)
	if err != nil {
		return err
	}
	ctx, cancel := s.w.queryCtx(args.TimeoutMillis)
	defer cancel()
	pv := p.view()
	var shipped []WireTrajectory
	for _, t := range pv.trajs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if pv.tomb[t.ID] {
			continue
		}
		if core.TrajRelevant(p.m, t.Points, args.DstMBRf, args.DstMBRl, args.Tau) {
			shipped = append(shipped, WireTrajectory{ID: t.ID, Points: t.Points})
		}
	}
	for _, t := range pv.delta {
		if err := ctx.Err(); err != nil {
			return err
		}
		if core.TrajRelevant(p.m, t.Points, args.DstMBRf, args.DstMBRl, args.Tau) {
			shipped = append(shipped, WireTrajectory{ID: t.ID, Points: t.Points})
		}
	}
	if len(shipped) == 0 {
		return nil
	}
	// Worker-to-worker connection: the data does not pass through the
	// coordinator.
	mc := newManagedClient(args.DstAddr, shipRetry)
	defer mc.Close()
	jargs := &JoinArgs{
		Dataset:   args.DstDataset,
		Partition: args.DstPartition,
		Trajs:     shipped,
		Tau:       args.Tau,
		Flip:      args.Flip,
		TraceID:   args.TraceID,
		SpanID:    args.SpanID,
	}
	// Forward the remaining deadline budget to the peer's local join, and
	// bound our own wait on it (CallContext shrinks the per-attempt
	// timeout to the context's remaining time).
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl).Milliseconds()
		if rem < 1 {
			rem = 1
		}
		jargs.TimeoutMillis = rem
	}
	if err := mc.CallContext(ctx, "Worker.Join", jargs, reply); err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			// Deadline expiry is the query's fault, not the peer's: report
			// it plainly so the coordinator doesn't fail over to another
			// destination replica for a query that is already dead.
			return ctxErr
		}
		if retryableError(err) {
			return fmt.Errorf("%s%s: %v", peerUnreachablePrefix, args.DstAddr, err)
		}
		return err
	}
	return nil
}

// Join implements the receiving side of the shuffle: probe the local trie
// with each shipped trajectory and verify candidates. Bounded by the
// shipment's forwarded deadline; panics are contained to this call.
func (s *workerService) Join(args *JoinArgs, reply *JoinReply) (err error) {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	defer rpcRecover("join", &err)
	s.w.joinCalls.Add(1)
	start := time.Now()
	defer func() { reply.ElapsedMicros = time.Since(start).Microseconds() }()
	p, err := s.partition(args.Dataset, args.Partition)
	if err != nil {
		return err
	}
	ctx, cancel := s.w.queryCtx(args.TimeoutMillis)
	defer cancel()
	// The destination view: base slices plus — when an ingest overlay is
	// live — the delta members appended past them, their view indexes kept
	// so every trie probe can consider them (they are unindexed until the
	// next merge). Mirrors core.localJoin's overlay handling.
	pv := p.view()
	dstTrajs, dstMeta := pv.trajs, pv.meta
	var overlayIdx []int
	if pv.overlay() {
		combined := make([]*traj.T, 0, len(dstTrajs)+len(pv.delta))
		combined = append(combined, dstTrajs...)
		combined = append(combined, pv.delta...)
		cmeta := make([]core.VerifyMeta, 0, len(dstMeta)+len(pv.deltaMeta))
		cmeta = append(cmeta, dstMeta...)
		cmeta = append(cmeta, pv.deltaMeta...)
		for j := range pv.delta {
			overlayIdx = append(overlayIdx, len(dstTrajs)+j)
		}
		dstTrajs, dstMeta = combined, cmeta
	}
	// Considered counts every (shipped, local) pair the trie filtered; the
	// verification stages accumulate per shipped trajectory.
	reply.Funnel.Considered = int64(len(args.Trajs)) * int64(len(dstTrajs))
	// Phase 1: sequential trie probes flatten the shipment into candidate
	// pairs, one verifier per shipped trajectory (mirrors core.localJoin).
	var (
		pairs []core.JoinPair
		vs    []*core.Verifier
		wts   []*WireTrajectory
		nCand []int
	)
	for wi := range args.Trajs {
		wt := &args.Trajs[wi]
		reply.BytesReceived += 16*len(wt.Points) + 8
		idxs, err := pv.index.SearchContext(ctx, wt.Points, p.m, args.Tau, nil)
		if err != nil {
			return err
		}
		if pv.overlay() {
			kept := idxs[:0]
			for _, i := range idxs {
				if !pv.tomb[dstTrajs[i].ID] {
					kept = append(kept, i)
				}
			}
			idxs = append(kept, overlayIdx...)
		}
		reply.Candidates += len(idxs)
		if len(idxs) == 0 {
			continue
		}
		vi := len(vs)
		vs = append(vs, core.NewVerifier(p.m, wt.Points, args.Tau, p.cellD))
		wts = append(wts, wt)
		nCand = append(nCand, len(idxs))
		for _, i := range idxs {
			pairs = append(pairs, core.JoinPair{Shipped: vi, Local: i})
		}
	}
	// Phase 2: verify the flat pair list on the worker's verification
	// pool. Hits come back in pairs order, so reply.Pairs matches the old
	// nested loops exactly; the funnel merge is order-independent sums.
	hits, err := core.VerifyJoinPairs(ctx, pairs, vs, dstTrajs, dstMeta, s.w.VerifyParallelism)
	for vi, v := range vs {
		vf := v.Funnel(0, nCand[vi])
		vf.Considered = 0 // already counted for the whole shipment above
		reply.Funnel.Merge(vf)
	}
	if err != nil {
		return err
	}
	for _, h := range hits {
		wt, d := wts[h.Pair.Shipped], h.Pair.Local
		if args.Flip {
			reply.Pairs = append(reply.Pairs, WirePair{TID: dstTrajs[d].ID, QID: wt.ID, Distance: h.Distance})
		} else {
			reply.Pairs = append(reply.Pairs, WirePair{TID: wt.ID, QID: dstTrajs[d].ID, Distance: h.Distance})
		}
	}
	s.w.bytesIn.Add(int64(reply.BytesReceived))
	return nil
}

// Stats implements the inventory RPC.
func (s *workerService) Stats(args *StatsArgs, reply *StatsReply) error {
	if !s.w.beginRPC() {
		return errDraining
	}
	defer s.w.endRPC()
	s.w.mu.RLock()
	defer s.w.mu.RUnlock()
	reply.Partitions = len(s.w.parts)
	for _, p := range s.w.parts {
		nt, ib := p.baseStats()
		reply.Trajs += nt
		reply.IndexBytes += ib
		reply.DeltaBytes += p.DeltaBytes()
	}
	reply.SearchCalls = s.w.searchCalls.Load()
	reply.JoinCalls = s.w.joinCalls.Load()
	reply.BytesIn = s.w.bytesIn.Load()
	reply.IngestCalls = s.w.ingestCalls.Load()
	return nil
}
