package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(10)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram count = %d", s.Count)
	}
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	r.GaugeFunc("f", func() int64 { return 1 })
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
	var tr *Trace
	tr.Add(Span{Name: "x"})
	tr.StartSpan("y", -1)(nil)
	if tr.Spans() != nil {
		t.Fatal("nil trace has spans")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hits")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	// Same name returns the same counter.
	if r.Counter("hits") != c {
		t.Fatal("Counter not idempotent per name")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("snapshot basics wrong: %+v", s)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Exponential buckets: percentile estimates are upper bucket bounds,
	// within 2x of truth and never above max.
	if s.P50 < 500 || s.P50 > 1000 {
		t.Fatalf("p50 = %d, want within [500,1000]", s.P50)
	}
	if s.P95 < 950 || s.P95 > 1000 {
		t.Fatalf("p95 = %d, want within [950,1000]", s.P95)
	}
	if s.P99 < 990 || s.P99 > 1000 {
		t.Fatalf("p99 = %d", s.P99)
	}
	if s.Mean() < 500 || s.Mean() > 501 {
		t.Fatalf("mean = %f", s.Mean())
	}
}

func TestHistogramSingleAndNegative(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 || s.P99 != 0 {
		t.Fatalf("clamped snapshot: %+v", s)
	}
}

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 0; i < 20; i++ {
		u := bucketUpper(i)
		if bucketOf(u) != i {
			t.Errorf("bucketUpper(%d) = %d maps to bucket %d", i, u, bucketOf(u))
		}
	}
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := New()
	r.Counter("queries_total").Add(7)
	r.Gauge("queries_inflight").Set(2)
	r.GaugeFunc("live_func", func() int64 { return 42 })
	r.Histogram("search_latency_us").Observe(100)
	r.Histogram("search_latency_us").Observe(200)

	s := r.Snapshot()
	if s.Counters["queries_total"] != 7 {
		t.Fatalf("counter snapshot: %+v", s.Counters)
	}
	if s.Gauges["queries_inflight"] != 2 || s.Gauges["live_func"] != 42 {
		t.Fatalf("gauge snapshot: %+v", s.Gauges)
	}
	if s.Histograms["search_latency_us"].Count != 2 {
		t.Fatalf("hist snapshot: %+v", s.Histograms)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE queries_total counter\nqueries_total 7\n",
		"# TYPE queries_inflight gauge\nqueries_inflight 2\n",
		"live_func 42\n",
		"# TYPE search_latency_us summary\n",
		"search_latency_us_count 2\n",
		"search_latency_us_sum 300\n",
		`search_latency_us{quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestFunnelMergeMonotone(t *testing.T) {
	a := Funnel{Partitions: 4, Relevant: 2, Considered: 100, TrieCands: 40, AfterLength: 30, AfterCoverage: 20, Verified: 20, Matched: 5}
	b := Funnel{Partitions: 0, Relevant: 1, Considered: 50, TrieCands: 10, AfterLength: 8, AfterCoverage: 4, Verified: 4, Matched: 1}
	a.Merge(b)
	want := Funnel{Partitions: 4, Relevant: 3, Considered: 150, TrieCands: 50, AfterLength: 38, AfterCoverage: 24, Verified: 24, Matched: 6}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
	if !a.Monotone() {
		t.Fatalf("funnel should be monotone: %s", a)
	}
	bad := want
	bad.Matched = bad.Verified + 1
	if bad.Monotone() {
		t.Fatal("non-monotone funnel passed Monotone")
	}
	if !strings.Contains(a.String(), "matched 6") {
		t.Fatalf("String: %s", a)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("search")
	if tr.ID == "" || len(tr.ID) != 16 {
		t.Fatalf("trace ID %q", tr.ID)
	}
	done := tr.StartSpan("plan", -1)
	time.Sleep(time.Millisecond)
	done(nil)
	tr.Add(Span{Name: "partition", Partition: 3, Attempts: 2, Funnel: &Funnel{Matched: 1, Verified: 1, AfterCoverage: 1, AfterLength: 1, TrieCands: 1, Considered: 2}})
	tr.StartSpan("merge", -1)(errors.New("boom"))

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["plan"].Duration < time.Millisecond {
		t.Fatalf("plan duration %v", byName["plan"].Duration)
	}
	if byName["merge"].Err != "boom" || byName["merge"].Class != ClassApplication {
		t.Fatalf("merge span: %+v", byName["merge"])
	}
	if f := tr.Funnel(); f.Matched != 1 || f.Considered != 2 {
		t.Fatalf("trace funnel: %+v", f)
	}
	var b strings.Builder
	tr.Write(&b)
	for _, want := range []string{"trace " + tr.ID, "plan", "part=3", "attempts=2", `err[application]="boom"`, "total funnel"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("trace report missing %q:\n%s", want, b.String())
		}
	}
}

func TestTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %s", id)
		}
		seen[id] = true
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ClassNone},
		{context.DeadlineExceeded, ClassTimeout},
		{context.Canceled, ClassCancelled},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), ClassTimeout},
		{errors.New("dita: worker panic: index out of range"), ClassPanic},
		{errors.New("dita: overloaded"), ClassOverloaded},
		{errors.New("read tcp: connection reset by peer"), ClassTransport},
		{errors.New("unexpected EOF"), ClassTransport},
		{errors.New("dial tcp: connection refused"), ClassTransport},
		{errors.New("unknown dataset"), ClassApplication},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestServeEndpoints(t *testing.T) {
	r := New()
	r.Counter("served_total").Add(3)
	r.Histogram("lat_us").Observe(50)
	health := NewHealth()
	var readyMu sync.Mutex
	ready := errors.New("still dispatching")
	health.SetCheck("dispatch", func() error {
		readyMu.Lock()
		defer readyMu.Unlock()
		return ready
	})
	ln, err := Serve("127.0.0.1:0", r, health)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()

	get := func(path string) (int, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "served_total 3") {
		t.Fatalf("/metrics code=%d body=%s", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"served_total":3`) {
		t.Fatalf("/metrics.json code=%d body=%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "cmdline") {
		t.Fatalf("/debug/vars code=%d body=%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ code=%d", code)
	}
	// goroutine gauge func registered by Serve
	if s := r.Snapshot(); s.Gauges["process_goroutines"] <= 0 {
		t.Fatalf("process_goroutines = %d", s.Gauges["process_goroutines"])
	}

	// Liveness is unconditional; readiness tracks the registered checks:
	// 503 naming the failing check while it errors, 200 once it clears.
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz code=%d body=%s", code, body)
	}
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "dispatch: still dispatching") {
		t.Fatalf("/readyz while failing: code=%d body=%s", code, body)
	}
	readyMu.Lock()
	ready = nil
	readyMu.Unlock()
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz after clearing: code=%d body=%s", code, body)
	}
}
