package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
)

// NewMux builds an http.ServeMux exposing the registry plus health:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  full Snapshot as JSON
//	/debug/vars    standard expvar (plus the registry under "dita")
//	/debug/pprof/  standard net/http/pprof profiles
//	/healthz       liveness (always 200 while the process answers)
//	/readyz        readiness (503 while any check on h fails; nil h = ready)
func NewMux(r *Registry, h *Health) *http.ServeMux {
	mux := http.NewServeMux()
	h.register(mux)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
	r.PublishExpvar("dita")
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar publishes the registry's snapshot under the given expvar
// name. expvar panics on duplicate names, so repeat publications (tests,
// multiple serve calls) are deduplicated per process; the snapshot is
// computed lazily on each /debug/vars read, so later registries published
// under a taken name are the one change this cannot reflect.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return
	}
	expvarPublished[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Serve starts an HTTP server for the registry on addr in a background
// goroutine and returns the bound listener (so addr may use port 0). The
// caller owns shutdown via the returned listener's Close. h (may be nil)
// supplies the /readyz checks.
func Serve(addr string, r *Registry, h *Health) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.GaugeFunc("process_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	srv := &http.Server{Handler: NewMux(r, h)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
