package obs

// FunnelCounters is a pre-resolved bundle of registry counters, one per
// pruning-funnel stage, so hot paths record a whole funnel with a handful
// of atomic adds and no registry map lookups. A nil *FunnelCounters is a
// valid disabled bundle.
type FunnelCounters struct {
	partitions, relevant       *Counter
	considered, trieCands      *Counter
	afterLength, afterCoverage *Counter
	verified, matched          *Counter
}

// NewFunnelCounters resolves the stage counters under
// <prefix>funnel_<stage>_total. A nil registry yields a nil bundle.
func NewFunnelCounters(r *Registry, prefix string) *FunnelCounters {
	if r == nil {
		return nil
	}
	return &FunnelCounters{
		partitions:    r.Counter(prefix + "funnel_partitions_total"),
		relevant:      r.Counter(prefix + "funnel_relevant_total"),
		considered:    r.Counter(prefix + "funnel_considered_total"),
		trieCands:     r.Counter(prefix + "funnel_trie_cands_total"),
		afterLength:   r.Counter(prefix + "funnel_after_length_total"),
		afterCoverage: r.Counter(prefix + "funnel_after_coverage_total"),
		verified:      r.Counter(prefix + "funnel_verified_total"),
		matched:       r.Counter(prefix + "funnel_matched_total"),
	}
}

// Record adds one query's funnel to the stage counters.
func (c *FunnelCounters) Record(f Funnel) {
	if c == nil {
		return
	}
	c.partitions.Add(f.Partitions)
	c.relevant.Add(f.Relevant)
	c.considered.Add(f.Considered)
	c.trieCands.Add(f.TrieCands)
	c.afterLength.Add(f.AfterLength)
	c.afterCoverage.Add(f.AfterCoverage)
	c.verified.Add(f.Verified)
	c.matched.Add(f.Matched)
}
