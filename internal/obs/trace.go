package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Funnel is the pruning funnel of one query: how many candidates survive
// each filter stage of the DITA cascade. Stages are ordered; from
// Considered onward each stage is a subset of the previous, so counts are
// monotonically non-increasing (Monotone checks this). Funnels from
// per-partition work merge by field-wise addition.
type Funnel struct {
	// Partitions is the number of partitions in the dataset (or, for a
	// join, candidate edges before orientation).
	Partitions int64 `json:"partitions"`
	// Relevant is partitions surviving the global R-tree probe
	// (first/last-point MBR pruning, Lemma 4.1/4.2/4.3).
	Relevant int64 `json:"relevant"`
	// Considered is total trajectories inside relevant partitions — the
	// population the local indexes operate on.
	Considered int64 `json:"considered"`
	// TrieCands is candidates emitted by the trie (pivot) descent.
	TrieCands int64 `json:"trie_cands"`
	// AfterLength is candidates surviving the length lower bound.
	AfterLength int64 `json:"after_length"`
	// AfterCoverage is candidates surviving the MBR coverage filter
	// (Lemma 5.4).
	AfterCoverage int64 `json:"after_coverage"`
	// Verified is candidates that survived the cell lower bound
	// (Lemma 5.6) and ran the exact threshold DP.
	Verified int64 `json:"verified"`
	// Matched is final results within the threshold.
	Matched int64 `json:"matched"`
}

// Merge adds o into f field-wise.
func (f *Funnel) Merge(o Funnel) {
	f.Partitions += o.Partitions
	f.Relevant += o.Relevant
	f.Considered += o.Considered
	f.TrieCands += o.TrieCands
	f.AfterLength += o.AfterLength
	f.AfterCoverage += o.AfterCoverage
	f.Verified += o.Verified
	f.Matched += o.Matched
}

// Monotone reports whether the funnel narrows at every stage where the
// cascade guarantees a subset relation: Relevant ≤ Partitions and
// Considered ≥ TrieCands ≥ AfterLength ≥ AfterCoverage ≥ Verified ≥
// Matched.
func (f Funnel) Monotone() bool {
	return f.Relevant <= f.Partitions &&
		f.TrieCands <= f.Considered &&
		f.AfterLength <= f.TrieCands &&
		f.AfterCoverage <= f.AfterLength &&
		f.Verified <= f.AfterCoverage &&
		f.Matched <= f.Verified
}

// String renders the funnel as a one-line arrowed chain for logs.
func (f Funnel) String() string {
	return fmt.Sprintf("parts %d -> relevant %d -> considered %d -> trie %d -> length %d -> coverage %d -> verified %d -> matched %d",
		f.Partitions, f.Relevant, f.Considered, f.TrieCands, f.AfterLength, f.AfterCoverage, f.Verified, f.Matched)
}

// Span is one timed step of a query. Spans are recorded flat (no
// parent pointers): Name identifies the pipeline stage and
// Worker/Partition scope it, which is enough to reassemble the picture
// and keeps the wire format trivial.
type Span struct {
	Name      string        `json:"name"`
	Worker    string        `json:"worker,omitempty"`    // dnet worker address, if remote
	Partition int           `json:"partition"`           // -1 when not partition-scoped
	Attempts  int           `json:"attempts,omitempty"`  // RPC attempts incl. retries and failovers
	Start     time.Duration `json:"start"`               // offset from trace start
	Duration  time.Duration `json:"duration"`
	Remote    time.Duration `json:"remote,omitempty"`    // worker-measured time, when reported
	Err       string        `json:"err,omitempty"`
	Class     string        `json:"class,omitempty"`     // error class (see Classify)
	Funnel    *Funnel       `json:"funnel,omitempty"`
}

// Trace collects the spans of one query. Safe for concurrent Add from
// per-partition goroutines. A nil *Trace is a valid disabled trace.
type Trace struct {
	ID    string    `json:"id"`
	Op    string    `json:"op"` // "search", "knn", "join"
	Begin time.Time `json:"begin"`

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace for the named operation with a fresh ID.
func NewTrace(op string) *Trace {
	return &Trace{ID: NewTraceID(), Op: op, Begin: time.Now()}
}

// Add records a span. Start/Duration may be filled by the caller; when
// Start is zero and the trace has a begin time, it stays zero-offset.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// StartSpan returns a completion func that records the span with its
// measured duration. Usage: done := tr.StartSpan("plan", -1); ...; done(nil).
func (t *Trace) StartSpan(name string, partition int) func(err error) {
	if t == nil {
		return func(error) {}
	}
	begin := time.Now()
	return func(err error) {
		s := Span{
			Name:      name,
			Partition: partition,
			Start:     begin.Sub(t.Begin),
			Duration:  time.Since(begin),
		}
		if err != nil {
			s.Err = err.Error()
			s.Class = Classify(err)
		}
		t.Add(s)
	}
}

// Spans returns a copy of the recorded spans ordered by start offset.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Funnel sums the funnels of every span carrying one.
func (t *Trace) Funnel() Funnel {
	var f Funnel
	if t == nil {
		return f
	}
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].Funnel != nil {
			f.Merge(*t.spans[i].Funnel)
		}
	}
	t.mu.Unlock()
	return f
}

// Write renders the trace as an indented human-readable report.
func (t *Trace) Write(w io.Writer) {
	if t == nil {
		return
	}
	fmt.Fprintf(w, "trace %s op=%s\n", t.ID, t.Op)
	for _, s := range t.Spans() {
		fmt.Fprintf(w, "  %-28s", s.Name)
		if s.Partition >= 0 {
			fmt.Fprintf(w, " part=%-3d", s.Partition)
		}
		if s.Worker != "" {
			fmt.Fprintf(w, " worker=%s", s.Worker)
		}
		fmt.Fprintf(w, " +%s dur=%s", s.Start.Round(time.Microsecond), s.Duration.Round(time.Microsecond))
		if s.Remote > 0 {
			fmt.Fprintf(w, " remote=%s", s.Remote.Round(time.Microsecond))
		}
		if s.Attempts > 1 {
			fmt.Fprintf(w, " attempts=%d", s.Attempts)
		}
		if s.Err != "" {
			fmt.Fprintf(w, " err[%s]=%q", s.Class, s.Err)
		}
		fmt.Fprintln(w)
		if s.Funnel != nil {
			fmt.Fprintf(w, "    funnel: %s\n", s.Funnel)
		}
	}
	f := t.Funnel()
	if f != (Funnel{}) {
		fmt.Fprintf(w, "  total funnel: %s\n", f)
	}
}

var traceSeq atomic.Uint64

// NewTraceID returns a 16-hex-char ID: 8 random bytes XOR a process-local
// sequence so IDs stay unique even if the entropy source misbehaves.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint64(b[:], 0)
	}
	seq := traceSeq.Add(1)
	binary.BigEndian.PutUint64(b[:], binary.BigEndian.Uint64(b[:])^(seq<<32)^seq)
	return hex.EncodeToString(b[:])
}

// Error classes for skip reports and metrics labels. Coarse on purpose:
// these become metric name suffixes and must stay low-cardinality.
const (
	ClassTimeout     = "timeout"
	ClassCancelled   = "cancelled"
	ClassTransport   = "transport"
	ClassApplication = "application"
	ClassPanic       = "panic"
	ClassOverloaded  = "overloaded"
	ClassNone        = ""
)

// Classify maps an error to a coarse class for metrics and skip reports.
// It works on error strings where needed because errors that crossed an
// RPC boundary have lost their concrete types.
func Classify(err error) string {
	if err == nil {
		return ClassNone
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	if errors.Is(err, context.Canceled) {
		return ClassCancelled
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "context deadline exceeded") || strings.Contains(msg, "deadline"):
		return ClassTimeout
	case strings.Contains(msg, "context canceled") || strings.Contains(msg, "cancelled"):
		return ClassCancelled
	case strings.Contains(msg, "panic"):
		return ClassPanic
	case strings.Contains(msg, "overloaded"):
		return ClassOverloaded
	case strings.Contains(msg, "connection") || strings.Contains(msg, "EOF") ||
		strings.Contains(msg, "broken pipe") || strings.Contains(msg, "reset") ||
		strings.Contains(msg, "refused") || strings.Contains(msg, "unexpected"):
		return ClassTransport
	default:
		return ClassApplication
	}
}
