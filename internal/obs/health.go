package obs

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Health aggregates named readiness checks for the HTTP mux. Liveness
// (/healthz) is unconditional — the process answered, it is alive.
// Readiness (/readyz) runs every registered check and fails with 503
// when any of them errors, which is what load balancers and the serving
// layer's drain logic key on. A nil *Health is valid and always ready.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns an empty health tracker (always ready until checks
// are registered).
func NewHealth() *Health {
	return &Health{checks: map[string]func() error{}}
}

// SetCheck registers (or replaces) a named readiness check. The function
// must be cheap and concurrency-safe; it runs on every /readyz probe.
func (h *Health) SetCheck(name string, fn func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.checks[name] = fn
}

// Err runs every check and returns the first failure (by check name
// order, so probes are deterministic), or nil when ready.
func (h *Health) Err() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	fns := make([]func() error, len(names))
	sort.Strings(names)
	for i, name := range names {
		fns[i] = h.checks[name]
	}
	h.mu.Unlock()
	for i, fn := range fns {
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
	}
	return nil
}

// register mounts /healthz and /readyz on the mux. healthz always
// answers 200 "ok"; readyz answers 200 "ready" or 503 with the failing
// check's error.
func (h *Health) register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := h.Err(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "not ready: %v\n", err)
			return
		}
		fmt.Fprintln(w, "ready")
	})
}

// statusWriter captures the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// InstrumentHandler wraps an HTTP handler with request metrics under
// <name>_: requests_total, a latency histogram in microseconds, and
// outcome counters split by class (client_errors_total for 4xx,
// errors_total for 5xx). A nil registry returns the handler unchanged.
func InstrumentHandler(r *Registry, name string, h http.Handler) http.Handler {
	if r == nil {
		return h
	}
	requests := r.Counter(name + "_requests_total")
	clientErrs := r.Counter(name + "_client_errors_total")
	serverErrs := r.Counter(name + "_errors_total")
	latency := r.Histogram(name + "_latency_us")
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, req)
		latency.Observe(time.Since(start).Microseconds())
		switch {
		case sw.status >= 500:
			serverErrs.Inc()
		case sw.status >= 400:
			clientErrs.Inc()
		}
	})
}
