// Package obs is DITA's observability substrate: a zero-dependency
// metrics registry (atomic counters, gauges, bounded histograms with
// percentile estimates), per-query trace spans with a pruning-funnel
// summary, and HTTP surfacing (Prometheus text format, expvar, pprof).
//
// The paper's whole evaluation (Section 7, Figures 8–14) is built on
// observables — pruning power per filter stage, candidate counts, load
// skew, shuffle volume — that a running system otherwise cannot report.
// This package makes them first-class at runtime: every query path
// (search, kNN, join; in-process and network mode) records the funnel of
// candidates surviving each filter (Lemmas 4.1–4.3, 5.4, 5.6) and, when
// asked, a per-partition trace the dnet coordinator assembles across
// worker processes.
//
// Everything is allocation-light and nil-safe: a nil *Registry, *Counter,
// *Gauge, *Histogram or *Trace is a no-op, so hot paths hold the pointers
// unconditionally and instrumentation disappears when disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a settable instantaneous float64 value, for ratios
// (occupancy skew) that an int64 Gauge would truncate. Nil-safe.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for nil).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of exponential histogram buckets: bucket i
// holds values v with 2^(i-1) < v <= 2^i (bucket 0 holds v <= 1), so the
// range covers 1 .. 2^62 in fixed space. For microsecond latencies that
// is ~146 years of dynamic range; resolution is a factor of two, which is
// plenty for p50/p95/p99 trend lines.
const histBuckets = 63

// Histogram is a bounded, allocation-free histogram over non-negative
// int64 observations (typically microseconds). Nil-safe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// bucketUpper is the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return 1<<62 - 1 + 1<<62 // max int64
	}
	return int64(1) << uint(i)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		h.min.Store(v)
		h.max.Store(v)
		return
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Mean returns the arithmetic mean, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot summarizes the histogram. Percentiles are upper bounds of the
// bucket containing the quantile (within 2× of the true value), clamped
// to the observed max.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	var counts [histBuckets]int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	q := func(p float64) int64 {
		rank := int64(p * float64(s.Count))
		if rank < 1 {
			rank = 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum >= rank {
				u := bucketUpper(i)
				if u > s.Max {
					u = s.Max
				}
				if u < s.Min {
					u = s.Min
				}
				return u
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// Registry is a named collection of metrics. The zero value is not
// usable; create with New. A nil *Registry is a valid disabled registry:
// every lookup returns a nil metric whose methods no-op.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	gaugeFuncs  map[string]func() int64
	hists       map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		counters:    map[string]*Counter{},
		gauges:      map[string]*Gauge{},
		floatGauges: map[string]*FloatGauge{},
		gaugeFuncs:  map[string]func() int64{},
		hists:       map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.floatGauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.floatGauges[name]; g == nil {
		g = &FloatGauge{}
		r.floatGauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a callback-backed gauge, for values
// that live elsewhere (in-flight RPC count, goroutine count).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric. Gauge funcs are evaluated at call time.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:    map[string]int64{},
		Gauges:      map[string]int64{},
		FloatGauges: map[string]float64{},
		Histograms:  map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	floats := make(map[string]*FloatGauge, len(r.floatGauges))
	for k, v := range r.floatGauges {
		floats[k] = v
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range floats {
		s.FloatGauges[k] = v.Value()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Snapshot()
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, and histograms as summary
// quantiles. Metric names keep their registered form, which by convention
// here is already snake_case.
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", k, k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", k, k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.FloatGauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", k, k, s.FloatGauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(w, "# TYPE %s summary\n", k)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", k, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %d\n", k, h.P95)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", k, h.P99)
		fmt.Fprintf(w, "%s_sum %d\n", k, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", k, h.Count)
	}
}
