package pivot

import (
	"math/rand"
	"sort"
	"testing"

	"dita/internal/geom"
)

// Figure 1 trajectories.
var (
	t1 = []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 3, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}}
	t2 = []geom.Point{{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 4, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}}
	t3 = []geom.Point{{X: 1, Y: 1}, {X: 4, Y: 1}, {X: 4, Y: 3}, {X: 4, Y: 5}, {X: 4, Y: 6}, {X: 5, Y: 6}}
	t4 = []geom.Point{{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 3}, {X: 3, Y: 7}, {X: 7, Y: 5}}
	t5 = []geom.Point{{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 7}, {X: 3, Y: 3}, {X: 7, Y: 5}}
)

func pointsEqual(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPaperFigure1Pivots reproduces the pivot-point column of Figure 1
// (K = 2, neighbor distance strategy).
func TestPaperFigure1Pivots(t *testing.T) {
	cases := []struct {
		name string
		pts  []geom.Point
		want []geom.Point
	}{
		{"T1", t1, []geom.Point{{X: 3, Y: 2}, {X: 4, Y: 4}}},
		{"T2", t2, []geom.Point{{X: 4, Y: 2}, {X: 4, Y: 4}}},
		{"T3", t3, []geom.Point{{X: 4, Y: 1}, {X: 4, Y: 3}}},
		{"T4", t4, []geom.Point{{X: 3, Y: 3}, {X: 3, Y: 7}}},
		{"T5", t5, []geom.Point{{X: 3, Y: 7}, {X: 3, Y: 3}}},
	}
	for _, c := range cases {
		got := Points(c.pts, 2, Neighbor)
		if !pointsEqual(got, c.want) {
			t.Errorf("%s neighbor pivots = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPaperSection412Examples reproduces the Section 4.1.2 strategy
// comparison on T1: Inflection -> [(1,2),(4,5)], Neighbor -> [(3,2),(4,4)],
// First/Last -> [(1,2),(4,5)].
func TestPaperSection412Examples(t *testing.T) {
	if got := Points(t1, 2, Inflection); !pointsEqual(got, []geom.Point{{X: 1, Y: 2}, {X: 4, Y: 5}}) {
		t.Errorf("inflection pivots = %v", got)
	}
	if got := Points(t1, 2, Neighbor); !pointsEqual(got, []geom.Point{{X: 3, Y: 2}, {X: 4, Y: 4}}) {
		t.Errorf("neighbor pivots = %v", got)
	}
	if got := Points(t1, 2, FirstLast); !pointsEqual(got, []geom.Point{{X: 1, Y: 2}, {X: 4, Y: 5}}) {
		t.Errorf("first/last pivots = %v", got)
	}
}

func TestSelectProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		n := 2 + rng.Intn(20)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		for _, s := range []Strategy{Neighbor, Inflection, FirstLast} {
			k := rng.Intn(8)
			idx := Select(pts, k, s)
			// Never selects endpoints.
			for _, i := range idx {
				if i <= 0 || i >= n-1 {
					t.Fatalf("%v selected endpoint index %d of %d", s, i, n)
				}
			}
			// Strictly increasing, unique.
			if !sort.IntsAreSorted(idx) {
				t.Fatalf("indices not sorted: %v", idx)
			}
			for i := 1; i < len(idx); i++ {
				if idx[i] == idx[i-1] {
					t.Fatalf("duplicate index: %v", idx)
				}
			}
			// Correct count.
			want := k
			if interior := n - 2; want > interior {
				want = interior
			}
			if want < 0 {
				want = 0
			}
			if len(idx) != want {
				t.Fatalf("got %d pivots, want %d (n=%d k=%d)", len(idx), want, n, k)
			}
		}
	}
}

func TestIndexingPoints(t *testing.T) {
	ip := IndexingPoints(t1, 2, Neighbor)
	want := []geom.Point{{X: 1, Y: 1}, {X: 5, Y: 5}, {X: 3, Y: 2}, {X: 4, Y: 4}}
	if !pointsEqual(ip, want) {
		t.Errorf("IndexingPoints = %v, want %v", ip, want)
	}
	// Short trajectory: only endpoints.
	short := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	if got := IndexingPoints(short, 4, Neighbor); len(got) != 2 {
		t.Errorf("short trajectory indexing points = %v", got)
	}
}

func TestSelectDegenerate(t *testing.T) {
	if got := Select([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, 3, Neighbor); got != nil {
		t.Errorf("no interior points should yield nil, got %v", got)
	}
	if got := Select(t1, 0, Neighbor); got != nil {
		t.Errorf("k=0 should yield nil, got %v", got)
	}
	// Duplicate points (zero-length segments, degenerate angles) must not
	// panic and must still return valid indices.
	dup := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}, {X: 2, Y: 2}}
	if got := Select(dup, 2, Inflection); len(got) != 2 {
		t.Errorf("degenerate selection = %v", got)
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"neighbor": Neighbor, "Neighbor": Neighbor,
		"INFLECTION": Inflection, "first/last": FirstLast, "FirstLast": FirstLast,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	for _, s := range []Strategy{Neighbor, Inflection, FirstLast, Strategy(99)} {
		if s.String() == "" {
			t.Error("empty strategy name")
		}
	}
}
