// Package pivot implements DITA's pivot-point selection (Section 4.1.2).
//
// For a trajectory T, K interior points with the largest weights are chosen
// as pivots T_P ⊂ T \ {t1, tm}; together with the first and last point they
// form the indexing points T_I = (t1, tm, tP1, ..., tPK) that the local trie
// index is built on and that the PAMD/OPAMD lower bounds are computed from.
//
// Three weighting strategies are provided, matching the paper:
//
//   - Inflection: weight(b) = π − ∠abc for consecutive a, b, c — corners of
//     the route score high.
//   - Neighbor: weight(b) = dist(a, b) for consecutive a, b — points far
//     from their predecessor score high.
//   - FirstLast: weight(b) = max(dist(b, t1), dist(b, tm)) — points far
//     from both endpoints score high.
//
// The index and query pipeline are orthogonal to the strategy choice; the
// Figure 12 ablation compares them.
package pivot

import (
	"fmt"
	"math"
	"sort"

	"dita/internal/geom"
)

// Strategy selects pivot points for a trajectory.
type Strategy int

const (
	// Neighbor is the neighbor-distance strategy — the paper's best
	// performer (Appendix B, Figure 12) and the default.
	Neighbor Strategy = iota
	// Inflection is the inflection-point (turning-angle) strategy.
	Inflection
	// FirstLast is the first/last-distance strategy.
	FirstLast
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Neighbor:
		return "Neighbor"
	case Inflection:
		return "Inflection"
	case FirstLast:
		return "First/Last"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy maps a case-insensitive name to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch {
	case eq(name, "neighbor"):
		return Neighbor, nil
	case eq(name, "inflection"):
		return Inflection, nil
	case eq(name, "firstlast"), eq(name, "first/last"):
		return FirstLast, nil
	}
	return 0, fmt.Errorf("pivot: unknown strategy %q", name)
}

func eq(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Select returns the indices (into pts, strictly increasing) of up to k
// pivot points chosen from the interior pts[1:len-1] by the strategy.
// Fewer than k indices are returned when the interior is smaller than k.
func Select(pts []geom.Point, k int, s Strategy) []int {
	m := len(pts)
	interior := m - 2
	if k <= 0 || interior <= 0 {
		return nil
	}
	if k > interior {
		k = interior
	}
	type wi struct {
		w float64
		i int
	}
	ws := make([]wi, 0, interior)
	for i := 1; i < m-1; i++ {
		ws = append(ws, wi{weight(pts, i, s), i})
	}
	// Largest weights first; ties broken by position for determinism.
	sort.Slice(ws, func(a, b int) bool {
		if ws[a].w != ws[b].w {
			return ws[a].w > ws[b].w
		}
		return ws[a].i < ws[b].i
	})
	idx := make([]int, k)
	for i := 0; i < k; i++ {
		idx[i] = ws[i].i
	}
	sort.Ints(idx)
	return idx
}

// Points returns the pivot points themselves, in trajectory order.
func Points(pts []geom.Point, k int, s Strategy) []geom.Point {
	idx := Select(pts, k, s)
	out := make([]geom.Point, len(idx))
	for i, j := range idx {
		out[i] = pts[j]
	}
	return out
}

// IndexingPoints returns the paper's T_I sequence: (t1, tm, tP1, ..., tPK).
// The result always has length 2+min(k, len(pts)-2); trajectories shorter
// than k+2 points contribute fewer pivots.
func IndexingPoints(pts []geom.Point, k int, s Strategy) []geom.Point {
	m := len(pts)
	out := make([]geom.Point, 0, k+2)
	out = append(out, pts[0], pts[m-1])
	return append(out, Points(pts, k, s)...)
}

func weight(pts []geom.Point, i int, s Strategy) float64 {
	switch s {
	case Inflection:
		return math.Pi - angle(pts[i-1], pts[i], pts[i+1])
	case Neighbor:
		return pts[i-1].Dist(pts[i])
	case FirstLast:
		return math.Max(pts[i].Dist(pts[0]), pts[i].Dist(pts[len(pts)-1]))
	}
	return 0
}

// angle returns ∠abc in [0, π]: the interior angle at b of the polyline
// a-b-c. A straight continuation has angle π (weight 0); a U-turn has
// angle 0 (weight π).
func angle(a, b, c geom.Point) float64 {
	u := a.Sub(b)
	v := c.Sub(b)
	nu := math.Hypot(u.X, u.Y)
	nv := math.Hypot(v.X, v.Y)
	if nu == 0 || nv == 0 {
		return math.Pi // degenerate: treat as straight, weight 0
	}
	cos := (u.X*v.X + u.Y*v.Y) / (nu * nv)
	if cos > 1 {
		cos = 1
	} else if cos < -1 {
		cos = -1
	}
	return math.Acos(cos)
}
