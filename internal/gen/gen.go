// Package gen synthesizes trajectory workloads that stand in for the
// paper's proprietary datasets (Table 2: Beijing and Chengdu taxi traces,
// OSM GPS traces). The real traces are not redistributable, so the
// experiments run on seeded generators that reproduce the statistics the
// DITA algorithms are sensitive to: spatial locality (trips start near
// hot spots and move along a road-grid-like random walk), trip-length
// distributions (matching Table 2's Avg/Min/MaxLen), and skew.
//
// All generation is deterministic given the seed, and trajectory order is
// pre-shuffled so that Dataset.Sample(rate) yields an unbiased nested
// subsample, matching how the paper's scalability experiments sample.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"dita/internal/geom"
	"dita/internal/traj"
)

// Config parameterizes the generator. The zero value is not useful; start
// from a preset.
type Config struct {
	// Name labels the produced dataset.
	Name string
	// N is the number of trajectories.
	N int
	// Seed drives all randomness.
	Seed int64
	// Extent is the bounding region trips live in, in coordinate units
	// (the paper's coordinates are degrees; τ=0.001 is roughly 111 m).
	Extent geom.MBR
	// Hotspots is the number of trip-origin clusters (city centers, train
	// stations, airports). Origins are drawn from a mixture over these.
	Hotspots int
	// HotspotStd is the standard deviation of origins around a hotspot,
	// as a fraction of the extent's width. Taxi trips leave from dense
	// ranks (stations, malls), so the realistic value is small: many trips
	// share a first point to within the paper's τ range, which is exactly
	// what makes first-point-only filtering (the Simba adaptation)
	// unselective on real data.
	HotspotStd float64
	// MinLen, MaxLen bound trajectory lengths; MeanLen sets the mode of
	// the length distribution (a clamped geometric-ish law, which matches
	// the long-tailed trip lengths of taxi data).
	MinLen, MaxLen int
	MeanLen        float64
	// Step is the typical distance between consecutive points.
	Step float64
	// TurnPersistence in [0,1] is the probability of keeping the current
	// heading quantized to the grid (taxi traces mostly follow streets,
	// so headings persist and turns are right angles).
	TurnPersistence float64
	// GridAngles quantizes headings to multiples of π/2 when true,
	// emulating a street grid (Beijing/Chengdu); false gives free headings
	// (OSM's mixed-object traces).
	GridAngles bool
	// Routes is the number of shared route templates. Real taxi fleets
	// re-drive the same roads, so many trips are near-duplicates of a
	// popular route up to GPS noise — the property that makes the paper's
	// τ range (0.001–0.005, i.e. 111–555 m) produce non-trivial result
	// sets. 0 disables route sharing.
	Routes int
	// RouteFraction is the fraction of trips that follow a route template
	// instead of walking freely.
	RouteFraction float64
	// RouteNoise is the per-point Gaussian noise (std dev, in coordinate
	// units) applied when re-driving a template; ~3e-5 degrees ≈ 3 m GPS
	// error.
	RouteNoise float64
}

// BeijingLike mimics the Beijing taxi dataset scaled to n trajectories:
// short city trips (Table 2: AvgLen 22.2, MinLen 7, MaxLen 112) on a dense
// street grid.
func BeijingLike(n int, seed int64) Config {
	return Config{
		Name:            "BeijingLike",
		N:               n,
		Seed:            seed,
		Extent:          geom.MBR{Min: geom.Point{X: 116.0, Y: 39.6}, Max: geom.Point{X: 116.8, Y: 40.2}},
		Hotspots:        16,
		HotspotStd:      0.004,
		MinLen:          7,
		MaxLen:          112,
		MeanLen:         22.2,
		Step:            0.0015,
		TurnPersistence: 0.85,
		GridAngles:      true,
		Routes:          routeCount(n),
		RouteFraction:   0.65,
		RouteNoise:      3e-5,
	}
}

// ChengduLike mimics the Chengdu taxi dataset: longer trips (AvgLen 37.4,
// MinLen 10, MaxLen 209) over a slightly smaller extent, which makes the
// dataset denser and join workloads heavier — the property the paper's
// Chengdu experiments exercise.
func ChengduLike(n int, seed int64) Config {
	return Config{
		Name:            "ChengduLike",
		N:               n,
		Seed:            seed,
		Extent:          geom.MBR{Min: geom.Point{X: 103.9, Y: 30.5}, Max: geom.Point{X: 104.3, Y: 30.9}},
		Hotspots:        12,
		HotspotStd:      0.008,
		MinLen:          10,
		MaxLen:          209,
		MeanLen:         37.4,
		Step:            0.0012,
		TurnPersistence: 0.85,
		GridAngles:      true,
		Routes:          routeCount(n),
		RouteFraction:   0.65,
		RouteNoise:      3e-5,
	}
}

// OSMLike mimics the paper's OSM-synthesized traces: worldwide clusters of
// long trajectories of various moving objects (AvgLen ~114, MaxLen 3000),
// free headings. OSM(search) and OSM(join) differ only in cardinality.
func OSMLike(n int, seed int64) Config {
	return Config{
		Name:            "OSMLike",
		N:               n,
		Seed:            seed,
		Extent:          geom.MBR{Min: geom.Point{X: -180, Y: -60}, Max: geom.Point{X: 180, Y: 70}},
		Hotspots:        64,
		HotspotStd:      0.0003,
		MinLen:          9,
		MaxLen:          3000,
		MeanLen:         114,
		Step:            0.002,
		TurnPersistence: 0.7,
		GridAngles:      false,
		Routes:          routeCount(n),
		RouteFraction:   0.5,
		RouteNoise:      3e-5,
	}
}

// Generate produces the dataset described by the config.
func Generate(cfg Config) *traj.Dataset {
	if cfg.N < 0 {
		cfg.N = 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hot := make([]geom.Point, cfg.Hotspots)
	w := cfg.Extent.Max.X - cfg.Extent.Min.X
	h := cfg.Extent.Max.Y - cfg.Extent.Min.Y
	for i := range hot {
		hot[i] = geom.Point{
			X: cfg.Extent.Min.X + rng.Float64()*w,
			Y: cfg.Extent.Min.Y + rng.Float64()*h,
		}
	}
	// Route templates: canonical trips that followers re-drive with GPS
	// noise. Popularity is skewed (route j is chosen with weight 1/sqrt(j+1)).
	var routes [][]geom.Point
	if cfg.Routes > 0 && cfg.RouteFraction > 0 {
		routes = make([][]geom.Point, cfg.Routes)
		for i := range routes {
			routes[i] = walk(cfg, rng, hot, sampleLen(cfg, rng))
		}
	}
	trajs := make([]*traj.T, cfg.N)
	for i := range trajs {
		if len(routes) > 0 && rng.Float64() < cfg.RouteFraction {
			trajs[i] = &traj.T{ID: i, Points: followRoute(cfg, rng, routes[skewedIndex(rng, len(routes))])}
		} else {
			trajs[i] = &traj.T{ID: i, Points: walk(cfg, rng, hot, sampleLen(cfg, rng))}
		}
	}
	// A pathological config (NaN Step, zero-width Extent with NaN bounds)
	// can produce non-finite walks; drop any invalid trajectory here so bad
	// synthetic data can't poison index construction downstream — same
	// contract as ReadCSV's line validation.
	kept := trajs[:0]
	for _, t := range trajs {
		if t.Validate() == nil {
			kept = append(kept, t)
		}
	}
	trajs = kept
	// Shuffle so prefixes are unbiased samples; the shuffle is part of the
	// seeded generation and therefore deterministic.
	rng.Shuffle(len(trajs), func(i, j int) { trajs[i], trajs[j] = trajs[j], trajs[i] })
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("gen(%d)", cfg.N)
	}
	return traj.NewDataset(name, trajs)
}

// routeCount scales the number of shared route templates with the dataset
// size: one template per ~25 trips, clamped so tiny datasets still share a
// few routes and huge ones don't degenerate into all-unique routes.
func routeCount(n int) int {
	r := n / 25
	if r < 16 {
		r = 16
	}
	if r > 512 {
		r = 512
	}
	return r
}

// skewedIndex draws an index in [0, n) with probability proportional to
// 1/sqrt(i+1): popular routes attract more trips, but no single route
// dominates the dataset.
func skewedIndex(rng *rand.Rand, n int) int {
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Sqrt(float64(i+1))
	}
	u := rng.Float64() * total
	for i := 0; i < n; i++ {
		u -= 1 / math.Sqrt(float64(i+1))
		if u <= 0 {
			return i
		}
	}
	return n - 1
}

// followRoute re-drives a template: every point gets GPS-scale noise, and
// occasional points are dropped or duplicated (sampling jitter), so
// followers of one route are similar but not identical — DTW within a few
// times RouteNoise x length.
func followRoute(cfg Config, rng *rand.Rand, route []geom.Point) []geom.Point {
	minLen := cfg.MinLen
	if minLen < traj.MinLen {
		minLen = traj.MinLen
	}
	maxLen := cfg.MaxLen
	if maxLen < minLen {
		maxLen = minLen
	}
	dropsLeft := len(route) - minLen
	dupsLeft := maxLen - len(route)
	pts := make([]geom.Point, 0, len(route)+2)
	jitter := func(p geom.Point) geom.Point {
		q := geom.Point{X: p.X + rng.NormFloat64()*cfg.RouteNoise, Y: p.Y + rng.NormFloat64()*cfg.RouteNoise}
		return clamp(q, cfg.Extent)
	}
	for _, p := range route {
		r := rng.Float64()
		if r < 0.05 && dropsLeft > 0 {
			dropsLeft--
			continue // dropped sample
		}
		pts = append(pts, jitter(p))
		if r > 0.95 && dupsLeft > 0 {
			dupsLeft--
			pts = append(pts, jitter(p)) // duplicated sample
		}
	}
	for len(pts) < traj.MinLen {
		pts = append(pts, pts[len(pts)-1])
	}
	return pts
}

// walk generates a free road-grid random walk of n points.
func walk(cfg Config, rng *rand.Rand, hot []geom.Point, n int) []geom.Point {
	pts := make([]geom.Point, 0, n)
	// Origin: mixture over hotspots with Gaussian spread, clamped to the
	// extent; a small fraction of trips start anywhere (airport runs,
	// inter-city trips) to create the skew tail.
	var origin geom.Point
	w := cfg.Extent.Max.X - cfg.Extent.Min.X
	h := cfg.Extent.Max.Y - cfg.Extent.Min.Y
	if len(hot) > 0 && rng.Float64() < 0.9 {
		c := hot[rng.Intn(len(hot))]
		std := cfg.HotspotStd * w
		origin = geom.Point{X: c.X + rng.NormFloat64()*std, Y: c.Y + rng.NormFloat64()*std}
	} else {
		origin = geom.Point{X: cfg.Extent.Min.X + rng.Float64()*w, Y: cfg.Extent.Min.Y + rng.Float64()*h}
	}
	origin = clamp(origin, cfg.Extent)
	pts = append(pts, origin)

	heading := rng.Float64() * 2 * math.Pi
	if cfg.GridAngles {
		heading = quantize(heading)
	}
	cur := origin
	for len(pts) < n {
		if rng.Float64() > cfg.TurnPersistence {
			if cfg.GridAngles {
				// Turn left or right at an intersection.
				if rng.Intn(2) == 0 {
					heading += math.Pi / 2
				} else {
					heading -= math.Pi / 2
				}
			} else {
				heading += rng.NormFloat64() * 0.8
			}
		}
		step := cfg.Step * (0.5 + rng.Float64())
		cur = geom.Point{X: cur.X + step*math.Cos(heading), Y: cur.Y + step*math.Sin(heading)}
		if !cfg.Extent.Contains(cur) {
			// Bounce back toward the interior.
			heading += math.Pi
			if cfg.GridAngles {
				heading = quantize(heading)
			}
			cur = clamp(cur, cfg.Extent)
		}
		pts = append(pts, cur)
	}
	return pts
}

// sampleLen draws a trajectory length whose mean approximates cfg.MeanLen
// with a geometric tail, clamped to [MinLen, MaxLen] — the shape of trip
// lengths in taxi data (many short trips, a long tail).
func sampleLen(cfg Config, rng *rand.Rand) int {
	mean := cfg.MeanLen
	if mean < float64(cfg.MinLen) {
		mean = float64(cfg.MinLen)
	}
	// Exponential with the surplus mean on top of MinLen.
	surplus := mean - float64(cfg.MinLen)
	n := cfg.MinLen + int(rng.ExpFloat64()*surplus)
	if n < cfg.MinLen {
		n = cfg.MinLen
	}
	if n > cfg.MaxLen {
		n = cfg.MaxLen
	}
	if n < traj.MinLen {
		n = traj.MinLen
	}
	return n
}

func quantize(a float64) float64 {
	return math.Round(a/(math.Pi/2)) * (math.Pi / 2)
}

func clamp(p geom.Point, m geom.MBR) geom.Point {
	return geom.Point{
		X: math.Min(math.Max(p.X, m.Min.X), m.Max.X),
		Y: math.Min(math.Max(p.Y, m.Min.Y), m.Max.Y),
	}
}

// Queries draws k query trajectories from the dataset uniformly at random
// with the given seed — the paper "randomly sampled 1,000 queries from the
// dataset" (Section 7.2.1).
func Queries(d *traj.Dataset, k int, seed int64) []*traj.T {
	rng := rand.New(rand.NewSource(seed))
	if k > d.Len() {
		k = d.Len()
	}
	idx := rng.Perm(d.Len())[:k]
	qs := make([]*traj.T, k)
	for i, j := range idx {
		qs[i] = d.Trajs[j]
	}
	return qs
}
