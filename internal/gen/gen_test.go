package gen

import (
	"math"
	"testing"

	"dita/internal/traj"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(BeijingLike(50, 7))
	b := Generate(BeijingLike(50, 7))
	if a.Len() != b.Len() {
		t.Fatal("cardinality differs across runs")
	}
	for i := range a.Trajs {
		at, bt := a.Trajs[i], b.Trajs[i]
		if at.ID != bt.ID || at.Len() != bt.Len() {
			t.Fatalf("traj %d differs", i)
		}
		for j := range at.Points {
			if at.Points[j] != bt.Points[j] {
				t.Fatalf("point %d,%d differs", i, j)
			}
		}
	}
	c := Generate(BeijingLike(50, 8))
	same := true
	for i := range a.Trajs {
		if a.Trajs[i].Len() != c.Trajs[i].Len() {
			same = false
			break
		}
	}
	if same {
		// Extremely unlikely for 50 trajectories with different seeds.
		t.Error("different seeds produced identical length sequences")
	}
}

func TestStatsMatchTable2Shape(t *testing.T) {
	cases := []struct {
		cfg            Config
		wantAvg        float64
		minLen, maxLen int
	}{
		{BeijingLike(2000, 1), 22.2, 7, 112},
		{ChengduLike(2000, 1), 37.4, 10, 209},
		{OSMLike(500, 1), 114, 9, 3000},
	}
	for _, c := range cases {
		d := Generate(c.cfg)
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: invalid dataset: %v", c.cfg.Name, err)
		}
		s := d.Stats()
		if s.Cardinality != c.cfg.N {
			t.Errorf("%s: cardinality %d, want %d", c.cfg.Name, s.Cardinality, c.cfg.N)
		}
		if s.MinLen < c.minLen || s.MaxLen > c.maxLen {
			t.Errorf("%s: lengths [%d,%d] outside Table 2 bounds [%d,%d]",
				c.cfg.Name, s.MinLen, s.MaxLen, c.minLen, c.maxLen)
		}
		// Mean length within 30% of the Table 2 value: the generator
		// approximates the distribution, not the exact moments.
		if math.Abs(s.AvgLen-c.wantAvg)/c.wantAvg > 0.3 {
			t.Errorf("%s: AvgLen %.1f too far from Table 2's %.1f", c.cfg.Name, s.AvgLen, c.wantAvg)
		}
		// All points inside the configured extent.
		if !c.cfg.Extent.Covers(s.Extent) {
			t.Errorf("%s: points escape extent: %v vs %v", c.cfg.Name, s.Extent, c.cfg.Extent)
		}
	}
}

func TestSpatialLocality(t *testing.T) {
	// Consecutive points must be near each other (a road-following walk),
	// far from a uniform scatter.
	d := Generate(BeijingLike(200, 3))
	cfg := BeijingLike(200, 3)
	total, large := 0, 0
	for _, tr := range d.Trajs {
		for i := 1; i < tr.Len(); i++ {
			step := tr.Points[i-1].Dist(tr.Points[i])
			total++
			// Route followers may drop consecutive samples, multiplying
			// the apparent step; those must stay rare.
			if step > 3*cfg.Step {
				large++
			}
			if step > 8*cfg.Step {
				t.Fatalf("traj %d: step %v exceeds 8x configured step %v", tr.ID, step, cfg.Step)
			}
		}
	}
	if float64(large) > 0.02*float64(total) {
		t.Errorf("%d of %d steps exceed 3x the configured step", large, total)
	}
}

func TestHotspotSkew(t *testing.T) {
	// Origins must be clustered: the densest small cell should hold far
	// more than a uniform share of trip origins.
	cfg := BeijingLike(3000, 5)
	d := Generate(cfg)
	const grid = 10
	counts := make(map[[2]int]int)
	w := cfg.Extent.Max.X - cfg.Extent.Min.X
	h := cfg.Extent.Max.Y - cfg.Extent.Min.Y
	for _, tr := range d.Trajs {
		p := tr.First()
		gx := int((p.X - cfg.Extent.Min.X) / w * grid)
		gy := int((p.Y - cfg.Extent.Min.Y) / h * grid)
		if gx >= grid {
			gx = grid - 1
		}
		if gy >= grid {
			gy = grid - 1
		}
		counts[[2]int{gx, gy}]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(d.Len()) / (grid * grid)
	if float64(max) < 2*uniform {
		t.Errorf("no skew: densest cell %d vs uniform share %.1f", max, uniform)
	}
}

func TestQueries(t *testing.T) {
	d := Generate(BeijingLike(100, 2))
	qs := Queries(d, 10, 9)
	if len(qs) != 10 {
		t.Fatalf("got %d queries", len(qs))
	}
	qs2 := Queries(d, 10, 9)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("queries not deterministic")
		}
	}
	seen := map[int]bool{}
	for _, q := range qs {
		if seen[q.ID] {
			t.Fatal("duplicate query")
		}
		seen[q.ID] = true
	}
	if got := Queries(d, 1000, 1); len(got) != d.Len() {
		t.Errorf("oversampling should clamp to dataset size, got %d", len(got))
	}
}

func TestGenerateEdgeCases(t *testing.T) {
	if d := Generate(Config{N: 0, Name: "empty"}); d.Len() != 0 {
		t.Error("N=0 should produce an empty dataset")
	}
	if d := Generate(BeijingLike(-5, 1)); d.Len() != 0 {
		t.Error("negative N should produce an empty dataset")
	}
	// A config forcing minimal lengths still yields valid trajectories.
	cfg := BeijingLike(10, 1)
	cfg.MinLen, cfg.MaxLen, cfg.MeanLen = 1, 2, 1
	d := Generate(cfg)
	for _, tr := range d.Trajs {
		if tr.Len() < traj.MinLen {
			t.Fatalf("trajectory shorter than traj.MinLen: %d", tr.Len())
		}
	}
}

// Route sharing must produce genuinely similar trajectory pairs at the
// paper's τ scale — the property that makes the evaluation thresholds
// meaningful (real taxi fleets re-drive the same roads).
func TestRouteSharingProducesSimilarPairs(t *testing.T) {
	d := Generate(BeijingLike(500, 17))
	// Count pairs with nearly identical endpoints as a cheap proxy for
	// route-mates (full DTW here would be O(n^2) heavy).
	mates := 0
	for i := 0; i < d.Len(); i++ {
		for j := i + 1; j < d.Len(); j++ {
			a, b := d.Trajs[i], d.Trajs[j]
			if a.First().Dist(b.First()) < 5e-4 && a.Last().Dist(b.Last()) < 5e-4 {
				mates++
			}
		}
	}
	if mates < 100 {
		t.Errorf("only %d route-mate pairs among 500 trajectories; route sharing ineffective", mates)
	}
	// Disabling routes removes the effect.
	cfg := BeijingLike(500, 17)
	cfg.Routes = 0
	free := Generate(cfg)
	freeMates := 0
	for i := 0; i < free.Len(); i++ {
		for j := i + 1; j < free.Len(); j++ {
			a, b := free.Trajs[i], free.Trajs[j]
			if a.First().Dist(b.First()) < 5e-4 && a.Last().Dist(b.Last()) < 5e-4 {
				freeMates++
			}
		}
	}
	if freeMates >= mates {
		t.Errorf("route sharing had no effect: %d vs %d", mates, freeMates)
	}
}
