// Package admit is a query admission controller: a bounded
// concurrent-query semaphore with a configurable wait queue and queue
// timeout. The SQL layer (internal/sqlx) and the network-mode coordinator
// (internal/dnet) both gate query entry through it, so a burst of
// expensive queries degrades into fast, typed ErrOverloaded rejections
// instead of unbounded goroutine/memory growth — the role LocationSpark's
// query scheduler plays for skewed spatial workloads.
package admit

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrOverloaded reports that the controller is saturated: every execution
// slot is busy and the wait queue is full (or the queue wait timed out).
// Callers should surface it verbatim so clients can distinguish overload
// (retry later, shed load) from query failure.
var ErrOverloaded = errors.New("admit: overloaded: concurrent query limit and queue are full")

// Policy bounds concurrent query admission.
type Policy struct {
	// MaxConcurrent is the number of queries allowed to execute at once.
	// <= 0 disables admission control entirely.
	MaxConcurrent int
	// MaxQueue is the number of queries allowed to wait for a slot beyond
	// MaxConcurrent; a query arriving when the queue is full fails fast
	// with ErrOverloaded. Default 0 (no queue: at-capacity arrivals fail
	// immediately).
	MaxQueue int
	// QueueTimeout caps how long a queued query waits for a slot before
	// giving up with ErrOverloaded (default 1s).
	QueueTimeout time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxQueue < 0 {
		p.MaxQueue = 0
	}
	if p.QueueTimeout <= 0 {
		p.QueueTimeout = time.Second
	}
	return p
}

// Controller is the admission gate. A nil *Controller admits everything,
// so callers can hold one unconditionally and only construct it when a
// policy is configured.
type Controller struct {
	policy Policy
	slots  chan struct{}

	mu      sync.Mutex
	waiting int
}

// New builds a controller for the policy, or nil when the policy disables
// admission control (MaxConcurrent <= 0).
func New(p Policy) *Controller {
	if p.MaxConcurrent <= 0 {
		return nil
	}
	p = p.withDefaults()
	return &Controller{policy: p, slots: make(chan struct{}, p.MaxConcurrent)}
}

// Acquire admits one query, blocking in the queue when all slots are
// busy. It returns a release function that must be called exactly once
// when the query finishes (it is safe to defer immediately). Errors:
// ErrOverloaded when the queue is full or the queue wait times out,
// ctx.Err() when the caller's context ends first.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	// Fast path: a slot is free right now.
	select {
	case c.slots <- struct{}{}:
		return c.releaseFn(), nil
	default:
	}
	// Saturated: join the queue if it has room.
	c.mu.Lock()
	if c.waiting >= c.policy.MaxQueue {
		c.mu.Unlock()
		return nil, ErrOverloaded
	}
	c.waiting++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.waiting--
		c.mu.Unlock()
	}()
	t := time.NewTimer(c.policy.QueueTimeout)
	defer t.Stop()
	select {
	case c.slots <- struct{}{}:
		return c.releaseFn(), nil
	case <-t.C:
		return nil, ErrOverloaded
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *Controller) releaseFn() func() {
	var once sync.Once
	return func() { once.Do(func() { <-c.slots }) }
}

// InFlight reports the number of currently admitted queries.
func (c *Controller) InFlight() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

// Waiting reports the number of queries currently queued for a slot.
func (c *Controller) Waiting() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiting
}
