// Package admit is a query admission controller: a bounded
// concurrent-query semaphore with a configurable wait queue and queue
// timeout. The SQL layer (internal/sqlx) and the network-mode coordinator
// (internal/dnet) both gate query entry through it, so a burst of
// expensive queries degrades into fast, typed ErrOverloaded rejections
// instead of unbounded goroutine/memory growth — the role LocationSpark's
// query scheduler plays for skewed spatial workloads.
package admit

import (
	"context"
	"errors"
	"sync"
	"time"

	"dita/internal/obs"
)

// ErrOverloaded reports that the controller is saturated: every execution
// slot is busy and the wait queue is full (or the queue wait timed out).
// Callers should surface it verbatim so clients can distinguish overload
// (retry later, shed load) from query failure.
var ErrOverloaded = errors.New("admit: overloaded: concurrent query limit and queue are full")

// Policy bounds concurrent query admission.
type Policy struct {
	// MaxConcurrent is the number of queries allowed to execute at once.
	// <= 0 disables admission control entirely.
	MaxConcurrent int
	// MaxQueue is the number of queries allowed to wait for a slot beyond
	// MaxConcurrent; a query arriving when the queue is full fails fast
	// with ErrOverloaded. Default 0 (no queue: at-capacity arrivals fail
	// immediately).
	MaxQueue int
	// QueueTimeout caps how long a queued query waits for a slot before
	// giving up with ErrOverloaded (default 1s).
	QueueTimeout time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxQueue < 0 {
		p.MaxQueue = 0
	}
	if p.QueueTimeout <= 0 {
		p.QueueTimeout = time.Second
	}
	return p
}

// Controller is the admission gate. A nil *Controller admits everything,
// so callers can hold one unconditionally and only construct it when a
// policy is configured.
type Controller struct {
	policy Policy
	slots  chan struct{}
	met    *ctrlMetrics // nil until Instrument; nil disables recording

	mu      sync.Mutex
	waiting int
}

// ctrlMetrics holds the controller's pre-resolved registry handles.
type ctrlMetrics struct {
	admitted  *obs.Counter
	rejected  *obs.Counter
	cancelled *obs.Counter
	wait      *obs.Histogram
}

// Instrument registers the controller's state on a metrics registry under
// <prefix>_: queries_inflight and queries_waiting gauges (read on
// scrape), admitted/rejected/cancelled outcome counters, and a
// queue-wait histogram in microseconds (observed only for queries that
// actually queued — the fast path stays clock-free). Call before serving
// queries; a nil controller or registry is a no-op.
func (c *Controller) Instrument(r *obs.Registry, prefix string) {
	if c == nil || r == nil {
		return
	}
	r.GaugeFunc(prefix+"_queries_inflight", func() int64 { return int64(c.InFlight()) })
	r.GaugeFunc(prefix+"_queries_waiting", func() int64 { return int64(c.Waiting()) })
	c.met = &ctrlMetrics{
		admitted:  r.Counter(prefix + "_admitted_total"),
		rejected:  r.Counter(prefix + "_rejected_total"),
		cancelled: r.Counter(prefix + "_cancelled_total"),
		wait:      r.Histogram(prefix + "_queue_wait_us"),
	}
}

// New builds a controller for the policy, or nil when the policy disables
// admission control (MaxConcurrent <= 0).
func New(p Policy) *Controller {
	if p.MaxConcurrent <= 0 {
		return nil
	}
	p = p.withDefaults()
	return &Controller{policy: p, slots: make(chan struct{}, p.MaxConcurrent)}
}

// Acquire admits one query, blocking in the queue when all slots are
// busy. It returns a release function that must be called exactly once
// when the query finishes (it is safe to defer immediately). Errors:
// ErrOverloaded when the queue is full or the queue wait times out,
// ctx.Err() when the caller's context ends first.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	// Fast path: a slot is free right now.
	select {
	case c.slots <- struct{}{}:
		if c.met != nil {
			c.met.admitted.Inc()
		}
		return c.releaseFn(), nil
	default:
	}
	// Saturated: join the queue if it has room.
	c.mu.Lock()
	if c.waiting >= c.policy.MaxQueue {
		c.mu.Unlock()
		if c.met != nil {
			c.met.rejected.Inc()
		}
		return nil, ErrOverloaded
	}
	c.waiting++
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.waiting--
		c.mu.Unlock()
	}()
	var qStart time.Time
	if c.met != nil {
		qStart = time.Now()
	}
	t := time.NewTimer(c.policy.QueueTimeout)
	defer t.Stop()
	select {
	case c.slots <- struct{}{}:
		if c.met != nil {
			c.met.admitted.Inc()
			c.met.wait.Observe(time.Since(qStart).Microseconds())
		}
		return c.releaseFn(), nil
	case <-t.C:
		if c.met != nil {
			c.met.rejected.Inc()
		}
		return nil, ErrOverloaded
	case <-ctx.Done():
		if c.met != nil {
			c.met.cancelled.Inc()
		}
		return nil, ctx.Err()
	}
}

func (c *Controller) releaseFn() func() {
	var once sync.Once
	return func() { once.Do(func() { <-c.slots }) }
}

// InFlight reports the number of currently admitted queries.
func (c *Controller) InFlight() int {
	if c == nil {
		return 0
	}
	return len(c.slots)
}

// Waiting reports the number of queries currently queued for a slot.
func (c *Controller) Waiting() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiting
}
