package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dita/internal/obs"
)

// A nil controller (admission disabled) admits everything.
func TestNilController(t *testing.T) {
	var c *Controller
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatalf("nil controller rejected: %v", err)
	}
	release()
	if c.InFlight() != 0 || c.Waiting() != 0 {
		t.Fatal("nil controller reported activity")
	}
	if New(Policy{}) != nil || New(Policy{MaxConcurrent: -3}) != nil {
		t.Fatal("MaxConcurrent <= 0 should build a nil controller")
	}
}

// With limit N and queue Q, query N+Q+1 fails fast with ErrOverloaded —
// the acceptance shape from the issue.
func TestOverloadedFailsFast(t *testing.T) {
	c := New(Policy{MaxConcurrent: 2, MaxQueue: 1, QueueTimeout: time.Minute})
	var releases []func()
	for i := 0; i < 2; i++ {
		release, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("query %d rejected below the limit: %v", i, err)
		}
		releases = append(releases, release)
	}
	// Query 3 occupies the single queue slot.
	queued := make(chan error, 1)
	go func() {
		release, err := c.Acquire(context.Background())
		if err == nil {
			release()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return c.Waiting() == 1 })
	// Query 4 finds slots and queue full: immediate typed rejection.
	start := time.Now()
	_, err := c.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity acquire: err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("rejection took %v, want fail-fast", d)
	}
	// Releasing a slot admits the queued query.
	releases[0]()
	if err := <-queued; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	releases[1]()
}

// A queued query gives up with ErrOverloaded after QueueTimeout.
func TestQueueTimeout(t *testing.T) {
	c := New(Policy{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 50 * time.Millisecond})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = c.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire: err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond || d > 5*time.Second {
		t.Fatalf("queue wait was %v, want ~50ms", d)
	}
}

// A queued query whose context ends first returns the context error, not
// ErrOverloaded — the caller cancelled, the system is not to blame.
func TestQueueCancellation(t *testing.T) {
	c := New(Policy{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: time.Minute})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		done <- err
	}()
	waitFor(t, func() bool { return c.Waiting() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queue wait: err = %v, want context.Canceled", err)
	}
}

// Release is idempotent and frees the slot for the next query.
func TestReleaseIdempotent(t *testing.T) {
	c := New(Policy{MaxConcurrent: 1})
	release, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not free a slot twice
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after release", got)
	}
	r2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r2()
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("slot double-freed: second acquire err = %v", err)
	}
}

// Hammer the controller: InFlight never exceeds the limit.
func TestConcurrentAcquireBound(t *testing.T) {
	const limit = 4
	c := New(Policy{MaxConcurrent: limit, MaxQueue: 64, QueueTimeout: time.Minute})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := c.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			if n := c.InFlight(); n > limit {
				t.Errorf("InFlight = %d > limit %d", n, limit)
			}
			time.Sleep(time.Millisecond)
			release()
		}()
	}
	wg.Wait()
	if c.InFlight() != 0 || c.Waiting() != 0 {
		t.Fatalf("leaked: inflight=%d waiting=%d", c.InFlight(), c.Waiting())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Instrument must expose gauges for live state and counters for every
// admission outcome, with queue wait observed only for queued queries.
func TestInstrument(t *testing.T) {
	reg := obs.New()
	c := New(Policy{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 20 * time.Millisecond})
	c.Instrument(reg, "admit")
	var nilC *Controller
	nilC.Instrument(reg, "nil") // must not panic

	// Fast-path admit.
	rel1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["admit_queries_inflight"]; got != 1 {
		t.Fatalf("inflight gauge = %d, want 1", got)
	}
	// Queued admit: release the slot while a second query waits.
	done := make(chan error, 1)
	go func() {
		rel2, err := c.Acquire(context.Background())
		if err == nil {
			rel2()
		}
		done <- err
	}()
	for c.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	rel1()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Saturate to force a rejection: hold the slot, fill the queue, and
	// have a third query bounce off the full queue.
	rel3, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel3()
	wait := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(context.Background())
		if err == nil {
			rel()
		}
		wait <- err
	}()
	for c.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire = %v, want ErrOverloaded", err)
	}
	if err := <-wait; !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued acquire = %v, want timeout ErrOverloaded", err)
	}
	// Cancelled waiter.
	ctx, cancel := context.WithCancel(context.Background())
	cancelDone := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx)
		cancelDone <- err
	}()
	for c.Waiting() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-cancelDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v", err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["admit_admitted_total"]; got != 3 {
		t.Fatalf("admitted = %d, want 3", got)
	}
	if got := snap.Counters["admit_rejected_total"]; got != 2 {
		t.Fatalf("rejected = %d, want 2 (queue-full + timeout)", got)
	}
	if got := snap.Counters["admit_cancelled_total"]; got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
	if snap.Histograms["admit_queue_wait_us"].Count != 1 {
		t.Fatalf("queue_wait observations = %d, want 1 (only the queued admit)",
			snap.Histograms["admit_queue_wait_us"].Count)
	}
}
