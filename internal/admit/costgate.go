package admit

import (
	"context"
	"sync"
	"time"

	"dita/internal/obs"
)

// CostPolicy bounds admission by predicted query cost instead of a flat
// concurrency cap. Where Policy treats every query as weight 1, a
// CostGate charges each query its predicted execution cost (µs, from
// the serving layer's EWMA model) against a shared budget — ten cheap
// point lookups and one partition-spanning join are no longer the same
// load. This is the scheduler-style admission LocationSpark argues for:
// price queries before running them, shed by price.
type CostPolicy struct {
	// BudgetUS is the total predicted cost (µs) allowed to execute
	// concurrently. <= 0 disables the gate (Acquire admits everything).
	BudgetUS int64
	// MaxQueue bounds queries waiting for budget beyond the admitted
	// set; arrivals past it fail fast with ErrOverloaded. Default 0.
	MaxQueue int
	// QueueTimeout caps a queued query's wait before it gives up with
	// ErrOverloaded (default 1s).
	QueueTimeout time.Duration
}

func (p CostPolicy) withDefaults() CostPolicy {
	if p.MaxQueue < 0 {
		p.MaxQueue = 0
	}
	if p.QueueTimeout <= 0 {
		p.QueueTimeout = time.Second
	}
	return p
}

// costWaiter is one queued acquisition. granted flips under the gate's
// lock before ready is closed, so a waiter that times out concurrently
// with its grant can detect the race and give the budget back.
type costWaiter struct {
	cost    int64
	ready   chan struct{}
	granted bool
}

// CostGate admits queries against a concurrent predicted-cost budget.
// A nil *CostGate admits everything. Admission is work-conserving: a
// query whose predicted cost exceeds the whole budget still runs when
// nothing else is in flight (otherwise it could never run at all), and
// queued queries are served strictly FIFO so an expensive query at the
// head is not starved by cheap queries slipping past it.
type CostGate struct {
	policy CostPolicy
	met    *gateMetrics

	mu       sync.Mutex
	used     int64 // sum of admitted queries' predicted costs
	inflight int
	queue    []*costWaiter
}

type gateMetrics struct {
	admitted  *obs.Counter
	rejected  *obs.Counter
	cancelled *obs.Counter
	wait      *obs.Histogram
}

// NewCostGate builds a gate for the policy, or nil when the policy
// disables cost admission (BudgetUS <= 0).
func NewCostGate(p CostPolicy) *CostGate {
	if p.BudgetUS <= 0 {
		return nil
	}
	return &CostGate{policy: p.withDefaults()}
}

// Instrument registers the gate's state on a metrics registry under
// <prefix>_: cost_inflight_us / queries_inflight / queries_waiting
// gauges, admitted/rejected/cancelled counters, and a queue-wait
// histogram (µs, observed only for queries that queued).
func (g *CostGate) Instrument(r *obs.Registry, prefix string) {
	if g == nil || r == nil {
		return
	}
	r.GaugeFunc(prefix+"_cost_inflight_us", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.used
	})
	r.GaugeFunc(prefix+"_queries_inflight", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(g.inflight)
	})
	r.GaugeFunc(prefix+"_queries_waiting", func() int64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return int64(len(g.queue))
	})
	g.met = &gateMetrics{
		admitted:  r.Counter(prefix + "_admitted_total"),
		rejected:  r.Counter(prefix + "_rejected_total"),
		cancelled: r.Counter(prefix + "_cancelled_total"),
		wait:      r.Histogram(prefix + "_queue_wait_us"),
	}
}

// fitsLocked reports whether a query of the given cost may start now.
func (g *CostGate) fitsLocked(cost int64) bool {
	return g.used+cost <= g.policy.BudgetUS || g.inflight == 0
}

// Acquire admits one query of predicted cost (µs), queueing FIFO when
// the budget is spent. The returned release gives the budget back and
// must be called exactly once (safe to defer immediately). Errors:
// ErrOverloaded when the queue is full or the wait times out, ctx.Err()
// when the caller's context ends first. Costs < 1 are charged as 1 so
// an uninitialized model cannot admit unboundedly.
func (g *CostGate) Acquire(ctx context.Context, cost int64) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	if cost < 1 {
		cost = 1
	}
	g.mu.Lock()
	// FIFO: even with budget free, fall through to the queue when
	// someone is already waiting — admitting around them would starve
	// expensive queries at the head.
	if len(g.queue) == 0 && g.fitsLocked(cost) {
		g.used += cost
		g.inflight++
		g.mu.Unlock()
		if g.met != nil {
			g.met.admitted.Inc()
		}
		return g.releaseFn(cost), nil
	}
	if len(g.queue) >= g.policy.MaxQueue {
		g.mu.Unlock()
		if g.met != nil {
			g.met.rejected.Inc()
		}
		return nil, ErrOverloaded
	}
	w := &costWaiter{cost: cost, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()

	var qStart time.Time
	if g.met != nil {
		qStart = time.Now()
	}
	t := time.NewTimer(g.policy.QueueTimeout)
	defer t.Stop()
	select {
	case <-w.ready:
		if g.met != nil {
			g.met.admitted.Inc()
			g.met.wait.Observe(time.Since(qStart).Microseconds())
		}
		return g.releaseFn(cost), nil
	case <-t.C:
		if g.abandon(w) {
			if g.met != nil {
				g.met.rejected.Inc()
			}
			return nil, ErrOverloaded
		}
		// Granted in the same instant the timer fired: the budget is
		// charged, so give it back rather than run past the deadline.
		g.releaseFn(cost)()
		if g.met != nil {
			g.met.rejected.Inc()
		}
		return nil, ErrOverloaded
	case <-ctx.Done():
		if !g.abandon(w) {
			g.releaseFn(cost)()
		}
		if g.met != nil {
			g.met.cancelled.Inc()
		}
		return nil, ctx.Err()
	}
}

// abandon removes a waiter from the queue. It reports false when the
// waiter was already granted (no longer queued) — the caller then owns
// a charged admission it must release.
func (g *CostGate) abandon(w *costWaiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return false
	}
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			return true
		}
	}
	return false
}

func (g *CostGate) releaseFn(cost int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.used -= cost
			g.inflight--
			g.wakeLocked()
			g.mu.Unlock()
		})
	}
}

// wakeLocked grants queued waiters from the head while they fit.
func (g *CostGate) wakeLocked() {
	for len(g.queue) > 0 {
		w := g.queue[0]
		if !g.fitsLocked(w.cost) {
			return
		}
		g.queue = g.queue[1:]
		w.granted = true
		g.used += w.cost
		g.inflight++
		close(w.ready)
	}
}

// InFlight reports the number of currently admitted queries.
func (g *CostGate) InFlight() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// UsedUS reports the predicted cost currently charged against the
// budget.
func (g *CostGate) UsedUS() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// Waiting reports the number of queries queued for budget.
func (g *CostGate) Waiting() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.queue)
}
