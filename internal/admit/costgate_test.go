package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// A nil gate (cost admission disabled) admits everything.
func TestCostGateNil(t *testing.T) {
	var g *CostGate
	release, err := g.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatalf("nil gate rejected: %v", err)
	}
	release()
	if g.InFlight() != 0 || g.UsedUS() != 0 || g.Waiting() != 0 {
		t.Fatal("nil gate reported activity")
	}
	if NewCostGate(CostPolicy{}) != nil || NewCostGate(CostPolicy{BudgetUS: -5}) != nil {
		t.Fatal("BudgetUS <= 0 should build a nil gate")
	}
}

// Cheap queries pack into the budget; the one that would exceed it is
// shed once the queue is full.
func TestCostGateBudgetSheds(t *testing.T) {
	g := NewCostGate(CostPolicy{BudgetUS: 100, MaxQueue: 0})
	r1, err := g.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	r2, err := g.Acquire(context.Background(), 40)
	if err != nil {
		t.Fatalf("second acquire (exactly fills budget): %v", err)
	}
	if _, err := g.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget acquire with no queue: got %v, want ErrOverloaded", err)
	}
	if got := g.UsedUS(); got != 100 {
		t.Fatalf("UsedUS = %d, want 100", got)
	}
	r1()
	r1() // double release must not corrupt the budget
	r2()
	if g.UsedUS() != 0 || g.InFlight() != 0 {
		t.Fatalf("budget not returned: used=%d inflight=%d", g.UsedUS(), g.InFlight())
	}
}

// A query costing more than the entire budget still runs when the gate
// is idle — otherwise it could never run at all.
func TestCostGateOversizeAdmittedWhenIdle(t *testing.T) {
	g := NewCostGate(CostPolicy{BudgetUS: 10})
	release, err := g.Acquire(context.Background(), 1000)
	if err != nil {
		t.Fatalf("oversize query on idle gate: %v", err)
	}
	defer release()
	if g.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", g.InFlight())
	}
}

// Queued waiters are granted FIFO when budget frees up, and the wait
// observes the release rather than polling.
func TestCostGateQueueFIFO(t *testing.T) {
	g := NewCostGate(CostPolicy{BudgetUS: 100, MaxQueue: 2, QueueTimeout: 5 * time.Second})
	r1, err := g.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatalf("fill budget: %v", err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	acquireAsync := func(id int, cost int64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := g.Acquire(context.Background(), cost)
			if err != nil {
				t.Errorf("queued acquire %d: %v", id, err)
				return
			}
			order <- id
			release()
		}()
	}
	acquireAsync(1, 80)
	for g.Waiting() != 1 { // ensure 1 is queued before 2 arrives
		time.Sleep(time.Millisecond)
	}
	acquireAsync(2, 80)
	for g.Waiting() != 2 {
		time.Sleep(time.Millisecond)
	}
	// Query 2 must NOT slip past the head 1; they can't co-run
	// (80+80 > 100), so grants serialize in queue order.
	r1()
	wg.Wait()
	if first := <-order; first != 1 {
		t.Fatalf("grant order: got %d first, want 1 (FIFO)", first)
	}
}

// A queued waiter whose timeout expires is shed with ErrOverloaded and
// leaves the queue; a cancelled waiter returns its context error.
func TestCostGateQueueTimeoutAndCancel(t *testing.T) {
	g := NewCostGate(CostPolicy{BudgetUS: 10, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := g.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatalf("fill budget: %v", err)
	}
	defer release()

	if _, err := g.Acquire(context.Background(), 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue timeout: got %v, want ErrOverloaded", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx, 5)
		done <- err
	}()
	for g.Waiting() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: got %v, want context.Canceled", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("abandoned waiters left in queue: %d", g.Waiting())
	}
}

// Hammer the gate from many goroutines with mixed costs; the budget
// invariant (used == sum of admitted costs, never negative) must hold
// and everything must eventually be admitted or shed, never deadlock.
func TestCostGateConcurrentStress(t *testing.T) {
	g := NewCostGate(CostPolicy{BudgetUS: 500, MaxQueue: 64, QueueTimeout: 2 * time.Second})
	var wg sync.WaitGroup
	var admitted, shed int64
	var mu sync.Mutex
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cost := int64(1 + (i%10)*37)
			release, err := g.Acquire(context.Background(), cost)
			if err != nil {
				if !errors.Is(err, ErrOverloaded) {
					t.Errorf("unexpected error: %v", err)
				}
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			mu.Lock()
			admitted++
			mu.Unlock()
			release()
		}(i)
	}
	wg.Wait()
	if g.UsedUS() != 0 || g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: used=%d inflight=%d waiting=%d",
			g.UsedUS(), g.InFlight(), g.Waiting())
	}
	if admitted == 0 {
		t.Fatal("nothing admitted under stress")
	}
	t.Logf("admitted=%d shed=%d", admitted, shed)
}
