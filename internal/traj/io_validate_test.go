package traj

import (
	"strings"
	"testing"
)

// Non-finite coordinates parse fine as floats but would poison MBRs and
// STR partitioning far from the source line — ReadCSV must reject them at
// load, naming the offending line.
func TestReadCSVRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name, csv, wantLine string
	}{
		{"NaN", "1,0,0,1,1\n2,NaN,0,1,1\n", "line 2"},
		{"+Inf", "1,0,0,Inf,1\n", "line 1"},
		{"-Inf", "# header\n1,0,0,1,1\n2,0,-Inf,1,1\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.csv), "bad")
			if err == nil {
				t.Fatalf("%s coordinate accepted", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error %q does not name %s", err, tc.wantLine)
			}
		})
	}
}

// Too-short trajectories are rejected with the line number (the field
// count check catches them before Validate, but the contract is the
// same: bad line in, named error out).
func TestReadCSVRejectsTooShort(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("1,0,0,1,1\n7,5,5\n"), "short")
	if err == nil {
		t.Fatal("single-point trajectory accepted")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

// Valid input still round-trips.
func TestReadCSVValidRoundTrip(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("1,0,0,1,1\n\n# comment\n2,3,4,5,6,7,8\n"), "ok")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("parsed %d trajectories, want 2", d.Len())
	}
	for _, tr := range d.Trajs {
		if err := tr.Validate(); err != nil {
			t.Fatalf("trajectory %d invalid after load: %v", tr.ID, err)
		}
	}
}
