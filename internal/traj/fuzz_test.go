package traj

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV drives the CSV reader with arbitrary input: it must never
// panic, every dataset it accepts must satisfy Validate (no NaN/Inf
// coordinates, no trajectories below MinLen), and accepted datasets must
// round-trip through WriteCSV → ReadCSV unchanged. Run the corpus as a
// plain test with `go test`, or fuzz with `go test -fuzz=FuzzReadCSV`.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"1,0,0,1,1\n",
		"1,0,0,1,1,2,2\n2,5,5,6,6\n",
		"# comment\n\n1,0.5,0.5,1.5,1.5\n",
		"1,0,0,1,1\r\n2,3,3,4,4\r\n",
		"1,NaN,0,1,1\n",
		"1,Inf,0,1,1\n",
		"1,-Inf,0,1,1\n",
		"1,0,0\n",              // below MinLen
		"1,0,0,1\n",            // odd coordinate count
		"x,0,0,1,1\n",          // bad id
		"1,a,0,1,1\n",          // bad x
		"1,0,b,1,1\n",          // bad y
		"1, 0 , 0 , 1 , 1 \n",  // embedded whitespace
		"9007199254740993,1e308,-1e308,2,2\n",
		"1,1e309,0,1,1\n",      // overflow → +Inf
		"-5,-0.0,0.0,1,1\n",
		"1,0,0,1,1", // no trailing newline
		"",
		"#",
		"1,0,0,1,1\n1,0,0,1,1\n", // duplicate IDs are allowed at this layer
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return // keep fuzzing fast; the parser is line-local
		}
		d, err := ReadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if d == nil {
			t.Fatalf("ReadCSV(%q) returned nil dataset and nil error", input)
		}
		// Everything accepted must satisfy the dataset invariants the rest
		// of the engine (MBRs, STR partitioning, DP kernels) relies on.
		for _, tr := range d.Trajs {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadCSV(%q) accepted invalid trajectory %d: %v", input, tr.ID, err)
			}
			for _, p := range tr.Points {
				if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
					t.Fatalf("ReadCSV(%q) accepted non-finite coordinate in %d", input, tr.ID)
				}
			}
		}
		// Round-trip: what WriteCSV emits must parse back to the same data.
		// (%g prints shortest-exact float representations, so coordinates
		// survive bit-for-bit.)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, d); err != nil {
			t.Fatalf("WriteCSV failed on accepted dataset: %v", err)
		}
		d2, err := ReadCSV(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round-trip ReadCSV failed: %v", err)
		}
		if len(d2.Trajs) != len(d.Trajs) {
			t.Fatalf("round-trip lost trajectories: %d != %d", len(d2.Trajs), len(d.Trajs))
		}
		for i, tr := range d.Trajs {
			tr2 := d2.Trajs[i]
			if tr2.ID != tr.ID || len(tr2.Points) != len(tr.Points) {
				t.Fatalf("round-trip changed trajectory %d", tr.ID)
			}
			for j, p := range tr.Points {
				if tr2.Points[j] != p {
					t.Fatalf("round-trip changed point %d of trajectory %d: %v != %v",
						j, tr.ID, tr2.Points[j], p)
				}
			}
		}
	})
}
