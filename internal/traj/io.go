package traj

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dita/internal/geom"
)

// The CSV interchange format is one trajectory per line:
//
//	id,x1,y1,x2,y2,...
//
// which matches how taxi-trace datasets are commonly distributed after
// per-trip grouping.

// WriteCSV writes the dataset in the one-line-per-trajectory CSV format.
func WriteCSV(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range d.Trajs {
		if _, err := fmt.Fprintf(bw, "%d", t.ID); err != nil {
			return err
		}
		for _, p := range t.Points {
			if _, err := fmt.Fprintf(bw, ",%g,%g", p.X, p.Y); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the one-line-per-trajectory CSV format. Blank lines and
// lines starting with '#' are skipped.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var trajs []*T
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("traj: line %d: %w", lineno, err)
		}
		trajs = append(trajs, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewDataset(name, trajs), nil
}

func parseCSVLine(line string) (*T, error) {
	fields := strings.Split(line, ",")
	if len(fields) < 1+2*MinLen {
		return nil, fmt.Errorf("too few fields (%d)", len(fields))
	}
	if (len(fields)-1)%2 != 0 {
		return nil, fmt.Errorf("odd number of coordinates (%d fields)", len(fields))
	}
	id, err := strconv.Atoi(strings.TrimSpace(fields[0]))
	if err != nil {
		return nil, fmt.Errorf("bad id %q: %w", fields[0], err)
	}
	t := &T{ID: id, Points: make([]geom.Point, 0, (len(fields)-1)/2)}
	for i := 1; i < len(fields); i += 2 {
		x, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad x %q: %w", fields[i], err)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[i+1]), 64)
		if err != nil {
			return nil, fmt.Errorf("bad y %q: %w", fields[i+1], err)
		}
		t.Points = append(t.Points, geom.Point{X: x, Y: y})
	}
	// ParseFloat happily accepts "NaN" and "Inf"; a single such coordinate
	// would poison MBRs and STR partitioning far from this line, so reject
	// it here where the offending line number is still known (Validate also
	// catches zero/one-point trajectories the field-count check lets by).
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
