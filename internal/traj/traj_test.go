package traj

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dita/internal/geom"
)

func mk(id int, pts ...geom.Point) *T { return &T{ID: id, Points: pts} }

func TestTrajBasics(t *testing.T) {
	tr := mk(7, geom.Point{X: 1, Y: 1}, geom.Point{X: 2, Y: 3}, geom.Point{X: 0, Y: 5})
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.First() != (geom.Point{X: 1, Y: 1}) || tr.Last() != (geom.Point{X: 0, Y: 5}) {
		t.Error("First/Last wrong")
	}
	want := geom.MBR{Min: geom.Point{X: 0, Y: 1}, Max: geom.Point{X: 2, Y: 5}}
	if tr.MBR() != want {
		t.Errorf("MBR = %v, want %v", tr.MBR(), want)
	}
	if tr.Bytes() != 16*3+8 {
		t.Errorf("Bytes = %d", tr.Bytes())
	}
	c := tr.Clone()
	c.Points[0].X = 99
	if tr.Points[0].X == 99 {
		t.Error("Clone must deep-copy points")
	}
}

func TestValidate(t *testing.T) {
	if err := mk(1, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}).Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	if err := mk(1, geom.Point{X: 0, Y: 0}).Validate(); err == nil {
		t.Error("too-short trajectory accepted")
	}
	if err := mk(1, geom.Point{X: math.NaN(), Y: 0}, geom.Point{X: 1, Y: 1}).Validate(); err == nil {
		t.Error("NaN coordinate accepted")
	}
	if err := mk(1, geom.Point{X: math.Inf(1), Y: 0}, geom.Point{X: 1, Y: 1}).Validate(); err == nil {
		t.Error("Inf coordinate accepted")
	}
	var nilT *T
	if err := nilT.Validate(); err == nil {
		t.Error("nil trajectory accepted")
	}
}

func TestDatasetStats(t *testing.T) {
	d := NewDataset("x", []*T{
		mk(0, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),
		mk(1, geom.Point{X: 2, Y: 2}, geom.Point{X: 3, Y: 3}, geom.Point{X: 4, Y: 4}, geom.Point{X: 5, Y: 5}),
	})
	s := d.Stats()
	if s.Cardinality != 2 || s.MinLen != 2 || s.MaxLen != 4 || s.TotalPoints != 6 {
		t.Errorf("stats = %+v", s)
	}
	if math.Abs(s.AvgLen-3) > 1e-12 {
		t.Errorf("AvgLen = %v", s.AvgLen)
	}
	if !s.Extent.Contains(geom.Point{X: 5, Y: 5}) || !s.Extent.Contains(geom.Point{X: 0, Y: 0}) {
		t.Error("extent wrong")
	}
	empty := NewDataset("e", nil).Stats()
	if empty.Cardinality != 0 || empty.AvgLen != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestSample(t *testing.T) {
	trajs := make([]*T, 100)
	for i := range trajs {
		trajs[i] = mk(i, geom.Point{X: float64(i), Y: 0}, geom.Point{X: float64(i), Y: 1})
	}
	d := NewDataset("s", trajs)
	if got := d.Sample(0.25).Len(); got != 25 {
		t.Errorf("Sample(0.25) = %d trajs", got)
	}
	if got := d.Sample(1.0); got != d {
		t.Error("Sample(1.0) should return the dataset itself")
	}
	if got := d.Sample(0).Len(); got != 0 {
		t.Errorf("Sample(0) = %d", got)
	}
	// Nested prefixes: sample(0.5) contains sample(0.25).
	a, b := d.Sample(0.25), d.Sample(0.5)
	for i, tr := range a.Trajs {
		if b.Trajs[i] != tr {
			t.Fatal("samples are not nested prefixes")
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	good := NewDataset("g", []*T{
		mk(0, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),
		mk(1, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),
	})
	if err := good.Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	dup := NewDataset("d", []*T{
		mk(3, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),
		mk(3, geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 1}),
	})
	if err := dup.Validate(); err == nil {
		t.Error("duplicate ids accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := NewDataset("rt", []*T{
		mk(0, geom.Point{X: 0.5, Y: -1.25}, geom.Point{X: 1, Y: 1}),
		mk(42, geom.Point{X: 2, Y: 2}, geom.Point{X: 3, Y: 3}, geom.Point{X: 4.125, Y: -4}),
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost trajectories: %d != %d", got.Len(), d.Len())
	}
	for i, tr := range got.Trajs {
		want := d.Trajs[i]
		if tr.ID != want.ID || tr.Len() != want.Len() {
			t.Fatalf("traj %d mismatch: %+v vs %+v", i, tr, want)
		}
		for j := range tr.Points {
			if tr.Points[j] != want.Points[j] {
				t.Fatalf("point mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"notanum,1,2,3,4", // bad id
		"1,1,2,3",         // odd coords
		"1,1,2",           // too few fields
		"1,x,2,3,4",       // bad x
		"1,1,y,3,4",       // bad y
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
	// Comments and blank lines are fine.
	d, err := ReadCSV(strings.NewReader("# comment\n\n1,0,0,1,1\n"), "ok")
	if err != nil || d.Len() != 1 {
		t.Errorf("comment handling: %v, %d", err, d.Len())
	}
}
