// Package roadnet implements the paper's second stated future-work item:
// "an extension of DITA by considering road networks". It provides
//
//   - a road network graph (nodes with coordinates, weighted undirected
//     edges) with a grid constructor for city-like street layouts,
//   - map matching: snapping a GPS trajectory to a node path on the
//     network (nearest-node snapping with consecutive-duplicate
//     collapsing — the standard lightweight matcher),
//   - network shortest-path distances (Dijkstra, memoized per source),
//   - NetworkDTW: Definition 2.2's dynamic program with the point-to-point
//     Euclidean distance replaced by the network distance between matched
//     nodes, so two trips are similar only if they traverse similar roads
//     (a river between two parallel streets separates them even when they
//     are Euclidean-close).
package roadnet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"dita/internal/geom"
	"dita/internal/traj"
)

// NodeID identifies a network node.
type NodeID int

// Network is a weighted undirected road graph.
type Network struct {
	nodes []geom.Point
	adj   [][]halfEdge

	mu    sync.Mutex
	memo  map[NodeID][]float64 // source -> all shortest path lengths
	cells map[[2]int][]NodeID  // snap acceleration grid
	cell  float64
}

type halfEdge struct {
	to NodeID
	w  float64
}

// New creates an empty network.
func New() *Network {
	return &Network{memo: map[NodeID][]float64{}}
}

// AddNode adds a node at p and returns its id.
func (n *Network) AddNode(p geom.Point) NodeID {
	n.nodes = append(n.nodes, p)
	n.adj = append(n.adj, nil)
	n.cells = nil // invalidate the snap grid
	return NodeID(len(n.nodes) - 1)
}

// AddEdge connects a and b bidirectionally with the given weight (the
// Euclidean length when w <= 0).
func (n *Network) AddEdge(a, b NodeID, w float64) error {
	if int(a) >= len(n.nodes) || int(b) >= len(n.nodes) || a < 0 || b < 0 {
		return fmt.Errorf("roadnet: edge endpoints out of range")
	}
	if w <= 0 {
		w = n.nodes[a].Dist(n.nodes[b])
	}
	n.adj[a] = append(n.adj[a], halfEdge{b, w})
	n.adj[b] = append(n.adj[b], halfEdge{a, w})
	n.mu.Lock()
	n.memo = map[NodeID][]float64{} // distances changed
	n.mu.Unlock()
	return nil
}

// Nodes returns the node count.
func (n *Network) Nodes() int { return len(n.nodes) }

// NodePoint returns a node's coordinates.
func (n *Network) NodePoint(id NodeID) geom.Point { return n.nodes[id] }

// Grid builds a rows×cols street grid over the extent, connecting each
// intersection to its horizontal and vertical neighbors — the Manhattan
// layout the generator's taxi walks follow.
func Grid(extent geom.MBR, rows, cols int) *Network {
	n := New()
	if rows < 2 {
		rows = 2
	}
	if cols < 2 {
		cols = 2
	}
	dx := (extent.Max.X - extent.Min.X) / float64(cols-1)
	dy := (extent.Max.Y - extent.Min.Y) / float64(rows-1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			n.AddNode(geom.Point{X: extent.Min.X + float64(c)*dx, Y: extent.Min.Y + float64(r)*dy})
		}
	}
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				n.AddEdge(id(r, c), id(r, c+1), 0)
			}
			if r+1 < rows {
				n.AddEdge(id(r, c), id(r+1, c), 0)
			}
		}
	}
	return n
}

// RemoveEdge deletes the connection between a and b (both directions).
// It returns false when no such edge exists.
func (n *Network) RemoveEdge(a, b NodeID) bool {
	removed := false
	filter := func(from, to NodeID) {
		out := n.adj[from][:0]
		for _, e := range n.adj[from] {
			if e.to != to {
				out = append(out, e)
			} else {
				removed = true
			}
		}
		n.adj[from] = out
	}
	filter(a, b)
	filter(b, a)
	if removed {
		n.mu.Lock()
		n.memo = map[NodeID][]float64{}
		n.mu.Unlock()
	}
	return removed
}

// Nearest returns the node closest to p.
func (n *Network) Nearest(p geom.Point) NodeID {
	if len(n.nodes) == 0 {
		return -1
	}
	n.buildSnapGrid()
	// Search the point's cell ring outward until a candidate is found and
	// no closer cell remains.
	cx, cy := int(math.Floor(p.X/n.cell)), int(math.Floor(p.Y/n.cell))
	best, bestD := NodeID(-1), math.Inf(1)
	for ring := 0; ring < 1<<20; ring++ {
		found := false
		for dx := -ring; dx <= ring; dx++ {
			for dy := -ring; dy <= ring; dy++ {
				if abs(dx) != ring && abs(dy) != ring {
					continue // interior already scanned
				}
				for _, id := range n.cells[[2]int{cx + dx, cy + dy}] {
					found = true
					if d := n.nodes[id].SqDist(p); d < bestD {
						bestD, best = d, id
					}
				}
			}
		}
		// Any node in a farther ring is at least (ring-1)*cell away.
		if best >= 0 && float64(ring-1)*n.cell > math.Sqrt(bestD) {
			break
		}
		if !found && best >= 0 {
			break
		}
		if ring > len(n.nodes) { // degenerate fallback
			break
		}
	}
	if best < 0 {
		// Fallback linear scan (extremely sparse grids).
		for i, q := range n.nodes {
			if d := q.SqDist(p); d < bestD {
				bestD, best = d, NodeID(i)
			}
		}
	}
	return best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func (n *Network) buildSnapGrid() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cells != nil {
		return
	}
	// Cell size: extent / sqrt(nodes), a near-constant per-cell count.
	m := geom.MBROf(n.nodes)
	w := math.Max(m.Max.X-m.Min.X, m.Max.Y-m.Min.Y)
	if w <= 0 {
		w = 1
	}
	n.cell = w / math.Max(1, math.Sqrt(float64(len(n.nodes))))
	n.cells = map[[2]int][]NodeID{}
	for i, p := range n.nodes {
		key := [2]int{int(math.Floor(p.X / n.cell)), int(math.Floor(p.Y / n.cell))}
		n.cells[key] = append(n.cells[key], NodeID(i))
	}
}

// MapMatch snaps each trajectory point to its nearest node and collapses
// consecutive duplicates, returning the node path.
func (n *Network) MapMatch(t *traj.T) []NodeID {
	var path []NodeID
	for _, p := range t.Points {
		id := n.Nearest(p)
		if id < 0 {
			continue
		}
		if len(path) == 0 || path[len(path)-1] != id {
			path = append(path, id)
		}
	}
	return path
}

// Distance returns the network shortest-path distance between two nodes
// (+Inf when disconnected). Per-source results are memoized, so repeated
// queries from the same node (as NetworkDTW issues) cost O(1) after the
// first Dijkstra.
func (n *Network) Distance(a, b NodeID) float64 {
	if a < 0 || b < 0 || int(a) >= len(n.nodes) || int(b) >= len(n.nodes) {
		return math.Inf(1)
	}
	if a == b {
		return 0
	}
	n.mu.Lock()
	dists, ok := n.memo[a]
	n.mu.Unlock()
	if !ok {
		dists = n.dijkstra(a)
		n.mu.Lock()
		n.memo[a] = dists
		n.mu.Unlock()
	}
	return dists[b]
}

// dijkstra computes all shortest-path lengths from src.
func (n *Network) dijkstra(src NodeID) []float64 {
	dist := make([]float64, len(n.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &nodeHeap{{id: src, d: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if cur.d > dist[cur.id] {
			continue
		}
		for _, e := range n.adj[cur.id] {
			if nd := cur.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, nodeDist{id: e.to, d: nd})
			}
		}
	}
	return dist
}

type nodeDist struct {
	id NodeID
	d  float64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// NetworkDTW computes DTW between two node paths with the network
// shortest-path distance as the point distance. Empty paths yield +Inf.
func (n *Network) NetworkDTW(a, b []NodeID) float64 {
	m, k := len(a), len(b)
	if m == 0 || k == 0 {
		return math.Inf(1)
	}
	inf := math.Inf(1)
	prev := make([]float64, k+1)
	cur := make([]float64, k+1)
	for j := 0; j <= k; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		for j := 1; j <= k; j++ {
			d := n.Distance(a[i-1], b[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[k]
}

// TrajectoryDTW map-matches both trajectories and returns their
// NetworkDTW.
func (n *Network) TrajectoryDTW(a, b *traj.T) float64 {
	return n.NetworkDTW(n.MapMatch(a), n.MapMatch(b))
}

// Searcher answers network-DTW threshold searches: trajectories are
// map-matched at index time, and a query is filtered with the network
// endpoint lower bound (NetworkDTW includes the aligned endpoint node
// distances) before the exact DP runs.
type Searcher struct {
	net   *Network
	trajs []*traj.T
	paths [][]NodeID
}

// NewSearcher map-matches and indexes the trajectories on the network.
func NewSearcher(net *Network, trajs []*traj.T) *Searcher {
	s := &Searcher{net: net, trajs: trajs, paths: make([][]NodeID, len(trajs))}
	for i, t := range trajs {
		s.paths[i] = net.MapMatch(t)
	}
	return s
}

// SearchResult is one network-similarity answer.
type SearchResult struct {
	Traj     *traj.T
	Distance float64
}

// Search returns all indexed trajectories whose NetworkDTW to q's matched
// path is at most tau, ascending by id.
func (s *Searcher) Search(q *traj.T, tau float64) []SearchResult {
	qp := s.net.MapMatch(q)
	if len(qp) == 0 {
		return nil
	}
	var out []SearchResult
	for i, t := range s.trajs {
		p := s.paths[i]
		if len(p) == 0 {
			continue
		}
		// Endpoint lower bound: the network DTW sums at least the aligned
		// first-to-first and (when both paths have >= 2 nodes) last-to-last
		// node distances.
		lb := s.net.Distance(p[0], qp[0])
		if len(p) > 1 && len(qp) > 1 {
			lb += s.net.Distance(p[len(p)-1], qp[len(qp)-1])
		}
		if lb > tau {
			continue
		}
		if d := s.net.NetworkDTW(p, qp); d <= tau {
			out = append(out, SearchResult{Traj: t, Distance: d})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	return out
}
