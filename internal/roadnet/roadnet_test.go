package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"dita/internal/geom"
	"dita/internal/traj"
)

func unitGrid(rows, cols int) *Network {
	return Grid(geom.MBR{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: float64(cols - 1), Y: float64(rows - 1)}}, rows, cols)
}

func TestGridConstruction(t *testing.T) {
	n := unitGrid(3, 4)
	if n.Nodes() != 12 {
		t.Fatalf("nodes = %d, want 12", n.Nodes())
	}
	// Interior node (r=1,c=1) has 4 neighbors; corner has 2.
	if got := len(n.adj[1*4+1]); got != 4 {
		t.Errorf("interior degree = %d", got)
	}
	if got := len(n.adj[0]); got != 2 {
		t.Errorf("corner degree = %d", got)
	}
}

// Grid shortest paths equal Manhattan distance (unit edges).
func TestDijkstraManhattan(t *testing.T) {
	n := unitGrid(5, 5)
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		r1, c1 := rng.Intn(5), rng.Intn(5)
		r2, c2 := rng.Intn(5), rng.Intn(5)
		a, b := NodeID(r1*5+c1), NodeID(r2*5+c2)
		want := float64(abs(r1-r2) + abs(c1-c2))
		if got := n.Distance(a, b); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Distance(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
	if d := n.Distance(3, 3); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d := n.Distance(-1, 3); !math.IsInf(d, 1) {
		t.Errorf("invalid node distance = %v", d)
	}
}

// Removing a bridge disconnects and the distance becomes +Inf; network
// distances respect barriers Euclidean distances ignore.
func TestRemoveEdgeDisconnects(t *testing.T) {
	n := New()
	a := n.AddNode(geom.Point{X: 0, Y: 0})
	b := n.AddNode(geom.Point{X: 1, Y: 0})
	c := n.AddNode(geom.Point{X: 2, Y: 0})
	if err := n.AddEdge(a, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.AddEdge(b, c, 0); err != nil {
		t.Fatal(err)
	}
	if got := n.Distance(a, c); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Distance = %v, want 2", got)
	}
	if !n.RemoveEdge(b, c) {
		t.Fatal("edge not removed")
	}
	if got := n.Distance(a, c); !math.IsInf(got, 1) {
		t.Fatalf("disconnected distance = %v, want +Inf", got)
	}
	if n.RemoveEdge(b, c) {
		t.Error("double removal reported success")
	}
	if err := n.AddEdge(a, NodeID(99), 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

// Nearest must agree with a linear scan.
func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := New()
	for i := 0; i < 300; i++ {
		n.AddNode(geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100})
	}
	for iter := 0; iter < 200; iter++ {
		p := geom.Point{X: rng.Float64()*120 - 10, Y: rng.Float64()*120 - 10}
		got := n.Nearest(p)
		best, bestD := NodeID(-1), math.Inf(1)
		for i := range n.nodes {
			if d := n.nodes[i].SqDist(p); d < bestD {
				bestD, best = d, NodeID(i)
			}
		}
		// Ties are possible; accept equal distance.
		if n.nodes[got].SqDist(p) > bestD+1e-12 {
			t.Fatalf("Nearest(%v) = %v (d=%v), brute force %v (d=%v)",
				p, got, n.nodes[got].SqDist(p), best, bestD)
		}
	}
	empty := New()
	if got := empty.Nearest(geom.Point{}); got != -1 {
		t.Errorf("empty network Nearest = %v", got)
	}
}

func TestMapMatch(t *testing.T) {
	n := unitGrid(4, 4)
	// A trajectory hugging the bottom row.
	tr := &traj.T{ID: 1, Points: []geom.Point{
		{X: 0.1, Y: 0.05}, {X: 0.4, Y: -0.1}, {X: 1.1, Y: 0.1}, {X: 1.9, Y: 0.05}, {X: 2.1, Y: -0.05}, {X: 3.0, Y: 0.2},
	}}
	path := n.MapMatch(tr)
	want := []NodeID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

// The headline semantic: two Euclidean-close trajectories separated by a
// removed street (a river) are far in network distance.
func TestRiverSeparation(t *testing.T) {
	n := unitGrid(2, 6) // two parallel streets, 6 intersections each
	// Cut all crossings except at the far ends.
	for c := 1; c < 5; c++ {
		if !n.RemoveEdge(NodeID(c), NodeID(6+c)) {
			t.Fatal("crossing not removed")
		}
	}
	south := &traj.T{ID: 1, Points: []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}, {X: 4, Y: 0}}}
	north := &traj.T{ID: 2, Points: []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 3, Y: 1}, {X: 4, Y: 1}}}
	netDTW := n.TrajectoryDTW(south, north)
	// Euclidean DTW would be ~4 (each aligned pair 1 apart); network DTW
	// must be much larger because reaching the other bank needs a detour
	// to an end crossing.
	if netDTW < 8 {
		t.Fatalf("network DTW = %v; the river should separate the banks", netDTW)
	}
	// Same-bank trips remain close.
	south2 := &traj.T{ID: 3, Points: []geom.Point{{X: 1.1, Y: 0.1}, {X: 2.1, Y: 0.05}, {X: 2.9, Y: -0.1}, {X: 4.05, Y: 0}}}
	if d := n.TrajectoryDTW(south, south2); d > 1 {
		t.Fatalf("same-bank network DTW = %v, want ~0", d)
	}
}

// NetworkDTW basics: identity, symmetry, empty paths.
func TestNetworkDTWProperties(t *testing.T) {
	n := unitGrid(4, 4)
	rng := rand.New(rand.NewSource(3))
	randPath := func() []NodeID {
		k := 2 + rng.Intn(5)
		out := make([]NodeID, k)
		for i := range out {
			out[i] = NodeID(rng.Intn(16))
		}
		return out
	}
	for i := 0; i < 100; i++ {
		a, b := randPath(), randPath()
		if d := n.NetworkDTW(a, a); d != 0 {
			t.Fatalf("self NetworkDTW = %v", d)
		}
		if math.Abs(n.NetworkDTW(a, b)-n.NetworkDTW(b, a)) > 1e-9 {
			t.Fatal("NetworkDTW not symmetric")
		}
	}
	if d := n.NetworkDTW(nil, []NodeID{1}); !math.IsInf(d, 1) {
		t.Errorf("empty path NetworkDTW = %v", d)
	}
}

// Memoized distances stay correct under concurrent queries.
func TestDistanceConcurrent(t *testing.T) {
	n := unitGrid(6, 6)
	done := make(chan bool, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ok := true
			for i := 0; i < 200; i++ {
				r1, c1, r2, c2 := rng.Intn(6), rng.Intn(6), rng.Intn(6), rng.Intn(6)
				want := float64(abs(r1-r2) + abs(c1-c2))
				if got := n.Distance(NodeID(r1*6+c1), NodeID(r2*6+c2)); math.Abs(got-want) > 1e-9 {
					ok = false
				}
			}
			done <- ok
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if !<-done {
			t.Fatal("concurrent distance query returned a wrong value")
		}
	}
}

// The network searcher must equal brute-force NetworkDTW filtering.
func TestSearcherMatchesBruteForce(t *testing.T) {
	n := unitGrid(8, 8)
	rng := rand.New(rand.NewSource(6))
	trajs := make([]*traj.T, 80)
	for i := range trajs {
		// Walks near grid nodes.
		pts := make([]geom.Point, 4+rng.Intn(6))
		x, y := rng.Float64()*7, rng.Float64()*7
		for j := range pts {
			x += rng.NormFloat64() * 0.6
			y += rng.NormFloat64() * 0.6
			pts[j] = geom.Point{X: x, Y: y}
		}
		trajs[i] = &traj.T{ID: i, Points: pts}
	}
	s := NewSearcher(n, trajs)
	for iter := 0; iter < 15; iter++ {
		q := trajs[rng.Intn(len(trajs))]
		tau := rng.Float64() * 12
		got := s.Search(q, tau)
		qp := n.MapMatch(q)
		want := 0
		for _, tr := range trajs {
			if d := n.NetworkDTW(n.MapMatch(tr), qp); d <= tau {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("searcher: %d results, want %d (tau=%v)", len(got), want, tau)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Traj.ID <= got[i-1].Traj.ID {
				t.Fatal("results not sorted by id")
			}
		}
	}
	// Self query finds itself at tau 0.
	self := s.Search(trajs[0], 0)
	found := false
	for _, r := range self {
		if r.Traj.ID == 0 {
			found = true
		}
	}
	if !found {
		t.Error("self query missing at tau=0")
	}
}
