package measure

import (
	"math"
	"math/rand"
	"testing"

	"dita/internal/geom"
)

// The five example trajectories of Figure 1 in the paper.
func paperTrajs() map[string][]geom.Point {
	return map[string][]geom.Point{
		"T1": {{X: 1, Y: 1}, {X: 1, Y: 2}, {X: 3, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}},
		"T2": {{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 4, Y: 2}, {X: 4, Y: 4}, {X: 4, Y: 5}, {X: 5, Y: 5}},
		"T3": {{X: 1, Y: 1}, {X: 4, Y: 1}, {X: 4, Y: 3}, {X: 4, Y: 5}, {X: 4, Y: 6}, {X: 5, Y: 6}},
		"T4": {{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 3}, {X: 3, Y: 7}, {X: 7, Y: 5}},
		"T5": {{X: 0, Y: 4}, {X: 0, Y: 5}, {X: 3, Y: 7}, {X: 3, Y: 3}, {X: 7, Y: 5}},
	}
}

// TestPaperTable1 reproduces the paper's Table 1: DTW(T1, T3) = 5.41
// (= w11 + w21 + w32 + w43 + w54 + w55 + w66).
func TestPaperTable1(t *testing.T) {
	ts := paperTrajs()
	got := DTW{}.Distance(ts["T1"], ts["T3"])
	// Per the matrix in Table 1: w11 + w21 + w32 + w43 + w54 + w55 + w66
	// = 0 + 1 + 1.41 + 1 + 0 + 1 + 1.
	want := 0.0 + 1 + math.Sqrt2 + 1 + 0 + 1 + 1
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("DTW(T1,T3) = %v, want %v (paper: 5.41)", got, want)
	}
	if math.Abs(got-5.41) > 0.005 {
		t.Errorf("DTW(T1,T3) = %v, paper reports 5.41", got)
	}
}

// TestPaperExample26 reproduces Example 2.6: with Q = T1 and τ = 3, the
// similar trajectories are exactly {T1, T2}.
func TestPaperExample26(t *testing.T) {
	ts := paperTrajs()
	q := ts["T1"]
	var similar []string
	for _, name := range []string{"T1", "T2", "T3", "T4", "T5"} {
		if (DTW{}).Distance(ts[name], q) <= 3 {
			similar = append(similar, name)
		}
	}
	if len(similar) != 2 || similar[0] != "T1" || similar[1] != "T2" {
		t.Errorf("similar to T1 at τ=3: %v, want [T1 T2]", similar)
	}
}

// TestPaperFrechet reproduces Appendix A: Fréchet(T1, T3) = 1.41.
func TestPaperFrechet(t *testing.T) {
	ts := paperTrajs()
	got := Frechet{}.Distance(ts["T1"], ts["T3"])
	if math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("Frechet(T1,T3) = %v, want sqrt(2) (paper: 1.41)", got)
	}
}

// TestPaperEDR reproduces Appendix A: EDR_{ε=1}(T1, T3) = 2.
func TestPaperEDR(t *testing.T) {
	ts := paperTrajs()
	got := EDR{Eps: 1}.Distance(ts["T1"], ts["T3"])
	if got != 2 {
		t.Errorf("EDR(T1,T3) = %v, want 2", got)
	}
}

// TestPaperLCSS checks the Appendix A example LCSS_{δ=1,ε=1}(T1, T3).
//
// The paper's prose says the value is 2, but its own Definition A.3
// recursion evaluates to 4 on this pair: the maximal windowed common
// subsequence has 4 matches ((t1,q1), (t4,q3), (t5,q4), (t6,q6)), the
// recursion charges 1 per skipped point on either side (6-4 skips in T plus
// 6-4 in Q = 4), while the prose's 2 equals min(m,n) - similarity. We
// implement the formal definition and expose the similarity separately.
func TestPaperLCSS(t *testing.T) {
	ts := paperTrajs()
	l := LCSS{Eps: 1, Delta: 1}
	if got := l.Distance(ts["T1"], ts["T3"]); got != 4 {
		t.Errorf("LCSS Definition A.3 distance = %v, want 4", got)
	}
	if got := l.Similarity(ts["T1"], ts["T3"]); got != 4 {
		t.Errorf("LCSS similarity = %v, want 4", got)
	}
	// The prose value: min(m,n) - similarity = 6 - 4 = 2.
	if got := float64(6) - float64(l.Similarity(ts["T1"], ts["T3"])); got != 2 {
		t.Errorf("min(m,n)-sim = %v, want 2 (the paper's prose value)", got)
	}
}

func TestDTWBaseCases(t *testing.T) {
	single := []geom.Point{{X: 0, Y: 0}}
	multi := []geom.Point{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	// m == 1: DTW = sum of dist(t1, qj).
	if got := (DTW{}).Distance(single, multi); math.Abs(got-6) > 1e-12 {
		t.Errorf("DTW(single, multi) = %v, want 6", got)
	}
	if got := (DTW{}).Distance(multi, single); math.Abs(got-6) > 1e-12 {
		t.Errorf("DTW(multi, single) = %v, want 6", got)
	}
	if got := (DTW{}).Distance(nil, multi); !math.IsInf(got, 1) {
		t.Errorf("DTW(empty, multi) = %v, want +Inf", got)
	}
	same := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if got := (DTW{}).Distance(same, same); got != 0 {
		t.Errorf("DTW(T,T) = %v, want 0", got)
	}
}

func TestFrechetBaseCases(t *testing.T) {
	single := []geom.Point{{X: 0, Y: 0}}
	multi := []geom.Point{{X: 1, Y: 0}, {X: 3, Y: 0}}
	if got := (Frechet{}).Distance(single, multi); math.Abs(got-3) > 1e-12 {
		t.Errorf("Frechet(single, multi) = %v, want 3", got)
	}
	same := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if got := (Frechet{}).Distance(same, same); got != 0 {
		t.Errorf("Frechet(T,T) = %v, want 0", got)
	}
}

func TestEDRBaseCases(t *testing.T) {
	e := EDR{Eps: 0.1}
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	if got := e.Distance(nil, pts); got != 2 {
		t.Errorf("EDR(empty, 2pts) = %v, want 2", got)
	}
	if got := e.Distance(pts, nil); got != 2 {
		t.Errorf("EDR(2pts, empty) = %v, want 2", got)
	}
	if got := e.Distance(pts, pts); got != 0 {
		t.Errorf("EDR(T,T) = %v, want 0", got)
	}
}

func TestLCSSWindow(t *testing.T) {
	// Points match spatially but the window forbids far-apart indices.
	a := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 9, Y: 9}}
	b := []geom.Point{{X: 9, Y: 9}, {X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	// With a wide window the sequences share the common part.
	wide := LCSS{Eps: 0.01, Delta: 10}.Distance(a, b)
	tight := LCSS{Eps: 0.01, Delta: 0}.Distance(a, b)
	if wide >= tight {
		t.Errorf("wide window distance %v should be < tight %v", wide, tight)
	}
}

func TestERPMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := ERP{}
	for i := 0; i < 200; i++ {
		a := randTraj(rng, 2+rng.Intn(8))
		b := randTraj(rng, 2+rng.Intn(8))
		c := randTraj(rng, 2+rng.Intn(8))
		dab, dba := e.Distance(a, b), e.Distance(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("ERP not symmetric: %v vs %v", dab, dba)
		}
		if d := e.Distance(a, a); d > 1e-9 {
			t.Fatalf("ERP(a,a) = %v", d)
		}
		dac, dbc := e.Distance(a, c), e.Distance(b, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("ERP triangle inequality violated: d(a,c)=%v > d(a,b)+d(b,c)=%v", dac, dab+dbc)
		}
	}
}

func TestFrechetIsMetricOnSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := Frechet{}
	for i := 0; i < 200; i++ {
		a := randTraj(rng, 2+rng.Intn(6))
		b := randTraj(rng, 2+rng.Intn(6))
		c := randTraj(rng, 2+rng.Intn(6))
		if math.Abs(f.Distance(a, b)-f.Distance(b, a)) > 1e-9 {
			t.Fatal("Frechet not symmetric")
		}
		if f.Distance(a, c) > f.Distance(a, b)+f.Distance(b, c)+1e-9 {
			t.Fatal("Frechet triangle inequality violated")
		}
	}
}

func TestDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 200; i++ {
		a := randTraj(rng, 2+rng.Intn(10))
		b := randTraj(rng, 2+rng.Intn(10))
		if math.Abs(DTW{}.Distance(a, b)-DTW{}.Distance(b, a)) > 1e-9 {
			t.Fatal("DTW not symmetric")
		}
	}
}

func randTraj(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geom.Point{X: x, Y: y}
	}
	return pts
}

// Threshold variants must agree with the exact distance: accept iff
// distance <= tau, and report a value that is a lower bound when rejecting.
func TestThresholdAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	measures := []Measure{DTW{}, Frechet{}, EDR{Eps: 0.5}, LCSS{Eps: 0.5, Delta: 3}, ERP{}}
	for _, m := range measures {
		for i := 0; i < 500; i++ {
			a := randTraj(rng, 2+rng.Intn(12))
			b := randTraj(rng, 2+rng.Intn(12))
			exact := m.Distance(a, b)
			for _, tau := range []float64{exact * 0.5, exact * 1.001, exact * 1.5, 0.1, 5, 20} {
				got, ok := m.DistanceThreshold(a, b, tau)
				if math.Abs(exact-tau) < 1e-9*(1+exact) {
					continue // borderline: either decision is acceptable under fp rounding
				}
				if wantOK := exact <= tau; ok != wantOK {
					t.Fatalf("%s: threshold decision wrong: exact=%v tau=%v ok=%v", m.Name(), exact, tau, ok)
				}
				if ok && math.Abs(got-exact) > 1e-6*(1+exact) {
					t.Fatalf("%s: accepted value %v != exact %v", m.Name(), got, exact)
				}
				if !ok && got <= tau-1e-9 {
					t.Fatalf("%s: rejected but reported value %v <= tau %v", m.Name(), got, tau)
				}
			}
		}
	}
}

// The double-direction DTW must agree with single-direction early abandon.
func TestDoubleDirectionMatchesEarlyAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for i := 0; i < 500; i++ {
		a := randTraj(rng, 2+rng.Intn(15))
		b := randTraj(rng, 2+rng.Intn(15))
		tau := rng.Float64() * 30
		d1, ok1 := dtwDoubleDirection(a, b, tau)
		d2, ok2 := dtwEarlyAbandon(a, b, tau)
		if ok1 != ok2 {
			t.Fatalf("decision mismatch: dd=%v ea=%v tau=%v", ok1, ok2, tau)
		}
		if ok1 && math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("value mismatch on accept: dd=%v ea=%v", d1, d2)
		}
	}
}

// AMD (Lemma 4.1) must lower-bound DTW.
func TestAMDLowerBoundsDTW(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for i := 0; i < 1000; i++ {
		a := randTraj(rng, 2+rng.Intn(12))
		b := randTraj(rng, 2+rng.Intn(12))
		amd := AMD(a, b)
		dtw := DTW{}.Distance(a, b)
		if amd > dtw+1e-9 {
			t.Fatalf("AMD %v > DTW %v", amd, dtw)
		}
	}
}

// Length lower bounds must hold for the edit measures.
func TestLengthLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for i := 0; i < 300; i++ {
		a := randTraj(rng, 2+rng.Intn(10))
		b := randTraj(rng, 2+rng.Intn(10))
		for _, m := range []Measure{EDR{Eps: 0.5}, LCSS{Eps: 0.5, Delta: 2}} {
			lb := m.LengthLowerBound(len(a), len(b))
			if d := m.Distance(a, b); lb > d+1e-9 {
				t.Fatalf("%s length bound %v > distance %v", m.Name(), lb, d)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"DTW", "dtw", "Frechet", "FRECHET", "EDR", "LCSS", "ERP"} {
		m, err := ByName(name, 0.1, 2)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if m.Name() == "" {
			t.Errorf("ByName(%q): empty name", name)
		}
	}
	if _, err := ByName("euclid", 0, 0); err == nil {
		t.Error("ByName should reject unknown measures")
	}
	if m, _ := ByName("edr", 0.25, 0); m.Epsilon() != 0.25 {
		t.Error("ByName should propagate epsilon")
	}
}

func TestAccumulationKinds(t *testing.T) {
	cases := []struct {
		m    Measure
		want Accumulation
	}{
		{DTW{}, AccumSum},
		{ERP{}, AccumSum},
		{Frechet{}, AccumMax},
		{EDR{Eps: 1}, AccumEdit},
		{LCSS{Eps: 1, Delta: 1}, AccumEdit},
	}
	for _, c := range cases {
		if got := c.m.Accumulation(); got != c.want {
			t.Errorf("%s accumulation = %v, want %v", c.m.Name(), got, c.want)
		}
	}
	// Endpoint anchoring and capability flags.
	if !(DTW{}).AlignsEndpoints() || !(Frechet{}).AlignsEndpoints() {
		t.Error("DTW and Frechet anchor endpoints")
	}
	if (EDR{}).AlignsEndpoints() || (LCSS{}).AlignsEndpoints() || (ERP{}).AlignsEndpoints() {
		t.Error("edit measures and ERP must not anchor endpoints")
	}
	if _, ok := (ERP{}).GapPoint(); !ok {
		t.Error("ERP has a gap point")
	}
	if _, ok := (DTW{}).GapPoint(); ok {
		t.Error("DTW has no gap point")
	}
}

// DTW with a tau larger than the distance must return the exact distance.
func TestDTWThresholdExactValue(t *testing.T) {
	ts := paperTrajs()
	d, ok := DTW{}.DistanceThreshold(ts["T1"], ts["T3"], 100)
	if !ok || math.Abs(d-5.4142135) > 1e-5 {
		t.Errorf("DistanceThreshold = %v, %v; want 5.414, true", d, ok)
	}
	_, ok = DTW{}.DistanceThreshold(ts["T1"], ts["T3"], 3)
	if ok {
		t.Error("DTW(T1,T3) = 5.41 should be rejected at tau=3")
	}
}

func TestHausdorff(t *testing.T) {
	a := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	b := []geom.Point{{X: 0, Y: 1}, {X: 2, Y: 1}}
	// Directed a->b: middle point (1,0) is sqrt(2) from both b points.
	// Directed b->a: each b point is 1 from its aligned a point.
	if got := (Hausdorff{}).Distance(a, b); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Hausdorff = %v, want sqrt(2)", got)
	}
	// Order-free: reversing a trajectory changes nothing.
	rev := []geom.Point{{X: 2, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0}}
	if got := (Hausdorff{}).Distance(rev, b); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("reversed Hausdorff = %v", got)
	}
	if d := (Hausdorff{}).Distance(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if got := (Hausdorff{}).Distance(nil, b); !math.IsInf(got, 1) {
		t.Errorf("empty Hausdorff = %v", got)
	}
	if m, err := ByName("hausdorff", 0, 0); err != nil || m.Name() != "HAUSDORFF" {
		t.Errorf("ByName hausdorff: %v %v", m, err)
	}
}

func TestHausdorffMetricAndThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	h := Hausdorff{}
	for i := 0; i < 300; i++ {
		a := randTraj(rng, 2+rng.Intn(8))
		b := randTraj(rng, 2+rng.Intn(8))
		c := randTraj(rng, 2+rng.Intn(8))
		if math.Abs(h.Distance(a, b)-h.Distance(b, a)) > 1e-9 {
			t.Fatal("Hausdorff not symmetric")
		}
		if h.Distance(a, c) > h.Distance(a, b)+h.Distance(b, c)+1e-9 {
			t.Fatal("Hausdorff triangle inequality violated")
		}
		exact := h.Distance(a, b)
		for _, tau := range []float64{exact * 0.5, exact * 1.5, 3} {
			if math.Abs(exact-tau) < 1e-9 {
				continue
			}
			got, ok := h.DistanceThreshold(a, b, tau)
			if want := exact <= tau; ok != want {
				t.Fatalf("threshold decision wrong: exact=%v tau=%v", exact, tau)
			}
			if !ok && got <= tau {
				t.Fatalf("rejected with value %v <= tau %v", got, tau)
			}
		}
	}
}

// Hausdorff lower-bounds Fréchet (a warping alignment is one particular
// point matching, so the unconstrained min can only be smaller).
func TestHausdorffLowerBoundsFrechet(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for i := 0; i < 300; i++ {
		a := randTraj(rng, 2+rng.Intn(8))
		b := randTraj(rng, 2+rng.Intn(8))
		if (Hausdorff{}).Distance(a, b) > (Frechet{}).Distance(a, b)+1e-9 {
			t.Fatal("Hausdorff > Frechet")
		}
	}
}
