package measure

import (
	"math/rand"
	"testing"

	"dita/internal/geom"
)

// Ablation benchmarks for the Section 5.3.3 verification optimizations:
// exact DTW vs single-direction early abandoning vs double-direction.

func benchPairs(n, length int) ([][]geom.Point, [][]geom.Point) {
	rng := rand.New(rand.NewSource(9))
	mk := func() []geom.Point {
		pts := make([]geom.Point, length)
		x, y := rng.Float64()*10, rng.Float64()*10
		for i := range pts {
			x += rng.NormFloat64() * 0.1
			y += rng.NormFloat64() * 0.1
			pts[i] = geom.Point{X: x, Y: y}
		}
		return pts
	}
	as := make([][]geom.Point, n)
	bs := make([][]geom.Point, n)
	for i := range as {
		as[i], bs[i] = mk(), mk()
	}
	return as, bs
}

func BenchmarkDTWFull(b *testing.B) {
	as, bs := benchPairs(64, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DTW{}.Distance(as[i%64], bs[i%64])
	}
}

func BenchmarkDTWEarlyAbandon(b *testing.B) {
	as, bs := benchPairs(64, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dtwEarlyAbandon(as[i%64], bs[i%64], 1.0)
	}
}

func BenchmarkDTWDoubleDirection(b *testing.B) {
	as, bs := benchPairs(64, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dtwDoubleDirection(as[i%64], bs[i%64], 1.0)
	}
}

func BenchmarkFrechetThresholdReachability(b *testing.B) {
	as, bs := benchPairs(64, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Frechet{}.DistanceThreshold(as[i%64], bs[i%64], 0.5)
	}
}

func BenchmarkEDRBanded(b *testing.B) {
	as, bs := benchPairs(64, 50)
	e := EDR{Eps: 0.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.DistanceThreshold(as[i%64], bs[i%64], 5)
	}
}

func BenchmarkEDRFull(b *testing.B) {
	as, bs := benchPairs(64, 50)
	e := EDR{Eps: 0.2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Distance(as[i%64], bs[i%64])
	}
}
