package measure

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dita/internal/geom"
)

// qtraj is a trajectory wrapper with a quick.Generator that produces
// small, well-conditioned random trajectories (2-12 points in [0,10]²).
type qtraj struct {
	Pts []geom.Point
}

// Generate implements quick.Generator.
func (qtraj) Generate(rng *rand.Rand, size int) reflect.Value {
	n := 2 + rng.Intn(11)
	pts := make([]geom.Point, n)
	x, y := rng.Float64()*10, rng.Float64()*10
	for i := range pts {
		x += rng.NormFloat64()
		y += rng.NormFloat64()
		pts[i] = geom.Point{X: x, Y: y}
	}
	return reflect.ValueOf(qtraj{pts})
}

var quickCfg = &quick.Config{MaxCount: 300}

// DTW is bounded below by the anchored endpoint distances and above by the
// "diagonal-ish" path cost; both bounds follow directly from the
// definition and everything in the index relies on the lower one.
func TestQuickDTWEndpointBounds(t *testing.T) {
	f := func(a, b qtraj) bool {
		d := DTW{}.Distance(a.Pts, b.Pts)
		lb := a.Pts[0].Dist(b.Pts[0]) + a.Pts[len(a.Pts)-1].Dist(b.Pts[len(b.Pts)-1])
		if len(a.Pts) > 1 && len(b.Pts) > 1 {
			// First and last alignments are distinct matrix cells.
			if d+1e-9 < lb {
				return false
			}
		}
		return d >= 0
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Fréchet lower-bounds DTW pointwise... no — DTW >= Fréchet, because a sum
// of non-negative terms that includes the maximum term is at least that
// maximum along the optimal DTW path, and Fréchet minimizes the max.
func TestQuickDTWDominatesFrechet(t *testing.T) {
	f := func(a, b qtraj) bool {
		return DTW{}.Distance(a.Pts, b.Pts)+1e-9 >= Frechet{}.Distance(a.Pts, b.Pts)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Identity of indiscernibles (relaxed): self-distance is zero for all
// measures.
func TestQuickSelfDistanceZero(t *testing.T) {
	measures := []Measure{DTW{}, Frechet{}, EDR{Eps: 0.1}, LCSS{Eps: 0.1, Delta: 2}, ERP{}}
	f := func(a qtraj) bool {
		for _, m := range measures {
			if d := m.Distance(a.Pts, a.Pts); d > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// All measures are symmetric with symmetric parameters.
func TestQuickSymmetry(t *testing.T) {
	measures := []Measure{DTW{}, Frechet{}, EDR{Eps: 0.3}, LCSS{Eps: 0.3, Delta: 2}, ERP{}}
	f := func(a, b qtraj) bool {
		for _, m := range measures {
			if math.Abs(m.Distance(a.Pts, b.Pts)-m.Distance(b.Pts, a.Pts)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// EDR/LCSS distances are integers bounded by m+n.
func TestQuickEditDistanceRange(t *testing.T) {
	f := func(a, b qtraj) bool {
		for _, m := range []Measure{EDR{Eps: 0.5}, LCSS{Eps: 0.5, Delta: 3}} {
			d := m.Distance(a.Pts, b.Pts)
			if d != math.Trunc(d) || d < 0 || d > float64(len(a.Pts)+len(b.Pts)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Monotonicity in ε: a larger matching tolerance can only decrease the
// edit distance.
func TestQuickEDRMonotoneInEpsilon(t *testing.T) {
	f := func(a, b qtraj) bool {
		return EDR{Eps: 1.0}.Distance(a.Pts, b.Pts) <= EDR{Eps: 0.2}.Distance(a.Pts, b.Pts)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Monotonicity in δ: a wider LCSS window can only decrease the distance.
func TestQuickLCSSMonotoneInDelta(t *testing.T) {
	f := func(a, b qtraj) bool {
		return LCSS{Eps: 0.5, Delta: 8}.Distance(a.Pts, b.Pts) <= LCSS{Eps: 0.5, Delta: 1}.Distance(a.Pts, b.Pts)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// AMD is a lower bound of DTW on arbitrary quick-generated inputs.
func TestQuickAMDLowerBound(t *testing.T) {
	f := func(a, b qtraj) bool {
		return AMD(a.Pts, b.Pts) <= DTW{}.Distance(a.Pts, b.Pts)+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Translating both trajectories by the same vector leaves every measure
// unchanged (translation invariance).
func TestQuickTranslationInvariance(t *testing.T) {
	measures := []Measure{DTW{}, Frechet{}, EDR{Eps: 0.4}, LCSS{Eps: 0.4, Delta: 3}}
	f := func(a, b qtraj, dx, dy int8) bool {
		shift := geom.Point{X: float64(dx), Y: float64(dy)}
		as := translate(a.Pts, shift)
		bs := translate(b.Pts, shift)
		for _, m := range measures {
			if math.Abs(m.Distance(a.Pts, b.Pts)-m.Distance(as, bs)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

func translate(pts []geom.Point, d geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = p.Add(d)
	}
	return out
}
