//go:build race

package measure

// raceEnabled reports that this binary was built with -race, where the
// instrumented allocator makes testing.AllocsPerRun unreliable.
const raceEnabled = true
