// Package measure implements the trajectory similarity functions DITA
// supports (Section 2.1 and Appendix A of the paper): Dynamic Time Warping
// (DTW, the default), the discrete Fréchet distance, Edit Distance on Real
// sequence (EDR), the Longest Common SubSequence distance (LCSS, the
// paper's Definition A.3 formulation), Edit distance with Real Penalty
// (ERP), and the symmetric Hausdorff distance.
//
// Each function comes in two flavors: an exact O(mn) dynamic program and a
// threshold-aware variant that abandons early once the distance provably
// exceeds τ (the paper's optimized DTW(T,Q,τ) with double-direction
// verification, Section 5.3.3).
//
// The Measure interface abstracts what the DITA index needs to know about a
// function: how thresholds accumulate down the trie levels (sum for
// DTW/ERP, max for Fréchet, edit-count for EDR/LCSS) and which verification
// filters are sound for it.
package measure

import (
	"fmt"
	"math"

	"dita/internal/dppool"
	"dita/internal/geom"
)

// Accumulation describes how a measure combines per-level MinDist values
// during trie descent, which determines how the remaining threshold is
// updated level by level (Section 5.3 and Appendix A).
type Accumulation int

const (
	// AccumSum: the distance is a sum of per-alignment point distances
	// (DTW, ERP). Each trie level's MinDist is subtracted from the
	// remaining threshold.
	AccumSum Accumulation = iota
	// AccumMax: the distance is a maximum over the alignment (Fréchet).
	// The threshold is not consumed; every level must independently be
	// within τ.
	AccumMax
	// AccumEdit: the distance counts edit operations (EDR, LCSS). A level
	// whose MinDist exceeds the matching tolerance ε costs one edit; the
	// remaining (integer) threshold is decremented.
	AccumEdit
)

// Measure is a trajectory distance function together with the metadata the
// DITA index and verifier need.
type Measure interface {
	// Name returns the canonical upper-case name ("DTW", "FRECHET", ...).
	Name() string
	// Distance computes the exact distance between two trajectories.
	Distance(t, q []geom.Point) float64
	// DistanceThreshold computes the distance with early abandoning: the
	// returned bool is true iff distance <= tau, and when it is false the
	// returned value is only guaranteed to exceed tau.
	DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool)
	// Accumulation reports the trie threshold-accumulation semantics.
	Accumulation() Accumulation
	// Epsilon returns the point-matching tolerance for edit-based measures
	// and 0 for the others.
	Epsilon() float64
	// SupportsCoverageFilter reports whether the MBR-coverage filter
	// (Lemma 5.4) is sound for this measure. True for DTW, Fréchet and ERP
	// (every point must align within τ); false for edit-based measures
	// where points may remain unmatched.
	SupportsCoverageFilter() bool
	// SupportsCellFilter reports whether the cell-compression lower bound
	// (Lemma 5.6) is sound for this measure.
	SupportsCellFilter() bool
	// LengthLowerBound returns a lower bound on the distance implied by
	// the two lengths alone (|m-n| for EDR/LCSS, 0 otherwise).
	LengthLowerBound(m, n int) float64
	// AlignsEndpoints reports whether the warping path is anchored at
	// (1,1) and (m,n) so that the trie's first/last levels may be matched
	// against q1/qn alone (true for DTW and Fréchet). Edit-based measures
	// and ERP may skip endpoints, so all their levels are matched against
	// the whole query.
	AlignsEndpoints() bool
	// GapPoint returns the gap reference point for measures that may align
	// a point against a gap (ERP); ok is false for the others. Index
	// lower bounds must take min(dist to query, dist to gap) when ok.
	GapPoint() (geom.Point, bool)
}

// ByName returns the measure registered under the given (case-insensitive)
// name. Edit-based measures are constructed with the provided epsilon and
// (for LCSS) delta.
func ByName(name string, epsilon float64, delta int) (Measure, error) {
	switch upper(name) {
	case "DTW":
		return DTW{}, nil
	case "FRECHET", "FRÉCHET":
		return Frechet{}, nil
	case "EDR":
		return EDR{Eps: epsilon}, nil
	case "LCSS":
		return LCSS{Eps: epsilon, Delta: delta}, nil
	case "ERP":
		return ERP{}, nil
	case "HAUSDORFF":
		return Hausdorff{}, nil
	}
	return nil, fmt.Errorf("measure: unknown distance function %q", name)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// twoRows borrows two pooled DP rows of width n+1 sharing one backing
// buffer. Every distance kernel in this package draws its scratch from
// internal/dppool so steady-state verification allocates nothing.
func twoRows(n int) (prev, cur []float64, scratch *dppool.Floats) {
	scratch = dppool.GetFloats(2 * (n + 1))
	return scratch.S[:n+1], scratch.S[n+1:], scratch
}

// DTW is Dynamic Time Warping (Definition 2.2): the default, most robust
// similarity function per the paper's discussion.
type DTW struct{}

// Name implements Measure.
func (DTW) Name() string { return "DTW" }

// Accumulation implements Measure.
func (DTW) Accumulation() Accumulation { return AccumSum }

// Epsilon implements Measure.
func (DTW) Epsilon() float64 { return 0 }

// SupportsCoverageFilter implements Measure. Every point of T contributes
// at least one aligned pair to the DTW sum, so if DTW(T,Q) <= τ then every
// point of T is within τ of some point of Q (hence of MBR_Q).
func (DTW) SupportsCoverageFilter() bool { return true }

// SupportsCellFilter implements Measure.
func (DTW) SupportsCellFilter() bool { return true }

// LengthLowerBound implements Measure.
func (DTW) LengthLowerBound(m, n int) float64 { return 0 }

// AlignsEndpoints implements Measure: DTW paths are anchored at (1,1) and
// (m,n) (Section 5.3.1, aligned point matching).
func (DTW) AlignsEndpoints() bool { return true }

// GapPoint implements Measure.
func (DTW) GapPoint() (geom.Point, bool) { return geom.Point{}, false }

// Distance implements Measure with the classic O(mn) dynamic program.
func (DTW) Distance(t, q []geom.Point) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	inf := math.Inf(1)
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		ti := t[i-1]
		for j := 1; j <= n; j++ {
			d := ti.Dist(q[j-1])
			best := prev[j-1] // diagonal
			if prev[j] < best {
				best = prev[j] // up: advance t only
			}
			if cur[j-1] < best {
				best = cur[j-1] // left: advance q only
			}
			cur[j] = d + best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// DistanceThreshold implements Measure using double-direction verification
// (Section 5.3.3): the DP is split at the middle row, computed forward from
// (1,1) and backward from (m,n) simultaneously, abandoning as soon as the
// sum of the two frontiers' minima exceeds tau. The exact distance is
// recovered by joining the frontiers when no abandon triggers.
func (DTW) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	d, ok := dtwDoubleDirection(t, q, tau)
	return d, ok
}

// dtwEarlyAbandon is the classic single-direction threshold DTW: abandon
// when an entire DP row exceeds tau. Kept for benchmarking the
// double-direction optimization (Figure ablations) and as a cross-check.
func dtwEarlyAbandon(t, q []geom.Point, tau float64) (float64, bool) {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1), false
	}
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	inf := math.Inf(1)
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		ti := t[i-1]
		rowMin := inf
		for j := 1; j <= n; j++ {
			d := ti.Dist(q[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d + best
			if cur[j] < rowMin {
				rowMin = cur[j]
			}
		}
		if rowMin > tau {
			return rowMin, false
		}
		prev, cur = cur, prev
	}
	return prev[n], prev[n] <= tau
}

// dtwDoubleDirection computes threshold DTW from both ends at once.
//
// Let F[i][j] = DTW(T^i, Q^j) (prefixes, inclusive) and
// B[i][j] = DTW(T_{i..m}, Q_{j..n}) (suffixes, inclusive). A warping path
// crosses from row mid to row mid+1 moving (mid, j) -> (mid+1, j') with
// j' in {j, j+1}, so
//
//	DTW(T, Q) = min_j F[mid][j] + min(B[mid+1][j], B[mid+1][j+1]).
//
// We advance the forward DP down to row mid and the backward DP up to row
// mid+1, interleaved; after each pair of rows, if minF + minB > tau, no
// path can be within tau and we abandon — the double-direction pruning of
// Section 5.3.3.
func dtwDoubleDirection(t, q []geom.Point, tau float64) (float64, bool) {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1), false
	}
	if m == 1 || n == 1 {
		// Degenerate shapes: fall back to the single-direction DP.
		return dtwEarlyAbandon(t, q, tau)
	}
	mid := m / 2
	inf := math.Inf(1)

	// All four DP rows share one pooled buffer: forward rows are n+1 wide,
	// backward rows n+2 (the extra out-of-range guard cell).
	scratch := dppool.GetFloats(4*n + 6)
	defer scratch.Release()
	buf := scratch.S

	// Forward DP over rows 1..mid.
	fprev := buf[:n+1]
	fcur := buf[n+1 : 2*n+2]
	for j := 0; j <= n; j++ {
		fprev[j] = inf
	}
	fprev[0] = 0
	// Backward DP over rows m..mid+1. bprev[j] corresponds to B[i][j] for
	// 1-based j; bprev[n+1] is the out-of-range guard.
	bprev := buf[2*n+2 : 3*n+4]
	bcur := buf[3*n+4:]
	for j := 0; j <= n+1; j++ {
		bprev[j] = inf
	}
	bprev[n+1] = 0 // virtual start below-right of (m, n)

	fi, bi := 1, m // next rows to compute
	minF, minB := 0.0, 0.0
	for fi <= mid || bi > mid {
		if fi <= mid {
			ti := t[fi-1]
			fcur[0] = inf
			rowMin := inf
			for j := 1; j <= n; j++ {
				d := ti.Dist(q[j-1])
				best := fprev[j-1]
				if fprev[j] < best {
					best = fprev[j]
				}
				if fcur[j-1] < best {
					best = fcur[j-1]
				}
				fcur[j] = d + best
				if fcur[j] < rowMin {
					rowMin = fcur[j]
				}
			}
			fprev, fcur = fcur, fprev
			minF = rowMin
			fi++
		}
		if bi > mid {
			ti := t[bi-1]
			bcur[n+1] = inf
			rowMin := inf
			for j := n; j >= 1; j-- {
				d := ti.Dist(q[j-1])
				best := bprev[j+1]
				if bprev[j] < best {
					best = bprev[j]
				}
				if bcur[j+1] < best {
					best = bcur[j+1]
				}
				bcur[j] = d + best
				if bcur[j] < rowMin {
					rowMin = bcur[j]
				}
			}
			bprev, bcur = bcur, bprev
			minB = rowMin
			bi--
		}
		if minF+minB > tau {
			return minF + minB, false
		}
	}
	// Join: fprev holds F[mid][·], bprev holds B[mid+1][·].
	best := inf
	for j := 1; j <= n; j++ {
		b := bprev[j]
		if j+1 <= n && bprev[j+1] < b {
			b = bprev[j+1]
		}
		if v := fprev[j] + b; v < best {
			best = v
		}
	}
	return best, best <= tau
}

// AMD computes the accumulated minimum distance lower bound of Lemma 4.1:
//
//	AMD(T,Q) = dist(t1,q1) + dist(tm,qn) + Σ_{i=2}^{m-1} min_j dist(ti,qj).
//
// AMD(T,Q) <= DTW(T,Q), so AMD > τ proves dissimilarity. It costs O(mn)
// like DTW; the pivot-based PAMD (package pivot / core) is the cheap
// version.
func AMD(t, q []geom.Point) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	sum := t[0].Dist(q[0]) + t[m-1].Dist(q[n-1])
	for i := 1; i < m-1; i++ {
		sum += minDistToTraj(t[i], q)
	}
	return sum
}

func minDistToTraj(p geom.Point, q []geom.Point) float64 {
	best := math.Inf(1)
	for _, qj := range q {
		if d := p.SqDist(qj); d < best {
			best = d
		}
	}
	return math.Sqrt(best)
}
