package measure

import (
	"math"

	"dita/internal/geom"
)

// Hausdorff is the symmetric Hausdorff distance:
//
//	H(T,Q) = max( max_t min_q dist(t,q), max_q min_t dist(t,q) )
//
// the measure the DFT baseline natively supports (the paper's Section 2.3
// cites [46] as handling Hausdorff and Fréchet). Hausdorff ignores point
// order entirely — it is a set distance — so it is max-accumulating and
// unanchored: every trie level is matched against the whole query.
type Hausdorff struct{}

// Name implements Measure.
func (Hausdorff) Name() string { return "HAUSDORFF" }

// Accumulation implements Measure.
func (Hausdorff) Accumulation() Accumulation { return AccumMax }

// Epsilon implements Measure.
func (Hausdorff) Epsilon() float64 { return 0 }

// SupportsCoverageFilter implements Measure: H(T,Q) <= τ forces every
// point of each trajectory within τ of the other, so Lemma 5.4 applies.
func (Hausdorff) SupportsCoverageFilter() bool { return true }

// SupportsCellFilter implements Measure: the max-form cell bound is a
// valid lower bound of max_t min_q dist.
func (Hausdorff) SupportsCellFilter() bool { return true }

// LengthLowerBound implements Measure.
func (Hausdorff) LengthLowerBound(m, n int) float64 { return 0 }

// AlignsEndpoints implements Measure: Hausdorff is order-free, endpoints
// carry no special role.
func (Hausdorff) AlignsEndpoints() bool { return false }

// GapPoint implements Measure.
func (Hausdorff) GapPoint() (geom.Point, bool) { return geom.Point{}, false }

// Distance implements Measure in O(mn).
func (Hausdorff) Distance(t, q []geom.Point) float64 {
	if len(t) == 0 || len(q) == 0 {
		return math.Inf(1)
	}
	return math.Max(directedHausdorff(t, q, math.Inf(1)), directedHausdorff(q, t, math.Inf(1)))
}

// DistanceThreshold implements Measure: each directed pass abandons as
// soon as some point's nearest neighbor exceeds tau.
func (h Hausdorff) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	d1 := directedHausdorff(t, q, tau)
	if d1 > tau {
		return d1, false
	}
	d2 := directedHausdorff(q, t, tau)
	if d2 > tau {
		return d2, false
	}
	return math.Max(d1, d2), true
}

// directedHausdorff returns max_{a in as} min_{b in bs} dist(a,b),
// abandoning (returning a value > tau) once any point's nearest neighbor
// provably exceeds tau.
func directedHausdorff(as, bs []geom.Point, tau float64) float64 {
	worst := 0.0
	tauSq := tau * tau
	for _, a := range as {
		best := math.Inf(1)
		for _, b := range bs {
			if d := a.SqDist(b); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if best > worst {
			worst = best
			if worst > tauSq {
				return math.Sqrt(worst)
			}
		}
	}
	return math.Sqrt(worst)
}
