package measure

import (
	"math"

	"dita/internal/geom"
)

// EDR is Edit Distance on Real sequence (Definition A.2): the minimum
// number of edit operations to make two trajectories equivalent, where two
// points match (substitution cost 0) when their distance is at most Eps.
type EDR struct {
	// Eps is the point-matching tolerance ε.
	Eps float64
}

// Name implements Measure.
func (EDR) Name() string { return "EDR" }

// Accumulation implements Measure.
func (EDR) Accumulation() Accumulation { return AccumEdit }

// Epsilon implements Measure.
func (e EDR) Epsilon() float64 { return e.Eps }

// SupportsCoverageFilter implements Measure: points may be deleted rather
// than matched, so Lemma 5.4 does not hold for EDR.
func (EDR) SupportsCoverageFilter() bool { return false }

// SupportsCellFilter implements Measure.
func (EDR) SupportsCellFilter() bool { return false }

// LengthLowerBound implements Measure: every surplus point costs one edit,
// so EDR(T,Q) >= |m-n| (the paper's length filtering, Appendix A).
func (EDR) LengthLowerBound(m, n int) float64 {
	return math.Abs(float64(m - n))
}

// AlignsEndpoints implements Measure: endpoints may be edited away.
func (EDR) AlignsEndpoints() bool { return false }

// GapPoint implements Measure.
func (EDR) GapPoint() (geom.Point, bool) { return geom.Point{}, false }

// Distance implements Measure with the O(mn) edit-distance dynamic
// program.
func (e EDR) Distance(t, q []geom.Point) float64 {
	m, n := len(t), len(q)
	if m == 0 {
		return float64(n)
	}
	if n == 0 {
		return float64(m)
	}
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	for j := 0; j <= n; j++ {
		prev[j] = float64(j)
	}
	eps := e.Eps
	for i := 1; i <= m; i++ {
		cur[0] = float64(i)
		ti := t[i-1]
		for j := 1; j <= n; j++ {
			sub := 1.0
			if ti.Dist(q[j-1]) <= eps {
				sub = 0
			}
			best := prev[j-1] + sub
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// DistanceThreshold implements Measure with a Ukkonen-style banded DP: any
// cell with |i-j| > tau already costs more than tau (each off-diagonal step
// costs one edit), so only the band of width tau around the diagonal is
// evaluated, giving O((m+n)·tau) time, with early abandon when a whole band
// row exceeds tau.
func (e EDR) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	return editBandedDP(t, q, tau, func(a, b geom.Point) float64 {
		if a.Dist(b) <= e.Eps {
			return 0
		}
		return 1
	}, false, 0)
}

// LCSS is the paper's Definition A.3 distance form of the Longest Common
// SubSequence measure: matching two points is free when they are within Eps
// and the remaining-length difference respects the window Delta; every
// skipped point costs 1.
type LCSS struct {
	// Eps is the point-matching tolerance ε.
	Eps float64
	// Delta is the temporal window δ: points at positions i, j may only be
	// matched when |i-j| <= Delta.
	Delta int
}

// Name implements Measure.
func (LCSS) Name() string { return "LCSS" }

// Accumulation implements Measure.
func (LCSS) Accumulation() Accumulation { return AccumEdit }

// Epsilon implements Measure.
func (l LCSS) Epsilon() float64 { return l.Eps }

// SupportsCoverageFilter implements Measure.
func (LCSS) SupportsCoverageFilter() bool { return false }

// SupportsCellFilter implements Measure.
func (LCSS) SupportsCellFilter() bool { return false }

// LengthLowerBound implements Measure: LCSS(T,Q) >= |m-n| since matches
// consume one point from each side.
func (LCSS) LengthLowerBound(m, n int) float64 {
	return math.Abs(float64(m - n))
}

// AlignsEndpoints implements Measure.
func (LCSS) AlignsEndpoints() bool { return false }

// GapPoint implements Measure.
func (LCSS) GapPoint() (geom.Point, bool) { return geom.Point{}, false }

// Distance implements Measure: the Definition A.3 dynamic program. Note
// the window test |i-j| <= Delta applies to the remaining prefix lengths,
// exactly as the recursive definition states.
func (l LCSS) Distance(t, q []geom.Point) float64 {
	m, n := len(t), len(q)
	if m == 0 {
		return float64(n)
	}
	if n == 0 {
		return float64(m)
	}
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	for j := 0; j <= n; j++ {
		prev[j] = float64(j)
	}
	for i := 1; i <= m; i++ {
		cur[0] = float64(i)
		ti := t[i-1]
		for j := 1; j <= n; j++ {
			if abs(i-j) <= l.Delta && ti.Dist(q[j-1]) <= l.Eps {
				cur[j] = prev[j-1]
			} else {
				best := prev[j] + 1
				if v := cur[j-1] + 1; v < best {
					best = v
				}
				cur[j] = best
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// Similarity returns the classic LCSS similarity: the length of the
// longest common subsequence under the spatial tolerance Eps and temporal
// window Delta. The paper's prose examples quote min(m,n) - Similarity;
// Distance implements the Definition A.3 recursion (see TestPaperLCSS).
func (l LCSS) Similarity(t, q []geom.Point) int {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return 0
	}
	prev := make([]int, n+1)
	cur := make([]int, n+1)
	for i := 1; i <= m; i++ {
		ti := t[i-1]
		for j := 1; j <= n; j++ {
			if abs(i-j) <= l.Delta && ti.Dist(q[j-1]) <= l.Eps {
				cur[j] = prev[j-1] + 1
			} else {
				cur[j] = prev[j]
				if cur[j-1] > cur[j] {
					cur[j] = cur[j-1]
				}
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// DistanceThreshold implements Measure with the same banded DP as EDR; the
// LCSS window additionally forbids matches outside |i-j| <= Delta.
func (l LCSS) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	return editBandedDP(t, q, tau, func(a, b geom.Point) float64 {
		if a.Dist(b) <= l.Eps {
			return 0
		}
		return math.Inf(1) // LCSS has no substitution, only match or skip
	}, true, l.Delta)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// editBandedDP runs the shared banded edit-distance DP for EDR and LCSS.
// subCost returns the diagonal (match/substitute) cost for a point pair;
// +Inf means the diagonal move is not allowed. When windowed is true the
// diagonal move additionally requires |i-j| <= delta.
func editBandedDP(t, q []geom.Point, tau float64, subCost func(a, b geom.Point) float64, windowed bool, delta int) (float64, bool) {
	m, n := len(t), len(q)
	lb := math.Abs(float64(m - n))
	if lb > tau {
		return lb, false
	}
	if m == 0 {
		return float64(n), float64(n) <= tau
	}
	if n == 0 {
		return float64(m), float64(m) <= tau
	}
	w := int(tau) // band half-width: cells with |i-j| > w cost > tau
	if w < 0 {
		w = 0
	}
	inf := math.Inf(1)
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	for j := 0; j <= n; j++ {
		if j <= w {
			prev[j] = float64(j)
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= m; i++ {
		lo := i - w
		if lo < 1 {
			lo = 1
		}
		hi := i + w
		if hi > n {
			hi = n
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = float64(i)
			if float64(i) > tau {
				cur[0] = inf
			}
		}
		if hi < n {
			cur[hi+1] = inf
		}
		ti := t[i-1]
		rowMin := inf
		for j := lo; j <= hi; j++ {
			best := inf
			sc := subCost(ti, q[j-1])
			if !windowed || abs(i-j) <= delta {
				if v := prev[j-1] + sc; v < best {
					best = v
				}
			}
			if v := prev[j] + 1; v < best {
				best = v
			}
			if v := cur[j-1] + 1; v < best {
				best = v
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > tau {
			// Every in-band cell exceeds tau and out-of-band cells cost
			// more than tau by construction, so the distance exceeds tau.
			v := rowMin
			if math.IsInf(v, 1) {
				v = tau + 1
			}
			return v, false
		}
		prev, cur = cur, prev
	}
	d := prev[n]
	return d, d <= tau
}
