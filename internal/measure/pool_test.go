package measure

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"dita/internal/geom"
)

// TestPooledKernelsConcurrent hammers every pooled kernel from many
// goroutines with mixed trajectory lengths, checking each goroutine's
// results against a sequential reference computed up front. Under -race
// this is the data-race check for kernels sharing the dppool buffers.
func TestPooledKernelsConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	lengths := []int{2, 5, 17, 33, 70, 150}
	type pair struct {
		t, q []geom.Point
		dtw  float64
		fre  float64
		edr  float64
		erp  float64
	}
	var pairs []pair
	edr := EDR{Eps: 0.05}
	erp := ERP{}
	for _, m := range lengths {
		for _, n := range lengths {
			p := pair{t: randTraj(r, m), q: randTraj(r, n)}
			p.dtw = DTW{}.Distance(p.t, p.q)
			p.fre = Frechet{}.Distance(p.t, p.q)
			p.edr = edr.Distance(p.t, p.q)
			p.erp = erp.Distance(p.t, p.q)
			pairs = append(pairs, p)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				p := pairs[(g+rep)%len(pairs)]
				if d := (DTW{}).Distance(p.t, p.q); d != p.dtw {
					t.Errorf("concurrent DTW = %g, want %g", d, p.dtw)
					return
				}
				// The double-direction join sums in a different order than
				// the plain DP, so the boundary needs a float-width margin.
				if d, ok := (DTW{}).DistanceThreshold(p.t, p.q, p.dtw*(1+1e-12)); !ok || math.Abs(d-p.dtw) > 1e-9*(1+p.dtw) {
					t.Errorf("concurrent DTWThreshold = %g/%v, want %g", d, ok, p.dtw)
					return
				}
				if d := (Frechet{}).Distance(p.t, p.q); d != p.fre {
					t.Errorf("concurrent Frechet = %g, want %g", d, p.fre)
					return
				}
				if _, ok := (Frechet{}).DistanceThreshold(p.t, p.q, p.fre); !ok {
					t.Error("concurrent Frechet threshold rejected its own distance")
					return
				}
				if d := edr.Distance(p.t, p.q); d != p.edr {
					t.Errorf("concurrent EDR = %g, want %g", d, p.edr)
					return
				}
				if d := erp.Distance(p.t, p.q); d != p.erp {
					t.Errorf("concurrent ERP = %g, want %g", d, p.erp)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDTWThresholdSteadyStateAllocs is the allocation regression gate for
// the tentpole: once the pools are warm, threshold DTW must not allocate.
// AllocsPerRun is unreliable under the race detector's instrumented
// allocator, so the check is skipped there (raceEnabled is set by a
// build-tagged sibling file).
func TestDTWThresholdSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
	r := rand.New(rand.NewSource(11))
	a, b := randTraj(r, 120), randTraj(r, 120)
	tau := DTW{}.Distance(a, b) // never abandons: full DP both directions
	// Warm the width classes this pair uses.
	DTW{}.DistanceThreshold(a, b, tau)
	allocs := testing.AllocsPerRun(200, func() {
		DTW{}.DistanceThreshold(a, b, tau)
	})
	if allocs > 0.5 {
		t.Errorf("steady-state DTWThreshold allocates %.1f times per call, want 0", allocs)
	}
}

// TestExactKernelsSteadyStateAllocs extends the zero-alloc gate to the
// exact DPs of every pooled measure.
func TestExactKernelsSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
	r := rand.New(rand.NewSource(13))
	a, b := randTraj(r, 90), randTraj(r, 75)
	edr := EDR{Eps: 0.05}
	erp := ERP{}
	kernels := map[string]func(){
		"dtw":     func() { DTW{}.Distance(a, b) },
		"frechet": func() { Frechet{}.Distance(a, b) },
		"edr":     func() { edr.Distance(a, b) },
		"erp":     func() { erp.Distance(a, b) },
	}
	for name, k := range kernels {
		k() // warm the pool
		if allocs := testing.AllocsPerRun(100, k); allocs > 0.5 {
			t.Errorf("%s: steady-state Distance allocates %.1f times per call, want 0", name, allocs)
		}
	}
}
