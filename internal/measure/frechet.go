package measure

import (
	"math"

	"dita/internal/dppool"
	"dita/internal/geom"
)

// Frechet is the discrete Fréchet distance (Definition A.1): the same
// recursion as DTW with max in place of sum. It is a metric, which is why
// the paper classifies it separately from DTW/LCSS/EDR.
type Frechet struct{}

// Name implements Measure.
func (Frechet) Name() string { return "FRECHET" }

// Accumulation implements Measure: Fréchet takes the max over the
// alignment, so trie descent checks each level against the full threshold
// instead of consuming it (Appendix A: "DITA doesn't need to update τ by
// subtracting distance from it when querying the index").
func (Frechet) Accumulation() Accumulation { return AccumMax }

// Epsilon implements Measure.
func (Frechet) Epsilon() float64 { return 0 }

// SupportsCoverageFilter implements Measure: Fréchet <= τ forces every
// point of each trajectory within τ of the other, so Lemma 5.4 applies.
func (Frechet) SupportsCoverageFilter() bool { return true }

// SupportsCellFilter implements Measure: Fréchet(T,Q) >= max_t min_q
// dist(t,q), so a max-form cell bound applies (see core.cellLowerBound).
func (Frechet) SupportsCellFilter() bool { return true }

// LengthLowerBound implements Measure.
func (Frechet) LengthLowerBound(m, n int) float64 { return 0 }

// AlignsEndpoints implements Measure: Fréchet paths are anchored like DTW.
func (Frechet) AlignsEndpoints() bool { return true }

// GapPoint implements Measure.
func (Frechet) GapPoint() (geom.Point, bool) { return geom.Point{}, false }

// Distance implements Measure with the O(mn) dynamic program.
func (Frechet) Distance(t, q []geom.Point) float64 {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1)
	}
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	inf := math.Inf(1)
	for j := 0; j <= n; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = inf
		ti := t[i-1]
		for j := 1; j <= n; j++ {
			d := ti.Dist(q[j-1])
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			// max(d, best); best may be +inf on the borders.
			if d > best {
				cur[j] = d
			} else {
				cur[j] = best
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// DistanceThreshold implements Measure. For Fréchet the threshold variant
// is particularly effective: any cell with point distance > tau is a wall,
// so we run the DP over the boolean "reachable within tau" relation and
// abandon when a full row is unreachable; the exact value is only computed
// when reachability holds.
func (f Frechet) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	m, n := len(t), len(q)
	if m == 0 || n == 0 {
		return math.Inf(1), false
	}
	// Quick necessary conditions.
	if t[0].Dist(q[0]) > tau || t[m-1].Dist(q[n-1]) > tau {
		return math.Inf(1), false
	}
	scratch := dppool.GetBools(2 * (n + 1))
	defer scratch.Release()
	prev, cur := scratch.S[:n+1], scratch.S[n+1:]
	for j := range prev {
		prev[j] = false
	}
	prev[0] = true
	for i := 1; i <= m; i++ {
		cur[0] = false
		ti := t[i-1]
		any := false
		for j := 1; j <= n; j++ {
			if prev[j-1] || prev[j] || cur[j-1] {
				cur[j] = ti.Dist(q[j-1]) <= tau
			} else {
				cur[j] = false
			}
			any = any || cur[j]
		}
		if !any {
			return math.Inf(1), false
		}
		prev, cur = cur, prev
	}
	if !prev[n] {
		return math.Inf(1), false
	}
	d := f.Distance(t, q)
	return d, d <= tau
}
