package measure

import (
	"dita/internal/geom"
)

// ERP is Edit distance with Real Penalty (Chen & Ng, VLDB 2004; listed in
// the paper's Section 2.3 catalogue of supported functions). A point may be
// matched against a point of the other trajectory (cost = their distance)
// or against a constant gap reference point g (cost = distance to g). ERP
// is a metric.
type ERP struct {
	// Gap is the gap reference point g; the conventional choice is the
	// origin, which the zero value provides.
	Gap geom.Point
}

// Name implements Measure.
func (ERP) Name() string { return "ERP" }

// Accumulation implements Measure: ERP sums real-valued penalties like
// DTW.
func (ERP) Accumulation() Accumulation { return AccumSum }

// Epsilon implements Measure.
func (ERP) Epsilon() float64 { return 0 }

// SupportsCoverageFilter implements Measure: a point may be gapped, and
// its gap penalty says nothing about its distance to the other
// trajectory's MBR, so Lemma 5.4 is unsound for ERP.
func (ERP) SupportsCoverageFilter() bool { return false }

// SupportsCellFilter implements Measure: the cell bound's min-over-other-
// trajectory term likewise ignores the gap option.
func (ERP) SupportsCellFilter() bool { return false }

// LengthLowerBound implements Measure.
func (ERP) LengthLowerBound(m, n int) float64 { return 0 }

// AlignsEndpoints implements Measure: leading and trailing points may be
// gapped, so endpoints are not anchored.
func (ERP) AlignsEndpoints() bool { return false }

// GapPoint implements Measure: index lower bounds must allow every indexed
// point to be matched at cost dist(p, Gap) instead of its distance to the
// query.
func (e ERP) GapPoint() (geom.Point, bool) { return e.Gap, true }

// Distance implements Measure with the O(mn) dynamic program.
func (e ERP) Distance(t, q []geom.Point) float64 {
	m, n := len(t), len(q)
	g := e.Gap
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + q[j-1].Dist(g)
	}
	for i := 1; i <= m; i++ {
		ti := t[i-1]
		tiGap := ti.Dist(g)
		cur[0] = prev[0] + tiGap
		for j := 1; j <= n; j++ {
			best := prev[j-1] + ti.Dist(q[j-1]) // match
			if v := prev[j] + tiGap; v < best { // gap t_i
				best = v
			}
			if v := cur[j-1] + q[j-1].Dist(g); v < best { // gap q_j
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// DistanceThreshold implements Measure with row-minimum early abandoning:
// ERP row minima are non-decreasing (all step costs are non-negative), so a
// row whose minimum exceeds tau proves the distance exceeds tau.
func (e ERP) DistanceThreshold(t, q []geom.Point, tau float64) (float64, bool) {
	m, n := len(t), len(q)
	g := e.Gap
	prev, cur, scratch := twoRows(n)
	defer scratch.Release()
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + q[j-1].Dist(g)
	}
	for i := 1; i <= m; i++ {
		ti := t[i-1]
		tiGap := ti.Dist(g)
		cur[0] = prev[0] + tiGap
		rowMin := cur[0]
		for j := 1; j <= n; j++ {
			best := prev[j-1] + ti.Dist(q[j-1])
			if v := prev[j] + tiGap; v < best {
				best = v
			}
			if v := cur[j-1] + q[j-1].Dist(g); v < best {
				best = v
			}
			cur[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > tau {
			return rowMin, false
		}
		prev, cur = cur, prev
	}
	d := prev[n]
	return d, d <= tau
}
