package serve

import (
	"fmt"
	"testing"

	"dita/internal/geom"
)

func q2(a, b float64) []geom.Point {
	return []geom.Point{{X: a, Y: b}, {X: a + 1, Y: b + 1}}
}

func searchKey(q []geom.Point, tau float64) Key {
	return Key{Op: OpSearch, Measure: "DTW", Tau: tau, QHash: HashQuery(q)}
}

func ev(bounds uint64, parts ...uint64) EpochView {
	return EpochView{Bounds: bounds, Parts: parts}
}

func TestCacheHitWhileEpochsUnchanged(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(1, 2)
	key := searchKey(q, 0.5)
	c.Put(key, q, []Hit{{ID: 7}}, 48, ev(0, 3, 5), []int{0})
	val, ok := c.Get(key, q, ev(0, 3, 5))
	if !ok {
		t.Fatal("expected hit at unchanged epochs")
	}
	if hits := val.([]Hit); len(hits) != 1 || hits[0].ID != 7 {
		t.Fatalf("wrong cached value: %+v", hits)
	}
	// Advancing a partition the answer does NOT depend on keeps the
	// entry valid — the point of per-partition watermarks.
	if _, ok := c.Get(key, q, ev(0, 3, 9)); !ok {
		t.Fatal("write to untouched partition invalidated the entry")
	}
}

func TestCacheStaleOnTouchedWrite(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(1, 2)
	key := searchKey(q, 0.5)
	c.Put(key, q, []Hit{{ID: 7}}, 48, ev(0, 3, 5), []int{0})
	if _, ok := c.Get(key, q, ev(0, 4, 5)); ok {
		t.Fatal("write to touched partition 0 must invalidate")
	}
	// Stale entries are removed, not retried.
	if st := c.Stats(); st.Entries != 0 || st.Stale != 1 {
		t.Fatalf("stale entry not removed: %+v", st)
	}
}

func TestCacheStaleOnBoundsGrowth(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(1, 2)
	key := searchKey(q, 0.5)
	// Touched = {0}; partition 1's epoch is untouched but the bounds
	// epoch advanced — partition 1 may have grown into relevance, so
	// the entry must die even though its touched set is unwritten.
	c.Put(key, q, []Hit{{ID: 7}}, 48, ev(0, 3, 5), []int{0})
	if _, ok := c.Get(key, q, ev(1, 3, 5)); ok {
		t.Fatal("bounds growth must invalidate every entry")
	}
}

func TestCacheNilTouchedDependsOnEverything(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(1, 2)
	key := Key{Op: OpKNN, Measure: "DTW", K: 5, QHash: HashQuery(q)}
	c.Put(key, q, []Hit{{ID: 1}}, 48, ev(0, 3, 5), nil)
	if _, ok := c.Get(key, q, ev(0, 3, 5)); !ok {
		t.Fatal("expected hit")
	}
	if _, ok := c.Get(key, q, ev(0, 3, 6)); ok {
		t.Fatal("nil touched (kNN) must invalidate on any partition write")
	}
}

func TestCacheEmptyTouchedSurvivesWrites(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(50, 50)
	key := searchKey(q, 0.1)
	// A search that pruned every partition depends only on the bounds:
	// writes that don't grow MBRs cannot make it wrong.
	c.Put(key, q, []Hit{}, 32, ev(2, 3, 5), []int{})
	if _, ok := c.Get(key, q, ev(2, 99, 99)); !ok {
		t.Fatal("empty touched set must survive non-growing writes")
	}
	if _, ok := c.Get(key, q, ev(3, 99, 99)); ok {
		t.Fatal("empty touched set must still die on bounds growth")
	}
}

func TestCacheHashCollisionGuard(t *testing.T) {
	c := NewCache(16, 0)
	qa, qb := q2(1, 2), q2(3, 4)
	key := searchKey(qa, 0.5) // pretend qb collides: same Key, different points
	c.Put(key, qa, []Hit{{ID: 1}}, 48, ev(0, 0), []int{0})
	if _, ok := c.Get(key, qb, ev(0, 0)); ok {
		t.Fatal("returned an answer for a different query with a colliding hash")
	}
	if _, ok := c.Get(key, qa, ev(0, 0)); ok {
		t.Fatal("colliding lookup should have evicted the resident entry")
	}
}

func TestCacheCaps(t *testing.T) {
	c := NewCache(3, 0)
	for i := 0; i < 5; i++ {
		q := q2(float64(i), 0)
		c.Put(searchKey(q, 0.5), q, []Hit{}, 32, ev(0, 0), nil)
	}
	if st := c.Stats(); st.Entries != 3 || st.Evicted != 2 {
		t.Fatalf("entry cap not enforced: %+v", st)
	}
	// Oldest entries evicted first.
	q0 := q2(0, 0)
	if _, ok := c.Get(searchKey(q0, 0.5), q0, ev(0, 0)); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	q4 := q2(4, 0)
	if _, ok := c.Get(searchKey(q4, 0.5), q4, ev(0, 0)); !ok {
		t.Fatal("newest entry missing")
	}

	// Byte cap, and a single entry always fits (the floor keeps the
	// evict loop from emptying the cache entirely).
	cb := NewCache(100, 100)
	for i := 0; i < 4; i++ {
		q := q2(float64(i), 1)
		cb.Put(searchKey(q, 0.5), q, []Hit{}, 60, ev(0, 0), nil)
	}
	if st := cb.Stats(); st.Entries != 1 || st.Bytes != 60 {
		t.Fatalf("byte cap not enforced: %+v", st)
	}

	// A result larger than the whole byte cap is never admitted: it
	// would pin more than maxBytes indefinitely (the evict loop keeps
	// one resident entry) and displace everything else for nothing.
	qh := q2(9, 9)
	cb.Put(searchKey(qh, 0.5), qh, []Hit{}, 101, ev(0, 0), nil)
	if _, ok := cb.Get(searchKey(qh, 0.5), qh, ev(0, 0)); ok {
		t.Fatal("oversized result was cached")
	}
	if st := cb.Stats(); st.Bytes > 100 {
		t.Fatalf("cache exceeds its byte cap: %+v", st)
	}
	// ...and the resident small entry survived the oversized Put.
	q3 := q2(3, 1)
	if _, ok := cb.Get(searchKey(q3, 0.5), q3, ev(0, 0)); !ok {
		t.Fatal("oversized Put displaced the resident entry")
	}
}

func TestCacheNilAndHashing(t *testing.T) {
	var c *Cache
	q := q2(1, 1)
	c.Put(searchKey(q, 0.5), q, []Hit{}, 0, ev(0), nil)
	if _, ok := c.Get(searchKey(q, 0.5), q, ev(0)); ok {
		t.Fatal("nil cache returned a hit")
	}
	if NewCache(0, 10) != nil {
		t.Fatal("maxEntries <= 0 must disable the cache")
	}
	if HashQuery(q2(1, 2)) == HashQuery(q2(1, 3)) {
		t.Fatal("distinct queries hashed identically")
	}
	// Exact float bits matter: nearly-equal queries are different queries.
	if HashQuery([]geom.Point{{X: 1, Y: 0}}) == HashQuery([]geom.Point{{X: 1 + 1e-15, Y: 0}}) {
		t.Fatal("nearly-equal queries conflated")
	}
}

func TestCacheKeySeparatesParameters(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(1, 2)
	c.Put(searchKey(q, 0.5), q, []Hit{{ID: 1}}, 48, ev(0, 0), nil)
	for _, k := range []Key{
		searchKey(q, 0.6),                                   // different tau
		{Op: OpKNN, Measure: "DTW", K: 5, QHash: HashQuery(q)},  // different op
		{Op: OpSearch, Measure: "Frechet", Tau: 0.5, QHash: HashQuery(q)}, // measure
	} {
		if _, ok := c.Get(k, q, ev(0, 0)); ok {
			t.Fatalf("key %+v aliased a different query's entry", k)
		}
	}
}

func TestCacheStatsString(t *testing.T) {
	// Ops print for logs and headers.
	for op, want := range map[Op]string{OpSearch: "search", OpKNN: "knn", OpJoin: "join", Op(9): "unknown"} {
		if got := op.String(); got != want {
			t.Fatalf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	_ = fmt.Sprintf("%+v", NewCache(1, 1).Stats())
}

// TestCacheAcrossRebalanceCutover pins the cache's behavior against the
// coordinator's online re-partitioning: a cutover APPENDS piece
// partitions (Parts grows), retires the replaced pids in place, and
// bumps the bounds epoch. Growth alone must not fake-stale entries whose
// touched partitions are unwritten; the cutover's bounds bump must stale
// everything; and a touched pid the live layout lacks (a recovery that
// shrank the table) reads stale, never out of range.
func TestCacheAcrossRebalanceCutover(t *testing.T) {
	c := NewCache(16, 0)
	q := q2(1, 2)
	key := searchKey(q, 0.5)
	c.Put(key, q, []Hit{{ID: 7}}, 48, ev(4, 1, 2), []int{1})
	// Parts grown, touched pid and bounds unchanged: still fresh — an
	// appended partition cannot hold a qualifying member without the
	// bounds epoch advancing.
	if _, ok := c.Get(key, q, ev(4, 1, 2, 0, 0)); !ok {
		t.Fatal("grown Parts with unchanged touched pid invalidated the entry")
	}
	// The cutover itself bumps Bounds: every entry dies.
	if _, ok := c.Get(key, q, ev(5, 1, 2, 0, 0)); ok {
		t.Fatal("cache served across a cutover's bounds bump")
	}
	c.Put(key, q, []Hit{{ID: 7}}, 48, ev(6, 1, 2, 3), []int{2})
	if _, ok := c.Get(key, q, ev(6, 1, 2)); ok {
		t.Fatal("cache served an entry touching a partition the live layout lacks")
	}
}
