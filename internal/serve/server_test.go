package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dita/internal/core"
	"dita/internal/gen"
	"dita/internal/geom"
	"dita/internal/traj"
)

// devServer builds an EngineBackend server over a small generated
// dataset with ingest enabled (memory-only WAL) and returns the HTTP
// test server plus the dataset for query material.
func devServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *traj.Dataset) {
	t.Helper()
	d := gen.Generate(gen.BeijingLike(120, 11))
	opts := core.DefaultOptions()
	opts.NG = 4
	e, err := core.NewEngine(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnableIngest(core.IngestConfig{}); err != nil {
		t.Fatal(err)
	}
	cfg.Backend = &EngineBackend{E: e, Dataset: "trips"}
	cfg.Dataset = "trips"
	cfg.Measure = "DTW"
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, d
}

func post(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func rawPoints(ps []geom.Point) [][2]float64 {
	out := make([][2]float64, len(ps))
	for i, p := range ps {
		out[i] = [2]float64{p.X, p.Y}
	}
	return out
}

func decodeQuery(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return qr
}

func TestServerSearchCacheLifecycle(t *testing.T) {
	ts, srv, d := devServer(t, Config{})
	q := d.Trajs[3]
	req := searchRequest{Query: rawPoints(q.Points), Tau: 0.4}

	status, hdr, body := post(t, ts.URL+"/v1/search", req)
	if status != http.StatusOK {
		t.Fatalf("search: %d %s", status, body)
	}
	if got := hdr.Get("X-Dita-Cache"); got != "miss" {
		t.Fatalf("first query cache state %q, want miss", got)
	}
	first := decodeQuery(t, body)
	if first.Count == 0 {
		t.Fatal("self-query returned no hits")
	}

	status, hdr, body = post(t, ts.URL+"/v1/search", req)
	if status != http.StatusOK || hdr.Get("X-Dita-Cache") != "hit" {
		t.Fatalf("repeat query: status=%d cache=%q", status, hdr.Get("X-Dita-Cache"))
	}
	if got := decodeQuery(t, body); got.Count != first.Count {
		t.Fatalf("cached answer diverged: %d vs %d hits", got.Count, first.Count)
	}

	// Bypass must execute even with a warm cache.
	_, hdr, _ = post(t, ts.URL+"/v1/search?cache=bypass", req)
	if got := hdr.Get("X-Dita-Cache"); got != "bypass" {
		t.Fatalf("bypass state %q", got)
	}

	// An acked write invalidates; the re-executed answer includes the
	// new member.
	ins := ingestRequest{ID: 100001, Points: rawPoints(q.Points)}
	if status, _, body := post(t, ts.URL+"/v1/ingest", ins); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	status, hdr, body = post(t, ts.URL+"/v1/search", req)
	if status != http.StatusOK || hdr.Get("X-Dita-Cache") != "miss" {
		t.Fatalf("post-ingest query must re-execute: status=%d cache=%q", status, hdr.Get("X-Dita-Cache"))
	}
	after := decodeQuery(t, body)
	if after.Count != first.Count+1 {
		t.Fatalf("post-ingest hits = %d, want %d", after.Count, first.Count+1)
	}

	// Delete invalidates again and the answer shrinks back.
	status, _, body = post(t, ts.URL+"/v1/delete", deleteRequest{ID: 100001})
	if status != http.StatusOK {
		t.Fatalf("delete: %d %s", status, body)
	}
	var wr writeResponse
	if err := json.Unmarshal(body, &wr); err != nil || !wr.OK || wr.Existed == nil || !*wr.Existed {
		t.Fatalf("delete response %s (err %v)", body, err)
	}
	_, hdr, body = post(t, ts.URL+"/v1/search", req)
	if hdr.Get("X-Dita-Cache") != "miss" {
		t.Fatalf("post-delete query served from cache")
	}
	if got := decodeQuery(t, body); got.Count != first.Count {
		t.Fatalf("post-delete hits = %d, want %d", got.Count, first.Count)
	}

	st := srv.CacheStats()
	if st.Hits < 1 || st.Stale < 2 {
		t.Fatalf("cache counters off: %+v", st)
	}
}

func TestServerKNNAndJoin(t *testing.T) {
	ts, _, d := devServer(t, Config{})
	q := d.Trajs[5]

	status, hdr, body := post(t, ts.URL+"/v1/knn", knnRequest{Query: rawPoints(q.Points), K: 5})
	if status != http.StatusOK {
		t.Fatalf("knn: %d %s", status, body)
	}
	if got := decodeQuery(t, body); got.Count != 5 {
		t.Fatalf("knn returned %d hits, want 5", got.Count)
	}
	_, hdr, _ = post(t, ts.URL+"/v1/knn", knnRequest{Query: rawPoints(q.Points), K: 5})
	if hdr.Get("X-Dita-Cache") != "hit" {
		t.Fatal("repeated kNN not cached")
	}

	status, hdr, body = post(t, ts.URL+"/v1/join", joinRequest{Tau: 0.2})
	if status != http.StatusOK {
		t.Fatalf("join: %d %s", status, body)
	}
	if got := decodeQuery(t, body); got.Count == 0 {
		t.Fatal("self-join returned no pairs")
	}
	_, hdr, _ = post(t, ts.URL+"/v1/join", joinRequest{Tau: 0.2})
	if hdr.Get("X-Dita-Cache") != "hit" {
		t.Fatal("repeated self-join not cached")
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	ts, _, d := devServer(t, Config{})
	q := rawPoints(d.Trajs[0].Points)

	cases := []struct {
		path string
		body any
		want int
	}{
		{"/v1/search", searchRequest{Query: q, Tau: -1}, http.StatusBadRequest},
		{"/v1/search", searchRequest{Query: q[:1], Tau: 0.5}, http.StatusBadRequest},
		{"/v1/knn", knnRequest{Query: q, K: 0}, http.StatusBadRequest},
		{"/v1/join", joinRequest{Tau: -2}, http.StatusBadRequest},
		{"/v1/ingest", ingestRequest{ID: 1, Points: q[:1]}, http.StatusBadRequest},
		{"/v1/join", joinRequest{Right: "other", Tau: 0.2}, http.StatusInternalServerError}, // engine backend: self-join only
	}
	for _, tc := range cases {
		if status, _, body := post(t, ts.URL+tc.path, tc.body); status != tc.want {
			t.Errorf("%s %+v: status %d (%s), want %d", tc.path, tc.body, status, body, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on query endpoint: %d", resp.StatusCode)
	}

	// Unknown fields are rejected — catches silently-ignored typos like
	// "thau".
	raw := []byte(`{"query":[[0,0],[1,1]],"thau":0.5}`)
	r2, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: %d", r2.StatusCode)
	}
}

func TestServerHealthEndpoints(t *testing.T) {
	ts, _, _ := devServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
}

// blockingBackend wraps EngineBackend-free fakes for shed/backlog tests.
type fakeBackend struct {
	searchFn  func(ctx context.Context, q []geom.Point, tau float64) ([]Hit, error)
	ingestFn  func(ctx context.Context, t *traj.T) error
	epochFn   func() (EpochView, error)
	touchedFn func() ([]int, error)
}

func (f *fakeBackend) Search(ctx context.Context, q []geom.Point, tau float64) ([]Hit, error) {
	if f.searchFn != nil {
		return f.searchFn(ctx, q, tau)
	}
	return nil, nil
}
func (f *fakeBackend) KNN(context.Context, []geom.Point, int) ([]Hit, error)   { return nil, nil }
func (f *fakeBackend) Join(context.Context, string, float64) ([]JoinPair, error) { return nil, nil }
func (f *fakeBackend) Ingest(ctx context.Context, t *traj.T) error {
	if f.ingestFn != nil {
		return f.ingestFn(ctx, t)
	}
	return nil
}
func (f *fakeBackend) Delete(context.Context, int) (bool, error) { return false, nil }
func (f *fakeBackend) Epochs() (EpochView, error) {
	if f.epochFn != nil {
		return f.epochFn()
	}
	return EpochView{Parts: []uint64{0}}, nil
}
func (f *fakeBackend) Touched([]geom.Point, float64) ([]int, error) {
	if f.touchedFn != nil {
		return f.touchedFn()
	}
	return nil, nil
}
func (f *fakeBackend) Ready() error                                 { return nil }

// The cache dependency set must be computed after the epoch snapshot,
// not before admission: if a partition's MBR grows while the request
// waits at the gate, a touched set from before the growth paired with
// a Bounds epoch from after it would let later non-growing writes to
// the newly relevant partition pass validation — a stale hit. The fake
// backend emulates exactly that interleaving: the first Touched call
// (pre-gate, cost prediction) sees {0}, every later one (post-growth)
// sees {0, 1}, and Epochs always reports the post-growth Bounds.
func TestServerNoStaleHitWhenBoundsGrowDuringAdmission(t *testing.T) {
	var touchedCalls atomic.Int32
	var mu sync.Mutex
	parts := []uint64{5, 5}
	fb := &fakeBackend{
		searchFn: func(context.Context, []geom.Point, float64) ([]Hit, error) {
			return []Hit{{ID: 1}}, nil
		},
		touchedFn: func() ([]int, error) {
			if touchedCalls.Add(1) == 1 {
				return []int{0}, nil // pre-growth view
			}
			return []int{0, 1}, nil // partition 1 grew into relevance
		},
		epochFn: func() (EpochView, error) {
			mu.Lock()
			defer mu.Unlock()
			return EpochView{Bounds: 1, Parts: append([]uint64{}, parts...)}, nil
		},
	}
	s, err := New(Config{Backend: fb, Dataset: "trips", Measure: "DTW"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := searchRequest{Query: [][2]float64{{0, 0}, {1, 1}}, Tau: 0.5}
	if status, hdr, body := post(t, ts.URL+"/v1/search", req); status != http.StatusOK || hdr.Get("X-Dita-Cache") != "miss" {
		t.Fatalf("first query: %d %q %s", status, hdr.Get("X-Dita-Cache"), body)
	}
	// A non-growing write to the newly relevant partition 1. The entry
	// must depend on it (touched computed after the snapshot) and die.
	mu.Lock()
	parts[1]++
	mu.Unlock()
	if status, hdr, _ := post(t, ts.URL+"/v1/search", req); status != http.StatusOK || hdr.Get("X-Dita-Cache") == "hit" {
		t.Fatalf("stale hit: write to a post-growth-relevant partition did not invalidate (state %q)", hdr.Get("X-Dita-Cache"))
	}
}

// A waiter that joins an in-flight execution AFTER a write has been
// acked must not be handed the flight's pre-write answer: coalesced
// results are validated against live epochs like cache entries, and a
// stale flight re-executes for the late joiner (read-your-writes).
func TestServerCoalescedWaiterRevalidates(t *testing.T) {
	var epoch atomic.Uint64
	var calls atomic.Int32
	leaderIn := make(chan struct{}, 1)
	release := make(chan struct{})
	fb := &fakeBackend{
		searchFn: func(ctx context.Context, _ []geom.Point, _ float64) ([]Hit, error) {
			if calls.Add(1) == 1 {
				leaderIn <- struct{}{}
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return []Hit{{ID: 1}}, nil // answer from before the write
			}
			return []Hit{{ID: 2}}, nil // answer including the write
		},
		epochFn: func() (EpochView, error) {
			return EpochView{Parts: []uint64{epoch.Load()}}, nil
		},
	}
	s, err := New(Config{Backend: fb, Dataset: "trips", Measure: "DTW"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := searchRequest{Query: [][2]float64{{0, 0}, {1, 1}}, Tau: 0.5}
	key := Key{Op: OpSearch, Measure: "DTW", Tau: 0.5, QHash: HashQuery([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}})}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: snapshots epoch 0, blocks mid-execution
		defer wg.Done()
		status, _, body := post(t, ts.URL+"/v1/search", req)
		if status != http.StatusOK {
			t.Errorf("leader: %d %s", status, body)
		}
	}()
	<-leaderIn
	epoch.Add(1) // an acked write lands while the flight is in progress

	waiterDone := make(chan struct{})
	var waiterState string
	var waiterHits []Hit
	go func() { // late joiner: its request begins after the write
		defer close(waiterDone)
		status, hdr, body := post(t, ts.URL+"/v1/search", req)
		if status != http.StatusOK {
			t.Errorf("waiter: %d %s", status, body)
			return
		}
		waiterState = hdr.Get("X-Dita-Cache")
		waiterHits = decodeQuery(t, body).Hits
	}()
	// Hold the flight open until the waiter has actually joined it, so
	// the coalesced path (not a fresh leadership) is exercised.
	for {
		s.flights.mu.Lock()
		f := s.flights.flights[key]
		w := 0
		if f != nil {
			w = f.waiters
		}
		s.flights.mu.Unlock()
		if w >= 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	<-waiterDone

	if waiterState == "coalesced" {
		t.Fatalf("stale flight result served as coalesced")
	}
	if len(waiterHits) != 1 || waiterHits[0].ID != 2 {
		t.Fatalf("waiter got pre-write answer: %+v (state %q)", waiterHits, waiterState)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend executed %d times, want 2 (leader + revalidating waiter)", got)
	}
}

// Saturating the cost budget sheds with a typed 429 + Retry-After
// while the in-flight query is unaffected.
func TestServerShedsWith429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	fb := &fakeBackend{
		searchFn: func(ctx context.Context, _ []geom.Point, _ float64) ([]Hit, error) {
			started <- struct{}{}
			select {
			case <-release:
				return []Hit{{ID: 1}}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
	s, err := New(Config{
		Backend: fb, Dataset: "trips", Measure: "DTW",
		CostBudgetUS: 1, DefaultCostUS: 1000, // any second query exceeds the budget
		MaxQueue: 0, QueueTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		status, _, body := post(t, ts.URL+"/v1/search", searchRequest{Query: [][2]float64{{0, 0}, {1, 1}}, Tau: 0.5})
		if status != http.StatusOK {
			t.Errorf("in-flight query failed: %d %s", status, body)
		}
	}()
	<-started // the first query holds the whole budget

	status, hdr, body := post(t, ts.URL+"/v1/search", searchRequest{Query: [][2]float64{{2, 2}, {3, 3}}, Tau: 0.5})
	if status != http.StatusTooManyRequests {
		t.Fatalf("expected 429 shed, got %d %s", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.RetryAfterMS <= 0 {
		t.Fatalf("shed response not typed: %s", body)
	}
	close(release)
	wg.Wait()
}

// Ingest backpressure (delta backlog) maps to 503 + Retry-After,
// distinct from the query path's 429, and the shared retry helper
// spins until the pressure clears.
func TestServerIngestBacklog503(t *testing.T) {
	var fails int32
	var mu sync.Mutex
	fb := &fakeBackend{
		ingestFn: func(context.Context, *traj.T) error {
			mu.Lock()
			defer mu.Unlock()
			if fails > 0 {
				fails--
				return fmt.Errorf("worker 2: %w", core.ErrDeltaBacklog)
			}
			return nil
		},
	}
	s, err := New(Config{Backend: fb, Dataset: "trips", Measure: "DTW"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mu.Lock()
	fails = 2
	mu.Unlock()
	req := ingestRequest{ID: 5, Points: [][2]float64{{0, 0}, {1, 1}}}
	status, hdr, body := post(t, ts.URL+"/v1/ingest", req)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("backlogged ingest: %d %s, want 503", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// The jittered-backoff helper retries through the remaining failure.
	retries, err := RetryOverloaded(context.Background(), Backoff{Base: time.Millisecond, Seed: 1}, func() error {
		status, _, _ := post(t, ts.URL+"/v1/ingest", req)
		switch status {
		case http.StatusOK:
			return nil
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			return core.ErrDeltaBacklog
		default:
			return fmt.Errorf("ingest status %d", status)
		}
	})
	if err != nil {
		t.Fatalf("retry helper: %v", err)
	}
	if retries != 1 {
		t.Fatalf("retries = %d, want 1", retries)
	}
}
