// Package serve is the long-lived HTTP serving layer over DITA: a
// JSON API for search/kNN/join/ingest/delete with three cooperating
// layers between the socket and the engine — a result cache
// invalidated by ingest watermarks (epoch counters, no clocks), a
// request coalescer (identical in-flight queries share one
// execution), and cost-based load shedding (an EWMA cost model prices
// each query; admission charges the price against a budget and sheds
// with typed 429/503 + Retry-After instead of queueing unboundedly).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dita/internal/core"
	"dita/internal/dnet"
	"dita/internal/geom"
	"dita/internal/traj"
)

// Hit is one search/kNN answer.
type Hit struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// JoinPair is one join answer.
type JoinPair struct {
	TID      int     `json:"tid"`
	QID      int     `json:"qid"`
	Distance float64 `json:"distance"`
}

// EpochView snapshots a dataset's write epochs: Parts[pid] counts
// acked writes to partition pid, Bounds the writes that grew any
// partition's MBR. See dnet.EpochView for the invalidation argument.
type EpochView struct {
	Bounds uint64
	Parts  []uint64
}

// Backend abstracts the query engine the server fronts: the network
// coordinator (production) or a single-process core.Engine (dev mode).
type Backend interface {
	Search(ctx context.Context, q []geom.Point, tau float64) ([]Hit, error)
	KNN(ctx context.Context, q []geom.Point, k int) ([]Hit, error)
	// Join runs dataset ⋈ right. Implementations may only support
	// right == the primary dataset (self-join).
	Join(ctx context.Context, right string, tau float64) ([]JoinPair, error)
	Ingest(ctx context.Context, t *traj.T) error
	Delete(ctx context.Context, id int) (bool, error)

	// Epochs snapshots the current write epochs. Callers intending to
	// cache a result must snapshot BEFORE executing the query: a write
	// landing in between then makes the entry look stale (safe), never
	// fresh.
	Epochs() (EpochView, error)
	// Touched reports the partitions a threshold-search answer depends
	// on (the ones global pruning cannot exclude), or nil meaning "all
	// partitions" — the sound fallback used for kNN and join, whose
	// pruning depends on data, not just bounds.
	Touched(q []geom.Point, tau float64) ([]int, error)
	// Ready is the /readyz signal.
	Ready() error
}

// CoordBackend serves a dispatched dataset through a dnet.Coordinator.
type CoordBackend struct {
	C       *dnet.Coordinator
	Dataset string
}

func (b *CoordBackend) Search(ctx context.Context, q []geom.Point, tau float64) ([]Hit, error) {
	hits, err := b.C.SearchContext(ctx, b.Dataset, &traj.T{ID: -1, Points: q}, tau)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{ID: h.ID, Distance: h.Distance}
	}
	return out, nil
}

func (b *CoordBackend) KNN(ctx context.Context, q []geom.Point, k int) ([]Hit, error) {
	hits, err := b.C.SearchKNNContext(ctx, b.Dataset, &traj.T{ID: -1, Points: q}, k)
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{ID: h.ID, Distance: h.Distance}
	}
	return out, nil
}

func (b *CoordBackend) Join(ctx context.Context, right string, tau float64) ([]JoinPair, error) {
	pairs, err := b.C.JoinContext(ctx, b.Dataset, right, tau)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPair{TID: p.TID, QID: p.QID, Distance: p.Distance}
	}
	return out, nil
}

func (b *CoordBackend) Ingest(ctx context.Context, t *traj.T) error {
	return b.C.IngestContext(ctx, b.Dataset, t)
}

func (b *CoordBackend) Delete(ctx context.Context, id int) (bool, error) {
	return b.C.DeleteContext(ctx, b.Dataset, id)
}

func (b *CoordBackend) Epochs() (EpochView, error) {
	v, err := b.C.Epochs(b.Dataset)
	if err != nil {
		return EpochView{}, err
	}
	return EpochView{Bounds: v.Bounds, Parts: v.Parts}, nil
}

func (b *CoordBackend) Touched(q []geom.Point, tau float64) ([]int, error) {
	return b.C.RelevantPartitions(b.Dataset, q, tau)
}

func (b *CoordBackend) Ready() error { return b.C.Ready() }

// EngineBackend serves a single-process core.Engine — dev mode. The
// serving layer is the engine's only writer, so one process-local
// epoch counter (bumped after each acked write) is a sound watermark:
// the whole engine is one "partition".
type EngineBackend struct {
	E       *core.Engine
	Dataset string

	mu    sync.Mutex
	epoch uint64
}

func (b *EngineBackend) Search(ctx context.Context, q []geom.Point, tau float64) ([]Hit, error) {
	res, err := b.E.SearchContext(ctx, &traj.T{ID: -1, Points: q}, tau, nil)
	if err != nil {
		return nil, err
	}
	return engineHits(res), nil
}

func (b *EngineBackend) KNN(ctx context.Context, q []geom.Point, k int) ([]Hit, error) {
	res, err := b.E.SearchKNNContext(ctx, &traj.T{ID: -1, Points: q}, k, nil)
	if err != nil {
		return nil, err
	}
	return engineHits(res), nil
}

func engineHits(res []core.SearchResult) []Hit {
	out := make([]Hit, len(res))
	for i, r := range res {
		out[i] = Hit{ID: r.Traj.ID, Distance: r.Distance}
	}
	return out
}

func (b *EngineBackend) Join(ctx context.Context, right string, tau float64) ([]JoinPair, error) {
	if right != b.Dataset {
		return nil, fmt.Errorf("serve: engine backend only self-joins %q, not %q", b.Dataset, right)
	}
	pairs, err := b.E.JoinContext(ctx, b.E, tau, core.DefaultJoinOptions(), nil)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPair{TID: p.T.ID, QID: p.Q.ID, Distance: p.Distance}
	}
	return out, nil
}

func (b *EngineBackend) Ingest(ctx context.Context, t *traj.T) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := b.E.Insert(t); err != nil {
		return err
	}
	b.bump()
	return nil
}

func (b *EngineBackend) Delete(ctx context.Context, id int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	existed, err := b.E.Delete(id)
	if err != nil {
		return false, err
	}
	if existed {
		b.bump()
	}
	return existed, nil
}

func (b *EngineBackend) bump() {
	b.mu.Lock()
	b.epoch++
	b.mu.Unlock()
}

func (b *EngineBackend) Epochs() (EpochView, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return EpochView{Parts: []uint64{b.epoch}}, nil
}

// Touched returns nil ("all partitions"): with a single global epoch
// there is nothing finer to depend on.
func (b *EngineBackend) Touched([]geom.Point, float64) ([]int, error) { return nil, nil }

func (b *EngineBackend) Ready() error {
	if b.E == nil {
		return errors.New("serve: engine not built")
	}
	return nil
}
