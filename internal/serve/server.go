package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dita/internal/admit"
	"dita/internal/core"
	"dita/internal/geom"
	"dita/internal/obs"
	"dita/internal/traj"
)

// Config assembles a Server.
type Config struct {
	// Backend executes the queries (required).
	Backend Backend
	// Dataset is the primary dataset name; joins against it are
	// cacheable self-joins.
	Dataset string
	// Measure names the distance measure, part of every cache key.
	Measure string

	// CacheEntries / CacheBytes bound the result cache (defaults 4096
	// entries, 64 MiB; CacheEntries < 0 disables caching).
	CacheEntries int
	CacheBytes   int

	// CostBudgetUS is the predicted cost (µs) allowed to execute
	// concurrently; <= 0 disables load shedding. MaxQueue and
	// QueueTimeout shape the admission queue (see admit.CostPolicy).
	CostBudgetUS int64
	MaxQueue     int
	QueueTimeout time.Duration
	// DefaultCostUS seeds the cost model's prediction for unobserved
	// query shapes (default 2000).
	DefaultCostUS int64

	// RequestTimeout caps one request's total time (default 30s).
	RequestTimeout time.Duration

	// Obs receives metrics; a private registry is created when nil.
	// Health carries extra readiness checks; the server always adds a
	// "backend" check.
	Obs    *obs.Registry
	Health *obs.Health
}

// Server is the HTTP serving layer: cache → coalesce → shed → backend.
type Server struct {
	cfg     Config
	cache   *Cache
	flights *flightGroup
	model   *costModel
	gate    *admit.CostGate
	mux     *http.ServeMux
	met     serveMetrics
}

type serveMetrics struct {
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	coalesced   *obs.Counter
	shed        *obs.Counter
	backlog     *obs.Counter
}

// New builds a Server from the config.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("serve: Config.Backend is required")
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Health == nil {
		cfg.Health = obs.NewHealth()
	}
	cfg.Health.SetCheck("backend", cfg.Backend.Ready)
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries, cfg.CacheBytes),
		flights: newFlightGroup(),
		model:   newCostModel(cfg.DefaultCostUS),
		gate: admit.NewCostGate(admit.CostPolicy{
			BudgetUS:     cfg.CostBudgetUS,
			MaxQueue:     cfg.MaxQueue,
			QueueTimeout: cfg.QueueTimeout,
		}),
	}
	r := cfg.Obs
	s.met = serveMetrics{
		cacheHits:   r.Counter("serve_cache_hits_total"),
		cacheMisses: r.Counter("serve_cache_misses_total"),
		coalesced:   r.Counter("serve_coalesced_total"),
		shed:        r.Counter("serve_shed_total"),
		backlog:     r.Counter("serve_backlog_total"),
	}
	r.GaugeFunc("serve_cache_entries", func() int64 { return int64(s.cache.Stats().Entries) })
	r.GaugeFunc("serve_cache_bytes", func() int64 { return int64(s.cache.Stats().Bytes) })
	s.gate.Instrument(r, "serve_admit")

	s.mux = obs.NewMux(r, cfg.Health)
	handle := func(path, name string, h http.HandlerFunc) {
		s.mux.Handle(path, obs.InstrumentHandler(r, name, h))
	}
	handle("/v1/search", "serve_search", s.handleSearch)
	handle("/v1/knn", "serve_knn", s.handleKNN)
	handle("/v1/join", "serve_join", s.handleJoin)
	handle("/v1/ingest", "serve_ingest", s.handleIngest)
	handle("/v1/delete", "serve_delete", s.handleDelete)
	return s, nil
}

// Handler returns the server's HTTP handler: the five /v1 endpoints
// plus the obs mux (/metrics, /healthz, /readyz, pprof, ...).
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats exposes the result-cache counters (for bench/soak
// reports).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// --- request/response wire types ---

type searchRequest struct {
	Query [][2]float64 `json:"query"`
	Tau   float64      `json:"tau"`
}

type knnRequest struct {
	Query [][2]float64 `json:"query"`
	K     int          `json:"k"`
}

type joinRequest struct {
	Right string  `json:"right"`
	Tau   float64 `json:"tau"`
}

type ingestRequest struct {
	ID     int          `json:"id"`
	Points [][2]float64 `json:"points"`
}

type deleteRequest struct {
	ID int `json:"id"`
}

type queryResponse struct {
	Hits      []Hit      `json:"hits,omitempty"`
	Pairs     []JoinPair `json:"pairs,omitempty"`
	Count     int        `json:"count"`
	Cache     string     `json:"cache"`
	ElapsedUS int64      `json:"elapsed_us"`
}

type writeResponse struct {
	OK      bool  `json:"ok"`
	Existed *bool `json:"existed,omitempty"`
}

type errorResponse struct {
	Error        string `json:"error"`
	RetryAfterMS int    `json:"retry_after_ms,omitempty"`
}

// retryAfter is the hint sent with 429/503 rejections. One second is
// long enough to drain a burst at any realistic budget and short
// enough that clients with the jittered Backoff converge quickly.
const retryAfter = 1 * time.Second

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return false
	}
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds())))
		resp.RetryAfterMS = int(retryAfter.Milliseconds())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

func toPoints(raw [][2]float64) []geom.Point {
	pts := make([]geom.Point, len(raw))
	for i, p := range raw {
		pts[i] = geom.Point{X: p[0], Y: p[1]}
	}
	return pts
}

// --- query path ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Query) < 2 || req.Tau < 0 {
		writeError(w, http.StatusBadRequest, errors.New("need query with >= 2 points and tau >= 0"))
		return
	}
	s.runQuery(w, r, OpSearch, req.Tau, 0, "", toPoints(req.Query))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Query) < 2 || req.K < 1 {
		writeError(w, http.StatusBadRequest, errors.New("need query with >= 2 points and k >= 1"))
		return
	}
	s.runQuery(w, r, OpKNN, 0, req.K, "", toPoints(req.Query))
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Right == "" {
		req.Right = s.cfg.Dataset
	}
	if req.Tau < 0 {
		writeError(w, http.StatusBadRequest, errors.New("need tau >= 0"))
		return
	}
	s.runQuery(w, r, OpJoin, req.Tau, 0, req.Right, nil)
}

// runQuery is the shared read path: cache lookup, then a coalesced
// execution that passes admission, snapshots epochs, runs the
// backend, feeds the cost model, and fills the cache.
func (s *Server) runQuery(w http.ResponseWriter, r *http.Request, op Op, tau float64, k int, right string, q []geom.Point) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	bypass := r.URL.Query().Get("cache") == "bypass"
	// Joins against a different dataset would need that dataset's
	// epochs too; rather than track two epoch streams they are simply
	// never cached.
	cacheable := !bypass && (op != OpJoin || right == s.cfg.Dataset)
	key := Key{Op: op, Right: right, Measure: s.cfg.Measure, Tau: tau, K: k, QHash: HashQuery(q)}
	start := time.Now()

	if cacheable {
		if cur, err := s.cfg.Backend.Epochs(); err == nil {
			if val, ok := s.cache.Get(key, q, cur); ok {
				s.met.cacheHits.Inc()
				s.respond(w, op, val, "hit", start)
				return
			}
		}
		s.met.cacheMisses.Inc()
	}

	exec := func(fctx context.Context) (*execResult, error) {
		// Pre-gate Touched lookup feeds the cost model ONLY. It must
		// not become the cache dependency set: Acquire can queue for
		// up to QueueTimeout, and a write growing a partition's MBR in
		// between would leave us with a post-growth Bounds epoch over a
		// pre-growth touched set — a stale entry that looks fresh.
		var predicted []int
		if op == OpSearch {
			predicted, _ = s.cfg.Backend.Touched(q, tau)
		}
		release, err := s.gate.Acquire(fctx, s.model.predict(op, len(predicted)))
		if err != nil {
			return nil, err
		}
		defer release()
		res := &execResult{}
		// Epoch snapshot BEFORE execution: a write landing after it
		// makes the answer look stale, never fresh. The dependency set
		// is computed AFTER the snapshot — bounds growth in between
		// bumps Bounds and fails validation anyway, and a touched set
		// computed at later bounds is a superset of the snapshot-time
		// set (bounds only grow), so it can only over-invalidate. A
		// Touched error degrades to nil ("all partitions") — sound,
		// just coarser.
		if res.epochs, err = s.cfg.Backend.Epochs(); err == nil {
			res.epochsOK = true
			if op == OpSearch {
				res.touched, _ = s.cfg.Backend.Touched(q, tau)
			}
		}
		t0 := time.Now()
		var bytes int
		switch op {
		case OpSearch:
			hits, herr := s.cfg.Backend.Search(fctx, q, tau)
			res.val, bytes, err = hits, 32+16*len(hits), herr
		case OpKNN:
			hits, herr := s.cfg.Backend.KNN(fctx, q, k)
			res.val, bytes, err = hits, 32+16*len(hits), herr
		case OpJoin:
			pairs, jerr := s.cfg.Backend.Join(fctx, right, tau)
			res.val, bytes, err = pairs, 32+24*len(pairs), jerr
		}
		if err != nil {
			return nil, err
		}
		s.model.observe(op, len(res.touched), time.Since(t0).Microseconds())
		if cacheable && res.epochsOK {
			s.cache.Put(key, q, res.val, bytes, res.epochs, res.touched)
		}
		return res, nil
	}

	var res *execResult
	var shared bool
	var err error
	if bypass {
		// A bypass request must observe the backend directly — no
		// cache fill, and no coalescing either, or it could be handed
		// a flight that started (and snapshotted its answer) before a
		// write the client has already seen acked.
		res, err = exec(ctx)
	} else {
		var v any
		v, shared, err = s.flights.Do(ctx, key, q, func(fctx context.Context) (any, error) {
			return exec(fctx)
		})
		if err == nil {
			res = v.(*execResult)
		}
		if err == nil && shared && !s.flightCurrent(res) {
			// Read-your-writes for late joiners: the flight snapshotted
			// its answer before this caller's request began (or at
			// least before a write this caller may have seen acked).
			// Exactly like a cache hit, the shared result must be
			// proven current at the live epochs; when it is not — or
			// when it carries no snapshot to check — re-execute
			// uncoalesced and report a plain miss.
			shared = false
			res, err = exec(ctx)
		}
	}
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	state := "miss"
	switch {
	case bypass:
		state = "bypass"
	case shared:
		state = "coalesced"
		s.met.coalesced.Inc()
	}
	s.respond(w, op, res.val, state, start)
}

// execResult is one backend execution's answer plus the epoch evidence
// needed to prove it current later: the snapshot it was computed at
// and the partitions it depends on (nil touched = all partitions).
// The coalescer shares it between waiters; epochsOK is false when the
// epoch snapshot itself failed, in which case nothing can be proven.
type execResult struct {
	val      any
	epochs   EpochView
	epochsOK bool
	touched  []int
}

// flightCurrent reports whether a coalesced flight's result is still
// provably current at the live epochs — the same validation Cache.Get
// applies to a resident entry. Epoch-lookup failure counts as "not
// current": the caller re-executes rather than serve unproven state.
func (s *Server) flightCurrent(res *execResult) bool {
	if !res.epochsOK {
		return false
	}
	cur, err := s.cfg.Backend.Epochs()
	if err != nil {
		return false
	}
	return freshAt(res.epochs, res.touched, cur)
}

func (s *Server) respond(w http.ResponseWriter, op Op, val any, state string, start time.Time) {
	resp := queryResponse{Cache: state, ElapsedUS: time.Since(start).Microseconds()}
	switch op {
	case OpSearch, OpKNN:
		hits, _ := val.([]Hit)
		resp.Hits, resp.Count = hits, len(hits)
	case OpJoin:
		pairs, _ := val.([]JoinPair)
		resp.Pairs, resp.Count = pairs, len(pairs)
	}
	w.Header().Set("X-Dita-Cache", state)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// writeQueryError maps read-path failures: admission shedding is 429
// (the client should retry after backoff — the server is healthy,
// just full), delta backlog is 503 (a replica's ingest pipeline is
// behind; reads that reached the engine don't normally see it, but a
// backend may surface it), timeouts are 504, everything else 500.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admit.ErrOverloaded):
		s.met.shed.Inc()
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, core.ErrDeltaBacklog):
		s.met.backlog.Inc()
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// --- write path ---

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Points) < 2 {
		writeError(w, http.StatusBadRequest, errors.New("need >= 2 points"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	t := &traj.T{ID: req.ID, Points: toPoints(req.Points)}
	if err := s.cfg.Backend.Ingest(ctx, t); err != nil {
		s.writeIngestError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(writeResponse{OK: true})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req deleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	existed, err := s.cfg.Backend.Delete(ctx, req.ID)
	if err != nil {
		s.writeIngestError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(writeResponse{OK: true, Existed: &existed})
}

// writeIngestError maps write-path failures: both overload kinds —
// coordinator admission and the per-partition delta backlog bound —
// are 503 Service Unavailable (the write was durably refused, retry
// after backoff), distinct from the read path's 429.
func (s *Server) writeIngestError(w http.ResponseWriter, err error) {
	switch {
	case IsOverload(err):
		s.met.backlog.Inc()
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}
