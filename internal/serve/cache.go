package serve

import (
	"container/list"
	"hash/fnv"
	"math"
	"sync"

	"dita/internal/geom"
)

// Op names a cacheable query kind.
type Op uint8

const (
	OpSearch Op = iota + 1
	OpKNN
	OpJoin
)

func (o Op) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpKNN:
		return "knn"
	case OpJoin:
		return "join"
	}
	return "unknown"
}

// Key identifies one cacheable query: the operation, its parameters,
// and a 64-bit hash of the canonical query trajectory. Two distinct
// queries can collide on QHash, so entries additionally store the
// full query points and Get compares them exactly — the hash narrows,
// the points decide.
type Key struct {
	Op      Op
	Right   string // join right dataset; "" otherwise
	Measure string
	Tau     float64
	K       int
	QHash   uint64
}

// HashQuery folds a query trajectory's point coordinates (exact float
// bits — serving must not conflate nearly-equal queries) into an
// FNV-1a hash.
func HashQuery(q []geom.Point) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for _, p := range q {
		putU64(buf[0:8], math.Float64bits(p.X))
		putU64(buf[8:16], math.Float64bits(p.Y))
		h.Write(buf[:])
	}
	return h.Sum64()
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// entry is one cached answer plus the evidence needed to prove it
// current: the epochs it was computed at and the partitions it
// depends on (nil touched = all partitions).
type entry struct {
	key     Key
	q       []geom.Point // collision guard; nil for join
	val     any          // []Hit or []JoinPair
	bytes   int
	epochs  EpochView
	touched []int
	elem    *list.Element
}

// Cache is the epoch-validated result cache. Invalidation is lazy:
// entries are not purged when a write lands — instead every Get
// compares the entry's recorded epochs against the live ones and
// discards the entry if any partition it depends on has advanced (or
// any partition's bounds grew, which can make a pruned partition
// newly relevant). Lazy validation needs no write→cache plumbing and
// no clocks, and is exactly as fresh: a stale entry can never be
// returned because staleness is checked on the read path itself.
type Cache struct {
	maxEntries int
	maxBytes   int

	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recent
	bytes   int

	hits, misses, stale, evicted int64
}

// NewCache builds a cache bounded by entry count and approximate
// result bytes. maxEntries <= 0 disables the cache (Get always
// misses, Put drops).
func NewCache(maxEntries, maxBytes int) *Cache {
	if maxEntries <= 0 {
		return nil
	}
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[Key]*entry{},
		lru:        list.New(),
	}
}

// Get returns the cached answer for (key, q) if present and provably
// current at the live epochs cur. A stale or colliding entry is
// removed and reported as a miss. A nil cache always misses.
func (c *Cache) Get(key Key, q []geom.Point, cur EpochView) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	if !pointsEqual(e.q, q) {
		// 64-bit hash collision between distinct queries: serving the
		// resident entry would answer the wrong query. Evict it; the
		// colliding pair will keep displacing each other, which is
		// correct if unlucky.
		c.removeLocked(e)
		c.misses++
		return nil, false
	}
	if !freshAt(e.epochs, e.touched, cur) {
		c.removeLocked(e)
		c.stale++
		c.misses++
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	return e.val, true
}

// freshAt proves an answer computed at snapshot epochs snap fresh at
// the live epochs cur: bounds unchanged AND every partition the answer
// depends on unwritten since the snapshot. touched == nil depends on
// every partition. Shared by the cache and by the coalescer's
// late-waiter validation in runQuery.
func freshAt(snap EpochView, touched []int, cur EpochView) bool {
	if snap.Bounds != cur.Bounds {
		return false
	}
	if touched == nil {
		if len(snap.Parts) != len(cur.Parts) {
			return false
		}
		for i := range cur.Parts {
			if snap.Parts[i] != cur.Parts[i] {
				return false
			}
		}
		return true
	}
	for _, pid := range touched {
		if pid < 0 || pid >= len(cur.Parts) || pid >= len(snap.Parts) {
			return false
		}
		if snap.Parts[pid] != cur.Parts[pid] {
			return false
		}
	}
	return true
}

// Put stores an answer computed at the given epochs. bytes is the
// approximate result size used for the byte cap.
func (c *Cache) Put(key Key, q []geom.Point, val any, bytes int, epochs EpochView, touched []int) {
	if c == nil {
		return
	}
	if bytes > c.maxBytes {
		// A result bigger than the whole cache would evict everything
		// else and still bust the byte cap; leave it uncached.
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		c.removeLocked(old)
	}
	e := &entry{key: key, q: q, val: val, bytes: bytes, epochs: epochs, touched: touched}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += bytes
	for (c.lru.Len() > c.maxEntries || c.bytes > c.maxBytes) && c.lru.Len() > 1 {
		back := c.lru.Back().Value.(*entry)
		c.removeLocked(back)
		c.evicted++
	}
}

func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
}

func pointsEqual(a, b []geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Entries int
	Bytes   int
	Hits    int64
	Misses  int64
	Stale   int64
	Evicted int64
}

// Stats snapshots the cache counters (zero for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.lru.Len(),
		Bytes:   c.bytes,
		Hits:    c.hits,
		Misses:  c.misses,
		Stale:   c.stale,
		Evicted: c.evicted,
	}
}
