package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dita/internal/geom"
)

// N identical concurrent queries execute the backend exactly once and
// all receive the shared answer.
func TestCoalesceExecutesOnce(t *testing.T) {
	g := newFlightGroup()
	key := Key{Op: OpSearch, QHash: 42}
	var execs atomic.Int32
	gate := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	sharedCount := atomic.Int32{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := g.Do(context.Background(), key, nil, func(context.Context) (any, error) {
				execs.Add(1)
				<-gate
				return []Hit{{ID: 9}}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			if hits := val.([]Hit); len(hits) != 1 || hits[0].ID != 9 {
				t.Errorf("wrong shared value: %+v", val)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait until every caller has joined the flight, then release it.
	for {
		g.mu.Lock()
		f := g.flights[key]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Fatalf("executed %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared for %d callers, want %d", got, n-1)
	}
	// The finished flight is forgotten: a later identical query starts
	// fresh (the result cache, not the flight table, handles reuse).
	_, _, _ = g.Do(context.Background(), key, nil, func(context.Context) (any, error) {
		execs.Add(1)
		return nil, nil
	})
	if got := execs.Load(); got != 2 {
		t.Fatalf("post-completion query reused a dead flight (execs=%d)", got)
	}
}

// One waiter's cancellation returns promptly for THAT waiter and does
// not fail the others or cancel the shared execution.
func TestCoalesceCancelIsolation(t *testing.T) {
	g := newFlightGroup()
	key := Key{Op: OpSearch, QHash: 7}
	gate := make(chan struct{})
	execCtxErr := make(chan error, 1)

	type result struct {
		val any
		err error
	}
	results := make(chan result, 3)
	ctxs := make([]context.Context, 3)
	cancels := make([]context.CancelFunc, 3)
	for i := range ctxs {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
	}
	for i := 0; i < 3; i++ {
		go func(i int) {
			val, _, err := g.Do(ctxs[i], key, nil, func(fctx context.Context) (any, error) {
				<-gate
				execCtxErr <- fctx.Err()
				return "answer", nil
			})
			results <- result{val, err}
		}(i)
	}
	for {
		g.mu.Lock()
		f := g.flights[key]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancels[1]()
	r := <-results
	if !errors.Is(r.err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", r.err)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("surviving waiter poisoned by peer's cancel: %v", r.err)
		}
		if r.val != "answer" {
			t.Fatalf("surviving waiter got %v", r.val)
		}
	}
	if err := <-execCtxErr; err != nil {
		t.Fatalf("shared execution was cancelled by a single waiter: %v", err)
	}
	for i, c := range cancels {
		_ = i
		c()
	}
}

// When every waiter abandons the flight, the shared execution IS
// cancelled and the flight forgotten, so a later identical query does
// not latch onto a cancelled run.
func TestCoalesceAllCancelledStopsExecution(t *testing.T) {
	g := newFlightGroup()
	key := Key{Op: OpKNN, QHash: 3}
	started := make(chan struct{})
	stopped := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, key, nil, func(fctx context.Context) (any, error) {
			close(started)
			<-fctx.Done() // runs until the group cancels us
			close(stopped)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning waiter got %v", err)
	}
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("execution not cancelled after last waiter left")
	}
	// The key is free again: a fresh query executes fresh.
	val, shared, err := g.Do(context.Background(), key, nil, func(context.Context) (any, error) {
		return 99, nil
	})
	if err != nil || shared || val != 99 {
		t.Fatalf("fresh query after abandoned flight: val=%v shared=%v err=%v", val, shared, err)
	}
}

// Two distinct queries colliding on the same 64-bit QHash must not
// share a flight: the collider runs its own execution and gets its own
// answer, mirroring the cache's points-decide collision guard.
func TestCoalesceQHashCollision(t *testing.T) {
	g := newFlightGroup()
	key := Key{Op: OpSearch, QHash: 77} // same key for both queries
	qa := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	qb := []geom.Point{{X: 2, Y: 2}, {X: 3, Y: 3}}
	gate := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		val, shared, err := g.Do(context.Background(), key, qa, func(context.Context) (any, error) {
			<-gate
			return "answer-a", nil
		})
		if err != nil || shared || val != "answer-a" {
			t.Errorf("leader: val=%v shared=%v err=%v", val, shared, err)
		}
	}()
	// Wait for the leader's flight to be resident.
	for {
		g.mu.Lock()
		_, ok := g.flights[key]
		g.mu.Unlock()
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// The collider must not block on the leader's gate: its execution
	// is direct and returns its own answer with shared=false.
	val, shared, err := g.Do(context.Background(), key, qb, func(context.Context) (any, error) {
		return "answer-b", nil
	})
	if err != nil || shared || val != "answer-b" {
		t.Fatalf("collider: val=%v shared=%v err=%v — got the other query's answer?", val, shared, err)
	}
	// Identical query points DO still coalesce: a second qa caller
	// joins the resident flight instead of executing.
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		val, shared, err := g.Do(context.Background(), key, qa, func(context.Context) (any, error) {
			t.Error("identical query executed instead of coalescing")
			return nil, nil
		})
		if err != nil || !shared || val != "answer-a" {
			t.Errorf("joiner: val=%v shared=%v err=%v", val, shared, err)
		}
	}()
	for {
		g.mu.Lock()
		f := g.flights[key]
		w := 0
		if f != nil {
			w = f.waiters
		}
		g.mu.Unlock()
		if w == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-leaderDone
	<-joined
}
