package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"dita/internal/admit"
	"dita/internal/core"
)

// Backoff is a jittered exponential backoff policy for retrying
// overload rejections: delay doubles from Base toward Max, each sleep
// scaled by a uniform [0.5, 1.5) jitter so a shed burst of clients
// doesn't reconverge into the same instant (full-throttle thundering
// herd is exactly what shedding exists to break up).
type Backoff struct {
	// Base is the first retry delay (default 2ms).
	Base time.Duration
	// Max caps the delay growth (default 250ms).
	Max time.Duration
	// MaxRetries bounds the retry count; <= 0 retries until the
	// context ends.
	MaxRetries int
	// Seed makes the jitter sequence reproducible; 0 seeds from a
	// process-global source.
	Seed int64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 2 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 250 * time.Millisecond
	}
	return b
}

var (
	seedMu  sync.Mutex
	seedSrc = rand.New(rand.NewSource(1))
)

// IsOverload reports whether an error is a typed backpressure
// rejection worth retrying: admission shedding (admit.ErrOverloaded,
// which dnet.ErrOverloaded aliases) or the ingest delta backlog bound
// (core.ErrDeltaBacklog). Anything else — bad queries, dead workers,
// cancelled contexts — is not transient overload and must surface.
func IsOverload(err error) bool {
	return errors.Is(err, admit.ErrOverloaded) || errors.Is(err, core.ErrDeltaBacklog)
}

// RetryOverloaded runs fn, retrying with jittered exponential backoff
// while it fails with a typed overload rejection (IsOverload). It
// returns the retry count alongside fn's final error: nil on success,
// the overload error when retries ran out, ctx.Err() when the context
// ended first.
func RetryOverloaded(ctx context.Context, b Backoff, fn func() error) (retries int, err error) {
	b = b.withDefaults()
	var rng *rand.Rand
	if b.Seed != 0 {
		rng = rand.New(rand.NewSource(b.Seed))
	}
	delay := b.Base
	for {
		err = fn()
		if err == nil || !IsOverload(err) {
			return retries, err
		}
		if b.MaxRetries > 0 && retries >= b.MaxRetries {
			return retries, err
		}
		retries++
		var jitter float64
		if rng != nil {
			jitter = rng.Float64()
		} else {
			seedMu.Lock()
			jitter = seedSrc.Float64()
			seedMu.Unlock()
		}
		sleep := time.Duration(float64(delay) * (0.5 + jitter))
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return retries, ctx.Err()
		}
		if delay *= 2; delay > b.Max {
			delay = b.Max
		}
	}
}
