package serve

import (
	"context"
	"sync"

	"dita/internal/geom"
)

// flight is one shared execution of a query. The leader goroutine runs
// the function under a context detached from every caller; waiters
// count references so the flight is cancelled exactly when the last
// interested caller walks away — one caller's cancellation never
// poisons the others. q is the leader's full query trajectory: the
// same collision guard the cache uses (Key carries only a 64-bit
// query hash, and two distinct queries may collide on it).
type flight struct {
	q       []geom.Point
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// flightGroup coalesces identical in-flight queries (singleflight
// keyed by the cache Key). Unlike the classic singleflight, the
// function runs under its own context: callers subscribe and may
// individually time out or disconnect without affecting the shared
// execution, and the execution is cancelled only when nobody is left
// waiting for it.
type flightGroup struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[Key]*flight{}}
}

// Do returns fn's result for (key, q), executing it once no matter how
// many callers arrive while it is in flight. shared reports whether
// this caller joined an existing execution. When ctx ends before the
// flight finishes, Do returns ctx.Err() for THIS caller only; the
// flight runs on for the others and is cancelled (and forgotten, so a
// later arrival starts fresh) when its waiter count reaches zero.
//
// q is the caller's full query trajectory (nil for joins). A resident
// flight whose q differs is a 64-bit QHash collision between distinct
// queries — joining it would hand this caller the other query's
// answer, so the colliding caller runs fn directly, uncoalesced (the
// hash narrows, the points decide, same as Cache.Get).
func (g *flightGroup) Do(ctx context.Context, key Key, q []geom.Point, fn func(ctx context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok && !pointsEqual(f.q, q) {
		g.mu.Unlock()
		val, err = fn(ctx)
		return val, false, err
	}
	if ok {
		f.waiters++
	} else {
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f = &flight{q: q, done: make(chan struct{}), waiters: 1, cancel: cancel}
		g.flights[key] = f
		go func() {
			f.val, f.err = fn(fctx)
			g.mu.Lock()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, ok, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			// Last caller gone: stop the execution and forget the
			// flight so a future identical query doesn't latch onto a
			// cancelled run.
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		return nil, ok, ctx.Err()
	}
}
