package serve

import (
	"context"
	"sync"
)

// flight is one shared execution of a query. The leader goroutine runs
// the function under a context detached from every caller; waiters
// count references so the flight is cancelled exactly when the last
// interested caller walks away — one caller's cancellation never
// poisons the others.
type flight struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
	cancel  context.CancelFunc
}

// flightGroup coalesces identical in-flight queries (singleflight
// keyed by the cache Key). Unlike the classic singleflight, the
// function runs under its own context: callers subscribe and may
// individually time out or disconnect without affecting the shared
// execution, and the execution is cancelled only when nobody is left
// waiting for it.
type flightGroup struct {
	mu      sync.Mutex
	flights map[Key]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: map[Key]*flight{}}
}

// Do returns fn's result for key, executing it once no matter how many
// callers arrive while it is in flight. shared reports whether this
// caller joined an existing execution. When ctx ends before the flight
// finishes, Do returns ctx.Err() for THIS caller only; the flight runs
// on for the others and is cancelled (and forgotten, so a later
// arrival starts fresh) when its waiter count reaches zero.
func (g *flightGroup) Do(ctx context.Context, key Key, fn func(ctx context.Context) (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.waiters++
	} else {
		fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		g.flights[key] = f
		go func() {
			f.val, f.err = fn(fctx)
			g.mu.Lock()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.val, ok, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			// Last caller gone: stop the execution and forget the
			// flight so a future identical query doesn't latch onto a
			// cancelled run.
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
		g.mu.Unlock()
		return nil, ok, ctx.Err()
	}
}
