package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"dita/internal/core"
	"dita/internal/dnet"
	"dita/internal/gen"
	"dita/internal/traj"
)

// netServer spins up an in-process 2-worker cluster, dispatches a
// dataset, and fronts it with a serve.Server over CoordBackend.
func netServer(t *testing.T) (*httptest.Server, *traj.Dataset) {
	t.Helper()
	var workers []*dnet.Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w := dnet.NewWorker()
		addr, err := w.Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, addr)
	}
	cfg := dnet.DefaultNetConfig()
	cfg.Replicas = 2
	c, err := dnet.Connect(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	d := gen.Generate(gen.BeijingLike(140, 71))
	if err := c.Dispatch("trips", d); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Backend: &CoordBackend{C: c, Dataset: "trips"},
		Dataset: "trips",
		Measure: "DTW",
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, d
}

func hitSet(hits []Hit) string {
	s := make([]string, len(hits))
	for i, h := range hits {
		s[i] = fmt.Sprintf("%d:%.9g", h.ID, h.Distance)
	}
	sort.Strings(s)
	return fmt.Sprint(s)
}

// TestServeCacheIngestDifferential runs a mixed stream of queries and
// Insert/Delete against a real 2-worker cluster and re-verifies EVERY
// cache hit against a bypass query executed before any further write
// can land (writers and verification pairs exclude each other on an
// RWMutex; concurrent verifiers still overlap). A single stale hit —
// an answer the live cluster no longer agrees with — fails the test.
// Run under -race in CI (make serve).
func TestServeCacheIngestDifferential(t *testing.T) {
	ts, d := netServer(t)
	client := ts.Client()

	postJSON := func(path string, body any) (int, string, queryResponse) {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr queryResponse
		_ = json.NewDecoder(resp.Body).Decode(&qr)
		return resp.StatusCode, resp.Header.Get("X-Dita-Cache"), qr
	}

	queries := gen.Queries(d, 5, 72)
	extra := gen.Generate(gen.BeijingLike(60, 73))
	const tau = 0.4

	// pairMu: writers exclusive, (hit, bypass) verification pairs
	// shared. Without it a write could land between the hit and its
	// bypass check and a legitimate difference would masquerade as a
	// stale cache hit.
	var pairMu sync.RWMutex
	var hitsVerified, staleHits int64
	var cmu sync.Mutex

	verify := func(iters int, seed int) {
		for i := 0; i < iters; i++ {
			q := queries[(i+seed)%len(queries)]
			req := searchRequest{Query: rawPoints(q.Points), Tau: tau}
			pairMu.RLock()
			status, state, got := postJSON("/v1/search", req)
			if status != http.StatusOK {
				pairMu.RUnlock()
				t.Errorf("search: status %d", status)
				return
			}
			if state == "hit" {
				bstatus, _, want := postJSON("/v1/search?cache=bypass", req)
				pairMu.RUnlock()
				if bstatus != http.StatusOK {
					t.Errorf("bypass: status %d", bstatus)
					return
				}
				cmu.Lock()
				hitsVerified++
				if hitSet(got.Hits) != hitSet(want.Hits) {
					staleHits++
					t.Errorf("stale cache hit for query %d: cached %s live %s",
						q.ID, hitSet(got.Hits), hitSet(want.Hits))
				}
				cmu.Unlock()
			} else {
				pairMu.RUnlock()
			}
		}
	}

	write := func(n int, seed int) {
		for i := 0; i < n; i++ {
			tr := extra.Trajs[(i+seed)%len(extra.Trajs)]
			var body any
			var path string
			if i%3 == 2 {
				path, body = "/v1/delete", deleteRequest{ID: tr.ID + 200000}
			} else {
				path, body = "/v1/ingest", ingestRequest{ID: tr.ID + 200000, Points: rawPoints(tr.Points)}
			}
			_, err := RetryOverloaded(context.Background(), Backoff{Base: time.Millisecond, Seed: int64(seed)}, func() error {
				pairMu.Lock()
				status, _, _ := postJSON(path, body)
				pairMu.Unlock()
				switch status {
				case http.StatusOK:
					return nil
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					return core.ErrDeltaBacklog
				default:
					return fmt.Errorf("%s status %d", path, status)
				}
			})
			if err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for v := 0; v < 3; v++ {
		wg.Add(1)
		go func(v int) { defer wg.Done(); verify(40, v*7) }(v)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) { defer wg.Done(); write(25, w*13) }(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiet phase: with writers done, every repeated query must hit and
	// every hit must agree with the live cluster — guarantees the
	// mixed phase above wasn't all misses.
	for _, q := range queries {
		req := searchRequest{Query: rawPoints(q.Points), Tau: tau}
		postJSON("/v1/search", req) // warm
		status, state, got := postJSON("/v1/search", req)
		if status != http.StatusOK || state != "hit" {
			t.Fatalf("quiet-phase repeat: status=%d state=%q, want hit", status, state)
		}
		_, _, want := postJSON("/v1/search?cache=bypass", req)
		hitsVerified++
		if hitSet(got.Hits) != hitSet(want.Hits) {
			t.Fatalf("quiet-phase stale hit for query %d", q.ID)
		}
	}
	if staleHits != 0 {
		t.Fatalf("%d stale cache hits across %d verified", staleHits, hitsVerified)
	}
	t.Logf("verified %d cache hits, 0 stale", hitsVerified)
}

// TestServeKNNInvalidationNet checks the coarse (all-partition) kNN
// dependency against the cluster: a kNN answer is served from cache
// until ANY write lands, then recomputed.
func TestServeKNNInvalidationNet(t *testing.T) {
	ts, d := netServer(t)
	q := d.Trajs[9]
	req := knnRequest{Query: rawPoints(q.Points), K: 4}

	status, _, body := post(t, ts.URL+"/v1/knn", req)
	if status != http.StatusOK {
		t.Fatalf("knn: %d %s", status, body)
	}
	_, hdr, _ := post(t, ts.URL+"/v1/knn", req)
	if hdr.Get("X-Dita-Cache") != "hit" {
		t.Fatal("repeat kNN not cached")
	}
	ins := ingestRequest{ID: 300000, Points: rawPoints(q.Points)}
	if status, _, body := post(t, ts.URL+"/v1/ingest", ins); status != http.StatusOK {
		t.Fatalf("ingest: %d %s", status, body)
	}
	_, hdr, body = post(t, ts.URL+"/v1/knn", req)
	if hdr.Get("X-Dita-Cache") != "miss" {
		t.Fatal("kNN cache survived a write")
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range qr.Hits {
		if h.ID == 300000 {
			found = true
		}
	}
	if !found {
		t.Fatal("recomputed kNN answer misses the trajectory just ingested at distance 0")
	}
}
