package serve

import (
	"math/bits"
	"sync"
)

// costModel predicts a query's execution cost (µs) from history. Keys
// are (op, partition-bound bucket): the touched-partition count is the
// piece of the pruning funnel known before execution, and bucketing it
// by powers of two keeps the table tiny while separating "touches one
// partition" from "fans out across the dataset" — the actual cost
// driver for anchored measures. Each bucket holds an EWMA of observed
// wall-clock, so the model tracks load and data drift with no
// persistence and O(1) state.
type costModel struct {
	alpha     float64 // EWMA weight of the newest observation
	defaultUS int64   // prediction for never-observed buckets

	mu    sync.Mutex
	costs map[costKey]float64
}

type costKey struct {
	op     Op
	bucket int
}

func newCostModel(defaultUS int64) *costModel {
	if defaultUS <= 0 {
		defaultUS = 2000
	}
	return &costModel{alpha: 0.2, defaultUS: defaultUS, costs: map[costKey]float64{}}
}

// bucket maps a touched-partition count to its power-of-two bucket.
// parts <= 0 means "unknown / all partitions" and lands in its own
// bucket below the singletons.
func bucket(parts int) int {
	if parts <= 0 {
		return -1
	}
	return bits.Len(uint(parts))
}

// predict returns the expected cost (µs) for an op touching the given
// number of partitions. Unseen buckets fall back to the nearest
// observed bucket for the op (pessimistically preferring wider ones),
// then to the default.
func (m *costModel) predict(op Op, parts int) int64 {
	b := bucket(parts)
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.costs[costKey{op, b}]; ok {
		return int64(c)
	}
	// Nearest fallback: a wider bucket's cost is an upper bound for a
	// narrower query, which errs toward shedding — the safe direction
	// when the model is cold.
	for wider := b + 1; wider <= 64; wider++ {
		if c, ok := m.costs[costKey{op, wider}]; ok {
			return int64(c)
		}
	}
	for narrower := b - 1; narrower >= -1; narrower-- {
		if c, ok := m.costs[costKey{op, narrower}]; ok {
			return int64(c)
		}
	}
	return m.defaultUS
}

// observe feeds one executed query's wall-clock (µs) into the model.
func (m *costModel) observe(op Op, parts int, elapsedUS int64) {
	if elapsedUS < 1 {
		elapsedUS = 1
	}
	k := costKey{op, bucket(parts)}
	m.mu.Lock()
	if c, ok := m.costs[k]; ok {
		m.costs[k] = (1-m.alpha)*c + m.alpha*float64(elapsedUS)
	} else {
		m.costs[k] = float64(elapsedUS)
	}
	m.mu.Unlock()
}
