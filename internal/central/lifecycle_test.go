package central

import (
	"context"
	"errors"
	"testing"
	"time"

	"dita/internal/gen"
	"dita/internal/measure"
)

// Both centralized baselines honor cancellation: an expired context
// aborts the scan/descent promptly instead of finishing the query.
func TestCentralSearchContextCancelled(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(400, 70))
	q := gen.Queries(d, 1, 71)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	mbe := NewMBE(d, measure.DTW{}, 0)
	if _, err := mbe.SearchContext(ctx, q, 0.05, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("MBE err = %v, want context.Canceled", err)
	}
	vp := NewVPTree(d, measure.Frechet{}, 1)
	if _, err := vp.SearchContext(ctx, q, 0.05, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("VP-tree err = %v, want context.Canceled", err)
	}
	if _, err := mbe.JoinContext(ctx, d, 0.05); !errors.Is(err, context.Canceled) {
		t.Fatalf("MBE join err = %v, want context.Canceled", err)
	}
}

// A deadline bounds the centralized join even when the full join would
// take much longer.
func TestCentralJoinDeadlinePrompt(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(1500, 72))
	mbe := NewMBE(d, measure.DTW{}, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mbe.JoinContext(ctx, d, 0.05)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("expired join took %v, want < 1s", elapsed)
	}
}

// The context variants agree with the legacy API when never cancelled.
func TestCentralContextVariantsMatchLegacy(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(200, 73))
	q := gen.Queries(d, 1, 74)[0]
	mbe := NewMBE(d, measure.DTW{}, 0)
	legacy := mbe.Search(q, 0.05, nil)
	viaCtx, err := mbe.SearchContext(context.Background(), q, 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(viaCtx) {
		t.Fatalf("MBE: legacy %d results, ctx %d", len(legacy), len(viaCtx))
	}
	vp := NewVPTree(d, measure.Frechet{}, 1)
	vLegacy := vp.Search(q, 0.05, nil)
	vCtx, err := vp.SearchContext(context.Background(), q, 0.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vLegacy) != len(vCtx) {
		t.Fatalf("VP-tree: legacy %d results, ctx %d", len(vLegacy), len(vCtx))
	}
}
