package central

import (
	"time"

	"dita/internal/obs"
)

// metrics holds a baseline index's pre-resolved registry handles.
type metrics struct {
	searches   *obs.Counter
	candidates *obs.Counter
	pruned     *obs.Counter
	latency    *obs.Histogram
}

func newMetrics(r *obs.Registry, prefix string) *metrics {
	if r == nil {
		return nil
	}
	return &metrics{
		searches:   r.Counter(prefix + "_searches_total"),
		candidates: r.Counter(prefix + "_candidates_total"),
		pruned:     r.Counter(prefix + "_pruned_total"),
		latency:    r.Histogram(prefix + "_search_latency_us"),
	}
}

// record wraps one search: it runs fn with a stats collector (chained to
// the caller's, which may be nil) and publishes the counts. A nil
// receiver runs fn(stats) untouched — the disabled path stays clock-free.
func (m *metrics) record(stats *Stats, fn func(*Stats)) {
	if m == nil {
		fn(stats)
		return
	}
	local := stats
	if local == nil {
		local = &Stats{}
	}
	before := *local
	start := time.Now()
	fn(local)
	m.searches.Inc()
	m.latency.Observe(time.Since(start).Microseconds())
	m.candidates.Add(int64(local.Candidates - before.Candidates))
	m.pruned.Add(int64(local.Pruned - before.Pruned))
}

// Instrument attaches a metrics registry to the MBE baseline: every
// search records count, latency, and candidate/pruned totals under
// central_mbe_*. Call before serving queries; not safe concurrently with
// searches.
func (e *MBE) Instrument(r *obs.Registry) { e.met = newMetrics(r, "central_mbe") }

// Instrument attaches a metrics registry to the VP-tree baseline
// (central_vptree_* metrics). Call before serving queries; not safe
// concurrently with searches.
func (t *VPTree) Instrument(r *obs.Registry) { t.met = newMetrics(r, "central_vptree") }
