// Package central implements the centralized (single-machine) baselines of
// the paper's Appendix C: the minimal-bounding-envelope index MBE [Vlachos
// et al., KDD 2003] for DTW and Fréchet, and the vantage-point tree
// VP-Tree [Fu et al. / Yianilos] for the metric Fréchet distance, plus the
// candidate/latency accounting Figure 17 reports.
package central

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"

	"dita/internal/geom"
	"dita/internal/measure"
	"dita/internal/traj"
)

// Result is one range-search answer.
type Result struct {
	Traj     *traj.T
	Distance float64
}

// Stats counts the work a centralized search did: Candidates is the number
// of trajectories that reached exact verification (Figure 17's
// "# of Candidates"), Pruned the number eliminated by the index.
type Stats struct {
	Candidates int
	Pruned     int
}

// MBE is the minimal-bounding-envelope index: each trajectory is split
// into runs of EnvelopeSize consecutive points, each run covered by an
// MBR; the envelope yields the lower bounds
//
//	DTW(T,Q)     >= Σ_j min_r MinDist(qj, MBR_r)    (every column is crossed)
//	Fréchet(T,Q) >= max_j min_r MinDist(qj, MBR_r)
//
// plus the endpoint bound dist-to-trajectory-MBR. Candidates surviving the
// bounds are verified exactly.
type MBE struct {
	m       measure.Measure
	trajs   []*traj.T
	envs    [][]geom.MBR
	mbrs    []geom.MBR
	envSize int
	met     *metrics
	// BuildTime and SizeBytes feed Table 7.
	BuildTime time.Duration
}

// DefaultEnvelopeSize is the per-MBR run length.
const DefaultEnvelopeSize = 8

// NewMBE builds the envelope index. Only endpoint-anchored measures (DTW,
// Fréchet) are supported, as in the original.
func NewMBE(d *traj.Dataset, m measure.Measure, envSize int) *MBE {
	if m == nil {
		m = measure.DTW{}
	}
	if envSize < 1 {
		envSize = DefaultEnvelopeSize
	}
	start := time.Now()
	e := &MBE{m: m, trajs: d.Trajs, envSize: envSize}
	e.envs = make([][]geom.MBR, len(d.Trajs))
	e.mbrs = make([]geom.MBR, len(d.Trajs))
	for i, t := range d.Trajs {
		e.mbrs[i] = t.MBR()
		var env []geom.MBR
		for s := 0; s < len(t.Points); s += envSize {
			end := s + envSize
			if end > len(t.Points) {
				end = len(t.Points)
			}
			env = append(env, geom.MBROf(t.Points[s:end]))
		}
		e.envs[i] = env
	}
	e.BuildTime = time.Since(start)
	return e
}

// SizeBytes estimates the index footprint.
func (e *MBE) SizeBytes() int {
	n := 0
	for _, env := range e.envs {
		n += 40 * len(env)
	}
	return n + 40*len(e.mbrs)
}

// Search returns all trajectories within tau of q. stats may be nil.
func (e *MBE) Search(q *traj.T, tau float64, stats *Stats) []Result {
	out, _ := e.SearchContext(context.Background(), q, tau, stats)
	return out
}

// SearchContext is Search with cancellation checked before each
// trajectory's pruning-and-verification step, so an expired or cancelled
// context aborts the scan within one exact-distance computation.
func (e *MBE) SearchContext(ctx context.Context, q *traj.T, tau float64, stats *Stats) (out []Result, err error) {
	e.met.record(stats, func(st *Stats) {
		out, err = e.searchImpl(ctx, q, tau, st)
	})
	return out, err
}

func (e *MBE) searchImpl(ctx context.Context, q *traj.T, tau float64, stats *Stats) ([]Result, error) {
	if q == nil || len(q.Points) == 0 {
		return nil, ctx.Err()
	}
	qp := q.Points
	q1, qn := qp[0], qp[len(qp)-1]
	maxForm := e.m.Accumulation() == measure.AccumMax
	var out []Result
	for i, t := range e.trajs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Endpoint bound against the whole-trajectory MBR.
		d1, dn := e.mbrs[i].MinDist(q1), e.mbrs[i].MinDist(qn)
		if maxForm {
			if d1 > tau || dn > tau {
				if stats != nil {
					stats.Pruned++
				}
				continue
			}
		} else if d1+dn > tau {
			if stats != nil {
				stats.Pruned++
			}
			continue
		}
		// Envelope bound.
		if envelopeLB(qp, e.envs[i], maxForm, tau) > tau {
			if stats != nil {
				stats.Pruned++
			}
			continue
		}
		if stats != nil {
			stats.Candidates++
		}
		if d, ok := e.m.DistanceThreshold(t.Points, qp, tau); ok {
			out = append(out, Result{Traj: t, Distance: d})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	return out, nil
}

// envelopeLB computes the envelope lower bound, early-exiting once it
// exceeds tau.
func envelopeLB(q []geom.Point, env []geom.MBR, maxForm bool, tau float64) float64 {
	acc := 0.0
	for _, p := range q {
		best := math.Inf(1)
		for _, m := range env {
			if d := m.MinDist(p); d < best {
				best = d
				if best == 0 {
					break
				}
			}
		}
		if maxForm {
			if best > acc {
				acc = best
			}
		} else {
			acc += best
		}
		if acc > tau {
			return acc
		}
	}
	return acc
}

// Join computes the centralized similarity join by probing the index with
// every left-side trajectory (Appendix C's join comparison).
func (e *MBE) Join(left *traj.Dataset, tau float64) int {
	pairs, _ := e.JoinContext(context.Background(), left, tau)
	return pairs
}

// JoinContext is Join with cancellation checked throughout each probe.
func (e *MBE) JoinContext(ctx context.Context, left *traj.Dataset, tau float64) (int, error) {
	pairs := 0
	for _, t := range left.Trajs {
		res, err := e.SearchContext(ctx, t, tau, nil)
		if err != nil {
			return pairs, err
		}
		pairs += len(res)
	}
	return pairs, nil
}

// VPTree is a vantage-point tree over trajectories under a metric
// trajectory distance (Fréchet or ERP); the triangle inequality drives the
// pruning, so non-metric measures (DTW, LCSS, EDR) are not supported —
// exactly the limitation the paper ascribes to it.
type VPTree struct {
	m    measure.Measure
	root *vpNode
	n    int
	met  *metrics
	// BuildTime and DistanceCalls feed Table 7 and Figure 17.
	BuildTime     time.Duration
	buildDistCall int
}

type vpNode struct {
	point   *traj.T
	radius  float64
	in, out *vpNode
}

// NewVPTree builds the tree. The measure must be a metric; DTW and the
// edit measures violate the triangle inequality and would make pruning
// unsound.
func NewVPTree(d *traj.Dataset, m measure.Measure, seed int64) *VPTree {
	if m == nil {
		m = measure.Frechet{}
	}
	switch m.(type) {
	case measure.Frechet, measure.ERP:
	default:
		panic("central: VP-tree requires a metric measure (Fréchet or ERP)")
	}
	t := &VPTree{m: m, n: d.Len()}
	start := time.Now()
	items := make([]*traj.T, d.Len())
	copy(items, d.Trajs)
	rng := rand.New(rand.NewSource(seed))
	t.root = t.build(items, rng)
	t.BuildTime = time.Since(start)
	return t
}

func (t *VPTree) build(items []*traj.T, rng *rand.Rand) *vpNode {
	if len(items) == 0 {
		return nil
	}
	// Random vantage point.
	vi := rng.Intn(len(items))
	items[0], items[vi] = items[vi], items[0]
	vp := items[0]
	rest := items[1:]
	if len(rest) == 0 {
		return &vpNode{point: vp}
	}
	ds := make([]float64, len(rest))
	for i, it := range rest {
		ds[i] = t.m.Distance(vp.Points, it.Points)
		t.buildDistCall++
	}
	// Median radius.
	sorted := append([]float64(nil), ds...)
	sort.Float64s(sorted)
	radius := sorted[len(sorted)/2]
	var in, out []*traj.T
	for i, it := range rest {
		if ds[i] <= radius {
			in = append(in, it)
		} else {
			out = append(out, it)
		}
	}
	return &vpNode{point: vp, radius: radius, in: t.build(in, rng), out: t.build(out, rng)}
}

// BuildDistanceCalls returns the number of exact distance computations the
// construction needed (the reason VP-tree construction is slow, Table 7).
func (t *VPTree) BuildDistanceCalls() int { return t.buildDistCall }

// SizeBytes estimates the tree footprint (nodes only; data is referenced).
func (t *VPTree) SizeBytes() int { return 48 * t.n }

// Search returns all trajectories within tau of q using metric pruning:
// given d = dist(q, vp), the inside ball can be skipped when
// d - tau > radius, the outside when d + tau < radius. Every exact
// distance evaluation is counted as a candidate.
func (t *VPTree) Search(q *traj.T, tau float64, stats *Stats) []Result {
	out, _ := t.SearchContext(context.Background(), q, tau, stats)
	return out
}

// SearchContext is Search with cancellation checked before each node's
// exact distance computation (the unit of work in a VP-tree descent).
func (t *VPTree) SearchContext(ctx context.Context, q *traj.T, tau float64, stats *Stats) (out []Result, err error) {
	t.met.record(stats, func(st *Stats) {
		out, err = t.searchImpl(ctx, q, tau, st)
	})
	return out, err
}

func (t *VPTree) searchImpl(ctx context.Context, q *traj.T, tau float64, stats *Stats) ([]Result, error) {
	if q == nil || len(q.Points) == 0 {
		return nil, ctx.Err()
	}
	var out []Result
	var ctxErr error
	var walk func(n *vpNode)
	walk = func(n *vpNode) {
		if n == nil || ctxErr != nil {
			return
		}
		if ctxErr = ctx.Err(); ctxErr != nil {
			return
		}
		if stats != nil {
			stats.Candidates++
		}
		d := t.m.Distance(n.point.Points, q.Points)
		if d <= tau {
			out = append(out, Result{Traj: n.point, Distance: d})
		}
		if d-tau <= n.radius {
			walk(n.in)
		} else if stats != nil {
			stats.Pruned++
		}
		if d+tau >= n.radius {
			walk(n.out)
		} else if stats != nil {
			stats.Pruned++
		}
	}
	walk(t.root)
	if ctxErr != nil {
		return nil, ctxErr
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Traj.ID < out[b].Traj.ID })
	return out, nil
}
