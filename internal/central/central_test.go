package central

import (
	"testing"

	"dita/internal/gen"
	"dita/internal/measure"
	"dita/internal/traj"
)

func brute(d *traj.Dataset, m measure.Measure, q *traj.T, tau float64) map[int]bool {
	out := map[int]bool{}
	for _, t := range d.Trajs {
		if m.Distance(t.Points, q.Points) <= tau {
			out[t.ID] = true
		}
	}
	return out
}

func check(t *testing.T, name string, got []Result, want map[int]bool) {
	t.Helper()
	ids := map[int]bool{}
	for _, r := range got {
		if ids[r.Traj.ID] {
			t.Fatalf("%s: duplicate %d", name, r.Traj.ID)
		}
		ids[r.Traj.ID] = true
	}
	if len(ids) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(ids), len(want))
	}
	for id := range want {
		if !ids[id] {
			t.Fatalf("%s: missing %d", name, id)
		}
	}
}

func TestMBEExactDTW(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(300, 1))
	e := NewMBE(d, measure.DTW{}, 8)
	for _, q := range gen.Queries(d, 10, 2) {
		var st Stats
		got := e.Search(q, 0.05, &st)
		check(t, "MBE/DTW", got, brute(d, measure.DTW{}, q, 0.05))
		if st.Candidates+st.Pruned != d.Len() {
			t.Fatalf("stats don't cover dataset: %+v", st)
		}
	}
}

func TestMBEExactFrechet(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(200, 3))
	e := NewMBE(d, measure.Frechet{}, 8)
	for _, q := range gen.Queries(d, 8, 4) {
		got := e.Search(q, 0.01, nil)
		check(t, "MBE/Frechet", got, brute(d, measure.Frechet{}, q, 0.01))
	}
}

func TestMBEPrunes(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(500, 5))
	e := NewMBE(d, measure.DTW{}, 8)
	q := gen.Queries(d, 1, 6)[0]
	var st Stats
	e.Search(q, 0.005, &st)
	if st.Pruned == 0 {
		t.Error("MBE never pruned at τ=0.005")
	}
	if e.SizeBytes() <= 0 || e.BuildTime <= 0 {
		t.Error("MBE accounting broken")
	}
}

func TestVPTreeExact(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(250, 7))
	v := NewVPTree(d, measure.Frechet{}, 1)
	for _, q := range gen.Queries(d, 10, 8) {
		var st Stats
		got := v.Search(q, 0.01, &st)
		check(t, "VPTree", got, brute(d, measure.Frechet{}, q, 0.01))
		if st.Candidates == 0 {
			t.Error("no distance evaluations counted")
		}
	}
}

func TestVPTreePrunes(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(600, 9))
	v := NewVPTree(d, measure.Frechet{}, 2)
	q := gen.Queries(d, 1, 10)[0]
	var st Stats
	v.Search(q, 0.002, &st)
	if st.Candidates >= d.Len() {
		t.Errorf("VP-tree evaluated all %d trajectories: no pruning", st.Candidates)
	}
	if v.BuildDistanceCalls() == 0 || v.BuildTime <= 0 {
		t.Error("VP-tree build accounting broken")
	}
}

func TestVPTreeRejectsNonMetric(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(20, 11))
	defer func() {
		if recover() == nil {
			t.Error("VP-tree must reject non-metric measures")
		}
	}()
	NewVPTree(d, measure.DTW{}, 1)
}

func TestCentralDegenerate(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(30, 12))
	e := NewMBE(d, nil, 0)
	if got := e.Search(nil, 1, nil); got != nil {
		t.Error("MBE nil query")
	}
	v := NewVPTree(d, nil, 3)
	if got := v.Search(nil, 1, nil); got != nil {
		t.Error("VPTree nil query")
	}
	empty := traj.NewDataset("e", nil)
	if v := NewVPTree(empty, measure.Frechet{}, 4); len(v.Search(d.Trajs[0], 100, nil)) != 0 {
		t.Error("empty VP-tree returned results")
	}
	if e := NewMBE(empty, measure.DTW{}, 4); len(e.Search(d.Trajs[0], 100, nil)) != 0 {
		t.Error("empty MBE returned results")
	}
}

func TestMBEJoinCount(t *testing.T) {
	d := gen.Generate(gen.BeijingLike(60, 13))
	e := NewMBE(d, measure.DTW{}, 8)
	got := e.Join(d, 0.02)
	want := 0
	for _, a := range d.Trajs {
		for _, b := range d.Trajs {
			if (measure.DTW{}).Distance(a.Points, b.Points) <= 0.02 {
				want++
			}
		}
	}
	if got != want {
		t.Errorf("MBE join count %d, want %d", got, want)
	}
}
